// Heavy-task workload: a streaming/media appliance where a few decoder
// tasks each need more than 41% of a core (the paper's "heavy" class).
//
// Demonstrates RM-TS's pre-assignment phase (Section V): which heavy tasks
// get their own processor, which are split normally, and how RM-TS
// compares against SPA2 and strict partitioned RM on the same set.
#include <iostream>
#include <memory>
#include <set>

#include "bounds/ll_bound.hpp"
#include "partition/baselines.hpp"
#include "partition/rmts.hpp"
#include "partition/spa.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace rmts;

  // Periods in microseconds.  Four heavy decoders plus light service tasks;
  // U = 4.51 on 6 cores => U_M = 0.752, above Theta(10) = 0.718 -- the
  // regime where threshold admission gives up but exact RTA does not.
  const TaskSet tasks = TaskSet::from_pairs({
      {8000, 16667},   // 4K decode (60 fps)       0.480  heavy
      {14000, 16667},  // 4K transcode (60 fps)    0.840  heavy
      {16000, 33333},  // HDR tone map (30 fps)    0.480  heavy
      {22000, 33333},  // ML upscaler (30 fps)     0.660  heavy
      {3000, 10000},   // audio mix                0.300
      {2500, 10000},   // network pacing           0.250
      {12000, 40000},  // thumbnailing             0.300
      {14000, 40000},  // indexing                 0.350
      {45000, 100000}, // stats aggregation        0.450  heavy
      {80000, 200000}, // backup scrubber          0.400
  });
  const std::size_t cores = 6;

  const std::size_t n = tasks.size();
  std::cout << "Media workload: U = " << tasks.total_utilization()
            << ", U_M = " << tasks.normalized_utilization(cores) << " on "
            << cores << " cores;  Theta(" << n << ") = " << liu_layland_theta(n)
            << ", light threshold = " << light_task_threshold(n) << "\n\n";

  const Rmts rmts(std::make_shared<LiuLaylandBound>());
  const Assignment assignment = rmts.partition(tasks, cores);
  std::cout << "RM-TS:\n" << assignment.describe() << '\n';
  if (!assignment.success) return 1;

  // Which heavy tasks were pre-assigned (sit alone or share only with
  // later fill tasks, unsplit)?
  std::set<TaskId> split_ids;
  std::set<TaskId> seen;
  for (const auto& processor : assignment.processors) {
    for (const Subtask& s : processor.subtasks) {
      if (!seen.insert(s.task_id).second) split_ids.insert(s.task_id);
    }
  }
  std::cout << "heavy tasks: ";
  for (const Task& task : tasks) {
    if (task.utilization() > light_task_threshold(n)) {
      std::cout << "tau_" << task.id
                << (split_ids.count(task.id) ? "(split) " : "(whole) ");
    }
  }
  std::cout << "\n\n";

  // The same set through the baselines.
  const Spa2 spa2;
  const PartitionedRm prm(FitPolicy::kFirstFit, TaskOrder::kDecreasingUtilization,
                          Admission::kExactRta);
  const GlobalRmUs rm_us;
  std::cout << "SPA2:      " << (spa2.accepts(tasks, cores) ? "accepted" : "rejected")
            << "  (threshold admission caps at Theta)\n";
  std::cout << "P-RM-FFD:  " << (prm.accepts(tasks, cores) ? "accepted" : "rejected")
            << "  (no splitting)\n";
  std::cout << "G-RM-US:   " << (rm_us.accepts(tasks, cores) ? "accepted" : "rejected")
            << "  (global utilization test)\n\n";

  SimConfig sim;
  sim.horizon = recommended_horizon(tasks, 400'000'000);
  const SimResult run = simulate(tasks, assignment, sim);
  std::cout << "RM-TS partition simulated for " << run.simulated_until
            << " us: " << (run.schedulable ? "clean" : "MISS") << " ("
            << run.jobs_completed << " jobs, " << run.migrations
            << " migrations)\n";
  return run.schedulable ? 0 : 1;
}
