// Avionics-style harmonic workload: the paper's flagship instantiation.
//
// Flight-control software is classically rate-grouped at harmonic
// frequencies (400 / 200 / 100 / 50 / 25 Hz).  For such sets the
// harmonic-chain bound is 100%, and Theorem 8 promises: any *light*
// harmonic set with U_M(tau) <= 100% is schedulable by RM-TS/light.
// This example packs a 4-core flight computer to 97% per core and shows
// the partition plus its simulation.
#include <iostream>

#include "bounds/harmonic.hpp"
#include "partition/rmts_light.hpp"
#include "partition/spa.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace rmts;

  // Periods in microseconds (400 Hz = 2500 us, ... 25 Hz = 40000 us).
  // Utilizations kept light (<= 0.35 each); total 3.96 => U_M = 0.99.
  const TaskSet tasks = TaskSet::from_pairs({
      {875, 2500},    // gyro fusion          400 Hz  0.350
      {750, 2500},    // inner-loop control   400 Hz  0.300
      {1500, 5000},   // outer-loop control   200 Hz  0.300
      {1250, 5000},   // actuator commands    200 Hz  0.250
      {3000, 10000},  // navigation filter    100 Hz  0.300
      {3500, 10000},  // guidance             100 Hz  0.350
      {2500, 10000},  // air data             100 Hz  0.250
      {6000, 20000},  // telemetry frame       50 Hz  0.300
      {5000, 20000},  // envelope protection   50 Hz  0.250
      {7000, 20000},  // systems monitor       50 Hz  0.350
      {12000, 40000}, // flight management     25 Hz  0.300
      {14000, 40000}, // logging/compression   25 Hz  0.350
      {12500, 40000}, // display generation    25 Hz  0.3125
  });
  const std::size_t cores = 4;

  std::cout << "Harmonic avionics set: U = " << tasks.total_utilization()
            << ", U_M = " << tasks.normalized_utilization(cores) << " on "
            << cores << " cores\n";
  std::cout << "is_harmonic = " << (tasks.is_harmonic() ? "yes" : "no")
            << ", K = " << min_harmonic_chains(tasks.periods())
            << ", HC bound = " << HarmonicChainBound().evaluate(tasks)
            << " (the 100% bound)\n\n";

  // Theorem 8 applies when the set is light: check the premise explicitly.
  const double threshold = light_task_threshold(tasks.size());
  std::cout << "light-task threshold Theta/(1+Theta) = " << threshold
            << "; all tasks light: "
            << (tasks.all_lighter_than(threshold) ? "yes" : "no") << "\n\n";

  const RmtsLight algorithm;
  const Assignment assignment = algorithm.partition(tasks, cores);
  std::cout << assignment.describe() << '\n';
  if (!assignment.success) {
    std::cout << "unexpected: Theorem 8 promises acceptance here\n";
    return 1;
  }

  // Contrast: the threshold-based predecessor cannot exceed Theta(N).
  std::cout << "SPA1 on the same set: "
            << (Spa1().accepts(tasks, cores) ? "accepted" : "rejected")
            << "  (its admission threshold is Theta(13) = "
            << liu_layland_theta(tasks.size()) << ")\n\n";

  SimConfig sim;
  sim.horizon = recommended_horizon(tasks, 100'000'000);
  const SimResult run = simulate(tasks, assignment, sim);
  std::cout << "Simulation over " << run.simulated_until
            << " us: " << (run.schedulable ? "clean" : "MISS") << ", "
            << run.jobs_completed << " jobs, " << run.migrations
            << " migrations\n";
  for (std::size_t q = 0; q < run.busy_time.size(); ++q) {
    std::cout << "  core " << q << " measured utilization "
              << static_cast<double>(run.busy_time[q]) /
                     static_cast<double>(run.simulated_until)
              << '\n';
  }
  return run.schedulable ? 0 : 1;
}
