// Design-space exploration: the use case the paper's introduction
// motivates.  Utilization-bound-based analysis is cheap enough to sit
// inside an iterative sizing loop: "how many cores does this workload
// need, under which algorithm, and how much margin is left?"
//
// For a fixed workload shape this example sweeps the core count, reports
// which algorithms accept, and computes each algorithm's breakdown
// utilization (the largest load the sized system could absorb).
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/breakdown.hpp"
#include "analysis/sensitivity.hpp"
#include "bounds/ll_bound.hpp"
#include "common/table.hpp"
#include "partition/baselines.hpp"
#include "partition/rmts.hpp"
#include "partition/rmts_light.hpp"
#include "partition/spa.hpp"

int main() {
  using namespace rmts;

  // An industrial controller workload: 18 tasks, mixed rates, U = 5.6.
  const TaskSet tasks = TaskSet::from_pairs({
      {400, 1000},   {350, 1000},  {900, 2500},  {700, 2500},  {1500, 5000},
      {1600, 5000},  {1250, 5000}, {3000, 10000}, {2800, 10000}, {3300, 10000},
      {2500, 10000}, {7500, 25000}, {8000, 25000}, {6000, 25000}, {15000, 50000},
      {17500, 50000}, {12500, 50000}, {30000, 100000},
  });
  std::cout << "Workload: N = " << tasks.size()
            << ", U = " << tasks.total_utilization() << "\n\n";

  std::vector<std::shared_ptr<const SchedulabilityTest>> roster{
      std::make_shared<Rmts>(std::make_shared<LiuLaylandBound>()),
      std::make_shared<RmtsLight>(),
      std::make_shared<Spa2>(),
      std::make_shared<PartitionedRm>(FitPolicy::kFirstFit,
                                      TaskOrder::kDecreasingUtilization,
                                      Admission::kExactRta),
      std::make_shared<GlobalRmUs>(),
  };

  // --- Sizing sweep: smallest M each algorithm needs -----------------
  Table sizing({"M", "U_M", "RM-TS", "RM-TS/light", "SPA2", "P-RM", "G-RM-US"});
  for (std::size_t m = 6; m <= 12; ++m) {
    std::vector<std::string> row{std::to_string(m),
                                 Table::num(tasks.normalized_utilization(m), 3)};
    for (const auto& algorithm : roster) {
      row.push_back(algorithm->accepts(tasks, m) ? "yes" : "no");
    }
    sizing.add_row(std::move(row));
  }
  sizing.print_text(std::cout, "cores needed (acceptance per M)");

  // --- Margin at the chosen size: breakdown utilization --------------
  const std::size_t chosen = 8;
  std::cout << "\nbreakdown utilization at M = " << chosen
            << " (scale all WCETs until rejection):\n";
  for (const auto& algorithm : roster) {
    const double breakdown =
        breakdown_utilization(*algorithm, tasks, chosen, 0.05, 1.0);
    std::cout << "  " << algorithm->name() << ": U_M = "
              << Table::num(breakdown, 3) << '\n';
  }

  // --- Per-task WCET headroom under RM-TS at the chosen size ---------
  std::cout << "\nper-task WCET headroom under " << roster.front()->name()
            << " at M = " << chosen << " (grow one task, others fixed):\n";
  const std::vector<Time> headroom = wcet_headroom(*roster.front(), tasks, chosen);
  Table margin({"task", "wcet", "max wcet", "headroom %"});
  for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
    const Task& task = tasks[rank];
    margin.add_row(
        {"tau_" + std::to_string(task.id), std::to_string(task.wcet),
         std::to_string(headroom[rank]),
         Table::num(100.0 * static_cast<double>(headroom[rank] - task.wcet) /
                        static_cast<double>(task.wcet),
                    1)});
  }
  margin.print_text(std::cout, "WCET growth margins");

  std::cout << "\nminimum processors per algorithm (max 16):\n";
  for (const auto& algorithm : roster) {
    std::cout << "  " << algorithm->name() << ": M = "
              << min_processors(*algorithm, tasks, 16) << '\n';
  }
  return 0;
}
