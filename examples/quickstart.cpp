// Quickstart: partition a task set with RM-TS, inspect the result, and
// validate it in the simulator.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface in ~60 lines of user code:
// TaskSet construction, bound selection, partitioning, the guarantee the
// theorems give you, and run-time validation.
#include <iostream>
#include <memory>

#include "bounds/harmonic.hpp"
#include "bounds/ll_bound.hpp"
#include "partition/rmts.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace rmts;

  // Six tasks, (wcet, period) in ticks; think microseconds.  Total
  // utilization 2.75 on 3 processors: U_M = 0.917, far above every
  // worst-case bound -- exact-RTA admission handles it anyway.
  const TaskSet tasks = TaskSet::from_pairs({
      {250, 1000},   // tau_0: 25%
      {1000, 2000},  // tau_1: 50%
      {2000, 4000},  // tau_2: 50%
      {2000, 4000},  // tau_3: 50%
      {4000, 8000},  // tau_4: 50%
      {4000, 8000},  // tau_5: 50%
  });
  const std::size_t processors = 3;

  std::cout << "Task set (U = " << tasks.total_utilization()
            << ", U_M = " << tasks.normalized_utilization(processors)
            << " on M = " << processors << "):\n"
            << tasks.describe() << '\n';

  // Pick the strongest parametric bound for this set's structure.  The
  // periods are harmonic, so the harmonic-chain bound gives 100%.
  const auto bound = std::make_shared<HarmonicChainBound>();
  std::cout << "Harmonic chains: K = "
            << min_harmonic_chains(tasks.periods())
            << "  =>  Lambda(tau) = " << bound->evaluate(tasks) << '\n';

  const Rmts algorithm(bound);
  std::cout << "RM-TS guaranteed normalized utilization bound: "
            << algorithm.guaranteed_bound(tasks) << "\n\n";

  const Assignment assignment = algorithm.partition(tasks, processors);
  std::cout << "Partitioning result:\n" << assignment.describe() << '\n';
  if (!assignment.success) return 1;
  std::cout << "split tasks: " << assignment.split_task_count()
            << ", subtasks: " << assignment.subtask_count() << "\n\n";

  // Ground-truth check: run two hyperperiods in the discrete-event
  // simulator (Lemma 4 says this cannot miss).
  SimConfig sim;
  sim.horizon = recommended_horizon(tasks, 100'000'000);
  const SimResult run = simulate(tasks, assignment, sim);
  std::cout << "Simulated " << run.simulated_until << " ticks: "
            << (run.schedulable ? "no deadline misses" : "DEADLINE MISS!")
            << "  (jobs=" << run.jobs_completed
            << ", preemptions=" << run.preemptions
            << ", migrations=" << run.migrations << ")\n";
  return run.schedulable ? 0 : 1;
}
