// rmts_serve: the admission-control service daemon.
//
//   rmts_serve [--host A] [--port N] [--workers N] [--max-in-flight N]
//              [--batch-size N] [--max-connections N] [--max-tasks N]
//              [--drain-timeout-ms N] [--static-budgets]
//              [--initial-budget N] [--min-budget N] [--max-budget N]
//              [--slo-interval-ms N] [--slo-admit-us N] [--slo-analyze-us N]
//              [--slo-robustness-us N] [--slo-simulate-us N]
//              [--slo-session-us N]
//
// Binds (port 0 = ephemeral), prints exactly one line
//   rmts_serve listening on HOST:PORT
// to stdout once accepting, then runs the event loop until SIGINT or
// SIGTERM triggers a graceful drain: stop accepting, finish every
// in-flight request, flush every reply, exit 0.  The wire protocol is
// documented in src/server/protocol.hpp.
//
// Overload control (src/server/overload.hpp): per-op-class admission
// budgets adapt every --slo-interval-ms to hold the per-class p99 SLOs;
// --static-budgets freezes them at --initial-budget (the fixed-cap
// baseline the E20 bench compares against).
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/server.hpp"

namespace {

rmts::server::Server* g_server = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();  // one eventfd write
}

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--host A] [--port N] [--workers N] [--max-in-flight N]"
               " [--batch-size N] [--max-connections N] [--max-tasks N]"
               " [--drain-timeout-ms N] [--static-budgets]"
               " [--initial-budget N] [--min-budget N] [--max-budget N]"
               " [--slo-interval-ms N] [--slo-admit-us N] [--slo-analyze-us N]"
               " [--slo-robustness-us N] [--slo-simulate-us N]"
               " [--slo-session-us N]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  rmts::server::ServerConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--host") {
      config.host = next();
    } else if (flag == "--port") {
      config.port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (flag == "--workers") {
      config.workers = std::stoul(next());
    } else if (flag == "--max-in-flight") {
      config.max_in_flight = std::stoul(next());
    } else if (flag == "--batch-size") {
      config.batch_size = std::stoul(next());
    } else if (flag == "--max-connections") {
      config.max_connections = std::stoul(next());
    } else if (flag == "--max-tasks") {
      config.router.max_tasks = std::stoul(next());
    } else if (flag == "--drain-timeout-ms") {
      config.drain_timeout_ms = std::stoi(next());
    } else if (flag == "--static-budgets") {
      config.overload.adaptive = false;
    } else if (flag == "--initial-budget") {
      config.overload.initial_budget = std::stoul(next());
    } else if (flag == "--min-budget") {
      config.overload.min_budget = std::stoul(next());
    } else if (flag == "--max-budget") {
      config.overload.max_budget = std::stoul(next());
    } else if (flag == "--slo-interval-ms") {
      config.overload.interval_ms = std::stoi(next());
    } else if (flag == "--slo-admit-us") {
      config.overload.slo_p99_us[static_cast<std::size_t>(
          rmts::server::BudgetClass::kAdmit)] = std::stoull(next());
    } else if (flag == "--slo-analyze-us") {
      config.overload.slo_p99_us[static_cast<std::size_t>(
          rmts::server::BudgetClass::kAnalyze)] = std::stoull(next());
    } else if (flag == "--slo-robustness-us") {
      config.overload.slo_p99_us[static_cast<std::size_t>(
          rmts::server::BudgetClass::kRobustness)] = std::stoull(next());
    } else if (flag == "--slo-simulate-us") {
      config.overload.slo_p99_us[static_cast<std::size_t>(
          rmts::server::BudgetClass::kSimulate)] = std::stoull(next());
    } else if (flag == "--slo-session-us") {
      config.overload.slo_p99_us[static_cast<std::size_t>(
          rmts::server::BudgetClass::kSession)] = std::stoull(next());
    } else {
      usage(argv[0]);
    }
  }

  try {
    rmts::server::Server server(config);
    g_server = &server;

    struct sigaction action{};
    action.sa_handler = handle_stop_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);

    std::cout << "rmts_serve listening on " << config.host << ":"
              << server.port() << std::endl;  // flush: launchers parse this

    server.run();
    g_server = nullptr;

    const auto stats = server.runtime_stats();
    std::cout << "rmts_serve drained: " << server.metrics().total_requests()
              << " requests, " << stats.connections_accepted
              << " connections, " << stats.requests_shed << " shed, "
              << stats.requests_expired << " expired\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rmts_serve: " << e.what() << '\n';
    return 1;
  }
}
