// rmts_loadgen: load generator for a running rmts_serve.
//
//   rmts_loadgen --port N [--host A] [--connections N] [--seconds S]
//                [--tasks N] [--processors N] [--util U] [--seed N]
//                [--alg NAME] [--bound NAME] [--json FILE]
//                [--mix admit=1,analyze=0,robustness=0,simulate=0,stats=0]
//                [--qps RATE] [--burst-factor F] [--burst-period S]
//                [--burst-duration S] [--deadline-ms MS]
//                [--retry [--max-attempts N]]
//                [--session [--churn-rate R]]
//
// By default each connection keeps exactly one request outstanding
// (closed loop), so the printed qps is the service's throughput at full
// utilization.  --qps switches to an open loop: Poisson arrivals at the
// given aggregate rate, pipelined without waiting for replies, which is
// how you drive the server past saturation and exercise its overload
// control (optionally with --burst-* flash crowds, --deadline-ms
// per-request deadlines, and --retry backoff honoring retry_after_ms).
// --session switches every connection to online-session churn: each opens
// its own long-lived session (session_open) and drives an admit/depart
// mix against it (--churn-rate = depart fraction), tracking live tickets
// so departures always name a real resident; per-op tables then report
// session_admit / session_depart.
// The driver itself lives in src/server/load.hpp and is shared with the
// bench_e18/bench_e20 benchmarks.  Latency percentiles are interpolated
// HDR quantiles (relative error <= 3.1%), reported overall and per op
// class; --json additionally writes the full report as one JSON document.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "server/json.hpp"
#include "server/load.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --port N [--host A] [--connections N] [--seconds S]"
               " [--tasks N] [--processors N] [--util U] [--seed N]"
               " [--alg NAME] [--bound NAME] [--json FILE]"
               " [--mix admit=1,stats=0,...]"
               " [--qps RATE] [--burst-factor F] [--burst-period S]"
               " [--burst-duration S] [--deadline-ms MS]"
               " [--retry] [--max-attempts N]"
               " [--session] [--churn-rate R]\n";
  std::exit(2);
}

void write_quantiles(rmts::server::JsonWriter& w, const rmts::Histogram& h) {
  w.key("n");
  w.value(h.count());
  w.key("p50_us");
  w.value(h.quantile(0.50));
  w.key("p90_us");
  w.value(h.quantile(0.90));
  w.key("p99_us");
  w.value(h.quantile(0.99));
  w.key("mean_us");
  w.value(h.mean());
  w.key("max_us");
  w.value(h.max());
}

std::string report_json(const rmts::server::LoadConfig& config,
                        const rmts::server::LoadReport& report) {
  using rmts::server::OpClass;
  rmts::server::JsonWriter w;
  w.begin_object();
  w.key("connections");
  w.value(config.connections);
  if (config.session) {
    w.key("session");
    w.value(true);
    w.key("churn_rate");
    w.value(config.churn_rate);
  }
  w.key("seconds");
  w.value(report.elapsed_seconds);
  w.key("requests");
  w.value(report.requests);
  w.key("offered");
  w.value(report.offered);
  w.key("retries");
  w.value(report.retries);
  w.key("qps");
  w.value(report.qps());
  w.key("goodput");
  w.value(report.goodput());
  w.key("ok");
  w.value(report.ok);
  w.key("accepted");
  w.value(report.accepted);
  w.key("shed");
  w.value(report.shed);
  w.key("expired");
  w.value(report.expired);
  w.key("errors");
  w.value(report.errors);
  w.key("transport_errors");
  w.value(report.transport_errors);
  w.key("latency");
  w.begin_object();
  write_quantiles(w, report.latency_us);
  w.end_object();
  w.key("per_op");
  w.begin_object();
  for (std::size_t op = 0; op < rmts::server::kOpClassCount; ++op) {
    const rmts::Histogram& h = report.per_op_latency_us[op];
    if (h.count() == 0) continue;
    w.key(rmts::server::op_class_name(static_cast<OpClass>(op)));
    w.begin_object();
    w.key("ok");
    w.value(report.per_op_ok[op]);
    write_quantiles(w, h);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

/// Parses "admit=3,analyze=1,..." into an OpMix (unnamed ops stay 0).
rmts::server::OpMix parse_mix(const std::string& text, const char* argv0) {
  rmts::server::OpMix mix{};
  mix.admit = 0.0;
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) usage(argv0);
    const std::string op = item.substr(0, eq);
    const double weight = std::atof(item.c_str() + eq + 1);
    if (op == "admit") {
      mix.admit = weight;
    } else if (op == "analyze") {
      mix.analyze = weight;
    } else if (op == "robustness") {
      mix.robustness = weight;
    } else if (op == "simulate") {
      mix.simulate = weight;
    } else if (op == "stats") {
      mix.stats = weight;
    } else {
      usage(argv0);
    }
  }
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  rmts::server::LoadConfig config;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--host") {
      config.host = next();
    } else if (flag == "--port") {
      config.port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (flag == "--connections") {
      config.connections = std::stoul(next());
    } else if (flag == "--seconds") {
      config.seconds = std::atof(next().c_str());
    } else if (flag == "--tasks") {
      config.tasks = std::stoul(next());
    } else if (flag == "--processors") {
      config.processors = std::stoul(next());
    } else if (flag == "--util") {
      config.normalized_utilization = std::atof(next().c_str());
    } else if (flag == "--seed") {
      config.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--alg") {
      config.algorithm = next();
    } else if (flag == "--bound") {
      config.bound = next();
    } else if (flag == "--mix") {
      config.mix = parse_mix(next(), argv[0]);
    } else if (flag == "--qps") {
      config.offered_qps = std::atof(next().c_str());
    } else if (flag == "--burst-factor") {
      config.burst_factor = std::atof(next().c_str());
    } else if (flag == "--burst-period") {
      config.burst_period_s = std::atof(next().c_str());
    } else if (flag == "--burst-duration") {
      config.burst_duration_s = std::atof(next().c_str());
    } else if (flag == "--deadline-ms") {
      config.deadline_ms = std::atoll(next().c_str());
    } else if (flag == "--retry") {
      config.retry = true;
    } else if (flag == "--session") {
      config.session = true;
    } else if (flag == "--churn-rate") {
      config.churn_rate = std::atof(next().c_str());
    } else if (flag == "--max-attempts") {
      config.max_attempts = std::atoi(next().c_str());
    } else if (flag == "--json") {
      json_path = next();
    } else {
      usage(argv[0]);
    }
  }
  if (config.port == 0) usage(argv[0]);

  try {
    const rmts::server::LoadReport report = rmts::server::run_load(config);
    std::cout << "rmts_loadgen: " << report.requests << " requests in "
              << report.elapsed_seconds << " s over " << config.connections
              << " connections"
              << (config.session          ? " (session churn)"
                  : config.offered_qps > 0.0 ? " (open loop)"
                                             : " (closed loop)")
              << '\n'
              << "  offered    " << report.offered << " (+" << report.retries
              << " retries)\n"
              << "  qps        " << report.qps() << " (goodput "
              << report.goodput() << ")\n"
              << "  ok         " << report.ok << " (" << report.accepted
              << " accepted)\n"
              << "  shed       " << report.shed << " (" << report.expired
              << " deadline-expired)\n"
              << "  errors     " << report.errors << " protocol, "
              << report.transport_errors << " transport\n"
              << "  latency_us p50=" << report.percentile_micros(0.50)
              << " p90=" << report.percentile_micros(0.90)
              << " p99=" << report.percentile_micros(0.99)
              << " max=" << report.max_micros() << '\n';
    for (std::size_t op = 0; op < rmts::server::kOpClassCount; ++op) {
      const rmts::Histogram& h = report.per_op_latency_us[op];
      if (h.count() == 0) continue;
      std::cout << "  " << rmts::server::op_class_name(
                              static_cast<rmts::server::OpClass>(op))
                << " n=" << h.count() << " p50=" << h.quantile(0.50)
                << " p90=" << h.quantile(0.90) << " p99=" << h.quantile(0.99)
                << " max=" << h.max() << '\n';
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "rmts_loadgen: cannot write " << json_path << '\n';
        return 1;
      }
      out << report_json(config, report) << '\n';
    }
    return report.transport_errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "rmts_loadgen: " << e.what() << '\n';
    return 1;
  }
}
