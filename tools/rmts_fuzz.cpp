// Time-bounded randomized cross-validation harness ("the fuzzer"):
// generates random workloads, runs every partitioning algorithm, and
// checks each accepted assignment against the discrete-event simulator
// plus the structural invariants -- including the fault-injection layer:
//
//  * every simulated run is cross-checked bit-for-bit (counters, misses,
//    trace) against the naive reference core (sim/simulator_reference.hpp);
//  * identity faults (factor 1.0, no jitter) must reproduce the nominal
//    run counter-for-counter;
//  * random overruns under budget enforcement must never cause a miss
//    (only degradations/aborts);
//  * under priority demotion every missing task must itself have
//    overrun (misses are attributable);
//  * processor failure must be contained to orphan accounting, not
//    crashes;
//  * periodically, the analytic robustness margins must not exceed the
//    simulated ones (analysis/robustness.hpp soundness).
//
//   rmts_fuzz [seconds=10] [seed=1]
//
// On violation the exact seed/attempt and fault configuration are printed
// and the offending task set is written to
// rmts_fuzz_violation_<seed>_<attempt>.txt, so any failure replays with
// `rmts_fuzz <any> <seed>` or from the dumped file.  Exit code 0 iff no
// violation found.  This is the long-running counterpart of the bounded
// soundness tests in tests/ -- run it for an hour before a release.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/robustness.hpp"
#include "bounds/best_of.hpp"
#include "bounds/bound.hpp"
#include "common/rng.hpp"
#include "io/taskset_io.hpp"
#include "partition/baselines.hpp"
#include "partition/edf_split.hpp"
#include "partition/rmts.hpp"
#include "partition/rmts_light.hpp"
#include "partition/spa.hpp"
#include "sim/simulator.hpp"
#include "sim/simulator_reference.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rmts;

struct Entry {
  std::shared_ptr<const Partitioner> algorithm;
  DispatchPolicy policy;
  /// Whether accepted => schedulable is claimed unconditionally (exact
  /// admission) or only within the algorithm's theorem premises (SPA).
  bool unconditional;
};

struct Reporter {
  std::uint64_t seed;
  std::uint64_t attempt = 0;
  std::uint64_t violations = 0;

  /// Prints the reproduction context and dumps the task set to a file.
  void violation(const std::string& what, const TaskSet& tasks,
                 const Assignment& assignment, const FaultModel& faults) {
    ++violations;
    std::cerr << "VIOLATION: " << what << "\n  repro: seed " << seed
              << ", attempt " << attempt << "\n  faults: factor "
              << faults.overrun_factor << ", ticks " << faults.overrun_ticks
              << ", prob " << faults.overrun_probability << ", jitter "
              << faults.release_jitter << ", fault-seed " << faults.seed
              << ", containment " << static_cast<int>(faults.containment)
              << ", failed-proc ";
    if (faults.failed_processor == kNoProcessor) {
      std::cerr << "none";
    } else {
      std::cerr << faults.failed_processor << "@" << faults.failure_time;
    }
    std::cerr << '\n' << tasks.describe() << assignment.describe();
    const std::string path = "rmts_fuzz_violation_" + std::to_string(seed) +
                             "_" + std::to_string(attempt) + ".txt";
    std::ofstream dump(path);
    if (dump) {
      write_task_set(dump, tasks);
      std::cerr << "  task set written to " << path << '\n';
    }
  }
};

bool counters_equal(const SimResult& a, const SimResult& b) {
  return a.schedulable == b.schedulable && a.misses.size() == b.misses.size() &&
         a.simulated_until == b.simulated_until && a.events == b.events &&
         a.jobs_released == b.jobs_released &&
         a.jobs_completed == b.jobs_completed &&
         a.preemptions == b.preemptions && a.migrations == b.migrations &&
         a.busy_time == b.busy_time && a.max_response == b.max_response &&
         a.jobs_degraded == b.jobs_degraded &&
         a.degraded_per_task == b.degraded_per_task &&
         a.jobs_aborted == b.jobs_aborted && a.jobs_demoted == b.jobs_demoted &&
         a.subtasks_orphaned == b.subtasks_orphaned;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const std::vector<Entry> roster{
      {std::make_shared<RmtsLight>(), DispatchPolicy::kFixedPriority, true},
      {std::make_shared<RmtsLight>(MaxSplitMethod::kBinarySearch),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<RmtsLight>(MaxSplitMethod::kSchedulingPoints,
                                   SelectionPolicy::kFirstFit),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<Rmts>(
           std::make_shared<BestOfBounds>(BestOfBounds::all_known())),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<Spa2>(), DispatchPolicy::kFixedPriority, false},
      {std::make_shared<PartitionedRm>(FitPolicy::kFirstFit,
                                       TaskOrder::kDecreasingUtilization,
                                       Admission::kExactRta),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<EdfSplit>(), DispatchPolicy::kEarliestDeadlineFirst,
       true},
  };

  Rng rng(seed);
  SimWorkspace workspace;  // reused across every simulated run
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t attempts = 0;  // fork key: advances even on infeasible draws
  std::uint64_t sets = 0;
  std::uint64_t accepted = 0;
  std::uint64_t margin_checks = 0;
  Reporter reporter{seed};

  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
             .count() < seconds) {
    Rng sample = rng.fork(attempts);
    reporter.attempt = attempts++;
    WorkloadConfig config;
    config.processors = static_cast<std::size_t>(sample.uniform_int(1, 8));
    config.tasks =
        config.processors * static_cast<std::size_t>(sample.uniform_int(2, 6));
    config.period_model = PeriodModel::kGrid;
    config.period_grid = small_hyperperiod_grid();
    config.max_task_utilization = sample.uniform(0.3, 0.95);
    config.normalized_utilization = sample.uniform(0.3, 0.99);
    if (config.normalized_utilization >
        0.95 * config.max_task_utilization * static_cast<double>(config.tasks) /
            static_cast<double>(config.processors)) {
      continue;  // infeasible UUniFast target; redraw
    }
    const TaskSet tasks = generate(sample, config);
    ++sets;

    const double theta = liu_layland_theta(tasks.size());
    for (const Entry& entry : roster) {
      const Assignment assignment =
          entry.algorithm->partition(tasks, config.processors);
      if (!assignment.success) continue;
      const bool claimed =
          entry.unconditional ||
          tasks.normalized_utilization(config.processors) <= theta;
      if (!claimed) continue;
      ++accepted;
      SimConfig sim;
      sim.horizon = recommended_horizon(tasks, 2'000'000);
      sim.policy = entry.policy;
      // Invariant 0: the indexed core agrees with the naive reference core
      // bit-for-bit on every run the fuzzer performs.
      const auto simulate_checked = [&](const SimConfig& sim_config) {
        SimResult result = simulate(tasks, assignment, sim_config, workspace);
        if (!(result == simulate_reference(tasks, assignment, sim_config))) {
          reporter.violation(
              entry.algorithm->name() + ": indexed core diverged from reference",
              tasks, assignment, sim_config.faults);
        }
        return result;
      };
      const SimResult nominal = simulate_checked(sim);
      if (!nominal.schedulable) {
        reporter.violation(entry.algorithm->name() +
                               " accepted but missed a deadline",
                           tasks, assignment, sim.faults);
        continue;
      }

      // Invariant 1: identity faults (factor 1.0, no jitter) are miss-free
      // and bit-identical on every counter.
      SimConfig identity = sim;
      identity.faults.seed =
          static_cast<std::uint64_t>(sample.uniform_int(1, 1 << 30));
      identity.faults.overrun_probability = sample.uniform(0.0, 1.0);
      identity.faults.containment = ContainmentPolicy::kBudgetEnforcement;
      if (!counters_equal(nominal, simulate_checked(identity))) {
        reporter.violation(entry.algorithm->name() +
                               ": identity fault model changed the run",
                           tasks, assignment, identity.faults);
      }

      // Invariant 2: overruns under budget enforcement never miss -- the
      // contained demand is exactly the accepted nominal demand.
      SimConfig contained = sim;
      contained.stop_at_first_miss = false;
      contained.faults.seed =
          static_cast<std::uint64_t>(sample.uniform_int(1, 1 << 30));
      contained.faults.overrun_factor = sample.uniform(1.0, 3.0);
      contained.faults.overrun_ticks = sample.uniform_int(0, 3);
      contained.faults.overrun_probability = sample.uniform(0.2, 1.0);
      contained.faults.containment = ContainmentPolicy::kBudgetEnforcement;
      const SimResult guarded = simulate_checked(contained);
      if (!guarded.misses.empty()) {
        reporter.violation(entry.algorithm->name() +
                               ": budget enforcement let an overrun miss",
                           tasks, assignment, contained.faults);
      }

      // Invariant 3: under priority demotion, only tasks that actually
      // overran can miss (no collateral victims).
      SimConfig demoted = contained;
      demoted.faults.containment = ContainmentPolicy::kPriorityDemotion;
      const SimResult shielded = simulate_checked(demoted);
      for (const DeadlineMiss& miss : shielded.misses) {
        for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
          if (tasks[rank].id == miss.task &&
              shielded.degraded_per_task[rank] == 0) {
            reporter.violation(
                entry.algorithm->name() +
                    ": demotion missed a task that never overran",
                tasks, assignment, demoted.faults);
          }
        }
      }

      // Invariant 4: processor failure is contained (orphans counted, no
      // crash; survivors keep the busy-time accounting consistent).
      if (reporter.attempt % 4 == 0) {
        SimConfig failing = sim;
        failing.stop_at_first_miss = false;
        failing.faults.failed_processor = static_cast<std::size_t>(
            sample.uniform_int(0, static_cast<Time>(config.processors) - 1));
        failing.faults.failure_time = sample.uniform_int(0, sim.horizon);
        const SimResult survived = simulate_checked(failing);
        if (survived.busy_time[failing.faults.failed_processor] >
            failing.faults.failure_time) {
          reporter.violation(entry.algorithm->name() +
                                 ": failed processor kept executing",
                             tasks, assignment, failing.faults);
        }
      }

      // Invariant 5 (periodic, costlier): the analytic robustness margins
      // never exceed the simulated ones on a fixed assignment.
      if (entry.policy == DispatchPolicy::kFixedPriority &&
          reporter.attempt % 16 == 0) {
        ++margin_checks;
        RobustnessConfig robustness;
        robustness.horizon_cap = 2'000'000;
        robustness.fault_seed =
            static_cast<std::uint64_t>(sample.uniform_int(1, 1 << 30));
        const RobustnessReport report =
            analyze_robustness(tasks, assignment, robustness);
        if (report.analytic_overrun_margin >
                report.simulated_overrun_margin + 1e-9 ||
            report.analytic_jitter_margin > report.simulated_jitter_margin) {
          reporter.violation(entry.algorithm->name() +
                                 ": analytic margin exceeds simulated margin",
                             tasks, assignment, sim.faults);
        }
      }
    }
  }

  std::cout << "rmts_fuzz: " << sets << " task sets, " << accepted
            << " accepted-and-claimed partitions simulated, " << margin_checks
            << " margin soundness checks, " << reporter.violations
            << " violations (seed " << seed << ")\n";
  return reporter.violations == 0 ? 0 : 1;
}
