// Time-bounded randomized cross-validation harness ("the fuzzer"):
// generates random workloads, runs every partitioning algorithm, and
// checks each accepted assignment against the discrete-event simulator
// plus the structural invariants -- including the fault-injection layer:
//
//  * every simulated run is cross-checked bit-for-bit (counters, misses,
//    trace) against the naive reference core (sim/simulator_reference.hpp);
//  * identity faults (factor 1.0, no jitter) must reproduce the nominal
//    run counter-for-counter;
//  * random overruns under budget enforcement must never cause a miss
//    (only degradations/aborts);
//  * under priority demotion every missing task must itself have
//    overrun (misses are attributable);
//  * processor failure must be contained to orphan accounting, not
//    crashes;
//  * periodically, the analytic robustness margins must not exceed the
//    simulated ones (analysis/robustness.hpp soundness).
//
//   rmts_fuzz [seconds=10] [seed=1]
//   rmts_fuzz proto [seconds=10] [seed=1]
//   rmts_fuzz kernel [seconds=10] [seed=1]
//   rmts_fuzz churn [seconds=10] [seed=1]
//
// The `proto` mode fuzzes the admission-control service's codec instead:
// random, truncated, mutated and oversized byte streams are fed through
// the in-process LineDecoder + Router pipeline (no sockets), asserting
// that nothing crashes, decoder memory stays under its cap, and every
// reply -- including those for garbage -- is a well-formed one-line JSON
// object carrying "ok" and, on failure, a non-empty "error".
//
// The `churn` mode drives random admit/depart/rebalance interleavings
// through an online PartitionSession (src/online) and checks, after every
// operation, that no resident task is ever un-admitted (the harness's own
// ticket ledger must match session.residents() exactly) and that the
// utilization accounting balances; periodically -- and at the end of every
// interleaving -- it re-derives full structural + exact-RTA invariants
// from scratch (the differential against the incremental cached path) and
// batch re-partitions the live resident set with RmtsLight to sanity-check
// the online packing against the paper's from-scratch partitioner.
//
// The `kernel` mode differentially fuzzes the SoA RTA kernel
// (rta/rta_kernel.hpp) against the checked scalar path: random hosted
// sets -- including overflow-scale parameters that straddle the 2^31
// fast-path boundary -- must produce bit-identical analysis outcomes,
// admission verdicts and response times through kernel_analyze,
// ProcessorState::fits/fits_batch and kernel_jitter_response, with the
// SoA mirror staying consistent under any incremental insertion order.
//
// On violation the exact seed/attempt and fault configuration are printed
// and the offending task set is written to
// rmts_fuzz_violation_<seed>_<attempt>.txt, so any failure replays with
// `rmts_fuzz <any> <seed>` or from the dumped file.  Exit code 0 iff no
// violation found.  This is the long-running counterpart of the bounded
// soundness tests in tests/ -- run it for an hour before a release.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/robustness.hpp"
#include "bounds/best_of.hpp"
#include "bounds/bound.hpp"
#include "common/checked_math.hpp"
#include "common/rng.hpp"
#include "io/taskset_io.hpp"
#include "online/session.hpp"
#include "partition/baselines.hpp"
#include "partition/edf_split.hpp"
#include "partition/processor_state.hpp"
#include "partition/rmts.hpp"
#include "partition/rmts_light.hpp"
#include "partition/spa.hpp"
#include "server/client.hpp"
#include "server/json.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "server/router.hpp"
#include "rta/rta.hpp"
#include "rta/rta_kernel.hpp"
#include "sim/simulator.hpp"
#include "sim/simulator_reference.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rmts;

struct Entry {
  std::shared_ptr<const Partitioner> algorithm;
  DispatchPolicy policy;
  /// Whether accepted => schedulable is claimed unconditionally (exact
  /// admission) or only within the algorithm's theorem premises (SPA).
  bool unconditional;
};

struct Reporter {
  std::uint64_t seed;
  std::uint64_t attempt = 0;
  std::uint64_t violations = 0;

  /// Prints the reproduction context and dumps the task set to a file.
  void violation(const std::string& what, const TaskSet& tasks,
                 const Assignment& assignment, const FaultModel& faults) {
    ++violations;
    std::cerr << "VIOLATION: " << what << "\n  repro: seed " << seed
              << ", attempt " << attempt << "\n  faults: factor "
              << faults.overrun_factor << ", ticks " << faults.overrun_ticks
              << ", prob " << faults.overrun_probability << ", jitter "
              << faults.release_jitter << ", fault-seed " << faults.seed
              << ", containment " << static_cast<int>(faults.containment)
              << ", failed-proc ";
    if (faults.failed_processor == kNoProcessor) {
      std::cerr << "none";
    } else {
      std::cerr << faults.failed_processor << "@" << faults.failure_time;
    }
    std::cerr << '\n' << tasks.describe() << assignment.describe();
    const std::string path = "rmts_fuzz_violation_" + std::to_string(seed) +
                             "_" + std::to_string(attempt) + ".txt";
    std::ofstream dump(path);
    if (dump) {
      write_task_set(dump, tasks);
      std::cerr << "  task set written to " << path << '\n';
    }
  }
};

bool counters_equal(const SimResult& a, const SimResult& b) {
  return a.schedulable == b.schedulable && a.misses.size() == b.misses.size() &&
         a.simulated_until == b.simulated_until && a.events == b.events &&
         a.jobs_released == b.jobs_released &&
         a.jobs_completed == b.jobs_completed &&
         a.preemptions == b.preemptions && a.migrations == b.migrations &&
         a.busy_time == b.busy_time && a.max_response == b.max_response &&
         a.jobs_degraded == b.jobs_degraded &&
         a.degraded_per_task == b.degraded_per_task &&
         a.jobs_aborted == b.jobs_aborted && a.jobs_demoted == b.jobs_demoted &&
         a.subtasks_orphaned == b.subtasks_orphaned;
}

/// In-process protocol fuzz: random byte streams through the service
/// codec.  Returns the number of violations found.
std::uint64_t proto_fuzz(double seconds, std::uint64_t seed) {
  constexpr std::size_t kMaxLine = 4096;  // small cap => oversized paths hit
  server::Metrics metrics;
  server::RouterConfig router_config;
  router_config.max_tasks = 64;
  router_config.max_processors = 16;
  router_config.sim_horizon_cap = 200'000;
  const server::Router router(router_config, metrics);

  // A small pool of valid requests used as mutation seeds.
  Rng pool_rng(seed);
  std::vector<std::string> valid;
  for (std::size_t i = 0; i < 16; ++i) {
    Rng sample = pool_rng.fork(i);
    WorkloadConfig config;
    config.tasks = 8;
    config.processors = 4;
    config.normalized_utilization = 0.5;
    const TaskSet tasks = generate(sample, config);
    switch (i % 4) {
      case 0: valid.push_back(server::make_admit_request(4, tasks)); break;
      case 1: valid.push_back(server::make_analyze_request(4, tasks)); break;
      case 2: valid.push_back(server::make_simulate_request(4, tasks)); break;
      default: valid.push_back(server::make_stats_request()); break;
    }
  }

  Rng rng(seed ^ 0x70726f746fULL);  // "proto"
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t attempts = 0;
  std::uint64_t lines = 0;
  std::uint64_t oversized = 0;
  std::uint64_t violations = 0;
  const auto fail = [&](const std::string& what, const std::string& detail) {
    ++violations;
    std::cerr << "PROTO VIOLATION: " << what << "\n  repro: seed " << seed
              << ", attempt " << attempts << "\n  detail: " << detail << '\n';
  };

  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
             .count() < seconds) {
    Rng sample = rng.fork(attempts++);
    server::LineDecoder decoder(kMaxLine);

    // Compose a stream of ~8 segments: garbage, mutated/truncated valid
    // requests, oversized runs, and pristine requests.
    std::string stream;
    const auto segments = static_cast<std::size_t>(sample.uniform_int(1, 8));
    for (std::size_t s = 0; s < segments; ++s) {
      switch (sample.uniform_int(0, 4)) {
        case 0: {  // raw random bytes (newlines included by chance)
          const auto n = static_cast<std::size_t>(sample.uniform_int(0, 256));
          for (std::size_t i = 0; i < n; ++i) {
            stream.push_back(static_cast<char>(sample.uniform_int(0, 255)));
          }
          stream.push_back('\n');
          break;
        }
        case 1: {  // a valid request with random byte flips
          std::string line = valid[static_cast<std::size_t>(
              sample.uniform_int(0, static_cast<std::int64_t>(valid.size()) - 1))];
          const auto flips = static_cast<std::size_t>(sample.uniform_int(0, 8));
          for (std::size_t i = 0; i < flips && !line.empty(); ++i) {
            const auto at = static_cast<std::size_t>(sample.uniform_int(
                0, static_cast<std::int64_t>(line.size()) - 1));
            line[at] = static_cast<char>(sample.uniform_int(1, 255));
          }
          if (line.find('\n') != std::string::npos) {
            line.erase(line.find('\n'));  // keep it one line
          }
          stream += line;
          stream.push_back('\n');
          break;
        }
        case 2: {  // truncated valid request
          const std::string& line = valid[static_cast<std::size_t>(
              sample.uniform_int(0, static_cast<std::int64_t>(valid.size()) - 1))];
          const auto keep = static_cast<std::size_t>(
              sample.uniform_int(0, static_cast<std::int64_t>(line.size())));
          stream += line.substr(0, keep);
          stream.push_back('\n');
          break;
        }
        case 3: {  // oversized line (over the decoder cap)
          const auto n = kMaxLine + static_cast<std::size_t>(
                                        sample.uniform_int(1, 4096));
          stream.append(n, 'x');
          stream.push_back('\n');
          break;
        }
        default: {  // pristine valid request
          stream += valid[static_cast<std::size_t>(
              sample.uniform_int(0, static_cast<std::int64_t>(valid.size()) - 1))];
          stream.push_back('\n');
          break;
        }
      }
    }

    // Feed in random fragments, draining after each, like a TCP stream.
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const auto chunk = static_cast<std::size_t>(sample.uniform_int(
          1, static_cast<std::int64_t>(stream.size() - offset)));
      decoder.feed(std::string_view(stream).substr(offset, chunk));
      offset += chunk;
      if (decoder.buffered() > kMaxLine) {
        fail("decoder memory exceeded its cap",
             "buffered " + std::to_string(decoder.buffered()));
      }

      server::LineDecoder::Line line;
      while (decoder.next(line)) {
        ++lines;
        const server::HandleOutcome outcome =
            line.oversized ? router.oversized_line() : router.handle(line.text);
        if (line.oversized) ++oversized;

        // Every reply, for any input, must be one well-formed JSON object
        // with a bool "ok"; failures must carry a non-empty "error".
        server::JsonValue reply;
        std::string parse_error;
        if (outcome.reply.find('\n') != std::string::npos) {
          fail("reply contains a newline", outcome.reply);
        } else if (!server::json_parse(outcome.reply, reply, parse_error)) {
          fail("reply is not valid JSON: " + parse_error, outcome.reply);
        } else if (!reply.is_object()) {
          fail("reply is not a JSON object", outcome.reply);
        } else {
          const server::JsonValue* ok = reply.find("ok");
          if (ok == nullptr || !ok->is_bool()) {
            fail("reply lacks a bool \"ok\"", outcome.reply);
          } else if (!ok->as_bool()) {
            const server::JsonValue* error = reply.find("error");
            if (error == nullptr || !error->is_string() ||
                error->as_string().empty()) {
              fail("failure reply lacks a non-empty \"error\"", outcome.reply);
            }
            if (!outcome.error) {
              fail("ok:false reply not recorded as an error", outcome.reply);
            }
          }
        }
      }
    }
  }

  std::cout << "rmts_fuzz proto: " << attempts << " streams, " << lines
            << " lines (" << oversized << " oversized), " << violations
            << " violations (seed " << seed << ")\n";
  return violations;
}

// ------------------------------------------------ kernel differential --

/// The scalar path's documented fits() semantics, materialized naively:
/// the candidate under its higher-priority prefix, then every
/// lower-priority hosted subtask with the candidate appended to its
/// interferer set -- all through the checked scalar response_time, no
/// seeds, no caches.  Ground truth for the kernel's admission verdicts.
bool oracle_fits(std::span<const Subtask> subtasks, const Subtask& candidate,
                 RtaOutcome& own) {
  const auto pos_it = std::lower_bound(
      subtasks.begin(), subtasks.end(), candidate,
      [](const Subtask& a, const Subtask& b) { return a.priority < b.priority; });
  const auto pos = static_cast<std::size_t>(pos_it - subtasks.begin());
  own = response_time(candidate.wcet, candidate.deadline, subtasks.first(pos));
  if (!own.schedulable) return false;
  for (std::size_t i = pos; i < subtasks.size(); ++i) {
    std::vector<Subtask> hp(subtasks.begin(),
                            subtasks.begin() + static_cast<std::ptrdiff_t>(i));
    hp.push_back(candidate);
    const RtaOutcome out =
        response_time(subtasks[i].wcet, subtasks[i].deadline, hp);
    if (!out.schedulable) return false;
  }
  return true;
}

/// Replica of the pre-kernel robustness jitter fixed point (saturating
/// interference, overflow conflated with kTimeInfinity) -- the value
/// contract kernel_jitter_response promises to keep.
std::optional<Time> oracle_jitter(Time wcet, Time bound,
                                  std::span<const Subtask> hp, Time jitter) {
  const auto sat_add = [](Time a, Time b) noexcept {
    const auto sum = checked_add(a, b);
    return sum ? *sum : kTimeInfinity;
  };
  const auto sat_interference = [&](Time t) noexcept {
    const auto demand = interference_at(t, hp);
    return demand ? *demand : kTimeInfinity;
  };
  if (wcet > bound) return std::nullopt;
  Time r = sat_add(wcet, sat_interference(sat_add(wcet, jitter)));
  while (r <= bound) {
    const Time next = sat_add(wcet, sat_interference(sat_add(r, jitter)));
    if (next == r) return r;
    r = next;
  }
  return std::nullopt;
}

/// One random subtask.  Realistic draws stay well inside the kernel's
/// no-overflow fast path; overflow-scale draws straddle the 2^31 boundary
/// (including exactly 2^31 +- a few) and reach kTimeInfinity/4 so every
/// probe also exercises the checked scalar fallback and the saturating
/// prefix sums.
Subtask random_kernel_subtask(Rng& rng, std::size_t priority,
                              bool overflow_scale) {
  Subtask s;
  s.priority = priority;
  s.task_id = static_cast<TaskId>(priority);
  if (overflow_scale && rng.uniform_int(0, 1) == 0) {
    const Time boundary = Time{1} << 31;
    s.period = rng.uniform_int(0, 1) == 0
                   ? std::max<Time>(1, boundary + rng.uniform_int(-4, 4))
                   : rng.uniform_int(1, kTimeInfinity / 4);
    s.wcet = rng.uniform_int(0, 1) == 0 ? rng.uniform_int(1, s.period)
                                        : std::max<Time>(1, boundary - 2 +
                                                                rng.uniform_int(0, 4));
  } else {
    s.period = rng.uniform_int(1, 1'000'000);
    s.wcet = rng.uniform_int(1, s.period);
  }
  s.deadline = rng.uniform_int(1, s.period);
  return s;
}

/// Differential fuzz of the SoA kernel against the scalar path.  Returns
/// the number of violations found.
std::uint64_t kernel_fuzz(double seconds, std::uint64_t seed) {
  Rng rng(seed ^ 0x6b65726e656cULL);  // "kernel"
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t attempts = 0;
  std::uint64_t probes = 0;
  std::uint64_t violations = 0;
  const auto fail = [&](const std::string& what) {
    ++violations;
    std::cerr << "KERNEL VIOLATION: " << what << "\n  repro: seed " << seed
              << ", attempt " << attempts - 1 << '\n';
  };

  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
             .count() < seconds) {
    Rng sample = rng.fork(attempts++);
    const bool overflow_scale = sample.uniform_int(0, 5) == 0;
    const auto n = static_cast<std::size_t>(sample.uniform_int(0, 10));
    std::vector<Subtask> subtasks;
    subtasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      subtasks.push_back(random_kernel_subtask(sample, i, overflow_scale));
    }

    // (a) A rebuilt mirror is consistent, and kernel_analyze (the routed
    // analyze_processor) agrees bit-for-bit with per-prefix scalar RTA.
    RtaSoa soa;
    soa.assign(subtasks);
    if (!soa.mirrors(subtasks)) fail("assign() mirror inconsistent");
    const ProcessorRta kernel = kernel_analyze(subtasks);
    {
      bool schedulable = true;
      std::size_t first_miss = n;
      for (std::size_t i = 0; i < n; ++i) {
        const auto hp = std::span<const Subtask>(subtasks).first(i);
        const RtaOutcome out =
            response_time(subtasks[i].wcet, subtasks[i].deadline, hp);
        if (!out.schedulable) {
          schedulable = false;
          first_miss = i;
          break;
        }
        if (kernel.response[i] != out.response) {
          fail("kernel_analyze response diverged at index " +
               std::to_string(i));
        }
      }
      if (kernel.schedulable != schedulable || kernel.first_miss != first_miss) {
        fail("kernel_analyze verdict diverged from scalar per-prefix RTA");
      }
    }

    // (b) Seeded and with-extra twins at a random prefix are bit-identical
    // to the scalar functions under the same (valid) seed.
    if (n > 0) {
      const auto i = static_cast<std::size_t>(
          sample.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const Subtask probe = subtasks[i];
      const auto hp = std::span<const Subtask>(subtasks).first(i);
      const Time seed_value = sample.uniform_int(0, probe.wcet);
      const RtaOutcome ks = kernel_response_time(
          subtasks, soa, i, probe.wcet, probe.deadline, seed_value);
      const RtaOutcome ss =
          response_time_seeded(probe.wcet, probe.deadline, hp, seed_value);
      if (ks.schedulable != ss.schedulable || ks.response != ss.response) {
        fail("kernel_response_time diverged from response_time_seeded");
      }
      const Subtask extra = random_kernel_subtask(
          sample, static_cast<std::size_t>(sample.uniform_int(0, 20)),
          overflow_scale);
      const RtaOutcome kw = kernel_response_time_with(
          subtasks, soa, i, probe.wcet, probe.deadline, extra, seed_value);
      const RtaOutcome sw = response_time_with(probe.wcet, probe.deadline, hp,
                                               extra, seed_value);
      if (kw.schedulable != sw.schedulable || kw.response != sw.response) {
        fail("kernel_response_time_with diverged from response_time_with");
      }
    }

    // (c) Incremental mirror maintenance: inserting the subtasks in a
    // random order at their priority positions must leave the mirror
    // indistinguishable from a rebuild at every step.
    std::vector<Subtask> shuffled = subtasks;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          sample.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(shuffled[i - 1], shuffled[j]);
    }
    {
      RtaSoa incremental;
      std::vector<Subtask> hosted;
      for (const Subtask& s : shuffled) {
        const auto pos_it = std::lower_bound(
            hosted.begin(), hosted.end(), s,
            [](const Subtask& a, const Subtask& b) {
              return a.priority < b.priority;
            });
        const auto pos = static_cast<std::size_t>(pos_it - hosted.begin());
        hosted.insert(pos_it, s);
        incremental.insert(pos, s);
        if (!incremental.mirrors(hosted)) {
          fail("insert() mirror inconsistent after " +
               std::to_string(hosted.size()) + " insertions");
          break;
        }
      }
    }

    // (d) Admission: fits() (kernel-routed, seeded from the memoized
    // cache) and fits_batch() agree with the naive scalar oracle on the
    // verdict AND the candidate's reported response, and the verdict is
    // independent of the add() order that built the processor.
    ProcessorState in_order;
    for (const Subtask& s : subtasks) in_order.add(s);
    ProcessorState shuffled_order;
    for (const Subtask& s : shuffled) shuffled_order.add(s);

    const auto k = static_cast<std::size_t>(sample.uniform_int(1, 4));
    std::vector<Subtask> candidates;
    candidates.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
      candidates.push_back(random_kernel_subtask(
          sample, static_cast<std::size_t>(sample.uniform_int(0, 20)),
          overflow_scale));
    }
    std::vector<KernelFit> verdicts(candidates.size());
    in_order.fits_batch(candidates, verdicts);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      ++probes;
      RtaOutcome own;
      const bool expected = oracle_fits(subtasks, candidates[c], own);
      if (in_order.fits(candidates[c]) != expected) {
        fail("fits() diverged from the scalar oracle");
      }
      if (shuffled_order.fits(candidates[c]) != expected) {
        fail("fits() verdict depends on add() order");
      }
      if (verdicts[c].fits != expected) {
        fail("fits_batch() diverged from the scalar oracle");
      }
      if (expected && verdicts[c].response != own.response) {
        fail("fits_batch() candidate response diverged from scalar RTA");
      }
    }

    // (e) The jitter kernel keeps the old robustness loop's exact values.
    if (n > 0) {
      const auto i = static_cast<std::size_t>(
          sample.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const auto hp = std::span<const Subtask>(subtasks).first(i);
      const Time jitter = sample.uniform_int(0, 1) == 0
                              ? sample.uniform_int(0, 1'000'000)
                              : sample.uniform_int(0, kTimeInfinity / 4);
      const Time bound = subtasks[i].period;
      const auto kj = kernel_jitter_response(subtasks, soa, i,
                                             subtasks[i].wcet, bound, jitter);
      const auto sj = oracle_jitter(subtasks[i].wcet, bound, hp, jitter);
      if (kj != sj) fail("kernel_jitter_response diverged from scalar loop");
    }
  }

  std::cout << "rmts_fuzz kernel: " << attempts << " hosted sets, " << probes
            << " admission probes, " << violations << " violations (seed "
            << seed << ")\n";
  return violations;
}

// --------------------------------------------------- online churn fuzz --

/// Random admit/depart/rebalance interleavings on a PartitionSession.
/// Returns the number of violations found.
std::uint64_t churn_fuzz(double seconds, std::uint64_t seed) {
  Rng rng(seed ^ 0x636875726eULL);  // "churn"
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t attempts = 0;
  std::uint64_t operations = 0;
  std::uint64_t admitted = 0;
  std::uint64_t split_admits = 0;
  std::uint64_t departed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t full_checks = 0;
  std::uint64_t batch_checks = 0;
  std::uint64_t batch_accepts = 0;
  std::uint64_t violations = 0;

  // The harness's own ledger of what must be resident: insertion-ordered
  // (ticket, wcet, period) rows.  Tickets are monotone, so this stays
  // ticket-sorted for free -- directly comparable to session.residents().
  struct Row {
    online::Ticket ticket;
    Time wcet;
    Time period;
  };
  std::vector<Row> ledger;

  const auto fail = [&](const std::string& what, std::uint64_t op) {
    ++violations;
    std::cerr << "CHURN VIOLATION: " << what << "\n  repro: seed " << seed
              << ", attempt " << attempts - 1 << ", op " << op << '\n';
    std::vector<std::pair<Time, Time>> pairs;
    pairs.reserve(ledger.size());
    for (const Row& row : ledger) pairs.emplace_back(row.wcet, row.period);
    if (pairs.empty()) return;
    const std::string path = "rmts_fuzz_violation_" + std::to_string(seed) +
                             "_" + std::to_string(attempts - 1) + ".txt";
    std::ofstream dump(path);
    if (dump) {
      write_task_set(dump, TaskSet::from_pairs(pairs));
      std::cerr << "  resident set written to " << path << '\n';
    }
  };

  // Never-un-admit, after EVERY operation: the live resident rows must be
  // exactly the ledger -- same tickets, same parameters, nothing dropped,
  // nothing mutated -- and the utilization books must balance.
  const auto check_residents = [&](const online::PartitionSession& session,
                                   std::uint64_t op) {
    const auto residents = session.residents();
    if (residents.size() != ledger.size()) {
      fail("resident count diverged from the ledger (" +
               std::to_string(residents.size()) + " vs " +
               std::to_string(ledger.size()) + ")",
           op);
      return;
    }
    for (std::size_t i = 0; i < ledger.size(); ++i) {
      if (residents[i].ticket != ledger[i].ticket ||
          residents[i].wcet != ledger[i].wcet ||
          residents[i].period != ledger[i].period) {
        fail("resident row " + std::to_string(i) + " diverged (ticket " +
                 std::to_string(residents[i].ticket) + " vs " +
                 std::to_string(ledger[i].ticket) + ")",
             op);
        return;
      }
    }
    double expected_utilization = 0.0;
    for (const Row& row : ledger) {
      expected_utilization +=
          static_cast<double>(row.wcet) / static_cast<double>(row.period);
    }
    const online::SessionStats stats = session.stats();
    const double tolerance = 1e-9 * std::max(1.0, expected_utilization);
    if (std::abs(stats.utilization - expected_utilization) > tolerance) {
      fail("utilization accounting diverged (" +
               std::to_string(stats.utilization) + " vs ledger " +
               std::to_string(expected_utilization) + ")",
           op);
    }
    if (stats.resident_tasks != ledger.size()) {
      fail("stats.resident_tasks diverged from the ledger", op);
    }
  };

  // From-scratch cross-checks: full structural + exact-RTA invariants,
  // and a batch RmtsLight re-partition of the live resident set.
  const RmtsLight batch;
  const auto check_from_scratch = [&](const online::PartitionSession& session,
                                      std::size_t processors,
                                      std::uint64_t op) {
    ++full_checks;
    const std::string violation = session.check_invariants();
    if (!violation.empty()) fail("invariant: " + violation, op);
    if (ledger.empty()) return;
    ++batch_checks;
    std::vector<std::pair<Time, Time>> pairs;
    pairs.reserve(ledger.size());
    for (const Row& row : ledger) pairs.emplace_back(row.wcet, row.period);
    const TaskSet residents = TaskSet::from_pairs(pairs);
    const Assignment repartition = batch.partition(residents, processors);
    if (repartition.success) ++batch_accepts;
    // The sanity leg: what the online session is hosting is schedulable
    // from scratch (check_invariants above), so a batch reject is a
    // packing-quality gap, not a soundness bug -- but a batch accept that
    // claims LESS utilization than the session holds would mean the
    // ledger and the assignment disagree about what "the set" is.
    if (repartition.success &&
        std::abs(residents.total_utilization() - session.stats().utilization) >
            1e-9 * std::max(1.0, residents.total_utilization())) {
      fail("batch re-partition saw a different total utilization", op);
    }
  };

  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
             .count() < seconds) {
    Rng sample = rng.fork(attempts++);

    online::SessionConfig config;
    config.processors = static_cast<std::size_t>(sample.uniform_int(1, 6));
    config.allow_splitting = sample.uniform_int(0, 3) != 0;
    config.split_granularity = sample.uniform_int(0, 1) == 0
                                   ? Time{1}
                                   : sample.uniform_int(1, 16);
    config.rebalance_every =
        static_cast<std::size_t>(sample.uniform_int(0, 24));
    config.max_migrations_per_round =
        static_cast<std::size_t>(sample.uniform_int(1, 8));
    config.hysteresis = sample.uniform(0.02, 0.30);
    if (sample.uniform_int(0, 7) == 0) {
      config.max_resident = static_cast<std::size_t>(sample.uniform_int(1, 8));
    }
    online::PartitionSession session(config);
    ledger.clear();

    const auto ops =
        static_cast<std::uint64_t>(sample.uniform_int(32, 160));
    const double depart_rate = sample.uniform(0.10, 0.60);
    for (std::uint64_t op = 0; op < ops; ++op) {
      ++operations;
      const double roll = sample.uniform(0.0, 1.0);
      if (!ledger.empty() && roll < depart_rate) {
        const auto victim = static_cast<std::size_t>(sample.uniform_int(
            0, static_cast<std::int64_t>(ledger.size()) - 1));
        const online::Ticket ticket = ledger[victim].ticket;
        ledger.erase(ledger.begin() + static_cast<std::ptrdiff_t>(victim));
        if (!session.depart(ticket)) {
          fail("depart(" + std::to_string(ticket) + ") of a resident failed",
               op);
        }
        ++departed;
        if (session.depart(ticket)) {
          fail("double depart(" + std::to_string(ticket) + ") succeeded", op);
        }
      } else if (roll < depart_rate + 0.05) {
        migrations += session.rebalance();
      } else {
        // Modest utilizations keep sessions long-lived; occasional heavy
        // draws force rejections and split placements.
        const Time period = sample.uniform_int(2, 10'000);
        const double target = sample.uniform_int(0, 4) == 0
                                  ? sample.uniform(0.5, 1.0)
                                  : sample.uniform(0.02, 0.45);
        const Time wcet = std::max<Time>(
            1, static_cast<Time>(static_cast<double>(period) * target));
        const online::AdmitResult result = session.admit(wcet, period);
        if (result.admitted) {
          ++admitted;
          if (result.parts > 1) ++split_admits;
          if (!ledger.empty() && result.ticket <= ledger.back().ticket) {
            fail("ticket " + std::to_string(result.ticket) +
                     " not monotonically increasing",
                 op);
          }
          ledger.push_back({result.ticket, wcet, period});
        }
      }
      check_residents(session, op);
      if (op % 24 == 23) {
        check_from_scratch(session, config.processors, op);
      }
      if (violations != 0) break;
    }
    if (violations != 0) break;
    check_from_scratch(session, config.processors, ops);
  }

  std::cout << "rmts_fuzz churn: " << attempts << " sessions, " << operations
            << " ops (" << admitted << " admits, " << split_admits
            << " split, " << departed << " departs, " << migrations
            << " migrations), " << full_checks << " full invariant checks, "
            << batch_accepts << "/" << batch_checks
            << " batch re-partition accepts, " << violations
            << " violations (seed " << seed << ")\n";
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "kernel") {
    const double kernel_seconds = argc > 2 ? std::atof(argv[2]) : 10.0;
    const std::uint64_t kernel_seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
    return kernel_fuzz(kernel_seconds, kernel_seed) == 0 ? 0 : 1;
  }
  if (argc > 1 && std::string(argv[1]) == "churn") {
    const double churn_seconds = argc > 2 ? std::atof(argv[2]) : 10.0;
    const std::uint64_t churn_seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
    return churn_fuzz(churn_seconds, churn_seed) == 0 ? 0 : 1;
  }
  if (argc > 1 && std::string(argv[1]) == "proto") {
    const double proto_seconds = argc > 2 ? std::atof(argv[2]) : 10.0;
    const std::uint64_t proto_seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
    return proto_fuzz(proto_seconds, proto_seed) == 0 ? 0 : 1;
  }

  const double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const std::vector<Entry> roster{
      {std::make_shared<RmtsLight>(), DispatchPolicy::kFixedPriority, true},
      {std::make_shared<RmtsLight>(MaxSplitMethod::kBinarySearch),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<RmtsLight>(MaxSplitMethod::kSchedulingPoints,
                                   SelectionPolicy::kFirstFit),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<Rmts>(
           std::make_shared<BestOfBounds>(BestOfBounds::all_known())),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<Spa2>(), DispatchPolicy::kFixedPriority, false},
      {std::make_shared<PartitionedRm>(FitPolicy::kFirstFit,
                                       TaskOrder::kDecreasingUtilization,
                                       Admission::kExactRta),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<EdfSplit>(), DispatchPolicy::kEarliestDeadlineFirst,
       true},
  };

  Rng rng(seed);
  SimWorkspace workspace;  // reused across every simulated run
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t attempts = 0;  // fork key: advances even on infeasible draws
  std::uint64_t sets = 0;
  std::uint64_t accepted = 0;
  std::uint64_t margin_checks = 0;
  Reporter reporter{seed};

  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
             .count() < seconds) {
    Rng sample = rng.fork(attempts);
    reporter.attempt = attempts++;
    WorkloadConfig config;
    config.processors = static_cast<std::size_t>(sample.uniform_int(1, 8));
    config.tasks =
        config.processors * static_cast<std::size_t>(sample.uniform_int(2, 6));
    config.period_model = PeriodModel::kGrid;
    config.period_grid = small_hyperperiod_grid();
    config.max_task_utilization = sample.uniform(0.3, 0.95);
    config.normalized_utilization = sample.uniform(0.3, 0.99);
    if (config.normalized_utilization >
        0.95 * config.max_task_utilization * static_cast<double>(config.tasks) /
            static_cast<double>(config.processors)) {
      continue;  // infeasible UUniFast target; redraw
    }
    const TaskSet tasks = generate(sample, config);
    ++sets;

    const double theta = liu_layland_theta(tasks.size());
    for (const Entry& entry : roster) {
      const Assignment assignment =
          entry.algorithm->partition(tasks, config.processors);
      if (!assignment.success) continue;
      const bool claimed =
          entry.unconditional ||
          tasks.normalized_utilization(config.processors) <= theta;
      if (!claimed) continue;
      ++accepted;
      SimConfig sim;
      sim.horizon = recommended_horizon(tasks, 2'000'000);
      sim.policy = entry.policy;
      // Invariant 0: the indexed core agrees with the naive reference core
      // bit-for-bit on every run the fuzzer performs.
      const auto simulate_checked = [&](const SimConfig& sim_config) {
        SimResult result = simulate(tasks, assignment, sim_config, workspace);
        if (!(result == simulate_reference(tasks, assignment, sim_config))) {
          reporter.violation(
              entry.algorithm->name() + ": indexed core diverged from reference",
              tasks, assignment, sim_config.faults);
        }
        return result;
      };
      const SimResult nominal = simulate_checked(sim);
      if (!nominal.schedulable) {
        reporter.violation(entry.algorithm->name() +
                               " accepted but missed a deadline",
                           tasks, assignment, sim.faults);
        continue;
      }

      // Invariant 1: identity faults (factor 1.0, no jitter) are miss-free
      // and bit-identical on every counter.
      SimConfig identity = sim;
      identity.faults.seed =
          static_cast<std::uint64_t>(sample.uniform_int(1, 1 << 30));
      identity.faults.overrun_probability = sample.uniform(0.0, 1.0);
      identity.faults.containment = ContainmentPolicy::kBudgetEnforcement;
      if (!counters_equal(nominal, simulate_checked(identity))) {
        reporter.violation(entry.algorithm->name() +
                               ": identity fault model changed the run",
                           tasks, assignment, identity.faults);
      }

      // Invariant 2: overruns under budget enforcement never miss -- the
      // contained demand is exactly the accepted nominal demand.
      SimConfig contained = sim;
      contained.stop_at_first_miss = false;
      contained.faults.seed =
          static_cast<std::uint64_t>(sample.uniform_int(1, 1 << 30));
      contained.faults.overrun_factor = sample.uniform(1.0, 3.0);
      contained.faults.overrun_ticks = sample.uniform_int(0, 3);
      contained.faults.overrun_probability = sample.uniform(0.2, 1.0);
      contained.faults.containment = ContainmentPolicy::kBudgetEnforcement;
      const SimResult guarded = simulate_checked(contained);
      if (!guarded.misses.empty()) {
        reporter.violation(entry.algorithm->name() +
                               ": budget enforcement let an overrun miss",
                           tasks, assignment, contained.faults);
      }

      // Invariant 3: under priority demotion, only tasks that actually
      // overran can miss (no collateral victims).
      SimConfig demoted = contained;
      demoted.faults.containment = ContainmentPolicy::kPriorityDemotion;
      const SimResult shielded = simulate_checked(demoted);
      for (const DeadlineMiss& miss : shielded.misses) {
        for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
          if (tasks[rank].id == miss.task &&
              shielded.degraded_per_task[rank] == 0) {
            reporter.violation(
                entry.algorithm->name() +
                    ": demotion missed a task that never overran",
                tasks, assignment, demoted.faults);
          }
        }
      }

      // Invariant 4: processor failure is contained (orphans counted, no
      // crash; survivors keep the busy-time accounting consistent).
      if (reporter.attempt % 4 == 0) {
        SimConfig failing = sim;
        failing.stop_at_first_miss = false;
        failing.faults.failed_processor = static_cast<std::size_t>(
            sample.uniform_int(0, static_cast<Time>(config.processors) - 1));
        failing.faults.failure_time = sample.uniform_int(0, sim.horizon);
        const SimResult survived = simulate_checked(failing);
        if (survived.busy_time[failing.faults.failed_processor] >
            failing.faults.failure_time) {
          reporter.violation(entry.algorithm->name() +
                                 ": failed processor kept executing",
                             tasks, assignment, failing.faults);
        }
      }

      // Invariant 5 (periodic, costlier): the analytic robustness margins
      // never exceed the simulated ones on a fixed assignment.
      if (entry.policy == DispatchPolicy::kFixedPriority &&
          reporter.attempt % 16 == 0) {
        ++margin_checks;
        RobustnessConfig robustness;
        robustness.horizon_cap = 2'000'000;
        robustness.fault_seed =
            static_cast<std::uint64_t>(sample.uniform_int(1, 1 << 30));
        const RobustnessReport report =
            analyze_robustness(tasks, assignment, robustness);
        if (report.analytic_overrun_margin >
                report.simulated_overrun_margin + 1e-9 ||
            report.analytic_jitter_margin > report.simulated_jitter_margin) {
          reporter.violation(entry.algorithm->name() +
                                 ": analytic margin exceeds simulated margin",
                             tasks, assignment, sim.faults);
        }
      }
    }
  }

  std::cout << "rmts_fuzz: " << sets << " task sets, " << accepted
            << " accepted-and-claimed partitions simulated, " << margin_checks
            << " margin soundness checks, " << reporter.violations
            << " violations (seed " << seed << ")\n";
  return reporter.violations == 0 ? 0 : 1;
}
