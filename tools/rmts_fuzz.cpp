// Time-bounded randomized cross-validation harness ("the fuzzer"):
// generates random workloads, runs every partitioning algorithm, and
// checks each accepted assignment against the discrete-event simulator
// plus the structural invariants -- including the fault-injection layer:
//
//  * every simulated run is cross-checked bit-for-bit (counters, misses,
//    trace) against the naive reference core (sim/simulator_reference.hpp);
//  * identity faults (factor 1.0, no jitter) must reproduce the nominal
//    run counter-for-counter;
//  * random overruns under budget enforcement must never cause a miss
//    (only degradations/aborts);
//  * under priority demotion every missing task must itself have
//    overrun (misses are attributable);
//  * processor failure must be contained to orphan accounting, not
//    crashes;
//  * periodically, the analytic robustness margins must not exceed the
//    simulated ones (analysis/robustness.hpp soundness).
//
//   rmts_fuzz [seconds=10] [seed=1]
//   rmts_fuzz proto [seconds=10] [seed=1]
//
// The `proto` mode fuzzes the admission-control service's codec instead:
// random, truncated, mutated and oversized byte streams are fed through
// the in-process LineDecoder + Router pipeline (no sockets), asserting
// that nothing crashes, decoder memory stays under its cap, and every
// reply -- including those for garbage -- is a well-formed one-line JSON
// object carrying "ok" and, on failure, a non-empty "error".
//
// On violation the exact seed/attempt and fault configuration are printed
// and the offending task set is written to
// rmts_fuzz_violation_<seed>_<attempt>.txt, so any failure replays with
// `rmts_fuzz <any> <seed>` or from the dumped file.  Exit code 0 iff no
// violation found.  This is the long-running counterpart of the bounded
// soundness tests in tests/ -- run it for an hour before a release.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/robustness.hpp"
#include "bounds/best_of.hpp"
#include "bounds/bound.hpp"
#include "common/rng.hpp"
#include "io/taskset_io.hpp"
#include "partition/baselines.hpp"
#include "partition/edf_split.hpp"
#include "partition/rmts.hpp"
#include "partition/rmts_light.hpp"
#include "partition/spa.hpp"
#include "server/client.hpp"
#include "server/json.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "server/router.hpp"
#include "sim/simulator.hpp"
#include "sim/simulator_reference.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rmts;

struct Entry {
  std::shared_ptr<const Partitioner> algorithm;
  DispatchPolicy policy;
  /// Whether accepted => schedulable is claimed unconditionally (exact
  /// admission) or only within the algorithm's theorem premises (SPA).
  bool unconditional;
};

struct Reporter {
  std::uint64_t seed;
  std::uint64_t attempt = 0;
  std::uint64_t violations = 0;

  /// Prints the reproduction context and dumps the task set to a file.
  void violation(const std::string& what, const TaskSet& tasks,
                 const Assignment& assignment, const FaultModel& faults) {
    ++violations;
    std::cerr << "VIOLATION: " << what << "\n  repro: seed " << seed
              << ", attempt " << attempt << "\n  faults: factor "
              << faults.overrun_factor << ", ticks " << faults.overrun_ticks
              << ", prob " << faults.overrun_probability << ", jitter "
              << faults.release_jitter << ", fault-seed " << faults.seed
              << ", containment " << static_cast<int>(faults.containment)
              << ", failed-proc ";
    if (faults.failed_processor == kNoProcessor) {
      std::cerr << "none";
    } else {
      std::cerr << faults.failed_processor << "@" << faults.failure_time;
    }
    std::cerr << '\n' << tasks.describe() << assignment.describe();
    const std::string path = "rmts_fuzz_violation_" + std::to_string(seed) +
                             "_" + std::to_string(attempt) + ".txt";
    std::ofstream dump(path);
    if (dump) {
      write_task_set(dump, tasks);
      std::cerr << "  task set written to " << path << '\n';
    }
  }
};

bool counters_equal(const SimResult& a, const SimResult& b) {
  return a.schedulable == b.schedulable && a.misses.size() == b.misses.size() &&
         a.simulated_until == b.simulated_until && a.events == b.events &&
         a.jobs_released == b.jobs_released &&
         a.jobs_completed == b.jobs_completed &&
         a.preemptions == b.preemptions && a.migrations == b.migrations &&
         a.busy_time == b.busy_time && a.max_response == b.max_response &&
         a.jobs_degraded == b.jobs_degraded &&
         a.degraded_per_task == b.degraded_per_task &&
         a.jobs_aborted == b.jobs_aborted && a.jobs_demoted == b.jobs_demoted &&
         a.subtasks_orphaned == b.subtasks_orphaned;
}

/// In-process protocol fuzz: random byte streams through the service
/// codec.  Returns the number of violations found.
std::uint64_t proto_fuzz(double seconds, std::uint64_t seed) {
  constexpr std::size_t kMaxLine = 4096;  // small cap => oversized paths hit
  server::Metrics metrics;
  server::RouterConfig router_config;
  router_config.max_tasks = 64;
  router_config.max_processors = 16;
  router_config.sim_horizon_cap = 200'000;
  const server::Router router(router_config, metrics);

  // A small pool of valid requests used as mutation seeds.
  Rng pool_rng(seed);
  std::vector<std::string> valid;
  for (std::size_t i = 0; i < 16; ++i) {
    Rng sample = pool_rng.fork(i);
    WorkloadConfig config;
    config.tasks = 8;
    config.processors = 4;
    config.normalized_utilization = 0.5;
    const TaskSet tasks = generate(sample, config);
    switch (i % 4) {
      case 0: valid.push_back(server::make_admit_request(4, tasks)); break;
      case 1: valid.push_back(server::make_analyze_request(4, tasks)); break;
      case 2: valid.push_back(server::make_simulate_request(4, tasks)); break;
      default: valid.push_back(server::make_stats_request()); break;
    }
  }

  Rng rng(seed ^ 0x70726f746fULL);  // "proto"
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t attempts = 0;
  std::uint64_t lines = 0;
  std::uint64_t oversized = 0;
  std::uint64_t violations = 0;
  const auto fail = [&](const std::string& what, const std::string& detail) {
    ++violations;
    std::cerr << "PROTO VIOLATION: " << what << "\n  repro: seed " << seed
              << ", attempt " << attempts << "\n  detail: " << detail << '\n';
  };

  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
             .count() < seconds) {
    Rng sample = rng.fork(attempts++);
    server::LineDecoder decoder(kMaxLine);

    // Compose a stream of ~8 segments: garbage, mutated/truncated valid
    // requests, oversized runs, and pristine requests.
    std::string stream;
    const auto segments = static_cast<std::size_t>(sample.uniform_int(1, 8));
    for (std::size_t s = 0; s < segments; ++s) {
      switch (sample.uniform_int(0, 4)) {
        case 0: {  // raw random bytes (newlines included by chance)
          const auto n = static_cast<std::size_t>(sample.uniform_int(0, 256));
          for (std::size_t i = 0; i < n; ++i) {
            stream.push_back(static_cast<char>(sample.uniform_int(0, 255)));
          }
          stream.push_back('\n');
          break;
        }
        case 1: {  // a valid request with random byte flips
          std::string line = valid[static_cast<std::size_t>(
              sample.uniform_int(0, static_cast<std::int64_t>(valid.size()) - 1))];
          const auto flips = static_cast<std::size_t>(sample.uniform_int(0, 8));
          for (std::size_t i = 0; i < flips && !line.empty(); ++i) {
            const auto at = static_cast<std::size_t>(sample.uniform_int(
                0, static_cast<std::int64_t>(line.size()) - 1));
            line[at] = static_cast<char>(sample.uniform_int(1, 255));
          }
          if (line.find('\n') != std::string::npos) {
            line.erase(line.find('\n'));  // keep it one line
          }
          stream += line;
          stream.push_back('\n');
          break;
        }
        case 2: {  // truncated valid request
          const std::string& line = valid[static_cast<std::size_t>(
              sample.uniform_int(0, static_cast<std::int64_t>(valid.size()) - 1))];
          const auto keep = static_cast<std::size_t>(
              sample.uniform_int(0, static_cast<std::int64_t>(line.size())));
          stream += line.substr(0, keep);
          stream.push_back('\n');
          break;
        }
        case 3: {  // oversized line (over the decoder cap)
          const auto n = kMaxLine + static_cast<std::size_t>(
                                        sample.uniform_int(1, 4096));
          stream.append(n, 'x');
          stream.push_back('\n');
          break;
        }
        default: {  // pristine valid request
          stream += valid[static_cast<std::size_t>(
              sample.uniform_int(0, static_cast<std::int64_t>(valid.size()) - 1))];
          stream.push_back('\n');
          break;
        }
      }
    }

    // Feed in random fragments, draining after each, like a TCP stream.
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const auto chunk = static_cast<std::size_t>(sample.uniform_int(
          1, static_cast<std::int64_t>(stream.size() - offset)));
      decoder.feed(std::string_view(stream).substr(offset, chunk));
      offset += chunk;
      if (decoder.buffered() > kMaxLine) {
        fail("decoder memory exceeded its cap",
             "buffered " + std::to_string(decoder.buffered()));
      }

      server::LineDecoder::Line line;
      while (decoder.next(line)) {
        ++lines;
        const server::HandleOutcome outcome =
            line.oversized ? router.oversized_line() : router.handle(line.text);
        if (line.oversized) ++oversized;

        // Every reply, for any input, must be one well-formed JSON object
        // with a bool "ok"; failures must carry a non-empty "error".
        server::JsonValue reply;
        std::string parse_error;
        if (outcome.reply.find('\n') != std::string::npos) {
          fail("reply contains a newline", outcome.reply);
        } else if (!server::json_parse(outcome.reply, reply, parse_error)) {
          fail("reply is not valid JSON: " + parse_error, outcome.reply);
        } else if (!reply.is_object()) {
          fail("reply is not a JSON object", outcome.reply);
        } else {
          const server::JsonValue* ok = reply.find("ok");
          if (ok == nullptr || !ok->is_bool()) {
            fail("reply lacks a bool \"ok\"", outcome.reply);
          } else if (!ok->as_bool()) {
            const server::JsonValue* error = reply.find("error");
            if (error == nullptr || !error->is_string() ||
                error->as_string().empty()) {
              fail("failure reply lacks a non-empty \"error\"", outcome.reply);
            }
            if (!outcome.error) {
              fail("ok:false reply not recorded as an error", outcome.reply);
            }
          }
        }
      }
    }
  }

  std::cout << "rmts_fuzz proto: " << attempts << " streams, " << lines
            << " lines (" << oversized << " oversized), " << violations
            << " violations (seed " << seed << ")\n";
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "proto") {
    const double proto_seconds = argc > 2 ? std::atof(argv[2]) : 10.0;
    const std::uint64_t proto_seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
    return proto_fuzz(proto_seconds, proto_seed) == 0 ? 0 : 1;
  }

  const double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const std::vector<Entry> roster{
      {std::make_shared<RmtsLight>(), DispatchPolicy::kFixedPriority, true},
      {std::make_shared<RmtsLight>(MaxSplitMethod::kBinarySearch),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<RmtsLight>(MaxSplitMethod::kSchedulingPoints,
                                   SelectionPolicy::kFirstFit),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<Rmts>(
           std::make_shared<BestOfBounds>(BestOfBounds::all_known())),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<Spa2>(), DispatchPolicy::kFixedPriority, false},
      {std::make_shared<PartitionedRm>(FitPolicy::kFirstFit,
                                       TaskOrder::kDecreasingUtilization,
                                       Admission::kExactRta),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<EdfSplit>(), DispatchPolicy::kEarliestDeadlineFirst,
       true},
  };

  Rng rng(seed);
  SimWorkspace workspace;  // reused across every simulated run
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t attempts = 0;  // fork key: advances even on infeasible draws
  std::uint64_t sets = 0;
  std::uint64_t accepted = 0;
  std::uint64_t margin_checks = 0;
  Reporter reporter{seed};

  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
             .count() < seconds) {
    Rng sample = rng.fork(attempts);
    reporter.attempt = attempts++;
    WorkloadConfig config;
    config.processors = static_cast<std::size_t>(sample.uniform_int(1, 8));
    config.tasks =
        config.processors * static_cast<std::size_t>(sample.uniform_int(2, 6));
    config.period_model = PeriodModel::kGrid;
    config.period_grid = small_hyperperiod_grid();
    config.max_task_utilization = sample.uniform(0.3, 0.95);
    config.normalized_utilization = sample.uniform(0.3, 0.99);
    if (config.normalized_utilization >
        0.95 * config.max_task_utilization * static_cast<double>(config.tasks) /
            static_cast<double>(config.processors)) {
      continue;  // infeasible UUniFast target; redraw
    }
    const TaskSet tasks = generate(sample, config);
    ++sets;

    const double theta = liu_layland_theta(tasks.size());
    for (const Entry& entry : roster) {
      const Assignment assignment =
          entry.algorithm->partition(tasks, config.processors);
      if (!assignment.success) continue;
      const bool claimed =
          entry.unconditional ||
          tasks.normalized_utilization(config.processors) <= theta;
      if (!claimed) continue;
      ++accepted;
      SimConfig sim;
      sim.horizon = recommended_horizon(tasks, 2'000'000);
      sim.policy = entry.policy;
      // Invariant 0: the indexed core agrees with the naive reference core
      // bit-for-bit on every run the fuzzer performs.
      const auto simulate_checked = [&](const SimConfig& sim_config) {
        SimResult result = simulate(tasks, assignment, sim_config, workspace);
        if (!(result == simulate_reference(tasks, assignment, sim_config))) {
          reporter.violation(
              entry.algorithm->name() + ": indexed core diverged from reference",
              tasks, assignment, sim_config.faults);
        }
        return result;
      };
      const SimResult nominal = simulate_checked(sim);
      if (!nominal.schedulable) {
        reporter.violation(entry.algorithm->name() +
                               " accepted but missed a deadline",
                           tasks, assignment, sim.faults);
        continue;
      }

      // Invariant 1: identity faults (factor 1.0, no jitter) are miss-free
      // and bit-identical on every counter.
      SimConfig identity = sim;
      identity.faults.seed =
          static_cast<std::uint64_t>(sample.uniform_int(1, 1 << 30));
      identity.faults.overrun_probability = sample.uniform(0.0, 1.0);
      identity.faults.containment = ContainmentPolicy::kBudgetEnforcement;
      if (!counters_equal(nominal, simulate_checked(identity))) {
        reporter.violation(entry.algorithm->name() +
                               ": identity fault model changed the run",
                           tasks, assignment, identity.faults);
      }

      // Invariant 2: overruns under budget enforcement never miss -- the
      // contained demand is exactly the accepted nominal demand.
      SimConfig contained = sim;
      contained.stop_at_first_miss = false;
      contained.faults.seed =
          static_cast<std::uint64_t>(sample.uniform_int(1, 1 << 30));
      contained.faults.overrun_factor = sample.uniform(1.0, 3.0);
      contained.faults.overrun_ticks = sample.uniform_int(0, 3);
      contained.faults.overrun_probability = sample.uniform(0.2, 1.0);
      contained.faults.containment = ContainmentPolicy::kBudgetEnforcement;
      const SimResult guarded = simulate_checked(contained);
      if (!guarded.misses.empty()) {
        reporter.violation(entry.algorithm->name() +
                               ": budget enforcement let an overrun miss",
                           tasks, assignment, contained.faults);
      }

      // Invariant 3: under priority demotion, only tasks that actually
      // overran can miss (no collateral victims).
      SimConfig demoted = contained;
      demoted.faults.containment = ContainmentPolicy::kPriorityDemotion;
      const SimResult shielded = simulate_checked(demoted);
      for (const DeadlineMiss& miss : shielded.misses) {
        for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
          if (tasks[rank].id == miss.task &&
              shielded.degraded_per_task[rank] == 0) {
            reporter.violation(
                entry.algorithm->name() +
                    ": demotion missed a task that never overran",
                tasks, assignment, demoted.faults);
          }
        }
      }

      // Invariant 4: processor failure is contained (orphans counted, no
      // crash; survivors keep the busy-time accounting consistent).
      if (reporter.attempt % 4 == 0) {
        SimConfig failing = sim;
        failing.stop_at_first_miss = false;
        failing.faults.failed_processor = static_cast<std::size_t>(
            sample.uniform_int(0, static_cast<Time>(config.processors) - 1));
        failing.faults.failure_time = sample.uniform_int(0, sim.horizon);
        const SimResult survived = simulate_checked(failing);
        if (survived.busy_time[failing.faults.failed_processor] >
            failing.faults.failure_time) {
          reporter.violation(entry.algorithm->name() +
                                 ": failed processor kept executing",
                             tasks, assignment, failing.faults);
        }
      }

      // Invariant 5 (periodic, costlier): the analytic robustness margins
      // never exceed the simulated ones on a fixed assignment.
      if (entry.policy == DispatchPolicy::kFixedPriority &&
          reporter.attempt % 16 == 0) {
        ++margin_checks;
        RobustnessConfig robustness;
        robustness.horizon_cap = 2'000'000;
        robustness.fault_seed =
            static_cast<std::uint64_t>(sample.uniform_int(1, 1 << 30));
        const RobustnessReport report =
            analyze_robustness(tasks, assignment, robustness);
        if (report.analytic_overrun_margin >
                report.simulated_overrun_margin + 1e-9 ||
            report.analytic_jitter_margin > report.simulated_jitter_margin) {
          reporter.violation(entry.algorithm->name() +
                                 ": analytic margin exceeds simulated margin",
                             tasks, assignment, sim.faults);
        }
      }
    }
  }

  std::cout << "rmts_fuzz: " << sets << " task sets, " << accepted
            << " accepted-and-claimed partitions simulated, " << margin_checks
            << " margin soundness checks, " << reporter.violations
            << " violations (seed " << seed << ")\n";
  return reporter.violations == 0 ? 0 : 1;
}
