// Time-bounded randomized cross-validation harness ("the fuzzer"):
// generates random workloads, runs every partitioning algorithm, and
// checks each accepted assignment against the discrete-event simulator
// plus the structural invariants.  Exit code 0 iff no violation found.
//
//   rmts_fuzz [seconds=10] [seed=1]
//
// This is the long-running counterpart of the bounded soundness tests in
// tests/ -- run it for an hour before a release.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "bounds/best_of.hpp"
#include "bounds/bound.hpp"
#include "common/rng.hpp"
#include "partition/baselines.hpp"
#include "partition/edf_split.hpp"
#include "partition/rmts.hpp"
#include "partition/rmts_light.hpp"
#include "partition/spa.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rmts;

struct Entry {
  std::shared_ptr<const Partitioner> algorithm;
  DispatchPolicy policy;
  /// Whether accepted => schedulable is claimed unconditionally (exact
  /// admission) or only within the algorithm's theorem premises (SPA).
  bool unconditional;
};

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const std::vector<Entry> roster{
      {std::make_shared<RmtsLight>(), DispatchPolicy::kFixedPriority, true},
      {std::make_shared<RmtsLight>(MaxSplitMethod::kBinarySearch),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<RmtsLight>(MaxSplitMethod::kSchedulingPoints,
                                   SelectionPolicy::kFirstFit),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<Rmts>(
           std::make_shared<BestOfBounds>(BestOfBounds::all_known())),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<Spa2>(), DispatchPolicy::kFixedPriority, false},
      {std::make_shared<PartitionedRm>(FitPolicy::kFirstFit,
                                       TaskOrder::kDecreasingUtilization,
                                       Admission::kExactRta),
       DispatchPolicy::kFixedPriority, true},
      {std::make_shared<EdfSplit>(), DispatchPolicy::kEarliestDeadlineFirst,
       true},
  };

  Rng rng(seed);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t attempts = 0;  // fork key: advances even on infeasible draws
  std::uint64_t sets = 0;
  std::uint64_t accepted = 0;
  std::uint64_t violations = 0;

  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
             .count() < seconds) {
    Rng sample = rng.fork(attempts++);
    WorkloadConfig config;
    config.processors = static_cast<std::size_t>(sample.uniform_int(1, 8));
    config.tasks =
        config.processors * static_cast<std::size_t>(sample.uniform_int(2, 6));
    config.period_model = PeriodModel::kGrid;
    config.period_grid = small_hyperperiod_grid();
    config.max_task_utilization = sample.uniform(0.3, 0.95);
    config.normalized_utilization = sample.uniform(0.3, 0.99);
    if (config.normalized_utilization >
        0.95 * config.max_task_utilization * static_cast<double>(config.tasks) /
            static_cast<double>(config.processors)) {
      continue;  // infeasible UUniFast target; redraw
    }
    const TaskSet tasks = generate(sample, config);
    ++sets;

    const double theta = liu_layland_theta(tasks.size());
    for (const Entry& entry : roster) {
      const Assignment assignment =
          entry.algorithm->partition(tasks, config.processors);
      if (!assignment.success) continue;
      const bool claimed =
          entry.unconditional ||
          tasks.normalized_utilization(config.processors) <= theta;
      if (!claimed) continue;
      ++accepted;
      SimConfig sim;
      sim.horizon = recommended_horizon(tasks, 2'000'000);
      sim.policy = entry.policy;
      const SimResult run = simulate(tasks, assignment, sim);
      if (!run.schedulable) {
        ++violations;
        std::cerr << "VIOLATION: " << entry.algorithm->name()
                  << " accepted but missed a deadline\n"
                  << tasks.describe() << assignment.describe();
      }
    }
  }

  std::cout << "rmts_fuzz: " << sets << " task sets, " << accepted
            << " accepted-and-claimed partitions simulated, " << violations
            << " violations (seed " << seed << ")\n";
  return violations == 0 ? 0 : 1;
}
