// Command-line front end; all logic lives in io/cli_app.hpp (tested).
#include <iostream>
#include <string>
#include <vector>

#include "io/cli_app.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return rmts::run_cli(args, std::cout, std::cerr);
}
