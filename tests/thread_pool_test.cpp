// Persistent thread pool: coverage, reuse, exception propagation, and
// bit-identical experiment results across thread counts.
//
// Pools are also constructed directly with several workers so the
// multi-worker paths are exercised even on single-core CI machines (where
// the global pool has zero background workers and falls back to serial).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "analysis/acceptance.hpp"
#include "analysis/breakdown.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "common/error.hpp"

namespace rmts {
namespace {

/// Closed-form stand-in: accepts iff U_M(tau) <= threshold.
class ThresholdTest final : public SchedulabilityTest {
 public:
  explicit ThresholdTest(double threshold) : threshold_(threshold) {}
  [[nodiscard]] bool accepts(const TaskSet& tasks,
                             std::size_t processors) const override {
    return tasks.normalized_utilization(processors) <= threshold_;
  }
  [[nodiscard]] std::string name() const override { return "threshold"; }

 private:
  double threshold_;
};

TEST(ThreadPool, CoversEveryIndexExactlyOnceAcrossReuse) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  // Reuse the same pool for many runs of varying size: every index exactly
  // once, every time (the pool is persistent, not per-call).
  for (const std::size_t count : {1u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(count);
    pool.run(count, 0, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, HonorsParallelismCap) {
  ThreadPool pool(7);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.run(256, 2, [&](std::size_t) {
    const int now = concurrent.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::yield();
    concurrent.fetch_sub(1);
  });
  EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPool, RethrowsWorkerExceptionExactlyOnce) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> caught{0};
    try {
      pool.run(64, 0, [](std::size_t i) {
        if (i == 13) throw InvalidConfigError("boom");
      });
      FAIL() << "exception must propagate";
    } catch (const InvalidConfigError& e) {
      caught.fetch_add(1);
      EXPECT_STREQ(e.what(), "boom");
    }
    EXPECT_EQ(caught.load(), 1);
    // The pool must remain usable after a failed job.
    std::atomic<int> ran{0};
    pool.run(32, 0, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 32);
  }
}

TEST(ThreadPool, FirstOfConcurrentExceptionsWins) {
  ThreadPool pool(4);
  // Every index throws; exactly one exception may surface.
  int caught = 0;
  try {
    pool.run(128, 0, [](std::size_t) { throw InvalidConfigError("many"); });
  } catch (const InvalidConfigError&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
}

TEST(ThreadPool, NestedRunFallsBackToSerial) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.run(8, 0, [&](std::size_t) {
    // Nested use of the *global* pool from inside a worker must not
    // deadlock; it degrades to serial execution.
    parallel_for(4, 4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelFor, AcceptanceBitIdenticalAcrossThreadCounts) {
  AcceptanceConfig config;
  config.workload.tasks = 12;
  config.workload.processors = 4;
  config.utilization_points = {0.5, 0.65, 0.8};
  config.samples = 48;
  const TestRoster roster{std::make_shared<ThresholdTest>(0.62),
                          std::make_shared<ThresholdTest>(0.85)};
  config.threads = 1;
  const AcceptanceResult reference = run_acceptance(config, roster);
  for (const std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    const AcceptanceResult result = run_acceptance(config, roster);
    for (std::size_t p = 0; p < reference.ratio.size(); ++p) {
      for (std::size_t a = 0; a < roster.size(); ++a) {
        EXPECT_EQ(reference.ratio[p][a], result.ratio[p][a])
            << "point " << p << " algo " << a << " threads " << threads;
      }
    }
  }
}

TEST(ParallelFor, BreakdownBitIdenticalAcrossThreadCounts) {
  BreakdownConfig config;
  config.workload.tasks = 10;
  config.workload.processors = 2;
  config.workload.normalized_utilization = 0.3;
  config.workload.max_task_utilization = 0.3;
  config.samples = 24;
  const TestRosterRef roster{std::make_shared<ThresholdTest>(0.6),
                             std::make_shared<ThresholdTest>(0.8)};
  config.threads = 1;
  const BreakdownResult reference = run_breakdown(config, roster);
  for (const std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    const BreakdownResult result = run_breakdown(config, roster);
    for (std::size_t a = 0; a < roster.size(); ++a) {
      EXPECT_EQ(reference.mean[a], result.mean[a]);
      EXPECT_EQ(reference.min[a], result.min[a]);
    }
  }
}

TEST(Breakdown, ZeroSamplesThrows) {
  // Regression: the seed divided by samples == 0, yielding NaN means and a
  // min[] stuck at the config.hi sentinel.
  BreakdownConfig config;
  config.workload.tasks = 4;
  config.workload.processors = 2;
  config.samples = 0;
  const TestRosterRef roster{std::make_shared<ThresholdTest>(0.5)};
  EXPECT_THROW((void)run_breakdown(config, roster), InvalidConfigError);
}

}  // namespace
}  // namespace rmts
