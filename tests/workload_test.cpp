// Workload generation: UUniFast statistics, discard bounds, period models,
// harmonic structure guarantees, and config validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "bounds/harmonic.hpp"
#include "common/checked_math.hpp"
#include "common/error.hpp"
#include "workload/generators.hpp"
#include "workload/uunifast.hpp"

namespace rmts {
namespace {

TEST(UUniFast, SumsToTarget) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto u = uunifast(rng, 8, 3.2);
    EXPECT_NEAR(std::accumulate(u.begin(), u.end(), 0.0), 3.2, 1e-9);
    for (const double v : u) EXPECT_GT(v, 0.0);
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  Rng rng(2);
  const auto u = uunifast(rng, 1, 0.7);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.7);
}

TEST(UUniFast, RejectsBadArguments) {
  Rng rng(3);
  EXPECT_THROW(uunifast(rng, 0, 1.0), InvalidConfigError);
  EXPECT_THROW(uunifast(rng, 4, 0.0), InvalidConfigError);
}

TEST(UUniFast, MarginalsAreUnbiased) {
  // Under UUniFast each task's expected utilization is total/n.
  Rng rng(4);
  const int trials = 4000;
  double first = 0.0;
  double last = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto u = uunifast(rng, 5, 2.0);
    first += u.front();
    last += u.back();
  }
  EXPECT_NEAR(first / trials, 0.4, 0.02);
  EXPECT_NEAR(last / trials, 0.4, 0.02);
}

TEST(UUniFastDiscard, RespectsPerTaskCap) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto u = uunifast_discard(rng, 8, 3.0, 0.409);
    EXPECT_NEAR(std::accumulate(u.begin(), u.end(), 0.0), 3.0, 1e-9);
    for (const double v : u) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 0.409);
    }
  }
}

TEST(UUniFastDiscard, InfeasibleTargetThrows) {
  Rng rng(6);
  EXPECT_THROW(uunifast_discard(rng, 4, 3.0, 0.5), InvalidConfigError);
}

TEST(UUniFastDiscard, NonPositiveCapThrows) {
  Rng rng(6);
  EXPECT_THROW(uunifast_discard(rng, 4, 0.0, 0.0), InvalidConfigError);
  EXPECT_THROW(uunifast_discard(rng, 4, -1.0, -0.5), InvalidConfigError);
}

// Property test of the clamp-redistribute fallback regime: with the total
// within a fraction of a percent of n * max_each, plain rejection has a
// vanishing acceptance rate, so essentially every draw exercises the
// fallback.  Regression: the redistribution pass could overshoot the cap
// by an ulp and could return exact 0.0 entries, violating the documented
// (0, max_each] postcondition.
TEST(UUniFastDiscard, FallbackRegimeKeepsPostcondition) {
  const std::size_t n = 16;
  const double max_each = 0.2;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(seed);
    const double total = static_cast<double>(n) * max_each * 0.9995;
    const auto u = uunifast_discard(rng, n, total, max_each);
    ASSERT_EQ(u.size(), n);
    double sum = 0.0;
    for (const double v : u) {
      EXPECT_GT(v, 0.0) << "seed " << seed;
      EXPECT_LE(v, max_each) << "seed " << seed;
      sum += v;
    }
    EXPECT_NEAR(sum, total, 1e-9);
  }
}

TEST(UUniFastDiscard, FallbackAtExactFeasibilityBoundary) {
  // total == n * max_each admits exactly one point (all entries at the
  // cap); rejection can never find it, so this is a pure fallback path.
  const std::size_t n = 8;
  const double max_each = 0.125;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const auto u = uunifast_discard(rng, n, static_cast<double>(n) * max_each,
                                    max_each);
    for (const double v : u) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, max_each);
    }
  }
}

TEST(Generate, TaskCountAndUtilizationTarget) {
  Rng rng(7);
  WorkloadConfig config;
  config.tasks = 20;
  config.processors = 5;
  config.normalized_utilization = 0.7;
  const TaskSet tasks = generate(rng, config);
  EXPECT_EQ(tasks.size(), 20u);
  // WCET rounding perturbs the target by well under 1%.
  EXPECT_NEAR(tasks.normalized_utilization(5), 0.7, 0.01);
}

TEST(Generate, PeriodsWithinRange) {
  Rng rng(8);
  WorkloadConfig config;
  config.tasks = 50;
  config.period_min = 2000;
  config.period_max = 50000;
  config.normalized_utilization = 0.4;
  const TaskSet tasks = generate(rng, config);
  for (const Task& task : tasks) {
    EXPECT_GE(task.period, 2000);
    EXPECT_LE(task.period, 50000);
  }
}

TEST(Generate, GridModelDrawsFromGrid) {
  Rng rng(9);
  WorkloadConfig config;
  config.tasks = 30;
  config.period_model = PeriodModel::kGrid;
  config.period_grid = small_hyperperiod_grid();
  const TaskSet tasks = generate(rng, config);
  for (const Task& task : tasks) {
    EXPECT_NE(std::find(config.period_grid.begin(), config.period_grid.end(),
                        task.period),
              config.period_grid.end());
  }
}

TEST(Generate, GridModelWithoutGridThrows) {
  Rng rng(10);
  WorkloadConfig config;
  config.period_model = PeriodModel::kGrid;
  EXPECT_THROW(generate(rng, config), InvalidConfigError);
}

TEST(Generate, HarmonicModelYieldsHarmonicSets) {
  Rng rng(11);
  WorkloadConfig config;
  config.tasks = 10;
  config.period_model = PeriodModel::kHarmonic;
  for (int trial = 0; trial < 50; ++trial) {
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    EXPECT_TRUE(tasks.is_harmonic()) << tasks.describe();
  }
}

TEST(Generate, HarmonicChainsModelYieldsExactChainCount) {
  Rng rng(12);
  for (std::size_t k = 1; k <= 4; ++k) {
    WorkloadConfig config;
    config.tasks = 12;
    config.period_model = PeriodModel::kHarmonicChains;
    config.harmonic_chains = k;
    for (int trial = 0; trial < 20; ++trial) {
      Rng sample = rng.fork(k * 100 + static_cast<std::uint64_t>(trial));
      const TaskSet tasks = generate(sample, config);
      EXPECT_EQ(min_harmonic_chains(tasks.periods()), k) << tasks.describe();
    }
  }
}

TEST(Generate, HarmonicChainsValidation) {
  Rng rng(13);
  WorkloadConfig config;
  config.period_model = PeriodModel::kHarmonicChains;
  config.harmonic_chains = 0;
  EXPECT_THROW(generate(rng, config), InvalidConfigError);
  config.harmonic_chains = 9;  // only 8 prime bases available
  EXPECT_THROW(generate(rng, config), InvalidConfigError);
  config.harmonic_chains = 5;
  config.tasks = 3;  // fewer tasks than chains
  EXPECT_THROW(generate(rng, config), InvalidConfigError);
}

TEST(Generate, LightConfigurationProducesLightSets) {
  Rng rng(14);
  WorkloadConfig config;
  config.tasks = 16;
  config.processors = 4;
  config.normalized_utilization = 0.9;
  config.max_task_utilization = 0.409;
  for (int trial = 0; trial < 30; ++trial) {
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    // WCET rounding can nudge a utilization past the cap by < 1 tick.
    EXPECT_TRUE(tasks.all_lighter_than(0.41)) << tasks.describe();
  }
}

TEST(Generate, ConfigValidation) {
  Rng rng(15);
  WorkloadConfig config;
  config.tasks = 0;
  EXPECT_THROW(generate(rng, config), InvalidConfigError);
  config.tasks = 4;
  config.processors = 0;
  EXPECT_THROW(generate(rng, config), InvalidConfigError);
  config.processors = 2;
  config.period_min = 0;
  EXPECT_THROW(generate(rng, config), InvalidConfigError);
  config.period_min = 100;
  config.period_max = 50;
  EXPECT_THROW(generate(rng, config), InvalidConfigError);
  config.period_min = 1000;
  config.period_max = 2000;
  config.normalized_utilization = 0.0;
  EXPECT_THROW(generate(rng, config), InvalidConfigError);
}

TEST(Generate, DeterministicGivenSameRngState) {
  WorkloadConfig config;
  config.tasks = 10;
  Rng a(77);
  Rng b(77);
  const TaskSet set_a = generate(a, config);
  const TaskSet set_b = generate(b, config);
  ASSERT_EQ(set_a.size(), set_b.size());
  for (std::size_t i = 0; i < set_a.size(); ++i) {
    EXPECT_EQ(set_a[i], set_b[i]);
  }
}

TEST(SmallHyperperiodGrid, LcmIs72000) {
  const auto grid = small_hyperperiod_grid();
  EXPECT_EQ(grid.size(), 12u);
  EXPECT_EQ(hyperperiod(grid), Time{72000});
}

}  // namespace
}  // namespace rmts
