// Tests for the admission-control service stack (src/server/): JSON codec,
// line framing, request routing, the in-process epoll server (every
// endpoint, load shedding, graceful mid-request shutdown), and a
// fork/exec smoke of the real rmts_serve binary (RMTS_SERVE_BIN).
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bounds/harmonic.hpp"
#include "partition/rmts.hpp"
#include "server/client.hpp"
#include "server/json.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "server/router.hpp"
#include "server/server.hpp"
#include "sim/simulator.hpp"
#include "tasks/task_set.hpp"

namespace rmts::server {
namespace {

// ---------------------------------------------------------------- JSON --

JsonValue parse_ok(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(json_parse(text, value, error)) << text << " -- " << error;
  return value;
}

TEST(JsonParser, ParsesScalarsAndContainers) {
  const JsonValue doc = parse_ok(
      R"({"a":1,"b":-2.5,"c":"x","d":true,"e":null,"f":[1,2],"g":{"h":3}})");
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("a"), nullptr);
  EXPECT_TRUE(doc.find("a")->is_int());
  EXPECT_EQ(doc.find("a")->as_int(), 1);
  EXPECT_TRUE(doc.find("b")->is_number());
  EXPECT_FALSE(doc.find("b")->is_int());
  EXPECT_DOUBLE_EQ(doc.find("b")->as_double(), -2.5);
  EXPECT_EQ(doc.find("c")->as_string(), "x");
  EXPECT_TRUE(doc.find("d")->as_bool());
  EXPECT_TRUE(doc.find("e")->is_null());
  ASSERT_TRUE(doc.find("f")->is_array());
  EXPECT_EQ(doc.find("f")->items().size(), 2u);
  ASSERT_TRUE(doc.find("g")->is_object());
  EXPECT_EQ(doc.find("g")->find("h")->as_int(), 3);
}

TEST(JsonParser, DecodesEscapesAndSurrogatePairs) {
  const JsonValue doc = parse_ok(R"({"s":"a\n\t\"\\\u0041\ud83d\ude00"})");
  EXPECT_EQ(doc.find("s")->as_string(), "a\n\t\"\\A\xf0\x9f\x98\x80");
}

TEST(JsonParser, RejectsMalformedDocuments) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(json_parse("", value, error));
  EXPECT_FALSE(json_parse("{", value, error));
  EXPECT_FALSE(json_parse("{}extra", value, error));
  EXPECT_FALSE(json_parse("{\"a\":01}", value, error));
  EXPECT_FALSE(json_parse("[1,]", value, error));
  EXPECT_FALSE(json_parse("\"\\q\"", value, error));
  EXPECT_FALSE(json_parse("nul", value, error));
}

TEST(JsonParser, CapsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  JsonValue value;
  std::string error;
  EXPECT_FALSE(json_parse(deep, value, error));
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
}

TEST(JsonParser, IntDetectionIsLossless) {
  const JsonValue doc =
      parse_ok(R"({"i":9223372036854775807,"f":1.0,"e":1e3})");
  EXPECT_TRUE(doc.find("i")->is_int());
  EXPECT_EQ(doc.find("i")->as_int(), 9223372036854775807LL);
  EXPECT_FALSE(doc.find("f")->is_int());  // fraction present
  EXPECT_FALSE(doc.find("e")->is_int());  // exponent present
}

TEST(JsonWriter, RendersDocumentsWithEscaping) {
  JsonWriter w;
  w.begin_object();
  w.key("text");
  w.value(std::string_view("a\"b\nc"));
  w.key("n");
  w.value(std::int64_t{-5});
  w.key("list");
  w.begin_array();
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"text":"a\"b\nc","n":-5,"list":[true,null]})");
}

TEST(JsonWriter, NonFiniteNumbersRenderAsNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  // Round-trip: what the writer emits, the parser reads back exactly.
  const JsonValue doc = parse_ok("{\"x\":" + json_number(0.1) + "}");
  EXPECT_DOUBLE_EQ(doc.find("x")->as_double(), 0.1);
}

// ------------------------------------------------------------- framing --

TEST(LineDecoder, ReassemblesFragmentedLines) {
  LineDecoder decoder;
  decoder.feed("hel");
  LineDecoder::Line line;
  EXPECT_FALSE(decoder.next(line));
  decoder.feed("lo\nwor");
  ASSERT_TRUE(decoder.next(line));
  EXPECT_EQ(line.text, "hello");
  EXPECT_FALSE(line.oversized);
  EXPECT_FALSE(decoder.next(line));
  decoder.feed("ld\r\n");
  ASSERT_TRUE(decoder.next(line));
  EXPECT_EQ(line.text, "world");  // CRLF tolerated
  EXPECT_EQ(decoder.lines_decoded(), 2u);
}

TEST(LineDecoder, ReportsOversizedOnceAndBoundsMemory) {
  LineDecoder decoder(8);
  decoder.feed(std::string(100, 'x'));  // far over the cap, no newline yet
  LineDecoder::Line line;
  ASSERT_TRUE(decoder.next(line));
  EXPECT_TRUE(line.oversized);
  EXPECT_FALSE(decoder.next(line));  // reported once, not per chunk
  decoder.feed(std::string(100, 'y'));
  EXPECT_LE(decoder.buffered(), 8u);
  EXPECT_FALSE(decoder.next(line));
  decoder.feed("\nok\n");  // newline ends the discarded line
  ASSERT_TRUE(decoder.next(line));
  EXPECT_EQ(line.text, "ok");
  EXPECT_FALSE(line.oversized);
}

// -------------------------------------------------------------- router --

class RouterTest : public ::testing::Test {
 protected:
  Metrics metrics_;
  Router router_{RouterConfig{}, metrics_};

  JsonValue handle(const std::string& line) {
    const HandleOutcome outcome = router_.handle(line);
    return parse_ok(outcome.reply);
  }
};

TEST_F(RouterTest, AdmitAgreesWithDirectLibraryCall) {
  const auto tasks =
      TaskSet::from_pairs({{1, 4}, {1, 5}, {2, 10}, {3, 20}});
  const JsonValue reply = handle(make_admit_request(2, tasks));
  ASSERT_NE(reply.find("ok"), nullptr);
  EXPECT_TRUE(reply.find("ok")->as_bool());

  const Rmts rmts(std::make_shared<HarmonicChainBound>());
  const Assignment direct = rmts.partition(tasks, 2);
  EXPECT_EQ(reply.find("accepted")->as_bool(), direct.success);
  EXPECT_EQ(reply.find("op")->as_string(), "admit");
}

TEST_F(RouterTest, AdmitBatchMatchesPerItemAdmitReplies) {
  const std::vector<TaskSet> batch = {
      TaskSet::from_pairs({{1, 4}, {1, 5}, {2, 10}, {3, 20}}),
      TaskSet::from_pairs({{3, 4}, {4, 5}, {9, 10}}),  // overloaded
      TaskSet::from_pairs({{1, 10}, {1, 20}}),
  };
  const JsonValue reply = handle(make_admit_batch_request(2, batch));
  ASSERT_TRUE(reply.find("ok")->as_bool());
  EXPECT_EQ(reply.find("op")->as_string(), "admit_batch");
  const JsonValue* items = reply.find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->items().size(), batch.size());

  std::int64_t accepted = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const JsonValue& item = items->items()[i];
    ASSERT_TRUE(item.find("ok")->as_bool()) << "item " << i;
    const JsonValue single = handle(make_admit_request(2, batch[i]));
    EXPECT_EQ(item.find("accepted")->as_bool(),
              single.find("accepted")->as_bool())
        << "item " << i;
    EXPECT_EQ(item.find("algorithm")->as_string(),
              single.find("algorithm")->as_string());
    if (item.find("accepted")->as_bool()) ++accepted;
  }
  EXPECT_EQ(reply.find("accepted_count")->as_int(), accepted);
}

TEST_F(RouterTest, AdmitBatchIsolatesBadItemsAndHonorsOverrides) {
  // Item 2 is malformed (wcet 0); its siblings must still be served.  The
  // third item overrides the top-level m.
  const JsonValue reply = handle(
      R"({"op":"admit_batch","m":2,"items":[)"
      R"({"tasks":[[1,4],[1,5]]},)"
      R"({"tasks":[[0,5]]},)"
      R"({"tasks":[[1,4],[1,5]],"m":1}]})");
  ASSERT_TRUE(reply.find("ok")->as_bool());
  const JsonValue* items = reply.find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->items().size(), 3u);
  EXPECT_TRUE(items->items()[0].find("ok")->as_bool());
  EXPECT_FALSE(items->items()[1].find("ok")->as_bool());
  EXPECT_FALSE(items->items()[1].find("error")->as_string().empty());
  EXPECT_TRUE(items->items()[2].find("ok")->as_bool());
}

TEST_F(RouterTest, AdmitBatchEnforcesItemLimitAndRequiresItems) {
  RouterConfig small;
  small.max_batch_items = 2;
  const Router router(small, metrics_);
  const std::vector<TaskSet> batch(3, TaskSet::from_pairs({{1, 4}}));
  const HandleOutcome over =
      router.handle(make_admit_batch_request(1, batch));
  const JsonValue over_reply = parse_ok(over.reply);
  EXPECT_FALSE(over_reply.find("ok")->as_bool());
  EXPECT_NE(over_reply.find("error")->as_string().find("items"),
            std::string::npos);

  for (const char* line :
       {R"({"op":"admit_batch","m":2})",               // missing items
        R"({"op":"admit_batch","m":2,"items":[]})",    // empty items
        R"({"op":"admit_batch","m":2,"items":7})"}) {  // not an array
    const JsonValue reply = parse_ok(router_.handle(line).reply);
    EXPECT_FALSE(reply.find("ok")->as_bool()) << line;
  }
  // An item without its own m and no top-level default is a per-item
  // error, not a request-level one.
  const JsonValue no_m = parse_ok(
      router_.handle(R"({"op":"admit_batch","items":[{"tasks":[[1,4]]}]})")
          .reply);
  ASSERT_TRUE(no_m.find("ok")->as_bool());
  EXPECT_FALSE(no_m.find("items")->items()[0].find("ok")->as_bool());
}

TEST_F(RouterTest, SimulateMatchesDirectSimulation) {
  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}});
  const JsonValue reply = handle(make_simulate_request(2, tasks));
  ASSERT_TRUE(reply.find("ok")->as_bool());
  ASSERT_TRUE(reply.find("accepted")->as_bool());

  const Rmts rmts(std::make_shared<HarmonicChainBound>());
  const Assignment assignment = rmts.partition(tasks, 2);
  SimConfig sim;
  sim.horizon = recommended_horizon(tasks, RouterConfig{}.sim_horizon_cap);
  sim.stop_at_first_miss = false;
  const SimResult direct = simulate(tasks, assignment, sim);
  EXPECT_EQ(reply.find("schedulable")->as_bool(), direct.schedulable);
  EXPECT_EQ(reply.find("events")->as_int(),
            static_cast<std::int64_t>(direct.events));
  EXPECT_EQ(reply.find("jobs_released")->as_int(),
            static_cast<std::int64_t>(direct.jobs_released));
}

TEST_F(RouterTest, MalformedRequestsGetStructuredErrors) {
  const char* bad[] = {
      "not json",
      "[1,2,3]",                                   // not an object
      R"({"id":7})",                               // missing op
      R"({"op":"frobnicate"})",                    // unknown op
      R"({"op":"admit"})",                         // missing m/tasks
      R"({"op":"admit","m":0,"tasks":[[1,2]]})",   // m out of range
      R"({"op":"admit","m":2,"tasks":[[0,5]]})",   // wcet out of range
      R"({"op":"admit","m":2,"tasks":[[1,2]],"alg":"nope"})",
      R"({"op":"admit","m":2,"tasks":[[1,2]],"bound":"nope"})",
  };
  for (const char* line : bad) {
    const HandleOutcome outcome = router_.handle(line);
    const JsonValue reply = parse_ok(outcome.reply);
    EXPECT_FALSE(reply.find("ok")->as_bool()) << line;
    EXPECT_TRUE(outcome.error) << line;
    ASSERT_NE(reply.find("error"), nullptr) << line;
    EXPECT_FALSE(reply.find("error")->as_string().empty()) << line;
  }
}

TEST_F(RouterTest, ErrorsEchoOpAndScalarId) {
  const JsonValue reply = handle(R"({"op":"admit","id":42})");
  EXPECT_FALSE(reply.find("ok")->as_bool());
  EXPECT_EQ(reply.find("op")->as_string(), "admit");
  ASSERT_NE(reply.find("id"), nullptr);
  EXPECT_EQ(reply.find("id")->as_int(), 42);
}

TEST_F(RouterTest, EnforcesTaskCountLimit) {
  RouterConfig small;
  small.max_tasks = 2;
  const Router router(small, metrics_);
  const auto tasks = TaskSet::from_pairs({{1, 10}, {1, 20}, {1, 30}});
  const HandleOutcome outcome = router.handle(make_admit_request(2, tasks));
  const JsonValue reply = parse_ok(outcome.reply);
  EXPECT_FALSE(reply.find("ok")->as_bool());
  EXPECT_NE(reply.find("error")->as_string().find("tasks"),
            std::string::npos);
}

TEST_F(RouterTest, RobustnessReportsMargins) {
  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}});
  const JsonValue reply = handle(make_robustness_request(2, tasks));
  ASSERT_TRUE(reply.find("ok")->as_bool());
  ASSERT_TRUE(reply.find("accepted")->as_bool());
  EXPECT_GE(reply.find("simulated_overrun_margin")->as_double(), 1.0);
}

TEST_F(RouterTest, StatsWorksWithoutRuntimeCallback) {
  const JsonValue reply = handle(make_stats_request());
  ASSERT_TRUE(reply.find("ok")->as_bool());
  ASSERT_NE(reply.find("endpoints"), nullptr);
  EXPECT_TRUE(reply.find("endpoints")->is_object());
}

// -------------------------------------------------- in-process server --

/// Runs a Server on a background thread for one test.
class LiveServer {
 public:
  explicit LiveServer(ServerConfig config) : server_(std::move(config)) {
    thread_ = std::thread([this] { server_.run(); });
  }
  ~LiveServer() {
    server_.request_stop();
    thread_.join();
  }
  Server& operator*() noexcept { return server_; }
  Server* operator->() noexcept { return &server_; }

 private:
  Server server_;
  std::thread thread_;
};

ServerConfig test_config() {
  ServerConfig config;
  config.port = 0;  // ephemeral
  config.workers = 2;
  config.drain_timeout_ms = 2000;
  return config;
}

TEST(ServerTest, ServesEveryEndpointOverTcp) {
  LiveServer server(test_config());
  Client client("127.0.0.1", server->port());
  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}, {2, 10}});

  for (const std::string& request :
       {make_admit_request(2, tasks, "rmts", "hc", 1),
        make_admit_request(2, tasks, "spa2", {}, 2),
        make_admit_request(2, tasks, "edf-ts", {}, 3),
        make_admit_batch_request(2, std::vector<TaskSet>{tasks, tasks}),
        make_analyze_request(2, tasks), make_robustness_request(2, tasks),
        make_simulate_request(2, tasks), make_stats_request(),
        make_metrics_request()}) {
    const JsonValue reply = parse_ok(client.request(request));
    ASSERT_NE(reply.find("ok"), nullptr) << request;
    EXPECT_TRUE(reply.find("ok")->as_bool()) << request;
  }

  // The metrics the stats endpoint reads are visible in-process too.
  EXPECT_EQ(server->metrics().total_requests(), 9u);
  EXPECT_EQ(server->runtime_stats().connections_accepted, 1u);
}

TEST(ServerTest, PipelinedRequestsComeBackInOrder) {
  LiveServer server(test_config());
  Client client("127.0.0.1", server->port());
  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}});

  constexpr int kRequests = 50;
  for (int i = 0; i < kRequests; ++i) {
    client.send_line(make_admit_request(2, tasks, {}, {}, i));
  }
  for (int i = 0; i < kRequests; ++i) {
    const JsonValue reply = parse_ok(client.read_reply());
    EXPECT_TRUE(reply.find("ok")->as_bool());
    ASSERT_NE(reply.find("id"), nullptr);
    EXPECT_EQ(reply.find("id")->as_int(), i);  // protocol answers in order
  }
}

TEST(ServerTest, MalformedAndOversizedLinesGetErrors) {
  ServerConfig config = test_config();
  config.max_line = 256;
  LiveServer server(std::move(config));
  Client client("127.0.0.1", server->port());

  JsonValue reply = parse_ok(client.request("this is not json"));
  EXPECT_FALSE(reply.find("ok")->as_bool());

  reply = parse_ok(client.request(std::string(1000, 'x')));
  EXPECT_FALSE(reply.find("ok")->as_bool());
  EXPECT_NE(reply.find("error")->as_string().find("too long"),
            std::string::npos);

  // The connection survives both and keeps serving.
  reply = parse_ok(client.request(make_stats_request()));
  EXPECT_TRUE(reply.find("ok")->as_bool());
}

TEST(ServerTest, ShedsExplicitlyWhenOverloaded) {
  ServerConfig config = test_config();
  config.workers = 1;
  config.max_in_flight = 2;
  config.batch_size = 1;
  LiveServer server(std::move(config));
  Client client("127.0.0.1", server->port());
  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}});

  // One write burst decodes as one epoll wave; beyond max_in_flight the
  // server must answer {"ok":false,"error":"overloaded"} immediately
  // rather than queue without bound.
  constexpr int kBurst = 64;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += make_admit_request(2, tasks, {}, {}, i);
    burst += '\n';
  }
  client.send_line(burst.substr(0, burst.size() - 1));  // send_line adds \n

  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const JsonValue reply = parse_ok(client.read_reply());
    if (reply.find("ok")->as_bool()) {
      ++ok;
    } else {
      ASSERT_NE(reply.find("error"), nullptr);
      EXPECT_EQ(reply.find("error")->as_string(), "overloaded");
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(server->runtime_stats().requests_shed,
            static_cast<std::uint64_t>(shed));
}

TEST(ServerTest, GracefulStopAnswersInFlightRequestThenCloses) {
  LiveServer server(test_config());
  Client client("127.0.0.1", server->port());
  const auto tasks = TaskSet::from_pairs({{2, 9}, {3, 12}, {5, 18}});

  // Robustness is the slowest endpoint (bisection over simulations).
  // Wait until the request is genuinely in flight -- a stop issued before
  // the server has even read the line would (correctly) drop it, since
  // the drain stops reading -- then stop mid-request.
  client.send_line(make_robustness_request(2, tasks));
  while (server->runtime_stats().batches_dispatched == 0) {
    std::this_thread::yield();
  }
  server->request_stop();

  const JsonValue reply = parse_ok(client.read_reply());
  EXPECT_TRUE(reply.find("ok")->as_bool());  // drained, not dropped

  // After the drain the server closes the connection.
  EXPECT_THROW(client.read_reply(), TransportError);
}

TEST(ServerTest, DrainFlushesPendingShedRepliesWhileSaturated) {
  // Regression: a SIGTERM arriving while the server is saturated and busy
  // shedding must not drop the already-enqueued `overloaded` replies --
  // the drain waits for every write buffer to flush, so each decoded
  // request gets its answer before the connection closes.
  ServerConfig config = test_config();
  config.workers = 1;
  config.batch_size = 1;
  config.max_in_flight = 1;
  // The pinned request below runs ~250 ms natively but several seconds
  // under TSan on a loaded single-core box; the drain must outlast it or
  // the deadline force-closes the sockets this test asserts are flushed.
  config.drain_timeout_ms = 30'000;
  LiveServer server(std::move(config));
  Client saturator("127.0.0.1", server->port(), /*timeout_ms=*/30'000);
  Client client("127.0.0.1", server->port(), /*timeout_ms=*/30'000);

  // Pin the single worker on a slow request (~250 ms: coprime periods
  // push the robustness bisection to the simulation horizon cap) so the
  // backstop stays full while the burst arrives.
  const auto heavy = TaskSet::from_pairs({{12, 97},
                                          {12, 101},
                                          {12, 103},
                                          {13, 107},
                                          {13, 109},
                                          {14, 113},
                                          {15, 127},
                                          {16, 131},
                                          {17, 137},
                                          {17, 139},
                                          {18, 149},
                                          {18, 151}});
  saturator.send_line(make_robustness_request(4, heavy, {}, {}, 8.0));
  while (server->runtime_stats().batches_dispatched == 0) {
    std::this_thread::yield();
  }

  // One pipelined wave: with max_in_flight == 1 every request sheds, and
  // every shed reply lands in the connection's write buffer.
  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}});
  constexpr int kBurst = 16;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += make_admit_request(2, tasks, {}, {}, i);
    burst += '\n';
  }
  client.send_line(burst.substr(0, burst.size() - 1));
  // Bounded wait for the wave to be decoded and answered; generous
  // because a sanitized worker starves the event loop on small machines.
  // Requests still undecoded at request_stop() are silently dropped, so
  // proceeding early would void the flushed-reply count below.
  const auto decode_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server->runtime_stats().requests_shed <
             static_cast<std::uint64_t>(kBurst) &&
         std::chrono::steady_clock::now() < decode_deadline) {
    std::this_thread::yield();
  }
  ASSERT_GE(server->runtime_stats().requests_shed,
            static_cast<std::uint64_t>(kBurst))
      << "burst not fully decoded before stop";

  server->request_stop();

  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const JsonValue reply = parse_ok(client.read_reply());
    if (!reply.find("ok")->as_bool()) {
      EXPECT_EQ(reply.find("error")->as_string(), "overloaded");
      EXPECT_GE(reply.find("retry_after_ms")->as_int(), 1);
      ++shed;
    }
  }
  EXPECT_GT(shed, 0);  // the burst genuinely overlapped the saturation

  // The in-flight slow request drains to completion too, then EOF.
  EXPECT_TRUE(parse_ok(saturator.read_reply()).find("ok")->as_bool());
  EXPECT_THROW(client.read_reply(), TransportError);
  EXPECT_THROW(saturator.read_reply(), TransportError);
}

TEST(ServerTest, StopIsIdempotentAndRunReturns) {
  ServerConfig config = test_config();
  Server server(std::move(config));
  server.request_stop();
  server.request_stop();
  server.run();  // a pre-stopped server drains immediately
  SUCCEED();
}

// ------------------------------------------------ rmts_serve fork/exec --

TEST(ServeBinaryTest, StartsServesAndExitsZeroOnSigterm) {
  int out_pipe[2];
  ASSERT_EQ(::pipe(out_pipe), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execl(RMTS_SERVE_BIN, "rmts_serve", "--port", "0", "--workers", "1",
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  ::close(out_pipe[1]);

  // Parse "rmts_serve listening on 127.0.0.1:PORT".
  std::string banner;
  char ch;
  while (::read(out_pipe[0], &ch, 1) == 1 && ch != '\n') banner += ch;
  const std::size_t colon = banner.rfind(':');
  ASSERT_NE(colon, std::string::npos) << banner;
  const auto port =
      static_cast<std::uint16_t>(std::stoul(banner.substr(colon + 1)));
  ASSERT_GT(port, 0);

  {
    Client client("127.0.0.1", port);
    const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}});
    const JsonValue reply = parse_ok(client.request(make_admit_request(2, tasks)));
    EXPECT_TRUE(reply.find("ok")->as_bool());
  }

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ::close(out_pipe[0]);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace rmts::server
