// The exhaustive optimal strict partitioner: correctness, dominance over
// the FFD heuristic, and its relationship to splitting.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "partition/baselines.hpp"
#include "partition/optimal_strict.hpp"
#include "partition/rmts_light.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

TEST(OptimalStrict, Name) { EXPECT_EQ(OptimalStrictRm().name(), "OPT-strict"); }

TEST(OptimalStrict, SolvesBinPackingAnomalyFfdMisses) {
  // Classic FFD anomaly {0.4, 0.4, 0.3 x4} on 2 unit bins: FFD stacks both
  // 0.4s (0.8) and can then place only three of the four 0.3s; the optimal
  // partition {0.4+0.3+0.3 | 0.4+0.3+0.3} packs both to exactly 1.
  const TaskSet tasks = TaskSet::from_pairs({{400, 1000},
                                             {400, 1000},
                                             {300, 1000},
                                             {300, 1000},
                                             {300, 1000},
                                             {300, 1000}});
  const PartitionedRm ffd(FitPolicy::kFirstFit, TaskOrder::kDecreasingUtilization,
                          Admission::kExactRta);
  EXPECT_FALSE(ffd.accepts(tasks, 2));
  const Assignment optimal = OptimalStrictRm().partition(tasks, 2);
  ASSERT_TRUE(optimal.success) << optimal.describe();
  EXPECT_EQ(optimal.split_task_count(), 0u);
  testing::expect_valid_partition(tasks, optimal);
}

TEST(OptimalStrict, CannotBeatSplitting) {
  // Three 0.6 tasks on two processors: no strict partition exists at all,
  // but splitting handles it (the paper's motivating configuration).
  const TaskSet tasks = TaskSet::from_pairs({{600, 1000}, {606, 1010}, {612, 1020}});
  EXPECT_FALSE(OptimalStrictRm().accepts(tasks, 2));
  EXPECT_TRUE(RmtsLight().accepts(tasks, 2));
}

TEST(OptimalStrict, DominatesEveryBinPackingHeuristic) {
  Rng rng(1500);
  const OptimalStrictRm optimal;
  const PartitionedRm ffd(FitPolicy::kFirstFit, TaskOrder::kDecreasingUtilization,
                          Admission::kExactRta);
  const PartitionedRm bfd(FitPolicy::kBestFit, TaskOrder::kDecreasingUtilization,
                          Admission::kExactRta);
  const PartitionedRm wfd(FitPolicy::kWorstFit, TaskOrder::kDecreasingUtilization,
                          Admission::kExactRta);
  int optimal_accepted = 0;
  for (int trial = 0; trial < 150; ++trial) {
    WorkloadConfig config;
    config.tasks = 8;
    config.processors = 3;
    config.max_task_utilization = 0.8;
    config.normalized_utilization = 0.6 + 0.38 * (trial % 10) / 10.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const bool opt = optimal.accepts(tasks, 3);
    optimal_accepted += opt;
    // Heuristic accepted => a feasible strict partition exists => the
    // exhaustive search must find one.
    if (ffd.accepts(tasks, 3)) {
      EXPECT_TRUE(opt) << tasks.describe();
    }
    if (bfd.accepts(tasks, 3)) {
      EXPECT_TRUE(opt) << tasks.describe();
    }
    if (wfd.accepts(tasks, 3)) {
      EXPECT_TRUE(opt) << tasks.describe();
    }
  }
  EXPECT_GT(optimal_accepted, 50);
}

TEST(OptimalStrict, AcceptedPartitionsRunClean) {
  Rng rng(1501);
  int validated = 0;
  for (int trial = 0; trial < 40; ++trial) {
    WorkloadConfig config;
    config.tasks = 8;
    config.processors = 3;
    config.period_model = PeriodModel::kGrid;
    config.period_grid = small_hyperperiod_grid();
    config.max_task_utilization = 0.8;
    config.normalized_utilization = 0.65 + 0.3 * (trial % 8) / 8.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = OptimalStrictRm().partition(tasks, 3);
    if (!a.success) continue;
    ++validated;
    testing::expect_simulation_clean(tasks, a);
  }
  EXPECT_GT(validated, 15);
}

TEST(OptimalStrict, FailureListsAllTasks) {
  const TaskSet tasks = TaskSet::from_pairs({{900, 1000}, {900, 1000}, {900, 1000}});
  const Assignment a = OptimalStrictRm().partition(tasks, 2);
  EXPECT_FALSE(a.success);
  EXPECT_EQ(a.unassigned.size(), 3u);
}

TEST(OptimalStrict, EmptySetTrivial) {
  EXPECT_TRUE(OptimalStrictRm().partition(TaskSet(), 2).success);
}

}  // namespace
}  // namespace rmts
