// MaxSplit (Definition 3): hand-computed values, the bottleneck property
// (Definition 2), and equivalence of the binary-search and
// scheduling-point implementations on randomized processors.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "partition/max_split.hpp"
#include "partition/processor_state.hpp"

namespace rmts {
namespace {

constexpr auto kBinary = MaxSplitMethod::kBinarySearch;
constexpr auto kPoints = MaxSplitMethod::kSchedulingPoints;

Subtask make_subtask(std::size_t priority, Time wcet, Time period,
                     Time deadline = 0) {
  return Subtask{priority,
                 static_cast<TaskId>(priority),
                 0,
                 wcet,
                 period,
                 deadline == 0 ? period : deadline,
                 SubtaskKind::kWhole};
}

TEST(MaxSplit, EmptyProcessorGivesFullBudget) {
  const ProcessorState empty;
  const Subtask candidate = make_subtask(3, 80, 100);
  EXPECT_EQ(max_admissible_wcet(empty, candidate, kBinary), 80);
  EXPECT_EQ(max_admissible_wcet(empty, candidate, kPoints), 80);
}

TEST(MaxSplit, EmptyProcessorCappedByDeadline) {
  const ProcessorState empty;
  const Subtask candidate = make_subtask(3, 90, 100, 40);  // Delta = 40 < C
  EXPECT_EQ(max_admissible_wcet(empty, candidate, kBinary), 40);
  EXPECT_EQ(max_admissible_wcet(empty, candidate, kPoints), 40);
}

// Hand example: hosted (C=50, T=100); candidate period 40.  Testing points
// {40, 80, 100}: max floor((t - 50) / ceil(t/40)) = max(-, 15, 16) = 16.
TEST(MaxSplit, HandComputedValue) {
  ProcessorState processor;
  processor.add(make_subtask(5, 50, 100));
  const Subtask candidate = make_subtask(2, 40, 40);
  EXPECT_EQ(max_admissible_wcet(processor, candidate, kBinary), 16);
  EXPECT_EQ(max_admissible_wcet(processor, candidate, kPoints), 16);
}

TEST(MaxSplit, ZeroWhenNothingFits) {
  ProcessorState processor;
  processor.add(make_subtask(5, 100, 100));  // fully loaded
  const Subtask candidate = make_subtask(2, 10, 50);
  EXPECT_EQ(max_admissible_wcet(processor, candidate, kBinary), 0);
  EXPECT_EQ(max_admissible_wcet(processor, candidate, kPoints), 0);
}

TEST(MaxSplit, NonPositiveDeadlineYieldsZero) {
  const ProcessorState empty;
  Subtask candidate = make_subtask(2, 10, 50);
  candidate.deadline = 0;
  EXPECT_EQ(max_admissible_wcet(empty, candidate, kBinary), 0);
  candidate.deadline = -5;
  EXPECT_EQ(max_admissible_wcet(empty, candidate, kPoints), 0);
}

TEST(MaxSplit, CandidateOwnDeadlineWithInterference) {
  // hp (C=20, T=100) above the candidate; candidate D=60 -> self budget 40.
  ProcessorState processor;
  processor.add(make_subtask(1, 20, 100));
  const Subtask candidate = make_subtask(4, 100, 100, 60);
  EXPECT_EQ(max_admissible_wcet(processor, candidate, kBinary), 40);
  EXPECT_EQ(max_admissible_wcet(processor, candidate, kPoints), 40);
}

TEST(MaxSplit, MidPriorityCandidateConstrainedBothWays) {
  // hp (10, 50) interferes with the candidate; lp (30, 200) is interfered
  // by it.  Both constraints must hold simultaneously.
  ProcessorState processor;
  processor.add(make_subtask(0, 10, 50));
  processor.add(make_subtask(9, 30, 200));
  const Subtask candidate = make_subtask(4, 70, 70);
  const Time budget = max_admissible_wcet(processor, candidate, kPoints);
  EXPECT_EQ(max_admissible_wcet(processor, candidate, kBinary), budget);
  ASSERT_GT(budget, 0);
  ASSERT_LT(budget, 70);
  Subtask fitted = candidate;
  fitted.wcet = budget;
  EXPECT_TRUE(processor.fits(fitted));
  fitted.wcet = budget + 1;
  EXPECT_FALSE(processor.fits(fitted));
}

// Randomized equivalence + bottleneck property: both implementations agree,
// the result fits, and one more tick does not (Definition 2's bottleneck).
TEST(MaxSplit, MethodsAgreeAndLeaveBottleneck) {
  Rng rng(2024);
  for (int trial = 0; trial < 1000; ++trial) {
    ProcessorState processor;
    const int hosted = static_cast<int>(rng.uniform_int(0, 5));
    // Hosted subtasks with distinct priorities in 1..40; keep the load
    // moderate so some (but not all) candidates fit.
    std::vector<std::size_t> priorities;
    for (int i = 0; i < hosted; ++i) {
      std::size_t priority;
      do {
        priority = static_cast<std::size_t>(rng.uniform_int(1, 40));
      } while (std::find(priorities.begin(), priorities.end(), priority) !=
               priorities.end());
      priorities.push_back(priority);
      const Time period = rng.uniform_int(20, 300);
      Subtask s = make_subtask(priority, rng.uniform_int(1, period / 3), period);
      if (rng.uniform() < 0.3) {
        s.deadline = rng.uniform_int(s.wcet, period);  // synthetic deadline
        s.kind = SubtaskKind::kTail;
      }
      if (!processor.fits(s)) continue;  // keep the invariant: schedulable
      processor.add(s);
    }
    std::size_t cand_priority;
    do {
      cand_priority = static_cast<std::size_t>(rng.uniform_int(0, 41));
    } while (std::find(priorities.begin(), priorities.end(), cand_priority) !=
             priorities.end());
    const Time period = rng.uniform_int(20, 300);
    Subtask candidate = make_subtask(cand_priority, rng.uniform_int(1, period), period);
    if (rng.uniform() < 0.3) {
      candidate.deadline = rng.uniform_int(1, period);
    }

    const Time via_binary = max_admissible_wcet(processor, candidate, kBinary);
    const Time via_points = max_admissible_wcet(processor, candidate, kPoints);
    ASSERT_EQ(via_binary, via_points) << "trial " << trial;

    if (via_binary > 0) {
      Subtask fitted = candidate;
      fitted.wcet = via_binary;
      EXPECT_TRUE(processor.fits(fitted)) << "trial " << trial;
    }
    if (via_binary < candidate.wcet) {
      Subtask over = candidate;
      over.wcet = via_binary + 1;
      EXPECT_FALSE(processor.fits(over)) << "trial " << trial;
    }
  }
}

TEST(MaxSplit, MonotoneInHostedLoad) {
  // Adding load to the processor can only shrink the admissible budget.
  ProcessorState light;
  light.add(make_subtask(5, 20, 100));
  ProcessorState heavy = light;
  heavy.add(make_subtask(7, 30, 150));
  const Subtask candidate = make_subtask(2, 60, 60);
  EXPECT_GE(max_admissible_wcet(light, candidate, kPoints),
            max_admissible_wcet(heavy, candidate, kPoints));
}

TEST(ProcessorState, AddMaintainsPriorityOrderAndUtilization) {
  ProcessorState processor;
  processor.add(make_subtask(5, 10, 100));
  processor.add(make_subtask(1, 10, 50));
  processor.add(make_subtask(9, 10, 200));
  ASSERT_EQ(processor.subtasks().size(), 3u);
  EXPECT_EQ(processor.subtasks()[0].priority, 1u);
  EXPECT_EQ(processor.subtasks()[1].priority, 5u);
  EXPECT_EQ(processor.subtasks()[2].priority, 9u);
  EXPECT_NEAR(processor.utilization(), 0.1 + 0.2 + 0.05, 1e-12);
}

TEST(ProcessorState, FitsMatchesFullReanalysis) {
  Rng rng(55);
  for (int trial = 0; trial < 500; ++trial) {
    ProcessorState processor;
    std::vector<Subtask> all;
    for (int i = 0; i < 4; ++i) {
      const Time period = rng.uniform_int(20, 200);
      Subtask s = make_subtask(static_cast<std::size_t>(i * 2 + 1),
                               rng.uniform_int(1, period / 4), period);
      if (processor.fits(s)) {
        processor.add(s);
        all.push_back(s);
      }
    }
    const Time period = rng.uniform_int(20, 200);
    const Subtask candidate =
        make_subtask(static_cast<std::size_t>(rng.uniform_int(0, 4)) * 2,
                     rng.uniform_int(1, period), period);
    // Reference: full re-analysis of the merged, sorted list.
    std::vector<Subtask> merged = all;
    merged.push_back(candidate);
    std::sort(merged.begin(), merged.end(),
              [](const Subtask& a, const Subtask& b) { return a.priority < b.priority; });
    EXPECT_EQ(processor.fits(candidate), processor_schedulable(merged))
        << "trial " << trial;
  }
}

TEST(ProcessorState, ResponseTimeOfMatchesAnalyzeProcessor) {
  ProcessorState processor;
  processor.add(make_subtask(1, 20, 100));
  processor.add(make_subtask(4, 40, 150));
  const ProcessorRta rta = analyze_processor(processor.subtasks());
  ASSERT_TRUE(rta.schedulable);
  EXPECT_EQ(processor.response_time_of(0), rta.response[0]);
  EXPECT_EQ(processor.response_time_of(1), rta.response[1]);
}

TEST(ProcessorState, FullFlag) {
  ProcessorState processor;
  EXPECT_FALSE(processor.full());
  processor.mark_full();
  EXPECT_TRUE(processor.full());
}

}  // namespace
}  // namespace rmts
