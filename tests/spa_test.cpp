// SPA1 / SPA2 (the RTAS 2010 baselines): threshold admission, threshold
// splitting, pre-assignment, and their utilization-bound theorems.
#include <gtest/gtest.h>

#include "bounds/bound.hpp"
#include "common/rng.hpp"
#include "helpers.hpp"
#include "partition/spa.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

TEST(Spa, Names) {
  EXPECT_EQ(Spa1().name(), "SPA1");
  EXPECT_EQ(Spa2().name(), "SPA2");
}

TEST(Spa1, NoProcessorExceedsTheta) {
  Rng rng(42);
  WorkloadConfig config;
  config.tasks = 12;
  config.processors = 4;
  config.max_task_utilization = 0.4;
  const double theta = liu_layland_theta(12);
  for (int trial = 0; trial < 50; ++trial) {
    config.normalized_utilization = 0.3 + 0.6 * rng.uniform();
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = Spa1().partition(tasks, config.processors);
    for (const auto& processor : a.processors) {
      EXPECT_LE(processor.utilization(), theta + 1e-6);
    }
  }
}

TEST(Spa1, AcceptsLightSetsUpToTheta) {
  // The RTAS'10 theorem: light task sets with U_M <= Theta(N) are accepted.
  Rng rng(43);
  WorkloadConfig config;
  config.tasks = 16;
  config.processors = 4;
  config.max_task_utilization = light_task_threshold(16);
  const double theta = liu_layland_theta(16);
  for (int trial = 0; trial < 100; ++trial) {
    config.normalized_utilization = 0.3 + (theta - 0.31) * rng.uniform();
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    if (tasks.normalized_utilization(4) > theta - 0.005) continue;  // margin
    EXPECT_TRUE(Spa1().accepts(tasks, 4)) << tasks.describe();
  }
}

TEST(Spa1, NeverAcceptsMuchBeyondItsBound) {
  // The flip side of threshold admission (the paper's Section I critique):
  // per-processor utilization is capped at Theta, so acceptance requires
  // U_M <= Theta (up to the one still-open processor's slack).
  Rng rng(44);
  WorkloadConfig config;
  config.tasks = 16;
  config.processors = 4;
  config.max_task_utilization = 0.4;
  config.normalized_utilization = 0.80;  // far above Theta(16) = 0.71
  int accepted = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    accepted += Spa1().accepts(tasks, 4);
  }
  EXPECT_EQ(accepted, 0);
}

TEST(Spa1, SplitBookkeepingFollowsLemma3) {
  // Force a split: three half-utilization tasks on two processors.
  const TaskSet tasks = TaskSet::from_pairs({{450, 1000}, {455, 1010}, {459, 1020}});
  const Assignment a = Spa1().partition(tasks, 2);
  ASSERT_TRUE(a.success) << a.describe();
  EXPECT_GE(a.split_task_count(), 1u);
  testing::expect_valid_partition(tasks, a, /*check_rta=*/true,
                                  /*check_body_top_priority=*/true,
                                  /*deadline_by_body_wcet=*/true);
}

TEST(Spa1, FailureReportsUnassigned) {
  const TaskSet tasks = TaskSet::from_pairs({{900, 1000}, {900, 1000}});
  const Assignment a = Spa1().partition(tasks, 1);
  EXPECT_FALSE(a.success);
  EXPECT_FALSE(a.unassigned.empty());
}

TEST(Spa2, AcceptsAnySetUpToTheta) {
  // SPA2's theorem covers heavy tasks as well.
  Rng rng(45);
  WorkloadConfig config;
  config.tasks = 12;
  config.processors = 4;
  config.max_task_utilization = 0.9;
  const double theta = liu_layland_theta(12);
  int exercised = 0;
  for (int trial = 0; trial < 150; ++trial) {
    config.normalized_utilization = 0.3 + (theta - 0.3) * rng.uniform();
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    if (tasks.normalized_utilization(4) > theta - 0.005) continue;
    ++exercised;
    EXPECT_TRUE(Spa2().accepts(tasks, 4)) << tasks.describe();
  }
  EXPECT_GT(exercised, 100);
}

TEST(Spa2, MatchesSpa1OnLightSets) {
  // No heavy tasks -> no pre-assignment -> SPA2 == SPA1.
  Rng rng(46);
  WorkloadConfig config;
  config.tasks = 12;
  config.processors = 3;
  config.max_task_utilization = light_task_threshold(12);
  for (int trial = 0; trial < 40; ++trial) {
    config.normalized_utilization = 0.35 + 0.4 * rng.uniform();
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = Spa1().partition(tasks, 3);
    const Assignment b = Spa2().partition(tasks, 3);
    ASSERT_EQ(a.success, b.success);
    for (std::size_t q = 0; q < a.processors.size(); ++q) {
      EXPECT_EQ(a.processors[q].subtasks, b.processors[q].subtasks);
    }
  }
}

TEST(Spa2, PreAssignedHeavyTaskSitsAloneInitially) {
  // Same scenario as the RM-TS pre-assignment test; SPA2 must also keep
  // the qualifying heavy task unsplit.
  const TaskSet tasks = TaskSet::from_pairs(
      {{800, 1000}, {200, 2000}, {200, 2000}, {200, 2000}});
  const Assignment a = Spa2().partition(tasks, 2);
  ASSERT_TRUE(a.success) << a.describe();
  EXPECT_EQ(testing::chains_of(a).at(0).size(), 1u);
}

TEST(Spa2, AcceptanceNeverBelowSpa1) {
  // Pre-assignment only helps: on sets SPA1 handles, SPA2 should not do
  // worse (statistically; exercised over a mixed population).
  Rng rng(47);
  WorkloadConfig config;
  config.tasks = 12;
  config.processors = 4;
  config.max_task_utilization = 0.8;
  int spa1_accepted = 0;
  int spa2_accepted = 0;
  for (int trial = 0; trial < 100; ++trial) {
    config.normalized_utilization = 0.5 + 0.25 * rng.uniform();
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    spa1_accepted += Spa1().accepts(tasks, 4);
    spa2_accepted += Spa2().accepts(tasks, 4);
  }
  EXPECT_GE(spa2_accepted, spa1_accepted);
}

}  // namespace
}  // namespace rmts
