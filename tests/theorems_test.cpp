// The paper's theorems as randomized property tests.  Each test generates
// workloads satisfying a theorem's premise and requires the corresponding
// algorithm to accept (and, spot-checked, to run miss-free).
//
// A small margin (kMargin) below each bound absorbs the two quantization
// effects of the integer-tick implementation: WCETs are rounded to ticks by
// the generator, and MaxSplit leaves bottlenecks at 1-tick granularity.
// With periods >= 10^3 ticks both effects are < 0.1% per processor.
#include <gtest/gtest.h>

#include <memory>

#include "bounds/best_of.hpp"
#include "bounds/burchard.hpp"
#include "bounds/harmonic.hpp"
#include "bounds/ll_bound.hpp"
#include "bounds/scaled_periods.hpp"
#include "common/rng.hpp"
#include "helpers.hpp"
#include "partition/rmts.hpp"
#include "partition/rmts_light.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

constexpr double kMargin = 0.01;

// ---- Theorem 8: RM-TS/light achieves any D-PUB for light task sets -----

struct Theorem8Case {
  const char* label;
  PeriodModel period_model;
  std::size_t harmonic_chains;  // only for kHarmonicChains
};

class Theorem8Test : public ::testing::TestWithParam<Theorem8Case> {};

TEST_P(Theorem8Test, LightSetsWithinBoundAlwaysAccepted) {
  const Theorem8Case& param = GetParam();
  Rng rng(8008);
  const RmtsLight algorithm;
  const LiuLaylandBound ll;
  const HarmonicChainBound hc;
  const TBound tb;
  const RBound rb;
  const BurchardBound bb;
  const std::vector<const ParametricBound*> bounds{&ll, &hc, &tb, &rb, &bb};

  const std::size_t m = 4;
  const std::size_t n = 16;
  int exercised = 0;
  for (int trial = 0; trial < 200; ++trial) {
    WorkloadConfig config;
    config.tasks = n;
    config.processors = m;
    config.max_task_utilization = light_task_threshold(n);
    config.period_model = param.period_model;
    config.harmonic_chains = param.harmonic_chains;
    // Sweep the load across the interesting band.
    config.normalized_utilization = 0.55 + 0.44 * (trial % 20) / 20.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const double u_m = tasks.normalized_utilization(m);

    // The theorem promises acceptance whenever U_M <= Lambda(tau) for ANY
    // D-PUB; the strongest instance is the max over the implemented ones.
    double lambda = 0.0;
    for (const ParametricBound* bound : bounds) {
      lambda = std::max(lambda, bound->evaluate(tasks));
    }
    if (u_m > lambda - kMargin) continue;
    ++exercised;
    const Assignment a = algorithm.partition(tasks, m);
    EXPECT_TRUE(a.success) << param.label << " trial " << trial << " U_M=" << u_m
                           << " Lambda=" << lambda << "\n"
                           << tasks.describe();
  }
  EXPECT_GT(exercised, 30) << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, Theorem8Test,
    ::testing::Values(Theorem8Case{"log_uniform", PeriodModel::kLogUniform, 0},
                      Theorem8Case{"harmonic", PeriodModel::kHarmonic, 0},
                      Theorem8Case{"chains2", PeriodModel::kHarmonicChains, 2},
                      Theorem8Case{"chains3", PeriodModel::kHarmonicChains, 3}),
    [](const ::testing::TestParamInfo<Theorem8Case>& param_info) {
      return param_info.param.label;
    });

// Section IV instantiation: a light harmonic task set is schedulable up to
// U_M = 100%.  (The single strongest statement in the paper.)
TEST(Theorem8, HarmonicLightSetsAcceptedNearFullUtilization) {
  Rng rng(100100);
  const RmtsLight algorithm;
  int exercised = 0;
  for (int trial = 0; trial < 100; ++trial) {
    WorkloadConfig config;
    config.tasks = 16;
    config.processors = 4;
    config.period_model = PeriodModel::kHarmonic;
    config.max_task_utilization = light_task_threshold(16);
    config.normalized_utilization = 0.98;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    ASSERT_TRUE(tasks.is_harmonic());
    if (tasks.normalized_utilization(4) > 1.0 - kMargin) continue;
    ++exercised;
    EXPECT_TRUE(algorithm.accepts(tasks, 4)) << tasks.describe();
  }
  EXPECT_GT(exercised, 80);
}

// ---- Section V: RM-TS achieves min(Lambda, 2Theta/(1+Theta)) for ANY set

TEST(RmtsTheorem, AnySetWithinClampedBoundAccepted) {
  Rng rng(5005);
  const Rmts algorithm(std::make_shared<LiuLaylandBound>());
  const std::size_t m = 4;
  const std::size_t n = 16;
  int exercised = 0;
  for (int trial = 0; trial < 300; ++trial) {
    WorkloadConfig config;
    config.tasks = n;
    config.processors = m;
    // Heavy tasks allowed up to the bound itself (the paper's standing
    // assumption: every U_i <= Lambda(tau)).
    config.max_task_utilization = 0.65;
    config.normalized_utilization = 0.45 + 0.35 * (trial % 20) / 20.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const double lambda = algorithm.guaranteed_bound(tasks);
    ASSERT_LE(tasks.max_utilization(), lambda);
    if (tasks.normalized_utilization(m) > lambda - kMargin) continue;
    ++exercised;
    EXPECT_TRUE(algorithm.accepts(tasks, m))
        << "U_M=" << tasks.normalized_utilization(m) << " lambda=" << lambda
        << "\n"
        << tasks.describe();
  }
  EXPECT_GT(exercised, 100);
}

// Section V instantiation with the harmonic-chain bound: K = 3 chains give
// a guaranteed 77.9% for arbitrary (not necessarily light) task sets.
TEST(RmtsTheorem, ThreeChainSetsAcceptedUpTo779) {
  Rng rng(779779);
  const Rmts algorithm(std::make_shared<HarmonicChainBound>());
  int exercised = 0;
  for (int trial = 0; trial < 150; ++trial) {
    WorkloadConfig config;
    config.tasks = 12;
    config.processors = 4;
    config.period_model = PeriodModel::kHarmonicChains;
    config.harmonic_chains = 3;
    config.max_task_utilization = 0.7;
    config.normalized_utilization = 0.5 + 0.27 * (trial % 15) / 15.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const double lambda = algorithm.guaranteed_bound(tasks);
    EXPECT_NEAR(lambda, harmonic_chain_bound_value(3), 1e-9);
    if (tasks.normalized_utilization(4) > lambda - kMargin) continue;
    ++exercised;
    EXPECT_TRUE(algorithm.accepts(tasks, 4)) << tasks.describe();
  }
  EXPECT_GT(exercised, 60);
}


// With phase 0 (dedicated processors, footnote 5), the RM-TS bound holds
// without ANY per-task utilization assumption.
TEST(RmtsTheorem, HoldsWithoutPerTaskUtilizationAssumption) {
  Rng rng(5050);
  const Rmts algorithm(std::make_shared<LiuLaylandBound>());
  const std::size_t m = 4;
  int exercised = 0;
  for (int trial = 0; trial < 200; ++trial) {
    WorkloadConfig config;
    config.tasks = 16;
    config.processors = m;
    config.max_task_utilization = 0.95;  // tasks above Lambda allowed
    config.normalized_utilization = 0.4 + 0.3 * (trial % 20) / 20.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const double lambda = algorithm.guaranteed_bound(tasks);
    if (tasks.normalized_utilization(m) > lambda - kMargin) continue;
    ++exercised;
    EXPECT_TRUE(algorithm.accepts(tasks, m))
        << "U_M=" << tasks.normalized_utilization(m) << " lambda=" << lambda
        << "\n" << tasks.describe();
  }
  EXPECT_GT(exercised, 100);
}

// The accepted-at-premise partitions are also miss-free in simulation
// (Theorem premise -> acceptance -> Lemma 4 -> clean run), spot-checked on
// bounded-hyperperiod workloads.
TEST(RmtsTheorem, PremiseSatisfyingPartitionsRunClean) {
  Rng rng(606);
  const Rmts algorithm(std::make_shared<LiuLaylandBound>());
  int validated = 0;
  for (int trial = 0; trial < 40; ++trial) {
    WorkloadConfig config;
    config.tasks = 12;
    config.processors = 3;
    config.period_model = PeriodModel::kGrid;
    config.period_grid = small_hyperperiod_grid();
    config.max_task_utilization = 0.6;
    config.normalized_utilization = 0.65;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    if (tasks.normalized_utilization(3) >
        algorithm.guaranteed_bound(tasks) - kMargin) {
      continue;
    }
    const Assignment a = algorithm.partition(tasks, 3);
    ASSERT_TRUE(a.success);
    ++validated;
    testing::expect_simulation_clean(tasks, a);
  }
  EXPECT_GT(validated, 20);
}

// Average case far above worst case (the paper's second contribution):
// at U_M halfway between Theta(N) and 1, RM-TS still accepts a large
// majority of light task sets.
TEST(AverageCase, RmtsLightWellAboveWorstCaseBound) {
  Rng rng(888);
  const RmtsLight algorithm;
  WorkloadConfig config;
  config.tasks = 16;
  config.processors = 4;
  config.max_task_utilization = light_task_threshold(16);
  config.normalized_utilization = 0.85;  // Theta(16) ~= 0.713
  int accepted = 0;
  const int trials = 100;
  for (int trial = 0; trial < trials; ++trial) {
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    accepted += algorithm.accepts(generate(sample, config), 4);
  }
  EXPECT_GT(accepted, trials * 6 / 10);
}

}  // namespace
}  // namespace rmts
