// Tests for the adaptive overload-control layer (src/server/overload.hpp):
// the pure AIMD controller against a synthetic latency source (convergence
// and invariants, no sockets), the request peek scanner, the shed/expired
// reply builders and the client retry parser -- plus live-server tests of
// budget adaptation under a pipelined burst, deadline-aware shedding, and
// a retrying client riding out saturation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/json.hpp"
#include "server/overload.hpp"
#include "server/server.hpp"
#include "tasks/task_set.hpp"

namespace rmts::server {
namespace {

// ---------------------------------------------------- controller (pure) --

std::array<ClassSample, kBudgetClassCount> idle_samples() { return {}; }

constexpr auto kAdmitIdx = static_cast<std::size_t>(BudgetClass::kAdmit);

TEST(OverloadController, ClampsHostileConfigInsteadOfThrowing) {
  OverloadConfig bad;
  bad.interval_ms = 0;
  bad.min_budget = 0;
  bad.max_budget = 0;
  bad.initial_budget = 10'000;
  bad.decrease = 7.5;
  bad.increase = 0;
  bad.max_retry_after_ms = -3;
  const OverloadController controller(bad);
  const OverloadConfig& c = controller.config();
  EXPECT_GE(c.interval_ms, 1);
  EXPECT_GE(c.min_budget, 1u);
  EXPECT_GE(c.max_budget, c.min_budget);
  EXPECT_GT(c.decrease, 0.0);
  EXPECT_LT(c.decrease, 1.0);
  EXPECT_GE(c.increase, 1u);
  EXPECT_GE(c.max_retry_after_ms, c.interval_ms);
  EXPECT_GE(controller.budget(BudgetClass::kAdmit), c.min_budget);
  EXPECT_LE(controller.budget(BudgetClass::kAdmit), c.max_budget);
}

TEST(OverloadController, IdleTickLeavesBudgetsAlone) {
  OverloadController controller(OverloadConfig{});
  const std::size_t before = controller.budget(BudgetClass::kAdmit);
  controller.tick(idle_samples());
  EXPECT_EQ(controller.budget(BudgetClass::kAdmit), before);
  EXPECT_EQ(controller.ticks(), 1u);
}

TEST(OverloadController, CompliantIdleClassDoesNotProbeUpward) {
  // p99 under the SLO but the budget was nowhere near binding: probing
  // upward would just store up a future burst.
  OverloadController controller(OverloadConfig{});
  const std::size_t before = controller.budget(BudgetClass::kAdmit);
  auto samples = idle_samples();
  samples[kAdmitIdx] = {/*completed=*/3, /*shed=*/0, /*in_flight=*/1,
                        /*p99_us=*/100.0};
  controller.tick(samples);
  EXPECT_EQ(controller.budget(BudgetClass::kAdmit), before);
}

TEST(OverloadController, AdditiveIncreaseWhenCompliantAndBinding) {
  OverloadConfig config;
  config.initial_budget = 4;
  config.increase = 1;
  OverloadController controller(config);
  auto samples = idle_samples();
  samples[kAdmitIdx] = {/*completed=*/10, /*shed=*/2, /*in_flight=*/0,
                        /*p99_us=*/100.0};  // well under the 20ms SLO
  controller.tick(samples);
  EXPECT_EQ(controller.budget(BudgetClass::kAdmit), 5u);
  // Saturating at max_budget.
  for (int i = 0; i < 1000; ++i) controller.tick(samples);
  EXPECT_EQ(controller.budget(BudgetClass::kAdmit), config.max_budget);
}

TEST(OverloadController, MultiplicativeDecreaseOnSloViolation) {
  OverloadConfig config;
  config.initial_budget = 100;
  config.decrease = 0.5;
  OverloadController controller(config);
  auto samples = idle_samples();
  samples[kAdmitIdx] = {/*completed=*/10, /*shed=*/0, /*in_flight=*/50,
                        /*p99_us=*/1e9};  // hopeless
  controller.tick(samples);
  EXPECT_EQ(controller.budget(BudgetClass::kAdmit), 50u);
  controller.tick(samples);
  EXPECT_EQ(controller.budget(BudgetClass::kAdmit), 25u);
  // Never below the floor, no matter how long the violation lasts.
  for (int i = 0; i < 100; ++i) controller.tick(samples);
  EXPECT_EQ(controller.budget(BudgetClass::kAdmit), config.min_budget);
}

TEST(OverloadController, StuckClassWithZeroCompletionsIsViolating) {
  OverloadConfig config;
  config.initial_budget = 32;
  OverloadController controller(config);
  auto samples = idle_samples();
  samples[kAdmitIdx] = {/*completed=*/0, /*shed=*/0, /*in_flight=*/5,
                        /*p99_us=*/0.0};
  controller.tick(samples);
  EXPECT_LT(controller.budget(BudgetClass::kAdmit), 32u);
}

TEST(OverloadController, StaticModeFreezesBudgetsButKeepsHints) {
  OverloadConfig config;
  config.adaptive = false;
  config.initial_budget = 16;
  OverloadController controller(config);
  auto samples = idle_samples();
  samples[kAdmitIdx] = {/*completed=*/2, /*shed=*/10, /*in_flight=*/40,
                        /*p99_us=*/1e9};
  for (int i = 0; i < 20; ++i) controller.tick(samples);
  EXPECT_EQ(controller.budget(BudgetClass::kAdmit), 16u);
  // The hint still tracks the backlog in static mode.
  EXPECT_GT(controller.retry_after_ms(BudgetClass::kAdmit),
            controller.config().interval_ms);
}

TEST(OverloadController, ConvergesAgainstSyntheticLatencySource) {
  // Synthetic server: p99 grows linearly with the admitted budget
  // (1 ms per slot), so the largest SLO-compliant budget is exactly
  // slo / 1ms = 24.  The AIMD loop must settle into a band around it:
  // decreases from above, additive probes from below.
  OverloadConfig config;
  config.slo_p99_us[kAdmitIdx] = 24'000;
  config.initial_budget = 256;
  config.max_budget = 256;
  config.decrease = 0.7;
  OverloadController controller(config);

  std::vector<std::size_t> history;
  std::size_t budget = config.initial_budget;
  for (int t = 0; t < 400; ++t) {
    auto samples = idle_samples();
    samples[kAdmitIdx] = {/*completed=*/budget, /*shed=*/1,
                          /*in_flight=*/budget,
                          /*p99_us=*/static_cast<double>(budget) * 1000.0};
    budget = controller.tick(samples)[kAdmitIdx];
    history.push_back(budget);
  }
  // The last 100 ticks oscillate inside the AIMD band around 24:
  // never over by more than one additive step, never under 0.7 * 24 - 1.
  const auto tail_begin = history.end() - 100;
  const std::size_t lo = *std::min_element(tail_begin, history.end());
  const std::size_t hi = *std::max_element(tail_begin, history.end());
  EXPECT_GE(lo, 15u) << "collapsed below the AIMD band";
  EXPECT_LE(hi, 25u) << "exceeded the largest compliant budget";
  // And it genuinely oscillates (probes up, backs off) rather than pinning.
  EXPECT_LT(lo, hi);
}

TEST(OverloadController, RetryHintFollowsLittlesLaw) {
  OverloadConfig config;
  config.interval_ms = 100;
  config.max_retry_after_ms = 5000;
  OverloadController controller(config);

  // 10 completions per 100ms interval, 20 in flight: the backlog drains in
  // ceil(21/10) = 3 intervals = 300 ms.
  auto samples = idle_samples();
  samples[kAdmitIdx] = {/*completed=*/10, /*shed=*/0, /*in_flight=*/20,
                        /*p99_us=*/100.0};
  controller.tick(samples);
  EXPECT_EQ(controller.retry_after_ms(BudgetClass::kAdmit), 300);

  // More backlog -> longer hint (monotone), capped at the ceiling.
  samples[kAdmitIdx].in_flight = 100;
  controller.tick(samples);
  EXPECT_EQ(controller.retry_after_ms(BudgetClass::kAdmit), 1100);
  samples[kAdmitIdx].in_flight = 100'000;
  controller.tick(samples);
  EXPECT_EQ(controller.retry_after_ms(BudgetClass::kAdmit), 5000);

  // Saturated (nothing completed, work stuck): full ceiling.
  samples[kAdmitIdx] = {/*completed=*/0, /*shed=*/3, /*in_flight=*/4,
                        /*p99_us=*/0.0};
  controller.tick(samples);
  EXPECT_EQ(controller.retry_after_ms(BudgetClass::kAdmit), 5000);

  // Idle: just the interval.
  controller.tick(idle_samples());
  EXPECT_EQ(controller.retry_after_ms(BudgetClass::kAdmit), 100);
}

// ------------------------------------------------------------- peeking --

TEST(PeekRequest, ClassifiesEveryBudgetedOp) {
  const struct {
    const char* line;
    BudgetClass cls;
  } cases[] = {
      {R"({"op":"admit","m":2,"tasks":[[1,4]]})", BudgetClass::kAdmit},
      {R"({"op":"analyze","m":2,"tasks":[[1,4]]})", BudgetClass::kAnalyze},
      {R"({"op":"robustness","m":2,"tasks":[[1,4]]})",
       BudgetClass::kRobustness},
      {R"({"op":"simulate","m":2,"tasks":[[1,4]]})", BudgetClass::kSimulate},
      // Batched admission shares the admit budget (overload.cpp).
      {R"({"op":"admit_batch","m":2,"items":[{"tasks":[[1,4]]}]})",
       BudgetClass::kAdmit},
      {R"({ "op" : "admit" })", BudgetClass::kAdmit},  // whitespace tolerated
  };
  for (const auto& c : cases) {
    const RequestPeek peek = peek_request(c.line);
    EXPECT_TRUE(peek.budgeted) << c.line;
    EXPECT_EQ(peek.cls, c.cls) << c.line;
    EXPECT_EQ(peek.deadline_ms, 0) << c.line;
  }
}

TEST(PeekRequest, ControlPlaneAndGarbageAreUnbudgeted) {
  for (const char* line :
       {R"({"op":"stats"})", R"({"op":"metrics"})", R"({"op":"frobnicate"})",
        "not json at all", "", R"({"id":7})", R"({"op":12})"}) {
    EXPECT_FALSE(peek_request(line).budgeted) << line;
  }
}

TEST(PeekRequest, ExtractsDeadline) {
  EXPECT_EQ(peek_request(R"({"op":"admit","deadline_ms":250})").deadline_ms,
            250);
  EXPECT_EQ(peek_request(R"({"deadline_ms" : 42,"op":"analyze"})").deadline_ms,
            42);
  EXPECT_EQ(peek_request(R"({"op":"admit"})").deadline_ms, 0);
  // A bounded scan: absurd values cannot overflow into nonsense.
  const RequestPeek big =
      peek_request(R"({"op":"admit","deadline_ms":99999999999999999999})");
  EXPECT_GT(big.deadline_ms, 0);
  EXPECT_LT(big.deadline_ms, std::int64_t{1} << 41);
}

TEST(PeekRequest, KeysInsideValuesOrNestedObjectsNeverMatch) {
  // "deadline_ms" as a nested-object key must not arm the deadline drop:
  // a spurious match would make a worker discard a valid request as
  // deadline_expired, which the strict parse never gets to correct.
  EXPECT_EQ(
      peek_request(R"({"op":"admit","meta":{"deadline_ms":5}})").deadline_ms,
      0);
  // ...nor as a string VALUE, even one crafted to look like a key.
  EXPECT_EQ(peek_request(R"({"op":"admit","alg":"deadline_ms"})").deadline_ms,
            0);
  EXPECT_EQ(peek_request(R"({"note":"x \"deadline_ms\": 9","op":"admit"})")
                .deadline_ms,
            0);
  // "op" nested or quoted inside a value must not classify the line.
  EXPECT_FALSE(peek_request(R"({"meta":{"op":"admit"}})").budgeted);
  EXPECT_FALSE(peek_request(R"({"note":"\"op\":\"admit\""})").budgeted);
  // The real top-level keys still win with every decoy present at once.
  const RequestPeek peek = peek_request(
      R"({"note":"\"deadline_ms\": 7","meta":{"op":"simulate"},)"
      R"("op":"analyze","deadline_ms":31})");
  EXPECT_TRUE(peek.budgeted);
  EXPECT_EQ(peek.cls, BudgetClass::kAnalyze);
  EXPECT_EQ(peek.deadline_ms, 31);
}

TEST(PeekRequest, MatchesTheBuiltRequests) {
  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}});
  const RequestPeek peek =
      peek_request(make_simulate_request(2, tasks, {}, {}, 7, 1500));
  EXPECT_TRUE(peek.budgeted);
  EXPECT_EQ(peek.cls, BudgetClass::kSimulate);
  EXPECT_EQ(peek.deadline_ms, 1500);
}

// ------------------------------------------------------ reply builders --

TEST(OverloadReplies, RoundTripThroughParserAndClientHelper) {
  const std::string shed = overloaded_reply(250);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(shed, doc, error)) << error;
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->as_string(), "overloaded");
  EXPECT_EQ(doc.find("retry_after_ms")->as_int(), 250);
  EXPECT_EQ(Client::parse_retry_after_ms(shed), 250);

  const std::string expired = deadline_expired_reply(37);
  ASSERT_TRUE(json_parse(expired, doc, error)) << error;
  EXPECT_EQ(doc.find("error")->as_string(), "deadline_expired");
  EXPECT_EQ(doc.find("waited_ms")->as_int(), 37);
  // Not an overload shed: the retry helper must not back off for it.
  EXPECT_EQ(Client::parse_retry_after_ms(expired), 0);
  EXPECT_EQ(Client::parse_retry_after_ms(R"({"ok":true})"), 0);
}

// ------------------------------------------------------- live server  --

/// Runs a Server on a background thread for one test.
class LiveServer {
 public:
  explicit LiveServer(ServerConfig config) : server_(std::move(config)) {
    thread_ = std::thread([this] { server_.run(); });
  }
  ~LiveServer() {
    server_.request_stop();
    thread_.join();
  }
  Server& operator*() noexcept { return server_; }
  Server* operator->() noexcept { return &server_; }

 private:
  Server server_;
  std::thread thread_;
};

JsonValue parse_ok(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(json_parse(text, value, error)) << text << " -- " << error;
  return value;
}

/// A deliberately slow request (~250 ms on one worker): coprime periods
/// give a long hyperperiod, so the robustness bisection simulates out to
/// the horizon cap at every probe.
std::string slow_request() {
  const auto tasks = TaskSet::from_pairs({{12, 97},
                                          {12, 101},
                                          {12, 103},
                                          {13, 107},
                                          {13, 109},
                                          {14, 113},
                                          {15, 127},
                                          {16, 131},
                                          {17, 137},
                                          {17, 139},
                                          {18, 149},
                                          {18, 151}});
  return make_robustness_request(4, tasks, {}, {}, 8.0);
}

TEST(OverloadLive, TightSloShrinksBudgetUnderSustainedLoad) {
  ServerConfig config;
  config.port = 0;
  config.workers = 1;
  config.overload.interval_ms = 10;
  config.overload.slo_p99_us[kAdmitIdx] = 1;  // unattainable on purpose
  LiveServer server(config);
  Client client("127.0.0.1", server->port());
  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}, {2, 10}});
  const std::string admit = make_admit_request(2, tasks);

  // Keep completions flowing across many 10ms monitoring intervals; every
  // interval that completes work violates the 1us SLO, so the budget must
  // walk down to the floor.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  while (std::chrono::steady_clock::now() < until) {
    const JsonValue reply = parse_ok(client.request(admit));
    EXPECT_TRUE(reply.find("ok")->as_bool());
  }

  const RuntimeStats stats = server->runtime_stats();
  EXPECT_TRUE(stats.adaptive);
  EXPECT_GT(stats.controller_ticks, 5u);
  EXPECT_LT(stats.classes[kAdmitIdx].budget, config.overload.initial_budget);
  EXPECT_GE(stats.classes[kAdmitIdx].budget, config.overload.min_budget);

  // With the budget at the floor, one pipelined wave overflows the class
  // budget and the overflow is shed with the controller's hint attached.
  constexpr int kBurst = 32;
  for (int i = 0; i < kBurst; ++i) client.send_line(admit);
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const JsonValue reply = parse_ok(client.read_reply());
    if (reply.find("ok")->as_bool()) {
      ++ok;
    } else {
      ASSERT_EQ(reply.find("error")->as_string(), "overloaded");
      EXPECT_GE(reply.find("retry_after_ms")->as_int(), 1);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GT(shed, 0);
  EXPECT_GT(server->runtime_stats().classes[kAdmitIdx].shed, 0u);
}

TEST(OverloadLive, HeldOrderedRepliesCountTowardBackpressure) {
  // Regression: shed replies claim sequence slots at decode time, so on a
  // connection whose earlier slow requests are still in the pool they park
  // in the reorder buffer (`held`) rather than the flushable write buffer.
  // The write-backpressure gate must count those parked bytes -- gating on
  // unsent() alone let a client pin one slow request and then stream lines,
  // growing held at network ingest rate without ever tripping the cap.
  ServerConfig config;
  config.port = 0;
  config.workers = 1;
  config.batch_size = 1;
  config.max_in_flight = 3;           // the three pinned requests fill it
  config.max_write_buffer = 8 << 10;  // small cap so the gate trips fast
  LiveServer server(config);
  Client client("127.0.0.1", server->port(), /*timeout_ms=*/250);

  // Pin the single worker and the backstop with slow requests on THIS
  // connection: their replies own sequence slots 0..2, so every shed
  // reply behind them is parked, not flushed.
  for (int i = 0; i < 3; ++i) client.send_line(slow_request());
  while (server->runtime_stats().in_flight < 3) std::this_thread::yield();

  // Stream sheddable lines without reading a single reply.
  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}});
  const std::string admit = make_admit_request(2, tasks);
  constexpr int kOffered = 6000;
  for (int i = 0; i < kOffered; ++i) {
    try {
      client.send_line(admit);
    } catch (const TransportError&) {
      break;  // socket buffers filled: backpressure reached the sender
    }
  }

  // The burst lands in socket buffers faster than the loop decodes it;
  // wait for the shed counter to plateau (reads stopped) before judging.
  std::uint64_t prev_shed = 0;
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::uint64_t now = server->runtime_stats().requests_shed;
    if (now > 0 && now == prev_shed) break;
    prev_shed = now;
  }

  const RuntimeStats stats = server->runtime_stats();
  // The pinned requests must still be holding the sequence gap open for
  // the bound below to be meaningful (the send phase takes well under one
  // slow-request compute time).
  ASSERT_GT(stats.in_flight, 0u) << "pinned slow requests finished early";
  EXPECT_GT(stats.requests_shed, 0u);
  // Reads must stop once ~max_write_buffer bytes are parked: the server
  // sheds far fewer lines than offered.  Without held accounting it keeps
  // decoding and sheds nearly all of them.
  EXPECT_LT(stats.requests_shed, kOffered / 2);
}

TEST(OverloadLive, QueuedRequestPastItsDeadlineIsDropped) {
  ServerConfig config;
  config.port = 0;
  config.workers = 1;  // one slow request blocks the pool
  config.batch_size = 1;
  LiveServer server(config);
  // Generous receive timeouts: the pinned request runs ~250 ms natively
  // but several seconds under a sanitizer on a small machine, and the
  // queued reply only arrives once it finishes.
  Client saturator("127.0.0.1", server->port(), /*timeout_ms=*/30'000);
  Client client("127.0.0.1", server->port(), /*timeout_ms=*/30'000);

  saturator.send_line(slow_request());
  while (server->runtime_stats().batches_dispatched == 0) {
    std::this_thread::yield();
  }

  // Queued behind the slow request with a 1ms deadline: by the time the
  // worker frees up, the deadline has long passed and the server must
  // answer deadline_expired instead of running it.
  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}});
  const JsonValue reply =
      parse_ok(client.request(make_admit_request(2, tasks, {}, {}, -1, 1)));
  EXPECT_FALSE(reply.find("ok")->as_bool());
  EXPECT_EQ(reply.find("error")->as_string(), "deadline_expired");
  EXPECT_GE(reply.find("waited_ms")->as_int(), 1);

  const RuntimeStats stats = server->runtime_stats();
  EXPECT_EQ(stats.requests_expired, 1u);
  EXPECT_EQ(stats.classes[kAdmitIdx].expired, 1u);

  // The saturator's request still completes normally.
  EXPECT_TRUE(parse_ok(saturator.read_reply()).find("ok")->as_bool());
}

TEST(OverloadLive, RetryingClientRidesOutSaturation) {
  ServerConfig config;
  config.port = 0;
  config.workers = 1;
  config.batch_size = 1;
  config.max_in_flight = 1;  // backstop: anything behind the slow one sheds
  config.overload.interval_ms = 10;
  LiveServer server(config);
  Client saturator("127.0.0.1", server->port(), /*timeout_ms=*/30'000);
  Client client("127.0.0.1", server->port(), 30'000, /*seed=*/7);

  saturator.send_line(slow_request());
  while (server->runtime_stats().batches_dispatched == 0) {
    std::this_thread::yield();
  }

  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}});
  RetryPolicy policy;
  policy.max_attempts = 200;  // bounded by the slow request, not the policy
  policy.base_backoff_ms = 2;
  const RetryResult result =
      client.request_with_retry(make_admit_request(2, tasks), policy);

  // The first attempt hit the saturated server and was shed; the retries
  // (honoring retry_after_ms) eventually landed after the drain.
  EXPECT_GT(result.attempts, 1);
  EXPECT_FALSE(result.exhausted());
  EXPECT_GT(result.backoff_total_ms, 0);
  const JsonValue reply = parse_ok(result.reply);
  EXPECT_TRUE(reply.find("ok")->as_bool());
  EXPECT_GT(server->runtime_stats().requests_shed, 0u);

  EXPECT_TRUE(parse_ok(saturator.read_reply()).find("ok")->as_bool());
}

TEST(OverloadLive, StatsExposesBudgetsAndMetricsExportsThem) {
  ServerConfig config;
  config.port = 0;
  config.workers = 1;
  LiveServer server(config);
  Client client("127.0.0.1", server->port());

  const JsonValue stats = parse_ok(client.request(make_stats_request()));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  const JsonValue* overload = stats.find("overload");
  ASSERT_NE(overload, nullptr);
  EXPECT_TRUE(overload->find("adaptive")->as_bool());
  const JsonValue* classes = overload->find("classes");
  ASSERT_NE(classes, nullptr);
  for (const char* name : {"admit", "analyze", "robustness", "simulate"}) {
    const JsonValue* cls = classes->find(name);
    ASSERT_NE(cls, nullptr) << name;
    EXPECT_EQ(cls->find("budget")->as_int(),
              static_cast<std::int64_t>(config.overload.initial_budget));
    ASSERT_NE(cls->find("shed"), nullptr);
    ASSERT_NE(cls->find("expired"), nullptr);
    ASSERT_NE(cls->find("retry_after_ms"), nullptr);
  }

  const JsonValue metrics = parse_ok(client.request(make_metrics_request()));
  ASSERT_TRUE(metrics.find("ok")->as_bool());
  const std::string& text = metrics.find("text")->as_string();
  for (const char* needle :
       {"rmts_class_budget{class=\"admit\"}", "rmts_class_shed_total",
        "rmts_class_expired_total", "rmts_requests_expired_total",
        "rmts_overload_adaptive", "rmts_class_retry_after_ms"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace rmts::server
