// Unit tests for src/common: integer time helpers, checked arithmetic,
// the deterministic RNG, and the table emitter.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/checked_math.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace rmts {
namespace {

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 1000000), 1);
}

TEST(FloorDiv, Basics) {
  EXPECT_EQ(floor_div(11, 5), 2);
  EXPECT_EQ(floor_div(10, 5), 2);
}

TEST(CheckedMul, SmallValues) {
  EXPECT_EQ(checked_mul(6, 7), Time{42});
  EXPECT_EQ(checked_mul(0, kTimeInfinity), Time{0});
}

TEST(CheckedMul, OverflowDetected) {
  EXPECT_FALSE(checked_mul(kTimeInfinity, 2).has_value());
  EXPECT_FALSE(checked_mul(Time{1} << 40, Time{1} << 40).has_value());
}

TEST(CheckedAdd, OverflowDetected) {
  EXPECT_EQ(checked_add(1, 2), Time{3});
  EXPECT_FALSE(checked_add(kTimeInfinity, 1).has_value());
}

TEST(CheckedLcm, Basics) {
  EXPECT_EQ(checked_lcm(4, 6), Time{12});
  EXPECT_EQ(checked_lcm(7, 7), Time{7});
  EXPECT_EQ(checked_lcm(1, 9), Time{9});
}

TEST(Hyperperiod, SmallGrid) {
  const std::vector<Time> periods{1000, 1200, 1500, 2000};
  EXPECT_EQ(hyperperiod(periods), Time{6000});
}

TEST(Hyperperiod, OverflowReported) {
  // Pairwise-coprime large primes blow past int64.
  const std::vector<Time> periods{1000003, 1000033, 1000037, 1000039,
                                  1000081, 1000099, 1000117};
  EXPECT_FALSE(hyperperiod(periods).has_value());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  // fork(k) must not depend on how much the parent stream was used after
  // construction -- experiments rely on (seed, index) determinism.
  Rng parent1(7);
  Rng parent2(7);
  (void)parent2;  // parent1 and parent2 identical; fork before any use
  const Rng f1 = parent1.fork(3);
  const Rng f2 = parent2.fork(3);
  Rng a = f1;
  Rng b = f2;
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkedStreamsDecorrelated) {
  Rng parent(7);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 10);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, LogUniformRespectsBoundsAndSpreads) {
  Rng rng(11);
  int low_decade = 0;
  for (int i = 0; i < 5000; ++i) {
    const Time t = rng.log_uniform_time(1000, 1000000);
    ASSERT_GE(t, 1000);
    ASSERT_LE(t, 1000000);
    if (t < 10000) ++low_decade;
  }
  // Log-uniform: each decade gets ~1/3 of the mass (uniform would give 1%).
  EXPECT_NEAR(static_cast<double>(low_decade) / 5000.0, 1.0 / 3.0, 0.05);
}

TEST(Table, TextRenderingAligns) {
  Table table({"a", "long_header"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  std::ostringstream os;
  table.print_text(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, CsvRendering) {
  Table table({"x", "y"});
  table.add_row({"1", "2"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, ArityMismatchThrows) {
  Table table({"x", "y"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(0.5, 3), "0.500");
  EXPECT_EQ(Table::num(1.0 / 3.0, 2), "0.33");
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world 123"), "hello world 123");
  EXPECT_EQ(json_quote("x"), "\"x\"");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscape, EscapesNamedControlCharacters) {
  EXPECT_EQ(json_escape("a\nb\tc\rd\be\ff"), "a\\nb\\tc\\rd\\be\\ff");
}

TEST(JsonEscape, EscapesBareControlCharactersAsUnicode) {
  // The pre-fix escaper passed these through raw, producing invalid JSON
  // in bench reports for any label containing control bytes.
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape(std::string("\x1f", 1)), "\\u001f");
  EXPECT_EQ(json_escape(std::string{'a', '\0', 'b'}), "a\\u0000b");
}

TEST(JsonEscape, LeavesHighBytesAlone) {
  // UTF-8 multibyte sequences must pass through unmodified.
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

}  // namespace
}  // namespace rmts
