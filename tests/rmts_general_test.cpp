// RM-TS (Algorithms 3-4): pre-assignment mechanics, phase interplay,
// bound clamping, and equivalence with RM-TS/light on light workloads.
#include <gtest/gtest.h>

#include <memory>

#include "bounds/best_of.hpp"
#include "bounds/constant_bound.hpp"
#include "bounds/harmonic.hpp"
#include "bounds/ll_bound.hpp"
#include "common/rng.hpp"
#include "helpers.hpp"
#include "partition/rmts.hpp"
#include "partition/rmts_light.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

Rmts make_rmts() { return Rmts(std::make_shared<LiuLaylandBound>()); }

TEST(Rmts, NameAndCustomLabel) {
  EXPECT_EQ(make_rmts().name(), "RM-TS");
  const Rmts labelled(std::make_shared<HarmonicChainBound>(),
                      MaxSplitMethod::kSchedulingPoints, "RM-TS[HC]");
  EXPECT_EQ(labelled.name(), "RM-TS[HC]");
}

TEST(Rmts, GuaranteedBoundClampsAtCap) {
  // A 100% constant bound is clamped to 2 Theta/(1+Theta) (Section V);
  // a 50% bound passes through.
  const TaskSet tasks = TaskSet::from_pairs({{1, 10}, {1, 20}, {1, 40}});
  const Rmts generous(std::make_shared<ConstantBound>(1.0));
  EXPECT_DOUBLE_EQ(generous.guaranteed_bound(tasks), rmts_bound_cap(3));
  const Rmts modest(std::make_shared<ConstantBound>(0.5));
  EXPECT_DOUBLE_EQ(modest.guaranteed_bound(tasks), 0.5);
}

TEST(Rmts, NoHeavyTasksMatchesRmtsLightExactly) {
  // With no heavy task, phase 1 pre-assigns nothing and RM-TS degenerates
  // to RM-TS/light; the assignments must be bit-identical.
  Rng rng(11);
  WorkloadConfig config;
  config.tasks = 12;
  config.processors = 3;
  config.max_task_utilization = light_task_threshold(12);
  const Rmts rmts = make_rmts();
  const RmtsLight light;
  for (int trial = 0; trial < 40; ++trial) {
    config.normalized_utilization = 0.4 + 0.5 * rng.uniform();
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = rmts.partition(tasks, 3);
    const Assignment b = light.partition(tasks, 3);
    ASSERT_EQ(a.success, b.success);
    for (std::size_t q = 0; q < a.processors.size(); ++q) {
      EXPECT_EQ(a.processors[q].subtasks, b.processors[q].subtasks);
    }
  }
}

TEST(Rmts, PreAssignsQualifyingHeavyTask) {
  // One dominant heavy task with little lower-priority load: it satisfies
  // the pre-assign condition and must sit alone until phase 3 fills up.
  // Heavy tau_0 (U=0.8, highest priority), light low-priority tasks.
  const TaskSet tasks = TaskSet::from_pairs(
      {{800, 1000}, {200, 2000}, {200, 2000}, {200, 2000}});
  // suffix utilization after tau_0 = 0.3 <= (M_normal - 1) * lambda for
  // M = 2 and lambda ~ 0.75.
  const Assignment a = make_rmts().partition(tasks, 2);
  ASSERT_TRUE(a.success) << a.describe();
  testing::expect_valid_partition(tasks, a);
  // The heavy task must be unsplit (that is the point of pre-assignment).
  const auto chains = testing::chains_of(a);
  EXPECT_EQ(chains.at(0).size(), 1u);
}

TEST(Rmts, HeavyTaskFailingConditionIsSplitNormally) {
  // Heavy task with LOTS of lower-priority utilization behind it: the
  // pre-assign condition fails (suffix > (M-1)*lambda) and the heavy task
  // takes the normal splitting path.
  const TaskSet tasks = TaskSet::from_pairs({{500, 1000},
                                             {550, 1100},
                                             {560, 1120},
                                             {570, 1140},
                                             {580, 1160},
                                             {590, 1180}});
  // All tasks have U = 0.5 > light threshold (~0.42); total = 3.0 on M=4.
  const Assignment a = make_rmts().partition(tasks, 4);
  ASSERT_TRUE(a.success) << a.describe();
  testing::expect_valid_partition(tasks, a);
}

TEST(Rmts, NumberOfPreAssignedProcessorsBounded) {
  // Even with many heavy tasks, at most M processors are pre-assigned and
  // the algorithm never crashes; acceptance simply reflects feasibility.
  const TaskSet tasks = TaskSet::from_pairs({{500, 1000},
                                             {501, 1002},
                                             {502, 1004},
                                             {503, 1006},
                                             {504, 1008},
                                             {505, 1010}});
  const Assignment a = make_rmts().partition(tasks, 2);
  EXPECT_FALSE(a.success);  // U_M = 1.5, impossible
  EXPECT_EQ(a.processors.size(), 2u);
}

TEST(Rmts, SucceedsAboveSpaThresholdOnHeavySets) {
  // U_M = 0.9 with half-heavy tasks: far above Theta(N) (~0.70), yet the
  // exact-RTA admission still finds a partition for this concrete set.
  const TaskSet tasks = TaskSet::from_pairs(
      {{450, 1000}, {455, 1010}, {459, 1020}, {463, 1030},
       {467, 1040}, {472, 1050}, {476, 1060}, {481, 1070}});
  const Assignment a = make_rmts().partition(tasks, 4);
  ASSERT_TRUE(a.success) << a.describe();
  testing::expect_valid_partition(tasks, a);
}

TEST(Rmts, EmptyTaskSet) {
  EXPECT_TRUE(make_rmts().partition(TaskSet(), 3).success);
}

TEST(Rmts, RandomizedStructuralInvariantsWithHeavyTasks) {
  Rng rng(313);
  WorkloadConfig config;
  config.tasks = 16;
  config.processors = 4;
  config.max_task_utilization = 0.85;
  const Rmts rmts = make_rmts();
  int accepted = 0;
  for (int trial = 0; trial < 100; ++trial) {
    config.normalized_utilization = 0.5 + 0.4 * rng.uniform();
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = rmts.partition(tasks, config.processors);
    if (!a.success) continue;
    ++accepted;
    // Heavy pre-assigned tasks may end up with lower priority than later
    // bodies on their processor only if Lemma 11's premise fails; the
    // defensive implementation keeps deadlines sound either way, so check
    // everything except the body-top-priority lemma.
    testing::expect_valid_partition(tasks, a, /*check_rta=*/true,
                                    /*check_body_top_priority=*/false);
  }
  EXPECT_GT(accepted, 40);
}

TEST(Rmts, BodyTopPriorityHoldsOnNormalProcessors) {
  // Lemma 2 restricted to phase-2 processors: a body subtask hosted with
  // no pre-assigned task above it must be top priority.
  Rng rng(515);
  WorkloadConfig config;
  config.tasks = 12;
  config.processors = 3;
  config.max_task_utilization = light_task_threshold(12);
  const Rmts rmts = make_rmts();
  for (int trial = 0; trial < 50; ++trial) {
    config.normalized_utilization = 0.6 + 0.3 * rng.uniform();
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = rmts.partition(tasks, config.processors);
    if (!a.success) continue;
    // Light sets: no pre-assignment happens, so the lemma applies fully.
    testing::expect_valid_partition(tasks, a);
  }
}


TEST(Rmts, Phase3FillsLowestPriorityPreAssignedProcessorFirst) {
  // Two heavy tasks pre-assign (the second because nothing has lower
  // priority); the remaining light tasks must fill the LARGEST-index
  // pre-assigned processor (hosting the lowest-priority pre-assigned task)
  // first -- Algorithm 3 line 19.  A worst-fit or lowest-index pick would
  // put them on P0 instead (both processors hold utilization 0.5).
  const TaskSet tasks = TaskSet::from_pairs({
      {500, 1000},   // h0: heavy, highest priority -> pre-assigned to P0
      {100, 2000},   // l1
      {100, 2020},   // l2
      {2000, 4000},  // h1: heavy, lowest priority -> pre-assigned to P1
  });
  const Assignment a = make_rmts().partition(tasks, 2);
  ASSERT_TRUE(a.success) << a.describe();
  EXPECT_EQ(a.processors[0].subtasks.size(), 1u);  // h0 alone
  EXPECT_EQ(a.processors[1].subtasks.size(), 3u);  // h1 + both lights
  testing::expect_valid_partition(tasks, a, /*check_rta=*/true,
                                  /*check_body_top_priority=*/false);
}

TEST(Rmts, BestOfBoundsRaisesTheGuarantee) {
  const TaskSet harmonic = TaskSet::from_pairs(
      {{100, 1000}, {100, 2000}, {100, 4000}, {100, 8000}});
  const Rmts with_ll(std::make_shared<LiuLaylandBound>());
  const Rmts with_best(
      std::make_shared<BestOfBounds>(BestOfBounds::all_known()));
  EXPECT_NEAR(with_ll.guaranteed_bound(harmonic), liu_layland_theta(4), 1e-12);
  // HC gives 1.0, clamped at the Section V cap.
  EXPECT_NEAR(with_best.guaranteed_bound(harmonic), rmts_bound_cap(4), 1e-12);
}

TEST(Rmts, DeterministicAcrossRepeatedRuns) {
  Rng rng(717);
  WorkloadConfig config;
  config.tasks = 14;
  config.processors = 4;
  config.max_task_utilization = 0.7;
  config.normalized_utilization = 0.8;
  const Rmts algorithm = make_rmts();
  for (int trial = 0; trial < 10; ++trial) {
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment first = algorithm.partition(tasks, 4);
    const Assignment second = algorithm.partition(tasks, 4);
    ASSERT_EQ(first.success, second.success);
    for (std::size_t q = 0; q < first.processors.size(); ++q) {
      EXPECT_EQ(first.processors[q].subtasks, second.processors[q].subtasks);
    }
  }
}


TEST(Rmts, VeryHeavyTaskGetsDedicatedProcessor) {
  // Footnote 5: U = 0.95 exceeds every Lambda, so the task gets a sealed
  // processor of its own; the rest partitions normally.
  const TaskSet tasks = TaskSet::from_pairs(
      {{950, 1000}, {300, 2000}, {300, 2000}, {300, 2000}});
  const Assignment a = make_rmts().partition(tasks, 2);
  ASSERT_TRUE(a.success) << a.describe();
  const auto chains = testing::chains_of(a);
  EXPECT_EQ(chains.at(0).size(), 1u);  // unsplit
  // It sits alone.
  const std::size_t host = chains.at(0).front().processor;
  EXPECT_EQ(a.processors[host].subtasks.size(), 1u);
  testing::expect_valid_partition(tasks, a);
}

TEST(Rmts, MoreOverBoundTasksThanProcessorsFails) {
  const TaskSet tasks = TaskSet::from_pairs(
      {{950, 1000}, {951, 1001}, {952, 1002}});
  const Assignment a = make_rmts().partition(tasks, 2);
  EXPECT_FALSE(a.success);
  EXPECT_EQ(a.unassigned.size(), 1u);  // the third giant
}

TEST(Rmts, DedicatedProcessorIsSealed) {
  // Even a tiny extra task must not land on the dedicated processor;
  // with only one processor available for the rest, the tiny tasks share
  // the second one.
  const TaskSet tasks =
      TaskSet::from_pairs({{950, 1000}, {10, 2000}, {10, 2020}, {10, 2040}});
  const Assignment a = make_rmts().partition(tasks, 2);
  ASSERT_TRUE(a.success);
  std::size_t giant_host = 99;
  for (std::size_t q = 0; q < 2; ++q) {
    for (const Subtask& s : a.processors[q].subtasks) {
      if (s.task_id == 0) giant_host = q;
    }
  }
  ASSERT_NE(giant_host, 99u);
  EXPECT_EQ(a.processors[giant_host].subtasks.size(), 1u);
  EXPECT_EQ(a.processors[1 - giant_host].subtasks.size(), 3u);
}

}  // namespace
}  // namespace rmts
