// Differential test for the indexed simulator core: simulate() must return
// bit-identical SimResults -- every counter, every miss, the full trace --
// to the retained naive reference core (sim/simulator_reference.hpp) on
// the same input, across dispatch policies, fault models and containment
// policies, and regardless of whether a SimWorkspace is reused.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "partition/edf_split.hpp"
#include "partition/rmts_light.hpp"
#include "sim/simulator.hpp"
#include "sim/simulator_reference.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

Assignment uniprocessor(const TaskSet& tasks) {
  Assignment a;
  a.success = true;
  a.processors.resize(1);
  for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
    a.processors[0].subtasks.push_back(whole_subtask(tasks[rank], rank));
  }
  return a;
}

/// Runs both cores (the indexed one twice: fresh-workspace overload and the
/// shared `workspace`) and requires full bitwise equality.
void expect_identical(const TaskSet& tasks, const Assignment& assignment,
                      const SimConfig& config, SimWorkspace& workspace,
                      const std::string& what) {
  const SimResult reference = simulate_reference(tasks, assignment, config);
  const SimResult fresh = simulate(tasks, assignment, config);
  const SimResult& reused = simulate(tasks, assignment, config, workspace);
  EXPECT_TRUE(reference == fresh)
      << what << ": indexed core (fresh workspace) diverged from reference"
      << " (events " << reference.events << " vs " << fresh.events
      << ", trace " << reference.trace.size() << " vs " << fresh.trace.size()
      << ", misses " << reference.misses.size() << " vs "
      << fresh.misses.size() << ", preemptions " << reference.preemptions
      << " vs " << fresh.preemptions << ")";
  EXPECT_TRUE(reference == reused)
      << what << ": indexed core (reused workspace) diverged from reference";
}

/// The fault/containment matrix exercised for every (tasks, assignment,
/// policy) triple.  All configs record the trace so the comparison covers
/// the full event stream, not just the counters.
std::vector<std::pair<std::string, SimConfig>> fault_matrix(
    const TaskSet& tasks, std::size_t processors, const SimConfig& base,
    Rng& sample) {
  std::vector<std::pair<std::string, SimConfig>> matrix;
  const auto add = [&](std::string name, const SimConfig& config) {
    matrix.emplace_back(std::move(name), config);
    matrix.back().second.record_trace = true;
  };
  add("nominal", base);

  SimConfig overrun = base;
  overrun.stop_at_first_miss = false;
  overrun.faults.seed = static_cast<std::uint64_t>(sample.uniform_int(1, 1 << 30));
  overrun.faults.overrun_factor = sample.uniform(1.0, 3.0);
  overrun.faults.overrun_ticks = sample.uniform_int(0, 3);
  overrun.faults.overrun_probability = sample.uniform(0.2, 1.0);
  add("overrun-uncontained", overrun);

  SimConfig enforced = overrun;
  enforced.faults.containment = ContainmentPolicy::kBudgetEnforcement;
  add("overrun-budget-enforcement", enforced);

  SimConfig demoted = overrun;
  demoted.faults.containment = ContainmentPolicy::kPriorityDemotion;
  add("overrun-priority-demotion", demoted);

  // Jitter stays below every period: delays of a period or more would
  // reorder releases, which the run-time model does not admit.
  Time min_period = tasks.empty() ? 1 : tasks[0].period;
  for (std::size_t rank = 1; rank < tasks.size(); ++rank) {
    min_period = std::min(min_period, tasks[rank].period);
  }
  SimConfig jittery = base;
  jittery.stop_at_first_miss = false;
  jittery.faults.seed = static_cast<std::uint64_t>(sample.uniform_int(1, 1 << 30));
  jittery.faults.release_jitter = sample.uniform_int(1, std::max<Time>(1, min_period / 2));
  add("jitter", jittery);

  SimConfig failing = base;
  failing.stop_at_first_miss = false;
  failing.faults.failed_processor = static_cast<std::size_t>(
      sample.uniform_int(0, static_cast<Time>(processors) - 1));
  failing.faults.failure_time = sample.uniform_int(0, base.horizon);
  add("fail-stop", failing);

  SimConfig combined = demoted;
  combined.faults.release_jitter = jittery.faults.release_jitter;
  combined.faults.failed_processor = failing.faults.failed_processor;
  combined.faults.failure_time = failing.faults.failure_time;
  add("overrun+jitter+failure, demotion", combined);

  SimConfig combined_stop = combined;
  combined_stop.faults.containment = ContainmentPolicy::kBudgetEnforcement;
  combined_stop.stop_at_first_miss = true;
  add("overrun+jitter+failure, enforcement, stop-at-first-miss", combined_stop);
  return matrix;
}

void run_matrix(const TaskSet& tasks, const Assignment& assignment,
                DispatchPolicy policy, SimWorkspace& workspace, Rng& sample,
                const std::string& what) {
  SimConfig base;
  base.horizon = recommended_horizon(tasks, 200'000);
  base.policy = policy;
  for (const auto& [name, config] :
       fault_matrix(tasks, assignment.processors.size(), base, sample)) {
    expect_identical(tasks, assignment, config, workspace, what + " / " + name);
  }
}

// Randomized task sets x {FP, EDF} x the fault matrix, with ONE workspace
// shared across every run -- sizes, policies and fault models all change
// under it, so stale-state bugs in the reuse path cannot hide.
TEST(SimDifferential, RandomizedTaskSetsAcrossPoliciesAndFaults) {
  SimWorkspace workspace;
  const RmtsLight fp_partitioner;
  const EdfSplit edf_partitioner;
  const Rng root(20260806);
  std::size_t covered = 0;
  for (std::uint64_t attempt = 0; covered < 24 && attempt < 200; ++attempt) {
    Rng sample = root.fork(attempt);
    WorkloadConfig config;
    config.processors = static_cast<std::size_t>(sample.uniform_int(1, 4));
    config.tasks =
        config.processors * static_cast<std::size_t>(sample.uniform_int(2, 5));
    config.period_model = PeriodModel::kGrid;
    config.period_grid = small_hyperperiod_grid();
    config.max_task_utilization = sample.uniform(0.3, 0.95);
    config.normalized_utilization = sample.uniform(0.3, 0.9);
    if (config.normalized_utilization >
        0.95 * config.max_task_utilization * static_cast<double>(config.tasks) /
            static_cast<double>(config.processors)) {
      continue;  // infeasible UUniFast target; redraw
    }
    const TaskSet tasks = generate(sample, config);
    const std::string stem = "attempt " + std::to_string(attempt);

    const Assignment fp = fp_partitioner.partition(tasks, config.processors);
    if (fp.success) {
      run_matrix(tasks, fp, DispatchPolicy::kFixedPriority, workspace, sample,
                 stem + " FP");
      ++covered;
    }
    const Assignment edf = edf_partitioner.partition(tasks, config.processors);
    if (edf.success) {
      run_matrix(tasks, edf, DispatchPolicy::kEarliestDeadlineFirst, workspace,
                 sample, stem + " EDF");
    }
  }
  EXPECT_GE(covered, 24u) << "randomized sweep generated too few partitions";
}

// High utilization forces RmtsLight to split tasks across processors, so
// the cross-processor chain machinery (migrations, window activations,
// orphaned pieces after a failure) is differentially covered.
TEST(SimDifferential, SplitChainsUnderHighUtilization) {
  SimWorkspace workspace;
  const RmtsLight partitioner;
  const Rng root(7);
  std::size_t with_splits = 0;
  for (std::uint64_t attempt = 0; with_splits < 4 && attempt < 100; ++attempt) {
    Rng sample = root.fork(attempt);
    WorkloadConfig config;
    config.processors = 3;
    config.tasks = 9;
    config.period_model = PeriodModel::kGrid;
    config.period_grid = small_hyperperiod_grid();
    config.max_task_utilization = 0.9;
    config.normalized_utilization = sample.uniform(0.8, 0.92);
    const TaskSet tasks = generate(sample, config);
    const Assignment a = partitioner.partition(tasks, config.processors);
    if (!a.success || a.split_task_count() == 0) continue;
    ++with_splits;
    run_matrix(tasks, a, DispatchPolicy::kFixedPriority, workspace, sample,
               "split attempt " + std::to_string(attempt));
  }
  EXPECT_GE(with_splits, 4u) << "no split assignments generated";
}

// Overloaded uniprocessor: both the stop-at-first-miss early exit and the
// keep-counting abandon path (active job at its next release) diverge
// fastest if the cores disagree, so pin them directly.
TEST(SimDifferential, OverloadMissPathsMatch) {
  const TaskSet tasks = TaskSet::from_pairs({{60, 100}, {50, 120}});
  const Assignment a = uniprocessor(tasks);
  SimWorkspace workspace;
  for (const DispatchPolicy policy : {DispatchPolicy::kFixedPriority,
                                      DispatchPolicy::kEarliestDeadlineFirst}) {
    for (const bool stop : {true, false}) {
      SimConfig config;
      config.horizon = 50'000;
      config.policy = policy;
      config.stop_at_first_miss = stop;
      config.record_trace = true;
      expect_identical(tasks, a, config, workspace,
                       std::string("overload policy=") +
                           (policy == DispatchPolicy::kFixedPriority ? "FP" : "EDF") +
                           " stop=" + (stop ? "1" : "0"));
    }
  }
}

// Deadline exactly on the horizon boundary and an event landing exactly on
// the failure instant: the reference processes horizon-boundary events and
// failure-before-completion ordering in a specific way; the indexed core
// must match tick for tick.
TEST(SimDifferential, BoundaryInstantsMatch) {
  const TaskSet tasks = TaskSet::from_pairs({{25, 50}, {30, 100}});
  const Assignment a = uniprocessor(tasks);
  SimWorkspace workspace;
  for (const Time horizon : {Time{50}, Time{100}, Time{125}}) {
    SimConfig config;
    config.horizon = horizon;
    config.record_trace = true;
    expect_identical(tasks, a, config, workspace,
                     "horizon=" + std::to_string(horizon));
  }
  // Failure at t=0 and at a completion instant.
  for (const Time failure_time : {Time{0}, Time{25}, Time{55}}) {
    SimConfig config;
    config.horizon = 500;
    config.stop_at_first_miss = false;
    config.record_trace = true;
    config.faults.failed_processor = 0;
    config.faults.failure_time = failure_time;
    expect_identical(tasks, a, config, workspace,
                     "failure@" + std::to_string(failure_time));
  }
}

// simulate_batch must agree item-for-item with the serial cores for any
// thread count (determinism-under-parallelism contract).
TEST(SimDifferential, BatchMatchesSerialForAnyThreadCount) {
  const Rng root(99);
  std::vector<TaskSet> sets;
  std::vector<Assignment> assignments;
  std::vector<SimJob> jobs;
  const RmtsLight partitioner;
  for (std::uint64_t attempt = 0; sets.size() < 6 && attempt < 60; ++attempt) {
    Rng sample = root.fork(attempt);
    WorkloadConfig config;
    config.processors = 2;
    config.tasks = 6;
    config.period_model = PeriodModel::kGrid;
    config.period_grid = small_hyperperiod_grid();
    config.max_task_utilization = 0.8;
    config.normalized_utilization = 0.6;
    TaskSet tasks = generate(sample, config);
    Assignment a = partitioner.partition(tasks, config.processors);
    if (!a.success) continue;
    sets.push_back(std::move(tasks));
    assignments.push_back(std::move(a));
  }
  ASSERT_GE(sets.size(), 6u);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    SimConfig config;
    config.horizon = recommended_horizon(sets[i], 200'000);
    config.record_trace = true;
    config.faults.seed = 17 + i;
    config.faults.overrun_factor = 1.5;
    config.faults.overrun_probability = 0.5;
    config.faults.containment = ContainmentPolicy::kPriorityDemotion;
    config.stop_at_first_miss = false;
    jobs.push_back(SimJob{&sets[i], &assignments[i], config});
  }
  std::vector<SimResult> serial;
  serial.reserve(jobs.size());
  for (const SimJob& job : jobs) {
    serial.push_back(simulate_reference(*job.tasks, *job.assignment, job.config));
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const std::vector<SimResult> batched = simulate_batch(jobs, threads);
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(batched[i] == serial[i])
          << "batch item " << i << " with " << threads
          << " threads diverged from the reference core";
    }
  }
}

}  // namespace
}  // namespace rmts
