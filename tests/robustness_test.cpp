// Robustness margins (analysis/robustness.hpp): simulated vs analytic
// fault tolerance, and the soundness cross-check of sensitivity.hpp.
#include <gtest/gtest.h>

#include "analysis/robustness.hpp"
#include "analysis/sensitivity.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "partition/rmts_light.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

Assignment uniprocessor(const TaskSet& tasks) {
  Assignment a;
  a.success = true;
  a.processors.resize(1);
  for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
    a.processors[0].subtasks.push_back(whole_subtask(tasks[rank], rank));
  }
  return a;
}

TEST(AssignmentTolerates, MatchesHandComputedSlack) {
  // Single task C = 30, T = 100: tolerates factor f iff round(30 f) <= 100
  // and jitter J iff 30 <= 100 - J.
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}});
  const Assignment a = uniprocessor(tasks);
  EXPECT_TRUE(assignment_tolerates(tasks, a, 1.0, 0));
  EXPECT_TRUE(assignment_tolerates(tasks, a, 3.3, 0));
  EXPECT_FALSE(assignment_tolerates(tasks, a, 3.4, 0));
  EXPECT_TRUE(assignment_tolerates(tasks, a, 1.0, 70));
  EXPECT_FALSE(assignment_tolerates(tasks, a, 1.0, 71));
}

TEST(AssignmentTolerates, ValidatesArguments) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}});
  const Assignment a = uniprocessor(tasks);
  Assignment failed;
  failed.success = false;
  EXPECT_THROW((void)assignment_tolerates(tasks, failed, 1.0, 0),
               InvalidConfigError);
  EXPECT_THROW((void)assignment_tolerates(tasks, a, 0.0, 0),
               InvalidConfigError);
  EXPECT_THROW((void)assignment_tolerates(tasks, a, 1.0, -1),
               InvalidConfigError);
}

TEST(AnalyzeRobustness, KnownMarginsOnSlackSet) {
  // C = 30 + C = 20 on one processor, T = 100 each: full-utilization
  // analysis -- factor margin 2.0 (round(f*50) <= 100), jitter margin 50.
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}, {20, 100}});
  const Assignment a = uniprocessor(tasks);
  RobustnessConfig config;
  config.horizon_cap = 100'000;
  const RobustnessReport report = analyze_robustness(tasks, a, config);
  EXPECT_TRUE(report.analytic_supported);
  EXPECT_NEAR(report.analytic_overrun_margin, 2.0, 0.02);
  EXPECT_EQ(report.analytic_jitter_margin, 50);
  // The synchronous simulation sees the same critical instant here.
  EXPECT_NEAR(report.simulated_overrun_margin, 2.0, 0.02);
  EXPECT_GE(report.simulated_jitter_margin, 50);
  // Soundness: analysis never promises more than the simulation delivers.
  EXPECT_LE(report.analytic_overrun_margin,
            report.simulated_overrun_margin + 1e-9);
  EXPECT_LE(report.analytic_jitter_margin, report.simulated_jitter_margin);
}

TEST(AnalyzeRobustness, UnschedulableNominalReportsZeroMargins) {
  const TaskSet tasks = TaskSet::from_pairs({{60, 100}, {50, 100}});
  const Assignment a = uniprocessor(tasks);
  RobustnessConfig config;
  config.horizon_cap = 10'000;
  const RobustnessReport report = analyze_robustness(tasks, a, config);
  EXPECT_DOUBLE_EQ(report.simulated_overrun_margin, 0.0);
  EXPECT_EQ(report.simulated_jitter_margin, 0);
  EXPECT_DOUBLE_EQ(report.analytic_overrun_margin, 0.0);
  EXPECT_EQ(report.analytic_jitter_margin, 0);
}

TEST(AnalyzeRobustness, EdfPolicyHasNoAnalyticMargins) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}});
  const Assignment a = uniprocessor(tasks);
  RobustnessConfig config;
  config.horizon_cap = 10'000;
  config.policy = DispatchPolicy::kEarliestDeadlineFirst;
  const RobustnessReport report = analyze_robustness(tasks, a, config);
  EXPECT_FALSE(report.analytic_supported);
  EXPECT_DOUBLE_EQ(report.analytic_overrun_margin, 0.0);
  EXPECT_GT(report.simulated_overrun_margin, 1.0);
}

TEST(AnalyzeRobustness, ValidatesConfig) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}});
  const Assignment a = uniprocessor(tasks);
  const auto expect_rejected = [&](auto&& mutate) {
    RobustnessConfig bad;
    mutate(bad);
    EXPECT_THROW((void)analyze_robustness(tasks, a, bad), InvalidConfigError);
  };
  expect_rejected([](RobustnessConfig& c) { c.horizon_cap = 0; });
  expect_rejected([](RobustnessConfig& c) { c.max_overrun_factor = 0.9; });
  expect_rejected([](RobustnessConfig& c) { c.factor_tol = 0.0; });
  expect_rejected([](RobustnessConfig& c) { c.max_release_jitter = -1; });
  Assignment failed;
  failed.success = false;
  EXPECT_THROW((void)analyze_robustness(tasks, failed, RobustnessConfig{}),
               InvalidConfigError);
}

// The tentpole soundness sweep: across >= 100 generated task sets, on every
// accepted RM-TS/light partition the analytic overrun AND jitter margins
// never exceed the simulated ones; a direct simulation probe *at* the
// analytic margin is clean.
TEST(AnalyzeRobustness, AnalyticNeverExceedsSimulatedOnGeneratedSets) {
  const RmtsLight algorithm;
  Rng rng(42);
  WorkloadConfig workload;
  workload.tasks = 6;
  workload.processors = 2;
  workload.normalized_utilization = 0.6;
  workload.period_model = PeriodModel::kGrid;
  workload.period_grid = small_hyperperiod_grid();
  RobustnessConfig config;
  config.horizon_cap = 200'000;
  config.max_overrun_factor = 3.0;
  int accepted = 0;
  for (int i = 0; i < 140 && accepted < 110; ++i) {
    const TaskSet tasks = generate(rng, workload);
    const Assignment a = algorithm.partition(tasks, workload.processors);
    if (!a.success) continue;
    ++accepted;
    config.fault_seed = static_cast<std::uint64_t>(i) + 1;
    const RobustnessReport report = analyze_robustness(tasks, a, config);
    // Nominal accepted partitions simulate clean, so margins exist.
    ASSERT_GE(report.simulated_overrun_margin, 1.0) << tasks.describe();
    EXPECT_LE(report.analytic_overrun_margin,
              report.simulated_overrun_margin + 1e-9)
        << tasks.describe();
    EXPECT_LE(report.analytic_jitter_margin, report.simulated_jitter_margin)
        << tasks.describe();

    // Direct probe: simulate exactly at the analytic margins.
    SimConfig probe;
    probe.horizon = recommended_horizon(tasks, config.horizon_cap);
    probe.faults.seed = config.fault_seed;
    probe.faults.overrun_factor = report.analytic_overrun_margin;
    EXPECT_TRUE(simulate(tasks, a, probe).schedulable) << tasks.describe();
    probe.faults.overrun_factor = 1.0;
    probe.faults.release_jitter = report.analytic_jitter_margin;
    EXPECT_TRUE(simulate(tasks, a, probe).schedulable) << tasks.describe();
  }
  EXPECT_GE(accepted, 100);
}

TEST(MarginSoundness, SensitivityMarginsHoldUnderSimulation) {
  const RmtsLight algorithm;
  Rng rng(7);
  WorkloadConfig workload;
  workload.tasks = 6;
  workload.processors = 2;
  workload.normalized_utilization = 0.55;
  workload.period_model = PeriodModel::kGrid;
  workload.period_grid = small_hyperperiod_grid();
  RobustnessConfig config;
  config.horizon_cap = 200'000;
  int checked = 0;
  for (int i = 0; i < 20 && checked < 8; ++i) {
    const TaskSet tasks = generate(rng, workload);
    if (!algorithm.accepts(tasks, workload.processors)) continue;
    ++checked;
    const MarginSoundness result = check_margin_soundness(
        algorithm, tasks, workload.processors, config);
    EXPECT_GE(result.critical_scaling_factor, 0.99) << tasks.describe();
    EXPECT_TRUE(result.scaling_margin_sound) << tasks.describe();
    EXPECT_TRUE(result.headroom_sound) << tasks.describe();
  }
  EXPECT_GE(checked, 5);
}

}  // namespace
}  // namespace rmts
