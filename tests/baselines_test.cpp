// Strict-partitioning and global baselines.
#include <gtest/gtest.h>

#include "bounds/bound.hpp"
#include "common/rng.hpp"
#include "helpers.hpp"
#include "partition/baselines.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

TEST(PartitionedRm, NameEncodesConfiguration) {
  EXPECT_EQ(PartitionedRm(FitPolicy::kFirstFit, TaskOrder::kDecreasingUtilization,
                          Admission::kExactRta)
                .name(),
            "P-RM-FFD/rta");
  EXPECT_EQ(PartitionedRm(FitPolicy::kWorstFit, TaskOrder::kRateMonotonic,
                          Admission::kLiuLayland)
                .name(),
            "P-RM-WFrm/ll");
}

TEST(PartitionedRm, NeverSplits) {
  Rng rng(1);
  WorkloadConfig config;
  config.tasks = 10;
  config.processors = 3;
  config.normalized_utilization = 0.6;
  Rng sample = rng.fork(0);
  const TaskSet tasks = generate(sample, config);
  const PartitionedRm ff(FitPolicy::kFirstFit, TaskOrder::kDecreasingUtilization,
                         Admission::kExactRta);
  const Assignment a = ff.partition(tasks, 3);
  EXPECT_EQ(a.split_task_count(), 0u);
}

TEST(PartitionedRm, ExactRtaAcceptsHarmonicFullProcessors) {
  // Two processors, each packed to exactly 100% with harmonic tasks:
  // only exact admission accepts this.
  const TaskSet tasks = TaskSet::from_pairs(
      {{500, 1000}, {500, 1000}, {1000, 2000}, {1000, 2000}});
  const PartitionedRm rta(FitPolicy::kFirstFit, TaskOrder::kDecreasingUtilization,
                          Admission::kExactRta);
  const PartitionedRm ll(FitPolicy::kFirstFit, TaskOrder::kDecreasingUtilization,
                         Admission::kLiuLayland);
  EXPECT_TRUE(rta.accepts(tasks, 2));
  EXPECT_FALSE(ll.accepts(tasks, 2));
}

TEST(PartitionedRm, HyperbolicBetweenLlAndRta) {
  // (0.5+1)(0.343+1) = 2.015 > 2: hyperbolic rejects co-location, the
  // utilization 0.843 > Theta(2) = 0.828 means LL rejects too, while exact
  // RTA accepts -- (500,1000) & (350,1020): R2 = 350 + 500 = 850 <= 1020.
  const TaskSet tasks = TaskSet::from_pairs({{500, 1000}, {350, 1020}});
  const PartitionedRm rta(FitPolicy::kFirstFit, TaskOrder::kRateMonotonic,
                          Admission::kExactRta);
  const PartitionedRm hb(FitPolicy::kFirstFit, TaskOrder::kRateMonotonic,
                         Admission::kHyperbolic);
  const PartitionedRm ll(FitPolicy::kFirstFit, TaskOrder::kRateMonotonic,
                         Admission::kLiuLayland);
  EXPECT_TRUE(rta.accepts(tasks, 1));
  EXPECT_FALSE(hb.accepts(tasks, 1));
  EXPECT_FALSE(ll.accepts(tasks, 1));
}

TEST(PartitionedRm, HyperbolicAcceptsWhatLlRejects) {
  // U = {0.5, 0.33}: sum 0.83 > Theta(2) = 0.828, but
  // (1.5)(1.33) = 1.995 <= 2.
  const TaskSet tasks = TaskSet::from_pairs({{500, 1000}, {330, 1000}});
  const PartitionedRm hb(FitPolicy::kFirstFit, TaskOrder::kRateMonotonic,
                         Admission::kHyperbolic);
  const PartitionedRm ll(FitPolicy::kFirstFit, TaskOrder::kRateMonotonic,
                         Admission::kLiuLayland);
  EXPECT_TRUE(hb.accepts(tasks, 1));
  EXPECT_FALSE(ll.accepts(tasks, 1));
}

TEST(PartitionedRm, BestFitPacksTightestBin) {
  const TaskSet tasks = TaskSet::from_pairs({{500, 1000}, {200, 1000}, {300, 1000}});
  const PartitionedRm bf(FitPolicy::kBestFit, TaskOrder::kDecreasingUtilization,
                         Admission::kExactRta);
  const Assignment a = bf.partition(tasks, 2);
  ASSERT_TRUE(a.success);
  // Best-fit keeps stacking the fullest admissible bin: with equal periods
  // all three tasks RTA-fit on one processor (total exactly 1.0).
  EXPECT_EQ(a.processors[0].subtasks.size(), 3u);
  EXPECT_TRUE(a.processors[1].subtasks.empty());
}

TEST(PartitionedRm, WorstFitBalances) {
  const TaskSet tasks = TaskSet::from_pairs({{500, 1000}, {200, 1000}, {300, 1000}});
  const PartitionedRm wf(FitPolicy::kWorstFit, TaskOrder::kDecreasingUtilization,
                         Admission::kExactRta);
  const Assignment a = wf.partition(tasks, 2);
  ASSERT_TRUE(a.success);
  EXPECT_EQ(a.processors[0].subtasks.size(), 1u);  // 0.5 alone
  EXPECT_EQ(a.processors[1].subtasks.size(), 2u);  // 0.3 + 0.2
}

TEST(PartitionedRm, FailureKeepsGoingAndListsEveryMisfit) {
  // Strict partitioning reports *all* unplaceable tasks, not just the first.
  const TaskSet tasks = TaskSet::from_pairs(
      {{600, 1000}, {600, 1000}, {600, 1000}, {600, 1000}});
  const PartitionedRm ff(FitPolicy::kFirstFit, TaskOrder::kDecreasingUtilization,
                         Admission::kExactRta);
  const Assignment a = ff.partition(tasks, 2);
  EXPECT_FALSE(a.success);
  EXPECT_EQ(a.unassigned.size(), 2u);
}

TEST(PartitionedRm, AcceptedPartitionsPassInvariants) {
  Rng rng(2);
  WorkloadConfig config;
  config.tasks = 12;
  config.processors = 4;
  config.max_task_utilization = 0.6;
  const PartitionedRm ff(FitPolicy::kFirstFit, TaskOrder::kDecreasingUtilization,
                         Admission::kExactRta);
  int accepted = 0;
  for (int trial = 0; trial < 60; ++trial) {
    config.normalized_utilization = 0.3 + 0.4 * rng.uniform();
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = ff.partition(tasks, 4);
    if (!a.success) continue;
    ++accepted;
    testing::expect_valid_partition(tasks, a);
  }
  EXPECT_GT(accepted, 20);
}

TEST(PartitionedEdf, AcceptsPerfectPacking) {
  const TaskSet tasks = TaskSet::from_pairs(
      {{500, 1000}, {500, 1000}, {700, 1000}, {300, 1000}});
  EXPECT_TRUE(PartitionedEdf().accepts(tasks, 2));
  EXPECT_EQ(PartitionedEdf().name(), "P-EDF-FFD");
}

TEST(PartitionedEdf, RejectsWhenBinPackingImpossible) {
  // Three tasks of 0.6 cannot be packed into two unit bins.
  const TaskSet tasks = TaskSet::from_pairs({{600, 1000}, {600, 1000}, {600, 1000}});
  EXPECT_FALSE(PartitionedEdf().accepts(tasks, 2));
}

TEST(GlobalRmUs, UtilizationThreshold) {
  const GlobalRmUs test;
  // M = 4: bound = 16/10 = 1.6 total utilization.
  const TaskSet fits = TaskSet::from_pairs(
      {{400, 1000}, {400, 1000}, {400, 1000}, {390, 1000}});  // U = 1.59
  const TaskSet exceeds = TaskSet::from_pairs(
      {{500, 1000}, {500, 1000}, {400, 1000}, {210, 1000}});  // U = 1.61
  EXPECT_TRUE(test.accepts(fits, 4));
  EXPECT_FALSE(test.accepts(exceeds, 4));
}

TEST(GlobalEdfGfb, DependsOnMaxUtilization) {
  const GlobalEdfGfb test;
  // M = 2: bound = 2 - u_max.  u_max = 0.5 -> accepts U <= 1.5.
  const TaskSet light = TaskSet::from_pairs(
      {{500, 1000}, {500, 1000}, {490, 1000}});  // U = 1.49, u_max = 0.5
  EXPECT_TRUE(test.accepts(light, 2));
  const TaskSet heavy = TaskSet::from_pairs(
      {{900, 1000}, {300, 1000}, {290, 1000}});  // U = 1.49, u_max = 0.9
  EXPECT_FALSE(test.accepts(heavy, 2));  // bound = 1.1
}

TEST(GlobalTests, MuchWeakerThanSemiPartitioning) {
  // The Section I narrative: global utilization tests cap out near
  // 33-50% normalized utilization while the semi-partitioned algorithms
  // reach far higher -- here just the caps themselves.
  const GlobalRmUs rm_us;
  const std::size_t m = 16;
  const double cap = static_cast<double>(m * m) / (3.0 * m - 2.0) /
                     static_cast<double>(m);
  EXPECT_NEAR(cap, 0.3478, 1e-3);
  const TaskSet tasks = TaskSet::from_pairs({{360, 1000}, {360, 1000}});
  EXPECT_TRUE(rm_us.accepts(tasks, 2));  // U = 0.72 <= 4/4 = 1.0
}

}  // namespace
}  // namespace rmts
