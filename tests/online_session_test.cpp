// Online PartitionSession (src/online): admission, departure, lazy
// rebalance and the subsystem's core invariant -- a resident task, once
// admitted, is NEVER un-admitted (not by later admissions, not by
// departures of its neighbors, not by the migration pass), and the live
// assignment stays schedulable under from-scratch exact RTA at every
// step.  Also covers the SessionRegistry locking bridge and the server's
// session_* wire ops end-to-end through the Router.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "online/registry.hpp"
#include "online/session.hpp"
#include "server/client.hpp"
#include "server/json.hpp"
#include "server/metrics.hpp"
#include "server/router.hpp"

namespace rmts::online {
namespace {

SessionConfig two_processors() {
  SessionConfig config;
  config.processors = 2;
  return config;
}

TEST(PartitionSession, AdmitsWholeTasksWithMonotoneTickets) {
  PartitionSession session(two_processors());
  const AdmitResult first = session.admit(10, 100);
  const AdmitResult second = session.admit(20, 200);
  ASSERT_TRUE(first.admitted);
  ASSERT_TRUE(second.admitted);
  EXPECT_EQ(first.parts, 1u);
  EXPECT_EQ(second.parts, 1u);
  EXPECT_LT(first.ticket, second.ticket);
  EXPECT_EQ(session.placements(first.ticket).size(), 1u);

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.resident_tasks, 2u);
  EXPECT_EQ(stats.resident_subtasks, 2u);
  EXPECT_EQ(stats.split_residents, 0u);
  EXPECT_EQ(stats.admits_total, 2u);
  EXPECT_NEAR(stats.utilization, 0.2, 1e-12);
  EXPECT_TRUE(session.check_invariants().empty()) << session.check_invariants();
}

TEST(PartitionSession, RejectsInvalidParametersWithoutSideEffects) {
  PartitionSession session(two_processors());
  EXPECT_FALSE(session.admit(0, 100).admitted);
  EXPECT_FALSE(session.admit(101, 100).admitted);
  EXPECT_FALSE(session.admit(-5, 100).admitted);
  EXPECT_FALSE(
      session.admit(1, PartitionSession::kMaxPeriod + 1).admitted);
  EXPECT_EQ(session.stats().resident_tasks, 0u);
  EXPECT_EQ(session.stats().rejects_total, 4u);
  EXPECT_TRUE(session.check_invariants().empty());
}

TEST(PartitionSession, EnforcesResidentCap) {
  SessionConfig config = two_processors();
  config.max_resident = 1;
  PartitionSession session(config);
  ASSERT_TRUE(session.admit(1, 100).admitted);
  const AdmitResult overflow = session.admit(1, 100);
  EXPECT_FALSE(overflow.admitted);
  EXPECT_EQ(overflow.reason, "resident-task limit reached");
}

TEST(PartitionSession, SplitsWhenNoProcessorFitsWhole) {
  // Two long-period residents occupy both processors; (12, 20) fails
  // exact RTA whole on either (the hosted task then misses), but a
  // (10, 20) body + (2, 20) tail passes on the pair.
  PartitionSession session(two_processors());
  ASSERT_EQ(session.admit(50, 100).parts, 1u);
  ASSERT_EQ(session.admit(50, 100).parts, 1u);

  const AdmitResult split = session.admit(12, 20);
  ASSERT_TRUE(split.admitted) << split.reason;
  EXPECT_EQ(split.parts, 2u);
  const std::vector<std::size_t> hosts = session.placements(split.ticket);
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_NE(hosts[0], hosts[1]);
  EXPECT_EQ(session.stats().split_residents, 1u);
  EXPECT_EQ(session.stats().resident_subtasks, 4u);
  EXPECT_TRUE(session.check_invariants().empty()) << session.check_invariants();

  // Departing the split chain removes every piece.
  ASSERT_TRUE(session.depart(split.ticket));
  EXPECT_EQ(session.stats().resident_subtasks, 2u);
  EXPECT_TRUE(session.placements(split.ticket).empty());
  EXPECT_TRUE(session.check_invariants().empty()) << session.check_invariants();
}

TEST(PartitionSession, SplittingCanBeDisabled) {
  SessionConfig config = two_processors();
  config.allow_splitting = false;
  PartitionSession session(config);
  ASSERT_TRUE(session.admit(50, 100).admitted);
  ASSERT_TRUE(session.admit(50, 100).admitted);
  const AdmitResult result = session.admit(12, 20);
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(session.stats().resident_tasks, 2u);
  EXPECT_TRUE(session.check_invariants().empty());
}

TEST(PartitionSession, BodySafeKeepsLaterArrivalsOffTheBodyProcessor) {
  // After the split of SplitsWhenNoProcessorFitsWhole, the body runs at
  // top priority on its host.  A later, shorter-period arrival would
  // outrank it there (violating Lemma 2's standing premise), so it must
  // land on the other processor -- and the invariant checker must keep
  // passing afterwards.
  PartitionSession session(two_processors());
  ASSERT_TRUE(session.admit(50, 100).admitted);
  ASSERT_TRUE(session.admit(50, 100).admitted);
  const AdmitResult split = session.admit(12, 20);
  ASSERT_TRUE(split.admitted);
  const std::vector<std::size_t> hosts = session.placements(split.ticket);
  ASSERT_EQ(hosts.size(), 2u);

  const AdmitResult fast = session.admit(1, 5);
  ASSERT_TRUE(fast.admitted);
  const std::vector<std::size_t> fast_hosts = session.placements(fast.ticket);
  ASSERT_EQ(fast_hosts.size(), 1u);
  EXPECT_NE(fast_hosts[0], hosts[0])
      << "a shorter-period arrival landed on the body's processor";
  EXPECT_TRUE(session.check_invariants().empty()) << session.check_invariants();
}

TEST(PartitionSession, DepartIsExactlyOnce) {
  PartitionSession session(two_processors());
  const AdmitResult result = session.admit(10, 100);
  ASSERT_TRUE(result.admitted);
  EXPECT_FALSE(session.depart(result.ticket + 17));  // unknown
  EXPECT_TRUE(session.depart(result.ticket));
  EXPECT_FALSE(session.depart(result.ticket));  // already gone
  EXPECT_EQ(session.stats().departs_total, 1u);
  EXPECT_EQ(session.stats().resident_tasks, 0u);
}

TEST(PartitionSession, RebalanceMovesLoadWithoutUnAdmitting) {
  SessionConfig config = two_processors();
  config.rebalance_every = 0;  // only explicit passes
  config.hysteresis = 0.10;
  PartitionSession session(config);

  // Six equal tasks alternate under worst fit; departing two from one
  // side leaves a 0.1 / 0.3 imbalance.
  std::vector<Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    const AdmitResult result = session.admit(10, 100);
    ASSERT_TRUE(result.admitted);
    tickets.push_back(result.ticket);
  }
  const std::vector<std::size_t> host0 = session.placements(tickets[0]);
  ASSERT_EQ(host0.size(), 1u);
  std::vector<Ticket> same_host;
  for (const Ticket ticket : tickets) {
    if (session.placements(ticket) == host0) same_host.push_back(ticket);
  }
  ASSERT_EQ(same_host.size(), 3u);
  ASSERT_TRUE(session.depart(same_host[0]));
  ASSERT_TRUE(session.depart(same_host[1]));

  SessionStats before = session.stats();
  EXPECT_NEAR(before.max_processor_utilization -
                  before.min_processor_utilization,
              0.2, 1e-12);
  const auto residents_before = session.residents();

  EXPECT_EQ(session.rebalance(), 1u);

  const SessionStats after = session.stats();
  EXPECT_EQ(after.migrations_total, 1u);
  EXPECT_GE(after.rebalance_rounds_total, 1u);
  EXPECT_NEAR(after.max_processor_utilization - after.min_processor_utilization,
              0.0, 1e-12);
  const auto residents_after = session.residents();
  ASSERT_EQ(residents_after.size(), residents_before.size());
  for (std::size_t i = 0; i < residents_before.size(); ++i) {
    EXPECT_EQ(residents_after[i].ticket, residents_before[i].ticket);
  }
  EXPECT_TRUE(session.check_invariants().empty()) << session.check_invariants();

  // The spread is inside hysteresis now: another pass is a no-op.
  EXPECT_EQ(session.rebalance(), 0u);
}

TEST(PartitionSession, NeverUnAdmitsUnderRandomChurn) {
  // Property form of the fuzzer's churn mode: at every step the resident
  // ledger matches exactly and the full invariant check passes.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    SessionConfig config;
    config.processors = static_cast<std::size_t>(rng.uniform_int(1, 4));
    config.rebalance_every = static_cast<std::size_t>(rng.uniform_int(0, 8));
    PartitionSession session(config);
    std::vector<PartitionSession::ResidentTask> ledger;
    for (int step = 0; step < 120; ++step) {
      const double roll = rng.uniform(0.0, 1.0);
      if (!ledger.empty() && roll < 0.35) {
        const auto victim = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(ledger.size()) - 1));
        ASSERT_TRUE(session.depart(ledger[victim].ticket));
        ledger.erase(ledger.begin() + static_cast<std::ptrdiff_t>(victim));
      } else if (roll < 0.40) {
        session.rebalance();
      } else {
        const Time period = rng.uniform_int(2, 1000);
        const Time wcet =
            std::max<Time>(1, static_cast<Time>(static_cast<double>(period) *
                                                rng.uniform(0.02, 0.6)));
        const AdmitResult result = session.admit(wcet, period);
        if (result.admitted) {
          ledger.push_back({result.ticket, wcet, period});
        }
      }
      const auto residents = session.residents();
      ASSERT_EQ(residents.size(), ledger.size()) << "seed " << seed;
      for (std::size_t i = 0; i < ledger.size(); ++i) {
        ASSERT_EQ(residents[i].ticket, ledger[i].ticket);
        ASSERT_EQ(residents[i].wcet, ledger[i].wcet);
        ASSERT_EQ(residents[i].period, ledger[i].period);
      }
      if (step % 12 == 11) {
        const std::string violation = session.check_invariants();
        ASSERT_TRUE(violation.empty())
            << "seed " << seed << " step " << step << ": " << violation;
      }
    }
    const std::string violation = session.check_invariants();
    ASSERT_TRUE(violation.empty()) << "seed " << seed << ": " << violation;
  }
}

// ---------------------------------------------------------- registry --

TEST(SessionRegistry, OpenLockCloseLifecycle) {
  SessionRegistry registry(RegistryConfig{.max_sessions = 2});
  const SessionId a = registry.open(SessionConfig{});
  const SessionId b = registry.open(SessionConfig{});
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_EQ(registry.open(SessionConfig{}), 0u);  // at capacity
  EXPECT_EQ(registry.size(), 2u);

  {
    const SessionRegistry::Handle handle = registry.lock(a);
    ASSERT_TRUE(handle);
    EXPECT_TRUE(handle.session().admit(10, 100).admitted);
  }
  EXPECT_FALSE(registry.lock(a + 1000));

  const RegistryTotals totals = registry.totals();
  EXPECT_EQ(totals.sessions_open, 2u);
  EXPECT_EQ(totals.resident_tasks, 1u);
  EXPECT_EQ(totals.admits_total, 1u);

  EXPECT_TRUE(registry.close(a));
  EXPECT_FALSE(registry.close(a));
  EXPECT_FALSE(registry.lock(a));
  EXPECT_EQ(registry.size(), 1u);
  // Capacity freed: a new open succeeds and ids never repeat.
  const SessionId c = registry.open(SessionConfig{});
  ASSERT_NE(c, 0u);
  EXPECT_GT(c, b);

  // Lifetime `_total` counters are monotone across close() -- the closed
  // session's admit survives in the aggregate (Prometheus counter
  // semantics); the resident/open gauges drop with the session.
  const RegistryTotals after_close = registry.totals();
  EXPECT_EQ(after_close.sessions_open, 2u);
  EXPECT_EQ(after_close.resident_tasks, 0u);
  EXPECT_EQ(after_close.admits_total, 1u);
}

TEST(SessionRegistry, ConcurrentChurnAcrossAndWithinSessions) {
  SessionRegistry registry;
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kThreads = 8;
  std::vector<SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    ids.push_back(registry.open(SessionConfig{}));
    ASSERT_NE(ids.back(), 0u);
  }
  // Two threads per session churn the SAME session (serialized by its
  // mutex) while other sessions run in parallel; thread-sanitizer runs
  // of the `online` label make this a real interleaving test.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &ids, t] {
      Rng rng(t);
      const SessionId id = ids[t % kSessions];
      std::vector<Ticket> mine;
      for (int step = 0; step < 200; ++step) {
        SessionRegistry::Handle handle = registry.lock(id);
        ASSERT_TRUE(handle);
        if (!mine.empty() && rng.uniform(0.0, 1.0) < 0.4) {
          const auto victim = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(mine.size()) - 1));
          ASSERT_TRUE(handle.session().depart(mine[victim]));
          mine[victim] = mine.back();
          mine.pop_back();
        } else {
          const Time period = rng.uniform_int(2, 1000);
          const Time wcet = std::max<Time>(1, period / 20);
          const AdmitResult result = handle.session().admit(wcet, period);
          if (result.admitted) mine.push_back(result.ticket);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const SessionId id : ids) {
    const SessionRegistry::Handle handle = registry.lock(id);
    ASSERT_TRUE(handle);
    const std::string violation = handle.session().check_invariants();
    EXPECT_TRUE(violation.empty()) << violation;
  }
}

// ------------------------------------------------- router session ops --

class RouterSessionTest : public ::testing::Test {
 protected:
  server::JsonValue handle(const std::string& request) {
    const server::HandleOutcome outcome = router_.handle(request);
    server::JsonValue reply;
    std::string error;
    EXPECT_TRUE(server::json_parse(outcome.reply, reply, error))
        << outcome.reply;
    return reply;
  }

  std::uint64_t open_session(std::size_t processors) {
    const server::JsonValue reply =
        handle(server::make_session_open_request(processors));
    EXPECT_TRUE(reply.find("ok")->as_bool()) << "session_open failed";
    return static_cast<std::uint64_t>(reply.find("session")->as_int());
  }

  server::Metrics metrics_;
  server::Router router_{server::RouterConfig{}, metrics_};
};

TEST_F(RouterSessionTest, AdmitDepartStatsCloseRoundTrip) {
  const std::uint64_t session = open_session(2);
  ASSERT_NE(session, 0u);

  const server::JsonValue admit =
      handle(server::make_session_admit_request(session, 10, 100));
  ASSERT_TRUE(admit.find("ok")->as_bool());
  ASSERT_TRUE(admit.find("accepted")->as_bool());
  const auto ticket =
      static_cast<std::uint64_t>(admit.find("ticket")->as_int());
  ASSERT_NE(ticket, 0u);
  EXPECT_EQ(admit.find("parts")->as_double(), 1.0);

  const server::JsonValue stats =
      handle(server::make_session_stats_request(session));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  EXPECT_EQ(stats.find("resident_tasks")->as_double(), 1.0);
  EXPECT_EQ(stats.find("processors")->as_double(), 2.0);

  const server::JsonValue depart =
      handle(server::make_session_depart_request(session, ticket));
  ASSERT_TRUE(depart.find("ok")->as_bool());
  EXPECT_TRUE(depart.find("departed")->as_bool());
  const server::JsonValue again =
      handle(server::make_session_depart_request(session, ticket));
  ASSERT_TRUE(again.find("ok")->as_bool());
  EXPECT_FALSE(again.find("departed")->as_bool());

  const server::JsonValue rebalance =
      handle(server::make_session_rebalance_request(session));
  ASSERT_TRUE(rebalance.find("ok")->as_bool());
  EXPECT_EQ(rebalance.find("migrations")->as_double(), 0.0);

  const server::JsonValue close =
      handle(server::make_session_close_request(session));
  ASSERT_TRUE(close.find("ok")->as_bool());
  EXPECT_TRUE(close.find("closed")->as_bool());
  const server::JsonValue gone =
      handle(server::make_session_admit_request(session, 10, 100));
  EXPECT_FALSE(gone.find("ok")->as_bool());
}

TEST_F(RouterSessionTest, RejectionsAndUnknownSessionsAreWellFormed) {
  const std::uint64_t session = open_session(1);

  // Saturate one processor, then an impossible arrival is a normal
  // accepted:false reply with a reason -- not an error.
  ASSERT_TRUE(handle(server::make_session_admit_request(session, 1, 2))
                  .find("accepted")
                  ->as_bool());
  const server::JsonValue rejected =
      handle(server::make_session_admit_request(session, 999, 1000));
  ASSERT_TRUE(rejected.find("ok")->as_bool());
  EXPECT_FALSE(rejected.find("accepted")->as_bool());
  EXPECT_FALSE(rejected.find("reason")->as_string().empty());

  const server::JsonValue unknown =
      handle(server::make_session_admit_request(987654, 10, 100));
  EXPECT_FALSE(unknown.find("ok")->as_bool());
  EXPECT_FALSE(unknown.find("error")->as_string().empty());

  const server::JsonValue malformed = handle(R"({"op":"session_admit"})");
  EXPECT_FALSE(malformed.find("ok")->as_bool());
}

TEST_F(RouterSessionTest, StatsEndpointAggregatesSessions) {
  const std::uint64_t a = open_session(2);
  const std::uint64_t b = open_session(2);
  ASSERT_TRUE(handle(server::make_session_admit_request(a, 10, 100))
                  .find("accepted")
                  ->as_bool());
  ASSERT_TRUE(handle(server::make_session_admit_request(b, 10, 100))
                  .find("accepted")
                  ->as_bool());

  const server::JsonValue stats = handle(server::make_stats_request());
  ASSERT_TRUE(stats.find("ok")->as_bool());
  const server::JsonValue* sessions = stats.find("sessions");
  ASSERT_NE(sessions, nullptr);
  EXPECT_EQ(sessions->find("open")->as_double(), 2.0);
  EXPECT_EQ(sessions->find("resident_tasks")->as_double(), 2.0);

  const std::string exposition = router_.metrics_exposition();
  EXPECT_NE(exposition.find("rmts_sessions_open 2"), std::string::npos)
      << exposition;
  EXPECT_NE(exposition.find("rmts_session_resident_tasks"), std::string::npos);
  EXPECT_NE(exposition.find("rmts_session_admits_total"), std::string::npos);
}

}  // namespace
}  // namespace rmts::online
