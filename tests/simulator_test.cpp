// Discrete-event simulator: dispatching, splitting precedence, deadline
// detection, statistics, input validation, and horizon selection.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "helpers.hpp"
#include "partition/rmts_light.hpp"
#include "workload/generators.hpp"
#include "sim/simulator.hpp"

namespace rmts {
namespace {

Assignment manual_assignment(std::vector<std::vector<Subtask>> per_processor) {
  Assignment a;
  a.success = true;
  for (auto& subtasks : per_processor) {
    ProcessorAssignment proc;
    proc.subtasks = std::move(subtasks);
    a.processors.push_back(std::move(proc));
  }
  return a;
}

TEST(Simulator, SingleTaskRunsCleanly) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}});
  const Assignment a = manual_assignment({{whole_subtask(tasks[0], 0)}});
  SimConfig config;
  config.horizon = 1000;
  const SimResult result = simulate(tasks, a, config);
  EXPECT_TRUE(result.schedulable);
  // Events at exactly the horizon are processed (boundary deadlines must
  // be checked), so the release at t = 1000 counts but never runs.
  EXPECT_EQ(result.jobs_released, 11u);
  EXPECT_EQ(result.jobs_completed, 10u);
  EXPECT_EQ(result.busy_time[0], 300);
  EXPECT_EQ(result.preemptions, 0u);
  EXPECT_EQ(result.migrations, 0u);
}

TEST(Simulator, PreemptionCountedOnce) {
  // Low-priority job running when the high-priority one releases mid-way.
  const TaskSet tasks = TaskSet::from_pairs({{20, 50}, {60, 100}});
  const Assignment a = manual_assignment(
      {{whole_subtask(tasks[0], 0), whole_subtask(tasks[1], 1)}});
  SimConfig config;
  config.horizon = 100;
  const SimResult result = simulate(tasks, a, config);
  EXPECT_TRUE(result.schedulable);
  // t=0..20 task0; t=20..50 task1; t=50 task0 preempts (one preemption);
  // t=70..100 task1 finishes at 100 exactly.
  EXPECT_EQ(result.preemptions, 1u);
  EXPECT_EQ(result.busy_time[0], 100);
}

TEST(Simulator, OverloadDetectedAtDeadline) {
  const TaskSet tasks = TaskSet::from_pairs({{60, 100}, {50, 100}});
  const Assignment a = manual_assignment(
      {{whole_subtask(tasks[0], 0), whole_subtask(tasks[1], 1)}});
  SimConfig config;
  config.horizon = 1000;
  const SimResult result = simulate(tasks, a, config);
  ASSERT_FALSE(result.schedulable);
  ASSERT_EQ(result.misses.size(), 1u);
  EXPECT_EQ(result.misses[0].release, 0);
  EXPECT_EQ(result.misses[0].deadline, 100);
}

TEST(Simulator, ContinueModeCountsRepeatedMisses) {
  const TaskSet tasks = TaskSet::from_pairs({{60, 100}, {50, 100}});
  const Assignment a = manual_assignment(
      {{whole_subtask(tasks[0], 0), whole_subtask(tasks[1], 1)}});
  SimConfig config;
  config.horizon = 1000;
  config.stop_at_first_miss = false;
  const SimResult result = simulate(tasks, a, config);
  EXPECT_FALSE(result.schedulable);
  EXPECT_GE(result.misses.size(), 5u);  // misses every period
}

TEST(Simulator, SplitChainExecutesInOrderAcrossProcessors) {
  // tau_0 = (50,100) split: body 20 ticks on P1, tail 30 on P2.
  const TaskSet tasks = TaskSet::from_pairs({{50, 100}});
  const Subtask body{0, 0, 0, 20, 100, 100, SubtaskKind::kBody};
  const Subtask tail{0, 0, 1, 30, 100, 80, SubtaskKind::kTail};
  const Assignment a = manual_assignment({{body}, {tail}});
  SimConfig config;
  config.horizon = 1000;
  const SimResult result = simulate(tasks, a, config);
  EXPECT_TRUE(result.schedulable);
  EXPECT_EQ(result.migrations, 10u);  // one hop per job
  EXPECT_EQ(result.busy_time[0], 200);
  EXPECT_EQ(result.busy_time[1], 300);
}

TEST(Simulator, SynchronizationDelayCausesTailMiss) {
  // Body is starved by a hog on P1 until t=90; the 20-tick tail then
  // cannot finish by 100 even though P2 is idle.
  const TaskSet tasks = TaskSet::from_pairs({{90, 100}, {30, 101}});
  const Subtask hog = whole_subtask(tasks[0], 0);
  const Subtask body{1, tasks[1].id, 0, 10, 101, 101, SubtaskKind::kBody};
  const Subtask tail{1, tasks[1].id, 1, 20, 101, 1, SubtaskKind::kTail};
  const Assignment a = manual_assignment({{hog, body}, {tail}});
  SimConfig config;
  config.horizon = 1000;
  const SimResult result = simulate(tasks, a, config);
  ASSERT_FALSE(result.schedulable);
  EXPECT_EQ(result.misses[0].task, tasks[1].id);
}

TEST(Simulator, OffsetsShiftReleases) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}});
  const Assignment a = manual_assignment({{whole_subtask(tasks[0], 0)}});
  SimConfig config;
  config.horizon = 1000;
  config.offsets = {50};
  const SimResult result = simulate(tasks, a, config);
  EXPECT_TRUE(result.schedulable);
  EXPECT_EQ(result.jobs_released, 10u);  // releases at 50, 150, ..., 950
  EXPECT_EQ(result.busy_time[0], 300);   // job at 950 finishes at 980
}

TEST(Simulator, AsynchronousPhasingCanHideOrExposeLoad) {
  // Two half-utilization tasks on one processor: schedulable in any
  // phasing; offsets merely shift the busy intervals.
  const TaskSet tasks = TaskSet::from_pairs({{50, 100}, {50, 100}});
  const Assignment a = manual_assignment(
      {{whole_subtask(tasks[0], 0), whole_subtask(tasks[1], 1)}});
  SimConfig config;
  config.horizon = 10000;
  config.offsets = {0, 25};
  const SimResult result = simulate(tasks, a, config);
  EXPECT_TRUE(result.schedulable);
}

TEST(Simulator, RejectsChainNotCoveringWcet) {
  const TaskSet tasks = TaskSet::from_pairs({{50, 100}});
  const Subtask short_piece{0, 0, 0, 40, 100, 100, SubtaskKind::kWhole};
  const Assignment a = manual_assignment({{short_piece}});
  SimConfig config;
  config.horizon = 100;
  EXPECT_THROW(simulate(tasks, a, config), InvalidConfigError);
}

TEST(Simulator, RejectsMissingChainPart) {
  const TaskSet tasks = TaskSet::from_pairs({{50, 100}});
  const Subtask part1{0, 0, 1, 50, 100, 80, SubtaskKind::kTail};  // no part 0
  const Assignment a = manual_assignment({{part1}});
  SimConfig config;
  config.horizon = 100;
  EXPECT_THROW(simulate(tasks, a, config), InvalidConfigError);
}

TEST(Simulator, RejectsUnknownTask) {
  const TaskSet tasks = TaskSet::from_pairs({{50, 100}});
  const Subtask alien{0, 99, 0, 50, 100, 100, SubtaskKind::kWhole};
  const Assignment a = manual_assignment({{alien}});
  SimConfig config;
  config.horizon = 100;
  EXPECT_THROW(simulate(tasks, a, config), InvalidConfigError);
}

TEST(Simulator, RejectsBadHorizonAndOffsets) {
  const TaskSet tasks = TaskSet::from_pairs({{50, 100}});
  const Assignment a = manual_assignment({{whole_subtask(tasks[0], 0)}});
  SimConfig config;
  config.horizon = 0;
  EXPECT_THROW(simulate(tasks, a, config), InvalidConfigError);
  config.horizon = 100;
  config.offsets = {1, 2};  // wrong arity
  EXPECT_THROW(simulate(tasks, a, config), InvalidConfigError);
}

TEST(Simulator, DeadlineExactlyAtHorizonIsChecked) {
  // Unschedulable pair, horizon exactly one period: the miss at t=100 must
  // be caught even though it sits on the boundary.
  const TaskSet tasks = TaskSet::from_pairs({{60, 100}, {50, 100}});
  const Assignment a = manual_assignment(
      {{whole_subtask(tasks[0], 0), whole_subtask(tasks[1], 1)}});
  SimConfig config;
  config.horizon = 100;
  const SimResult result = simulate(tasks, a, config);
  EXPECT_FALSE(result.schedulable);
}

TEST(RecommendedHorizon, TwiceHyperperiodWhenSmall) {
  const TaskSet tasks = TaskSet::from_pairs({{1, 1000}, {1, 1200}, {1, 1500}});
  EXPECT_EQ(recommended_horizon(tasks, 1000000), 2 * 6000);
}

TEST(RecommendedHorizon, CapRespected) {
  const TaskSet tasks = TaskSet::from_pairs({{1, 999983}, {1, 999979}});
  EXPECT_EQ(recommended_horizon(tasks, 5000000), 5000000);
}

TEST(Simulator, AgreesWithRtaOnUniprocessorBoundaryCases) {
  // (26,70),(62,100) misses; (20,100),(40,150),(100,350) does not.
  const TaskSet bad = TaskSet::from_pairs({{26, 70}, {62, 100}});
  const Assignment bad_assignment = manual_assignment(
      {{whole_subtask(bad[0], 0), whole_subtask(bad[1], 1)}});
  SimConfig config;
  config.horizon = recommended_horizon(bad, 1000000);
  EXPECT_FALSE(simulate(bad, bad_assignment, config).schedulable);

  const TaskSet good = TaskSet::from_pairs({{20, 100}, {40, 150}, {100, 350}});
  const Assignment good_assignment = manual_assignment(
      {{whole_subtask(good[0], 0), whole_subtask(good[1], 1),
        whole_subtask(good[2], 2)}});
  config.horizon = recommended_horizon(good, 10000000);
  EXPECT_TRUE(simulate(good, good_assignment, config).schedulable);
}


TEST(Simulator, AcceptedPartitionsSurviveRandomOffsets) {
  // The theorems quantify over ALL release patterns (sporadic model);
  // synchronous release is what the other tests use, so here accepted
  // partitions are additionally exercised under random initial offsets.
  Rng rng(777);
  int validated = 0;
  for (int trial = 0; trial < 40; ++trial) {
    WorkloadConfig config;
    config.tasks = 10;
    config.processors = 3;
    config.period_model = PeriodModel::kGrid;
    config.period_grid = small_hyperperiod_grid();
    config.max_task_utilization = 0.6;
    config.normalized_utilization = 0.6 + 0.3 * (trial % 8) / 8.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = RmtsLight().partition(tasks, 3);
    if (!a.success) continue;
    ++validated;
    SimConfig sim;
    sim.horizon = recommended_horizon(tasks, 1'000'000);
    sim.offsets.resize(tasks.size());
    for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
      sim.offsets[rank] = sample.uniform_int(0, tasks[rank].period - 1);
    }
    const SimResult run = simulate(tasks, a, sim);
    EXPECT_TRUE(run.schedulable) << trial << "\n" << tasks.describe();
  }
  EXPECT_GT(validated, 20);
}

TEST(Simulator, MaxResponseTracksWorstJob) {
  // Task 1 suffers full interference at t=0 (response 80) but less later;
  // max_response must record the worst, not the last.
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}, {50, 150}});
  Assignment a;
  a.success = true;
  a.processors.resize(1);
  a.processors[0].subtasks = {whole_subtask(tasks[0], 0),
                              whole_subtask(tasks[1], 1)};
  SimConfig config;
  config.horizon = 600;  // one hyperperiod
  const SimResult result = simulate(tasks, a, config);
  ASSERT_TRUE(result.schedulable);
  EXPECT_EQ(result.max_response[0], 30);
  EXPECT_EQ(result.max_response[1], 80);
}

TEST(Simulator, StopModeAndContinueModeAgreeWhenClean) {
  const TaskSet tasks = TaskSet::from_pairs({{20, 100}, {30, 150}});
  Assignment a;
  a.success = true;
  a.processors.resize(1);
  a.processors[0].subtasks = {whole_subtask(tasks[0], 0),
                              whole_subtask(tasks[1], 1)};
  SimConfig config;
  config.horizon = 3000;
  const SimResult stop_mode = simulate(tasks, a, config);
  config.stop_at_first_miss = false;
  const SimResult continue_mode = simulate(tasks, a, config);
  EXPECT_TRUE(stop_mode.schedulable);
  EXPECT_TRUE(continue_mode.schedulable);
  EXPECT_EQ(stop_mode.jobs_completed, continue_mode.jobs_completed);
  EXPECT_EQ(stop_mode.busy_time, continue_mode.busy_time);
  EXPECT_EQ(stop_mode.preemptions, continue_mode.preemptions);
}

TEST(Simulator, ValidatesRealPartitionerOutput) {
  const TaskSet tasks =
      TaskSet::from_pairs({{600, 1000}, {606, 1010}, {612, 1020}});
  const Assignment a = RmtsLight().partition(tasks, 2);
  ASSERT_TRUE(a.success);
  testing::expect_simulation_clean(tasks, a, 50'000'000);
}

}  // namespace
}  // namespace rmts
