// SoA RTA kernel: mirror consistency under every mutation path
// (assign/insert/ProcessorState add/copy/assign), bit-identity of the
// kernel twins against the scalar RTA functions -- including directed
// 2^31 no-overflow-boundary cases that force the checked fallback -- and
// exactness of the division-free floor quotient at its hardest inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/checked_math.hpp"
#include "common/rng.hpp"
#include "partition/processor_state.hpp"
#include "rta/rta.hpp"
#include "rta/rta_kernel.hpp"
#include "tasks/subtask.hpp"

namespace rmts {
namespace {

constexpr Time kBoundary = Time{1} << 31;  // PR1 no-overflow fast bound.

Subtask make_subtask(std::size_t priority, Time wcet, Time period,
                     Time deadline) {
  return Subtask{priority,  static_cast<TaskId>(priority), 0, wcet,
                 period,    deadline,                      SubtaskKind::kWhole};
}

/// Random subtask with the given priority rank; deadline <= period.  With
/// `huge`, periods/wcets straddle the 2^31 kernel-eligibility boundary.
Subtask random_subtask(Rng& rng, std::size_t priority, bool huge) {
  Time period;
  Time wcet;
  if (huge && rng.uniform_int(0, 1) == 0) {
    period = std::max<Time>(1, kBoundary + rng.uniform_int(-3, 3));
    wcet = rng.uniform_int(1, period);
  } else {
    period = rng.uniform_int(2, 5000);
    wcet = rng.uniform_int(1, std::max<Time>(1, period / 3));
  }
  const Time deadline = rng.uniform_int(wcet, period);
  return make_subtask(priority, wcet, period, deadline);
}

std::vector<Subtask> random_hosted(Rng& rng, std::size_t n, bool huge) {
  std::vector<Subtask> hosted;
  hosted.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    hosted.push_back(random_subtask(rng, i, huge));
  }
  return hosted;
}

// ------------------------------------------------------- floor_div_exact --

TEST(FloorDivExact, MatchesIntegerDivisionAtAdversarialPoints) {
  // The magic quotient (r * ceil(2^shift/t)) >> shift is provably exact
  // for every r below 2^31 (proof at div_magic).  Stress the boundary
  // layers anyway: r1 just below/at multiples of the period (where a
  // round-down magic would slip), the largest representable operands,
  // powers of two, and period = 1 (quotient equals r1).
  const std::int64_t kMax = (std::int64_t{1} << 31) - 1;
  const std::int64_t periods[] = {1, 2, 3, 7, 10, 641, 1 << 20, 6'700'417,
                                  kMax - 1, kMax};
  for (const std::int64_t t : periods) {
    const auto magic = rta_kernel_detail::div_magic(t);
    const std::int64_t quotients[] = {0, 1, 2, 3, kMax / t};
    for (const std::int64_t q : quotients) {
      for (std::int64_t delta = -2; delta <= 2; ++delta) {
        const std::int64_t r1 = q * t + delta;
        if (r1 < 0 || r1 > kMax) continue;
        EXPECT_EQ(rta_kernel_detail::floor_div_exact(r1, magic), r1 / t)
            << "r1=" << r1 << " t=" << t;
      }
    }
    EXPECT_EQ(rta_kernel_detail::floor_div_exact(kMax, magic), kMax / t);
  }
}

TEST(FloorDivExact, MatchesIntegerDivisionOnRandomOperands) {
  Rng rng(7);
  for (int i = 0; i < 200'000; ++i) {
    const std::int64_t t = rng.uniform_int(1, (std::int64_t{1} << 31) - 1);
    const std::int64_t r1 =
        rng.uniform_int(0, (std::int64_t{1} << 31) - 1);
    ASSERT_EQ(rta_kernel_detail::floor_div_exact(
                  r1, rta_kernel_detail::div_magic(t)),
              r1 / t)
        << "r1=" << r1 << " t=" << t;
  }
}

// ------------------------------------------------------- mirror upkeep --

TEST(RtaSoa, EmptyMirrorIsConsistent) {
  const RtaSoa soa;
  EXPECT_EQ(soa.size(), 0u);
  EXPECT_EQ(soa.fast_prefix(), 0u);
  EXPECT_EQ(soa.wcet_prefix_sum(0), 0u);
  EXPECT_TRUE(soa.mirrors({}));
}

TEST(RtaSoa, InsertAnyOrderMatchesRebuild) {
  Rng rng(11);
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    Rng sample = rng.fork(trial);
    const bool huge = sample.uniform_int(0, 3) == 0;
    const auto n = static_cast<std::size_t>(sample.uniform_int(0, 12));
    std::vector<Subtask> subtasks = random_hosted(sample, n, huge);
    // Insert in a random order at the priority position, exactly as
    // ProcessorState::add does.
    for (std::size_t i = subtasks.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          sample.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(subtasks[i - 1], subtasks[j]);
    }
    RtaSoa incremental;
    std::vector<Subtask> hosted;
    for (const Subtask& s : subtasks) {
      const auto pos_it = std::lower_bound(
          hosted.begin(), hosted.end(), s,
          [](const Subtask& a, const Subtask& b) {
            return a.priority < b.priority;
          });
      const auto pos = static_cast<std::size_t>(pos_it - hosted.begin());
      hosted.insert(pos_it, s);
      incremental.insert(pos, s);
      ASSERT_TRUE(incremental.mirrors(hosted))
          << "trial " << trial << " after " << hosted.size() << " insertions";
    }
    RtaSoa rebuilt;
    rebuilt.assign(hosted);
    ASSERT_TRUE(rebuilt.mirrors(hosted));
    incremental.clear();
    EXPECT_TRUE(incremental.mirrors({}));
  }
}

TEST(RtaSoa, SaturatingPrefixSumsSurviveOversizedWcets) {
  // Three wcets near kTimeInfinity overflow any exact 64-bit prefix sum;
  // the mirror must stay consistent (saturate identically on the insert
  // and rebuild paths) rather than wrap.
  const Time huge = std::numeric_limits<Time>::max() / 2;
  std::vector<Subtask> hosted;
  RtaSoa incremental;
  for (std::size_t i = 0; i < 3; ++i) {
    hosted.push_back(make_subtask(i, huge, huge, huge));
    incremental.insert(i, hosted.back());
    ASSERT_TRUE(incremental.mirrors(hosted));
  }
  // Front insertion shifts every saturated suffix entry.
  hosted.insert(hosted.begin(), make_subtask(0, 1, 4, 4));
  incremental.insert(0, hosted.front());
  EXPECT_TRUE(incremental.mirrors(hosted));
  EXPECT_EQ(incremental.fast_prefix(), 1u);  // only the front period fits.
}

TEST(ProcessorState, CacheMirrorsHostedSetAfterAddCopyAssign) {
  Rng rng(13);
  ProcessorState processor;
  std::vector<std::size_t> order{5, 1, 9, 0, 3, 7, 2, 8, 4, 6};
  for (const std::size_t priority : order) {
    processor.add(random_subtask(rng, priority, false));
    // fits() on a fresh candidate exercises the cache (and thus the SoA
    // mirror) right after the incremental insert.
    const Subtask probe = random_subtask(rng, 10, false);
    std::vector<KernelFit> verdict(1);
    processor.fits_batch(std::span<const Subtask>(&probe, 1), verdict);
    ASSERT_EQ(processor.fits(probe), verdict[0].fits);
  }

  // Copy and assignment drop the cache; the next probe rebuilds it and
  // must see the same hosted set (same verdicts as the original).
  const Subtask probe = random_subtask(rng, 4, false);
  ProcessorState copied(processor);
  ProcessorState assigned;
  assigned.add(random_subtask(rng, 0, false));
  assigned = processor;
  EXPECT_EQ(copied.fits(probe), processor.fits(probe));
  EXPECT_EQ(assigned.fits(probe), processor.fits(probe));
  EXPECT_EQ(copied.subtasks().size(), processor.subtasks().size());
}

// ------------------------------------------------ kernel vs scalar RTA --

TEST(RtaKernel, AnalyzeMatchesScalarPerPrefix) {
  Rng rng(17);
  for (std::uint64_t trial = 0; trial < 300; ++trial) {
    Rng sample = rng.fork(trial);
    const bool huge = sample.uniform_int(0, 3) == 0;
    const std::vector<Subtask> hosted = random_hosted(
        sample, static_cast<std::size_t>(sample.uniform_int(0, 10)), huge);
    const ProcessorRta kernel = kernel_analyze(hosted);
    bool schedulable = true;
    std::size_t first_miss = hosted.size();
    for (std::size_t i = 0; i < hosted.size(); ++i) {
      const RtaOutcome scalar =
          response_time(hosted[i].wcet, hosted[i].deadline,
                        std::span<const Subtask>(hosted).first(i));
      if (!scalar.schedulable) {
        schedulable = false;
        first_miss = i;
        break;
      }
      ASSERT_EQ(kernel.response[i], scalar.response) << "trial " << trial;
    }
    ASSERT_EQ(kernel.schedulable, schedulable) << "trial " << trial;
    ASSERT_EQ(kernel.first_miss, first_miss) << "trial " << trial;
  }
}

TEST(RtaKernel, BoundaryDeadlinesCrossTheFastGuardBitIdentically) {
  // deadline straddling 2^31 flips the kernel between the division-free
  // loop and the checked scalar fallback; outcomes must not change.
  const std::vector<Subtask> hosted = {
      make_subtask(0, 3, 10, 10),
      make_subtask(1, 7, 50, 50),
  };
  RtaSoa soa;
  soa.assign(hosted);
  for (const Time deadline :
       {kBoundary - 2, kBoundary - 1, kBoundary, kBoundary + 1}) {
    for (const Time wcet : {Time{1}, Time{12345}, kBoundary - 1}) {
      const RtaOutcome kernel =
          kernel_response_time(hosted, soa, hosted.size(), wcet, deadline, 0);
      const RtaOutcome scalar = response_time(wcet, deadline, hosted);
      ASSERT_EQ(kernel.schedulable, scalar.schedulable)
          << "wcet=" << wcet << " deadline=" << deadline;
      ASSERT_EQ(kernel.response, scalar.response)
          << "wcet=" << wcet << " deadline=" << deadline;
    }
  }
}

TEST(RtaKernel, BoundaryPeriodsForceTheScalarFallbackBitIdentically) {
  // A period at exactly 2^31 is kernel-ineligible (the reciprocal trick's
  // error bound needs T < 2^31); one at 2^31 - 1 is the last eligible
  // value.  Both sides must agree with the scalar path.
  for (const Time period : {kBoundary - 1, kBoundary, kBoundary + 1}) {
    const std::vector<Subtask> hosted = {
        make_subtask(0, 5, period, period),
        make_subtask(1, 3, 40, 40),
    };
    RtaSoa soa;
    soa.assign(hosted);
    EXPECT_EQ(soa.fast_prefix(), period < kBoundary ? 2u : 0u);
    const RtaOutcome kernel =
        kernel_response_time(hosted, soa, hosted.size(), 9, 200, 0);
    const RtaOutcome scalar = response_time(9, 200, hosted);
    ASSERT_EQ(kernel.schedulable, scalar.schedulable) << "period=" << period;
    ASSERT_EQ(kernel.response, scalar.response) << "period=" << period;
  }
}

TEST(RtaKernel, SeededAndExtraTwinsMatchScalar) {
  Rng rng(19);
  for (std::uint64_t trial = 0; trial < 300; ++trial) {
    Rng sample = rng.fork(trial);
    const bool huge = sample.uniform_int(0, 3) == 0;
    const std::vector<Subtask> hosted = random_hosted(
        sample, static_cast<std::size_t>(sample.uniform_int(1, 8)), huge);
    RtaSoa soa;
    soa.assign(hosted);
    const auto prefix = static_cast<std::size_t>(
        sample.uniform_int(0, static_cast<std::int64_t>(hosted.size())));
    const Subtask probe = random_subtask(sample, prefix, huge);
    const Time seed = sample.uniform_int(0, probe.wcet);
    const auto hp = std::span<const Subtask>(hosted).first(prefix);

    const RtaOutcome ks = kernel_response_time(hosted, soa, prefix, probe.wcet,
                                               probe.deadline, seed);
    const RtaOutcome ss =
        response_time_seeded(probe.wcet, probe.deadline, hp, seed);
    ASSERT_EQ(ks.schedulable, ss.schedulable) << "trial " << trial;
    ASSERT_EQ(ks.response, ss.response) << "trial " << trial;

    const Subtask extra = random_subtask(sample, 0, huge);
    const RtaOutcome kw = kernel_response_time_with(
        hosted, soa, prefix, probe.wcet, probe.deadline, extra, seed);
    const RtaOutcome sw =
        response_time_with(probe.wcet, probe.deadline, hp, extra, seed);
    ASSERT_EQ(kw.schedulable, sw.schedulable) << "trial " << trial;
    ASSERT_EQ(kw.response, sw.response) << "trial " << trial;
  }
}

// ----------------------------------------------------- batch admission --

/// The documented fits() semantics from scratch (see
/// admission_cache_test.cpp): candidate under its prefix, then every
/// lower-priority hosted subtask with the candidate as extra interferer.
bool oracle_fits(std::span<const Subtask> hosted, const Subtask& candidate,
                 Time& response) {
  const auto pos_it = std::lower_bound(
      hosted.begin(), hosted.end(), candidate,
      [](const Subtask& a, const Subtask& b) { return a.priority < b.priority; });
  const auto pos = static_cast<std::size_t>(pos_it - hosted.begin());
  const RtaOutcome own =
      response_time(candidate.wcet, candidate.deadline, hosted.first(pos));
  response = own.response;
  if (!own.schedulable) return false;
  std::vector<Subtask> interferers(hosted.begin(), pos_it);
  interferers.push_back(candidate);
  for (std::size_t i = pos; i < hosted.size(); ++i) {
    if (!response_time(hosted[i].wcet, hosted[i].deadline, interferers)
             .schedulable) {
      return false;
    }
    interferers.push_back(hosted[i]);
  }
  return true;
}

TEST(RtaKernel, BatchVerdictsMatchScalarOracleAndSingleProbes) {
  Rng rng(23);
  for (std::uint64_t trial = 0; trial < 120; ++trial) {
    Rng sample = rng.fork(trial);
    const bool huge = sample.uniform_int(0, 3) == 0;
    const std::vector<Subtask> hosted = random_hosted(
        sample, static_cast<std::size_t>(sample.uniform_int(0, 8)), huge);
    ProcessorState processor;
    for (const Subtask& s : hosted) processor.add(s);

    std::vector<Subtask> candidates;
    for (std::size_t c = 0; c < 5; ++c) {
      candidates.push_back(random_subtask(
          sample, static_cast<std::size_t>(sample.uniform_int(0, 12)), huge));
    }
    std::vector<KernelFit> verdicts(candidates.size());
    processor.fits_batch(candidates, verdicts);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      Time oracle_response = 0;
      const bool expected = oracle_fits(hosted, candidates[c], oracle_response);
      ASSERT_EQ(verdicts[c].fits, expected) << "trial " << trial;
      ASSERT_EQ(processor.fits(candidates[c]), expected) << "trial " << trial;
      if (expected) {
        ASSERT_EQ(verdicts[c].response, oracle_response) << "trial " << trial;
      }
    }
  }
}

TEST(RtaKernel, KnownMissSeedRejectsImmediately) {
  // A hosted subtask already past its deadline memoizes kTimeInfinity;
  // any probe that would re-examine it must reject without re-deriving
  // the miss.  The candidate outranks the miss, so the candidate itself
  // fits (empty prefix + one light interferer) and the hosted miss is the
  // rejection reason -- reported as response 0 per KernelFit's contract.
  ProcessorState processor;
  processor.add(make_subtask(1, 8, 10, 10));
  processor.add(make_subtask(2, 8, 10, 9));  // R = 16 > 9: hosted miss.
  const Subtask candidate = make_subtask(0, 1, 1000, 1000);
  EXPECT_FALSE(processor.fits(candidate));
  std::vector<KernelFit> verdict(1);
  processor.fits_batch(std::span<const Subtask>(&candidate, 1), verdict);
  EXPECT_FALSE(verdict[0].fits);
  EXPECT_EQ(verdict[0].response, 0);  // hosted subtask was the reason.
}

// ------------------------------------------------------- jitter kernel --

TEST(RtaKernel, JitterResponseMatchesScalarSaturatingLoop) {
  Rng rng(29);
  for (std::uint64_t trial = 0; trial < 300; ++trial) {
    Rng sample = rng.fork(trial);
    const bool huge = sample.uniform_int(0, 3) == 0;
    const std::vector<Subtask> hosted = random_hosted(
        sample, static_cast<std::size_t>(sample.uniform_int(1, 8)), huge);
    RtaSoa soa;
    soa.assign(hosted);
    const auto i = static_cast<std::size_t>(
        sample.uniform_int(0, static_cast<std::int64_t>(hosted.size()) - 1));
    const auto hp = std::span<const Subtask>(hosted).first(i);
    const Time jitter = sample.uniform_int(0, 1) == 0
                            ? sample.uniform_int(0, 5000)
                            : kBoundary + sample.uniform_int(-2, 2);
    const Time bound = hosted[i].period;

    // Scalar replica of the pre-kernel robustness fixed point.
    const auto sat_add = [](Time a, Time b) {
      const auto sum = checked_add(a, b);
      return sum ? *sum : kTimeInfinity;
    };
    std::optional<Time> expected;
    if (hosted[i].wcet <= bound) {
      const auto sat_interference = [&](Time t) {
        const auto demand = interference_at(t, hp);
        return demand ? *demand : kTimeInfinity;
      };
      Time r = sat_add(hosted[i].wcet,
                       sat_interference(sat_add(hosted[i].wcet, jitter)));
      while (r <= bound) {
        const Time next =
            sat_add(hosted[i].wcet, sat_interference(sat_add(r, jitter)));
        if (next == r) {
          expected = r;
          break;
        }
        r = next;
      }
    }
    ASSERT_EQ(kernel_jitter_response(hosted, soa, i, hosted[i].wcet, bound,
                                     jitter),
              expected)
        << "trial " << trial;
  }
}

// ------------------------------------------- scratch scheduling points --

TEST(SchedulingPoints, ScratchOverloadMatchesAllocatingOverload) {
  Rng rng(31);
  std::vector<Time> scratch;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    Rng sample = rng.fork(trial);
    // Periods are drawn within ~64x of the deadline so the point sets stay
    // small even at 2^31-scale deadlines (the count grows as D/T_j).
    const bool huge = sample.uniform_int(0, 7) == 0;
    const Time deadline = huge ? kBoundary + sample.uniform_int(-2, 2)
                               : sample.uniform_int(1, 20'000);
    std::vector<Subtask> interferers;
    const auto n = static_cast<std::size_t>(sample.uniform_int(0, 6));
    for (std::size_t i = 0; i < n; ++i) {
      const Time period =
          sample.uniform_int(std::max<Time>(1, deadline / 64), deadline + 3);
      interferers.push_back(
          make_subtask(i, sample.uniform_int(1, period), period, period));
    }
    const std::vector<Time> allocated = scheduling_points(deadline, interferers);
    scheduling_points(deadline, interferers, scratch);
    ASSERT_EQ(scratch, allocated) << "trial " << trial;
    ASSERT_TRUE(std::is_sorted(scratch.begin(), scratch.end()));
    ASSERT_EQ(std::adjacent_find(scratch.begin(), scratch.end()),
              scratch.end());
  }
}

}  // namespace
}  // namespace rmts
