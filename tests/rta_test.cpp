// Exact response-time analysis: literature examples, boundary cases, and
// property-style randomized cross-checks against time-demand analysis.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "rta/rta.hpp"

namespace rmts {
namespace {

std::vector<Subtask> as_subtasks(const TaskSet& set) {
  std::vector<Subtask> subtasks;
  for (std::size_t rank = 0; rank < set.size(); ++rank) {
    subtasks.push_back(whole_subtask(set[rank], rank));
  }
  return subtasks;
}

// Liu & Layland's running example: (20,100), (40,150), (100,350).
TEST(Rta, LiuLaylandExampleResponseTimes) {
  const TaskSet set = TaskSet::from_pairs({{20, 100}, {40, 150}, {100, 350}});
  const auto subtasks = as_subtasks(set);
  const ProcessorRta rta = analyze_processor(subtasks);
  ASSERT_TRUE(rta.schedulable);
  EXPECT_EQ(rta.response[0], 20);
  EXPECT_EQ(rta.response[1], 60);
  EXPECT_EQ(rta.response[2], 240);
}

// Classic over-utilized pair: (26,70), (62,100); U = 0.991, R_2 = 114 > 100.
TEST(Rta, OverloadedPairDetected) {
  const TaskSet set = TaskSet::from_pairs({{26, 70}, {62, 100}});
  const auto subtasks = as_subtasks(set);
  const ProcessorRta rta = analyze_processor(subtasks);
  EXPECT_FALSE(rta.schedulable);
  EXPECT_EQ(rta.first_miss, 1u);
}

// A fully harmonic set at exactly 100% utilization is schedulable.
TEST(Rta, HarmonicFullUtilization) {
  const TaskSet set = TaskSet::from_pairs({{1, 2}, {1, 4}, {2, 8}});
  EXPECT_TRUE(rm_schedulable_uniprocessor(set));
  const ProcessorRta rta = analyze_processor(as_subtasks(set));
  EXPECT_EQ(rta.response[2], 8);  // finishes exactly at its deadline
}

TEST(Rta, HighestPriorityResponseIsWcet) {
  const RtaOutcome outcome = response_time(17, 100, {});
  EXPECT_TRUE(outcome.schedulable);
  EXPECT_EQ(outcome.response, 17);
}

TEST(Rta, WcetBeyondDeadlineFailsImmediately) {
  const RtaOutcome outcome = response_time(101, 100, {});
  EXPECT_FALSE(outcome.schedulable);
}

TEST(Rta, SyntheticDeadlineShorterThanPeriodIsRespected) {
  // Same interference, tighter deadline: schedulable at D=60, not at D=59.
  const TaskSet set = TaskSet::from_pairs({{20, 100}});
  const auto hp = as_subtasks(set);
  EXPECT_TRUE(response_time(40, 60, hp).schedulable);
  EXPECT_FALSE(response_time(41, 60, hp).schedulable);  // R = 61 > 60
}

TEST(Rta, ResponseMonotoneInInterferenceWcet) {
  for (Time c = 1; c <= 50; ++c) {
    const Subtask hp{0, 0, 0, c, 100, 100, SubtaskKind::kWhole};
    const Subtask hp_prev{0, 0, 0, c - 1, 100, 100, SubtaskKind::kWhole};
    const RtaOutcome with_c = response_time(30, 1000, {&hp, 1});
    const RtaOutcome with_less = response_time(30, 1000, {&hp_prev, 1});
    ASSERT_TRUE(with_c.schedulable);
    EXPECT_GE(with_c.response, with_less.response);
  }
}

TEST(Rta, EmptyProcessorSchedulable) {
  EXPECT_TRUE(processor_schedulable({}));
}

TEST(Rta, FirstMissIndexReported) {
  // Highest-priority task hogs the processor; the second one misses.
  const TaskSet set = TaskSet::from_pairs({{90, 100}, {20, 105}});
  const ProcessorRta rta = analyze_processor(as_subtasks(set));
  EXPECT_FALSE(rta.schedulable);
  EXPECT_EQ(rta.first_miss, 1u);
  EXPECT_EQ(rta.response[0], 90);
}

TEST(SchedulingPoints, ContainsDeadlineAndArrivals) {
  const TaskSet set = TaskSet::from_pairs({{5, 30}, {5, 45}});
  const auto hp = as_subtasks(set);
  const std::vector<Time> points = scheduling_points(100, hp);
  // Multiples of 30 and 45 below 100, plus 100 itself.
  const std::vector<Time> expected{30, 45, 60, 90, 100};
  EXPECT_EQ(points, expected);
}

TEST(SchedulingPoints, DeduplicatesCoincidingArrivals) {
  const TaskSet set = TaskSet::from_pairs({{5, 30}, {5, 60}});
  const auto hp = as_subtasks(set);
  const std::vector<Time> points = scheduling_points(90, hp);
  const std::vector<Time> expected{30, 60, 90};
  EXPECT_EQ(points, expected);
}

TEST(InterferenceAt, CeilingSemantics) {
  const TaskSet set = TaskSet::from_pairs({{10, 100}});
  const auto hp = as_subtasks(set);
  EXPECT_EQ(interference_at(1, hp), std::optional<Time>{10});
  EXPECT_EQ(interference_at(100, hp), std::optional<Time>{10});
  EXPECT_EQ(interference_at(101, hp), std::optional<Time>{20});
}

TEST(InterferenceAt, OverflowIsTaggedNotSaturated) {
  // At overflow scale the demand is reported as nullopt, not as a
  // kTimeInfinity value a caller could accidentally keep computing with
  // (wcet + kTimeInfinity is signed-overflow UB).
  const Time huge = kTimeInfinity / 2;
  const std::vector<Subtask> hp{
      {0, 0, 0, huge, 3, huge, SubtaskKind::kWhole}};
  EXPECT_EQ(interference_at(huge, hp), std::nullopt);
  EXPECT_EQ(interference_at(3, hp), std::optional<Time>{huge});
}

// Cross-check: RTA schedulability == time-demand analysis over the testing
// set, on randomized workloads.  This ties the two exact formulations
// (fixed point vs scheduling points) together; MaxSplit relies on both.
TEST(Rta, AgreesWithTimeDemandAnalysis) {
  Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 6));
    std::vector<std::pair<Time, Time>> pairs;
    for (std::size_t i = 0; i < n; ++i) {
      const Time period = rng.uniform_int(20, 400);
      const Time wcet = rng.uniform_int(1, period / 2);
      pairs.emplace_back(wcet, period);
    }
    const TaskSet set = TaskSet::from_pairs(pairs);
    const auto subtasks = as_subtasks(set);
    for (std::size_t i = 0; i < subtasks.size(); ++i) {
      const auto hp = std::span<const Subtask>(subtasks).first(i);
      const RtaOutcome rta =
          response_time(subtasks[i].wcet, subtasks[i].deadline, hp);
      bool tda = false;
      for (const Time t : scheduling_points(subtasks[i].deadline, hp)) {
        const auto demand = interference_at(t, hp);
        if (demand && subtasks[i].wcet + *demand <= t) {
          tda = true;
          break;
        }
      }
      ASSERT_EQ(rta.schedulable, tda)
          << "trial " << trial << " task " << i << "\n"
          << set.describe();
      if (!rta.schedulable) break;  // analyze only up to the first miss
    }
  }
}

// Regression: overflow-scale parameters must degrade to "not schedulable",
// not to signed-overflow UB.  The seeded one-job sum alone exceeds int64
// here; the seed implementation wrapped negative and could report a bogus
// fixed point.
TEST(Rta, OverflowScaleParametersReportUnschedulable) {
  const Time huge = kTimeInfinity / 2;
  const Subtask hp{0, 0, 0, huge, huge + 1, huge + 1, SubtaskKind::kWhole};
  // wcet + one interfering job = kTimeInfinity/2 + kTimeInfinity/2 + 2 > max.
  const RtaOutcome seed_overflow =
      response_time(huge + 2, kTimeInfinity - 1, {&hp, 1});
  EXPECT_FALSE(seed_overflow.schedulable);
  EXPECT_EQ(seed_overflow.response, kTimeInfinity);
}

// Regression: overflow inside the interference sum (many heavy interferers
// whose ceil(r/T)*C terms overflow before any iterate exceeds the deadline).
TEST(Rta, OverflowInInterferenceSumReportsUnschedulable) {
  const Time quarter = kTimeInfinity / 4;
  const std::vector<Subtask> hp{
      {0, 0, 0, quarter, quarter, quarter, SubtaskKind::kWhole},
      {1, 1, 0, quarter, quarter + 1, quarter + 1, SubtaskKind::kWhole},
      {2, 2, 0, quarter, quarter + 2, quarter + 2, SubtaskKind::kWhole}};
  const RtaOutcome outcome = response_time(quarter, kTimeInfinity - 1, hp);
  EXPECT_FALSE(outcome.schedulable);
}

// Near-overflow parameters that *are* schedulable must stay exact: the
// checked path must not reject representable fixed points.
TEST(Rta, NearOverflowSchedulableStaysExact) {
  const Time big = kTimeInfinity / 4;
  const Subtask hp{0, 0, 0, big, kTimeInfinity - 1, kTimeInfinity - 1,
                   SubtaskKind::kWhole};
  const RtaOutcome outcome = response_time(big, kTimeInfinity - 1, {&hp, 1});
  ASSERT_TRUE(outcome.schedulable);
  EXPECT_EQ(outcome.response, 2 * big);
}

// Seeded iteration: any valid lower-bound seed converges to the same fixed
// point as the unseeded run, and the extra-interferer overload equals
// analysis over the materialized set.
TEST(Rta, SeededAndExtraVariantsMatchBaseline) {
  const TaskSet set = TaskSet::from_pairs({{20, 100}, {40, 150}});
  const auto hp = as_subtasks(set);
  const RtaOutcome base = response_time(100, 350, hp);
  ASSERT_TRUE(base.schedulable);
  for (const Time seed : {Time{0}, Time{100}, base.response - 1, base.response}) {
    EXPECT_EQ(response_time_seeded(100, 350, hp, seed).response, base.response);
  }
  const Subtask extra{2, 7, 0, 40, 150, 150, SubtaskKind::kWhole};
  const std::vector<Subtask> first(hp.begin(), hp.begin() + 1);
  const RtaOutcome with = response_time_with(100, 350, first, extra, 60);
  EXPECT_EQ(with.schedulable, base.schedulable);
  EXPECT_EQ(with.response, base.response);
}

// ceil_div must be exact for numerators near kTimeInfinity (the textbook
// (n + d - 1) / d form overflowed there).
TEST(Rta, CeilDivNearInfinity) {
  EXPECT_EQ(ceil_div(kTimeInfinity, kTimeInfinity), 1);
  EXPECT_EQ(ceil_div(kTimeInfinity, 2), kTimeInfinity / 2 + 1);
  EXPECT_EQ(ceil_div(kTimeInfinity - 1, kTimeInfinity), 1);
  EXPECT_EQ(ceil_div(0, kTimeInfinity), 0);
}

// The fixed point, when it exists, is the *least* solution: no smaller t
// satisfies wcet + interference(t) <= t.
TEST(Rta, FixedPointIsMinimal) {
  Rng rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    const Time period_a = rng.uniform_int(10, 60);
    const Time period_b = rng.uniform_int(10, 60);
    const std::vector<Subtask> hp{
        {0, 0, 0, rng.uniform_int(1, period_a / 2), period_a, period_a,
         SubtaskKind::kWhole},
        {1, 1, 0, rng.uniform_int(1, period_b / 2), period_b, period_b,
         SubtaskKind::kWhole}};
    const Time wcet = rng.uniform_int(1, 20);
    const RtaOutcome outcome = response_time(wcet, 2000, hp);
    if (!outcome.schedulable) continue;
    EXPECT_EQ(wcet + interference_at(outcome.response, hp).value(),
              outcome.response);
    for (Time t = std::max<Time>(1, outcome.response - 25); t < outcome.response; ++t) {
      EXPECT_GT(wcet + interference_at(t, hp).value(), t);
    }
  }
}

}  // namespace
}  // namespace rmts
