// Task-set text I/O and the CLI front end.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "io/cli_app.hpp"
#include "io/taskset_io.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

TEST(TaskSetIo, ParsesTasksCommentsAndBlanks) {
  std::istringstream input(
      "# header comment\n"
      "\n"
      "875 2500\n"
      "1500 5000  # trailing comment\n"
      "   750   2500\n");
  const TaskSet tasks = read_task_set(input);
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].wcet, 875);   // file order id 0, shortest period first
  EXPECT_EQ(tasks[1].wcet, 750);
  EXPECT_EQ(tasks[2].period, 5000);
}

TEST(TaskSetIo, RejectsMalformedLines) {
  std::istringstream missing_field("875\n");
  EXPECT_THROW((void)read_task_set(missing_field), InvalidTaskError);
  std::istringstream extra_field("875 2500 99\n");
  EXPECT_THROW((void)read_task_set(extra_field), InvalidTaskError);
  std::istringstream garbage("abc def\n");
  EXPECT_THROW((void)read_task_set(garbage), InvalidTaskError);
}

TEST(TaskSetIo, RejectsInvalidParameters) {
  std::istringstream zero_period("10 0\n");
  EXPECT_THROW((void)read_task_set(zero_period), InvalidTaskError);
  std::istringstream overutilized("20 10\n");
  EXPECT_THROW((void)read_task_set(overutilized), InvalidTaskError);
}

TEST(TaskSetIo, RoundTripsThroughText) {
  const TaskSet original = TaskSet::from_pairs({{875, 2500}, {1500, 5000}});
  std::ostringstream written;
  write_task_set(written, original);
  std::istringstream reread_input(written.str());
  const TaskSet reread = read_task_set(reread_input);
  ASSERT_EQ(reread.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread[i].wcet, original[i].wcet);
    EXPECT_EQ(reread[i].period, original[i].period);
  }
}

TEST(TaskSetIo, LoadFromMissingFileThrows) {
  EXPECT_THROW((void)load_task_set("/nonexistent/path/tasks.txt"),
               InvalidConfigError);
}

TEST(TaskSetIo, ToleratesCrlfLineEndings) {
  std::istringstream input(
      "# dos file\r\n"
      "875 2500\r\n"
      "\r\n"
      "750 2500\r\n");
  const TaskSet tasks = read_task_set(input);
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].wcet, 875);
  EXPECT_EQ(tasks[1].wcet, 750);
}

/// Expects `input` to raise InvalidTaskError whose message names line
/// `line_number`.
void expect_line_error(const std::string& input, int line_number) {
  std::istringstream stream(input);
  try {
    (void)read_task_set(stream);
    FAIL() << "accepted: " << input;
  } catch (const InvalidTaskError& error) {
    EXPECT_NE(std::string(error.what())
                  .find("line " + std::to_string(line_number)),
              std::string::npos)
        << error.what();
  }
}

TEST(TaskSetIo, RejectsOverflowingValuesWithLineNumber) {
  expect_line_error("99999999999999999999999999 5000\n", 1);
  expect_line_error("10 100\n20 99999999999999999999999999\n", 2);
}

TEST(TaskSetIo, RejectsTrailingGarbageWithLineNumber) {
  expect_line_error("2500x 5000\n", 1);
  expect_line_error("10 100\n20 200z\n", 2);
  expect_line_error("10 100\n20 200 300\n", 2);
}

TEST(TaskSetIo, RejectsParameterViolationsWithLineNumber) {
  expect_line_error("0 100\n", 1);
  expect_line_error("-5 100\n", 1);
  expect_line_error("10 100\n10 0\n", 2);
  expect_line_error("10 100\n10 -100\n", 2);
  expect_line_error("10 100\n300 200\n", 2);  // wcet > period
}

TEST(TaskSetIo, RandomRoundTripProperty) {
  // Any generated workload survives write -> read unchanged (RM order is
  // canonical on both sides).
  Rng rng(99);
  WorkloadConfig config;
  config.tasks = 10;
  config.processors = 4;
  config.normalized_utilization = 0.6;
  for (int i = 0; i < 25; ++i) {
    const TaskSet original = generate(rng, config);
    std::ostringstream written;
    write_task_set(written, original);
    std::istringstream reread_input(written.str());
    const TaskSet reread = read_task_set(reread_input);
    ASSERT_EQ(reread.size(), original.size());
    for (std::size_t t = 0; t < original.size(); ++t) {
      EXPECT_EQ(reread[t].wcet, original[t].wcet);
      EXPECT_EQ(reread[t].period, original[t].period);
    }
  }
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "cli_tasks.txt";
    std::ofstream file(path_);
    // Harmonic, 3 tasks, U = 2.25: needs splitting on 3 processors at
    // U_M = 0.75.
    file << "750 1000\n750 1000\n1500 2000\n";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  int run(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return run_cli(args, out_, err_);
  }

  std::string path_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, PartitionsAndSimulates) {
  const int code = run({path_, "-m", "3", "-a", "rmts", "-b", "hc",
                        "--simulate", "--bounds"});
  EXPECT_EQ(code, 0) << err_.str();
  const std::string output = out_.str();
  EXPECT_NE(output.find("SUCCESS"), std::string::npos);
  EXPECT_NE(output.find("no deadline misses"), std::string::npos);
  EXPECT_NE(output.find("HC = 1"), std::string::npos);
}

TEST_F(CliTest, ReportsUnschedulable) {
  const int code = run({path_, "-m", "2"});  // U_M = 1.125
  EXPECT_EQ(code, 1);
  EXPECT_NE(out_.str().find("FAILURE"), std::string::npos);
}

TEST_F(CliTest, EveryAlgorithmRuns) {
  for (const char* algorithm :
       {"rmts", "rmts-light", "spa1", "spa2", "prm-ff", "edf-ts"}) {
    const int code = run({path_, "-m", "4", "-a", algorithm, "--simulate"});
    EXPECT_EQ(code, 0) << algorithm << ": " << err_.str() << out_.str();
  }
}

TEST_F(CliTest, GanttChartRendered) {
  const int code = run({path_, "-m", "3", "--gantt"});
  EXPECT_EQ(code, 0) << err_.str();
  const std::string output = out_.str();
  EXPECT_NE(output.find("one column ="), std::string::npos);
  EXPECT_NE(output.find("P1 "), std::string::npos);
  EXPECT_NE(output.find("P3 "), std::string::npos);
}

TEST_F(CliTest, FaultInjectionFlagsDriveTheSimulation) {
  // Budget enforcement contains a 2x overrun: exit 0, no misses, aborts
  // reported in the fault counter line.
  const int code = run({path_, "-m", "3", "--fault-factor", "2.0",
                        "--fault-seed", "7", "--containment", "budget"});
  EXPECT_EQ(code, 0) << err_.str();
  const std::string output = out_.str();
  EXPECT_NE(output.find("no deadline misses"), std::string::npos) << output;
  EXPECT_NE(output.find("fault injection:"), std::string::npos) << output;
  EXPECT_NE(output.find("degraded"), std::string::npos) << output;

  // The same overrun uncontained misses: exit 1.
  EXPECT_EQ(run({path_, "-m", "3", "--fault-factor", "2.0"}), 1);
}

TEST_F(CliTest, RobustnessModeReportsMargins) {
  const int code = run({path_, "-m", "3", "--robustness"});
  EXPECT_EQ(code, 0) << err_.str();
  const std::string output = out_.str();
  EXPECT_NE(output.find("robustness margins"), std::string::npos) << output;
  EXPECT_NE(output.find("overrun factor: simulated"), std::string::npos)
      << output;
  EXPECT_NE(output.find("release jitter: simulated"), std::string::npos)
      << output;
}

TEST_F(CliTest, RejectsBadFaultArguments) {
  EXPECT_EQ(run({path_, "-m", "3", "--containment", "nope"}), 2);
  EXPECT_EQ(run({path_, "-m", "3", "--simulate", "--fault-prob", "2.0"}), 2);
  EXPECT_EQ(run({path_, "-m", "3", "--fail-proc", "9", "--simulate"}), 2);
  EXPECT_EQ(run({path_, "-m", "3", "--fault-factor"}), 2);  // missing value
}

TEST_F(CliTest, UsageErrors) {
  EXPECT_EQ(run({}), 2);
  EXPECT_EQ(run({path_}), 2);                          // missing -m
  EXPECT_EQ(run({path_, "-m", "2", "-a", "nope"}), 2);  // bad algorithm
  EXPECT_EQ(run({path_, "-m", "2", "-b", "nope"}), 2);  // bad bound
  EXPECT_EQ(run({path_, "-m", "2", "--frobnicate"}), 2);
  EXPECT_EQ(run({"/nonexistent.txt", "-m", "2"}), 2);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
}

}  // namespace
}  // namespace rmts
