// Property tests for the shared log-linear HDR histogram
// (common/histogram.hpp): bucket geometry, interpolated quantiles vs
// exact sorted-sample ground truth, exact merges, and the concurrent
// flavour's extrema under contention.
#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rmts {
namespace {

// ---- bucket geometry ------------------------------------------------------

std::vector<std::uint64_t> geometry_probes() {
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < 4096; ++v) values.push_back(v);
  for (unsigned e = 12; e < 64; ++e) {
    const std::uint64_t p = std::uint64_t{1} << e;
    values.push_back(p - 1);
    values.push_back(p);
    values.push_back(p + 1);
    values.push_back(p + (p >> 1));  // mid-octave
  }
  values.push_back(~std::uint64_t{0});
  return values;
}

TEST(HistogramLayout, IndexIsMonotoneAndBoundsRoundTrip) {
  for (unsigned sb = HistogramLayout::kMinSubBits;
       sb <= HistogramLayout::kMaxSubBits; ++sb) {
    std::size_t previous = 0;
    for (const std::uint64_t v : geometry_probes()) {
      const std::size_t index = HistogramLayout::bucket_index(v, sb);
      ASSERT_LT(index, HistogramLayout::bucket_count(sb));
      ASSERT_GE(index, previous) << "non-monotone at value " << v;
      previous = index;
      const std::uint64_t lower = HistogramLayout::bucket_lower(index, sb);
      const std::uint64_t upper = HistogramLayout::bucket_upper(index, sb);
      ASSERT_LE(lower, v);
      ASSERT_GE(upper, v);
      // The bounds land back in the same bucket.
      ASSERT_EQ(HistogramLayout::bucket_index(lower, sb), index);
      ASSERT_EQ(HistogramLayout::bucket_index(upper, sb), index);
    }
  }
}

TEST(HistogramLayout, BucketWidthRespectsPrecision) {
  for (unsigned sb = HistogramLayout::kMinSubBits;
       sb <= HistogramLayout::kMaxSubBits; ++sb) {
    const double precision = 1.0 / static_cast<double>(std::uint64_t{1} << sb);
    for (const std::uint64_t v : geometry_probes()) {
      if (v == 0) continue;
      const std::size_t index = HistogramLayout::bucket_index(v, sb);
      const double lower =
          static_cast<double>(HistogramLayout::bucket_lower(index, sb));
      const double upper =
          static_cast<double>(HistogramLayout::bucket_upper(index, sb));
      ASSERT_LE(upper - lower, precision * lower + 1e-9)
          << "bucket " << index << " too wide at sub_bits " << sb;
    }
  }
}

// ---- quantile accuracy ----------------------------------------------------

/// Exact nearest-rank quantile of a sorted sample, matching the
/// definition Histogram::quantile approximates.
double exact_quantile(const std::vector<std::uint64_t>& sorted, double p) {
  const auto rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(p * static_cast<double>(sorted.size()))));
  return static_cast<double>(sorted[rank - 1]);
}

void expect_quantiles_within_precision(std::vector<std::uint64_t> samples,
                                       unsigned sub_bits) {
  Histogram h(sub_bits);
  for (const std::uint64_t v : samples) h.record(v);
  std::sort(samples.begin(), samples.end());
  for (const double p :
       {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    const double exact = exact_quantile(samples, p);
    const double approx = h.quantile(p);
    // Relative error bounded by the bucket width at the value, i.e. the
    // configured precision (+1 absolute slack for unit-bucket rounding).
    EXPECT_LE(std::abs(approx - exact), h.precision() * exact + 1.0)
        << "p=" << p << " sub_bits=" << sub_bits << " exact=" << exact
        << " approx=" << approx;
  }
  EXPECT_EQ(h.quantile(0.0), static_cast<double>(samples.front()));
  EXPECT_EQ(h.quantile(1.0), static_cast<double>(samples.back()));
}

TEST(Histogram, QuantilesMatchSortedGroundTruthUniform) {
  Rng rng(1);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(static_cast<std::uint64_t>(rng.uniform_int(0, 100000)));
  }
  for (const unsigned sb : {1u, 5u, 8u}) {
    expect_quantiles_within_precision(samples, sb);
  }
}

TEST(Histogram, QuantilesMatchSortedGroundTruthLogNormal) {
  Rng rng(2);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const double u1 = std::max(rng.uniform(), 1e-12);
    const double u2 = rng.uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    samples.push_back(
        static_cast<std::uint64_t>(std::llround(500.0 * std::exp(z))));
  }
  for (const unsigned sb : {1u, 5u, 8u}) {
    expect_quantiles_within_precision(samples, sb);
  }
}

TEST(Histogram, QuantilesMatchSortedGroundTruthBucketEdges) {
  // Adversarial population sitting exactly on power-of-two bucket edges
  // (2^k - 1, 2^k, 2^k + 1): the old power-of-two sketches were off by up
  // to ~50% here.
  Rng rng(3);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const auto k = static_cast<unsigned>(rng.uniform_int(1, 30));
    const std::uint64_t p = std::uint64_t{1} << k;
    const std::int64_t offset = rng.uniform_int(-1, 1);
    samples.push_back(p + static_cast<std::uint64_t>(offset + 1) - 1);
  }
  for (const unsigned sb : {1u, 5u, 8u}) {
    expect_quantiles_within_precision(samples, sb);
  }
}

TEST(Histogram, SmallValuesAreExact) {
  // Values below 2^sub_bits land in unit-width buckets: every quantile is
  // the exact sample value, no interpolation error at all.
  Histogram h(5);
  for (std::uint64_t v = 1; v <= 31; ++v) h.record(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 16.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 31.0);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_EQ(h.count(), 31u);
  EXPECT_EQ(h.sum(), 31u * 32u / 2);
}

// ---- merge ----------------------------------------------------------------

TEST(Histogram, MergeIsExact) {
  Rng rng(4);
  Histogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const auto va = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    const auto vb = static_cast<std::uint64_t>(rng.uniform_int(5, 1 << 24));
    a.record(va);
    b.record(vb);
    combined.record(va);
    combined.record(vb);
  }
  a.merge(b);
  EXPECT_EQ(a.counts(), combined.counts());
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (const double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(p), combined.quantile(p));
  }
}

TEST(Histogram, MergeIsAssociative) {
  Rng rng(5);
  Histogram parts[3];
  for (int i = 0; i < 3000; ++i) {
    parts[static_cast<std::size_t>(i % 3)].record(
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 22)));
  }
  // (a + b) + c
  Histogram left(parts[0].sub_bits());
  left.merge(parts[0]);
  left.merge(parts[1]);
  left.merge(parts[2]);
  // a + (b + c)
  Histogram bc(parts[1].sub_bits());
  bc.merge(parts[1]);
  bc.merge(parts[2]);
  Histogram right(parts[0].sub_bits());
  right.merge(parts[0]);
  right.merge(bc);
  EXPECT_EQ(left.counts(), right.counts());
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
}

TEST(Histogram, MergePrecisionMismatchThrows) {
  Histogram coarse(2);
  Histogram fine(6);
  fine.record(100);
  EXPECT_THROW(coarse.merge(fine), InvalidConfigError);
}

TEST(Histogram, InvalidSubBitsThrows) {
  EXPECT_THROW(Histogram h(0), InvalidConfigError);
  EXPECT_THROW(Histogram h(9), InvalidConfigError);
}

TEST(Histogram, WeightedRecordMatchesRepeated) {
  Histogram weighted, repeated;
  weighted.record(1000, 7);
  weighted.record(2000, 3);
  for (int i = 0; i < 7; ++i) repeated.record(1000);
  for (int i = 0; i < 3; ++i) repeated.record(2000);
  EXPECT_EQ(weighted.counts(), repeated.counts());
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_EQ(weighted.sum(), repeated.sum());
}

// ---- concurrent flavour ---------------------------------------------------

// ---- interval deltas ------------------------------------------------------

TEST(Histogram, DeltaSinceRecoversTheIntervalExactly) {
  // A monotonically growing histogram (e.g. a metrics snapshot) minus an
  // earlier snapshot of itself is exactly the histogram of the values
  // recorded in between.
  Histogram cumulative;
  Histogram interval_truth;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    cumulative.record(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 16)));
  }
  const Histogram earlier = cumulative;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    cumulative.record(v);
    interval_truth.record(v);
  }

  const Histogram delta = cumulative.delta_since(earlier);
  EXPECT_EQ(delta.counts(), interval_truth.counts());
  EXPECT_EQ(delta.count(), interval_truth.count());
  EXPECT_EQ(delta.sum(), interval_truth.sum());
  // min/max are reconstructed from bucket bounds, so they bracket (and
  // may widen to) the true extrema's buckets; quantiles stay within the
  // sketch's precision of the interval's ground truth.
  EXPECT_LE(delta.min(), interval_truth.min());
  EXPECT_GE(delta.max(), interval_truth.max());
  for (const double p : {0.5, 0.9, 0.99}) {
    const double got = delta.quantile(p);
    const double want = interval_truth.quantile(p);
    EXPECT_NEAR(got, want, want * 2.0 * interval_truth.precision() + 1.0)
        << "p=" << p;
  }
}

TEST(Histogram, DeltaSinceOfIdenticalSnapshotsIsEmpty) {
  Histogram h;
  h.record(100);
  h.record(5000);
  const Histogram delta = h.delta_since(h);
  EXPECT_EQ(delta.count(), 0u);
  EXPECT_EQ(delta.sum(), 0u);
}

TEST(Histogram, DeltaSincePrecisionMismatchThrows) {
  const Histogram a(5);
  const Histogram b(4);
  EXPECT_THROW((void)a.delta_since(b), InvalidConfigError);
}

TEST(AtomicHistogram, ConcurrentRecordKeepsExactCountAndExtrema) {
  // Regression for the lossy-max pattern: under contention a plain
  // relaxed store can lose the true maximum; the CAS loop must not.
  AtomicHistogram h;
  constexpr std::uint64_t kPerThread = 50'000;
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(100 + t);
      for (std::uint64_t i = 0; i < kPerThread - 1; ++i) {
        h.record(static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20)));
      }
      // Every thread races to publish a candidate maximum at the end.
      h.record((std::uint64_t{1} << 21) + t);
    });
  }
  for (std::thread& t : threads) t.join();

  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), kPerThread * kThreads);
  EXPECT_EQ(snap.max(), (std::uint64_t{1} << 21) + kThreads - 1);
  EXPECT_GE(snap.min(), 1u);
  EXPECT_EQ(h.max(), snap.max());
}

TEST(AtomicHistogram, SnapshotMatchesPlainRecording) {
  AtomicHistogram atomic;
  Histogram plain;
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 18));
    atomic.record(v);
    plain.record(v);
  }
  const Histogram snap = atomic.snapshot();
  EXPECT_EQ(snap.counts(), plain.counts());
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_EQ(snap.sum(), plain.sum());
  EXPECT_EQ(snap.min(), plain.min());
  EXPECT_EQ(snap.max(), plain.max());
}

}  // namespace
}  // namespace rmts
