// End-to-end integration: every algorithm's accepted partitions are
// structurally valid and run without deadline misses in the discrete-event
// simulator (paper Lemma 4), across randomized workloads with bounded
// hyperperiods.  This is the repo's ground-truth soundness gate.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "bounds/harmonic.hpp"
#include "bounds/ll_bound.hpp"
#include "common/rng.hpp"
#include "helpers.hpp"
#include "partition/baselines.hpp"
#include "partition/rmts.hpp"
#include "partition/rmts_light.hpp"
#include "partition/spa.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

WorkloadConfig grid_workload(std::size_t tasks, std::size_t processors,
                             double max_task_utilization) {
  WorkloadConfig config;
  config.tasks = tasks;
  config.processors = processors;
  config.period_model = PeriodModel::kGrid;
  config.period_grid = small_hyperperiod_grid();
  config.max_task_utilization = max_task_utilization;
  return config;
}

// Accepted => simulation-clean, for the exact-RTA algorithms, on light and
// heavy mixes across a load sweep.
TEST(Integration, RmtsFamilyAcceptedImpliesNoMiss) {
  Rng rng(2012);
  const RmtsLight light;
  const Rmts rmts(std::make_shared<LiuLaylandBound>());
  int validated = 0;
  for (int trial = 0; trial < 120; ++trial) {
    WorkloadConfig config = grid_workload(12, 3, 0.8);
    config.normalized_utilization = 0.5 + 0.45 * (trial % 10) / 10.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    for (const Partitioner* algorithm :
         std::initializer_list<const Partitioner*>{&light, &rmts}) {
      const Assignment a = algorithm->partition(tasks, config.processors);
      if (!a.success) continue;
      ++validated;
      testing::expect_valid_partition(tasks, a, /*check_rta=*/true,
                                      /*check_body_top_priority=*/false);
      testing::expect_simulation_clean(tasks, a);
    }
  }
  EXPECT_GT(validated, 60);
}

// SPA theorems at run time: SPA1 accepted partitions of LIGHT sets with
// U_M <= Theta are miss-free; same for SPA2 on arbitrary sets.
TEST(Integration, SpaAcceptedWithinTheoremPremisesImpliesNoMiss) {
  Rng rng(2010);
  const Spa1 spa1;
  const Spa2 spa2;
  int validated = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 12;
    const double theta = liu_layland_theta(n);

    WorkloadConfig light_config = grid_workload(n, 3, light_task_threshold(n));
    light_config.normalized_utilization = 0.3 + (theta - 0.31) * (trial % 10) / 10.0;
    Rng sample_a = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet light_set = generate(sample_a, light_config);
    if (light_set.normalized_utilization(3) <= theta) {
      const Assignment a = spa1.partition(light_set, 3);
      if (a.success) {
        ++validated;
        testing::expect_simulation_clean(light_set, a);
      }
    }

    WorkloadConfig any_config = grid_workload(n, 3, 0.9);
    any_config.normalized_utilization = light_config.normalized_utilization;
    Rng sample_b = rng.fork(static_cast<std::uint64_t>(trial) + 100000);
    const TaskSet any_set = generate(sample_b, any_config);
    if (any_set.normalized_utilization(3) <= theta) {
      const Assignment a = spa2.partition(any_set, 3);
      if (a.success) {
        ++validated;
        testing::expect_simulation_clean(any_set, a);
      }
    }
  }
  EXPECT_GT(validated, 100);
}

// Strict-partitioning baselines with exact RTA admission are sound too.
TEST(Integration, PartitionedRmAcceptedImpliesNoMiss) {
  Rng rng(1973);
  const PartitionedRm ff(FitPolicy::kFirstFit, TaskOrder::kDecreasingUtilization,
                         Admission::kExactRta);
  int validated = 0;
  for (int trial = 0; trial < 60; ++trial) {
    WorkloadConfig config = grid_workload(10, 3, 0.7);
    config.normalized_utilization = 0.4 + 0.4 * (trial % 6) / 6.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = ff.partition(tasks, 3);
    if (!a.success) continue;
    ++validated;
    testing::expect_simulation_clean(tasks, a);
  }
  EXPECT_GT(validated, 25);
}

// The headline average-case claim (Section I): RM-TS accepts sets well
// above Theta(N) where SPA2 has already collapsed.
TEST(Integration, RmtsBeatsSpa2AboveTheta) {
  Rng rng(26);
  const Rmts rmts(std::make_shared<LiuLaylandBound>());
  const Spa2 spa2;
  WorkloadConfig config = grid_workload(16, 4, 0.4);
  config.normalized_utilization = 0.85;  // Theta(16) = 0.713
  int rmts_accepted = 0;
  int spa2_accepted = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    rmts_accepted += rmts.accepts(tasks, 4);
    spa2_accepted += spa2.accepts(tasks, 4);
  }
  EXPECT_EQ(spa2_accepted, 0);       // threshold admission cannot pass 0.85
  EXPECT_GT(rmts_accepted, 40);      // exact RTA sails through most sets
}

// Splitting earns real capacity: on the same workloads, semi-partitioning
// accepts at least as much as strict partitioning plus finds cases the
// bin-packer cannot place.
TEST(Integration, SplittingBeatsStrictPartitioningOnHeavySets) {
  Rng rng(27);
  const RmtsLight light;
  const PartitionedRm ff(FitPolicy::kFirstFit, TaskOrder::kDecreasingUtilization,
                         Admission::kExactRta);
  WorkloadConfig config = grid_workload(6, 4, 0.75);
  config.normalized_utilization = 0.72;
  int light_accepted = 0;
  int ff_accepted = 0;
  for (int trial = 0; trial < 80; ++trial) {
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    light_accepted += light.accepts(tasks, 4);
    ff_accepted += ff.accepts(tasks, 4);
  }
  EXPECT_GT(light_accepted, ff_accepted);
}

// Migration accounting: split tasks hop exactly (chain length - 1) times
// per completed job.
TEST(Integration, MigrationCountMatchesChainStructure) {
  const TaskSet tasks =
      TaskSet::from_pairs({{600, 1000}, {606, 1010}, {612, 1020}});
  const Assignment a = RmtsLight().partition(tasks, 2);
  ASSERT_TRUE(a.success);
  std::size_t hops = 0;
  for (const auto& [id, chain] : testing::chains_of(a)) {
    hops += chain.size() - 1;
  }
  ASSERT_GT(hops, 0u);
  SimConfig config;
  config.horizon = recommended_horizon(tasks, 20'000'000);
  const SimResult result = simulate(tasks, a, config);
  ASSERT_TRUE(result.schedulable);
  EXPECT_GT(result.migrations, 0u);
  EXPECT_EQ(result.migrations % hops, 0u);  // hops per hyper-periodic batch
}


// Analytical end-to-end bound dominates observation: for every accepted
// RM-TS partition and every task, the simulator's max observed response
// (tail completion - release) is at most the sum of the per-piece RTA
// responses.  This is the soundness behind experiment E12.
TEST(Integration, AnalyticalResponseBoundDominatesObservation) {
  Rng rng(1212);
  const Rmts algorithm(std::make_shared<LiuLaylandBound>());
  int tasks_checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    WorkloadConfig config = grid_workload(16, 4, 0.6);
    config.normalized_utilization = 0.55 + 0.4 * (trial % 10) / 10.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment assignment = algorithm.partition(tasks, 4);
    if (!assignment.success) continue;

    std::map<TaskId, Time> bound;
    for (const auto& processor : assignment.processors) {
      const ProcessorRta rta = analyze_processor(processor.subtasks);
      ASSERT_TRUE(rta.schedulable);
      for (std::size_t i = 0; i < processor.subtasks.size(); ++i) {
        bound[processor.subtasks[i].task_id] += rta.response[i];
      }
    }

    SimConfig sim;
    sim.horizon = recommended_horizon(tasks, 1'000'000);
    const SimResult run = simulate(tasks, assignment, sim);
    ASSERT_TRUE(run.schedulable);
    for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
      if (run.max_response[rank] == 0) continue;
      ++tasks_checked;
      EXPECT_LE(run.max_response[rank], bound.at(tasks[rank].id))
          << "tau_" << tasks[rank].id << " trial " << trial;
    }
  }
  EXPECT_GT(tasks_checked, 400);
}

// Parameterized sweep: every FP partitioner's accepted assignments are
// simulation-clean across a common randomized workload population.
struct AlgorithmCase {
  const char* label;
  std::shared_ptr<const Partitioner> (*make)();
  double max_task_utilization;
};

std::shared_ptr<const Partitioner> make_light() {
  return std::make_shared<RmtsLight>();
}
std::shared_ptr<const Partitioner> make_light_ff() {
  return std::make_shared<RmtsLight>(MaxSplitMethod::kSchedulingPoints,
                                     SelectionPolicy::kFirstFit);
}
std::shared_ptr<const Partitioner> make_light_coarse() {
  return std::make_shared<RmtsLight>(MaxSplitMethod::kSchedulingPoints,
                                     SelectionPolicy::kWorstFit, 50);
}
std::shared_ptr<const Partitioner> make_rmts_ll() {
  return std::make_shared<Rmts>(std::make_shared<LiuLaylandBound>());
}
std::shared_ptr<const Partitioner> make_rmts_hc() {
  return std::make_shared<Rmts>(std::make_shared<HarmonicChainBound>());
}
std::shared_ptr<const Partitioner> make_prm_bf() {
  return std::make_shared<PartitionedRm>(FitPolicy::kBestFit,
                                         TaskOrder::kDecreasingUtilization,
                                         Admission::kExactRta);
}
std::shared_ptr<const Partitioner> make_prm_wf_rm() {
  return std::make_shared<PartitionedRm>(FitPolicy::kWorstFit,
                                         TaskOrder::kRateMonotonic,
                                         Admission::kExactRta);
}

class FpSoundnessTest : public ::testing::TestWithParam<AlgorithmCase> {};

TEST_P(FpSoundnessTest, AcceptedImpliesSimulationClean) {
  const AlgorithmCase& param = GetParam();
  const auto algorithm = param.make();
  Rng rng(4242);
  int validated = 0;
  for (int trial = 0; trial < 50; ++trial) {
    WorkloadConfig config = grid_workload(12, 3, param.max_task_utilization);
    config.normalized_utilization = 0.5 + 0.45 * (trial % 10) / 10.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = algorithm->partition(tasks, 3);
    if (!a.success) continue;
    ++validated;
    testing::expect_simulation_clean(tasks, a);
  }
  EXPECT_GT(validated, 15) << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, FpSoundnessTest,
    ::testing::Values(AlgorithmCase{"rmts_light", &make_light, 0.8},
                      AlgorithmCase{"rmts_light_ff", &make_light_ff, 0.8},
                      AlgorithmCase{"rmts_light_coarse", &make_light_coarse, 0.8},
                      AlgorithmCase{"rmts_ll", &make_rmts_ll, 0.85},
                      AlgorithmCase{"rmts_hc", &make_rmts_hc, 0.85},
                      AlgorithmCase{"prm_bfd", &make_prm_bf, 0.7},
                      AlgorithmCase{"prm_wf_rm", &make_prm_wf_rm, 0.7}),
    [](const ::testing::TestParamInfo<AlgorithmCase>& param_info) {
      return param_info.param.label;
    });

}  // namespace
}  // namespace rmts
