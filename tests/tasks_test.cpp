// Unit tests for the task model: validation, RM ordering, utilization
// accounting, harmonicity, scaling, and subtask construction.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tasks/subtask.hpp"
#include "tasks/task_set.hpp"

namespace rmts {
namespace {

TEST(Task, Utilization) {
  const Task task{25, 100, 0};
  EXPECT_DOUBLE_EQ(task.utilization(), 0.25);
}

TEST(TaskSet, SortsByPeriodThenId) {
  const TaskSet set({Task{1, 300, 0}, Task{1, 100, 1}, Task{1, 200, 2}});
  EXPECT_EQ(set[0].period, 100);
  EXPECT_EQ(set[1].period, 200);
  EXPECT_EQ(set[2].period, 300);
}

TEST(TaskSet, TieBrokenById) {
  const TaskSet set({Task{1, 100, 5}, Task{1, 100, 2}});
  EXPECT_EQ(set[0].id, 2u);
  EXPECT_EQ(set[1].id, 5u);
}

TEST(TaskSet, FromPairsAssignsIdsInInputOrder) {
  const TaskSet set = TaskSet::from_pairs({{10, 200}, {10, 100}});
  EXPECT_EQ(set[0].id, 1u);  // period 100 sorts first, has id 1
  EXPECT_EQ(set[1].id, 0u);
}

TEST(TaskSet, RejectsNonPositivePeriod) {
  EXPECT_THROW(TaskSet({Task{1, 0, 0}}), InvalidTaskError);
  EXPECT_THROW(TaskSet({Task{1, -5, 0}}), InvalidTaskError);
}

TEST(TaskSet, RejectsNonPositiveWcet) {
  EXPECT_THROW(TaskSet({Task{0, 10, 0}}), InvalidTaskError);
  EXPECT_THROW(TaskSet({Task{-1, 10, 0}}), InvalidTaskError);
}

TEST(TaskSet, RejectsOverUtilizedTask) {
  EXPECT_THROW(TaskSet({Task{11, 10, 0}}), InvalidTaskError);
}

TEST(TaskSet, RejectsDuplicateIds) {
  EXPECT_THROW(TaskSet({Task{1, 10, 7}, Task{1, 20, 7}}), InvalidTaskError);
}

TEST(TaskSet, UtilizationAggregates) {
  const TaskSet set = TaskSet::from_pairs({{25, 100}, {50, 100}});
  EXPECT_DOUBLE_EQ(set.total_utilization(), 0.75);
  EXPECT_DOUBLE_EQ(set.normalized_utilization(3), 0.25);
  EXPECT_DOUBLE_EQ(set.max_utilization(), 0.5);
}

TEST(TaskSet, AllLighterThan) {
  const TaskSet set = TaskSet::from_pairs({{25, 100}, {30, 100}});
  EXPECT_TRUE(set.all_lighter_than(0.3));
  EXPECT_FALSE(set.all_lighter_than(0.29));
}

TEST(TaskSet, HarmonicDetection) {
  EXPECT_TRUE(TaskSet::from_pairs({{1, 1000}, {1, 2000}, {1, 8000}}).is_harmonic());
  EXPECT_FALSE(TaskSet::from_pairs({{1, 1000}, {1, 3000}, {1, 2000}}).is_harmonic());
  EXPECT_TRUE(TaskSet::from_pairs({{1, 500}}).is_harmonic());
  // Equal periods are mutually harmonic.
  EXPECT_TRUE(TaskSet::from_pairs({{1, 1000}, {2, 1000}}).is_harmonic());
}

TEST(TaskSet, ScaledWcetsRoundsAndClamps) {
  const TaskSet set = TaskSet::from_pairs({{10, 100}, {90, 100}});
  const TaskSet doubled = set.scaled_wcets(2.0);
  EXPECT_EQ(doubled[0].wcet, 20);
  EXPECT_EQ(doubled[1].wcet, 100);  // clamped at the period
  const TaskSet tiny = set.scaled_wcets(0.001);
  EXPECT_EQ(tiny[0].wcet, 1);  // clamped at one tick
}

TEST(TaskSet, DescribeMentionsEveryTask) {
  const TaskSet set = TaskSet::from_pairs({{10, 100}, {20, 200}});
  const std::string text = set.describe();
  EXPECT_NE(text.find("tau_0"), std::string::npos);
  EXPECT_NE(text.find("tau_1"), std::string::npos);
}

TEST(Subtask, WholeSubtaskMirrorsTask) {
  const Task task{30, 120, 9};
  const Subtask s = whole_subtask(task, 4);
  EXPECT_EQ(s.priority, 4u);
  EXPECT_EQ(s.task_id, 9u);
  EXPECT_EQ(s.part, 0);
  EXPECT_EQ(s.wcet, 30);
  EXPECT_EQ(s.period, 120);
  EXPECT_EQ(s.deadline, 120);
  EXPECT_EQ(s.kind, SubtaskKind::kWhole);
}

TEST(Subtask, PriorityComparison) {
  const Subtask high{1, 0, 0, 1, 10, 10, SubtaskKind::kWhole};
  const Subtask low{5, 1, 0, 1, 50, 50, SubtaskKind::kWhole};
  EXPECT_TRUE(high.higher_priority_than(low));
  EXPECT_FALSE(low.higher_priority_than(high));
}

TEST(Subtask, UtilizationUsesParentPeriod) {
  const Subtask s{0, 0, 1, 25, 100, 60, SubtaskKind::kTail};
  EXPECT_DOUBLE_EQ(s.utilization(), 0.25);
}

}  // namespace
}  // namespace rmts
