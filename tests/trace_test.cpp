// Execution traces and Gantt rendering.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace rmts {
namespace {

TEST(RenderGantt, CraftedSegments) {
  // P1: task 0 ('A') for [0,50), idle to 100.  10 columns of 10 ticks.
  std::vector<TraceEvent> trace{
      TraceEvent{TraceEvent::Kind::kRun, 0, 0, 0, 0, false},
      TraceEvent{TraceEvent::Kind::kRun, 50, 0, 0, 0, true},
  };
  const std::string chart = render_gantt(trace, 1, 100, 10);
  EXPECT_NE(chart.find("P1 AAAAA....."), std::string::npos) << chart;
}

TEST(RenderGantt, SplitPiecesLowercase) {
  std::vector<TraceEvent> trace{
      TraceEvent{TraceEvent::Kind::kRun, 0, 0, 2, 1, false},  // part 1 -> 'c'
  };
  const std::string chart = render_gantt(trace, 1, 40, 4);
  EXPECT_NE(chart.find("P1 cccc"), std::string::npos) << chart;
}

TEST(RenderGantt, DegenerateInputs) {
  EXPECT_TRUE(render_gantt({}, 0, 100, 10).empty());
  EXPECT_TRUE(render_gantt({}, 1, 0, 10).empty());
  EXPECT_TRUE(render_gantt({}, 1, 100, 0).empty());
  // No events: all idle.
  const std::string chart = render_gantt({}, 2, 100, 5);
  EXPECT_NE(chart.find("P1 ....."), std::string::npos);
  EXPECT_NE(chart.find("P2 ....."), std::string::npos);
}

TEST(Trace, DisabledByDefault) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}});
  Assignment a;
  a.success = true;
  a.processors.resize(1);
  a.processors[0].subtasks = {whole_subtask(tasks[0], 0)};
  SimConfig config;
  config.horizon = 500;
  EXPECT_TRUE(simulate(tasks, a, config).trace.empty());
}

TEST(Trace, RecordsReleasesRunsAndCompletions) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}});
  Assignment a;
  a.success = true;
  a.processors.resize(1);
  a.processors[0].subtasks = {whole_subtask(tasks[0], 0)};
  SimConfig config;
  config.horizon = 200;
  config.record_trace = true;
  const SimResult result = simulate(tasks, a, config);
  int releases = 0;
  int runs = 0;
  int completions = 0;
  Time previous = 0;
  for (const TraceEvent& event : result.trace) {
    EXPECT_GE(event.time, previous);  // chronological
    previous = event.time;
    switch (event.kind) {
      case TraceEvent::Kind::kRelease: ++releases; break;
      case TraceEvent::Kind::kRun: ++runs; break;
      case TraceEvent::Kind::kComplete: ++completions; break;
      case TraceEvent::Kind::kMiss: FAIL() << "unexpected miss";
      case TraceEvent::Kind::kAbort: FAIL() << "unexpected abort";
      case TraceEvent::Kind::kDemote: FAIL() << "unexpected demotion";
    }
  }
  // Releases at 0, 100, 200; completions at 30, 130; run/idle pairs each
  // period.
  EXPECT_EQ(releases, 3);
  EXPECT_EQ(completions, 2);
  EXPECT_GE(runs, 4);
}

TEST(Trace, MissEventEmitted) {
  const TaskSet tasks = TaskSet::from_pairs({{60, 100}, {50, 100}});
  Assignment a;
  a.success = true;
  a.processors.resize(1);
  a.processors[0].subtasks = {whole_subtask(tasks[0], 0),
                              whole_subtask(tasks[1], 1)};
  SimConfig config;
  config.horizon = 300;
  config.record_trace = true;
  const SimResult result = simulate(tasks, a, config);
  ASSERT_FALSE(result.schedulable);
  bool saw_miss = false;
  for (const TraceEvent& event : result.trace) {
    saw_miss |= (event.kind == TraceEvent::Kind::kMiss);
  }
  EXPECT_TRUE(saw_miss);
}

TEST(Trace, SplitChainShowsBothProcessors) {
  const TaskSet tasks = TaskSet::from_pairs({{50, 100}});
  const Subtask body{0, 0, 0, 20, 100, 100, SubtaskKind::kBody};
  const Subtask tail{0, 0, 1, 30, 100, 80, SubtaskKind::kTail};
  Assignment a;
  a.success = true;
  a.processors.resize(2);
  a.processors[0].subtasks = {body};
  a.processors[1].subtasks = {tail};
  SimConfig config;
  config.horizon = 100;
  config.record_trace = true;
  const SimResult result = simulate(tasks, a, config);
  ASSERT_TRUE(result.schedulable);
  const std::string chart = render_gantt(result.trace, 2, 100, 10);
  // Part 0 ('A') on P1 for [0,20), part 1 ('a') on P2 for [20,50).
  EXPECT_NE(chart.find("P1 AA........"), std::string::npos) << chart;
  EXPECT_NE(chart.find("P2 ..aaa....."), std::string::npos) << chart;
}

}  // namespace
}  // namespace rmts
