// Tests for the cross-layer observability surface: per-endpoint Metrics
// on the shared HDR histogram (interpolated quantiles, exact concurrent
// max), the stage tracer's aggregation, the Prometheus-style exposition
// (JSON `metrics` op and raw `GET /metrics` scrape), and their behaviour
// under concurrent load against a live server.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.hpp"
#include "server/client.hpp"
#include "server/json.hpp"
#include "server/metrics.hpp"
#include "server/router.hpp"
#include "server/server.hpp"
#include "tasks/task_set.hpp"

namespace rmts::server {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(json_parse(text, value, error)) << text << " -- " << error;
  return value;
}

// ------------------------------------------------------------- Metrics --

TEST(Metrics, ReportsInterpolatedQuantilesNotBucketEdges) {
  Metrics metrics;
  for (std::uint64_t us = 1; us <= 1000; ++us) {
    metrics.record(Endpoint::kAdmit, false, us);
  }
  const Metrics::EndpointSnapshot snap = metrics.snapshot(Endpoint::kAdmit);
  EXPECT_EQ(snap.requests, 1000u);
  EXPECT_EQ(snap.max_micros, 1000u);
  // True p50 of 1..1000 is 500; the old power-of-two buckets reported the
  // bucket edge 511.  The HDR interpolation must land within 5%.
  EXPECT_NEAR(snap.p50_micros, 500.0, 25.0);
  EXPECT_NEAR(snap.p90_micros, 900.0, 45.0);
  EXPECT_NEAR(snap.p99_micros, 990.0, 50.0);
  EXPECT_NEAR(snap.mean_micros, 500.5, 0.5);
}

TEST(Metrics, ConcurrentRecordingKeepsExactMaxAndCounts) {
  // Regression: a relaxed max store can lose the true maximum when a
  // larger value is overwritten by a concurrent smaller one; the CAS loop
  // in AtomicHistogram must keep it exact.
  Metrics metrics;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Mostly small latencies with one contended spike per thread.
        const std::uint64_t us =
            i == kPerThread / 2 ? 1'000'000 + t : (i % 97) + 1;
        metrics.record(Endpoint::kSimulate, false, us);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const Metrics::EndpointSnapshot snap = metrics.snapshot(Endpoint::kSimulate);
  EXPECT_EQ(snap.requests, kThreads * kPerThread);
  EXPECT_EQ(snap.max_micros, 1'000'000u + kThreads - 1);
  EXPECT_EQ(snap.latency_us.count(), kThreads * kPerThread);
}

// -------------------------------------------------------------- tracer --

TEST(Trace, SpansAggregateIntoSnapshot) {
  if (!trace::compiled_in()) GTEST_SKIP() << "tracing compiled out";
  trace::set_enabled(true);
  const trace::Snapshot before = trace::snapshot();
  constexpr int kSpans = 100;
  for (int i = 0; i < kSpans; ++i) {
    const trace::Span span(trace::Stage::kPartitionDedicate);
  }
  trace::count(trace::Counter::kPartitionRuns, 7u);
  const trace::Snapshot after = trace::snapshot();

  const trace::StageSnapshot& b = before.stage(trace::Stage::kPartitionDedicate);
  const trace::StageSnapshot& a = after.stage(trace::Stage::kPartitionDedicate);
  EXPECT_EQ(a.count - b.count, static_cast<std::uint64_t>(kSpans));
  EXPECT_GE(a.total_ns, b.total_ns);
  EXPECT_EQ(after.counter(trace::Counter::kPartitionRuns) -
                before.counter(trace::Counter::kPartitionRuns),
            7u);
  EXPECT_GE(after.threads, 1u);
}

TEST(Trace, RuntimeKillSwitchSuppressesRecording) {
  if (!trace::compiled_in()) GTEST_SKIP() << "tracing compiled out";
  trace::set_enabled(false);
  const trace::Snapshot before = trace::snapshot();
  {
    const trace::Span span(trace::Stage::kSimRun);
  }
  trace::count(trace::Counter::kSimRuns);
  const trace::Snapshot after = trace::snapshot();
  trace::set_enabled(true);
  EXPECT_EQ(after.stage(trace::Stage::kSimRun).count,
            before.stage(trace::Stage::kSimRun).count);
  EXPECT_EQ(after.counter(trace::Counter::kSimRuns),
            before.counter(trace::Counter::kSimRuns));
}

// ---------------------------------------------------------- exposition --

/// Checks Prometheus text-format well-formedness: every non-comment line
/// is `name value` or `name{labels} value` with a parseable value.
void expect_valid_exposition(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(stream, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name_part = line.substr(0, space);
    const std::string value_part = line.substr(space + 1);
    ASSERT_FALSE(name_part.empty()) << line;
    ASSERT_TRUE(std::isalpha(static_cast<unsigned char>(name_part[0])) != 0)
        << line;
    const std::size_t brace = name_part.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name_part.back(), '}') << line;
    }
    char* end = nullptr;
    (void)std::strtod(value_part.c_str(), &end);
    EXPECT_EQ(end, value_part.c_str() + value_part.size())
        << "unparseable value in: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(Exposition, RendersParseableTextWithConsistentCounts) {
  Metrics metrics;
  metrics.record(Endpoint::kAdmit, false, 120);
  metrics.record(Endpoint::kAdmit, false, 340);
  metrics.record(Endpoint::kAdmit, true, 90);
  metrics.record(Endpoint::kAnalyze, false, 55);
  RuntimeStats runtime;
  runtime.connections_active = 3;
  runtime.workers = 2;
  runtime.uptime_seconds = 1.5;
  const Router router(RouterConfig{}, metrics, [&] { return runtime; });

  const std::string text = router.metrics_exposition();
  expect_valid_exposition(text);
  EXPECT_NE(text.find("rmts_requests_total{endpoint=\"admit\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rmts_request_errors_total{endpoint=\"admit\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rmts_request_latency_us_count{endpoint=\"admit\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find(
                "rmts_request_latency_us_bucket{endpoint=\"admit\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rmts_request_latency_us_sum{endpoint=\"admit\"} 550"),
            std::string::npos);
  EXPECT_NE(text.find("rmts_connections_active 3"), std::string::npos);
  EXPECT_NE(text.find("rmts_uptime_seconds 1.5"), std::string::npos);
}

TEST(Exposition, HistogramBucketsAreCumulativeAndSparse) {
  Metrics metrics;
  metrics.record(Endpoint::kAdmit, false, 10);
  metrics.record(Endpoint::kAdmit, false, 10);
  metrics.record(Endpoint::kAdmit, false, 5000);
  const Router router(RouterConfig{}, metrics);
  const std::string text = router.metrics_exposition();

  // Cumulative `le` semantics: the bucket holding 10 counts 2, the one
  // holding 5000 counts all 3, and nothing in between is emitted.
  EXPECT_NE(text.find("le=\"10\"} 2"), std::string::npos) << text;
  std::size_t admit_buckets = 0;
  for (std::size_t pos = 0;
       (pos = text.find("rmts_request_latency_us_bucket{endpoint=\"admit\"",
                        pos)) != std::string::npos;
       ++pos) {
    ++admit_buckets;
  }
  EXPECT_EQ(admit_buckets, 3u);  // 10-bucket, 5000-bucket, +Inf
}

TEST(Exposition, StatsReplyCarriesTraceSections) {
  Metrics metrics;
  metrics.record(Endpoint::kAdmit, false, 100);
  const Router router(RouterConfig{}, metrics);
  const HandleOutcome out = router.handle(R"({"op":"stats"})");
  ASSERT_FALSE(out.error);
  const JsonValue reply = parse_ok(out.reply);
  ASSERT_NE(reply.find("tracing"), nullptr);
  if (trace::compiled_in()) {
    ASSERT_NE(reply.find("stages"), nullptr);
    ASSERT_NE(reply.find("counters"), nullptr);
    EXPECT_TRUE(reply.find("stages")->is_object());
    EXPECT_TRUE(reply.find("counters")->is_object());
  }
  // Endpoint quantiles are doubles from the HDR sketch, not bucket edges.
  const JsonValue* endpoints = reply.find("endpoints");
  ASSERT_NE(endpoints, nullptr);
  const JsonValue* admit = endpoints->find("admit");
  ASSERT_NE(admit, nullptr);
  ASSERT_NE(admit->find("p50_us"), nullptr);
  EXPECT_DOUBLE_EQ(admit->find("p50_us")->as_double(), 100.0);
  ASSERT_NE(admit->find("mean_us"), nullptr);
}

// ----------------------------------------------------------- live server --

class LiveServer {
 public:
  explicit LiveServer(ServerConfig config) : server_(std::move(config)) {
    thread_ = std::thread([this] { server_.run(); });
  }
  ~LiveServer() {
    server_.request_stop();
    thread_.join();
  }
  Server* operator->() noexcept { return &server_; }

 private:
  Server server_;
  std::thread thread_;
};

ServerConfig test_config() {
  ServerConfig config;
  config.port = 0;
  config.workers = 2;
  config.drain_timeout_ms = 2000;
  return config;
}

TEST(LiveMetrics, MetricsOpAndHttpScrapeSurviveConcurrentLoad) {
  LiveServer server(test_config());
  const std::uint16_t port = server->port();
  const auto tasks = TaskSet::from_pairs({{1, 4}, {1, 5}, {2, 10}});

  // Background admit load while the exposition is scraped repeatedly.
  std::atomic<bool> stop{false};
  std::thread load([&] {
    Client client("127.0.0.1", port);
    const std::string request = make_admit_request(2, tasks);
    while (!stop.load(std::memory_order_relaxed)) {
      (void)client.request(request);
    }
  });

  for (int round = 0; round < 5; ++round) {
    // JSON-wrapped scrape over the line protocol.
    Client client("127.0.0.1", port);
    const JsonValue reply = parse_ok(client.request(make_metrics_request(7)));
    ASSERT_NE(reply.find("ok"), nullptr);
    ASSERT_TRUE(reply.find("ok")->as_bool());
    ASSERT_NE(reply.find("id"), nullptr);
    EXPECT_EQ(reply.find("id")->as_int(), 7);
    ASSERT_NE(reply.find("text"), nullptr);
    const std::string text = reply.find("text")->as_string();
    expect_valid_exposition(text);
    EXPECT_NE(text.find("rmts_requests_total{"), std::string::npos);
    EXPECT_NE(text.find("rmts_workers 2"), std::string::npos);
  }

  {
    // Raw HTTP scrape on the same port: headers, then the exposition
    // body, then the server closes the connection.
    Client curl("127.0.0.1", port);
    curl.send_line("GET /metrics HTTP/1.0\r");
    std::string body;
    bool saw_status = false;
    try {
      for (;;) {
        const std::string line = curl.read_reply();
        if (line.rfind("HTTP/1.0 200", 0) == 0) saw_status = true;
        body += line;
        body += '\n';
      }
    } catch (const TransportError&) {
      // Connection closed after the response -- expected.
    }
    EXPECT_TRUE(saw_status) << body;
    EXPECT_NE(body.find("Content-Length: "), std::string::npos);
    EXPECT_NE(body.find("rmts_requests_total{"), std::string::npos);
    EXPECT_NE(body.find("rmts_request_latency_us_bucket{"), std::string::npos);
  }

  {
    // Any other GET path is a 404, also followed by a close.
    Client curl("127.0.0.1", port);
    curl.send_line("GET /nope HTTP/1.0\r");
    std::string body;
    try {
      for (;;) {
        body += curl.read_reply();
        body += '\n';
      }
    } catch (const TransportError&) {
    }
    EXPECT_NE(body.find("404 Not Found"), std::string::npos) << body;
  }

  stop.store(true, std::memory_order_relaxed);
  load.join();

  // The scrapes themselves were recorded: metrics endpoint counts the
  // JSON ops plus the raw HTTP hit.
  EXPECT_GE(server->metrics().snapshot(Endpoint::kMetrics).requests, 6u);
}

}  // namespace
}  // namespace rmts::server
