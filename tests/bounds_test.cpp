// Parametric utilization bounds: closed forms, harmonic chain counting
// (exact vs greedy), period scaling, T/R bounds, deflatability, and the
// soundness of every bound as a uniprocessor RMS test.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/best_of.hpp"
#include "bounds/burchard.hpp"
#include "bounds/constant_bound.hpp"
#include "bounds/harmonic.hpp"
#include "bounds/ll_bound.hpp"
#include "bounds/scaled_periods.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "rta/rta.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

TEST(LiuLayland, KnownValues) {
  EXPECT_DOUBLE_EQ(liu_layland_theta(1), 1.0);
  EXPECT_NEAR(liu_layland_theta(2), 0.828427, 1e-6);
  EXPECT_NEAR(liu_layland_theta(3), 0.779763, 1e-6);
  EXPECT_NEAR(liu_layland_theta(10), 0.717734, 1e-6);
}

TEST(LiuLayland, MonotonicallyDecreasingToLn2) {
  double previous = liu_layland_theta(1);
  for (std::size_t n = 2; n <= 200; ++n) {
    const double theta = liu_layland_theta(n);
    EXPECT_LT(theta, previous);
    EXPECT_GT(theta, liu_layland_theta_limit());
    previous = theta;
  }
  EXPECT_NEAR(liu_layland_theta(100000), liu_layland_theta_limit(), 1e-5);
}

TEST(LiuLayland, EmptySetConvention) {
  EXPECT_DOUBLE_EQ(liu_layland_theta(0), 1.0);
}

// Footnote 1 of the paper: as N -> infinity, Theta = 69.3%,
// Theta/(1+Theta) = 40.9%, 2 Theta/(1+Theta) = 81.8%.
TEST(Thresholds, PaperFootnoteValues) {
  const std::size_t big = 1000000;
  EXPECT_NEAR(liu_layland_theta(big), 0.693, 5e-4);
  EXPECT_NEAR(light_task_threshold(big), 0.409, 5e-4);
  EXPECT_NEAR(rmts_bound_cap(big), 0.818, 1e-3);  // exact limit is 0.81878
}

TEST(Thresholds, CapIsTwiceLightThreshold) {
  for (std::size_t n = 1; n <= 64; ++n) {
    EXPECT_NEAR(rmts_bound_cap(n), 2.0 * light_task_threshold(n), 1e-12);
  }
}

TEST(LiuLaylandBound, EvaluatesOnTaskCount) {
  const LiuLaylandBound bound;
  const TaskSet set = TaskSet::from_pairs({{1, 10}, {1, 20}, {1, 30}});
  EXPECT_DOUBLE_EQ(bound.evaluate(set), liu_layland_theta(3));
  EXPECT_EQ(bound.name(), "LL");
}

TEST(HarmonicChains, FullyHarmonicIsOneChain) {
  const std::vector<Time> periods{1000, 2000, 4000, 16000};
  EXPECT_EQ(min_harmonic_chains(periods), 1u);
  EXPECT_EQ(greedy_harmonic_chains(periods), 1u);
}

TEST(HarmonicChains, PairwiseIndivisible) {
  const std::vector<Time> periods{7, 11, 13};
  EXPECT_EQ(min_harmonic_chains(periods), 3u);
}

TEST(HarmonicChains, MixedSet) {
  // {1000,2000} and {3000} -> 2 chains (1000 | 3000 allows {1000,3000} too,
  // but 2000 and 3000 cannot share, so the minimum is 2 either way).
  const std::vector<Time> periods{1000, 2000, 3000};
  EXPECT_EQ(min_harmonic_chains(periods), 2u);
}

TEST(HarmonicChains, DuplicatePeriodsAreOneChain) {
  const std::vector<Time> periods{500, 500, 500};
  EXPECT_EQ(min_harmonic_chains(periods), 1u);
}

TEST(HarmonicChains, EmptyInput) {
  EXPECT_EQ(min_harmonic_chains({}), 0u);
  EXPECT_EQ(greedy_harmonic_chains({}), 0u);
}

// The classic case where greedy is suboptimal: greedy puts 2 under 4's
// chain... construct {2, 3, 4, 6}: optimal {2,4},{3,6} = 2 chains.
TEST(HarmonicChains, MinimumBeatsOrEqualsGreedy) {
  const std::vector<Time> periods{2, 3, 4, 6};
  EXPECT_EQ(min_harmonic_chains(periods), 2u);
  EXPECT_GE(greedy_harmonic_chains(periods), 2u);
}

TEST(HarmonicChains, PartitionIsAValidChainCover) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Time> periods;
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < n; ++i) periods.push_back(rng.uniform_int(2, 48));
    const auto partition = min_harmonic_chain_partition(periods);
    // Covers every index exactly once.
    std::vector<int> seen(periods.size(), 0);
    for (const auto& chain : partition) {
      ASSERT_FALSE(chain.empty());
      for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
        // Chain property: consecutive elements divide.
        EXPECT_EQ(periods[chain[k + 1]] % periods[chain[k]], 0)
            << periods[chain[k]] << " " << periods[chain[k + 1]];
      }
      for (const std::size_t idx : chain) ++seen[idx];
    }
    for (const int count : seen) EXPECT_EQ(count, 1);
    EXPECT_EQ(partition.size(), min_harmonic_chains(periods));
    EXPECT_LE(min_harmonic_chains(periods), greedy_harmonic_chains(periods));
  }
}

TEST(HarmonicChainBoundValue, ClosedForm) {
  EXPECT_DOUBLE_EQ(harmonic_chain_bound_value(1), 1.0);
  EXPECT_NEAR(harmonic_chain_bound_value(2), 0.828427, 1e-6);
  EXPECT_NEAR(harmonic_chain_bound_value(3), 0.779763, 1e-6);
  EXPECT_DOUBLE_EQ(harmonic_chain_bound_value(0), 1.0);
}

// Section V instantiation: K=3 chains give 77.9% (< 81.8% cap, usable
// as-is); K=2 gives 82.8% (> cap, clamped by RM-TS).
TEST(HarmonicChainBoundValue, PaperSectionVExamples) {
  EXPECT_NEAR(harmonic_chain_bound_value(3), 0.779, 1e-3);
  EXPECT_NEAR(harmonic_chain_bound_value(2), 0.828, 1e-3);
  EXPECT_LT(harmonic_chain_bound_value(3), rmts_bound_cap(1000000));
  EXPECT_GT(harmonic_chain_bound_value(2), rmts_bound_cap(1000000));
}

TEST(HarmonicChainBound, HundredPercentForHarmonicSets) {
  const HarmonicChainBound bound;
  const TaskSet harmonic = TaskSet::from_pairs({{1, 1000}, {1, 2000}, {1, 4000}});
  EXPECT_DOUBLE_EQ(bound.evaluate(harmonic), 1.0);
}

TEST(ScalePeriods, MapsIntoTopOctave) {
  const std::vector<Time> periods{100, 300, 799, 800};
  const std::vector<Time> scaled = scale_periods(periods);
  for (const Time p : scaled) {
    EXPECT_GT(p, 400);
    EXPECT_LE(p, 800);
  }
  // 100 * 8 = 800; 300 * 2 = 600; 799 * 1; 800 * 1.
  const std::vector<Time> expected{800, 600, 799, 800};
  EXPECT_EQ(scaled, expected);
}

TEST(TBound, HarmonicByPowersOfTwoGives100Percent) {
  const TBound bound;
  const TaskSet set = TaskSet::from_pairs({{1, 1000}, {1, 2000}, {1, 8000}});
  EXPECT_NEAR(bound.evaluate(set), 1.0, 1e-12);
}

TEST(TBound, KnownTwoTaskValue) {
  // Periods {2,3}: scaled {2,3} -> 3/2 + 2*(2/3) - 2 = 0.8333...
  const TBound bound;
  const TaskSet set = TaskSet::from_pairs({{1, 2}, {1, 3}});
  EXPECT_NEAR(bound.evaluate(set), 3.0 / 2.0 + 4.0 / 3.0 - 2.0, 1e-12);
}

TEST(TBound, SingleTaskIs100Percent) {
  const TBound bound;
  EXPECT_DOUBLE_EQ(bound.evaluate(TaskSet::from_pairs({{1, 10}})), 1.0);
}

TEST(RBound, MatchesTBoundForTwoTasks) {
  const TBound t_bound;
  const RBound r_bound;
  const TaskSet set = TaskSet::from_pairs({{1, 2}, {1, 3}});
  EXPECT_NEAR(r_bound.evaluate(set), t_bound.evaluate(set), 1e-12);
}

TEST(RBound, ClosedFormEdges) {
  // r = 1: harmonic-like, 100%.  r = 2: degenerates to Theta(N-1).
  EXPECT_DOUBLE_EQ(r_bound_value(5, 1.0), 1.0);
  EXPECT_NEAR(r_bound_value(5, 2.0), liu_layland_theta(4), 1e-12);
}

TEST(RBound, NeverAboveTBound) {
  // The R-bound abstracts the T-bound by one parameter; it can only lose
  // precision.
  Rng rng(7);
  const TBound t_bound;
  const RBound r_bound;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::pair<Time, Time>> pairs;
    const int n = static_cast<int>(rng.uniform_int(2, 10));
    for (int i = 0; i < n; ++i) pairs.emplace_back(1, rng.uniform_int(10, 1000));
    const TaskSet set = TaskSet::from_pairs(pairs);
    EXPECT_LE(r_bound.evaluate(set), t_bound.evaluate(set) + 1e-9);
  }
}

TEST(AllBounds, WithinZeroOne) {
  Rng rng(17);
  const LiuLaylandBound ll;
  const HarmonicChainBound hc;
  const TBound tb;
  const RBound rb;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<Time, Time>> pairs;
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < n; ++i) pairs.emplace_back(1, rng.uniform_int(5, 5000));
    const TaskSet set = TaskSet::from_pairs(pairs);
    const std::vector<const ParametricBound*> bounds{&ll, &hc, &tb, &rb};
    for (const ParametricBound* bound : bounds) {
      const double value = bound->evaluate(set);
      EXPECT_GT(value, 0.0) << bound->name();
      EXPECT_LE(value, 1.0 + 1e-12) << bound->name();
    }
  }
}

TEST(AllBounds, DominateOrEqualLiuLayland) {
  // HC, T and R bounds exploit period structure; they are never *worse*
  // than the structure-free Theta(N)... HC with K=N chains equals Theta(N),
  // and T/R degrade at most to Theta(N) as well.
  Rng rng(23);
  const LiuLaylandBound ll;
  const HarmonicChainBound hc;
  const TBound tb;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<Time, Time>> pairs;
    const int n = static_cast<int>(rng.uniform_int(2, 10));
    for (int i = 0; i < n; ++i) pairs.emplace_back(1, rng.uniform_int(10, 2000));
    const TaskSet set = TaskSet::from_pairs(pairs);
    EXPECT_GE(hc.evaluate(set), ll.evaluate(set) - 1e-9);
    EXPECT_GE(tb.evaluate(set), ll.evaluate(set) - 1e-9);
  }
}

// Deflatability (paper Lemma 1 precondition): all bounds here depend only
// on periods/count, so deflating WCETs never changes the value.
TEST(AllBounds, InvariantUnderWcetDeflation) {
  Rng rng(31);
  const LiuLaylandBound ll;
  const HarmonicChainBound hc;
  const TBound tb;
  const RBound rb;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::pair<Time, Time>> pairs;
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < n; ++i) {
      const Time period = rng.uniform_int(10, 1000);
      pairs.emplace_back(rng.uniform_int(2, period), period);
    }
    const TaskSet original = TaskSet::from_pairs(pairs);
    const TaskSet deflated = original.scaled_wcets(0.5);
    const std::vector<const ParametricBound*> bounds{&ll, &hc, &tb, &rb};
    for (const ParametricBound* bound : bounds) {
      EXPECT_DOUBLE_EQ(bound->evaluate(original), bound->evaluate(deflated))
          << bound->name();
    }
  }
}

// Soundness as uniprocessor tests: any random task set with
// U(tau) <= Lambda(tau) must pass exact RTA.  This is the defining
// property of a utilization bound and the foundation the multiprocessor
// theorems build on.
TEST(AllBounds, SoundOnUniprocessorRms) {
  Rng rng(41);
  const LiuLaylandBound ll;
  const HarmonicChainBound hc;
  const TBound tb;
  const RBound rb;
  int checked = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::pair<Time, Time>> pairs;
    const int n = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < n; ++i) {
      const Time period = rng.uniform_int(10, 500);
      pairs.emplace_back(rng.uniform_int(1, period), period);
    }
    const TaskSet set = TaskSet::from_pairs(pairs);
    const std::vector<const ParametricBound*> bounds{&ll, &hc, &tb, &rb};
    for (const ParametricBound* bound : bounds) {
      if (set.total_utilization() <= bound->evaluate(set)) {
        ++checked;
        EXPECT_TRUE(rm_schedulable_uniprocessor(set))
            << bound->name() << " claimed schedulable:\n"
            << set.describe();
      }
    }
  }
  EXPECT_GT(checked, 200);  // the property must actually have been exercised
}


TEST(Burchard, PowersOfTwoPeriodsGive100Percent) {
  // All periods on the same log2 fraction => beta = 0 => 2^1 - 1 = 1.
  const BurchardBound bound;
  const TaskSet set = TaskSet::from_pairs({{1, 1024}, {1, 2048}, {1, 4096}});
  EXPECT_DOUBLE_EQ(log_period_spread(set), 0.0);
  EXPECT_DOUBLE_EQ(bound.evaluate(set), 1.0);
}

TEST(Burchard, WideSpreadFallsBackToLiuLayland) {
  EXPECT_DOUBLE_EQ(burchard_bound_value(4, 0.9), liu_layland_theta(4));
  EXPECT_DOUBLE_EQ(burchard_bound_value(2, 0.6), liu_layland_theta(2));
}

TEST(Burchard, ClosedFormMidRange) {
  // n=3, beta=0.25: 2(2^{0.125}-1) + 2^{0.75} - 1.
  const double expected =
      2.0 * (std::pow(2.0, 0.125) - 1.0) + std::pow(2.0, 0.75) - 1.0;
  EXPECT_NEAR(burchard_bound_value(3, 0.25), expected, 1e-12);
}

TEST(Burchard, MonotoneDecreasingInBeta) {
  double previous = burchard_bound_value(5, 0.0);
  for (double beta = 0.05; beta < 1.0 - 1.0 / 5.0; beta += 0.05) {
    const double value = burchard_bound_value(5, beta);
    EXPECT_LE(value, previous + 1e-12);
    previous = value;
  }
}

TEST(Burchard, NeverBelowLiuLayland) {
  Rng rng(53);
  const BurchardBound burchard;
  const LiuLaylandBound ll;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<Time, Time>> pairs;
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    for (int i = 0; i < n; ++i) pairs.emplace_back(1, rng.uniform_int(10, 5000));
    const TaskSet set = TaskSet::from_pairs(pairs);
    EXPECT_GE(burchard.evaluate(set), ll.evaluate(set) - 1e-9);
  }
}

TEST(Burchard, SoundOnUniprocessorRms) {
  Rng rng(59);
  const BurchardBound bound;
  int checked = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::vector<std::pair<Time, Time>> pairs;
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < n; ++i) {
      // Cluster periods within one octave-ish band so beta is often small
      // and the bound is often > Theta(N) -- that is the regime to check.
      const Time period = rng.uniform_int(64, 144);
      pairs.emplace_back(rng.uniform_int(1, period), period);
    }
    const TaskSet set = TaskSet::from_pairs(pairs);
    if (set.total_utilization() <= bound.evaluate(set)) {
      ++checked;
      EXPECT_TRUE(rm_schedulable_uniprocessor(set)) << set.describe();
    }
  }
  EXPECT_GT(checked, 300);
}

TEST(Burchard, DeflationInvariant) {
  const BurchardBound bound;
  const TaskSet set = TaskSet::from_pairs({{40, 100}, {60, 130}, {80, 190}});
  EXPECT_DOUBLE_EQ(bound.evaluate(set), bound.evaluate(set.scaled_wcets(0.25)));
}


TEST(BestOfBounds, TakesPointwiseMaximum) {
  const BestOfBounds best = BestOfBounds::all_known();
  const TaskSet harmonic = TaskSet::from_pairs({{1, 1000}, {1, 2000}, {1, 4000}});
  EXPECT_DOUBLE_EQ(best.evaluate(harmonic), 1.0);
  EXPECT_EQ(best.winner(harmonic).name(), "HC");
  // Pairwise-coprime spread-out periods: nothing beats Theta(N).
  const TaskSet plain = TaskSet::from_pairs({{1, 97}, {1, 551}, {1, 3343}});
  EXPECT_NEAR(best.evaluate(plain), liu_layland_theta(3), 0.05);
}

TEST(BestOfBounds, DominatesEveryConstituent) {
  Rng rng(61);
  const BestOfBounds best = BestOfBounds::all_known();
  const LiuLaylandBound ll;
  const HarmonicChainBound hc;
  const TBound tb;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::pair<Time, Time>> pairs;
    const int n = static_cast<int>(rng.uniform_int(2, 10));
    for (int i = 0; i < n; ++i) pairs.emplace_back(1, rng.uniform_int(10, 4000));
    const TaskSet set = TaskSet::from_pairs(pairs);
    const double value = best.evaluate(set);
    EXPECT_GE(value, ll.evaluate(set));
    EXPECT_GE(value, hc.evaluate(set));
    EXPECT_GE(value, tb.evaluate(set));
  }
}

TEST(BestOfBounds, EmptyListRejected) {
  EXPECT_THROW(BestOfBounds({}), InvalidConfigError);
}

TEST(ConstantBound, FixedValueAndLabel) {
  const ConstantBound bound(0.75, "three-quarters");
  EXPECT_DOUBLE_EQ(bound.evaluate(TaskSet::from_pairs({{1, 2}})), 0.75);
  EXPECT_EQ(bound.name(), "three-quarters");
}

}  // namespace
}  // namespace rmts
