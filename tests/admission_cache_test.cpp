// ProcessorState admission cache: the memoized/seeded fast path must be
// observationally identical to from-scratch analyze_processor on randomized
// assignment traces, including hosts made unschedulable by non-RTA
// admission (the SPA path adds on a utilization threshold only).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "partition/max_split.hpp"
#include "partition/processor_state.hpp"
#include "rta/rta.hpp"

namespace rmts {
namespace {

/// Random subtask with the given unique priority rank; deadline <= period.
Subtask random_subtask(Rng& rng, std::size_t priority, bool heavy) {
  const Time period = rng.uniform_int(20, 2000);
  const Time max_wcet = heavy ? period : std::max<Time>(1, period / 6);
  const Time wcet = rng.uniform_int(1, max_wcet);
  const Time deadline = rng.uniform_int(wcet, period);
  return Subtask{priority,  static_cast<TaskId>(priority), 0, wcet,
                 period,    deadline,                      SubtaskKind::kWhole};
}

/// From-scratch oracle with the documented fits() semantics (the seed
/// implementation verbatim): the candidate under its higher-priority
/// prefix, then every lower-priority hosted subtask with materialized
/// interferer vectors -- no caching, no seeding.  Higher-priority hosted
/// subtasks are not re-examined (their response cannot change).
bool oracle_fits(const ProcessorState& processor, const Subtask& candidate) {
  const auto hosted = processor.subtasks();
  const auto pos_it = std::lower_bound(
      hosted.begin(), hosted.end(), candidate,
      [](const Subtask& a, const Subtask& b) { return a.priority < b.priority; });
  const auto pos = static_cast<std::size_t>(pos_it - hosted.begin());
  if (!response_time(candidate.wcet, candidate.deadline, hosted.first(pos))
           .schedulable) {
    return false;
  }
  std::vector<Subtask> interferers(hosted.begin(), pos_it);
  interferers.push_back(candidate);
  for (std::size_t i = pos; i < hosted.size(); ++i) {
    if (!response_time(hosted[i].wcet, hosted[i].deadline, interferers)
             .schedulable) {
      return false;
    }
    interferers.push_back(hosted[i]);
  }
  return true;
}

TEST(AdmissionCache, RandomizedTracesMatchFromScratchAnalysis) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    ProcessorState processor;
    std::vector<std::size_t> priorities(64);
    for (std::size_t i = 0; i < priorities.size(); ++i) priorities[i] = i;
    // Random unique priority per step, in random arrival order.
    for (std::size_t i = priorities.size(); i-- > 1;) {
      std::swap(priorities[i],
                priorities[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(i)))]);
    }
    for (std::size_t step = 0; step < 24; ++step) {
      const Subtask candidate = random_subtask(rng, priorities[step], false);
      const bool cached = processor.fits(candidate);
      ASSERT_EQ(cached, oracle_fits(processor, candidate))
          << "seed " << seed << " step " << step;
      if (cached) processor.add(candidate);
    }
    // Cached per-subtask responses equal the from-scratch analysis.
    const ProcessorRta fresh = analyze_processor(processor.subtasks());
    ASSERT_TRUE(fresh.schedulable);
    for (std::size_t i = 0; i < processor.subtasks().size(); ++i) {
      EXPECT_EQ(processor.response_time_of(i), fresh.response[i]);
    }
  }
}

TEST(AdmissionCache, MatchesOracleOnHostsAddedPastAdmission) {
  // SPA-style traces: subtasks land on utilization grounds alone, so the
  // hosted set can be RTA-unschedulable; fits() must keep agreeing with
  // the oracle (always false once the host is broken).
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    Rng rng(seed);
    ProcessorState processor;
    for (std::size_t step = 0; step < 10; ++step) {
      const Subtask incoming = random_subtask(rng, step * 2, true);
      const bool cached = processor.fits(incoming);
      ASSERT_EQ(cached, oracle_fits(processor, incoming))
          << "seed " << seed << " step " << step;
      processor.add(incoming);  // added regardless, like spa_assign
      const Subtask probe = random_subtask(rng, step * 2 + 1, false);
      ASSERT_EQ(processor.fits(probe), oracle_fits(processor, probe))
          << "seed " << seed << " probe at step " << step;
    }
  }
}

TEST(AdmissionCache, InterleavedAddRemoveMatchesFromScratchAnalysis) {
  // The online session's churn shape: adds and removes interleave on a
  // long-lived processor, with fits() probes and re-analysis between
  // mutations.  Removal re-seeds the invalidated suffix from wcets (a
  // stale post-removal value would be an UPPER bound -- unsound as a
  // seed), so the cached path must keep agreeing with the from-scratch
  // oracle through arbitrary interleavings.
  for (std::uint64_t seed = 300; seed < 340; ++seed) {
    Rng rng(seed);
    ProcessorState processor;
    // Hosted priorities draw from 1..48; 0 is reserved for split
    // prototypes so max_admissible_wcet probes stay top-priority.
    std::vector<std::size_t> free_priorities;
    for (std::size_t p = 1; p <= 48; ++p) free_priorities.push_back(p);

    for (std::size_t step = 0; step < 48; ++step) {
      const bool do_remove =
          !processor.subtasks().empty() && rng.uniform_int(0, 2) == 0;
      if (do_remove) {
        const auto index = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(processor.subtasks().size()) - 1));
        free_priorities.push_back(processor.subtasks()[index].priority);
        processor.remove(index);
      } else {
        const auto slot = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(free_priorities.size()) - 1));
        const Subtask incoming = random_subtask(
            rng, free_priorities[slot], rng.uniform_int(0, 3) == 0);
        const bool cached = processor.fits(incoming);
        ASSERT_EQ(cached, oracle_fits(processor, incoming))
            << "seed " << seed << " step " << step;
        if (cached) {
          processor.add(incoming);
          free_priorities[slot] = free_priorities.back();
          free_priorities.pop_back();
        }
      }

      // A probe at a random (possibly hosted-adjacent) priority must
      // agree with the oracle on the mutated set.
      const Subtask probe =
          random_subtask(rng, free_priorities[static_cast<std::size_t>(
                                  rng.uniform_int(0,
                                                  static_cast<std::int64_t>(
                                                      free_priorities.size()) -
                                                      1))],
                         false);
      ASSERT_EQ(processor.fits(probe), oracle_fits(processor, probe))
          << "seed " << seed << " step " << step;

      // Cached responses stay exact after every interleaving step.
      const ProcessorRta fresh = analyze_processor(processor.subtasks());
      ASSERT_TRUE(fresh.schedulable) << "seed " << seed << " step " << step;
      for (std::size_t i = 0; i < processor.subtasks().size(); ++i) {
        ASSERT_EQ(processor.response_time_of(i), fresh.response[i])
            << "seed " << seed << " step " << step << " index " << i;
      }

      // The testing-set cache behind the scheduling-point MaxSplit must
      // also track removals: both methods agree on the warm cache.
      if (step % 8 == 7) {
        Subtask prototype = random_subtask(rng, 0, true);
        EXPECT_EQ(
            max_admissible_wcet(processor, prototype,
                                MaxSplitMethod::kBinarySearch),
            max_admissible_wcet(processor, prototype,
                                MaxSplitMethod::kSchedulingPoints))
            << "seed " << seed << " step " << step;
      }
    }
  }
}

TEST(AdmissionCache, RemovalFlipsCachedVerdictsBackToFits) {
  // Deterministic regression for the cache-direction flip: with the
  // blocker hosted, the candidate is rejected (and the verdict cached as
  // part of the warmed responses); after remove() the same candidate
  // must fit -- a stale cached miss would wrongly keep rejecting it.
  ProcessorState processor;
  const Subtask blocker{0, 100, 0, 60, 100, 100, SubtaskKind::kWhole};
  const Subtask hosted{2, 102, 0, 30, 100, 100, SubtaskKind::kWhole};
  ASSERT_TRUE(processor.fits(blocker));
  processor.add(blocker);
  ASSERT_TRUE(processor.fits(hosted));
  processor.add(hosted);

  // 60 + 30 + 30 = 120 > 100: the hosted subtask would miss.
  const Subtask candidate{1, 101, 0, 30, 100, 100, SubtaskKind::kWhole};
  ASSERT_FALSE(processor.fits(candidate));
  ASSERT_EQ(processor.response_time_of(1), 90);  // 60 + 30, warm cache

  processor.remove(0);  // the blocker departs
  EXPECT_TRUE(processor.fits(candidate)) << "stale cached miss survived";
  EXPECT_EQ(processor.response_time_of(0), 30);
  processor.add(candidate);
  const ProcessorRta fresh = analyze_processor(processor.subtasks());
  ASSERT_TRUE(fresh.schedulable);
  EXPECT_EQ(processor.response_time_of(1), fresh.response[1]);
}

TEST(AdmissionCache, RemovalRestoresSchedulabilityOfForcedHosts) {
  // SPA-style force-adds can cache kTimeInfinity ("known miss") for a
  // hosted subtask; removing the interferer that caused the miss must
  // re-seed the entry rather than keep the infinity.
  ProcessorState processor;
  const Subtask heavy{0, 200, 0, 80, 100, 100, SubtaskKind::kWhole};
  const Subtask victim{1, 201, 0, 50, 100, 100, SubtaskKind::kWhole};
  processor.add(heavy);
  processor.add(victim);  // added past admission: 80 + 50 > 100
  ASSERT_FALSE(analyze_processor(processor.subtasks()).schedulable);
  EXPECT_EQ(processor.response_time_of(1), kTimeInfinity);

  processor.remove(0);
  const ProcessorRta fresh = analyze_processor(processor.subtasks());
  ASSERT_TRUE(fresh.schedulable);
  EXPECT_EQ(processor.response_time_of(0), fresh.response[0]);
  const Subtask probe{0, 202, 0, 25, 100, 100, SubtaskKind::kWhole};
  EXPECT_EQ(processor.fits(probe), oracle_fits(processor, probe));
  EXPECT_TRUE(processor.fits(probe));
}

TEST(AdmissionCache, MaxSplitMethodsAgreeOnWarmCache) {
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    Rng rng(seed);
    ProcessorState processor;
    for (std::size_t step = 0; step < 12; ++step) {
      const Subtask incoming = random_subtask(rng, step + 10, false);
      if (processor.fits(incoming)) processor.add(incoming);
    }
    // Top-priority prototype, as produced by assign_or_split.
    Subtask prototype = random_subtask(rng, 0, true);
    const Time binary =
        max_admissible_wcet(processor, prototype, MaxSplitMethod::kBinarySearch);
    const Time points = max_admissible_wcet(processor, prototype,
                                            MaxSplitMethod::kSchedulingPoints);
    EXPECT_EQ(binary, points) << "seed " << seed;
    // A second query on the now-warm testing-set cache must agree.
    EXPECT_EQ(points, max_admissible_wcet(processor, prototype,
                                          MaxSplitMethod::kSchedulingPoints));
    // The result is a true maximum: it fits, one more tick does not.
    if (binary > 0 && binary < prototype.wcet) {
      Subtask probe = prototype;
      probe.wcet = binary;
      EXPECT_TRUE(processor.fits(probe));
      probe.wcet = binary + 1;
      EXPECT_FALSE(processor.fits(probe));
    }
  }
}

}  // namespace
}  // namespace rmts
