// RM-TS/light (Algorithms 1-2): assignment mechanics, splitting
// bookkeeping (Lemmas 2-3), worst-fit order, failure reporting, and
// randomized structural invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "partition/rmts_light.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

TEST(RmtsLight, Name) { EXPECT_EQ(RmtsLight().name(), "RM-TS/light"); }

TEST(RmtsLight, TrivialFitWithoutSplitting) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}, {30, 100}});
  const Assignment a = RmtsLight().partition(tasks, 2);
  ASSERT_TRUE(a.success);
  EXPECT_EQ(a.split_task_count(), 0u);
  EXPECT_EQ(a.subtask_count(), 2u);
  // Worst-fit: one task per processor.
  EXPECT_EQ(a.processors[0].subtasks.size(), 1u);
  EXPECT_EQ(a.processors[1].subtasks.size(), 1u);
  testing::expect_valid_partition(tasks, a);
}

TEST(RmtsLight, SingleProcessorEqualsUniprocessorRta) {
  // On M=1 the algorithm degenerates to exact uniprocessor admission.
  const TaskSet good = TaskSet::from_pairs({{20, 100}, {40, 150}, {100, 350}});
  EXPECT_TRUE(RmtsLight().accepts(good, 1));
  const TaskSet bad = TaskSet::from_pairs({{26, 70}, {62, 100}});
  EXPECT_FALSE(RmtsLight().accepts(bad, 1));
}

TEST(RmtsLight, SplitsWhenNecessary) {
  // Three tasks of U=0.6 on two processors (U_M = 0.9): strict
  // partitioning is impossible, splitting makes it work.
  const TaskSet tasks =
      TaskSet::from_pairs({{600, 1000}, {606, 1010}, {612, 1020}});
  const Assignment a = RmtsLight().partition(tasks, 2);
  ASSERT_TRUE(a.success) << a.describe();
  EXPECT_EQ(a.split_task_count(), 1u);
  EXPECT_EQ(a.subtask_count(), 4u);
  testing::expect_valid_partition(tasks, a);
}

TEST(RmtsLight, BodySubtaskHasHighestPriorityOnItsProcessor) {
  // Lemma 2, checked structurally by the helper on a splitting workload.
  const TaskSet tasks = TaskSet::from_pairs(
      {{340, 1000}, {343, 1010}, {347, 1020}, {350, 1030}, {354, 1040}});
  const Assignment a = RmtsLight().partition(tasks, 2);
  ASSERT_TRUE(a.success);
  EXPECT_GE(a.split_task_count(), 1u);
  testing::expect_valid_partition(tasks, a);
}

TEST(RmtsLight, TailDeadlineEqualsPeriodMinusBodyWcet) {
  // Lemma 3: Delta^t = T - C^body (body response = body wcet here).
  const TaskSet tasks =
      TaskSet::from_pairs({{600, 1000}, {606, 1010}, {612, 1020}});
  const Assignment a = RmtsLight().partition(tasks, 2);
  ASSERT_TRUE(a.success);
  for (const auto& [id, chain] : testing::chains_of(a)) {
    if (chain.size() < 2) continue;
    Time body_sum = 0;
    for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
      body_sum += chain[k].subtask.wcet;
    }
    const Subtask& tail = chain.back().subtask;
    EXPECT_EQ(tail.deadline, tail.period - body_sum);
  }
}

TEST(RmtsLight, FailureListsUnassignedTasks) {
  // U_M = 1.5: impossible; the failure must name the leftover tasks.
  const TaskSet tasks = TaskSet::from_pairs({{900, 1000}, {900, 1000}, {900, 1000}});
  const Assignment a = RmtsLight().partition(tasks, 2);
  EXPECT_FALSE(a.success);
  EXPECT_FALSE(a.unassigned.empty());
}

TEST(RmtsLight, AllProcessorsFullOnFailure) {
  // On failure every processor carries real load (the proof's premise:
  // each has a bottleneck; in particular none was left empty).
  const TaskSet tasks =
      TaskSet::from_pairs({{900, 1000}, {901, 1001}, {902, 1002}, {903, 1003}});
  const Assignment a = RmtsLight().partition(tasks, 3);
  ASSERT_FALSE(a.success);
  for (const auto& processor : a.processors) {
    EXPECT_GT(processor.utilization(), 0.5);
  }
}

TEST(RmtsLight, EmptyTaskSetSucceeds) {
  const Assignment a = RmtsLight().partition(TaskSet(), 4);
  EXPECT_TRUE(a.success);
  EXPECT_EQ(a.subtask_count(), 0u);
}

TEST(RmtsLight, WorstFitSpreadsLoadEvenly) {
  // Eight identical light tasks on four processors: two per processor.
  const TaskSet tasks = TaskSet::from_pairs({{200, 1000},
                                             {201, 1005},
                                             {202, 1010},
                                             {203, 1015},
                                             {204, 1020},
                                             {205, 1025},
                                             {206, 1030},
                                             {207, 1035}});
  const Assignment a = RmtsLight().partition(tasks, 4);
  ASSERT_TRUE(a.success);
  for (const auto& processor : a.processors) {
    EXPECT_EQ(processor.subtasks.size(), 2u);
  }
}

TEST(RmtsLight, BothMaxSplitMethodsProduceIdenticalAssignments) {
  Rng rng(77);
  WorkloadConfig config;
  config.tasks = 12;
  config.processors = 3;
  config.max_task_utilization = 0.5;
  for (int trial = 0; trial < 50; ++trial) {
    config.normalized_utilization = 0.55 + 0.4 * rng.uniform();
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment via_binary =
        RmtsLight(MaxSplitMethod::kBinarySearch).partition(tasks, 3);
    const Assignment via_points =
        RmtsLight(MaxSplitMethod::kSchedulingPoints).partition(tasks, 3);
    ASSERT_EQ(via_binary.success, via_points.success);
    ASSERT_EQ(via_binary.processors.size(), via_points.processors.size());
    for (std::size_t q = 0; q < via_binary.processors.size(); ++q) {
      EXPECT_EQ(via_binary.processors[q].subtasks,
                via_points.processors[q].subtasks)
          << "trial " << trial << " processor " << q;
    }
  }
}

TEST(RmtsLight, RandomizedStructuralInvariants) {
  Rng rng(88);
  WorkloadConfig config;
  config.tasks = 16;
  config.processors = 4;
  config.max_task_utilization = 0.4;
  int accepted = 0;
  for (int trial = 0; trial < 100; ++trial) {
    config.normalized_utilization = 0.4 + 0.55 * rng.uniform();
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial) + 1000);
    const TaskSet tasks = generate(sample, config);
    const Assignment a = RmtsLight().partition(tasks, config.processors);
    if (!a.success) continue;
    ++accepted;
    testing::expect_valid_partition(tasks, a);
  }
  EXPECT_GT(accepted, 30);
}

TEST(RmtsLight, AcceptanceMonotoneUnderDeflation) {
  // Halving every WCET of an accepted set keeps it accepted.
  Rng rng(99);
  WorkloadConfig config;
  config.tasks = 12;
  config.processors = 3;
  config.max_task_utilization = 0.4;
  config.normalized_utilization = 0.8;
  for (int trial = 0; trial < 30; ++trial) {
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    if (!RmtsLight().accepts(tasks, 3)) continue;
    EXPECT_TRUE(RmtsLight().accepts(tasks.scaled_wcets(0.5), 3));
  }
}

}  // namespace
}  // namespace rmts
