// EDF substrate: demand bound function, QPA exact test, the EDF-TS
// semi-partitioner, and end-to-end validation in the simulator's EDF mode.
#include <gtest/gtest.h>

#include <numeric>

#include "common/checked_math.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "helpers.hpp"
#include "partition/edf_split.hpp"
#include "rta/edf_demand.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

Subtask sporadic(Time wcet, Time period, Time deadline, std::size_t rank = 0) {
  return Subtask{rank,   static_cast<TaskId>(rank), 0, wcet, period,
                 deadline, SubtaskKind::kWhole};
}

TEST(Dbf, StepsAtDeadlinePoints) {
  // (C=2, T=10, D=6): dbf = 0 below 6, 2 in [6,16), 4 in [16,26), ...
  EXPECT_EQ(dbf(2, 10, 6, 5), 0);
  EXPECT_EQ(dbf(2, 10, 6, 6), 2);
  EXPECT_EQ(dbf(2, 10, 6, 15), 2);
  EXPECT_EQ(dbf(2, 10, 6, 16), 4);
  EXPECT_EQ(dbf(2, 10, 6, 106), 22);
}

TEST(Dbf, ImplicitDeadline) {
  EXPECT_EQ(dbf(3, 10, 10, 9), 0);
  EXPECT_EQ(dbf(3, 10, 10, 10), 3);
  EXPECT_EQ(dbf(3, 10, 10, 20), 6);
}

TEST(TotalDemand, Sums) {
  const std::vector<Subtask> set{sporadic(2, 10, 6, 0), sporadic(5, 20, 20, 1)};
  EXPECT_EQ(total_demand(set, 20), 2 * 2 + 5);
}

TEST(EdfSchedulable, ImplicitDeadlinesReduceToUtilization) {
  // EDF optimality: U <= 1 exact for D == T, even at exactly 1.
  const std::vector<Subtask> full{sporadic(5, 10, 10, 0), sporadic(10, 20, 20, 1)};
  EXPECT_TRUE(edf_schedulable(full));
  const std::vector<Subtask> over{sporadic(6, 10, 10, 0), sporadic(10, 20, 20, 1)};
  EXPECT_FALSE(edf_schedulable(over));
}

TEST(EdfSchedulable, ConstrainedDeadlineHandExample) {
  // (2,10,5) + (5,20,12): h(5)=2, h(12)=2+5=7 <= 12, h(15)=4+5=9,
  // h(25)=6+5=11, h(32)=6+10=16 <= 32... schedulable.
  const std::vector<Subtask> good{sporadic(2, 10, 5, 0), sporadic(5, 20, 12, 1)};
  EXPECT_TRUE(edf_schedulable(good));
  // Tighten: (6,10,6) + (5,20,12): h(12) = 12+5 = 17 > 12 -> unschedulable.
  const std::vector<Subtask> bad{sporadic(6, 10, 6, 0), sporadic(5, 20, 12, 1)};
  EXPECT_FALSE(edf_schedulable(bad));
}

TEST(EdfSchedulable, WcetBeyondDeadlineRejected) {
  EXPECT_FALSE(edf_schedulable(std::vector<Subtask>{sporadic(7, 10, 6, 0)}));
}

TEST(EdfSchedulable, EmptySetAccepted) {
  EXPECT_TRUE(edf_schedulable({}));
}

TEST(EdfSchedulable, ArbitraryDeadlineThrows) {
  EXPECT_THROW((void)edf_schedulable(std::vector<Subtask>{sporadic(1, 10, 12, 0)}),
               InvalidTaskError);
}

// Cross-check QPA against brute-force demand checking at every deadline
// point within a safe horizon, on randomized constrained-deadline sets.
TEST(EdfSchedulable, AgreesWithBruteForceDemandCheck) {
  Rng rng(6001);
  // Small-LCM periods keep the brute-force horizon tiny (lcm = 60).
  const Time period_grid[] = {10, 15, 20, 30, 60};
  int schedulable_count = 0;
  for (int trial = 0; trial < 600; ++trial) {
    std::vector<Subtask> set;
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < n; ++i) {
      const Time period = period_grid[rng.uniform_int(0, 4)];
      // Alternate light and tight draws so both outcomes occur often.
      const Time wcet_hi =
          trial % 2 == 0 ? std::max<Time>(1, period / n) : std::max<Time>(1, period / 2);
      const Time wcet = rng.uniform_int(1, wcet_hi);
      const Time deadline = rng.uniform_int(wcet, period);
      set.push_back(sporadic(wcet, period, deadline, static_cast<std::size_t>(i)));
    }
    // Brute force over one hyperperiod + max deadline (sufficient for
    // sporadic dbf: the demand pattern repeats with the hyperperiod).
    std::vector<Time> periods;
    for (const Subtask& s : set) periods.push_back(s.period);
    const Time h = *hyperperiod(periods);
    Time max_deadline = 0;
    for (const Subtask& s : set) max_deadline = std::max(max_deadline, s.deadline);
    double utilization = 0.0;
    for (const Subtask& s : set) utilization += s.utilization();
    bool brute = utilization <= 1.0 + 1e-12;
    if (brute) {
      for (Time t = 1; t <= h + max_deadline; ++t) {
        if (total_demand(set, t) > t) {
          brute = false;
          break;
        }
      }
    }
    ASSERT_EQ(edf_schedulable(set), brute) << "trial " << trial;
    schedulable_count += brute;
  }
  // Both outcomes must actually occur for the test to mean anything.
  EXPECT_GT(schedulable_count, 100);
  EXPECT_LT(schedulable_count, 550);
}

TEST(EdfSplit, Name) { EXPECT_EQ(EdfSplit().name(), "EDF-TS"); }

TEST(EdfSplit, WholeTaskFirstFit) {
  const TaskSet tasks = TaskSet::from_pairs({{500, 1000}, {400, 1000}, {300, 1000}});
  const Assignment a = EdfSplit().partition(tasks, 2);
  ASSERT_TRUE(a.success);
  EXPECT_EQ(a.split_task_count(), 0u);
  // FFD: 0.5 -> P1, 0.4 -> P1 (0.9 <= cap), 0.3 -> P2.
  EXPECT_EQ(a.processors[0].subtasks.size(), 2u);
  EXPECT_EQ(a.processors[1].subtasks.size(), 1u);
}

TEST(EdfSplit, SplitsAcrossProcessorsWithWindows) {
  // Three 0.6 tasks on two processors force one split.
  const TaskSet tasks = TaskSet::from_pairs({{600, 1000}, {606, 1010}, {612, 1020}});
  const Assignment a = EdfSplit().partition(tasks, 2);
  ASSERT_TRUE(a.success) << a.describe();
  EXPECT_EQ(a.split_task_count(), 1u);
  // Window invariant: each split chain's windows fit in the period.
  for (const auto& [id, chain] : testing::chains_of(a)) {
    Time window_sum = 0;
    for (const auto& part : chain) window_sum += part.subtask.deadline;
    const Task* task = nullptr;
    for (const Task& t : tasks) {
      if (t.id == id) {
        task = &t;
      }
    }
    ASSERT_NE(task, nullptr);
    if (chain.size() > 1) {
      EXPECT_LE(window_sum, task->period);
    }
  }
}

TEST(EdfSplit, FailsGracefullyWhenOverloaded) {
  const TaskSet tasks = TaskSet::from_pairs({{900, 1000}, {900, 1000}, {900, 1000}});
  const Assignment a = EdfSplit().partition(tasks, 2);
  EXPECT_FALSE(a.success);
  EXPECT_FALSE(a.unassigned.empty());
}

TEST(EdfSplit, BeatsStrictPartitionedEdfOnTightPacking) {
  // 0.6/0.6/0.6 on 2 processors: impossible without splitting.
  const TaskSet tasks = TaskSet::from_pairs({{600, 1000}, {606, 1010}, {612, 1020}});
  EXPECT_TRUE(EdfSplit().accepts(tasks, 2));
}


TEST(EdfSplit, FailedSplitLeavesProcessorsUnchanged) {
  // Overload: the third 0.9 task cannot be placed even with splitting; the
  // staged pieces must not be committed, so the first two processors carry
  // exactly their whole tasks afterwards.
  const TaskSet tasks = TaskSet::from_pairs({{900, 1000}, {905, 1005}, {910, 1010}});
  const Assignment a = EdfSplit().partition(tasks, 2);
  ASSERT_FALSE(a.success);
  ASSERT_EQ(a.unassigned.size(), 1u);
  EXPECT_EQ(a.processors[0].subtasks.size(), 1u);
  EXPECT_EQ(a.processors[1].subtasks.size(), 1u);
  for (const auto& processor : a.processors) {
    for (const Subtask& s : processor.subtasks) {
      EXPECT_EQ(s.kind, SubtaskKind::kWhole);
    }
  }
}

TEST(EdfSplit, PieceWindowsArePositive) {
  Rng rng(6003);
  for (int trial = 0; trial < 40; ++trial) {
    WorkloadConfig config;
    config.tasks = 10;
    config.processors = 3;
    config.max_task_utilization = 0.8;
    config.normalized_utilization = 0.85;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = EdfSplit().partition(tasks, 3);
    for (const auto& processor : a.processors) {
      for (const Subtask& s : processor.subtasks) {
        EXPECT_GT(s.deadline, 0);
        EXPECT_GE(s.deadline, s.wcet);
        EXPECT_LE(s.deadline, s.period);
      }
    }
  }
}

TEST(EdfSplit, AcceptedPartitionsRunCleanUnderEdfSimulation) {
  Rng rng(6002);
  int validated = 0;
  for (int trial = 0; trial < 80; ++trial) {
    WorkloadConfig config;
    config.tasks = 12;
    config.processors = 3;
    config.period_model = PeriodModel::kGrid;
    config.period_grid = small_hyperperiod_grid();
    config.max_task_utilization = 0.8;
    config.normalized_utilization = 0.55 + 0.40 * (trial % 10) / 10.0;
    Rng sample = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet tasks = generate(sample, config);
    const Assignment a = EdfSplit().partition(tasks, 3);
    if (!a.success) continue;
    ++validated;
    SimConfig sim;
    sim.horizon = recommended_horizon(tasks, 1'000'000);
    sim.policy = DispatchPolicy::kEarliestDeadlineFirst;
    const SimResult run = simulate(tasks, a, sim);
    EXPECT_TRUE(run.schedulable)
        << "trial " << trial << "\n" << tasks.describe() << a.describe();
  }
  EXPECT_GT(validated, 40);
}

TEST(EdfSimulation, WindowActivationDefersSecondPiece) {
  // tau_0 = (40,100) split into two 20-tick pieces with windows 50 + 50.
  // The second piece must not start before t = 50 even though the first
  // finishes at t = 20 and P2 idles.
  const TaskSet tasks = TaskSet::from_pairs({{40, 100}});
  Assignment a;
  a.success = true;
  a.processors.resize(2);
  a.processors[0].subtasks = {
      Subtask{0, 0, 0, 20, 100, 50, SubtaskKind::kBody}};
  a.processors[1].subtasks = {
      Subtask{0, 0, 1, 20, 100, 50, SubtaskKind::kTail}};
  SimConfig sim;
  sim.horizon = 100;
  sim.policy = DispatchPolicy::kEarliestDeadlineFirst;
  const SimResult run = simulate(tasks, a, sim);
  EXPECT_TRUE(run.schedulable);
  // P2 busy exactly [50, 70): total 20 ticks; if activation were eager it
  // would also be 20 -- so check the job's response instead: 70 - 0 = 70.
  EXPECT_EQ(run.max_response[0], 70);
}

TEST(EdfSimulation, WindowsBeyondPeriodRejected) {
  const TaskSet tasks = TaskSet::from_pairs({{40, 100}});
  Assignment a;
  a.success = true;
  a.processors.resize(2);
  a.processors[0].subtasks = {Subtask{0, 0, 0, 20, 100, 80, SubtaskKind::kBody}};
  a.processors[1].subtasks = {Subtask{0, 0, 1, 20, 100, 30, SubtaskKind::kTail}};
  SimConfig sim;
  sim.horizon = 100;
  sim.policy = DispatchPolicy::kEarliestDeadlineFirst;
  EXPECT_THROW((void)simulate(tasks, a, sim), InvalidConfigError);
}

TEST(EdfSimulation, DispatchesByAbsoluteDeadline) {
  // Two implicit-deadline tasks on one processor; EDF runs the shorter-
  // deadline job first even though FP rank order agrees here -- check the
  // preemption profile differs from a rank-inverted FP setup.
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}, {60, 120}});
  Assignment a;
  a.success = true;
  a.processors.resize(1);
  a.processors[0].subtasks = {whole_subtask(tasks[0], 0), whole_subtask(tasks[1], 1)};
  SimConfig sim;
  sim.horizon = 600;  // lcm(100,120) = 600
  sim.policy = DispatchPolicy::kEarliestDeadlineFirst;
  const SimResult run = simulate(tasks, a, sim);
  EXPECT_TRUE(run.schedulable);
  EXPECT_EQ(run.busy_time[0], 6 * 30 + 5 * 60);
}

}  // namespace
}  // namespace rmts
