// Sensitivity analysis queries and the exhaustive small-case exactness
// check tying RTA to the simulator.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/sensitivity.hpp"
#include "bounds/ll_bound.hpp"
#include "common/error.hpp"
#include "partition/rmts.hpp"
#include "partition/rmts_light.hpp"
#include "rta/rta.hpp"
#include "sim/simulator.hpp"

namespace rmts {
namespace {

/// Closed-form stand-in with a known acceptance region.
class ThresholdTest final : public SchedulabilityTest {
 public:
  explicit ThresholdTest(double threshold) : threshold_(threshold) {}
  [[nodiscard]] bool accepts(const TaskSet& tasks,
                             std::size_t processors) const override {
    return tasks.normalized_utilization(processors) <= threshold_;
  }
  [[nodiscard]] std::string name() const override { return "threshold"; }

 private:
  double threshold_;
};

TEST(MinProcessors, FindsSmallestAcceptingCount) {
  const TaskSet tasks = TaskSet::from_pairs(
      {{500, 1000}, {500, 1000}, {500, 1000}, {500, 1000}});  // U = 2.0
  const ThresholdTest test(0.7);  // needs U/M <= 0.7 -> M >= 2.857 -> 3
  EXPECT_EQ(min_processors(test, tasks, 8), 3u);
}

TEST(MinProcessors, ZeroWhenNothingWorks) {
  // A task with U > max-per-task capability: no processor count helps
  // a test keyed on the largest single task.
  class MaxUtilizationTest final : public SchedulabilityTest {
   public:
    [[nodiscard]] bool accepts(const TaskSet& tasks, std::size_t) const override {
      return tasks.max_utilization() <= 0.5;
    }
    [[nodiscard]] std::string name() const override { return "max-u"; }
  };
  const TaskSet tasks = TaskSet::from_pairs({{900, 1000}});
  EXPECT_EQ(min_processors(MaxUtilizationTest(), tasks, 4), 0u);
}

TEST(MinProcessors, RealAlgorithm) {
  // Three 0.6-utilization tasks: strict bound says ceil(1.8) = 2 with
  // splitting; RM-TS/light indeed needs exactly 2.
  const TaskSet tasks = TaskSet::from_pairs({{600, 1000}, {606, 1010}, {612, 1020}});
  const RmtsLight algorithm;
  EXPECT_EQ(min_processors(algorithm, tasks, 4), 2u);
}

TEST(WcetHeadroom, ThresholdTestClosedForm) {
  // Two tasks of U = 0.3 on one processor, threshold 0.9: each task can
  // grow to U = 0.6, i.e. wcet 600.
  const TaskSet tasks = TaskSet::from_pairs({{300, 1000}, {300, 1000}});
  const ThresholdTest test(0.9);
  const std::vector<Time> headroom = wcet_headroom(test, tasks, 1);
  ASSERT_EQ(headroom.size(), 2u);
  EXPECT_EQ(headroom[0], 600);
  EXPECT_EQ(headroom[1], 600);
}

TEST(WcetHeadroom, UniprocessorRtaMatchesMaxSplitStyleSlack) {
  // (200, 1000) and (300, 1500) on one processor under RM-TS/light (M=1 ==
  // exact uniprocessor RTA).  tau_0's headroom: largest C with
  // C + interference schedulable; hand computation: tau_1 needs
  // 300 + 2C <= 1500 at t=1500... testing points for tau_1: {1000, 1500}:
  // t=1000: 1000-300 = 700; t=1500: (1500-300)/2 = 600 -> 700.
  const TaskSet tasks = TaskSet::from_pairs({{200, 1000}, {300, 1500}});
  const RmtsLight algorithm;
  const std::vector<Time> headroom = wcet_headroom(algorithm, tasks, 1);
  EXPECT_EQ(headroom[0], 700);
  // tau_1 keeps the processor exactly full: 300 -> 1500 - 2*200*... its
  // response 200*ceil(R/1000)+C <= 1500: C = 1100 gives R = 1500.
  EXPECT_EQ(headroom[1], 1100);
}

TEST(WcetHeadroom, RequiresAcceptedBase) {
  const TaskSet tasks = TaskSet::from_pairs({{900, 1000}, {900, 1000}});
  const RmtsLight algorithm;
  EXPECT_THROW((void)wcet_headroom(algorithm, tasks, 1), InvalidConfigError);
}

TEST(CriticalScalingFactor, ThresholdClosedForm) {
  // U_M = 0.3, threshold 0.6 -> factor ~2.0.
  const TaskSet tasks = TaskSet::from_pairs({{300, 1000}});
  const ThresholdTest test(0.6);
  EXPECT_NEAR(critical_scaling_factor(test, tasks, 1, 0.1, 4.0), 2.0, 0.01);
}

TEST(CriticalScalingFactor, EdgesAndValidation) {
  const TaskSet tasks = TaskSet::from_pairs({{300, 1000}});
  const ThresholdTest nothing(0.01);
  EXPECT_DOUBLE_EQ(critical_scaling_factor(nothing, tasks, 1), 0.0);
  const ThresholdTest everything(10.0);
  EXPECT_DOUBLE_EQ(critical_scaling_factor(everything, tasks, 1, 0.1, 3.0), 3.0);
  EXPECT_THROW((void)critical_scaling_factor(everything, tasks, 1, 0.0, 1.0),
               InvalidConfigError);
  // Degenerate bracket (lo == hi) and non-positive tolerance are caller
  // errors, not silent no-ops.
  EXPECT_THROW((void)critical_scaling_factor(everything, tasks, 1, 1.0, 1.0),
               InvalidConfigError);
  EXPECT_THROW((void)critical_scaling_factor(everything, tasks, 1, 2.0, 1.0),
               InvalidConfigError);
  EXPECT_THROW((void)critical_scaling_factor(everything, tasks, 1, 0.1, 4.0, 0.0),
               InvalidConfigError);
  EXPECT_THROW((void)critical_scaling_factor(everything, tasks, 1, 0.1, 4.0, -1.0),
               InvalidConfigError);
}

// Exhaustive exactness: over ALL two-task sets on a small parameter grid,
// uniprocessor RTA says schedulable iff the synchronous periodic
// simulation over two hyperperiods is miss-free.  (The critical-instant
// theorem makes the synchronous case worst, so equivalence -- not just
// one-sided soundness -- must hold.)
TEST(Exhaustive, RtaMatchesSimulationOnAllSmallPairs) {
  const Time periods[] = {4, 6, 8, 12};
  int checked = 0;
  int schedulable_count = 0;
  for (const Time t1 : periods) {
    for (const Time t2 : periods) {
      if (t2 < t1) continue;
      for (Time c1 = 1; c1 <= t1; ++c1) {
        for (Time c2 = 1; c2 <= t2; ++c2) {
          const TaskSet tasks =
              TaskSet::from_pairs({{c1, t1}, {c2, t2}});
          const bool rta = rm_schedulable_uniprocessor(tasks);

          Assignment a;
          a.success = true;
          a.processors.resize(1);
          a.processors[0].subtasks = {whole_subtask(tasks[0], 0),
                                      whole_subtask(tasks[1], 1)};
          SimConfig sim;
          sim.horizon = recommended_horizon(tasks, 1000);
          const bool simulated = simulate(tasks, a, sim).schedulable;
          ASSERT_EQ(rta, simulated)
              << "(" << c1 << "," << t1 << ") (" << c2 << "," << t2 << ")";
          ++checked;
          schedulable_count += rta;
        }
      }
    }
  }
  EXPECT_GT(checked, 400);
  EXPECT_GT(schedulable_count, 50);
  EXPECT_LT(schedulable_count, checked);
}

// Same idea, three tasks, sparser grid.
TEST(Exhaustive, RtaMatchesSimulationOnSmallTriples) {
  const Time periods[] = {4, 8, 16};
  int checked = 0;
  for (const Time t1 : periods) {
    for (const Time t2 : periods) {
      for (const Time t3 : periods) {
        if (t2 < t1 || t3 < t2) continue;
        for (Time c1 = 1; c1 <= t1; c1 += 1) {
          for (Time c2 = 1; c2 <= t2; c2 += 2) {
            for (Time c3 = 1; c3 <= t3; c3 += 3) {
              const TaskSet tasks =
                  TaskSet::from_pairs({{c1, t1}, {c2, t2}, {c3, t3}});
              const bool rta = rm_schedulable_uniprocessor(tasks);
              Assignment a;
              a.success = true;
              a.processors.resize(1);
              a.processors[0].subtasks = {whole_subtask(tasks[0], 0),
                                          whole_subtask(tasks[1], 1),
                                          whole_subtask(tasks[2], 2)};
              SimConfig sim;
              sim.horizon = recommended_horizon(tasks, 1000);
              ASSERT_EQ(rta, simulate(tasks, a, sim).schedulable)
                  << tasks.describe();
              ++checked;
            }
          }
        }
      }
    }
  }
  EXPECT_GT(checked, 1000);
}

}  // namespace
}  // namespace rmts
