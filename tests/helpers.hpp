// Shared invariant checkers used by the partition, simulator and theorem
// tests.  These encode the structural lemmas of the paper so every test can
// assert them on any produced Assignment.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "partition/assignment.hpp"
#include "rta/rta.hpp"
#include "sim/simulator.hpp"
#include "tasks/task_set.hpp"

namespace rmts::testing {

/// One task's split chain as re-derived from an assignment.
struct ChainPart {
  std::size_t processor;
  Subtask subtask;
};

/// Chains keyed by task id, parts in chain (part-index) order.
inline std::map<TaskId, std::vector<ChainPart>> chains_of(const Assignment& a) {
  std::map<TaskId, std::map<int, ChainPart>> by_part;
  for (std::size_t q = 0; q < a.processors.size(); ++q) {
    for (const Subtask& s : a.processors[q].subtasks) {
      by_part[s.task_id].emplace(s.part, ChainPart{q, s});
    }
  }
  std::map<TaskId, std::vector<ChainPart>> chains;
  for (auto& [id, parts] : by_part) {
    for (auto& [part, chain_part] : parts) chains[id].push_back(chain_part);
  }
  return chains;
}

/// Structural soundness of a successful partition:
///  * every task fully covered by a contiguous chain (bodies then one tail,
///    or a single whole subtask);
///  * per-processor priority ranks strictly increasing and unique;
///  * synthetic deadlines satisfy paper Eq. 1 with the *measured* RTA
///    response times of predecessor parts;
///  * when `check_rta`, every processor passes exact RTA (Lemma 4's
///    premise -- true for the RTA-admission algorithms by construction,
///    not enforced by the threshold-based SPA family);
///  * when `check_body_top_priority`, every body subtask has the highest
///    priority on its host processor (Lemma 2).
/// `deadline_by_body_wcet` switches the Eq. 1 check to the SPA convention
/// (body response time := body wcet) used by the threshold algorithms.
inline void expect_valid_partition(const TaskSet& tasks, const Assignment& a,
                                   bool check_rta = true,
                                   bool check_body_top_priority = true,
                                   bool deadline_by_body_wcet = false) {
  ASSERT_TRUE(a.success);

  // Per-processor ordering + (optional) exact schedulability.
  std::vector<ProcessorRta> rta(a.processors.size());
  for (std::size_t q = 0; q < a.processors.size(); ++q) {
    const auto& subtasks = a.processors[q].subtasks;
    for (std::size_t i = 0; i + 1 < subtasks.size(); ++i) {
      EXPECT_LT(subtasks[i].priority, subtasks[i + 1].priority)
          << "processor " << q << " not strictly priority-sorted";
    }
    rta[q] = analyze_processor(subtasks);
    if (check_rta) {
      EXPECT_TRUE(rta[q].schedulable) << "processor " << q << " fails RTA";
    }
    if (check_body_top_priority) {
      for (std::size_t i = 0; i < subtasks.size(); ++i) {
        if (subtasks[i].kind == SubtaskKind::kBody) {
          EXPECT_EQ(i, 0u) << "body subtask of tau_" << subtasks[i].task_id
                           << " is not top priority on processor " << q;
        }
      }
    }
  }

  // Chain structure + synthetic deadlines (Eq. 1).
  const auto chains = chains_of(a);
  EXPECT_EQ(chains.size(), tasks.size());
  for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
    const Task& task = tasks[rank];
    const auto it = chains.find(task.id);
    ASSERT_NE(it, chains.end()) << "tau_" << task.id << " unassigned";
    const auto& chain = it->second;

    Time wcet_sum = 0;
    Time expected_deadline = task.period;
    for (std::size_t k = 0; k < chain.size(); ++k) {
      const Subtask& s = chain[k].subtask;
      EXPECT_EQ(s.part, static_cast<int>(k));
      EXPECT_EQ(s.priority, rank);
      EXPECT_EQ(s.period, task.period);
      EXPECT_EQ(s.deadline, expected_deadline)
          << "tau_" << task.id << " part " << k << " synthetic deadline";
      const bool is_last = (k + 1 == chain.size());
      if (chain.size() == 1) {
        EXPECT_EQ(s.kind, SubtaskKind::kWhole);
      } else {
        EXPECT_EQ(s.kind, is_last ? SubtaskKind::kTail : SubtaskKind::kBody);
      }
      wcet_sum += s.wcet;
      EXPECT_GT(s.wcet, 0);

      if (!is_last) {
        if (deadline_by_body_wcet) {
          expected_deadline -= s.wcet;  // SPA convention (Lemma 2: R = C)
        } else if (rta[chain[k].processor].schedulable) {
          // Delta^{k+1} = Delta^k - R^k (paper Eq. 1), with R measured by
          // RTA on the hosting processor.
          const auto& hosted = a.processors[chain[k].processor].subtasks;
          for (std::size_t i = 0; i < hosted.size(); ++i) {
            if (hosted[i].task_id == s.task_id && hosted[i].part == s.part) {
              expected_deadline -= rta[chain[k].processor].response[i];
              break;
            }
          }
        }
      }
    }
    EXPECT_EQ(wcet_sum, task.wcet) << "tau_" << task.id << " chain coverage";
  }
}

/// Simulates the assignment for two hyperperiods (capped) and requires a
/// clean run.  This is the run-time ground truth of Lemma 4.
inline void expect_simulation_clean(const TaskSet& tasks, const Assignment& a,
                                    Time cap = 20'000'000) {
  SimConfig config;
  config.horizon = recommended_horizon(tasks, cap);
  const SimResult result = simulate(tasks, a, config);
  EXPECT_TRUE(result.schedulable)
      << "deadline miss: tau_" << (result.misses.empty() ? 0u : result.misses[0].task)
      << "\n"
      << tasks.describe() << a.describe();
}

}  // namespace rmts::testing
