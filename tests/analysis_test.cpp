// Experiment harness: parallel_for semantics, acceptance-ratio sweeps,
// breakdown-utilization search, and thread-count invariance.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "analysis/acceptance.hpp"
#include "analysis/breakdown.hpp"
#include "common/parallel.hpp"
#include "common/error.hpp"

namespace rmts {
namespace {

/// Closed-form stand-in: accepts iff U_M(tau) <= threshold.  Lets the
/// harness tests assert exact expected curves.
class ThresholdTest final : public SchedulabilityTest {
 public:
  explicit ThresholdTest(double threshold) : threshold_(threshold) {}
  [[nodiscard]] bool accepts(const TaskSet& tasks,
                             std::size_t processors) const override {
    return tasks.normalized_utilization(processors) <= threshold_;
  }
  [[nodiscard]] std::string name() const override { return "threshold"; }

 private:
  double threshold_;
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> hits(100, 0);  // no atomics needed with 1 thread
  parallel_for(100, 1, [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelFor, PropagatesWorkerException) {
  EXPECT_THROW(parallel_for(64, 4,
                            [](std::size_t i) {
                              if (i == 13) throw InvalidConfigError("boom");
                            }),
               InvalidConfigError);
}

TEST(Sweep, EndpointsAndSpacing) {
  const auto points = sweep(0.5, 1.0, 6);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_DOUBLE_EQ(points.front(), 0.5);
  EXPECT_DOUBLE_EQ(points.back(), 1.0);
  EXPECT_NEAR(points[1] - points[0], 0.1, 1e-12);
}

TEST(Sweep, RejectsDegenerate) {
  EXPECT_THROW(sweep(0.0, 1.0, 1), InvalidConfigError);
}

TEST(Acceptance, StepFunctionAroundThreshold) {
  AcceptanceConfig config;
  config.workload.tasks = 8;
  config.workload.processors = 2;
  config.utilization_points = {0.3, 0.5, 0.69, 0.9};
  config.samples = 20;
  const TestRoster roster{std::make_shared<ThresholdTest>(0.7)};
  const AcceptanceResult result = run_acceptance(config, roster);
  ASSERT_EQ(result.ratio.size(), 4u);
  // Generated sets land within ~1% of the target utilization.
  EXPECT_DOUBLE_EQ(result.ratio[0][0], 1.0);
  EXPECT_DOUBLE_EQ(result.ratio[1][0], 1.0);
  EXPECT_DOUBLE_EQ(result.ratio[2][0], 1.0);
  EXPECT_DOUBLE_EQ(result.ratio[3][0], 0.0);
}

TEST(Acceptance, DeterministicAcrossThreadCounts) {
  AcceptanceConfig config;
  config.workload.tasks = 8;
  config.workload.processors = 2;
  config.utilization_points = {0.66, 0.70, 0.74};
  config.samples = 60;
  const TestRoster roster{std::make_shared<ThresholdTest>(0.7)};
  config.threads = 1;
  const AcceptanceResult serial = run_acceptance(config, roster);
  config.threads = 8;
  const AcceptanceResult parallel = run_acceptance(config, roster);
  for (std::size_t p = 0; p < serial.ratio.size(); ++p) {
    EXPECT_DOUBLE_EQ(serial.ratio[p][0], parallel.ratio[p][0]);
  }
}

TEST(Acceptance, TableShape) {
  AcceptanceConfig config;
  config.workload.tasks = 4;
  config.workload.processors = 2;
  config.utilization_points = {0.4, 0.6};
  config.samples = 5;
  const TestRoster roster{std::make_shared<ThresholdTest>(0.5),
                          std::make_shared<ThresholdTest>(0.9)};
  const AcceptanceResult result = run_acceptance(config, roster);
  EXPECT_EQ(result.algorithm_names.size(), 2u);
  EXPECT_EQ(result.to_table().row_count(), 2u);
}

TEST(Acceptance, LastPointAbove) {
  AcceptanceResult result;
  result.utilization_points = {0.5, 0.6, 0.7};
  result.ratio = {{1.0}, {0.8}, {0.1}};
  EXPECT_DOUBLE_EQ(result.last_point_above(0, 0.5), 0.6);
  EXPECT_DOUBLE_EQ(result.last_point_above(0, 0.95), 0.5);
  EXPECT_DOUBLE_EQ(result.last_point_above(0, 1.1), 0.0);
}

TEST(Acceptance, EmptyRosterOrSweepThrows) {
  AcceptanceConfig config;
  config.utilization_points = {0.5};
  EXPECT_THROW(run_acceptance(config, {}), InvalidConfigError);
  const TestRoster roster{std::make_shared<ThresholdTest>(0.5)};
  config.utilization_points.clear();
  EXPECT_THROW(run_acceptance(config, roster), InvalidConfigError);
}

TEST(Breakdown, LocatesThresholdWithinTolerance) {
  Rng rng(1);
  WorkloadConfig workload;
  workload.tasks = 8;
  workload.processors = 2;
  workload.normalized_utilization = 0.3;
  workload.max_task_utilization = 0.3;
  const TaskSet base = generate(rng, workload);
  const ThresholdTest test(0.65);
  const double breakdown = breakdown_utilization(test, base, 2, 0.1, 1.0, 1e-3);
  EXPECT_NEAR(breakdown, 0.65, 0.01);
}

TEST(Breakdown, ZeroWhenEvenLowRejected) {
  Rng rng(2);
  WorkloadConfig workload;
  workload.tasks = 8;
  workload.processors = 2;
  workload.normalized_utilization = 0.3;
  const TaskSet base = generate(rng, workload);
  const ThresholdTest test(0.05);
  EXPECT_DOUBLE_EQ(breakdown_utilization(test, base, 2, 0.2, 1.0), 0.0);
}

TEST(Breakdown, HiReturnedWhenEverythingAccepted) {
  Rng rng(3);
  WorkloadConfig workload;
  workload.tasks = 8;
  workload.processors = 2;
  workload.normalized_utilization = 0.3;
  workload.max_task_utilization = 0.3;
  const TaskSet base = generate(rng, workload);
  const ThresholdTest test(2.0);
  // hi is additionally capped so no task exceeds U = 1 under scaling.
  const double cap = base.normalized_utilization(2) / base.max_utilization();
  EXPECT_NEAR(breakdown_utilization(test, base, 2, 0.2, 0.9),
              std::min(0.9, cap), 1e-9);
}

TEST(Breakdown, RunAveragesOverShapes) {
  BreakdownConfig config;
  config.workload.tasks = 8;
  config.workload.processors = 2;
  config.workload.normalized_utilization = 0.3;
  config.workload.max_task_utilization = 0.3;
  config.samples = 10;
  const TestRosterRef roster{std::make_shared<ThresholdTest>(0.6),
                             std::make_shared<ThresholdTest>(0.8)};
  const BreakdownResult result = run_breakdown(config, roster);
  ASSERT_EQ(result.mean.size(), 2u);
  EXPECT_NEAR(result.mean[0], 0.6, 0.01);
  EXPECT_NEAR(result.mean[1], 0.8, 0.01);
  EXPECT_LE(result.min[0], result.mean[0] + 1e-9);
}


TEST(Breakdown, DeterministicAcrossThreadCounts) {
  BreakdownConfig config;
  config.workload.tasks = 8;
  config.workload.processors = 2;
  config.workload.normalized_utilization = 0.3;
  config.workload.max_task_utilization = 0.3;
  config.samples = 16;
  const TestRosterRef roster{std::make_shared<ThresholdTest>(0.6),
                             std::make_shared<ThresholdTest>(0.8)};
  config.threads = 1;
  const BreakdownResult serial = run_breakdown(config, roster);
  config.threads = 8;
  const BreakdownResult parallel = run_breakdown(config, roster);
  for (std::size_t a = 0; a < roster.size(); ++a) {
    EXPECT_DOUBLE_EQ(serial.mean[a], parallel.mean[a]);
    EXPECT_DOUBLE_EQ(serial.min[a], parallel.min[a]);
  }
}

TEST(Breakdown, BadRangeThrows) {
  Rng rng(4);
  WorkloadConfig workload;
  workload.tasks = 4;
  workload.processors = 2;
  const TaskSet base = generate(rng, workload);
  const ThresholdTest test(0.5);
  EXPECT_THROW((void)breakdown_utilization(test, base, 2, 0.0, 1.0),
               InvalidConfigError);
  EXPECT_THROW((void)breakdown_utilization(test, base, 2, 0.9, 0.5),
               InvalidConfigError);
}

}  // namespace
}  // namespace rmts
