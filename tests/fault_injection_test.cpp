// Fault-injection layer: overruns, jitter, processor failure, containment
// policies, and the bit-identity of the inert model (sim/fault.hpp).
#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "partition/rmts_light.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace rmts {
namespace {

Assignment uniprocessor(const TaskSet& tasks) {
  Assignment a;
  a.success = true;
  a.processors.resize(1);
  for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
    a.processors[0].subtasks.push_back(whole_subtask(tasks[rank], rank));
  }
  return a;
}

void expect_equal_counters(const SimResult& lhs, const SimResult& rhs) {
  EXPECT_EQ(lhs.schedulable, rhs.schedulable);
  EXPECT_EQ(lhs.misses.size(), rhs.misses.size());
  EXPECT_EQ(lhs.simulated_until, rhs.simulated_until);
  EXPECT_EQ(lhs.jobs_released, rhs.jobs_released);
  EXPECT_EQ(lhs.jobs_completed, rhs.jobs_completed);
  EXPECT_EQ(lhs.preemptions, rhs.preemptions);
  EXPECT_EQ(lhs.migrations, rhs.migrations);
  EXPECT_EQ(lhs.busy_time, rhs.busy_time);
  EXPECT_EQ(lhs.max_response, rhs.max_response);
  EXPECT_EQ(lhs.jobs_degraded, rhs.jobs_degraded);
  EXPECT_EQ(lhs.degraded_per_task, rhs.degraded_per_task);
  EXPECT_EQ(lhs.jobs_aborted, rhs.jobs_aborted);
  EXPECT_EQ(lhs.jobs_demoted, rhs.jobs_demoted);
  EXPECT_EQ(lhs.subtasks_orphaned, rhs.subtasks_orphaned);
}

TEST(FaultModel, InertModelIsIdentityOnCounters) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}, {40, 150}, {50, 300}});
  const Assignment a = uniprocessor(tasks);
  SimConfig nominal;
  nominal.horizon = recommended_horizon(tasks, 100'000);
  const SimResult base = simulate(tasks, a, nominal);
  ASSERT_TRUE(base.schedulable);

  // Factor 1.0, zero ticks, zero jitter, no failure: the model is inert
  // regardless of seed/probability/containment, and the run must match the
  // nominal one on every counter.
  for (const ContainmentPolicy policy :
       {ContainmentPolicy::kNone, ContainmentPolicy::kBudgetEnforcement,
        ContainmentPolicy::kPriorityDemotion}) {
    SimConfig faulty = nominal;
    faulty.faults.seed = 12345;
    faulty.faults.overrun_factor = 1.0;
    faulty.faults.overrun_ticks = 0;
    faulty.faults.overrun_probability = 0.5;
    faulty.faults.containment = policy;
    expect_equal_counters(base, simulate(tasks, a, faulty));
  }
}

TEST(FaultModel, ZeroProbabilityDisablesOverruns) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}, {40, 150}});
  const Assignment a = uniprocessor(tasks);
  SimConfig config;
  config.horizon = recommended_horizon(tasks, 100'000);
  const SimResult base = simulate(tasks, a, config);
  config.faults.overrun_factor = 3.0;
  config.faults.overrun_probability = 0.0;
  expect_equal_counters(base, simulate(tasks, a, config));
}

TEST(FaultModel, OverrunFactorCausesMissWithoutContainment) {
  // 50 + 40 = 90 <= 100 nominally; at factor 3.0 the processor needs 270.
  const TaskSet tasks = TaskSet::from_pairs({{50, 100}, {40, 100}});
  const Assignment a = uniprocessor(tasks);
  SimConfig config;
  config.horizon = 1000;
  config.faults.overrun_factor = 3.0;
  const SimResult result = simulate(tasks, a, config);
  EXPECT_FALSE(result.schedulable);
  ASSERT_FALSE(result.misses.empty());
  EXPECT_GT(result.jobs_degraded, 0u);
}

TEST(FaultModel, AdditiveTicksApplyToFinalPieceOnly) {
  // Split chain: body (20, D=100) on P1, tail (30, D=80) on P2.  Additive
  // ticks land on the tail only: response 20 + (30 + 5) = 55.
  const TaskSet tasks = TaskSet::from_pairs({{50, 100}});
  const Subtask body{0, 0, 0, 20, 100, 100, SubtaskKind::kBody};
  const Subtask tail{0, 0, 1, 30, 100, 80, SubtaskKind::kTail};
  Assignment a;
  a.success = true;
  a.processors.resize(2);
  a.processors[0].subtasks = {body};
  a.processors[1].subtasks = {tail};
  SimConfig config;
  config.horizon = 1000;
  config.faults.overrun_ticks = 5;
  const SimResult result = simulate(tasks, a, config);
  ASSERT_TRUE(result.schedulable);
  EXPECT_EQ(result.max_response[0], 55);
  EXPECT_EQ(result.jobs_degraded, result.jobs_released);
  EXPECT_EQ(result.degraded_per_task[0], result.jobs_released);
}

TEST(FaultModel, FactorScalesEveryChainPiece) {
  // Factor 1.5 with +5 ticks: body 20 -> 30, tail 30 -> 45 + 5 = 50;
  // end-to-end response 80 (still inside T = 100).
  const TaskSet tasks = TaskSet::from_pairs({{50, 100}});
  const Subtask body{0, 0, 0, 20, 100, 100, SubtaskKind::kBody};
  const Subtask tail{0, 0, 1, 30, 100, 80, SubtaskKind::kTail};
  Assignment a;
  a.success = true;
  a.processors.resize(2);
  a.processors[0].subtasks = {body};
  a.processors[1].subtasks = {tail};
  SimConfig config;
  config.horizon = 1000;
  config.faults.overrun_factor = 1.5;
  config.faults.overrun_ticks = 5;
  const SimResult result = simulate(tasks, a, config);
  ASSERT_TRUE(result.schedulable);
  EXPECT_EQ(result.max_response[0], 80);
}

TEST(Containment, BudgetEnforcementAbortsInsteadOfMissing) {
  const TaskSet tasks = TaskSet::from_pairs({{50, 100}, {40, 100}});
  const Assignment a = uniprocessor(tasks);
  SimConfig config;
  config.horizon = 1000;
  config.stop_at_first_miss = false;
  config.faults.overrun_factor = 3.0;
  config.faults.containment = ContainmentPolicy::kBudgetEnforcement;
  const SimResult result = simulate(tasks, a, config);
  // Every job is killed exactly at its nominal budget, so the processor
  // never carries more than the (schedulable) nominal demand: no misses,
  // no completions, one abort per released job.
  EXPECT_TRUE(result.schedulable);
  EXPECT_TRUE(result.misses.empty());
  EXPECT_EQ(result.jobs_completed, 0u);
  // Jobs released at the horizon boundary never get to execute (or abort).
  EXPECT_GT(result.jobs_aborted, 0u);
  EXPECT_GE(result.jobs_aborted + tasks.size(), result.jobs_released);
  EXPECT_EQ(result.jobs_degraded, result.jobs_released);
}

TEST(Containment, BudgetEnforcementPassesNonOverrunningJobsThrough) {
  // The abort only triggers when the injected execution actually exceeds
  // the budget: +1 tick aborts every job, disabling the draw (probability
  // 0) completes every job.
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}});
  const Assignment a = uniprocessor(tasks);
  SimConfig config;
  config.horizon = 1000;
  config.faults.overrun_ticks = 1;
  config.faults.containment = ContainmentPolicy::kBudgetEnforcement;
  const SimResult overrun = simulate(tasks, a, config);
  EXPECT_GT(overrun.jobs_aborted, 0u);
  EXPECT_GE(overrun.jobs_aborted + 1, overrun.jobs_released);  // horizon edge
  config.faults.overrun_probability = 0.0;
  const SimResult clean = simulate(tasks, a, config);
  EXPECT_EQ(clean.jobs_aborted, 0u);
  EXPECT_GE(clean.jobs_completed + 1, clean.jobs_released);  // horizon edge
}

TEST(Containment, DemotionAttributesMissesToOverrunningTasks) {
  // Random overruns on half the jobs; under priority demotion a job past
  // its budget no longer preempts anyone, so only tasks that actually
  // overran can miss.
  const TaskSet tasks =
      TaskSet::from_pairs({{30, 100}, {50, 150}, {60, 300}});
  const Assignment a = uniprocessor(tasks);
  SimConfig config;
  config.horizon = recommended_horizon(tasks, 100'000);
  config.stop_at_first_miss = false;
  config.faults.seed = 7;
  config.faults.overrun_factor = 2.5;
  config.faults.overrun_probability = 0.5;
  config.faults.containment = ContainmentPolicy::kPriorityDemotion;
  const SimResult result = simulate(tasks, a, config);
  EXPECT_GT(result.jobs_degraded, 0u);
  EXPECT_GT(result.jobs_demoted, 0u);
  // Attribution invariant: a task with zero degraded jobs never misses.
  for (const DeadlineMiss& miss : result.misses) {
    std::size_t rank = tasks.size();
    for (std::size_t r = 0; r < tasks.size(); ++r) {
      if (tasks[r].id == miss.task) rank = r;
    }
    ASSERT_LT(rank, tasks.size());
    EXPECT_GT(result.degraded_per_task[rank], 0u)
        << "non-overrunning tau_" << miss.task << " missed under demotion";
  }
}

TEST(FaultModel, ProcessorFailureOrphansAndMisses) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}, {40, 100}});
  Assignment a;
  a.success = true;
  a.processors.resize(2);
  a.processors[0].subtasks = {whole_subtask(tasks[0], 0)};
  a.processors[1].subtasks = {whole_subtask(tasks[1], 1)};
  SimConfig config;
  config.horizon = 1000;
  config.stop_at_first_miss = false;
  config.faults.failed_processor = 0;
  config.faults.failure_time = 150;
  const SimResult result = simulate(tasks, a, config);
  EXPECT_FALSE(result.schedulable);
  EXPECT_GT(result.subtasks_orphaned, 0u);
  // Only the task hosted on the dead processor misses; its survivor peer
  // keeps running.
  for (const DeadlineMiss& miss : result.misses) {
    EXPECT_EQ(miss.task, tasks[0].id);
  }
  EXPECT_LE(result.busy_time[0], 150);
  EXPECT_GT(result.busy_time[1], 150);
}

TEST(FaultModel, JitterIsDeadlineAnchored) {
  // C = 30, T = 100: any release delay j <= 70 leaves >= 30 ticks to the
  // absolute deadline (nominal release + T), so the run stays clean.
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}});
  const Assignment a = uniprocessor(tasks);
  SimConfig nominal;
  nominal.horizon = 10'000;
  const SimResult base = simulate(tasks, a, nominal);
  SimConfig jittery = nominal;
  jittery.faults.seed = 3;
  jittery.faults.release_jitter = 70;
  const SimResult result = simulate(tasks, a, jittery);
  EXPECT_TRUE(result.schedulable);
  // Releases stay on the nominal period grid (jitter delays, never drops);
  // only the release landing exactly on the horizon may slip past it.
  EXPECT_GE(result.jobs_released + 1, base.jobs_released);
  EXPECT_LE(result.jobs_released, base.jobs_released);
}

TEST(FaultModel, ExcessiveJitterMissesWithShrunkenWindow) {
  // C = 90, T = 100: a delay over 10 ticks leaves too little window.  The
  // drawn delays are seeded, so the outcome is deterministic.
  const TaskSet tasks = TaskSet::from_pairs({{90, 100}});
  const Assignment a = uniprocessor(tasks);
  SimConfig config;
  config.horizon = 10'000;
  config.faults.seed = 11;
  config.faults.release_jitter = 60;
  const SimResult result = simulate(tasks, a, config);
  ASSERT_FALSE(result.schedulable);
  ASSERT_FALSE(result.misses.empty());
  // Deadline anchored at the *nominal* release: the missed job's recorded
  // window (deadline - actual release) is strictly shorter than T.
  EXPECT_LT(result.misses[0].deadline - result.misses[0].release, 100);
}

TEST(FaultModel, ValidatesModelParameters) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}});
  const Assignment a = uniprocessor(tasks);
  SimConfig config;
  config.horizon = 1000;
  const auto expect_rejected = [&](auto&& mutate) {
    SimConfig bad = config;
    mutate(bad.faults);
    EXPECT_THROW((void)simulate(tasks, a, bad), InvalidConfigError);
  };
  expect_rejected([](FaultModel& f) { f.overrun_factor = 0.0; });
  expect_rejected([](FaultModel& f) { f.overrun_factor = -1.0; });
  expect_rejected([](FaultModel& f) {
    f.overrun_factor = std::numeric_limits<double>::infinity();
  });
  expect_rejected([](FaultModel& f) { f.overrun_ticks = -1; });
  expect_rejected([](FaultModel& f) { f.overrun_probability = -0.1; });
  expect_rejected([](FaultModel& f) { f.overrun_probability = 1.5; });
  expect_rejected([](FaultModel& f) { f.release_jitter = -5; });
  expect_rejected([](FaultModel& f) { f.failed_processor = 1; });  // m == 1
  expect_rejected([](FaultModel& f) {
    f.failed_processor = 0;
    f.failure_time = -1;
  });
}

TEST(FaultModel, EdfDispatchSupportsInjection) {
  const TaskSet tasks = TaskSet::from_pairs({{30, 100}, {40, 150}});
  const Assignment a = uniprocessor(tasks);
  SimConfig config;
  config.horizon = recommended_horizon(tasks, 100'000);
  config.policy = DispatchPolicy::kEarliestDeadlineFirst;
  config.stop_at_first_miss = false;
  config.faults.overrun_factor = 1.2;
  const SimResult result = simulate(tasks, a, config);
  EXPECT_GT(result.jobs_degraded, 0u);
}

// Mini-fuzz over generated workloads: (1) the inert model matches the
// nominal counters exactly on accepted partitions; (2) overruns under
// budget enforcement never produce a miss (rmts_fuzz runs the same
// invariants for longer).
TEST(FaultFuzz, BudgetEnforcementNeverMissesOnAcceptedPartitions) {
  const RmtsLight algorithm;
  Rng rng(20260806);
  WorkloadConfig workload;
  workload.tasks = 8;
  workload.processors = 3;
  workload.normalized_utilization = 0.7;
  workload.period_model = PeriodModel::kGrid;
  workload.period_grid = small_hyperperiod_grid();
  int accepted = 0;
  for (int i = 0; i < 30; ++i) {
    const TaskSet tasks = generate(rng, workload);
    const Assignment a = algorithm.partition(tasks, workload.processors);
    if (!a.success) continue;
    ++accepted;

    SimConfig nominal;
    nominal.horizon = recommended_horizon(tasks, 200'000);
    const SimResult base = simulate(tasks, a, nominal);
    ASSERT_TRUE(base.schedulable) << tasks.describe();

    SimConfig inert = nominal;
    inert.faults.seed = static_cast<std::uint64_t>(i) + 1;
    inert.faults.overrun_probability = 0.7;
    expect_equal_counters(base, simulate(tasks, a, inert));

    SimConfig contained = nominal;
    contained.stop_at_first_miss = false;
    contained.faults.seed = static_cast<std::uint64_t>(i) + 1;
    contained.faults.overrun_factor = 1.0 + 0.1 * (i % 12);
    contained.faults.overrun_ticks = i % 3;
    contained.faults.overrun_probability = 0.8;
    contained.faults.containment = ContainmentPolicy::kBudgetEnforcement;
    const SimResult result = simulate(tasks, a, contained);
    EXPECT_TRUE(result.misses.empty()) << tasks.describe();
    EXPECT_TRUE(result.schedulable);
  }
  EXPECT_GT(accepted, 10);
}

}  // namespace
}  // namespace rmts
