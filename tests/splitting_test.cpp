// The splitting engine: ChainCursor bookkeeping, assign_or_split outcomes,
// the body-top-priority guard, split granularity, and the shared
// processor-selection policies and Assignment utilities.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "partition/policies.hpp"
#include "partition/rmts_light.hpp"
#include "partition/splitting.hpp"

namespace rmts {
namespace {

constexpr auto kPoints = MaxSplitMethod::kSchedulingPoints;

TEST(ChainCursor, FreshTaskIsWholeCandidate) {
  const Task task{40, 100, 7};
  const ChainCursor cursor(task, 3);
  EXPECT_FALSE(cursor.exhausted());
  const Subtask candidate = cursor.candidate();
  EXPECT_EQ(candidate.kind, SubtaskKind::kWhole);
  EXPECT_EQ(candidate.wcet, 40);
  EXPECT_EQ(candidate.deadline, 100);
  EXPECT_EQ(candidate.part, 0);
  EXPECT_EQ(candidate.priority, 3u);
  EXPECT_EQ(candidate.task_id, 7u);
}

TEST(ChainCursor, ConsumeBodyAdvancesPartAndDeadline) {
  const Task task{40, 100, 7};
  ChainCursor cursor(task, 3);
  cursor.consume_body(15, 15);
  EXPECT_FALSE(cursor.exhausted());
  const Subtask tail = cursor.candidate();
  EXPECT_EQ(tail.kind, SubtaskKind::kTail);
  EXPECT_EQ(tail.wcet, 25);
  EXPECT_EQ(tail.deadline, 85);  // Eq. 1: 100 - R(=15)
  EXPECT_EQ(tail.part, 1);
}

TEST(ChainCursor, ConsumeAllExhausts) {
  const Task task{40, 100, 7};
  ChainCursor cursor(task, 3);
  cursor.consume_all();
  EXPECT_TRUE(cursor.exhausted());
}

TEST(AssignOrSplit, WholeFitPlacesAndExhausts) {
  ProcessorState processor;
  ChainCursor cursor(Task{40, 100, 0}, 0);
  EXPECT_TRUE(assign_or_split(processor, cursor, kPoints));
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_FALSE(processor.full());
  EXPECT_EQ(processor.subtasks().size(), 1u);
}

TEST(AssignOrSplit, OverflowSplitsAndMarksFull) {
  ProcessorState processor;
  processor.add(Subtask{5, 5, 0, 60, 100, 100, SubtaskKind::kWhole});
  ChainCursor cursor(Task{80, 100, 0}, 0);
  EXPECT_FALSE(assign_or_split(processor, cursor, kPoints));
  EXPECT_TRUE(processor.full());
  EXPECT_FALSE(cursor.exhausted());
  EXPECT_EQ(processor.subtasks().size(), 2u);
  // Body got 40 ticks (fills the processor to its bottleneck exactly).
  EXPECT_EQ(processor.subtasks().front().wcet, 40);
  EXPECT_EQ(processor.subtasks().front().kind, SubtaskKind::kBody);
  EXPECT_EQ(cursor.remaining_wcet(), 40);
  EXPECT_EQ(cursor.remaining_deadline(), 60);
}

TEST(AssignOrSplit, NothingFitsLeavesCursorUntouched) {
  ProcessorState processor;
  processor.add(Subtask{5, 5, 0, 100, 100, 100, SubtaskKind::kWhole});
  ChainCursor cursor(Task{10, 50, 0}, 0);
  EXPECT_FALSE(assign_or_split(processor, cursor, kPoints));
  EXPECT_TRUE(processor.full());
  EXPECT_EQ(cursor.remaining_wcet(), 10);
  EXPECT_EQ(cursor.remaining_deadline(), 50);
  EXPECT_EQ(processor.subtasks().size(), 1u);
}

TEST(AssignOrSplit, RefusesToSplitBelowHigherPriorityTask) {
  // A hosted higher-priority task (e.g. a pre-assigned heavy one) means the
  // candidate cannot become a top-priority body here: the guard must mark
  // the processor full without splitting (Lemma 2 kept structural).
  ProcessorState processor;
  processor.add(Subtask{1, 1, 0, 60, 100, 100, SubtaskKind::kWhole});
  ChainCursor cursor(Task{90, 200, 0}, 4);  // lower priority than rank 1
  EXPECT_FALSE(assign_or_split(processor, cursor, kPoints));
  EXPECT_TRUE(processor.full());
  EXPECT_EQ(cursor.remaining_wcet(), 90);         // nothing consumed
  EXPECT_EQ(processor.subtasks().size(), 1u);     // nothing placed
}

TEST(AssignOrSplit, WholeFitBelowHigherPriorityTaskIsStillAllowed) {
  // The guard only blocks *splitting*; whole placements (zero jitter) are
  // fine below a higher-priority task.
  ProcessorState processor;
  processor.add(Subtask{1, 1, 0, 60, 100, 100, SubtaskKind::kWhole});
  ChainCursor cursor(Task{50, 200, 0}, 4);
  EXPECT_TRUE(assign_or_split(processor, cursor, kPoints));
  EXPECT_EQ(processor.subtasks().size(), 2u);
}

TEST(AssignOrSplit, GranularityQuantizesPrefix) {
  ProcessorState processor;
  processor.add(Subtask{5, 5, 0, 60, 100, 100, SubtaskKind::kWhole});
  ChainCursor cursor(Task{80, 100, 0}, 0);
  EXPECT_FALSE(assign_or_split(processor, cursor, kPoints, 25));
  // Exact MaxSplit would give 40; quantized down to 25.
  EXPECT_EQ(processor.subtasks().front().wcet, 25);
  EXPECT_EQ(cursor.remaining_wcet(), 55);
}

TEST(AssignOrSplit, GranularityCanForceEmptySplit) {
  ProcessorState processor;
  processor.add(Subtask{5, 5, 0, 60, 100, 100, SubtaskKind::kWhole});
  ChainCursor cursor(Task{80, 100, 0}, 0);
  EXPECT_FALSE(assign_or_split(processor, cursor, kPoints, 64));
  EXPECT_EQ(processor.subtasks().size(), 1u);  // 40 -> quantized to 0
  EXPECT_EQ(cursor.remaining_wcet(), 80);
}

TEST(RmtsLightConfig, RejectsNonPositiveGranularity) {
  EXPECT_THROW(RmtsLight(kPoints, SelectionPolicy::kWorstFit, 0),
               InvalidConfigError);
}

TEST(RmtsLightConfig, NameReflectsKnobs) {
  EXPECT_EQ(RmtsLight(kPoints, SelectionPolicy::kFirstFit).name(),
            "RM-TS/light[ff]");
  EXPECT_EQ(RmtsLight(kPoints, SelectionPolicy::kWorstFit, 100).name(),
            "RM-TS/light[g=100]");
}

TEST(Policies, LeastUtilizedPicksMinimumAndBreaksTiesLow) {
  std::vector<ProcessorState> processors(3);
  processors[0].add(Subtask{0, 0, 0, 30, 100, 100, SubtaskKind::kWhole});
  processors[2].add(Subtask{1, 1, 0, 10, 100, 100, SubtaskKind::kWhole});
  EXPECT_EQ(least_utilized_non_full(processors), 1u);  // empty wins
  processors[1].add(Subtask{2, 2, 0, 10, 100, 100, SubtaskKind::kWhole});
  EXPECT_EQ(least_utilized_non_full(processors), 1u);  // tie 0.1 -> lowest idx
}

TEST(Policies, SkipsFullProcessors) {
  std::vector<ProcessorState> processors(2);
  processors[0].mark_full();
  EXPECT_EQ(least_utilized_non_full(processors), 1u);
  processors[1].mark_full();
  EXPECT_FALSE(least_utilized_non_full(processors).has_value());
}

TEST(Policies, CandidateSubsetRespected) {
  std::vector<ProcessorState> processors(3);
  processors[2].add(Subtask{0, 0, 0, 90, 100, 100, SubtaskKind::kWhole});
  const std::vector<std::size_t> only_third{2};
  EXPECT_EQ(least_utilized_non_full(processors, only_third), 2u);
}

TEST(AssignmentStats, CountsSplitsAndSubtasks) {
  Assignment a;
  a.success = true;
  a.processors.resize(2);
  a.processors[0].subtasks = {Subtask{0, 0, 0, 10, 100, 100, SubtaskKind::kBody},
                              Subtask{1, 1, 0, 20, 200, 200, SubtaskKind::kWhole}};
  a.processors[1].subtasks = {Subtask{0, 0, 1, 15, 100, 90, SubtaskKind::kTail}};
  EXPECT_EQ(a.split_task_count(), 1u);
  EXPECT_EQ(a.subtask_count(), 3u);
  EXPECT_NEAR(a.assigned_utilization(), 0.1 + 0.1 + 0.15, 1e-12);
  EXPECT_NEAR(a.min_processor_utilization(), 0.15, 1e-12);
}

TEST(AssignmentStats, DescribeShowsSplitMarkersAndFailures) {
  Assignment a;
  a.success = false;
  a.processors.resize(1);
  a.processors[0].subtasks = {Subtask{0, 3, 0, 10, 100, 100, SubtaskKind::kBody}};
  a.unassigned = {9};
  const std::string text = a.describe();
  EXPECT_NE(text.find("FAILURE"), std::string::npos);
  EXPECT_NE(text.find("tau_3^b0"), std::string::npos);
  EXPECT_NE(text.find("tau_9"), std::string::npos);
}

TEST(AssignmentStats, EmptyAssignment) {
  const Assignment a;
  EXPECT_EQ(a.split_task_count(), 0u);
  EXPECT_EQ(a.subtask_count(), 0u);
  EXPECT_DOUBLE_EQ(a.assigned_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(a.min_processor_utilization(), 0.0);
}

}  // namespace
}  // namespace rmts
