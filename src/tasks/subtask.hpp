// Subtasks: the unit actually assigned to processors (Section II).
//
// A non-split task is represented by a single `whole` subtask with
// deadline == period.  A split task tau_i is a chain of `body` subtasks
// followed by one `tail` subtask; subtask k's synthetic deadline is
//   Delta_i^k = T_i - sum_{l<k} R_i^l                       (paper Eq. 1)
// which folds the cross-processor synchronization delay (waiting for the
// predecessor subtask to finish) into the deadline used by response-time
// analysis.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "tasks/task.hpp"

namespace rmts {

/// Role of a subtask within its parent task's split chain.
enum class SubtaskKind : std::uint8_t {
  kWhole,  ///< The task was not split.
  kBody,   ///< A non-final piece of a split task.
  kTail,   ///< The final piece of a split task.
};

/// One schedulable piece of a task, pinned to a single processor.
/// Priority is inherited from the parent task (RM order); subtasks of the
/// same task are never assigned to the same processor, so parent priority
/// totally orders the subtasks on any one processor.
struct Subtask {
  std::size_t priority{0};   ///< Parent's RM rank; 0 = highest (shortest T).
  TaskId task_id{0};         ///< Parent task's id.
  int part{0};               ///< 0-based chain position k-1.
  Time wcet{0};              ///< C_i^k.
  Time period{0};            ///< T_i (the parent's period).
  Time deadline{0};          ///< Synthetic deadline Delta_i^k <= T_i.
  SubtaskKind kind{SubtaskKind::kWhole};

  [[nodiscard]] double utilization() const noexcept {
    return static_cast<double>(wcet) / static_cast<double>(period);
  }

  /// True iff this subtask preempts `other` under the paper's run-time
  /// scheduler (original RM priorities).
  [[nodiscard]] bool higher_priority_than(const Subtask& other) const noexcept {
    return priority < other.priority;
  }

  friend bool operator==(const Subtask&, const Subtask&) = default;
};

/// Makes the `whole` subtask representation tau_i^1 = <C_i, T_i, T_i> of a
/// non-split task whose RM rank is `priority`.
[[nodiscard]] inline Subtask whole_subtask(const Task& task, std::size_t priority) noexcept {
  return Subtask{priority, task.id, 0,          task.wcet,
                 task.period,       task.period, SubtaskKind::kWhole};
}

}  // namespace rmts
