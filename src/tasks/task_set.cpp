#include "tasks/task_set.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/error.hpp"

namespace rmts {

namespace {

void validate(const std::vector<Task>& tasks) {
  std::unordered_set<TaskId> seen;
  seen.reserve(tasks.size());
  for (const Task& task : tasks) {
    if (task.period <= 0) {
      throw InvalidTaskError("task " + std::to_string(task.id) +
                             ": period must be positive");
    }
    if (task.wcet <= 0) {
      throw InvalidTaskError("task " + std::to_string(task.id) +
                             ": wcet must be positive");
    }
    if (task.wcet > task.period) {
      throw InvalidTaskError("task " + std::to_string(task.id) +
                             ": wcet exceeds period (U > 1)");
    }
    if (!seen.insert(task.id).second) {
      throw InvalidTaskError("duplicate task id " + std::to_string(task.id));
    }
  }
}

}  // namespace

TaskSet::TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  validate(tasks_);
  std::sort(tasks_.begin(), tasks_.end(), [](const Task& a, const Task& b) {
    if (a.period != b.period) return a.period < b.period;
    return a.id < b.id;
  });
}

TaskSet TaskSet::from_pairs(const std::vector<std::pair<Time, Time>>& pairs) {
  std::vector<Task> tasks;
  tasks.reserve(pairs.size());
  TaskId id = 0;
  for (const auto& [wcet, period] : pairs) {
    tasks.push_back(Task{wcet, period, id++});
  }
  return TaskSet(std::move(tasks));
}

double TaskSet::total_utilization() const noexcept {
  double sum = 0.0;
  for (const Task& task : tasks_) sum += task.utilization();
  return sum;
}

double TaskSet::normalized_utilization(std::size_t processors) const noexcept {
  return total_utilization() / static_cast<double>(processors);
}

double TaskSet::max_utilization() const noexcept {
  double max_u = 0.0;
  for (const Task& task : tasks_) max_u = std::max(max_u, task.utilization());
  return max_u;
}

bool TaskSet::all_lighter_than(double threshold) const noexcept {
  return std::all_of(tasks_.begin(), tasks_.end(), [&](const Task& task) {
    return task.utilization() <= threshold;
  });
}

std::vector<Time> TaskSet::periods() const {
  std::vector<Time> result;
  result.reserve(tasks_.size());
  for (const Task& task : tasks_) result.push_back(task.period);
  return result;
}

bool TaskSet::is_harmonic() const noexcept {
  // Tasks are period-sorted, so adjacent divisibility is equivalent to
  // pairwise divisibility: T_i | T_{i+1} for all i chains transitively to
  // T_i | T_j for every i < j.
  for (std::size_t i = 0; i + 1 < tasks_.size(); ++i) {
    if (tasks_[i + 1].period % tasks_[i].period != 0) return false;
  }
  return true;
}

TaskSet TaskSet::scaled_wcets(double factor) const {
  std::vector<Task> scaled = tasks_;
  for (Task& task : scaled) {
    const double exact = static_cast<double>(task.wcet) * factor;
    Time wcet = static_cast<Time>(std::llround(exact));
    wcet = std::max<Time>(1, std::min(wcet, task.period));
    task.wcet = wcet;
  }
  return TaskSet(std::move(scaled));
}

std::string TaskSet::describe() const {
  std::ostringstream os;
  for (const Task& task : tasks_) {
    os << "tau_" << task.id << ": C=" << task.wcet << " T=" << task.period
       << " U=" << task.utilization() << '\n';
  }
  return os.str();
}

}  // namespace rmts
