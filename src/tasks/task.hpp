// The Liu & Layland sporadic task model (Section II of the paper).
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace rmts {

/// Stable identifier of a task within its TaskSet (index before RM sorting
/// is not meaningful; ids survive the sort).
using TaskId = std::uint32_t;

/// An implicit-deadline sporadic task tau_i = <C_i, T_i>: worst-case
/// execution time C and minimum inter-release separation T, with relative
/// deadline equal to T.
struct Task {
  Time wcet{0};    ///< C_i in ticks, 0 < wcet <= period.
  Time period{0};  ///< T_i in ticks (also the relative deadline).
  TaskId id{0};    ///< Stable identity, unique within a TaskSet.

  /// U_i = C_i / T_i.
  [[nodiscard]] double utilization() const noexcept {
    return static_cast<double>(wcet) / static_cast<double>(period);
  }

  friend bool operator==(const Task&, const Task&) = default;
};

}  // namespace rmts
