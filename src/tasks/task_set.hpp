// TaskSet: a validated, RM-priority-ordered collection of tasks.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "tasks/task.hpp"

namespace rmts {

/// An immutable set of L&L tasks sorted by rate-monotonic priority:
/// index 0 has the shortest period (highest priority); ties are broken by
/// task id so the order is total and deterministic.  Construction validates
/// the model invariants (0 < C <= T, unique ids) and throws
/// InvalidTaskError on violation.
class TaskSet {
 public:
  TaskSet() = default;

  /// Sorts `tasks` into RM order and validates them.
  explicit TaskSet(std::vector<Task> tasks);

  /// Convenience: builds tasks from (wcet, period) pairs, assigning ids in
  /// input order.
  static TaskSet from_pairs(const std::vector<std::pair<Time, Time>>& pairs);

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

  /// Task with RM rank `priority` (0 = highest priority).
  [[nodiscard]] const Task& operator[](std::size_t priority) const noexcept {
    return tasks_[priority];
  }

  [[nodiscard]] std::span<const Task> tasks() const noexcept { return tasks_; }

  [[nodiscard]] auto begin() const noexcept { return tasks_.begin(); }
  [[nodiscard]] auto end() const noexcept { return tasks_.end(); }

  /// U(tau) = sum of task utilizations.
  [[nodiscard]] double total_utilization() const noexcept;

  /// U_M(tau) = U(tau) / M, the normalized utilization on M processors.
  [[nodiscard]] double normalized_utilization(std::size_t processors) const noexcept;

  /// Largest individual task utilization.
  [[nodiscard]] double max_utilization() const noexcept;

  /// True iff every task has U_i <= threshold.  With
  /// threshold = Theta/(1+Theta) this is the paper's Definition 1 of a
  /// *light* task set.
  [[nodiscard]] bool all_lighter_than(double threshold) const noexcept;

  /// Periods in RM (non-decreasing) order.
  [[nodiscard]] std::vector<Time> periods() const;

  /// True iff the periods are pairwise harmonic (every pair divides).
  [[nodiscard]] bool is_harmonic() const noexcept;

  /// Returns a copy with every WCET scaled by `factor` (rounded to ticks,
  /// clamped to [1, T_i]).  Used by breakdown-utilization search.
  [[nodiscard]] TaskSet scaled_wcets(double factor) const;

  /// Human-readable one-line-per-task dump.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<Task> tasks_;  // invariant: RM sorted, validated
};

}  // namespace rmts
