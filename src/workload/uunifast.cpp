#include "workload/uunifast.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace rmts {

std::vector<double> uunifast(Rng& rng, std::size_t n, double total) {
  if (n == 0 || total <= 0.0) {
    throw InvalidConfigError("uunifast: need n >= 1 and total > 0");
  }
  std::vector<double> u(n);
  double sum = total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double exponent = 1.0 / static_cast<double>(n - 1 - i);
    const double next = sum * std::pow(rng.uniform(), exponent);
    u[i] = sum - next;
    sum = next;
  }
  u[n - 1] = sum;
  return u;
}

std::vector<double> uunifast_discard(Rng& rng, std::size_t n, double total,
                                     double max_each) {
  if (!(max_each > 0.0)) {
    throw InvalidConfigError("uunifast_discard: max_each must be > 0");
  }
  if (total > static_cast<double>(n) * max_each) {
    throw InvalidConfigError("uunifast_discard: total exceeds n * max_each");
  }
  constexpr int kRetryBudget = 1000;
  std::vector<double> u;
  for (int attempt = 0; attempt < kRetryBudget; ++attempt) {
    u = uunifast(rng, n, total);
    const bool admissible = std::all_of(u.begin(), u.end(), [&](double v) {
      return v > 0.0 && v <= max_each;
    });
    if (admissible) return u;
  }
  // High-load regime (total close to n * max_each): plain rejection has a
  // vanishing acceptance rate.  Fall back to one exact clamp-redistribute
  // pass: clamp the overshooting entries to the cap and spread the excess
  // over the remaining headroom proportionally.  Each entry receives at
  // most its own headroom (excess <= total headroom by feasibility), so a
  // single pass restores both the sum and the cap; only uniformity over
  // the simplex is (mildly) sacrificed, in a regime where the admissible
  // region is a thin corner anyway.
  double excess = 0.0;
  double headroom = 0.0;
  for (double& v : u) {
    if (v > max_each) {
      excess += v - max_each;
      v = max_each;
    } else {
      headroom += max_each - v;
    }
  }
  if (excess > 0.0 && headroom > 0.0) {
    const double scale = excess / headroom;
    for (double& v : u) {
      if (v < max_each) v += scale * (max_each - v);
    }
  }
  // Final safety clamp into the documented (0, max_each] postcondition:
  // the redistribution above can overshoot the cap by an ulp (scale is an
  // inexact quotient), and uunifast itself can emit an exact 0.0 that
  // survives when there is no excess to spread.  The sum error introduced
  // here is at most a few ulps per entry.
  for (double& v : u) {
    v = std::clamp(v, std::numeric_limits<double>::min(), max_each);
  }
  return u;
}

}  // namespace rmts
