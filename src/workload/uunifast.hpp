// Unbiased random utilization vectors (Bini & Buttazzo's UUniFast) plus the
// discard variant that additionally bounds each task's utilization -- the
// standard way to generate the paper's "light" task sets
// (every U_i <= Theta/(1+Theta)).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace rmts {

/// Draws n utilizations summing to `total`, uniformly over the simplex.
/// Requires n >= 1 and total > 0; individual values may approach `total`.
[[nodiscard]] std::vector<double> uunifast(Rng& rng, std::size_t n, double total);

/// UUniFast-Discard: redraws until every utilization is in (0, max_each].
/// Requires max_each > 0 and total <= n * max_each; throws
/// InvalidConfigError if infeasible.  In the extreme regime where rejection
/// stops converging (total within a few percent of n * max_each) it falls
/// back to one clamp-redistribute pass that preserves the sum to a few
/// ulps and enforces the cap exactly, at a mild cost in simplex uniformity
/// (documented in the implementation).  The (0, max_each] postcondition
/// holds in every regime, including the fallback.
[[nodiscard]] std::vector<double> uunifast_discard(Rng& rng, std::size_t n,
                                                   double total, double max_each);

}  // namespace rmts
