#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "workload/uunifast.hpp"

namespace rmts {

namespace {

std::vector<Time> draw_periods(Rng& rng, const WorkloadConfig& config) {
  std::vector<Time> periods(config.tasks);
  switch (config.period_model) {
    case PeriodModel::kLogUniform:
      for (Time& p : periods) {
        p = rng.log_uniform_time(config.period_min, config.period_max);
      }
      break;

    case PeriodModel::kGrid: {
      if (config.period_grid.empty()) {
        throw InvalidConfigError("generate: kGrid requires a period grid");
      }
      for (Time& p : periods) {
        const auto idx = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.period_grid.size()) - 1));
        p = config.period_grid[idx];
      }
      break;
    }

    case PeriodModel::kHarmonic: {
      // Base in [min, 4*min], then a non-decreasing divisibility chain of
      // multipliers: each task multiplies the previous period by 1, 2 or 3
      // (clamped at period_max).
      const Time base = rng.log_uniform_time(config.period_min,
                                             std::min<Time>(4 * config.period_min,
                                                            config.period_max));
      Time current = base;
      for (Time& p : periods) {
        p = current;
        const Time factor = rng.uniform_int(1, 3);
        if (current <= config.period_max / factor) current *= factor;
      }
      break;
    }

    case PeriodModel::kHarmonicChains: {
      // Distinct odd primes as chain bases; powers of two within chains.
      static constexpr Time kPrimes[] = {3, 5, 7, 11, 13, 17, 19, 23};
      if (config.harmonic_chains == 0 ||
          config.harmonic_chains > std::size(kPrimes)) {
        throw InvalidConfigError("generate: harmonic_chains out of range [1,8]");
      }
      if (config.harmonic_chains > config.tasks) {
        throw InvalidConfigError("generate: more chains than tasks");
      }
      for (std::size_t i = 0; i < config.tasks; ++i) {
        // Round-robin chain membership keeps chain sizes near-equal and
        // guarantees every chain is populated.
        const std::size_t chain = i % config.harmonic_chains;
        const Time base = config.period_min * kPrimes[chain];
        const Time max_exp_limit = config.period_max / base;
        int max_exp = 0;
        for (Time v = 1; v * 2 <= max_exp_limit && max_exp < 16; v *= 2) ++max_exp;
        const Time exponent = rng.uniform_int(0, max_exp);
        periods[i] = base * (Time{1} << exponent);
      }
      break;
    }
  }
  return periods;
}

}  // namespace

TaskSet generate(Rng& rng, const WorkloadConfig& config) {
  if (config.tasks == 0) throw InvalidConfigError("generate: need tasks >= 1");
  if (config.processors == 0) throw InvalidConfigError("generate: need processors >= 1");
  if (config.period_min <= 0 || config.period_min > config.period_max) {
    throw InvalidConfigError("generate: bad period range");
  }
  const double total =
      config.normalized_utilization * static_cast<double>(config.processors);
  if (total <= 0.0) throw InvalidConfigError("generate: utilization must be positive");

  const std::vector<double> utilizations =
      uunifast_discard(rng, config.tasks, total, config.max_task_utilization);
  const std::vector<Time> periods = draw_periods(rng, config);

  std::vector<Task> tasks;
  tasks.reserve(config.tasks);
  for (std::size_t i = 0; i < config.tasks; ++i) {
    const double exact = utilizations[i] * static_cast<double>(periods[i]);
    Time wcet = static_cast<Time>(std::llround(exact));
    wcet = std::clamp<Time>(wcet, 1, periods[i]);
    tasks.push_back(Task{wcet, periods[i], static_cast<TaskId>(i)});
  }
  return TaskSet(std::move(tasks));
}

std::vector<Time> small_hyperperiod_grid() {
  // Divisors of 72000 spanning roughly one decade; LCM = 72000 ticks.
  return {1000,  1200,  1500,  2000,  3000,  4000,
          4500,  6000,  8000,  9000,  12000, 18000};
}

}  // namespace rmts
