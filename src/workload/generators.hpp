// Random task-set generation for the evaluation harness (DESIGN.md S11).
//
// A WorkloadConfig describes one population of task sets; generate() draws
// one member.  All draws are deterministic functions of the Rng passed in,
// so experiments are reproducible from (seed, sample index).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "tasks/task_set.hpp"

namespace rmts {

/// How periods are drawn.
enum class PeriodModel : std::uint8_t {
  /// Log-uniform integers in [period_min, period_max] (Emberson et al.) --
  /// the default for acceptance-ratio sweeps.
  kLogUniform,
  /// Uniform choice from an explicit grid.  Used when a small hyperperiod
  /// matters (simulation validation); see small_hyperperiod_grid().
  kGrid,
  /// A fully harmonic set: a random base period extended by a random
  /// divisibility chain of multipliers (K = 1 harmonic chain).
  kHarmonic,
  /// Exactly `harmonic_chains` harmonic chains: chain k uses base
  /// period_min * p_k (distinct odd primes p_k) and powers of two on top;
  /// distinct odd primes never divide each other, so chains cannot merge
  /// and the minimum chain cover is exactly K (asserted in tests).
  kHarmonicChains,
};

/// Population parameters of one workload.
struct WorkloadConfig {
  std::size_t tasks{8};
  std::size_t processors{4};
  /// Target U_M(tau) = U(tau)/M.  Achieved up to WCET rounding (periods are
  /// >= 10^3 ticks, so the rounding error per task is < 0.1%).
  double normalized_utilization{0.5};
  /// Upper bound on each task's utilization; set to
  /// light_task_threshold(tasks) to draw the paper's light task sets.
  double max_task_utilization{1.0};
  PeriodModel period_model{PeriodModel::kLogUniform};
  Time period_min{1000};
  Time period_max{1000000};
  /// Grid for PeriodModel::kGrid.
  std::vector<Time> period_grid;
  /// Chain count for PeriodModel::kHarmonicChains.
  std::size_t harmonic_chains{2};
};

/// Draws one task set from the population.  Throws InvalidConfigError for
/// infeasible targets (e.g. U_M * M > tasks * max_task_utilization).
[[nodiscard]] TaskSet generate(Rng& rng, const WorkloadConfig& config);

/// A 12-entry period grid of divisors of 72000 = 2^6 * 3^2 * 5^3 ticks:
/// large enough to vary, small enough that 2x-hyperperiod simulation is
/// cheap.
[[nodiscard]] std::vector<Time> small_hyperperiod_grid();

}  // namespace rmts
