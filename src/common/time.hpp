// Integer time arithmetic for exact schedulability analysis.
//
// All task parameters (periods, WCETs, deadlines, response times) are
// represented as signed 64-bit tick counts.  Keeping analysis in integer
// arithmetic makes response-time analysis and MaxSplit exact: there is no
// floating-point schedulability decision anywhere in the library.
// Utilizations (ratios of Time values) are derived doubles used only for
// ordering heuristics, thresholds and reporting.
#pragma once

#include <cstdint>
#include <limits>

namespace rmts {

/// Discrete time in ticks. One tick is the splitting granularity; workload
/// generators emit periods of >= 10^3 ticks so the quantization error of a
/// 1-tick split is <= 0.1% utilization.
using Time = std::int64_t;

/// Sentinel for "no deadline" / "unbounded horizon".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

/// Ceiling division for non-negative numerator and positive denominator.
/// Used pervasively by response-time analysis: ceil(t / T_j) job arrivals.
/// Written without the textbook `(n + d - 1) / d` so it cannot overflow for
/// numerators near kTimeInfinity (overflow-scale parameters are legal inputs
/// to the analysis and must degrade to "unschedulable", not UB).
[[nodiscard]] constexpr Time ceil_div(Time numerator, Time denominator) noexcept {
  return numerator == 0 ? 0 : (numerator - 1) / denominator + 1;
}

/// Floor division (positive denominator), provided for symmetry.
[[nodiscard]] constexpr Time floor_div(Time numerator, Time denominator) noexcept {
  return numerator / denominator;
}

}  // namespace rmts
