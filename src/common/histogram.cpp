#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rmts {

Histogram::Histogram(unsigned sub_bits) : sub_bits_(sub_bits) {
  if (sub_bits < HistogramLayout::kMinSubBits ||
      sub_bits > HistogramLayout::kMaxSubBits) {
    throw InvalidConfigError("Histogram: sub_bits must be in [1, 8], got " +
                             std::to_string(sub_bits));
  }
  counts_.assign(HistogramLayout::bucket_count(sub_bits), 0);
}

void Histogram::record(std::uint64_t value, std::uint64_t weight) noexcept {
  if (weight == 0) return;
  counts_[HistogramLayout::bucket_index(value, sub_bits_)] += weight;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += weight;
  sum_ += value * weight;
}

double Histogram::quantile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 1.0) return static_cast<double>(max_);
  // Nearest-rank: the k-th smallest recorded value, k = ceil(p * count).
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    if (cumulative + counts_[b] < rank) {
      cumulative += counts_[b];
      continue;
    }
    const auto lower = static_cast<double>(
        HistogramLayout::bucket_lower(b, sub_bits_));
    const auto upper = static_cast<double>(
        HistogramLayout::bucket_upper(b, sub_bits_));
    // Midpoint-rule interpolation of the k-th of `counts_[b]` values
    // assumed uniform inside the bucket; exact for unit-width buckets.
    const double position =
        (static_cast<double>(rank - cumulative) - 0.5) /
        static_cast<double>(counts_[b]);
    const double estimate = lower + (upper - lower) * position;
    // The exact extrema are known; never report beyond them.
    return std::clamp(estimate, static_cast<double>(min()),
                      static_cast<double>(max_));
  }
  return static_cast<double>(max_);  // unreachable: ranks <= count_
}

void Histogram::merge(const Histogram& other) {
  if (other.sub_bits_ != sub_bits_) {
    throw InvalidConfigError(
        "Histogram::merge: precision mismatch (sub_bits " +
        std::to_string(sub_bits_) + " vs " + std::to_string(other.sub_bits_) +
        ")");
  }
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

Histogram Histogram::delta_since(const Histogram& earlier) const {
  if (earlier.sub_bits_ != sub_bits_) {
    throw InvalidConfigError(
        "Histogram::delta_since: precision mismatch (sub_bits " +
        std::to_string(sub_bits_) + " vs " +
        std::to_string(earlier.sub_bits_) + ")");
  }
  Histogram out(sub_bits_);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::uint64_t now = counts_[b];
    const std::uint64_t then = earlier.counts_[b];
    if (now <= then) continue;
    const std::uint64_t n = now - then;
    out.counts_[b] = n;
    if (total == 0) out.min_ = HistogramLayout::bucket_lower(b, sub_bits_);
    out.max_ = HistogramLayout::bucket_upper(b, sub_bits_);
    total += n;
  }
  out.count_ = total;
  out.sum_ = sum_ >= earlier.sum_ ? sum_ - earlier.sum_ : 0;
  if (total == 0) {
    out.min_ = 0;
    out.max_ = 0;
    out.sum_ = 0;
  }
  return out;
}

void Histogram::clear() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::vector<Histogram::Bucket> Histogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    cumulative += counts_[b];
    out.push_back(Bucket{HistogramLayout::bucket_upper(b, sub_bits_),
                         counts_[b], cumulative});
  }
  return out;
}

Histogram AtomicHistogram::snapshot() const {
  Histogram out(kSubBits);
  std::uint64_t total = 0;
  std::uint64_t weighted_min = 0;
  std::uint64_t weighted_max = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = counts_[b].load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.counts_[b] = n;
    if (total == 0) weighted_min = HistogramLayout::bucket_lower(b, kSubBits);
    weighted_max = HistogramLayout::bucket_upper(b, kSubBits);
    total += n;
  }
  out.count_ = total;
  if (total == 0) return out;
  out.sum_ = sum_.load(std::memory_order_relaxed);
  // Prefer the exact CAS-kept extrema, falling back to bucket bounds if a
  // record() raced between the bucket and extremum updates.
  const std::uint64_t exact_min = min_.load(std::memory_order_relaxed);
  const std::uint64_t exact_max = max_.load(std::memory_order_relaxed);
  out.min_ = exact_min == ~std::uint64_t{0} ? weighted_min : exact_min;
  out.max_ = exact_max == 0 ? weighted_max : exact_max;
  return out;
}

}  // namespace rmts
