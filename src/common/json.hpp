// JSON string escaping shared by every JSON emitter in the repo (the
// bench reports and the admission-control server's protocol encoder).
//
// RFC 8259 requires escaping of '"', '\\' and all control characters
// below 0x20; emitting a raw newline or tab inside a string silently
// corrupts the document for strict parsers.  Cell contents in the bench
// tables and error messages echoed by the server can both contain such
// bytes, so everything funnels through this one escaper.
#pragma once

#include <cstdio>
#include <string>

namespace rmts {

/// Returns `raw` with '"', '\\' and control characters (< 0x20) escaped
/// so that surrounding the result with quotes yields a valid JSON string.
/// Common controls use the short forms (\n, \t, \r, \b, \f); the rest use
/// \u00XX.  Bytes >= 0x80 pass through untouched (UTF-8 is valid JSON).
inline std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// `raw` wrapped in quotes after escaping: the full JSON string literal.
inline std::string json_quote(const std::string& raw) {
  return '"' + json_escape(raw) + '"';
}

}  // namespace rmts
