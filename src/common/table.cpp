#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace rmts {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print_text(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c] + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

}  // namespace rmts
