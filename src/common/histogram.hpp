// Log-linear HDR histogram: the one latency/value sketch shared by the
// server metrics, the load driver, the stage tracer and the benches.
//
// Design (the classic HdrHistogram bucketing, specialised to uint64):
// values below S = 2^sub_bits land in exact unit-width buckets; above
// that, every power-of-two octave [2^e, 2^(e+1)) is divided into S equal
// sub-buckets of width 2^(e - sub_bits).  Bucket width therefore never
// exceeds value / 2^sub_bits, so any quantile read back from the sketch
// is within a configurable relative precision (sub_bits = 5 -> 1/32 ~
// 3.1%) of the true sample quantile -- unlike the old per-subsystem
// power-of-two buckets, whose "p50 = 2047 us" was a bucket edge, not a
// measurement.
//
// record() is O(1) (a bit_width, two shifts, one increment).  Merging two
// histograms of equal precision is exact: bucket counts, count, sum, min
// and max all add, so per-connection / per-shard / per-thread instances
// aggregate without losing anything -- the mergeability ROADMAP item 1
// requires before shard-scaling numbers can be trusted.
//
// Two flavours:
//  * Histogram       -- plain counters; single writer, arbitrary readers
//                       after the writes are done.  Used by the load
//                       driver (per-connection, merged at the end) and by
//                       snapshots.
//  * AtomicHistogram -- relaxed-atomic counters with a CAS min/max loop;
//                       any number of concurrent writers (server request
//                       paths, trace stages).  snapshot() extracts a
//                       plain Histogram to query.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace rmts {

/// Bucket geometry shared by both flavours.  `sub_bits` in [1, 8] sets the
/// precision: relative bucket width (and thus worst-case quantile error)
/// is 2^-sub_bits.
struct HistogramLayout {
  static constexpr unsigned kDefaultSubBits = 5;  // 1/32 ~ 3.1% precision
  static constexpr unsigned kMinSubBits = 1;
  static constexpr unsigned kMaxSubBits = 8;

  /// Buckets needed to cover the full uint64 range at this precision.
  [[nodiscard]] static constexpr std::size_t bucket_count(
      unsigned sub_bits) noexcept {
    // Indices run to (64 - sub_bits) * S + (S - 1); see bucket_index.
    return (std::size_t{65} - sub_bits) << sub_bits;
  }

  /// O(1) value -> bucket index.  Monotone non-decreasing in `value`.
  [[nodiscard]] static constexpr std::size_t bucket_index(
      std::uint64_t value, unsigned sub_bits) noexcept {
    const std::uint64_t sub_count = std::uint64_t{1} << sub_bits;
    if (value < sub_count) return static_cast<std::size_t>(value);
    const unsigned exponent =
        static_cast<unsigned>(std::bit_width(value)) - 1;  // >= sub_bits
    const unsigned shift = exponent - sub_bits;
    return static_cast<std::size_t>(
        (std::uint64_t{exponent - sub_bits + 1} << sub_bits) +
        ((value >> shift) - sub_count));
  }

  /// Smallest value mapping to `index` (inclusive).
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(
      std::size_t index, unsigned sub_bits) noexcept {
    const std::size_t sub_count = std::size_t{1} << sub_bits;
    if (index < sub_count) return index;
    const unsigned shift = static_cast<unsigned>(index >> sub_bits) - 1;
    return (std::uint64_t{sub_count} + (index & (sub_count - 1))) << shift;
  }

  /// Largest value mapping to `index` (inclusive).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(
      std::size_t index, unsigned sub_bits) noexcept {
    const std::size_t sub_count = std::size_t{1} << sub_bits;
    if (index < sub_count) return index;
    const unsigned shift = static_cast<unsigned>(index >> sub_bits) - 1;
    return bucket_lower(index, sub_bits) + ((std::uint64_t{1} << shift) - 1);
  }
};

/// Plain (non-atomic) log-linear histogram.
class Histogram {
 public:
  /// Default precision (2^-5); non-explicit so histogram-bearing structs
  /// stay brace-initializable.
  Histogram() : Histogram(HistogramLayout::kDefaultSubBits) {}
  /// Throws InvalidConfigError for sub_bits outside [1, 8].
  explicit Histogram(unsigned sub_bits);

  void record(std::uint64_t value) noexcept { record(value, 1); }
  void record(std::uint64_t value, std::uint64_t weight) noexcept;

  [[nodiscard]] unsigned sub_bits() const noexcept { return sub_bits_; }
  /// Worst-case relative quantile error: 2^-sub_bits.
  [[nodiscard]] double precision() const noexcept {
    return 1.0 / static_cast<double>(std::uint64_t{1} << sub_bits_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Exact recorded extrema and total; 0 when empty.
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Interpolated nearest-rank quantile for p in [0, 1]: locates the
  /// bucket holding rank ceil(p * count) and interpolates linearly inside
  /// it, clamped to the exact [min, max].  The true sample quantile lies
  /// in the same bucket, so the relative error is at most precision().
  /// Returns 0 when empty.
  [[nodiscard]] double quantile(double p) const noexcept;

  /// Exact merge: counts, sum and extrema add as if every value had been
  /// recorded here.  Throws InvalidConfigError on precision mismatch.
  void merge(const Histogram& other);

  /// Interval view: the histogram of everything recorded here but not in
  /// `earlier`, where `earlier` is a previous snapshot of the same
  /// monotonically-growing histogram (bucket counts subtract; saturating,
  /// so a racy snapshot pair degrades to an empty bucket rather than
  /// wrapping).  The interval's exact extrema are gone, so min/max are
  /// reconstructed from the outermost non-empty bucket bounds -- quantile
  /// precision is unchanged.  The overload controller reads per-interval
  /// p99 this way without ever clearing the live histogram.  Throws
  /// InvalidConfigError on precision mismatch.
  [[nodiscard]] Histogram delta_since(const Histogram& earlier) const;

  void clear() noexcept;

  /// One non-empty bucket, for exposition (`upper` is the inclusive
  /// upper bound; `cumulative` counts records <= upper).
  struct Bucket {
    std::uint64_t upper{0};
    std::uint64_t count{0};
    std::uint64_t cumulative{0};
  };
  /// Non-empty buckets in increasing value order.
  [[nodiscard]] std::vector<Bucket> nonzero_buckets() const;

  /// Raw bucket counts (layout per HistogramLayout); for tests and merge.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  friend class AtomicHistogram;

  unsigned sub_bits_;
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
  std::uint64_t min_{0};
  std::uint64_t max_{0};
  std::vector<std::uint64_t> counts_;
};

/// Concurrent log-linear histogram: O(1) relaxed record from any number
/// of threads, with exact min/max kept by a compare-exchange loop (a
/// relaxed store would lose the true extremum under contention).
/// Precision is fixed at the default so instances stay mergeable with
/// every snapshot in the process.
class AtomicHistogram {
 public:
  static constexpr unsigned kSubBits = HistogramLayout::kDefaultSubBits;
  static constexpr std::size_t kBuckets =
      HistogramLayout::bucket_count(kSubBits);

  AtomicHistogram() noexcept = default;

  void record(std::uint64_t value) noexcept {
    counts_[HistogramLayout::bucket_index(value, kSubBits)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // CAS max: retry while somebody else published a smaller-but-newer
    // value; the loop exits as soon as `seen >= value`.
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
    seen = min_.load(std::memory_order_relaxed);
    while (value < seen && !min_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  /// Record for the one-writer-many-readers case (per-thread trace
  /// states): plain load+store increments compile to ordinary adds and a
  /// branch, no lock-prefixed RMW and no CAS loop -- roughly 4x cheaper
  /// than record().  NOT safe with concurrent writers.
  void record_single_writer(std::uint64_t value) noexcept {
    auto& bucket = counts_[HistogramLayout::bucket_index(value, kSubBits)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + value,
               std::memory_order_relaxed);
    if (value > max_.load(std::memory_order_relaxed)) {
      max_.store(value, std::memory_order_relaxed);
    }
    if (value < min_.load(std::memory_order_relaxed)) {
      min_.store(value, std::memory_order_relaxed);
    }
  }

  /// Plain-histogram copy for querying.  Taken with relaxed loads while
  /// writers proceed: a snapshot may trail concurrent records by a few
  /// counts but is internally consistent enough for observability (count
  /// is derived from the copied buckets).
  [[nodiscard]] Histogram snapshot() const;

  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace rmts
