#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>

#include "common/trace.hpp"

namespace rmts {

namespace {

/// One run() invocation: a shared index cursor plus completion and error
/// bookkeeping.  Participants claim chunks until the cursor is exhausted
/// or the job is cancelled by an exception.
struct Job {
  const std::function<void(std::size_t)>* fn{nullptr};
  std::size_t count{0};
  std::size_t chunk{1};
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};

  std::mutex mutex;
  std::condition_variable done;
  std::size_t pending_helpers{0};  // guarded by mutex
  std::exception_ptr error;        // guarded by mutex; first one wins

  void work() {
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(count, begin + chunk);
      try {
        for (std::size_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        const std::scoped_lock lock(mutex);
        if (!error) error = std::current_exception();
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
};

/// Set while a pool worker runs a task: nested run() calls from inside fn
/// fall back to serial execution instead of deadlocking on the queue.
thread_local bool tls_in_pool_worker = false;

}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()) - 1);
  return pool;
}

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::worker_loop() {
  tls_in_pool_worker = true;
  std::unique_lock lock(mutex_);
  while (true) {
    wake_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    QueuedTask item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    if (item.enqueued_ns != 0) {
      trace::count(trace::Counter::kPoolTasksStarted);
      trace::record_ns(trace::Stage::kPoolTaskWait,
                       trace::now_ns() - item.enqueued_ns);
      const trace::Span span(trace::Stage::kPoolTaskRun);
      item.task();
    } else {
      item.task();
    }
    lock.lock();
  }
}

void ThreadPool::post(std::function<void()> task) {
  if (threads_.empty()) {
    throw std::logic_error("ThreadPool::post requires at least one worker");
  }
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(QueuedTask{
        std::move(task), trace::enabled() ? trace::now_ns() : 0});
  }
  trace::count(trace::Counter::kPoolTasksPosted);
  wake_.notify_one();
}

void ThreadPool::run(std::size_t count, std::size_t parallelism,
                     const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (parallelism == 0) parallelism = threads_.size() + 1;
  parallelism = std::min(parallelism, count);
  if (parallelism <= 1 || threads_.empty() || tls_in_pool_worker) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = count;
  // ~4 chunks per participant: enough slack for dynamic balancing, few
  // enough fetch_adds that the shared cursor stays cold for huge counts.
  job->chunk = std::max<std::size_t>(1, count / (parallelism * 4));
  const std::size_t helpers = std::min(parallelism - 1, threads_.size());
  job->pending_helpers = helpers;
  {
    const std::scoped_lock lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.push_back(QueuedTask{[job] {
        job->work();
        const std::scoped_lock job_lock(job->mutex);
        if (--job->pending_helpers == 0) job->done.notify_one();
      }, 0});
    }
  }
  wake_.notify_all();

  job->work();  // the caller is a participant, not just a waiter
  std::unique_lock job_lock(job->mutex);
  job->done.wait(job_lock, [&] { return job->pending_helpers == 0; });
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace rmts
