// Minimal fixed-width table / CSV emitter used by benches and examples to
// print the rows each reproduced table or figure consists of.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rmts {

/// Accumulates rows of stringified cells and renders them either as an
/// aligned text table (for terminals) or CSV (for plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with padded columns, a header rule, and `title` above.
  void print_text(std::ostream& os, const std::string& title) const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our numeric cells).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Raw cells, for non-tabular serializers (bench JSON reports).
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Formats a double with `digits` decimals (locale-independent).
  static std::string num(double value, int digits = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rmts
