// Overflow-aware integer helpers.
//
// Hyperperiods of randomly generated task sets overflow int64 easily; every
// place that multiplies periods goes through the saturating helpers here so
// that callers can detect "horizon too large" instead of invoking UB.
#pragma once

#include <cstdint>
#include <numeric>
#include <optional>
#include <span>

#include "common/time.hpp"

namespace rmts {

/// Multiplies two non-negative Times, returning nullopt on overflow.
/// Implemented with the compiler overflow intrinsic: these helpers sit in
/// the RTA fixed-point inner loop, where the naive `a > kTimeInfinity / b`
/// guard would add a second integer division per interference term.
[[nodiscard]] constexpr std::optional<Time> checked_mul(Time a, Time b) noexcept {
  Time product = 0;
  if (__builtin_mul_overflow(a, b, &product)) return std::nullopt;
  return product;
}

/// Adds two non-negative Times, returning nullopt on overflow.
[[nodiscard]] constexpr std::optional<Time> checked_add(Time a, Time b) noexcept {
  Time sum = 0;
  if (__builtin_add_overflow(a, b, &sum)) return std::nullopt;
  return sum;
}

/// Least common multiple of two positive Times, nullopt on overflow.
[[nodiscard]] constexpr std::optional<Time> checked_lcm(Time a, Time b) noexcept {
  const Time g = std::gcd(a, b);
  return checked_mul(a / g, b);
}

/// LCM of a sequence of positive periods; nullopt if it exceeds int64.
/// This is the hyperperiod computation used by the simulator to pick its
/// validation horizon.
[[nodiscard]] inline std::optional<Time> hyperperiod(std::span<const Time> periods) noexcept {
  Time acc = 1;
  for (const Time p : periods) {
    const auto next = checked_lcm(acc, p);
    if (!next) return std::nullopt;
    acc = *next;
  }
  return acc;
}

}  // namespace rmts
