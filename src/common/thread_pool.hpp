// Persistent worker pool behind parallel_for.
//
// The experiment sweeps (E2-E7, E10-E15) and the batched simulation driver
// (sim/simulator.hpp simulate_batch) call parallel_for once per sweep
// or even per refinement step; spawning and joining fresh std::threads each
// time puts thread creation on the hot path and a strided static partition
// leaves workers idle whenever per-index cost is uneven (e.g. breakdown
// bisection depth varies per sample).  This pool fixes both: workers are
// created once and reused, and indices are handed out in dynamically sized
// chunks from a shared atomic cursor.  Reduction semantics are unchanged --
// every fn(i) writes to its own index slot and callers reduce in index
// order -- so results stay bit-identical for any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rmts {

class ThreadPool {
 public:
  /// The process-wide pool used by parallel_for: hardware_concurrency - 1
  /// workers (the calling thread is the final participant), created on
  /// first use and joined at exit.
  static ThreadPool& instance();

  /// Pool with exactly `workers` background threads (tests construct small
  /// pools directly so multi-worker paths are exercised on any machine).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of background workers (excluding the calling thread).
  [[nodiscard]] std::size_t workers() const noexcept { return threads_.size(); }

  /// Runs fn(0) .. fn(count-1) using at most `parallelism` concurrent
  /// threads including the caller (0 = workers() + 1).  The caller
  /// participates and blocks until every index has run.  The first
  /// exception thrown by fn is rethrown here exactly once, after all
  /// participants have stopped; remaining indices may then be skipped.
  /// Calls from inside a pool worker run serially (no deadlock).
  void run(std::size_t count, std::size_t parallelism,
           const std::function<void(std::size_t)>& fn);

  /// Asynchronous submission: enqueues `task` and returns immediately;
  /// some background worker runs it.  This is the batched-dispatch path of
  /// the admission-control server: the event loop posts request batches
  /// and never blocks on them.  Requires workers() >= 1 (there is nobody
  /// else to run the task; checked, throws std::logic_error).  `task` must
  /// not throw -- there is no caller to rethrow to (std::terminate).
  /// Tasks still queued when the pool is destroyed are dropped, so owners
  /// must drain (wait for their own completion signals) before teardown.
  void post(std::function<void()> task);

 private:
  /// Queued work plus its post() timestamp (trace::now_ns()); 0 marks the
  /// untimed helper jobs run() enqueues for itself, which are excluded
  /// from the pool_task_wait / queue-depth instrumentation.
  struct QueuedTask {
    std::function<void()> task;
    std::uint64_t enqueued_ns{0};
  };

  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<QueuedTask> queue_;
  bool stop_{false};
};

}  // namespace rmts
