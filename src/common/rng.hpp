// Deterministic random number generation.
//
// Experiments must be bit-reproducible across platforms and standard-library
// implementations, so we do not use std::uniform_*_distribution (whose
// algorithms are implementation-defined).  Rng wraps a SplitMix64 /
// xoshiro256** pipeline with hand-rolled, portable distributions.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "common/time.hpp"

namespace rmts {

/// xoshiro256** seeded via SplitMix64; portable uniform/exponential/log-
/// uniform draws.  Cheap to copy; each experiment sample owns its own Rng
/// derived from (base_seed, sample_index) so thread-parallel sweeps are
/// order-independent.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the xoshiro state, as
    // recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Derives an independent stream for a sub-experiment. Mixing the stream
  /// id through SplitMix64 keeps streams decorrelated even for adjacent ids.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept {
    Rng child = *this;
    child.state_[0] ^= 0xD2B74407B1CE6E93ULL * (stream + 1);
    child.state_[2] ^= 0xCA5A826395121157ULL * (stream + 0x9E3779B9ULL);
    (void)child.next();  // decorrelate
    (void)child.next();
    return child;
  }

  /// Raw 64 random bits (xoshiro256**).
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    // Modulo mapping: the bias is < range / 2^64, far below anything the
    // experiments could resolve, and the result is fully deterministic.
    return lo + static_cast<std::int64_t>(next() % range);
  }

  /// Log-uniform integer in [lo, hi]: exp(U(ln lo, ln hi)) rounded.
  /// The standard way to draw task periods spanning several orders of
  /// magnitude (Emberson et al., WATERS 2010).
  Time log_uniform_time(Time lo, Time hi) noexcept {
    const double v = std::exp(uniform(std::log(static_cast<double>(lo)),
                                      std::log(static_cast<double>(hi))));
    auto t = static_cast<Time>(std::llround(v));
    if (t < lo) t = lo;
    if (t > hi) t = hi;
    return t;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rmts
