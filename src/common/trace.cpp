#include "common/trace.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

namespace rmts::trace {

std::string_view stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kServerDecode: return "server_decode";
    case Stage::kServerQueueWait: return "server_queue_wait";
    case Stage::kServerCompute: return "server_compute";
    case Stage::kServerWrite: return "server_write";
    case Stage::kRouterAdmit: return "router_admit";
    case Stage::kRouterAnalyze: return "router_analyze";
    case Stage::kRouterRobustness: return "router_robustness";
    case Stage::kRouterSimulate: return "router_simulate";
    case Stage::kRouterStats: return "router_stats";
    case Stage::kRouterMetrics: return "router_metrics";
    case Stage::kRouterSession: return "router_session";
    case Stage::kPoolTaskWait: return "pool_task_wait";
    case Stage::kPoolTaskRun: return "pool_task_run";
    case Stage::kPartitionDedicate: return "partition_dedicate";
    case Stage::kPartitionPreassign: return "partition_preassign";
    case Stage::kPartitionPlace: return "partition_place";
    case Stage::kSimRun: return "sim_run";
  }
  return "unknown";
}

std::string_view counter_name(Counter counter) noexcept {
  switch (counter) {
    case Counter::kAdmissionCacheHit: return "admission_cache_hit";
    case Counter::kAdmissionCacheMiss: return "admission_cache_miss";
    case Counter::kAdmissionSeededRta: return "admission_seeded_rta";
    case Counter::kAdmissionRtaIterations: return "admission_rta_iterations";
    case Counter::kPoolTasksPosted: return "pool_tasks_posted";
    case Counter::kPoolTasksStarted: return "pool_tasks_started";
    case Counter::kPartitionRuns: return "partition_runs";
    case Counter::kSimRuns: return "sim_runs";
    case Counter::kSimEvents: return "sim_events";
  }
  return "unknown";
}

#if RMTS_TRACING

namespace {

/// Owns every ThreadState ever created.  Deliberately leaked (never
/// destroyed) so a worker thread outliving static destruction -- e.g. the
/// process-wide ThreadPool joining at exit -- can still record safely.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<detail::ThreadState>> states;
};

Registry& registry() noexcept {
  static Registry* instance = new Registry;  // intentionally leaked
  return *instance;
}

}  // namespace

namespace detail {

thread_local ThreadState* t_state = nullptr;

std::atomic<bool> g_enabled{true};

#if defined(__x86_64__)
namespace {
[[nodiscard]] std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

/// One-shot load-time calibration: spin ~2 ms and take the ratio of
/// elapsed steady_clock time to elapsed TSC ticks.  A 2 ms window bounds
/// the scale error well under 0.1%, far below the histogram's 3.1%
/// bucket precision.
const double g_ns_per_tick = [] {
  const std::uint64_t t0 = steady_ns();
  const std::uint64_t c0 = __builtin_ia32_rdtsc();
  while (steady_ns() - t0 < 2'000'000) {
  }
  const std::uint64_t t1 = steady_ns();
  const std::uint64_t c1 = __builtin_ia32_rdtsc();
  return static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0);
}();
#endif

ThreadState& register_thread() {
  auto owned = std::make_unique<ThreadState>();
  ThreadState* raw = owned.get();
  Registry& reg = registry();
  {
    const std::scoped_lock lock(reg.mutex);
    reg.states.push_back(std::move(owned));
  }
  t_state = raw;
  return *raw;
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Snapshot snapshot() {
  Snapshot out;
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mutex);
  out.threads = reg.states.size();
  for (const auto& state : reg.states) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const detail::StageCell& cell = state->cells[s];
      StageSnapshot& stage = out.stages[s];
      stage.count += cell.count.load(std::memory_order_relaxed);
      stage.total_ns += cell.total_ns.load(std::memory_order_relaxed);
      stage.max_ns =
          std::max(stage.max_ns, cell.max_ns.load(std::memory_order_relaxed));
      stage.latency_ns.merge(state->stages[s].snapshot());
    }
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      out.counters[c] +=
          state->counters[c].load(std::memory_order_relaxed);
    }
  }
  return out;
}

#endif  // RMTS_TRACING

}  // namespace rmts::trace
