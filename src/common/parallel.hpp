// Thread-parallel index loop for experiment sweeps.
//
// Samples of an experiment are independent by construction (each derives
// its own Rng from (seed, index)), so any partition of the index space over
// worker threads is race-free and deterministic regardless of thread count.
// Work is executed on the persistent process-wide ThreadPool with dynamic
// chunking (see thread_pool.hpp) instead of spawning fresh threads per call.
#pragma once

#include <cstddef>
#include <functional>

namespace rmts {

/// Runs fn(0) ... fn(count-1) across up to `threads` concurrent threads
/// (0 = std::thread::hardware_concurrency).  fn must be safe to call
/// concurrently for distinct indices.  The first exception thrown by any
/// worker is rethrown on the calling thread after all workers finish.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace rmts
