// Typed error hierarchy.
//
// The library throws on *caller contract violations* (malformed task sets,
// invalid experiment configurations).  Analysis outcomes that are expected
// in normal operation -- "not schedulable", "partitioning failed" -- are
// ordinary return values, never exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace rmts {

/// Base class for all rmts errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A task or task set violates the model's preconditions
/// (non-positive period, WCET > period, overflowing parameters, ...).
class InvalidTaskError : public Error {
 public:
  using Error::Error;
};

/// An experiment / generator configuration is self-contradictory
/// (zero processors, utilization target out of range, ...).
class InvalidConfigError : public Error {
 public:
  using Error::Error;
};

}  // namespace rmts
