// Cross-layer stage tracing and named counters.
//
// A Span is a scoped timer for one named pipeline stage (server decode,
// queue wait, per-op compute, pool task latency, partitioner phases,
// simulator runs); a Counter is a monotonically increasing named count
// (admission-cache hits/misses, RTA iterations, simulated events).  Both
// are designed for hot paths:
//
//  * every thread records into its own lazily-created ThreadState --
//    uncontended relaxed atomics that compile to plain increments -- so
//    recording never takes a lock and never shares a cache line with
//    another writer;
//  * per stage, count/sum/max live in one cache line and are exact;
//    quantiles come from per-thread HDR histograms (common/histogram.hpp)
//    fed every kSampleEvery-th sample -- bounding the record path's cache
//    footprint, which (not instruction count) dominated tracing cost;
//  * aggregation (trace::snapshot()) walks the registered thread states
//    under a registry mutex and merges cells, histograms and counters;
//    states of exited threads are retained, so totals never go backwards;
//  * the whole layer compiles out: configure with -DRMTS_TRACING=OFF and
//    Span/count() become empty inlines with zero code and zero data --
//    the acceptance bar for "0% overhead when compiled out".  At runtime,
//    set_enabled(false) suppresses recording behind one relaxed bool load
//    (the knob bench_e19 uses to price the instrumentation).
//
// Stages and counters are closed enums rather than string keys: O(1)
// array indexing on the record path, and the exposition layer
// (server/router.cpp `metrics` endpoint) can enumerate everything without
// a registry of dynamic names.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "common/histogram.hpp"

#ifndef RMTS_TRACING
#define RMTS_TRACING 1
#endif

namespace rmts::trace {

/// Instrumented pipeline stages.  Durations are recorded in nanoseconds.
enum class Stage : std::uint8_t {
  // Server request lifecycle (src/server/server.cpp).
  kServerDecode,     ///< socket bytes -> framed request lines (per wave)
  kServerQueueWait,  ///< request decoded -> worker picks up its batch
  kServerCompute,    ///< Router::handle for one request
  kServerWrite,      ///< flushing buffered replies to the socket
  // Per-op-class compute inside the router (src/server/router.cpp).
  kRouterAdmit,
  kRouterAnalyze,
  kRouterRobustness,
  kRouterSimulate,
  kRouterStats,
  kRouterMetrics,
  kRouterSession,  ///< all session_* ops (src/online/session.hpp)
  // Thread pool (src/common/thread_pool.cpp).
  kPoolTaskWait,  ///< post() -> a worker dequeues the task
  kPoolTaskRun,   ///< task body execution
  // Partitioner phases (src/partition/rmts.cpp).
  kPartitionDedicate,
  kPartitionPreassign,
  kPartitionPlace,
  // Simulator (src/sim/simulator.cpp).
  kSimRun,
};
inline constexpr std::size_t kStageCount = 17;

/// Monotonic named counters.
enum class Counter : std::uint8_t {
  kAdmissionCacheHit,      ///< memoized response served without re-analysis
  kAdmissionCacheMiss,     ///< invalidated/missing entry recomputed
  kAdmissionSeededRta,     ///< fits() re-analyses seeded from the cache
  kAdmissionRtaIterations, ///< fixed-point iterations across all RTA calls
  kPoolTasksPosted,
  kPoolTasksStarted,  ///< posted - started = current queue depth
  kPartitionRuns,
  kSimRuns,
  kSimEvents,  ///< event-loop iterations across all simulation runs
};
inline constexpr std::size_t kCounterCount = 9;

[[nodiscard]] std::string_view stage_name(Stage stage) noexcept;
[[nodiscard]] std::string_view counter_name(Counter counter) noexcept;

/// True when the tracing layer is compiled in at all.
[[nodiscard]] constexpr bool compiled_in() noexcept { return RMTS_TRACING != 0; }

/// Aggregated view of one stage across every thread that recorded it.
/// count/total_ns/max_ns are exact; latency_ns holds the 1-in-16 sampled
/// population (kSampleEvery) backing the quantiles.
struct StageSnapshot {
  std::uint64_t count{0};
  std::uint64_t total_ns{0};
  std::uint64_t max_ns{0};
  Histogram latency_ns{AtomicHistogram::kSubBits};

  /// Exact mean from the unsampled sums (the histogram's mean would only
  /// see every 16th sample).
  [[nodiscard]] double mean_ns() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(count);
  }
};

/// Point-in-time aggregation over all thread states (all zero/empty when
/// tracing is compiled out or nothing was recorded).
struct Snapshot {
  std::array<StageSnapshot, kStageCount> stages{};
  std::array<std::uint64_t, kCounterCount> counters{};
  std::size_t threads{0};

  [[nodiscard]] const StageSnapshot& stage(Stage s) const noexcept {
    return stages[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
};

#if RMTS_TRACING

/// Every kSampleEvery-th duration sample per (thread, stage) lands in the
/// HDR histogram backing the quantiles; count/sum/max are always exact.
/// Sampling keeps the hot record path inside one cache line per stage
/// (StageCell) -- unsampled histogram writes scatter across a ~250 KB
/// per-thread state and the resulting misses, not the instructions, were
/// the dominant tracing cost measured by bench_e19.
inline constexpr std::uint64_t kSampleEvery = 16;

namespace detail {

/// One stage's exact aggregates, padded to a cache line so the 16-stage
/// hot block is 1 KB and stays resident across requests.
struct alignas(64) StageCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> max_ns{0};
  std::uint64_t tick{0};  ///< sampling phase; single-writer, never read
                          ///< by snapshot()
};

/// One thread's private recording buffers.  Single-writer by
/// construction; the atomics exist only so snapshot() may read
/// concurrently, and every increment is a relaxed load+store pair that
/// compiles to a plain add (no lock-prefixed RMW on the record path).
struct ThreadState {
  std::array<StageCell, kStageCount> cells{};
  std::array<std::atomic<std::uint64_t>, kCounterCount> counters{};
  /// Cold: touched once per kSampleEvery records of a stage.
  std::array<AtomicHistogram, kStageCount> stages{};
};

/// This thread's state, or nullptr before its first record.  Constant-
/// initialised, so the inlined fast path below is one TLS load and a
/// null check -- no init guard.
extern thread_local ThreadState* t_state;

/// Slow path: creates this thread's state and registers it for
/// snapshot(); called once per recording thread.
[[nodiscard]] ThreadState& register_thread();

[[nodiscard]] inline ThreadState& local_state() noexcept {
  ThreadState* state = t_state;
  return state != nullptr ? *state : register_thread();
}

extern std::atomic<bool> g_enabled;

}  // namespace detail

/// Runtime kill switch (process-wide, default on).  One relaxed load on
/// every record; compiling out (RMTS_TRACING=OFF) is the zero-cost path.
void set_enabled(bool on) noexcept;
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Records one duration sample for `stage`: exact count/sum/max always,
/// histogram bucket for every kSampleEvery-th sample.
inline void record_ns(Stage stage, std::uint64_t ns) noexcept {
  if (!enabled()) return;
  detail::ThreadState& state = detail::local_state();
  const auto index = static_cast<std::size_t>(stage);
  detail::StageCell& cell = state.cells[index];
  cell.count.store(cell.count.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  cell.total_ns.store(cell.total_ns.load(std::memory_order_relaxed) + ns,
                      std::memory_order_relaxed);
  if (ns > cell.max_ns.load(std::memory_order_relaxed)) {
    cell.max_ns.store(ns, std::memory_order_relaxed);
  }
  if (cell.tick++ % kSampleEvery == 0) {
    state.stages[index].record_single_writer(ns);
  }
}

/// Increments `counter` by `delta`.
inline void count(Counter counter, std::uint64_t delta = 1) noexcept {
  if (!enabled()) return;
  auto& cell =
      detail::local_state().counters[static_cast<std::size_t>(counter)];
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

/// Increments two counters with one enabled check and one thread-state
/// fetch.  For paths that flush a fixed pair per call (the admission
/// probe flushes iteration and seeded-call deltas on every fits()), the
/// shared prologue is most of count()'s cost; adding 0 is harmless, so
/// callers need no delta != 0 guard either.
inline void count2(Counter c1, std::uint64_t d1, Counter c2,
                   std::uint64_t d2) noexcept {
  if (!enabled()) return;
  auto& counters = detail::local_state().counters;
  auto& a = counters[static_cast<std::size_t>(c1)];
  a.store(a.load(std::memory_order_relaxed) + d1, std::memory_order_relaxed);
  auto& b = counters[static_cast<std::size_t>(c2)];
  b.store(b.load(std::memory_order_relaxed) + d2, std::memory_order_relaxed);
}

[[nodiscard]] Snapshot snapshot();

#if defined(__x86_64__)
namespace detail {
/// Nanoseconds per TSC tick, measured once at load time against
/// steady_clock (trace.cpp); the TSC is invariant on every x86-64 part
/// this repo targets, so one scale factor holds process-wide.
extern const double g_ns_per_tick;
}  // namespace detail

/// ~8 ns per read (unserialised rdtsc + one multiply) vs ~20 ns for a
/// vDSO clock_gettime -- the clock reads dominate Span cost, so spans on
/// hot paths get 2x cheaper.  Unserialised is fine for observability:
/// a span may absorb a few reordered instructions at its edges.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      static_cast<double>(__builtin_ia32_rdtsc()) * detail::g_ns_per_tick);
}
#else
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

/// Scoped stage timer; cost per open/close pair (two clock reads plus one
/// single-writer histogram record) is measured by bench_e19.
class Span {
 public:
  explicit Span(Stage stage) noexcept
      : stage_(stage), start_(enabled() ? now_ns() : 0) {}
  ~Span() {
    if (start_ == 0) return;
    // The > guard drops the (theoretical) sample where a cross-core TSC
    // skew makes the interval run backwards, instead of recording a
    // wrapped-around near-2^64 duration.
    const std::uint64_t end = now_ns();
    if (end > start_) record_ns(stage_, end - start_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Stage stage_;
  std::uint64_t start_;
};

#else  // tracing compiled out: every primitive is an empty inline

inline void set_enabled(bool) noexcept {}
[[nodiscard]] inline bool enabled() noexcept { return false; }
inline void record_ns(Stage, std::uint64_t) noexcept {}
inline void count(Counter, std::uint64_t = 1) noexcept {}
inline void count2(Counter, std::uint64_t, Counter, std::uint64_t) noexcept {}
[[nodiscard]] inline Snapshot snapshot() { return {}; }
[[nodiscard]] inline std::uint64_t now_ns() noexcept { return 0; }

class Span {
 public:
  explicit Span(Stage) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // RMTS_TRACING

}  // namespace rmts::trace
