#include "common/parallel.hpp"

#include "common/thread_pool.hpp"

namespace rmts {

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool::instance().run(count, threads, fn);
}

}  // namespace rmts
