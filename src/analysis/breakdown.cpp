#include "analysis/breakdown.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "common/error.hpp"

namespace rmts {

double breakdown_utilization(const SchedulabilityTest& test, const TaskSet& base,
                             std::size_t processors, double lo, double hi,
                             double tol) {
  if (!(lo > 0.0) || lo > hi) {
    throw InvalidConfigError("breakdown_utilization: bad [lo, hi]");
  }
  // U_M(base) is invariant across the whole bisection: compute it once and
  // scale every probe against it instead of re-summing n utilizations per
  // probe.
  const double current = base.normalized_utilization(processors);
  // Scales `base` so its normalized utilization is ~`target`, respecting
  // the per-task U <= 1 cap (the caller's `hi` should stay below the level
  // where the cap binds, or the achieved level falls short of the target).
  const auto scale_to = [&](double target) {
    return base.scaled_wcets(target / current);
  };
  // Keep the scale below the point where some task would exceed U = 1;
  // beyond it scaled_wcets clamps and the "shape" is no longer preserved.
  const double cap = current / base.max_utilization();
  hi = std::min(hi, cap);
  if (hi < lo) return 0.0;

  if (!test.accepts(scale_to(lo), processors)) return 0.0;
  if (test.accepts(scale_to(hi), processors)) return hi;

  double good = lo;
  double bad = hi;
  while (bad - good > tol) {
    const double mid = 0.5 * (good + bad);
    if (test.accepts(scale_to(mid), processors)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

BreakdownResult run_breakdown(const BreakdownConfig& config,
                              const TestRosterRef& roster) {
  if (roster.empty()) throw InvalidConfigError("run_breakdown: empty roster");
  if (config.samples == 0) throw InvalidConfigError("run_breakdown: zero samples");

  BreakdownResult result;
  for (const auto& test : roster) result.algorithm_names.push_back(test->name());
  result.mean.assign(roster.size(), 0.0);
  result.min.assign(roster.size(), config.hi);

  // Per-sample results land in an indexed matrix and are reduced in index
  // order afterwards, so the floating-point sums are bit-identical for any
  // thread count.
  std::vector<std::vector<double>> per_sample(
      config.samples, std::vector<double>(roster.size(), 0.0));
  const Rng base_rng(config.seed);
  parallel_for(config.samples, config.threads, [&](std::size_t sample) {
    Rng rng = base_rng.fork(sample);
    const TaskSet base = generate(rng, config.workload);
    for (std::size_t a = 0; a < roster.size(); ++a) {
      per_sample[sample][a] =
          breakdown_utilization(*roster[a], base, config.workload.processors,
                                config.lo, config.hi, config.tol);
    }
  });

  for (std::size_t sample = 0; sample < config.samples; ++sample) {
    for (std::size_t a = 0; a < roster.size(); ++a) {
      result.mean[a] += per_sample[sample][a];
      result.min[a] = std::min(result.min[a], per_sample[sample][a]);
    }
  }
  for (double& value : result.mean) value /= static_cast<double>(config.samples);
  return result;
}

}  // namespace rmts
