// Thread-parallel index loop for experiment sweeps.
//
// Samples of an experiment are independent by construction (each derives
// its own Rng from (seed, index)), so a strided static partition over
// worker threads is race-free and deterministic regardless of thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace rmts {

/// Runs fn(0) ... fn(count-1) across up to `threads` worker threads
/// (0 = std::thread::hardware_concurrency).  fn must be safe to call
/// concurrently for distinct indices.  The first exception thrown by any
/// worker is rethrown on the calling thread after all workers join.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace rmts
