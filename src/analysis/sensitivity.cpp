#include "analysis/sensitivity.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rmts {

namespace {

/// Rebuilds `tasks` with the task of id `id` given WCET `wcet`.
TaskSet with_wcet(const TaskSet& tasks, TaskId id, Time wcet) {
  std::vector<Task> modified(tasks.begin(), tasks.end());
  for (Task& task : modified) {
    if (task.id == id) task.wcet = wcet;
  }
  return TaskSet(std::move(modified));
}

}  // namespace

std::size_t min_processors(const SchedulabilityTest& test, const TaskSet& tasks,
                           std::size_t max_processors) {
  for (std::size_t m = 1; m <= max_processors; ++m) {
    if (test.accepts(tasks, m)) return m;
  }
  return 0;
}

std::vector<Time> wcet_headroom(const SchedulabilityTest& test,
                                const TaskSet& tasks, std::size_t processors) {
  if (!test.accepts(tasks, processors)) {
    throw InvalidConfigError("wcet_headroom: base set not accepted");
  }
  std::vector<Time> headroom;
  headroom.reserve(tasks.size());
  for (const Task& task : tasks) {
    Time lo = task.wcet;  // known accepted
    Time hi = task.period;
    while (lo < hi) {
      const Time mid = lo + (hi - lo + 1) / 2;
      if (test.accepts(with_wcet(tasks, task.id, mid), processors)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    headroom.push_back(lo);
  }
  return headroom;
}

double critical_scaling_factor(const SchedulabilityTest& test,
                               const TaskSet& tasks, std::size_t processors,
                               double lo, double hi, double tol) {
  if (!(lo > 0.0) || !(hi > lo)) {
    throw InvalidConfigError("critical_scaling_factor: requires hi > lo > 0");
  }
  if (!(tol > 0.0)) {
    throw InvalidConfigError("critical_scaling_factor: requires tol > 0");
  }
  if (!test.accepts(tasks.scaled_wcets(lo), processors)) return 0.0;
  if (test.accepts(tasks.scaled_wcets(hi), processors)) return hi;
  double good = lo;
  double bad = hi;
  while (bad - good > tol) {
    const double mid = 0.5 * (good + bad);
    if (test.accepts(tasks.scaled_wcets(mid), processors)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

}  // namespace rmts
