// Sensitivity analysis: the "what-if" queries of the design loop the
// paper's introduction motivates (iterative design-space exploration).
//
// All queries treat the schedulability test as a black box and bisect, so
// they work with any algorithm in the roster (including RM-TS, whose
// acceptance is what the designer will actually ship).
#pragma once

#include <vector>

#include "partition/assignment.hpp"

namespace rmts {

/// Smallest processor count in [1, max_processors] on which `test`
/// accepts `tasks`; 0 if none does.  Linear scan (acceptance is monotone
/// in M for all implemented tests in practice, but a scan is cheap and
/// makes no assumption).
[[nodiscard]] std::size_t min_processors(const SchedulabilityTest& test,
                                         const TaskSet& tasks,
                                         std::size_t max_processors);

/// Per-task WCET headroom: for each task (in RM order), the largest WCET
/// in [current, period] that keeps the set accepted when every other task
/// is left untouched.  The current WCET is returned for tasks with no
/// headroom; requires the unmodified set to be accepted (throws
/// InvalidConfigError otherwise).
[[nodiscard]] std::vector<Time> wcet_headroom(const SchedulabilityTest& test,
                                              const TaskSet& tasks,
                                              std::size_t processors);

/// The critical scaling factor: largest f such that scaling every WCET by
/// f (rounded to ticks, capped at U_i = 1) is still accepted; bisected to
/// `tol`.  Returns 0 if even factor `lo` is rejected.  Requires
/// hi > lo > 0 and tol > 0 (throws InvalidConfigError otherwise).
[[nodiscard]] double critical_scaling_factor(const SchedulabilityTest& test,
                                             const TaskSet& tasks,
                                             std::size_t processors,
                                             double lo = 0.1, double hi = 4.0,
                                             double tol = 1e-3);

}  // namespace rmts
