// Breakdown-utilization search (experiment E6).
//
// The breakdown utilization of an algorithm on a task-set *shape* is the
// largest normalized utilization at which the proportionally-inflated set
// is still accepted -- the multiprocessor analogue of the classic
// uniprocessor statistic ("RMS breaks down at ~88% on average although the
// worst-case bound is 69.3%", paper Section I).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "partition/assignment.hpp"
#include "workload/generators.hpp"

namespace rmts {

/// Breakdown utilization of `test` for the shape of `base` on M
/// processors: WCETs are scaled by a common factor and the largest
/// accepted normalized utilization in [lo, hi] is located by bisection to
/// absolute tolerance `tol`.  Returns 0 when even `lo` is rejected.
/// (Acceptance of practical partitioning heuristics is monotone in load in
/// all but pathological cases; bisection is the standard estimator.)
[[nodiscard]] double breakdown_utilization(const SchedulabilityTest& test,
                                           const TaskSet& base,
                                           std::size_t processors, double lo,
                                           double hi, double tol = 1e-3);

struct BreakdownConfig {
  /// Shape population; normalized_utilization is the *initial* draw level
  /// (kept moderate so the shape, not the level, is what is sampled).
  WorkloadConfig workload;
  std::size_t samples{100};
  std::uint64_t seed{20120521};
  std::size_t threads{0};
  double lo{0.1};
  double hi{1.0};
  double tol{1e-3};
};

struct BreakdownResult {
  std::vector<std::string> algorithm_names;
  /// Mean breakdown utilization per algorithm.
  std::vector<double> mean;
  /// Minimum over samples per algorithm (empirical worst case).
  std::vector<double> min;
};

using TestRosterRef = std::vector<std::shared_ptr<const SchedulabilityTest>>;

/// Averages breakdown_utilization over `samples` random shapes.
[[nodiscard]] BreakdownResult run_breakdown(const BreakdownConfig& config,
                                            const TestRosterRef& roster);

}  // namespace rmts
