#include "analysis/robustness.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analysis/sensitivity.hpp"
#include "common/error.hpp"
#include "rta/rta.hpp"
#include "rta/rta_kernel.hpp"

namespace rmts {

namespace {

/// The fault layer's exact overrun rounding (sim/simulator.cpp): analytic
/// and simulated probes must scale identically or the margins are not
/// comparable.
Time scale_wcet(Time wcet, double factor) {
  if (factor == 1.0) return wcet;
  const double scaled = factor * static_cast<double>(wcet);
  if (scaled >= static_cast<double>(kTimeInfinity)) return kTimeInfinity;
  return std::max<Time>(1, static_cast<Time>(std::llround(scaled)));
}

void validate(const TaskSet& tasks, const Assignment& assignment) {
  if (tasks.empty()) throw InvalidConfigError("robustness: empty task set");
  if (!assignment.success) {
    throw InvalidConfigError("robustness: assignment unsuccessful");
  }
  for (const ProcessorAssignment& proc : assignment.processors) {
    for (const Subtask& s : proc.subtasks) {
      if (s.priority >= tasks.size()) {
        throw InvalidConfigError("robustness: subtask priority out of range");
      }
    }
  }
}

void validate(const RobustnessConfig& config) {
  if (config.horizon_cap <= 0) {
    throw InvalidConfigError("robustness: horizon_cap must be positive");
  }
  if (!(config.max_overrun_factor >= 1.0) ||
      !std::isfinite(config.max_overrun_factor)) {
    throw InvalidConfigError("robustness: max_overrun_factor must be >= 1");
  }
  if (!(config.factor_tol > 0.0)) {
    throw InvalidConfigError("robustness: factor_tol must be positive");
  }
  if (config.max_release_jitter < 0) {
    throw InvalidConfigError("robustness: max_release_jitter must be >= 0");
  }
}

/// Largest factor in [lo, hi] satisfying the monotone predicate `clean`
/// (true at lo), bisected to `tol`.
template <typename Pred>
double bisect_factor(const Pred& clean, double lo, double hi, double tol) {
  if (clean(hi)) return hi;
  double good = lo;
  double bad = hi;
  while (bad - good > tol) {
    const double mid = 0.5 * (good + bad);
    if (clean(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

/// Largest tick count in [lo, hi] satisfying `clean` (true at lo).
template <typename Pred>
Time bisect_ticks(const Pred& clean, Time lo, Time hi) {
  while (lo < hi) {
    const Time mid = lo + (hi - lo + 1) / 2;
    if (clean(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace

bool assignment_tolerates(const TaskSet& tasks, const Assignment& assignment,
                          double factor, Time jitter) {
  validate(tasks, assignment);
  if (!(factor > 0.0) || !std::isfinite(factor)) {
    throw InvalidConfigError("assignment_tolerates: factor must be positive");
  }
  if (jitter < 0) {
    throw InvalidConfigError("assignment_tolerates: jitter must be >= 0");
  }
  const std::size_t n = tasks.size();
  // Scaled per-piece responses, gathered per task as (part, response).
  std::vector<std::vector<std::pair<int, Time>>> pieces(n);
  // The robustness bisection probes the same assignment at dozens of
  // (factor, jitter) points; each probe is a many-evaluations-on-one-
  // processor scan, exactly the SoA kernel's shape.  One scratch mirror
  // per processor serves every prefix evaluation on it.
  RtaSoa soa;
  for (const ProcessorAssignment& proc : assignment.processors) {
    std::vector<Subtask> scaled = proc.subtasks;
    for (Subtask& s : scaled) s.wcet = scale_wcet(s.wcet, factor);
    soa.assign(scaled);
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      const Subtask& s = scaled[i];
      // Bound by the period: every Eq. 1 deadline is <= T, so a response
      // beyond T fails regardless of the chain prefix.
      const auto r = kernel_jitter_response(scaled, soa, i, s.wcet, s.period,
                                            jitter);
      if (!r) return false;
      pieces[s.priority].emplace_back(s.part, *r);
    }
  }
  // Chain walk: D^1 = T - J, D^{k+1} = D^k - R^k (paper Eq. 1, shifted by
  // the release jitter the deadline does not move with).
  for (std::size_t rank = 0; rank < n; ++rank) {
    auto& chain = pieces[rank];
    if (chain.empty()) {
      throw InvalidConfigError("assignment_tolerates: task has no subtasks");
    }
    std::sort(chain.begin(), chain.end());
    if (tasks[rank].period <= jitter) return false;
    Time deadline = tasks[rank].period - jitter;
    for (std::size_t k = 0; k < chain.size(); ++k) {
      if (chain[k].first != static_cast<int>(k)) {
        throw InvalidConfigError("assignment_tolerates: broken chain parts");
      }
      const Time response = chain[k].second;
      if (response > deadline) return false;
      deadline -= response;
    }
  }
  return true;
}

RobustnessReport analyze_robustness(const TaskSet& tasks,
                                    const Assignment& assignment,
                                    const RobustnessConfig& config) {
  validate(tasks, assignment);
  validate(config);

  SimConfig base;
  base.horizon = recommended_horizon(tasks, config.horizon_cap);
  base.policy = config.policy;
  // The bisections below re-simulate the same (tasks, assignment) dozens of
  // times; one workspace makes every probe after the first allocation-free.
  SimWorkspace workspace;
  const auto clean = [&](double factor, Time jitter) {
    SimConfig sim = base;
    sim.faults.seed = config.fault_seed;
    sim.faults.overrun_factor = factor;
    sim.faults.release_jitter = jitter;
    return simulate(tasks, assignment, sim, workspace).schedulable;
  };

  RobustnessReport report;
  report.analytic_supported = config.policy == DispatchPolicy::kFixedPriority;

  Time max_jitter = config.max_release_jitter;
  if (max_jitter == 0) max_jitter = tasks[0].period;  // shortest period

  if (report.analytic_supported) {
    const auto tolerates_factor = [&](double f) {
      return assignment_tolerates(tasks, assignment, f, 0);
    };
    const auto tolerates_jitter = [&](Time j) {
      return assignment_tolerates(tasks, assignment, 1.0, j);
    };
    if (tolerates_factor(1.0)) {
      report.analytic_overrun_margin = bisect_factor(
          tolerates_factor, 1.0, config.max_overrun_factor, config.factor_tol);
      report.analytic_jitter_margin = bisect_ticks(tolerates_jitter, 0, max_jitter);
    }
  }

  if (clean(1.0, 0)) {
    // Seed each simulated bisection at the analytic margin when a direct
    // probe there is clean (analysis sound => always, making
    // analytic <= simulated structural); on an unsound analysis the probe
    // misses and the plain bisection exposes the violation.
    double factor_lo = 1.0;
    if (report.analytic_overrun_margin > 1.0 &&
        clean(report.analytic_overrun_margin, 0)) {
      factor_lo = report.analytic_overrun_margin;
    }
    report.simulated_overrun_margin =
        bisect_factor([&](double f) { return clean(f, 0); }, factor_lo,
                      config.max_overrun_factor, config.factor_tol);

    Time jitter_lo = 0;
    if (report.analytic_jitter_margin > 0 &&
        clean(1.0, report.analytic_jitter_margin)) {
      jitter_lo = report.analytic_jitter_margin;
    }
    report.simulated_jitter_margin = bisect_ticks(
        [&](Time j) { return clean(1.0, j); }, jitter_lo, max_jitter);
  }
  return report;
}

MarginSoundness check_margin_soundness(const Partitioner& algorithm,
                                       const TaskSet& tasks,
                                       std::size_t processors,
                                       const RobustnessConfig& config) {
  validate(config);
  if (tasks.empty()) throw InvalidConfigError("robustness: empty task set");

  SimWorkspace workspace;
  const auto simulates_clean = [&](const TaskSet& modified) {
    const Assignment assignment = algorithm.partition(modified, processors);
    if (!assignment.success) return false;
    SimConfig sim;
    sim.horizon = recommended_horizon(modified, config.horizon_cap);
    sim.policy = config.policy;
    return simulate(modified, assignment, sim, workspace).schedulable;
  };

  MarginSoundness result;
  result.critical_scaling_factor = critical_scaling_factor(
      algorithm, tasks, processors, 0.1, config.max_overrun_factor,
      config.factor_tol);
  // The bisection verified acceptance at the returned factor; Lemma 4 says
  // the accepted scaled set's own assignment must simulate miss-free.
  result.scaling_margin_sound =
      result.critical_scaling_factor > 0.0 &&
      simulates_clean(tasks.scaled_wcets(result.critical_scaling_factor));

  const std::vector<Time> headroom =
      wcet_headroom(algorithm, tasks, processors);  // throws if not accepted
  result.headroom_sound = true;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::vector<Task> modified(tasks.begin(), tasks.end());
    modified[i].wcet = headroom[i];
    if (!simulates_clean(TaskSet(std::move(modified)))) {
      result.headroom_sound = false;
      break;
    }
  }
  return result;
}

}  // namespace rmts
