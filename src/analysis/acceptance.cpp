#include "analysis/acceptance.hpp"

#include <atomic>

#include "common/parallel.hpp"
#include "common/error.hpp"

namespace rmts {

std::vector<double> sweep(double lo, double hi, std::size_t count) {
  if (count < 2) throw InvalidConfigError("sweep: need at least two points");
  std::vector<double> points(count);
  for (std::size_t i = 0; i < count; ++i) {
    points[i] = lo + (hi - lo) * static_cast<double>(i) /
                         static_cast<double>(count - 1);
  }
  return points;
}

AcceptanceResult run_acceptance(const AcceptanceConfig& config,
                                const TestRoster& roster) {
  if (roster.empty()) throw InvalidConfigError("run_acceptance: empty roster");
  if (config.utilization_points.empty() || config.samples == 0) {
    throw InvalidConfigError("run_acceptance: empty sweep");
  }

  AcceptanceResult result;
  result.utilization_points = config.utilization_points;
  for (const auto& test : roster) result.algorithm_names.push_back(test->name());
  result.ratio.assign(config.utilization_points.size(),
                      std::vector<double>(roster.size(), 0.0));

  const std::size_t points = config.utilization_points.size();
  // accepted[point][algo], accumulated atomically across workers.
  std::vector<std::vector<std::atomic<std::size_t>>> accepted(points);
  for (auto& row : accepted) {
    row = std::vector<std::atomic<std::size_t>>(roster.size());
  }

  const Rng base_rng(config.seed);
  parallel_for(points * config.samples, config.threads, [&](std::size_t index) {
    const std::size_t point = index / config.samples;
    WorkloadConfig workload = config.workload;
    workload.normalized_utilization = config.utilization_points[point];
    Rng rng = base_rng.fork(index);
    const TaskSet tasks = generate(rng, workload);
    for (std::size_t a = 0; a < roster.size(); ++a) {
      if (roster[a]->accepts(tasks, workload.processors)) {
        accepted[point][a].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (std::size_t p = 0; p < points; ++p) {
    for (std::size_t a = 0; a < roster.size(); ++a) {
      result.ratio[p][a] = static_cast<double>(accepted[p][a].load()) /
                           static_cast<double>(config.samples);
    }
  }
  return result;
}

Table AcceptanceResult::to_table() const {
  std::vector<std::string> header{"U_M"};
  header.insert(header.end(), algorithm_names.begin(), algorithm_names.end());
  Table table(std::move(header));
  for (std::size_t p = 0; p < utilization_points.size(); ++p) {
    std::vector<std::string> row{Table::num(utilization_points[p], 3)};
    for (const double r : ratio[p]) row.push_back(Table::num(r, 3));
    table.add_row(std::move(row));
  }
  return table;
}

double AcceptanceResult::last_point_above(std::size_t algorithm,
                                          double level) const {
  double best = 0.0;
  for (std::size_t p = 0; p < utilization_points.size(); ++p) {
    if (ratio[p][algorithm] >= level) best = utilization_points[p];
  }
  return best;
}

}  // namespace rmts
