// Acceptance-ratio experiments: the workhorse behind the reproduced
// figures.  For each normalized-utilization point, `samples` random task
// sets are drawn and every algorithm's acceptance fraction is recorded.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/table.hpp"
#include "partition/assignment.hpp"
#include "workload/generators.hpp"

namespace rmts {

/// Roster of algorithms under comparison.
using TestRoster = std::vector<std::shared_ptr<const SchedulabilityTest>>;

struct AcceptanceConfig {
  /// Population template; its normalized_utilization field is overridden
  /// by each sweep point.
  WorkloadConfig workload;
  /// U_M(tau) sweep points (x axis of the reproduced figures).
  std::vector<double> utilization_points;
  std::size_t samples{200};
  std::uint64_t seed{20120521};  // IPDPS 2012 started May 21
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads{0};
};

struct AcceptanceResult {
  std::vector<std::string> algorithm_names;
  std::vector<double> utilization_points;
  /// ratio[point][algorithm] = accepted fraction in [0, 1].
  std::vector<std::vector<double>> ratio;

  /// Renders the figure data: one row per sweep point, one column per
  /// algorithm.
  [[nodiscard]] Table to_table() const;

  /// Largest sweep point at which `algorithm` still accepts at least
  /// `level` of the samples (0.0 if none) -- a scalar summary used to
  /// compare curves ("where does acceptance collapse?").
  [[nodiscard]] double last_point_above(std::size_t algorithm, double level) const;
};

/// Runs the experiment.  Deterministic in (config.seed, sample index):
/// thread count does not affect results.
[[nodiscard]] AcceptanceResult run_acceptance(const AcceptanceConfig& config,
                                              const TestRoster& roster);

/// Evenly spaced sweep [lo, hi] with `count` points (count >= 2).
[[nodiscard]] std::vector<double> sweep(double lo, double hi, std::size_t count);

}  // namespace rmts
