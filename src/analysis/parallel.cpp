#include "analysis/parallel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace rmts {

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, count);

  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      try {
        for (std::size_t i = t; i < count; i += threads) fn(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rmts
