// Simulation-backed robustness analysis: how much fault does an *accepted*
// partition actually tolerate, and does the analytic margin ever promise
// more than the runtime delivers?
//
// Two complementary views:
//
//  * analyze_robustness() takes a FIXED assignment and bisects, by
//    fault-injected simulation (sim/fault.hpp), the largest execution-time
//    overrun factor and the largest release-jitter bound before the first
//    observed deadline miss.  Alongside it computes the corresponding
//    *analytic* fixed-assignment margins: scale every subtask WCET by the
//    candidate factor (the fault layer's exact rounding), recompute the
//    synthetic deadlines of paper Eq. 1 from the measured RTA responses,
//    and check each piece against its deadline; jitter J additionally
//    shrinks the first deadline to T - J and inflates interference to
//    ceil((t + J)/T_j) (Audsley-style jitter extension).  Analysis is
//    conservative, simulation is exact, so the soundness invariant is
//    analytic margin <= simulated margin -- asserted by tests and the
//    fuzzer on every accepted partition.
//
//  * check_margin_soundness() cross-checks the re-partitioning margins of
//    analysis/sensitivity.hpp (critical_scaling_factor, wcet_headroom):
//    at the reported margin the algorithm's own assignment of the scaled
//    set must simulate miss-free (Lemma 4 at the margin).
#pragma once

#include "partition/assignment.hpp"
#include "sim/simulator.hpp"

namespace rmts {

/// Search space and simulation parameters of one robustness query.
struct RobustnessConfig {
  /// Simulation horizon cap (recommended_horizon(tasks, cap) per probe).
  Time horizon_cap{2'000'000};
  /// Seed of the injected fault streams.
  std::uint64_t fault_seed{1};
  /// Overrun-factor bisection over [1.0, max_overrun_factor], to factor_tol.
  double max_overrun_factor{4.0};
  double factor_tol{1e-2};
  /// Jitter bisection over [0, max_release_jitter] ticks; 0 = use the
  /// shortest period (jitter beyond one period is meaningless).
  Time max_release_jitter{0};
  DispatchPolicy policy{DispatchPolicy::kFixedPriority};
};

/// Robustness margins of one fixed assignment.
struct RobustnessReport {
  /// Largest overrun factor with a miss-free fault-injected simulation.
  /// 0.0 if even the nominal run (factor 1.0) misses.
  double simulated_overrun_margin{0.0};
  /// Largest release-jitter bound (ticks) with a miss-free simulation.
  Time simulated_jitter_margin{0};
  /// Largest overrun factor the scaled-assignment RTA proves (<= the
  /// simulated margin; 0.0 if the nominal assignment fails RTA).
  double analytic_overrun_margin{0.0};
  /// Largest jitter bound the jitter-aware RTA proves (<= simulated).
  Time analytic_jitter_margin{0};
  /// Analytic margins are computed for fixed-priority dispatch only; false
  /// under kEarliestDeadlineFirst (analytic fields are then 0).
  bool analytic_supported{false};
};

/// Computes the robustness margins of `assignment` (which must be
/// successful) for `tasks`.  Throws InvalidConfigError on malformed
/// configs or assignments.
[[nodiscard]] RobustnessReport analyze_robustness(const TaskSet& tasks,
                                                  const Assignment& assignment,
                                                  const RobustnessConfig& config);

/// Analytic fixed-assignment tolerance check used for the analytic margins
/// (exposed for tests): true iff the assignment, with every subtask WCET
/// scaled by `factor` (fault-layer rounding) and release jitter up to
/// `jitter`, passes per-processor RTA against the Eq. 1 synthetic
/// deadlines.  Fixed-priority semantics; `assignment` must be successful.
[[nodiscard]] bool assignment_tolerates(const TaskSet& tasks,
                                        const Assignment& assignment,
                                        double factor, Time jitter);

/// Outcome of cross-checking sensitivity.hpp's analytic margins.
struct MarginSoundness {
  /// critical_scaling_factor(algorithm, tasks, processors) as reported.
  double critical_scaling_factor{0.0};
  /// The algorithm's assignment of the csf-scaled set simulates miss-free.
  bool scaling_margin_sound{false};
  /// For every task, the assignment at its wcet_headroom simulates
  /// miss-free.
  bool headroom_sound{false};
};

/// Verifies by simulation that the analytic margins of sensitivity.hpp do
/// not overpromise for `algorithm` on `tasks`.  Requires the nominal set
/// to be accepted (wcet_headroom's precondition).
[[nodiscard]] MarginSoundness check_margin_soundness(const Partitioner& algorithm,
                                                     const TaskSet& tasks,
                                                     std::size_t processors,
                                                     const RobustnessConfig& config);

}  // namespace rmts
