// Parametric utilization bounds (Section III).
//
// A parametric utilization bound (PUB) Lambda(tau) maps a task set's
// *parameters* to a utilization threshold such that U(tau) <= Lambda(tau)
// guarantees uniprocessor RMS schedulability.  All bounds implemented here
// are *deflatable* (D-PUB, paper Lemma 1): they depend only on periods and
// the task count, never on execution times, so decreasing WCETs (which is
// what partitioning and splitting do to the per-processor workloads) keeps
// the bound computed from the ORIGINAL task set valid.
//
// Usage in the multiprocessor algorithms: Lambda is evaluated once on the
// full task set tau and reused as a per-processor threshold in proofs and
// in RM-TS's pre-assign condition.  It is never re-evaluated on the
// partitioned subsets -- that would be unsound (a split harmonic set stops
// being harmonic, paper Fig. 2).
#pragma once

#include <memory>
#include <string>

#include "tasks/task_set.hpp"

namespace rmts {

/// Interface of a deflatable parametric utilization bound.
class ParametricBound {
 public:
  virtual ~ParametricBound() = default;

  /// Lambda(tau) in (0, 1].  Must depend only on deflation-invariant
  /// parameters (periods, task count) -- property-tested in
  /// tests/bounds_test.cpp.
  [[nodiscard]] virtual double evaluate(const TaskSet& tasks) const = 0;

  /// Short identifier for tables ("LL", "HC", "T-bound", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

using BoundPtr = std::shared_ptr<const ParametricBound>;

/// The Liu & Layland bound Theta(n) = n(2^{1/n} - 1); Theta(0) := 1,
/// monotonically decreasing to ln 2 ~= 0.6931.
[[nodiscard]] double liu_layland_theta(std::size_t n) noexcept;

/// ln 2, the N -> infinity limit of Theta.
[[nodiscard]] double liu_layland_theta_limit() noexcept;

/// The paper's light-task threshold Theta/(1 + Theta) (Definition 1);
/// ~= 40.9% as n -> infinity.
[[nodiscard]] double light_task_threshold(std::size_t n) noexcept;

/// The RM-TS cap 2*Theta/(1 + Theta) (Section V); any D-PUB value above it
/// is clamped before being used by RM-TS.  ~= 81.8% as n -> infinity.
[[nodiscard]] double rmts_bound_cap(std::size_t n) noexcept;

}  // namespace rmts
