// The Liu & Layland bound as a ParametricBound: Lambda(tau) = Theta(N).
// Instantiating RM-TS/light with this bound recovers the algorithm of [16]
// in guarantee (though not in average-case behaviour, thanks to exact RTA).
#pragma once

#include "bounds/bound.hpp"

namespace rmts {

/// Lambda(tau) = N(2^{1/N} - 1) where N = |tau|.
class LiuLaylandBound final : public ParametricBound {
 public:
  [[nodiscard]] double evaluate(const TaskSet& tasks) const override;
  [[nodiscard]] std::string name() const override { return "LL"; }
};

}  // namespace rmts
