#include "bounds/burchard.hpp"

#include <algorithm>
#include <cmath>

namespace rmts {

double log_period_spread(const TaskSet& tasks) noexcept {
  double min_s = 1.0;
  double max_s = 0.0;
  for (const Task& task : tasks) {
    const double log_period = std::log2(static_cast<double>(task.period));
    const double fractional = log_period - std::floor(log_period);
    min_s = std::min(min_s, fractional);
    max_s = std::max(max_s, fractional);
  }
  return tasks.empty() ? 0.0 : max_s - min_s;
}

double burchard_bound_value(std::size_t n, double beta) noexcept {
  if (n == 0) return 1.0;
  const double nd = static_cast<double>(n);
  if (beta >= 1.0 - 1.0 / nd) return liu_layland_theta(n);
  if (n == 1) return 1.0;
  return (nd - 1.0) * (std::pow(2.0, beta / (nd - 1.0)) - 1.0) +
         std::pow(2.0, 1.0 - beta) - 1.0;
}

double BurchardBound::evaluate(const TaskSet& tasks) const {
  return burchard_bound_value(tasks.size(), log_period_spread(tasks));
}

}  // namespace rmts
