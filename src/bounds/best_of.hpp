// Pointwise maximum of deflatable parametric utilization bounds.
//
// If U(tau) <= max_i Lambda_i(tau) then U(tau) <= Lambda_j(tau) for the
// maximizing j, so the set is schedulable by bound j's guarantee: the max
// of D-PUBs is itself a D-PUB.  This is how a system designer would
// actually instantiate RM-TS -- evaluate every known bound on the task
// set's parameters and take the best one (experiment E13).
#pragma once

#include <vector>

#include "bounds/bound.hpp"

namespace rmts {

class BestOfBounds final : public ParametricBound {
 public:
  /// Requires at least one bound.
  explicit BestOfBounds(std::vector<BoundPtr> bounds, std::string label = "best-of");

  [[nodiscard]] double evaluate(const TaskSet& tasks) const override;
  [[nodiscard]] std::string name() const override { return label_; }

  /// The constituent whose value is maximal for `tasks` (ties: first).
  [[nodiscard]] const ParametricBound& winner(const TaskSet& tasks) const;

  /// Convenience: all bounds implemented in this library (LL, HC, T, R,
  /// Burchard).
  [[nodiscard]] static BestOfBounds all_known();

 private:
  std::vector<BoundPtr> bounds_;
  std::string label_;
};

}  // namespace rmts
