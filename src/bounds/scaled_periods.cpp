#include "bounds/scaled_periods.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rmts {

std::vector<Time> scale_periods(std::span<const Time> periods) {
  std::vector<Time> scaled(periods.begin(), periods.end());
  if (scaled.empty()) return scaled;
  const Time t_max = *std::max_element(scaled.begin(), scaled.end());
  for (Time& p : scaled) {
    // Largest power of two <= t_max / p (real-valued ratio >= 1).  For an
    // integer power of two q: q <= t_max/p  <=>  q <= floor(t_max/p), so
    // bit_floor of the integer quotient is exact.
    const auto quotient = static_cast<std::uint64_t>(t_max / p);
    const Time factor = static_cast<Time>(std::bit_floor(quotient));
    p *= factor;
  }
  return scaled;
}

double TBound::evaluate(const TaskSet& tasks) const {
  const std::size_t n = tasks.size();
  if (n <= 1) return 1.0;
  std::vector<Time> scaled = scale_periods(tasks.periods());
  std::sort(scaled.begin(), scaled.end());
  double bound = -static_cast<double>(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    bound += static_cast<double>(scaled[i + 1]) / static_cast<double>(scaled[i]);
  }
  bound += 2.0 * static_cast<double>(scaled.front()) /
           static_cast<double>(scaled.back());
  return bound;
}

double r_bound_value(std::size_t n, double ratio) noexcept {
  if (n <= 1) return 1.0;
  const double n1 = static_cast<double>(n - 1);
  return n1 * (std::pow(ratio, 1.0 / n1) - 1.0) + 2.0 / ratio - 1.0;
}

double RBound::evaluate(const TaskSet& tasks) const {
  const std::size_t n = tasks.size();
  if (n <= 1) return 1.0;
  std::vector<Time> scaled = scale_periods(tasks.periods());
  const auto [min_it, max_it] = std::minmax_element(scaled.begin(), scaled.end());
  const double ratio = static_cast<double>(*max_it) / static_cast<double>(*min_it);
  return r_bound_value(n, ratio);
}

}  // namespace rmts
