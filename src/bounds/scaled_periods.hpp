// Period scaling and the period-aware T-Bound / R-Bound [23]
// (Lauzac, Melhem, Mosse).
//
// ScaleTaskSet maps every period into (T_max/2, T_max] by multiplying with
// the largest power of two that keeps it <= T_max: T'_i = T_i * 2^k with
// k = floor(log2(T_max / T_i)).  RMS schedulability is invariant under this
// transform in the bound's worst case, which lets the bounds look only at
// period ratios within one octave.
#pragma once

#include <span>
#include <vector>

#include "bounds/bound.hpp"
#include "common/time.hpp"

namespace rmts {

/// The scaled periods T'_i (same order as input); all in (max/2, max].
[[nodiscard]] std::vector<Time> scale_periods(std::span<const Time> periods);

/// T-Bound(tau) = sum_{i=1}^{N-1} T'_{i+1}/T'_i + 2*T'_1/T'_N - N over the
/// sorted scaled periods.  Evaluates to 1.0 for harmonic-by-powers-of-two
/// sets and degrades towards Theta(N) as the scaled periods spread.
class TBound final : public ParametricBound {
 public:
  [[nodiscard]] double evaluate(const TaskSet& tasks) const override;
  [[nodiscard]] std::string name() const override { return "T-bound"; }
};

/// R-Bound(tau) = (N-1)(r^{1/(N-1)} - 1) + 2/r - 1 with
/// r = max(T')/min(T') in [1, 2): a coarser, single-parameter abstraction
/// of the T-Bound.
class RBound final : public ParametricBound {
 public:
  [[nodiscard]] double evaluate(const TaskSet& tasks) const override;
  [[nodiscard]] std::string name() const override { return "R-bound"; }
};

/// Closed-form R-bound for a given task count and scaled-period ratio.
[[nodiscard]] double r_bound_value(std::size_t n, double ratio) noexcept;

}  // namespace rmts
