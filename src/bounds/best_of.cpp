#include "bounds/best_of.hpp"

#include <memory>

#include "bounds/burchard.hpp"
#include "bounds/harmonic.hpp"
#include "bounds/ll_bound.hpp"
#include "bounds/scaled_periods.hpp"
#include "common/error.hpp"

namespace rmts {

BestOfBounds::BestOfBounds(std::vector<BoundPtr> bounds, std::string label)
    : bounds_(std::move(bounds)), label_(std::move(label)) {
  if (bounds_.empty()) {
    throw InvalidConfigError("BestOfBounds: need at least one bound");
  }
}

double BestOfBounds::evaluate(const TaskSet& tasks) const {
  double best = 0.0;
  for (const BoundPtr& bound : bounds_) {
    best = std::max(best, bound->evaluate(tasks));
  }
  return best;
}

const ParametricBound& BestOfBounds::winner(const TaskSet& tasks) const {
  const ParametricBound* best = bounds_.front().get();
  double best_value = best->evaluate(tasks);
  for (const BoundPtr& bound : bounds_) {
    const double value = bound->evaluate(tasks);
    if (value > best_value) {
      best_value = value;
      best = bound.get();
    }
  }
  return *best;
}

BestOfBounds BestOfBounds::all_known() {
  return BestOfBounds({std::make_shared<LiuLaylandBound>(),
                       std::make_shared<HarmonicChainBound>(),
                       std::make_shared<TBound>(),
                       std::make_shared<RBound>(),
                       std::make_shared<BurchardBound>()},
                      "best-of-all");
}

}  // namespace rmts
