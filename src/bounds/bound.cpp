#include "bounds/bound.hpp"

#include <cmath>

#include "bounds/ll_bound.hpp"

namespace rmts {

double liu_layland_theta(std::size_t n) noexcept {
  if (n == 0) return 1.0;
  const double nd = static_cast<double>(n);
  return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

double liu_layland_theta_limit() noexcept { return std::log(2.0); }

double light_task_threshold(std::size_t n) noexcept {
  const double theta = liu_layland_theta(n);
  return theta / (1.0 + theta);
}

double rmts_bound_cap(std::size_t n) noexcept {
  const double theta = liu_layland_theta(n);
  return 2.0 * theta / (1.0 + theta);
}

double LiuLaylandBound::evaluate(const TaskSet& tasks) const {
  return liu_layland_theta(tasks.size());
}

}  // namespace rmts
