// Harmonic-chain analysis and the harmonic-chain bound [21] (Kuo & Mok).
//
// A harmonic chain is a set of tasks whose periods pairwise divide.  The
// harmonic-chain bound HC(tau) = K(2^{1/K} - 1) where K is the number of
// harmonic chains tau decomposes into; K = 1 (fully harmonic set) yields
// the 100% bound [26].  Fewer chains -> higher bound, so we compute the
// MINIMUM chain partition of the divisibility poset.  By Dilworth's
// theorem this equals N minus a maximum bipartite matching on the strict
// divisibility relation, which we solve exactly with Kuhn's augmenting-path
// algorithm (task counts here are small).  A cheaper greedy decomposition
// is provided for comparison/ablation; it never produces fewer chains.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "bounds/bound.hpp"
#include "common/time.hpp"

namespace rmts {

/// Minimum number of harmonic chains covering `periods` (exact, via
/// maximum bipartite matching on the strict divisibility order).
/// Returns 0 for an empty input.
[[nodiscard]] std::size_t min_harmonic_chains(std::span<const Time> periods);

/// Greedy chain count: scan periods in non-decreasing order, append each to
/// the first existing chain whose largest period divides it, else open a
/// new chain.  Upper-bounds min_harmonic_chains (tested); kept as the
/// historical/cheap alternative.
[[nodiscard]] std::size_t greedy_harmonic_chains(std::span<const Time> periods);

/// An explicit minimum chain partition: each inner vector lists the indices
/// of `periods` forming one chain, in non-decreasing period order.
[[nodiscard]] std::vector<std::vector<std::size_t>> min_harmonic_chain_partition(
    std::span<const Time> periods);

/// HC-Bound(tau) = K(2^{1/K} - 1) with K the minimum harmonic chain count.
class HarmonicChainBound final : public ParametricBound {
 public:
  [[nodiscard]] double evaluate(const TaskSet& tasks) const override;
  [[nodiscard]] std::string name() const override { return "HC"; }
};

/// The closed-form K(2^{1/K} - 1); K = 0 maps to 1.0 (empty set).
[[nodiscard]] double harmonic_chain_bound_value(std::size_t chains) noexcept;

}  // namespace rmts
