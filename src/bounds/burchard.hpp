// The Burchard-Liebeherr-Oh-Son period-similarity bound (1995) -- another
// deflatable PUB of the kind Section III enumerates ("the following are
// some examples"): it depends only on task count and periods, so it plugs
// straight into RM-TS.
//
// With S_i = log2 T_i - floor(log2 T_i) and beta = max S_i - min S_i:
//   beta <  1 - 1/N :  U <= (N-1)(2^{beta/(N-1)} - 1) + 2^{1-beta} - 1
//   beta >= 1 - 1/N :  U <= Theta(N)
// Periods clustered within a narrow log-band (beta -> 0) push the bound to
// 100%; spread-out periods degrade gracefully to the L&L bound.
#pragma once

#include "bounds/bound.hpp"

namespace rmts {

class BurchardBound final : public ParametricBound {
 public:
  [[nodiscard]] double evaluate(const TaskSet& tasks) const override;
  [[nodiscard]] std::string name() const override { return "Burchard"; }
};

/// Closed form for a given task count and log-period spread beta in [0, 1).
[[nodiscard]] double burchard_bound_value(std::size_t n, double beta) noexcept;

/// beta(tau) = max_i S_i - min_i S_i over S_i = frac(log2 T_i).
[[nodiscard]] double log_period_spread(const TaskSet& tasks) noexcept;

}  // namespace rmts
