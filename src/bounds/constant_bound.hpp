// A fixed-value bound, useful for experiments ("what if we feed RM-TS the
// 100% bound regardless of structure?") and for modelling externally-derived
// non-closed-form D-PUBs.  It is trivially deflatable because it ignores
// the task set entirely -- soundness as a *uniprocessor* bound is the
// caller's obligation.
#pragma once

#include "bounds/bound.hpp"

namespace rmts {

class ConstantBound final : public ParametricBound {
 public:
  explicit ConstantBound(double value, std::string label = "const")
      : value_(value), label_(std::move(label)) {}

  [[nodiscard]] double evaluate(const TaskSet&) const override { return value_; }
  [[nodiscard]] std::string name() const override { return label_; }

 private:
  double value_;
  std::string label_;
};

}  // namespace rmts
