#include "bounds/harmonic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rmts {

namespace {

/// Strict order for the divisibility poset over period multiset entries.
/// Equal periods are mutually harmonic; indices break the tie so the order
/// stays irreflexive while keeping duplicates comparable.
bool divides_strictly(std::span<const Time> periods, std::size_t a, std::size_t b) {
  if (periods[b] % periods[a] != 0) return false;
  if (periods[a] != periods[b]) return true;
  return a < b;
}

/// Kuhn's augmenting-path maximum matching on the bipartite graph whose
/// left/right copies are the poset elements and whose edges are the strict
/// divisibility pairs.  `match_left[u]` ends up holding u's successor in
/// its chain (or npos).
struct ChainMatching {
  std::vector<std::size_t> match_left;   // successor of u, npos if none
  std::vector<std::size_t> match_right;  // predecessor of v, npos if none
  std::size_t matched = 0;
};

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool try_augment(std::span<const Time> periods, std::size_t u,
                 std::vector<char>& visited, ChainMatching& m) {
  const std::size_t n = periods.size();
  for (std::size_t v = 0; v < n; ++v) {
    if (visited[v] || !divides_strictly(periods, u, v)) continue;
    visited[v] = 1;
    if (m.match_right[v] == kNone ||
        try_augment(periods, m.match_right[v], visited, m)) {
      m.match_left[u] = v;
      m.match_right[v] = u;
      return true;
    }
  }
  return false;
}

ChainMatching max_matching(std::span<const Time> periods) {
  const std::size_t n = periods.size();
  ChainMatching m;
  m.match_left.assign(n, kNone);
  m.match_right.assign(n, kNone);
  for (std::size_t u = 0; u < n; ++u) {
    std::vector<char> visited(n, 0);
    if (try_augment(periods, u, visited, m)) ++m.matched;
  }
  return m;
}

}  // namespace

std::size_t min_harmonic_chains(std::span<const Time> periods) {
  if (periods.empty()) return 0;
  // Minimum chain cover of a poset = N - maximum matching (Dilworth via
  // Fulkerson's bipartite construction; valid because divisibility is
  // transitive, so path cover == chain cover).
  return periods.size() - max_matching(periods).matched;
}

std::vector<std::vector<std::size_t>> min_harmonic_chain_partition(
    std::span<const Time> periods) {
  const std::size_t n = periods.size();
  const ChainMatching m = max_matching(periods);
  std::vector<std::vector<std::size_t>> chains;
  for (std::size_t u = 0; u < n; ++u) {
    if (m.match_right[u] != kNone) continue;  // not a chain head
    std::vector<std::size_t> chain;
    for (std::size_t v = u; v != kNone; v = m.match_left[v]) {
      chain.push_back(v);
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

std::size_t greedy_harmonic_chains(std::span<const Time> periods) {
  std::vector<std::size_t> order(periods.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return periods[a] < periods[b];
  });
  std::vector<Time> chain_tail;  // largest period of each open chain
  for (const std::size_t idx : order) {
    const Time p = periods[idx];
    auto fits = std::find_if(chain_tail.begin(), chain_tail.end(),
                             [&](Time tail) { return p % tail == 0; });
    if (fits != chain_tail.end()) {
      *fits = p;
    } else {
      chain_tail.push_back(p);
    }
  }
  return chain_tail.size();
}

double harmonic_chain_bound_value(std::size_t chains) noexcept {
  if (chains == 0) return 1.0;
  const double k = static_cast<double>(chains);
  return k * (std::pow(2.0, 1.0 / k) - 1.0);
}

double HarmonicChainBound::evaluate(const TaskSet& tasks) const {
  const std::vector<Time> periods = tasks.periods();
  return harmonic_chain_bound_value(min_harmonic_chains(periods));
}

}  // namespace rmts
