// Exact response-time analysis (RTA) for constrained-deadline, preemptive
// fixed-priority scheduling on one processor.
//
// This is the admission test that distinguishes RM-TS from its
// threshold-based predecessor SPA1/SPA2 [16]: a (sub)task fits on a
// processor iff after adding it every (sub)task's worst-case response time
// is at most its (synthetic) deadline.
//
// Subtasks of the same task are never co-located, so the interfering set of
// a subtask is exactly the co-located subtasks with smaller parent RM rank,
// each behaving as an independent sporadic interferer (C_j, T_j).  Synthetic
// deadlines already account for cross-processor synchronization (paper
// Section II), which is why plain uniprocessor RTA is sound here (Lemma 4).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "tasks/subtask.hpp"
#include "tasks/task_set.hpp"

namespace rmts {

/// Result of one response-time computation.
struct RtaOutcome {
  bool schedulable{false};
  /// The fixed point R if schedulable; otherwise the first iterate that
  /// exceeded the deadline (a certified lower bound on the true response
  /// time, useful for diagnostics).
  Time response{0};
  /// Number of fixed-point iterations performed.
  int iterations{0};
};

/// Worst-case response time of a job with execution time `wcet` and
/// deadline `deadline`, interfered by the sporadic `interferers`
/// (only their wcet/period fields are read).  Standard fixed-point
/// iteration: R <- wcet + sum_j ceil(R / T_j) * C_j, seeded with the total
/// one-job demand; aborts as unschedulable as soon as an iterate exceeds
/// `deadline` (the iterates are non-decreasing).  All accumulation is
/// overflow-checked: if the demand exceeds int64 the job certainly misses
/// any representable deadline, so the outcome is "not schedulable" with
/// `response == kTimeInfinity` instead of UB.
[[nodiscard]] RtaOutcome response_time(Time wcet, Time deadline,
                                       std::span<const Subtask> interferers);

/// As response_time, with the fixed-point iteration started at
/// max(seed, one-job demand).  `seed` must be a lower bound on the true
/// response time under `interferers` -- e.g. the exact response under any
/// subset of them (interference is monotone, so the old fixed point lies
/// at or below the new one).  Same fixed point, fewer iterations; this is
/// what the ProcessorState admission cache feeds with memoized responses.
[[nodiscard]] RtaOutcome response_time_seeded(Time wcet, Time deadline,
                                              std::span<const Subtask> interferers,
                                              Time seed);

/// As response_time_seeded, with one `extra` interferer considered on top
/// of `interferers` (saves materializing prefix + candidate vectors in the
/// partitioners' admission scans).
[[nodiscard]] RtaOutcome response_time_with(Time wcet, Time deadline,
                                            std::span<const Subtask> interferers,
                                            const Subtask& extra, Time seed);

/// Full-processor analysis result.
struct ProcessorRta {
  bool schedulable{false};
  /// Response time per subtask, parallel to the input span.  Entries after
  /// the first unschedulable subtask are 0 (analysis short-circuits).
  std::vector<Time> response;
  /// Index of the first subtask that misses its deadline, or input size.
  std::size_t first_miss{0};
};

/// Analyzes every subtask on a processor.  `subtasks` must be sorted by
/// strictly increasing `priority` rank (0 = highest first); each entry is
/// checked against its own synthetic deadline.  Evaluated through the
/// structure-of-arrays kernel (rta/rta_kernel.hpp) with outcomes
/// bit-identical to running response_time per prefix.
[[nodiscard]] ProcessorRta analyze_processor(std::span<const Subtask> subtasks);

/// True iff every subtask meets its deadline; convenience over
/// analyze_processor.
[[nodiscard]] bool processor_schedulable(std::span<const Subtask> subtasks);

/// Uniprocessor RMS exact schedulability of a whole task set (every task as
/// an unsplit subtask on one processor).  Used by baselines, by
/// deflatability property tests, and by uniprocessor breakdown search.
[[nodiscard]] bool rm_schedulable_uniprocessor(const TaskSet& tasks);

/// Time-demand analysis (Lehoczky/Sha/Ding) testing-set formulation:
/// the scheduling points for a subtask with deadline `deadline` under the
/// given higher-priority interferers -- all multiples m*T_j in (0, deadline]
/// plus `deadline` itself, deduplicated and sorted.  Exposed for the
/// scheduling-point MaxSplit and for cross-checking RTA in tests.
[[nodiscard]] std::vector<Time> scheduling_points(Time deadline,
                                                  std::span<const Subtask> interferers);

/// As above into a caller-supplied scratch buffer: `points` is cleared,
/// reserved from the interferer periods (sum of floor((deadline-1)/T_j)
/// arrival counts, capped), filled, sorted and deduplicated -- no fresh
/// allocation once the scratch capacity has grown to the workload.  The
/// testing-set builder and MaxSplit's search loops call this overload.
void scheduling_points(Time deadline, std::span<const Subtask> interferers,
                       std::vector<Time>& points);

/// Total higher-priority demand sum_j ceil(t / T_j) * C_j at time t, or
/// nullopt if the sum overflows int64 (distinct from any genuine demand,
/// which is always representable when returned -- callers must not
/// conflate "overflowed" with a real kTimeInfinity-sized value).
[[nodiscard]] std::optional<Time> interference_at(
    Time t, std::span<const Subtask> interferers);

}  // namespace rmts
