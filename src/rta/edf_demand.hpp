// Exact EDF schedulability on one processor via processor-demand analysis.
//
// Substrate for the semi-partitioned EDF baseline (the "65%" EDF-based
// related work the paper cites in Section I): a set of sporadic subtasks
// with constrained deadlines (D <= T) is EDF-schedulable iff the demand
// bound function h(t) = sum_i max(0, floor((t - D_i)/T_i) + 1) * C_i stays
// <= t for all t in (0, L].  We implement the exact test with the QPA
// iteration (Zhang & Burns, 2009), which walks backwards from the busy-
// period bound touching only a handful of points.
#pragma once

#include <span>

#include "common/time.hpp"
#include "tasks/subtask.hpp"

namespace rmts {

/// Demand bound function of one sporadic task (C, T, D) at time t:
/// the maximum execution demand of jobs with both release and deadline
/// inside any window of length t.
[[nodiscard]] Time dbf(Time wcet, Time period, Time deadline, Time t) noexcept;

/// Total demand h(t) of a set of subtasks (wcet/period/deadline are read).
[[nodiscard]] Time total_demand(std::span<const Subtask> subtasks, Time t);

/// Exact EDF schedulability of `subtasks` on one processor (preemptive
/// EDF, constrained deadlines D <= T required -- checked).  Subtask
/// priority fields are ignored: EDF dispatches by absolute deadline.
[[nodiscard]] bool edf_schedulable(std::span<const Subtask> subtasks);

}  // namespace rmts
