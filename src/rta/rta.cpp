#include "rta/rta.hpp"

#include <algorithm>
#include <initializer_list>
#include <optional>

#include "common/checked_math.hpp"
#include "rta/rta_kernel.hpp"

namespace rmts {

namespace {

/// One fixed-point step wcet + sum_j ceil(r / T_j) * C_j, optionally over
/// one extra interferer (compile-time selected so the common no-extra
/// calls carry no dead branches).  nullopt on int64 overflow: the demand
/// then exceeds every representable deadline, so the caller reports
/// "unschedulable".  This is the hottest loop in the repo; the overflow
/// checks compile to a flags test per term, not a second division.
template <bool kHasExtra>
std::optional<Time> total_demand(Time wcet, Time r,
                                 std::span<const Subtask> interferers,
                                 const Subtask* extra) {
  Time next = wcet;
  for (const Subtask& j : interferers) {
    Time term = 0;
    if (__builtin_mul_overflow(ceil_div(r, j.period), j.wcet, &term) ||
        __builtin_add_overflow(next, term, &next)) {
      return std::nullopt;
    }
  }
  if constexpr (kHasExtra) {
    Time term = 0;
    if (__builtin_mul_overflow(ceil_div(r, extra->period), extra->wcet, &term) ||
        __builtin_add_overflow(next, term, &next)) {
      return std::nullopt;
    }
  }
  return next;
}

template <bool kHasExtra>
RtaOutcome response_time_impl(Time wcet, Time deadline,
                              std::span<const Subtask> interferers,
                              const Subtask* extra, Time seed) {
  if (wcet > deadline) return RtaOutcome{false, wcet, 0};

  // Seed with the one-job demand of everyone (a valid lower bound on the
  // response time that typically saves several iterations), raised to the
  // caller's seed when that is larger.
  Time r = wcet;
  for (const Subtask& j : interferers) {
    if (__builtin_add_overflow(r, j.wcet, &r)) {
      return RtaOutcome{false, kTimeInfinity, 0};
    }
  }
  if constexpr (kHasExtra) {
    if (__builtin_add_overflow(r, extra->wcet, &r)) {
      return RtaOutcome{false, kTimeInfinity, 0};
    }
  }
  const Time one_job_sum = r - wcet;  // sum of interferer wcets
  r = std::max(r, seed);

  // Fast path: demand is evaluated only at iterates r <= deadline, where
  // each term ceil(r / T_j) * C_j <= deadline * C_j, so the whole sum is
  // bounded by wcet + deadline * sum_j C_j.  With both factors below 2^31
  // that bound is under 2^31 + 2^62: no overflow is reachable and the
  // classic unchecked loop (bit-identical arithmetic) is safe.  Realistic
  // workloads (periods ~1e6) always take this path; only overflow-scale
  // parameters pay for the checked loop below.
  constexpr Time kNoOverflowBound = Time{1} << 31;
  if (deadline < kNoOverflowBound && one_job_sum < kNoOverflowBound) [[likely]] {
    int iterations = 0;
    while (true) {
      ++iterations;
      if (r > deadline) return RtaOutcome{false, r, iterations};
      Time next = wcet;
      for (const Subtask& j : interferers) {
        next += ceil_div(r, j.period) * j.wcet;
      }
      if constexpr (kHasExtra) {
        next += ceil_div(r, extra->period) * extra->wcet;
      }
      if (next == r) return RtaOutcome{true, r, iterations};
      r = next;  // iterates are strictly increasing until the fixed point
    }
  }

  int iterations = 0;
  while (true) {
    ++iterations;
    if (r > deadline) return RtaOutcome{false, r, iterations};
    const auto next = total_demand<kHasExtra>(wcet, r, interferers, extra);
    if (!next) return RtaOutcome{false, kTimeInfinity, iterations};
    if (*next == r) return RtaOutcome{true, r, iterations};
    r = *next;  // iterates are strictly increasing until the fixed point
  }
}

}  // namespace

RtaOutcome response_time(Time wcet, Time deadline,
                         std::span<const Subtask> interferers) {
  return response_time_impl<false>(wcet, deadline, interferers, nullptr, 0);
}

RtaOutcome response_time_seeded(Time wcet, Time deadline,
                                std::span<const Subtask> interferers,
                                Time seed) {
  return response_time_impl<false>(wcet, deadline, interferers, nullptr, seed);
}

RtaOutcome response_time_with(Time wcet, Time deadline,
                              std::span<const Subtask> interferers,
                              const Subtask& extra, Time seed) {
  return response_time_impl<true>(wcet, deadline, interferers, &extra, seed);
}

ProcessorRta analyze_processor(std::span<const Subtask> subtasks) {
  // The SoA kernel's per-prefix evaluation is bit-identical to calling
  // response_time per prefix (rta_kernel.hpp); the fuzzer's `kernel` mode
  // cross-checks exactly that equivalence.
  return kernel_analyze(subtasks);
}

bool processor_schedulable(std::span<const Subtask> subtasks) {
  return analyze_processor(subtasks).schedulable;
}

bool rm_schedulable_uniprocessor(const TaskSet& tasks) {
  std::vector<Subtask> subtasks;
  subtasks.reserve(tasks.size());
  for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
    subtasks.push_back(whole_subtask(tasks[rank], rank));
  }
  return processor_schedulable(subtasks);
}

std::vector<Time> scheduling_points(Time deadline,
                                    std::span<const Subtask> interferers) {
  std::vector<Time> points;
  scheduling_points(deadline, interferers, points);
  return points;
}

void scheduling_points(Time deadline, std::span<const Subtask> interferers,
                       std::vector<Time>& points) {
  points.clear();
  // Exact point count before dedup: one per arrival multiple below the
  // deadline plus the deadline itself.  Capped so a degenerate
  // short-period/huge-deadline probe cannot demand a gigabyte of scratch
  // up front -- past the cap the vector just grows geometrically as before.
  constexpr std::size_t kReserveCap = std::size_t{1} << 20;
  std::size_t upper = 1;
  for (const Subtask& j : interferers) {
    if (j.period <= 0 || deadline <= 1) continue;
    upper += static_cast<std::size_t>(
        std::min<Time>((deadline - 1) / j.period,
                       static_cast<Time>(kReserveCap)));
    if (upper >= kReserveCap) {
      upper = kReserveCap;
      break;
    }
  }
  points.reserve(upper);
  points.push_back(deadline);
  for (const Subtask& j : interferers) {
    for (Time t = j.period; t < deadline;) {
      points.push_back(t);
      if (t > kTimeInfinity - j.period) break;  // next multiple not representable
      t += j.period;
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
}

std::optional<Time> interference_at(Time t,
                                    std::span<const Subtask> interferers) {
  Time demand = 0;
  for (const Subtask& j : interferers) {
    const auto term = checked_mul(ceil_div(t, j.period), j.wcet);
    if (!term) return std::nullopt;
    const auto sum = checked_add(demand, *term);
    if (!sum) return std::nullopt;
    demand = *sum;
  }
  return demand;
}

}  // namespace rmts
