#include "rta/rta.hpp"

#include <algorithm>

namespace rmts {

RtaOutcome response_time(Time wcet, Time deadline,
                         std::span<const Subtask> interferers) {
  if (wcet > deadline) return RtaOutcome{false, wcet, 0};

  // Seed with the one-job demand of everyone; this is a valid lower bound
  // on the response time and typically saves several iterations.
  Time r = wcet;
  for (const Subtask& j : interferers) r += j.wcet;

  int iterations = 0;
  while (true) {
    ++iterations;
    if (r > deadline) return RtaOutcome{false, r, iterations};
    Time next = wcet;
    for (const Subtask& j : interferers) {
      next += ceil_div(r, j.period) * j.wcet;
    }
    if (next == r) return RtaOutcome{true, r, iterations};
    r = next;  // iterates are strictly increasing until the fixed point
  }
}

ProcessorRta analyze_processor(std::span<const Subtask> subtasks) {
  ProcessorRta result;
  result.response.assign(subtasks.size(), 0);
  result.first_miss = subtasks.size();
  for (std::size_t i = 0; i < subtasks.size(); ++i) {
    const auto hp = subtasks.first(i);
    const RtaOutcome outcome =
        response_time(subtasks[i].wcet, subtasks[i].deadline, hp);
    if (!outcome.schedulable) {
      result.schedulable = false;
      result.first_miss = i;
      return result;
    }
    result.response[i] = outcome.response;
  }
  result.schedulable = true;
  return result;
}

bool processor_schedulable(std::span<const Subtask> subtasks) {
  return analyze_processor(subtasks).schedulable;
}

bool rm_schedulable_uniprocessor(const TaskSet& tasks) {
  std::vector<Subtask> subtasks;
  subtasks.reserve(tasks.size());
  for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
    subtasks.push_back(whole_subtask(tasks[rank], rank));
  }
  return processor_schedulable(subtasks);
}

std::vector<Time> scheduling_points(Time deadline,
                                    std::span<const Subtask> interferers) {
  std::vector<Time> points;
  points.push_back(deadline);
  for (const Subtask& j : interferers) {
    for (Time t = j.period; t < deadline; t += j.period) {
      points.push_back(t);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

Time interference_at(Time t, std::span<const Subtask> interferers) {
  Time demand = 0;
  for (const Subtask& j : interferers) {
    demand += ceil_div(t, j.period) * j.wcet;
  }
  return demand;
}

}  // namespace rmts
