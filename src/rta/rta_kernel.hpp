// Batched, vectorized RTA kernel: structure-of-arrays time-demand
// evaluation behind every admission decision (ROADMAP item 3).
//
// The scalar fixed point in rta.cpp walks an array-of-structs Subtask
// span and pays one 64-bit integer division per interferer per iterate
// (ceil_div).  This kernel keeps a SoA mirror of a processor's hosted
// subtasks -- contiguous int32 periods[], wcets[], fixed-point
// reciprocals (Granlund-Montgomery magic multipliers) and saturating
// wcet prefix sums -- and evaluates the whole time-demand sum with a
// division-free, SIMD-friendly loop:
//
//   ceil(r / T_j) = floor((r-1) / T_j) + 1            (r >= 1), so
//   demand(r) = wcet + S[prefix] + sum_j floor((r-1)/T_j) * C_j
//
// where S is the prefix sum of interferer wcets and each floor quotient
// is one widening multiply by ceil(2^63 / T_j) and a constant shift,
// exact for every dividend below 2^31 (see rta_kernel.cpp for the
// proof).  All arithmetic stays in the PR1
// no-overflow regime: the kernel only runs when deadline < 2^31 and the
// interferer one-job sum < 2^31, exactly the scalar fast-path guard, so
// every intermediate fits int64 with slack (DESIGN.md Section 9 has the
// full argument).  Outside that regime -- or when any mirrored period
// falls outside [1, 2^31) -- the kernel transparently calls the checked
// scalar path from rta.hpp.
//
// Correctness bar (fuzzer-enforced, tools/rmts_fuzz.cpp `kernel` mode):
// accept/reject verdicts and reported response times are bit-identical to
// the scalar functions for every input; only iteration counts may differ
// when a caller supplies a different (still valid) seed.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "rta/rta.hpp"
#include "tasks/subtask.hpp"

namespace rmts {

namespace rta_kernel_detail {

/// 128-bit intermediate for the fixed shift-63 reciprocal (GCC/Clang
/// builtin; __extension__ keeps -Wpedantic quiet).
__extension__ typedef unsigned __int128 u128;

/// Fixed-point reciprocal of a period d in [1, 2^31): mul = ceil(2^63 / d)
/// makes
///   (r * mul) >> 63 == r / d   exactly for all 0 <= r < 2^31
/// (proof in rta_kernel.cpp).  The fixed shift keeps the inner loop to one
/// widening multiply and a constant shift -- no per-element shift load and
/// no variable-shift micro-ops.
struct DivMagic {
  std::uint64_t mul{0};
};

/// Builds the reciprocal for `period`; requires 1 <= period < 2^31.
[[nodiscard]] DivMagic div_magic(std::int64_t period) noexcept;

/// Exact floor(r1 / period) through the precomputed reciprocal.
/// Requires 0 <= r1 < 2^31 and `magic` built from the same period.
[[nodiscard]] inline std::int64_t floor_div_exact(std::int64_t r1,
                                                  DivMagic magic) noexcept {
  // Computing the halves as two separate 64-bit expressions (plain
  // low-half multiply, and the >> 64 high-part-multiply idiom) keeps GCC
  // in 64-bit registers; a u128 temporary shifted by 63 round-trips
  // through the stack instead.
  const auto r = static_cast<std::uint64_t>(r1);
  const std::uint64_t lo = r * magic.mul;
  const auto hi = static_cast<std::uint64_t>((static_cast<u128>(r) * magic.mul) >> 64);
  return static_cast<std::int64_t>((hi << 1) | (lo >> 63));
}

/// The PR1 no-overflow bound: deadlines, periods and one-job interferer
/// sums below 2^31 make every fixed-point intermediate fit int64 with
/// slack (DESIGN.md Section 9).
inline constexpr Time kFastBound = Time{1} << 31;

/// Saturation cap for the wcet prefix sums: far above kFastBound (the
/// only regime that consumes them exactly) yet low enough that one more
/// int64 wcet cannot wrap the sum.
inline constexpr std::uint64_t kPrefixCap = std::uint64_t{1} << 62;

[[nodiscard]] inline std::uint64_t sat_add(std::uint64_t a,
                                           std::uint64_t b) noexcept {
  const std::uint64_t sum = a + b;
  return (sum < a || sum > kPrefixCap) ? kPrefixCap : sum;
}

[[nodiscard]] inline bool period_eligible(Time period) noexcept {
  return period >= 1 && period < kFastBound;
}

/// Memoized candidate reciprocal.  The hardware divide in div_magic is
/// the slowest single instruction on the probe path, and candidate
/// periods recur heavily: first-fit partitioners probe the SAME
/// candidate against every processor in a row, and admission sweeps
/// cycle a bounded candidate set.  A tiny thread-local direct-mapped
/// table turns the recurring case into one load+compare; misses
/// recompute exactly, so the result is always div_magic(period) bit for
/// bit.
[[nodiscard]] inline DivMagic memoized_magic(Time period) noexcept {
  struct Entry {
    Time period{0};  // periods are >= 1, so 0 never false-hits
    std::uint64_t mul{0};
  };
  thread_local Entry memo[1024];
  Entry& e = memo[(static_cast<std::uint64_t>(period) *
                   std::uint64_t{0x9E3779B97F4A7C15}) >>
                  54];
  if (e.period != period) {
    e.period = period;
    e.mul = div_magic(period).mul;
  }
  return DivMagic{e.mul};
}

/// Position of the first hosted subtask with a lower priority than
/// `candidate` -- the same result as lower_bound on the priority-sorted
/// span.  Hosted sets are small (tens), so for the common sizes a
/// branchless linear count beats the binary search, whose
/// data-dependent branches mispredict on every probe stream; past the
/// cutoff the log-time search wins again.
[[nodiscard]] inline std::size_t insert_position(
    std::span<const Subtask> subtasks, const Subtask& candidate) noexcept {
  if (subtasks.size() <= 32) {
    std::size_t pos = 0;
    for (const Subtask& s : subtasks) {
      pos += static_cast<std::size_t>(s.priority < candidate.priority);
    }
    return pos;
  }
  const auto it = std::lower_bound(
      subtasks.begin(), subtasks.end(), candidate,
      [](const Subtask& a, const Subtask& b) { return a.priority < b.priority; });
  return static_cast<std::size_t>(it - subtasks.begin());
}

}  // namespace rta_kernel_detail

/// Structure-of-arrays mirror of a priority-ordered hosted subtask list.
/// Owned by ProcessorState's admission cache (maintained incrementally on
/// add(), dropped on copy like the rest of the derived data) or built as
/// a scratch for one-shot spans (analyze_processor, robustness probes).
class RtaSoa {
 public:
  /// Rebuilds the mirror from scratch.
  void assign(std::span<const Subtask> subtasks);

  /// Mirrors an insertion at `pos` (the priority position add() used).
  /// O(n - pos) like the vector insert it shadows.
  void insert(std::size_t pos, const Subtask& subtask);

  /// Mirrors a removal at `pos`.  `remaining` is the hosted set AFTER the
  /// erase (what subtasks() returns once the caller has removed the
  /// entry).  Unlike insert(), the derived suffix state cannot be patched
  /// from the stored arrays alone -- a saturated prefix sum does not
  /// remember what it absorbed, the clamped 32-bit wcets are lossy, and
  /// the removed entry may have been the one pinning fast_prefix_ or
  /// hosted_fast_ -- so the suffix sums and both guards are recomputed
  /// from the true subtask values.  O(n), the same as the vector erases.
  void remove(std::size_t pos, std::span<const Subtask> remaining);

  void clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return periods_.size(); }

  /// Longest prefix whose periods all lie in [1, 2^31): the kernel's
  /// division-free loop is exact only over such a prefix.  Evaluations
  /// whose interferer prefix extends past this fall back to the scalar
  /// path (wcets need no gate -- an oversized wcet already trips the
  /// one-job-sum guard via the saturating prefix sums).
  [[nodiscard]] std::size_t fast_prefix() const noexcept { return fast_prefix_; }

  /// True iff every mirrored subtask has wcet >= 1 and deadline < 2^31 --
  /// the per-subtask half of the no-overflow guard.  Together with
  /// fast_prefix() == size() and one check of the LARGEST interferer sum
  /// (prefix sums are monotone), this lets kernel_fits validate the whole
  /// seeded scan once per probe instead of re-running the guard per
  /// hosted subtask.
  [[nodiscard]] bool hosted_fast() const noexcept { return hosted_fast_; }

  /// Sum of interferer wcets over the first `prefix` entries, saturated
  /// at 2^63-ish; exact whenever it is below the no-overflow bound, which
  /// is the only regime where the kernel consumes it.
  [[nodiscard]] std::uint64_t wcet_prefix_sum(std::size_t prefix) const noexcept {
    return prefix_wcet_[prefix];
  }

  /// True iff this mirror matches `subtasks` entry for entry (periods,
  /// wcets, reciprocals, prefix sums, fast_prefix).  Consistency oracle
  /// for the property tests and the differential fuzzer.
  [[nodiscard]] bool mirrors(std::span<const Subtask> subtasks) const;

  [[nodiscard]] const std::int32_t* periods32() const noexcept {
    return periods_.data();
  }
  [[nodiscard]] const std::int32_t* wcets32() const noexcept {
    return wcets_.data();
  }
  /// Fixed-point reciprocal multipliers, parallel to periods32().
  [[nodiscard]] const std::uint64_t* div_mul() const noexcept {
    return div_mul_.data();
  }

 private:
  std::vector<std::int32_t> periods_;
  std::vector<std::int32_t> wcets_;
  std::vector<std::uint64_t> div_mul_;  // magic multiplier per period
  // size() + 1 entries (invariant holds even when empty), saturating.
  std::vector<std::uint64_t> prefix_wcet_{0};
  std::size_t fast_prefix_{0};
  bool hosted_fast_{true};  // all wcets >= 1 and deadlines < 2^31
};

namespace rta_kernel_detail {

/// Division-free total interference sum_{j < count} floor(r1 / T_j) * C_j
/// over the SoA arrays.  Requires 0 <= r1 < 2^31 and every period in
/// [1, 2^31): each magic quotient is then exact (see div_magic) and the
/// accumulated sum below r1 * sum_j C_j < 2^62, comfortably in int64.
/// The loop is branch-free and auto-vectorizable (no division, no early
/// exit); terms with T_j > r1 contribute 0 without special-casing.
[[nodiscard]] inline std::int64_t head_interference(const RtaSoa& soa,
                                                    std::size_t count,
                                                    std::int64_t r1) noexcept {
  const std::int32_t* const wcets = soa.wcets32();
  const std::uint64_t* const mul = soa.div_mul();
  std::int64_t acc = 0;
  for (std::size_t j = 0; j < count; ++j) {
    acc += floor_div_exact(r1, DivMagic{mul[j]}) *
           static_cast<std::int64_t>(wcets[j]);
  }
  return acc;
}

}  // namespace rta_kernel_detail

/// Verdict of one batched admission probe.
struct KernelFit {
  bool fits{false};
  /// The candidate's own exact response time when fits; otherwise the
  /// first candidate iterate past its deadline if the candidate itself
  /// missed, or 0 when a hosted subtask was the reason for rejection.
  Time response{0};
  /// Fixed-point iterations spent on this probe (for trace counters).
  std::uint64_t iterations{0};
  /// Seeded re-analyses of hosted subtasks performed (trace counters).
  std::uint64_t seeded_calls{0};
};

/// Kernel twin of response_time_seeded: exact response of a job (wcet,
/// deadline) under the first `prefix` subtasks of `subtasks`, whose SoA
/// mirror is `soa`.  `seed` must be a valid lower bound on the response
/// (0 is always valid).  Bit-identical outcome to the scalar function.
[[nodiscard]] RtaOutcome kernel_response_time(std::span<const Subtask> subtasks,
                                              const RtaSoa& soa,
                                              std::size_t prefix, Time wcet,
                                              Time deadline, Time seed);

/// Kernel twin of response_time_with: one extra interferer on top of the
/// mirrored prefix (the admission scan's candidate).
[[nodiscard]] RtaOutcome kernel_response_time_with(
    std::span<const Subtask> subtasks, const RtaSoa& soa, std::size_t prefix,
    Time wcet, Time deadline, const Subtask& extra, Time seed);

/// One admission probe with the documented ProcessorState::fits semantics:
/// the candidate under its higher-priority prefix, then every
/// lower-priority hosted subtask with the candidate as an extra
/// interferer, seeded from `seeds` (the memoized candidate-free responses;
/// stale lower bounds are fine, kTimeInfinity marks a known miss and
/// rejects immediately).  `seeds` is parallel to `subtasks`.
///
/// With `seeds_exact`, every non-infinite seed is promised to be the EXACT
/// candidate-free fixed point of its subtask (ProcessorState warms its
/// cache to establish this), which unlocks the O(1) first-iterate
/// identity: the first candidate-aware iterate from an exact seed s is
/// s + ceil(s/T_c)*C_c, no time-demand pass needed.  Verdicts and
/// reported responses are identical either way; only iteration counts
/// shrink.
/// Out-of-line generic path of kernel_fits: the candidate under its
/// prefix via the checked-or-kernel twin, then the seeded scan with
/// per-call guards.  `pos`, `candidate_magic` and `boost` are the values
/// kernel_fits already computed.  Callers use kernel_fits.
[[nodiscard]] KernelFit kernel_fits_generic(
    std::span<const Subtask> subtasks, const RtaSoa& soa,
    std::span<const Time> seeds, const Subtask& candidate, std::size_t pos,
    rta_kernel_detail::DivMagic candidate_magic, bool boost);

[[nodiscard]] inline KernelFit kernel_fits(std::span<const Subtask> subtasks,
                                           const RtaSoa& soa,
                                           std::span<const Time> seeds,
                                           const Subtask& candidate,
                                           bool seeds_exact = false) {
  namespace detail = rta_kernel_detail;
  assert(seeds.size() == subtasks.size());
  assert(soa.size() == subtasks.size());
  const std::size_t pos = detail::insert_position(subtasks, candidate);
  const std::size_t n = subtasks.size();

  // The candidate's reciprocal is shared by the O(1) seed boost and every
  // seeded analysis (whose fast guard re-checks eligibility before
  // consuming it, so the ineligible placeholder is never read).
  const auto candidate_magic = detail::period_eligible(candidate.period)
                                   ? detail::memoized_magic(candidate.period)
                                   : detail::DivMagic{};
  const bool boost = seeds_exact && detail::period_eligible(candidate.period) &&
                     candidate.wcet >= 0 && candidate.wcet < detail::kFastBound;

  // Fused fast probe: when the WHOLE hosted set is in the no-overflow
  // regime (eligible periods everywhere, every wcet/deadline in range,
  // and even the largest interferer sum plus the candidate below the
  // bound -- prefix sums are monotone, so one check covers every prefix)
  // and the candidate itself is in range, the per-call guard is provably
  // true for the candidate AND every lower-priority subtask.  Run the
  // whole probe with the guard hoisted out of the loops:
  //
  //  * the candidate's own analysis starts at its one-job base (the
  //    seed-0 scalar path iterates identically);
  //  * each seeded re-analysis starts from the O(1) first-iterate
  //    identity: an exact candidate-free fixed point s satisfies
  //    s = wcet_i + I_i(s), so the first candidate-aware iterate is
  //    s + ceil(s/T_c)*C_c -- no time-demand pass needed.  Exact seeds
  //    guarantee seed >= wcet_i >= 1 and seed <= deadline_i < 2^31
  //    without checking, and the boosted iterate dominates the one-job
  //    base (each ceil term >= its wcet), making the generic path's
  //    max(base, seed) redundant.
  //
  // Iterate values, verdicts and iteration counts are identical to the
  // generic path by construction.  Defined inline so ProcessorState's
  // probe loop compiles the whole fast path into fits()/fits_batch()
  // with seeds_exact constant-folded; the generic path stays out of
  // line in rta_kernel.cpp.
  if (boost && candidate.wcet >= 1 && candidate.deadline < detail::kFastBound &&
      soa.fast_prefix() == n && soa.hosted_fast() &&
      detail::sat_add(soa.wcet_prefix_sum(n),
                      static_cast<std::uint64_t>(candidate.wcet)) <
          static_cast<std::uint64_t>(detail::kFastBound)) {
    KernelFit verdict;
    const Time cw = candidate.wcet;
    Time own_response;
    {
      if (cw > candidate.deadline) {
        verdict.response = cw;
        return verdict;
      }
      const Time base = cw + static_cast<Time>(soa.wcet_prefix_sum(pos));
      Time r = base;
      bool ok = false;
      std::uint64_t iterations = 0;
      while (true) {
        ++iterations;
        if (r > candidate.deadline) break;
        const Time next = base + detail::head_interference(soa, pos, r - 1);
        if (next == r) {
          ok = true;
          break;
        }
        r = next;
      }
      verdict.iterations += iterations;
      if (!ok) {
        verdict.response = r;
        return verdict;
      }
      own_response = r;
    }
    for (std::size_t i = pos; i < n; ++i) {
      const Time seed = seeds[i];
      if (seed == kTimeInfinity) return verdict;  // miss stays a miss
      ++verdict.seeded_calls;
      Time r = seed +
               (detail::floor_div_exact(seed - 1, candidate_magic) + 1) * cw;
      const Time deadline = subtasks[i].deadline;
      const Time base =
          subtasks[i].wcet + static_cast<Time>(soa.wcet_prefix_sum(i)) + cw;
      bool ok = false;
      std::uint64_t iterations = 0;
      while (true) {
        ++iterations;
        if (r > deadline) break;
        const Time next =
            base + detail::head_interference(soa, i, r - 1) +
            detail::floor_div_exact(r - 1, candidate_magic) * cw;
        if (next == r) {
          ok = true;
          break;
        }
        r = next;
      }
      verdict.iterations += iterations;
      if (!ok) return verdict;
    }
    verdict.fits = true;
    verdict.response = own_response;
    return verdict;
  }

  return kernel_fits_generic(subtasks, soa, seeds, candidate, pos,
                             candidate_magic, boost);
}

/// Batched admission: one verdict per candidate against the same hosted
/// set, equivalent to calling kernel_fits per candidate but amortizing
/// the SoA setup and dispatch.  `verdicts.size()` must equal
/// `candidates.size()`.
void rta_batch_fits(std::span<const Subtask> subtasks, const RtaSoa& soa,
                    std::span<const Time> seeds,
                    std::span<const Subtask> candidates,
                    std::span<KernelFit> verdicts, bool seeds_exact = false);

/// Kernel twin of analyze_processor: builds a scratch SoA (thread-local,
/// allocation-free after warm-up) and evaluates every prefix through the
/// kernel.  Bit-identical ProcessorRta to the scalar loop.
[[nodiscard]] ProcessorRta kernel_analyze(std::span<const Subtask> subtasks);

/// Kernel twin of the robustness jitter fixed point
///   R = C + sum_j ceil((R + J) / T_j) * C_j  over the mirrored `prefix`,
/// nullopt once an iterate exceeds `bound` (iterates are non-decreasing).
/// Matches analysis/robustness.cpp's scalar loop value-for-value,
/// including its saturating overflow behavior.
[[nodiscard]] std::optional<Time> kernel_jitter_response(
    std::span<const Subtask> subtasks, const RtaSoa& soa, std::size_t prefix,
    Time wcet, Time bound, Time jitter);

}  // namespace rmts
