#include "rta/edf_demand.hpp"

#include <algorithm>
#include <vector>

#include "common/checked_math.hpp"
#include "common/error.hpp"

namespace rmts {

namespace {

/// Utilization comparisons: exact rationals evaluated in long double keep
/// the error far below the 1e-9 slack (periods are <= ~2^40 ticks).
constexpr long double kEps = 1e-9L;

long double utilization_sum(std::span<const Subtask> subtasks) {
  long double sum = 0.0L;
  for (const Subtask& s : subtasks) {
    sum += static_cast<long double>(s.wcet) / static_cast<long double>(s.period);
  }
  return sum;
}

/// Largest absolute deadline point D_i + k*T_i strictly below `t`, or 0 if
/// none exists.
Time largest_deadline_before(std::span<const Subtask> subtasks, Time t) {
  Time best = 0;
  for (const Subtask& s : subtasks) {
    if (s.deadline >= t) continue;
    const Time k = (t - s.deadline - 1) / s.period;
    best = std::max(best, s.deadline + k * s.period);
  }
  return best;
}

}  // namespace

Time dbf(Time wcet, Time period, Time deadline, Time t) noexcept {
  if (t < deadline) return 0;
  return ((t - deadline) / period + 1) * wcet;
}

Time total_demand(std::span<const Subtask> subtasks, Time t) {
  Time demand = 0;
  for (const Subtask& s : subtasks) {
    demand += dbf(s.wcet, s.period, s.deadline, t);
  }
  return demand;
}

bool edf_schedulable(std::span<const Subtask> subtasks) {
  if (subtasks.empty()) return true;
  Time min_deadline = kTimeInfinity;
  bool all_implicit = true;
  for (const Subtask& s : subtasks) {
    if (s.deadline > s.period) {
      throw InvalidTaskError("edf_schedulable: arbitrary deadlines unsupported");
    }
    if (s.deadline < s.period) all_implicit = false;
    min_deadline = std::min(min_deadline, s.deadline);
  }

  const long double utilization = utilization_sum(subtasks);
  if (utilization > 1.0L + kEps) return false;
  // Implicit deadlines: EDF is optimal, U <= 1 is exact.
  if (all_implicit) return true;
  // Constrained deadlines at (numerically) full utilization: the QPA
  // horizon bound diverges, but the demand function satisfies
  // h(t + H) <= h(t) + H for U <= 1, so checking every deadline point in
  // one hyperperiod is exact.  When the hyperperiod is unaffordable,
  // answer conservatively ("no") -- partitioners keep a utilization
  // margin precisely to stay off this edge.
  if (utilization > 1.0L - kEps) {
    std::vector<Time> periods;
    periods.reserve(subtasks.size());
    for (const Subtask& s : subtasks) periods.push_back(s.period);
    const auto h = hyperperiod(periods);
    constexpr Time kHyperperiodCap = 50'000'000;
    if (!h || *h > kHyperperiodCap) return false;
    for (const Subtask& s : subtasks) {
      for (Time d = s.deadline; d <= *h; d += s.period) {
        if (total_demand(subtasks, d) > d) return false;
      }
    }
    return true;
  }

  // Busy-period style bound L_a (Baruah/George): beyond it h(t) <= t holds
  // for sure.
  long double numerator = 0.0L;
  Time max_deadline = 0;
  for (const Subtask& s : subtasks) {
    numerator += static_cast<long double>(s.period - s.deadline) *
                 (static_cast<long double>(s.wcet) / static_cast<long double>(s.period));
    max_deadline = std::max(max_deadline, s.deadline);
  }
  const long double la = numerator / (1.0L - utilization);
  const Time horizon =
      std::max(max_deadline, static_cast<Time>(la) + 1);

  // QPA (Zhang & Burns): walk t backwards from the last deadline below the
  // horizon; each step jumps to h(t) (when h(t) < t) or to the previous
  // deadline point (when h(t) == t).
  Time t = largest_deadline_before(subtasks, horizon + 1);
  if (t == 0) return true;  // no deadline inside the horizon
  while (true) {
    const Time demand = total_demand(subtasks, t);
    if (demand > t) return false;
    if (demand <= min_deadline) return true;
    t = demand < t ? demand : largest_deadline_before(subtasks, t);
  }
}

}  // namespace rmts
