#include "rta/rta_kernel.hpp"

#include <algorithm>
#include <cassert>

#include "common/checked_math.hpp"

namespace rmts {

namespace {

// The fixed-point building blocks (kFastBound, sat_add, period_eligible,
// insert_position, memoized_magic, head_interference) live inline in
// rta_kernel.hpp so the fused fast path of kernel_fits can compile
// straight into ProcessorState's probe loop.
using rta_kernel_detail::head_interference;
using rta_kernel_detail::insert_position;
using rta_kernel_detail::kFastBound;
using rta_kernel_detail::memoized_magic;
using rta_kernel_detail::period_eligible;
using rta_kernel_detail::sat_add;

/// Per-element SoA encoding: periods clamp into [1, 2^31) with a validity
/// note carried by fast_prefix(); wcets clamp at 2^31 - 1 (an oversized
/// wcet saturates the prefix sums, which already forces the scalar path
/// for any prefix containing it, so the clamped value is never consumed).
std::int32_t clamp32(Time value) noexcept {
  return static_cast<std::int32_t>(
      std::clamp<Time>(value, 1, kFastBound - 1));
}

/// The scalar saturating interference of analysis/robustness.cpp's
/// original jitter loop (sum_j ceil(t / T_j) * C_j, kTimeInfinity on
/// int64 overflow), kept here as the jitter kernel's overflow-scale
/// fallback so the fast path has a value-identical scalar twin.
Time sat_interference(Time t, std::span<const Subtask> interferers) noexcept {
  Time demand = 0;
  for (const Subtask& j : interferers) {
    const auto term = checked_mul(ceil_div(t, j.period), j.wcet);
    if (!term) return kTimeInfinity;
    const auto sum = checked_add(demand, *term);
    if (!sum) return kTimeInfinity;
    demand = *sum;
  }
  return demand;
}

Time add_sat_time(Time a, Time b) noexcept {
  const auto sum = checked_add(a, b);
  return sum ? *sum : kTimeInfinity;
}

/// Shared fixed-point core.  `prefix` selects the interferer set
/// subtasks[0, prefix); `extra` (when kHasExtra) rides on top exactly like
/// response_time_with's candidate.  Falls back to the checked scalar
/// functions whenever the probe leaves the proven no-overflow regime, so
/// outcomes are bit-identical to rta.cpp by construction everywhere.
template <bool kHasExtra>
RtaOutcome kernel_rt(std::span<const Subtask> subtasks, const RtaSoa& soa,
                     std::size_t prefix, Time wcet, Time deadline,
                     const Subtask* extra,
                     rta_kernel_detail::DivMagic extra_magic, Time seed) {
  assert(prefix <= subtasks.size());
  assert(soa.size() == subtasks.size());
  if (wcet > deadline) return RtaOutcome{false, wcet, 0};

  const std::uint64_t interferer_sum =
      kHasExtra ? sat_add(soa.wcet_prefix_sum(prefix),
                          static_cast<std::uint64_t>(std::max<Time>(0, extra->wcet)))
                : soa.wcet_prefix_sum(prefix);
  const bool fast =
      prefix <= soa.fast_prefix() && wcet >= 1 &&
      deadline < kFastBound &&
      interferer_sum < static_cast<std::uint64_t>(kFastBound) &&
      (!kHasExtra || (period_eligible(extra->period) && extra->wcet >= 0 &&
                      extra->wcet < kFastBound));
  if (!fast) {
    const auto hp = subtasks.first(prefix);
    if constexpr (kHasExtra) {
      return response_time_with(wcet, deadline, hp, *extra, seed);
    } else {
      return response_time_seeded(wcet, deadline, hp, seed);
    }
  }

  // One-job demand of everyone (identical to the scalar seeding loop,
  // which cannot overflow in this regime), raised to the caller's seed.
  const Time base = wcet + static_cast<Time>(interferer_sum);
  Time r = std::max(base, seed);

  int iterations = 0;
  while (true) {
    ++iterations;
    if (r > deadline) return RtaOutcome{false, r, iterations};
    // demand(r) = wcet + sum_j ceil(r/T_j)*C_j
    //           = base + sum_j floor((r-1)/T_j)*C_j     (r >= 1)
    Time next = base + head_interference(soa, prefix, r - 1);
    if constexpr (kHasExtra) {
      next += rta_kernel_detail::floor_div_exact(r - 1, extra_magic) *
              extra->wcet;
    }
    if (next == r) return RtaOutcome{true, r, iterations};
    r = next;  // iterates are strictly increasing until the fixed point
  }
}

}  // namespace

namespace rta_kernel_detail {

DivMagic div_magic(std::int64_t period) noexcept {
  // Granlund-Montgomery round-up magic, specialized to dividends < 2^31
  // with a fixed shift of 63.  Let d = period and mul = ceil(2^63 / d),
  // i.e. mul * d = 2^63 + e with 0 <= e < d.  For any 0 <= r < 2^31:
  //   (r * mul) / 2^63 = (r + r*e/2^63) / d, and
  //   r*e/2^63 < 2^31 * 2^31 / 2^63 = 1/2 < 1,
  // so the numerator is r plus a fraction below 1 and flooring the whole
  // expression yields exactly floor(r / d) (the next multiple of d is at
  // least r + 1 away).  Width: mul <= 2^63 (d = 1), so the widening
  // product in floor_div_exact is at most 2^94 and the 128-bit
  // intermediate never wraps; the fixed shift costs no per-element shift
  // load and no variable-shift micro-ops in the inner loop.
  assert(period >= 1 && period < (std::int64_t{1} << 31));
  const auto d = static_cast<std::uint64_t>(period);
  const std::uint64_t mul = ((std::uint64_t{1} << 63) + d - 1) / d;
  return DivMagic{mul};
}

}  // namespace rta_kernel_detail

void RtaSoa::clear() noexcept {
  periods_.clear();
  wcets_.clear();
  div_mul_.clear();
  prefix_wcet_.assign(1, 0);  // prefix sums keep their size()+1 invariant
  fast_prefix_ = 0;
  hosted_fast_ = true;
}

void RtaSoa::assign(std::span<const Subtask> subtasks) {
  const std::size_t n = subtasks.size();
  periods_.resize(n);
  wcets_.resize(n);
  div_mul_.resize(n);
  prefix_wcet_.resize(n + 1);
  prefix_wcet_[0] = 0;
  fast_prefix_ = n;
  hosted_fast_ = true;
  for (std::size_t j = 0; j < n; ++j) {
    const Subtask& s = subtasks[j];
    periods_[j] = clamp32(s.period);
    wcets_[j] = clamp32(s.wcet);
    const bool eligible = period_eligible(s.period);
    const auto magic = eligible ? rta_kernel_detail::div_magic(s.period)
                                : rta_kernel_detail::DivMagic{};
    div_mul_[j] = magic.mul;
    if (!eligible && j < fast_prefix_) fast_prefix_ = j;
    hosted_fast_ = hosted_fast_ && s.wcet >= 1 && s.deadline < kFastBound;
    prefix_wcet_[j + 1] = sat_add(
        prefix_wcet_[j], static_cast<std::uint64_t>(std::max<Time>(0, s.wcet)));
  }
}

void RtaSoa::insert(std::size_t pos, const Subtask& subtask) {
  assert(pos <= size());
  const auto offset = static_cast<std::ptrdiff_t>(pos);
  const bool eligible = period_eligible(subtask.period);
  periods_.insert(periods_.begin() + offset, clamp32(subtask.period));
  wcets_.insert(wcets_.begin() + offset, clamp32(subtask.wcet));
  const auto magic = eligible ? rta_kernel_detail::div_magic(subtask.period)
                              : rta_kernel_detail::DivMagic{};
  div_mul_.insert(div_mul_.begin() + offset, magic.mul);
  // Every prefix that now contains the new element grows by its wcet:
  // new[j] = sat(old[j-1] + w) for j > pos, and sat(sat(x) + w) equals
  // sat(x + w), so the stored (possibly saturated) sums update in place
  // without ever needing the true 64-bit wcets back.
  const auto wcet64 =
      static_cast<std::uint64_t>(std::max<Time>(0, subtask.wcet));
  const std::uint64_t at_pos = prefix_wcet_[pos];
  prefix_wcet_.insert(prefix_wcet_.begin() + offset + 1, at_pos);
  for (std::size_t j = pos + 1; j < prefix_wcet_.size(); ++j) {
    prefix_wcet_[j] = sat_add(prefix_wcet_[j], wcet64);
  }
  if (eligible) {
    if (pos <= fast_prefix_) ++fast_prefix_;
  } else {
    fast_prefix_ = std::min(fast_prefix_, pos);
  }
  hosted_fast_ =
      hosted_fast_ && subtask.wcet >= 1 && subtask.deadline < kFastBound;
}

void RtaSoa::remove(std::size_t pos, std::span<const Subtask> remaining) {
  assert(pos < size());
  assert(remaining.size() + 1 == size());
  const auto offset = static_cast<std::ptrdiff_t>(pos);
  periods_.erase(periods_.begin() + offset);
  wcets_.erase(wcets_.begin() + offset);
  div_mul_.erase(div_mul_.begin() + offset);
  // Prefixes [0, pos] never contained the removed entry and stay exact;
  // everything after is recomputed from the true 64-bit wcets (a
  // saturated sum cannot be decremented in place, and re-deriving from
  // the clamped wcets32 would diverge from assign()).
  prefix_wcet_.pop_back();
  for (std::size_t j = pos; j < remaining.size(); ++j) {
    prefix_wcet_[j + 1] =
        sat_add(prefix_wcet_[j], static_cast<std::uint64_t>(
                                     std::max<Time>(0, remaining[j].wcet)));
  }
  // Both guards may have been pinned by the removed entry; rescan.  The
  // per-element magic multipliers are position-independent and survive
  // the erase untouched.
  fast_prefix_ = remaining.size();
  hosted_fast_ = true;
  for (std::size_t j = 0; j < remaining.size(); ++j) {
    if (!period_eligible(remaining[j].period) && j < fast_prefix_) {
      fast_prefix_ = j;
    }
    hosted_fast_ = hosted_fast_ && remaining[j].wcet >= 1 &&
                   remaining[j].deadline < kFastBound;
  }
}

bool RtaSoa::mirrors(std::span<const Subtask> subtasks) const {
  RtaSoa fresh;
  fresh.assign(subtasks);
  return periods_ == fresh.periods_ && wcets_ == fresh.wcets_ &&
         div_mul_ == fresh.div_mul_ &&
         prefix_wcet_ == fresh.prefix_wcet_ &&
         fast_prefix_ == fresh.fast_prefix_ &&
         hosted_fast_ == fresh.hosted_fast_;
}

RtaOutcome kernel_response_time(std::span<const Subtask> subtasks,
                                const RtaSoa& soa, std::size_t prefix,
                                Time wcet, Time deadline, Time seed) {
  return kernel_rt<false>(subtasks, soa, prefix, wcet, deadline, nullptr,
                          rta_kernel_detail::DivMagic{}, seed);
}

RtaOutcome kernel_response_time_with(std::span<const Subtask> subtasks,
                                     const RtaSoa& soa, std::size_t prefix,
                                     Time wcet, Time deadline,
                                     const Subtask& extra, Time seed) {
  // The fast-path guard in kernel_rt requires an eligible extra period
  // before it ever consumes the magic, so the placeholder is never read.
  const auto magic = period_eligible(extra.period)
                         ? memoized_magic(extra.period)
                         : rta_kernel_detail::DivMagic{};
  return kernel_rt<true>(subtasks, soa, prefix, wcet, deadline, &extra, magic,
                         seed);
}

KernelFit kernel_fits_generic(std::span<const Subtask> subtasks,
                              const RtaSoa& soa, std::span<const Time> seeds,
                              const Subtask& candidate, std::size_t pos,
                              rta_kernel_detail::DivMagic candidate_magic,
                              bool boost) {
  assert(seeds.size() == subtasks.size());
  KernelFit verdict;

  // The candidate itself, interfered by the higher-priority prefix.
  const RtaOutcome own =
      kernel_rt<false>(subtasks, soa, pos, candidate.wcet, candidate.deadline,
                       nullptr, rta_kernel_detail::DivMagic{}, 0);
  verdict.iterations += static_cast<std::uint64_t>(own.iterations);
  if (!own.schedulable) {
    verdict.response = own.response;
    return verdict;
  }

  // Every lower-priority subtask now additionally sees the candidate; its
  // memoized candidate-free response seeds the re-analysis (stale values
  // are still valid lower bounds, and the O(1) boost applies whenever the
  // seed is promised exact; kTimeInfinity is a known miss).
  for (std::size_t i = pos; i < subtasks.size(); ++i) {
    Time seed = seeds[i];
    if (seed == kTimeInfinity) return verdict;  // miss stays a miss
    if (boost && seed >= 1 && seed < kFastBound) {
      seed +=
          (rta_kernel_detail::floor_div_exact(seed - 1, candidate_magic) + 1) *
          candidate.wcet;
    }
    ++verdict.seeded_calls;
    const RtaOutcome seeded =
        kernel_rt<true>(subtasks, soa, i, subtasks[i].wcet,
                        subtasks[i].deadline, &candidate, candidate_magic, seed);
    verdict.iterations += static_cast<std::uint64_t>(seeded.iterations);
    if (!seeded.schedulable) return verdict;
  }
  verdict.fits = true;
  verdict.response = own.response;
  return verdict;
}

void rta_batch_fits(std::span<const Subtask> subtasks, const RtaSoa& soa,
                    std::span<const Time> seeds,
                    std::span<const Subtask> candidates,
                    std::span<KernelFit> verdicts, bool seeds_exact) {
  assert(verdicts.size() == candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    verdicts[c] = kernel_fits(subtasks, soa, seeds, candidates[c], seeds_exact);
  }
}

ProcessorRta kernel_analyze(std::span<const Subtask> subtasks) {
  // One scratch mirror per thread: analyze_processor is called from the
  // router's pool workers and from parallel experiment samples, each of
  // which reuses its scratch allocation-free after the first call.
  thread_local RtaSoa scratch;
  scratch.assign(subtasks);

  ProcessorRta result;
  result.response.assign(subtasks.size(), 0);
  result.first_miss = subtasks.size();
  for (std::size_t i = 0; i < subtasks.size(); ++i) {
    const RtaOutcome outcome =
        kernel_rt<false>(subtasks, scratch, i, subtasks[i].wcet,
                         subtasks[i].deadline, nullptr,
                         rta_kernel_detail::DivMagic{}, 0);
    if (!outcome.schedulable) {
      result.schedulable = false;
      result.first_miss = i;
      return result;
    }
    result.response[i] = outcome.response;
  }
  result.schedulable = true;
  return result;
}

std::optional<Time> kernel_jitter_response(std::span<const Subtask> subtasks,
                                           const RtaSoa& soa,
                                           std::size_t prefix, Time wcet,
                                           Time bound, Time jitter) {
  assert(prefix <= subtasks.size());
  assert(soa.size() == subtasks.size());
  assert(jitter >= 0);
  if (wcet > bound) return std::nullopt;

  const std::uint64_t interferer_sum = soa.wcet_prefix_sum(prefix);
  // The jitter analogue of the no-overflow argument: demand is evaluated
  // at t = r + J with r <= bound, so every term is at most
  // (bound + J) * C_j and the sum stays under 2^31 + 2^62 whenever
  // bound + J and the one-job sum are both below 2^31.
  const bool fast =
      prefix <= soa.fast_prefix() && wcet >= 1 && bound >= 0 &&
      bound < kFastBound && jitter < kFastBound &&
      bound + jitter < kFastBound &&
      interferer_sum < static_cast<std::uint64_t>(kFastBound);
  if (!fast) {
    const auto hp = subtasks.first(prefix);
    Time r = add_sat_time(wcet, sat_interference(add_sat_time(wcet, jitter), hp));
    while (r <= bound) {
      const Time next =
          add_sat_time(wcet, sat_interference(add_sat_time(r, jitter), hp));
      if (next == r) return r;
      r = next;
    }
    return std::nullopt;
  }

  const Time base = wcet + static_cast<Time>(interferer_sum);
  // Seed exactly like the scalar loop: wcet + I(wcet + J), where
  // I(t) = sum ceil(t/T_j) C_j = interferer_sum + head(t - 1) for t >= 1.
  Time r = base + head_interference(soa, prefix, wcet + jitter - 1);
  while (r <= bound) {
    const Time next = base + head_interference(soa, prefix, r + jitter - 1);
    if (next == r) return r;
    r = next;
  }
  return std::nullopt;
}

}  // namespace rmts
