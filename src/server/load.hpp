// Load driver for rmts_serve, shared by the rmts_loadgen tool and the
// bench/bench_e18 + bench_e20 benchmarks.
//
// Two modes:
//
//  * closed loop (default, offered_qps == 0): `connections` threads each
//    keep exactly one request outstanding, so offered load adapts to
//    service rate and the measurement is throughput at full utilization.
//    A closed loop can never push the server past saturation -- every
//    client waits for its reply before offering more.
//
//  * open loop (offered_qps > 0): each connection runs a sender/receiver
//    thread pair; the sender emits requests at Poisson (exponential
//    inter-arrival) times whose aggregate rate is offered_qps, pipelining
//    without waiting for replies -- arrivals are independent of service
//    rate, which is what makes driving the server past saturation (and
//    measuring overload control) possible.  Burst phases periodically
//    multiply the arrival rate to model flash crowds.
//
// Either mode can attach per-request deadlines (deadline_ms) and
// cooperate with overload sheds by retrying: the closed loop retries
// inline (Client::request_with_retry); the open loop re-enqueues shed
// requests for the sender once the server's retry_after_ms hint elapses.
//
// Requests are drawn from a pre-generated, pre-encoded pool of task sets,
// so the driver spends its cycles on the wire and the server -- not on
// JSON rendering -- and every run with the same seed replays the same
// request sequence per connection.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/histogram.hpp"

namespace rmts::server {

/// Operation classes of the generated mix, used to key per-op latency
/// reporting in LoadReport.
enum class OpClass : std::uint8_t {
  kAdmit,
  kAnalyze,
  kRobustness,
  kSimulate,
  kStats,
  kSessionAdmit,   ///< session churn mode: one task admitted by ticket
  kSessionDepart,  ///< session churn mode: one resident ticket departed
};
inline constexpr std::size_t kOpClassCount = 7;

[[nodiscard]] std::string_view op_class_name(OpClass op) noexcept;

/// Relative frequencies of the operations in the generated mix; zero
/// disables an op.  The default is the pure-admit mix E18 sweeps.
struct OpMix {
  double admit{1.0};
  double analyze{0.0};
  double robustness{0.0};
  double simulate{0.0};
  double stats{0.0};
};

struct LoadConfig {
  std::string host{"127.0.0.1"};
  std::uint16_t port{0};
  std::size_t connections{8};
  double seconds{2.0};
  OpMix mix;
  /// Workload of the generated task sets.
  std::size_t tasks{16};
  std::size_t processors{4};
  double normalized_utilization{0.6};
  std::uint64_t seed{42};
  /// Distinct task sets pre-generated and cycled through.
  std::size_t task_pool{64};
  /// Empty = server default (rmts / hc).
  std::string algorithm;
  std::string bound;
  int timeout_ms{10000};

  /// > 0 switches to the open loop: aggregate Poisson arrival rate in
  /// requests/second, split evenly across connections.
  double offered_qps{0.0};
  /// Open-loop burst phases: every burst_period_s, the arrival rate is
  /// multiplied by burst_factor for burst_duration_s.  factor <= 1 or
  /// period <= 0 disables bursting.
  double burst_factor{1.0};
  double burst_period_s{0.0};
  double burst_duration_s{0.0};
  /// > 0 attaches "deadline_ms" to every generated analysis request, so
  /// the server drops it as deadline_expired once it has queued longer.
  std::int64_t deadline_ms{0};
  /// Resend requests the server shed as overloaded (honoring the reply's
  /// retry_after_ms hint), up to max_attempts total tries each.
  bool retry{false};
  int max_attempts{4};

  /// Session churn mode (closed loop only): each connection opens its own
  /// long-lived session (session_open, m = `processors`) and drives an
  /// admit/depart mix against it, tracking the tickets of its live
  /// residents so departs always name a real one.  The `mix` field is
  /// ignored in this mode; per-op tables report kSessionAdmit /
  /// kSessionDepart instead.
  bool session{false};
  /// Fraction of churn ops that are departures (the rest admit).  0 keeps
  /// a grow-only session; 0.5 holds the resident count roughly steady.
  double churn_rate{0.0};
};

/// Aggregated outcome of one run.  "shed" counts explicit overload
/// rejections ({"ok":false,"error":"overloaded"}), "expired" counts
/// deadline_expired drops, "errors" counts every other ok:false reply;
/// transport errors abort the connection's loop and are reported
/// separately.
struct LoadReport {
  std::uint64_t requests{0};  ///< replies received (including retries)
  std::uint64_t offered{0};   ///< first-attempt sends the arrival process made
  std::uint64_t retries{0};   ///< resends after an overloaded reply
  std::uint64_t ok{0};
  std::uint64_t accepted{0};  ///< admit/robustness replies with accepted:true
  std::uint64_t shed{0};
  std::uint64_t expired{0};  ///< deadline_expired drops
  std::uint64_t errors{0};
  std::uint64_t transport_errors{0};
  double elapsed_seconds{0.0};
  /// ok replies split by operation class (goodput accounting: the bench
  /// cares whether the *admit* class kept completing during overload).
  std::array<std::uint64_t, kOpClassCount> per_op_ok{};
  /// HDR latency sketch over every reply (default precision, 2^-5).
  Histogram latency_us;
  /// Same, split by operation class (empty for ops not in the mix).
  std::array<Histogram, kOpClassCount> per_op_latency_us{};

  [[nodiscard]] double qps() const noexcept {
    return elapsed_seconds > 0.0
               ? static_cast<double>(requests) / elapsed_seconds
               : 0.0;
  }

  /// Completed-useful-work rate: ok replies per second.
  [[nodiscard]] double goodput() const noexcept {
    return elapsed_seconds > 0.0 ? static_cast<double>(ok) / elapsed_seconds
                                 : 0.0;
  }

  [[nodiscard]] std::uint64_t max_micros() const noexcept {
    return latency_us.max();
  }

  /// Interpolated quantile over all replies (p in [0, 1]); relative error
  /// at most latency_us.precision().  0 when nothing was recorded.
  [[nodiscard]] double percentile_micros(double p) const noexcept {
    return latency_us.quantile(p);
  }

  /// Accumulates another (per-connection) report; exact on histograms.
  void merge(const LoadReport& other);
};

/// Runs the configured loop (closed, or open when offered_qps > 0) until
/// `seconds` elapse; blocks until every connection thread has joined.
/// Throws InvalidConfigError for a config that cannot run (no
/// connections, empty mix, port 0) and TransportError only if NO
/// connection could be established at all.
[[nodiscard]] LoadReport run_load(const LoadConfig& config);

}  // namespace rmts::server
