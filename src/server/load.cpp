#include "server/load.hpp"

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "server/client.hpp"
#include "tasks/task_set.hpp"
#include "workload/generators.hpp"

namespace rmts::server {

namespace {

/// One op's pre-encoded request strings (one per pooled task set; stats
/// needs only one but keeps the same shape for uniform indexing).
struct OpRequests {
  OpClass cls{OpClass::kAdmit};
  double weight{0.0};
  std::vector<std::string> lines;
};

/// Replies are rendered by JsonWriter without whitespace, so exact
/// substring probes are reliable (and far cheaper than parsing).
bool contains(const std::string& reply, std::string_view needle) {
  return reply.find(needle) != std::string::npos;
}

void classify(const std::string& reply, LoadReport& report) {
  if (contains(reply, "\"ok\":true")) {
    ++report.ok;
    if (contains(reply, "\"accepted\":true")) ++report.accepted;
  } else if (contains(reply, "\"error\":\"overloaded\"")) {
    ++report.shed;
  } else {
    ++report.errors;
  }
}

}  // namespace

std::string_view op_class_name(OpClass op) noexcept {
  switch (op) {
    case OpClass::kAdmit: return "admit";
    case OpClass::kAnalyze: return "analyze";
    case OpClass::kRobustness: return "robustness";
    case OpClass::kSimulate: return "simulate";
    case OpClass::kStats: return "stats";
  }
  return "unknown";
}

void LoadReport::merge(const LoadReport& other) {
  requests += other.requests;
  ok += other.ok;
  accepted += other.accepted;
  shed += other.shed;
  errors += other.errors;
  transport_errors += other.transport_errors;
  if (other.elapsed_seconds > elapsed_seconds) {
    elapsed_seconds = other.elapsed_seconds;
  }
  latency_us.merge(other.latency_us);
  for (std::size_t op = 0; op < kOpClassCount; ++op) {
    per_op_latency_us[op].merge(other.per_op_latency_us[op]);
  }
}

LoadReport run_load(const LoadConfig& config) {
  if (config.connections == 0) {
    throw InvalidConfigError("run_load: connections must be >= 1");
  }
  if (!(config.seconds > 0.0)) {
    throw InvalidConfigError("run_load: seconds must be positive");
  }
  if (config.port == 0) {
    throw InvalidConfigError("run_load: port must be set");
  }
  if (config.task_pool == 0) {
    throw InvalidConfigError("run_load: task_pool must be >= 1");
  }

  // Pre-generate the task-set pool and render every request string once;
  // the hot loop only moves bytes.
  WorkloadConfig workload;
  workload.tasks = config.tasks;
  workload.processors = config.processors;
  workload.normalized_utilization = config.normalized_utilization;
  Rng rng(config.seed);
  std::vector<TaskSet> pool;
  pool.reserve(config.task_pool);
  for (std::size_t i = 0; i < config.task_pool; ++i) {
    Rng sample = rng.fork(i);
    pool.push_back(generate(sample, workload));
  }

  std::vector<OpRequests> ops;
  const auto add_op = [&](OpClass cls, double weight, auto&& encode) {
    if (weight <= 0.0) return;
    OpRequests op;
    op.cls = cls;
    op.weight = weight;
    op.lines.reserve(pool.size());
    for (const TaskSet& tasks : pool) op.lines.push_back(encode(tasks));
    ops.push_back(std::move(op));
  };
  add_op(OpClass::kAdmit, config.mix.admit, [&](const TaskSet& tasks) {
    return make_admit_request(config.processors, tasks, config.algorithm,
                              config.bound);
  });
  add_op(OpClass::kAnalyze, config.mix.analyze, [&](const TaskSet& tasks) {
    return make_analyze_request(config.processors, tasks, config.algorithm,
                                config.bound);
  });
  add_op(OpClass::kRobustness, config.mix.robustness,
         [&](const TaskSet& tasks) {
    return make_robustness_request(config.processors, tasks, config.algorithm,
                                   config.bound);
  });
  add_op(OpClass::kSimulate, config.mix.simulate, [&](const TaskSet& tasks) {
    return make_simulate_request(config.processors, tasks, config.algorithm,
                                 config.bound);
  });
  add_op(OpClass::kStats, config.mix.stats,
         [&](const TaskSet&) { return make_stats_request(); });
  if (ops.empty()) {
    throw InvalidConfigError("run_load: the op mix is empty");
  }
  double total_weight = 0.0;
  for (const OpRequests& op : ops) total_weight += op.weight;

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(config.seconds));

  std::mutex merge_mutex;
  LoadReport merged;
  std::size_t connects_failed = 0;
  std::string connect_error;

  std::vector<std::thread> threads;
  threads.reserve(config.connections);
  for (std::size_t c = 0; c < config.connections; ++c) {
    threads.emplace_back([&, c] {
      LoadReport local;
      try {
        Client client(config.host, config.port, config.timeout_ms);
        Rng pick = Rng(config.seed).fork(0x10000 + c);
        while (Clock::now() < deadline) {
          // Weighted op choice, then a pooled task set.
          double roll = pick.uniform() * total_weight;
          std::size_t op_index = 0;
          while (op_index + 1 < ops.size() && roll >= ops[op_index].weight) {
            roll -= ops[op_index].weight;
            ++op_index;
          }
          const OpRequests& op = ops[op_index];
          const auto line_index = static_cast<std::size_t>(pick.uniform_int(
              0, static_cast<std::int64_t>(op.lines.size()) - 1));

          const auto sent = Clock::now();
          const std::string reply = client.request(op.lines[line_index]);
          const auto micros = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - sent)
                  .count());

          ++local.requests;
          classify(reply, local);
          local.latency_us.record(micros);
          local.per_op_latency_us[static_cast<std::size_t>(op.cls)].record(
              micros);
        }
      } catch (const TransportError& e) {
        ++local.transport_errors;
        const std::scoped_lock lock(merge_mutex);
        if (local.requests == 0) {
          ++connects_failed;
          connect_error = e.what();
        }
      }
      local.elapsed_seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      const std::scoped_lock lock(merge_mutex);
      merged.merge(local);
    });
  }
  for (std::thread& t : threads) t.join();

  if (connects_failed == config.connections) {
    throw TransportError("run_load: no connection could be established (" +
                         connect_error + ")");
  }
  return merged;
}

}  // namespace rmts::server
