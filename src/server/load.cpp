#include "server/load.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "server/client.hpp"
#include "tasks/task_set.hpp"
#include "workload/generators.hpp"

namespace rmts::server {

namespace {

using Clock = std::chrono::steady_clock;

/// One op's pre-encoded request strings (one per pooled task set; stats
/// needs only one but keeps the same shape for uniform indexing).
struct OpRequests {
  OpClass cls{OpClass::kAdmit};
  double weight{0.0};
  std::vector<std::string> lines;
};

/// Replies are rendered by JsonWriter without whitespace, so exact
/// substring probes are reliable (and far cheaper than parsing).
bool contains(const std::string& reply, std::string_view needle) {
  return reply.find(needle) != std::string::npos;
}

enum class ReplyKind { kOk, kShed, kExpired, kError };

ReplyKind classify(const std::string& reply, OpClass cls, LoadReport& report) {
  if (contains(reply, "\"ok\":true")) {
    ++report.ok;
    ++report.per_op_ok[static_cast<std::size_t>(cls)];
    if (contains(reply, "\"accepted\":true")) ++report.accepted;
    return ReplyKind::kOk;
  }
  if (contains(reply, "\"error\":\"overloaded\"")) {
    ++report.shed;
    return ReplyKind::kShed;
  }
  if (contains(reply, "\"error\":\"deadline_expired\"")) {
    ++report.expired;
    return ReplyKind::kExpired;
  }
  ++report.errors;
  return ReplyKind::kError;
}

/// Weighted op pick, then a pooled request line within it.
struct Picked {
  std::size_t op_index{0};
  std::size_t line_index{0};
};

Picked pick_request(Rng& rng, const std::vector<OpRequests>& ops,
                    double total_weight) {
  Picked p;
  double roll = rng.uniform() * total_weight;
  while (p.op_index + 1 < ops.size() && roll >= ops[p.op_index].weight) {
    roll -= ops[p.op_index].weight;
    ++p.op_index;
  }
  p.line_index = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(ops[p.op_index].lines.size()) - 1));
  return p;
}

/// Exponential backoff before resend attempt `next_attempt` (2-based:
/// the first resend is attempt 2), never sooner than the server's hint,
/// jittered so a fleet of connections decorrelates.  As in
/// Client::request_with_retry, max_backoff_ms caps only the driver's own
/// exponential term -- the server's hint is honored in full.
std::int64_t retry_backoff_ms(const RetryPolicy& policy, int next_attempt,
                              int hint_ms, Rng& rng) {
  std::int64_t backoff = policy.base_backoff_ms;
  for (int k = 2; k < next_attempt && backoff < policy.max_backoff_ms; ++k) {
    backoff *= 2;
  }
  backoff = std::min<std::int64_t>(backoff, std::max(policy.max_backoff_ms, 1));
  const double factor = 1.0 + policy.jitter * (2.0 * rng.uniform() - 1.0);
  backoff = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(backoff) * factor));
  return std::max<std::int64_t>(backoff, hint_ms);
}

/// Digits immediately following `key` in a whitespace-free JSON reply;
/// 0 when the key is absent (our ids and tickets start at 1).
std::uint64_t parse_u64_field(const std::string& reply,
                              std::string_view key) noexcept {
  const std::size_t pos = reply.find(key);
  if (pos == std::string::npos) return 0;
  std::size_t i = pos + key.size();
  std::uint64_t value = 0;
  bool any = false;
  while (i < reply.size() && reply[i] >= '0' && reply[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(reply[i] - '0');
    any = true;
    ++i;
  }
  return any ? value : 0;
}

/// One connection's session-churn loop: open a private session, then an
/// admit/depart mix with live-ticket tracking until the deadline.
void run_session_churn(Client& client, const LoadConfig& config,
                       std::span<const std::pair<Time, Time>> churn_pool,
                       Clock::time_point deadline, LoadReport& report,
                       Rng& pick) {
  const RetryPolicy policy{config.max_attempts, 10, 2000, 0.3};
  const std::string open_line =
      make_session_open_request(config.processors, /*split=*/true);
  const std::string open_reply = client.request(open_line);
  const std::uint64_t session = parse_u64_field(open_reply, "\"session\":");
  if (session == 0) {
    // The registry is full (or the reply was an error): nothing to churn.
    ++report.errors;
    return;
  }

  std::vector<std::uint64_t> tickets;
  while (Clock::now() < deadline) {
    const bool depart =
        !tickets.empty() && pick.uniform() < config.churn_rate;
    std::size_t slot = 0;
    std::string line;
    OpClass cls;
    if (depart) {
      slot = static_cast<std::size_t>(pick.uniform_int(
          0, static_cast<std::int64_t>(tickets.size()) - 1));
      line = make_session_depart_request(session, tickets[slot], -1,
                                         config.deadline_ms);
      cls = OpClass::kSessionDepart;
    } else {
      const auto& [wcet, period] = churn_pool[static_cast<std::size_t>(
          pick.uniform_int(0, static_cast<std::int64_t>(churn_pool.size()) -
                                  1))];
      line = make_session_admit_request(session, wcet, period, -1,
                                        config.deadline_ms);
      cls = OpClass::kSessionAdmit;
    }

    const auto sent = Clock::now();
    std::string reply;
    if (config.retry) {
      RetryResult r = client.request_with_retry(line, policy);
      report.requests += static_cast<std::uint64_t>(
          r.attempts > 1 ? r.attempts - 1 : 0);
      report.shed +=
          static_cast<std::uint64_t>(r.attempts > 1 ? r.attempts - 1 : 0);
      report.retries += static_cast<std::uint64_t>(r.attempts - 1);
      reply = std::move(r.reply);
    } else {
      reply = client.request(line);
    }
    const auto micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              sent)
            .count());

    ++report.offered;
    ++report.requests;
    const ReplyKind kind = classify(reply, cls, report);
    report.latency_us.record(micros);
    report.per_op_latency_us[static_cast<std::size_t>(cls)].record(micros);

    // Ticket bookkeeping only moves on an ok reply: a shed/expired admit
    // placed nothing, a shed depart removed nothing.
    if (kind != ReplyKind::kOk) continue;
    if (depart) {
      // The server forgets the ticket even on departed:false (it never
      // existed there); either way it must leave the live list.
      tickets[slot] = tickets.back();
      tickets.pop_back();
    } else {
      const std::uint64_t ticket = parse_u64_field(reply, "\"ticket\":");
      if (ticket != 0) tickets.push_back(ticket);
    }
  }
  // Best-effort close so a long bench run does not leak registry slots;
  // the reply still counts toward the latency-free totals.
  try {
    (void)client.request(make_session_close_request(session));
  } catch (const TransportError&) {
    // The measurement window is over; a lost close changes nothing.
  }
}

/// Poisson arrival state for one open-loop sender: draws exponential
/// inter-arrival gaps at the instantaneous rate (base or burst).
struct ArrivalProcess {
  double base_rate;  ///< requests/second for this connection
  const LoadConfig& config;
  Clock::time_point start;
  Rng rng;

  [[nodiscard]] bool in_burst(Clock::time_point now) const {
    if (config.burst_factor <= 1.0 || config.burst_period_s <= 0.0 ||
        config.burst_duration_s <= 0.0) {
      return false;
    }
    const double elapsed = std::chrono::duration<double>(now - start).count();
    return std::fmod(elapsed, config.burst_period_s) < config.burst_duration_s;
  }

  [[nodiscard]] Clock::duration next_gap(Clock::time_point now) {
    const double rate =
        base_rate * (in_burst(now) ? config.burst_factor : 1.0);
    const double gap_s = -std::log(1.0 - rng.uniform()) / std::max(rate, 1e-9);
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(std::min(gap_s, 3600.0)));
  }
};

/// One sent-but-unanswered request; the protocol replies in order, so a
/// FIFO of these matches replies back to their op class and send time.
struct PendingSend {
  std::size_t op_index{0};
  std::size_t line_index{0};
  int attempt{1};
  Clock::time_point sent;
};

/// A shed request waiting out its backoff before the sender re-offers it.
struct RetryEntry {
  std::size_t op_index{0};
  std::size_t line_index{0};
  int attempt{2};
  Clock::time_point not_before;
};

/// Everything one open-loop connection's sender/receiver pair shares.
struct OpenLoopChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<PendingSend> outstanding;
  std::deque<RetryEntry> retries;
  bool sender_done{false};
  std::atomic<bool> failed{false};
};

/// Receiver half: matches replies to the outstanding FIFO, records
/// latency, and (when retrying) re-enqueues sheds for the sender.
void open_loop_receiver(Client& client, const LoadConfig& config,
                        const std::vector<OpRequests>& ops,
                        OpenLoopChannel& ch, LoadReport& report, Rng jitter) {
  const RetryPolicy policy{config.max_attempts, 10, 2000, 0.3};
  try {
    for (;;) {
      PendingSend entry;
      {
        std::unique_lock lock(ch.mu);
        ch.cv.wait(lock, [&] {
          return !ch.outstanding.empty() || ch.sender_done ||
                 ch.failed.load(std::memory_order_relaxed);
        });
        if (ch.failed.load(std::memory_order_relaxed)) return;
        if (ch.outstanding.empty()) {
          if (ch.sender_done) return;
          continue;
        }
        entry = ch.outstanding.front();
        ch.outstanding.pop_front();
      }

      const std::string reply = client.read_reply();
      const auto now = Clock::now();
      const auto micros = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                entry.sent)
              .count());

      ++report.requests;
      const OpClass cls = ops[entry.op_index].cls;
      const ReplyKind kind = classify(reply, cls, report);
      report.latency_us.record(micros);
      report.per_op_latency_us[static_cast<std::size_t>(cls)].record(micros);

      if (kind == ReplyKind::kShed && config.retry &&
          entry.attempt < std::max(config.max_attempts, 1)) {
        const int hint = Client::parse_retry_after_ms(reply);
        const std::int64_t backoff =
            retry_backoff_ms(policy, entry.attempt + 1, hint, jitter);
        const std::scoped_lock lock(ch.mu);
        if (!ch.sender_done) {
          ch.retries.push_back({entry.op_index, entry.line_index,
                                entry.attempt + 1,
                                now + std::chrono::milliseconds(backoff)});
          ch.cv.notify_all();
        }
      }
    }
  } catch (const TransportError&) {
    ++report.transport_errors;
    ch.failed.store(true, std::memory_order_relaxed);
    ch.cv.notify_all();
  }
}

/// Sender half: Poisson first-attempt arrivals plus due retries, all
/// pipelined without waiting for replies.
void open_loop_sender(Client& client, ArrivalProcess& arrivals,
                      const std::vector<OpRequests>& ops, double total_weight,
                      Clock::time_point deadline, OpenLoopChannel& ch,
                      LoadReport& report, Rng pick) {
  try {
    auto next_send = arrivals.start + arrivals.next_gap(arrivals.start);
    for (;;) {
      if (ch.failed.load(std::memory_order_relaxed)) break;
      const auto now = Clock::now();
      if (now >= deadline) break;

      // Due retries jump the queue: their arrival already happened.
      std::vector<RetryEntry> due;
      {
        const std::scoped_lock lock(ch.mu);
        while (!ch.retries.empty() && ch.retries.front().not_before <= now) {
          due.push_back(ch.retries.front());
          ch.retries.pop_front();
        }
      }
      for (const RetryEntry& r : due) {
        client.send_line(ops[r.op_index].lines[r.line_index]);
        ++report.retries;
        const std::scoped_lock lock(ch.mu);
        ch.outstanding.push_back(
            {r.op_index, r.line_index, r.attempt, Clock::now()});
        ch.cv.notify_all();
      }

      if (next_send <= now) {
        const Picked p = pick_request(pick, ops, total_weight);
        client.send_line(ops[p.op_index].lines[p.line_index]);
        ++report.offered;
        {
          const std::scoped_lock lock(ch.mu);
          ch.outstanding.push_back(
              {p.op_index, p.line_index, 1, Clock::now()});
          ch.cv.notify_all();
        }
        next_send += arrivals.next_gap(now);
        continue;
      }

      auto wake = std::min(next_send, deadline);
      {
        const std::scoped_lock lock(ch.mu);
        for (const RetryEntry& r : ch.retries) {
          wake = std::min(wake, r.not_before);
        }
      }
      std::this_thread::sleep_until(wake);
    }
  } catch (const TransportError&) {
    ++report.transport_errors;
    ch.failed.store(true, std::memory_order_relaxed);
  }
  const std::scoped_lock lock(ch.mu);
  ch.sender_done = true;
  ch.cv.notify_all();
}

}  // namespace

std::string_view op_class_name(OpClass op) noexcept {
  switch (op) {
    case OpClass::kAdmit: return "admit";
    case OpClass::kAnalyze: return "analyze";
    case OpClass::kRobustness: return "robustness";
    case OpClass::kSimulate: return "simulate";
    case OpClass::kStats: return "stats";
    case OpClass::kSessionAdmit: return "session_admit";
    case OpClass::kSessionDepart: return "session_depart";
  }
  return "unknown";
}

void LoadReport::merge(const LoadReport& other) {
  requests += other.requests;
  offered += other.offered;
  retries += other.retries;
  ok += other.ok;
  accepted += other.accepted;
  shed += other.shed;
  expired += other.expired;
  errors += other.errors;
  transport_errors += other.transport_errors;
  if (other.elapsed_seconds > elapsed_seconds) {
    elapsed_seconds = other.elapsed_seconds;
  }
  latency_us.merge(other.latency_us);
  for (std::size_t op = 0; op < kOpClassCount; ++op) {
    per_op_ok[op] += other.per_op_ok[op];
    per_op_latency_us[op].merge(other.per_op_latency_us[op]);
  }
}

LoadReport run_load(const LoadConfig& config) {
  if (config.connections == 0) {
    throw InvalidConfigError("run_load: connections must be >= 1");
  }
  if (!(config.seconds > 0.0)) {
    throw InvalidConfigError("run_load: seconds must be positive");
  }
  if (config.port == 0) {
    throw InvalidConfigError("run_load: port must be set");
  }
  if (config.task_pool == 0) {
    throw InvalidConfigError("run_load: task_pool must be >= 1");
  }
  if (config.offered_qps < 0.0 || !std::isfinite(config.offered_qps)) {
    throw InvalidConfigError("run_load: offered_qps must be finite and >= 0");
  }
  if (config.session && config.offered_qps > 0.0) {
    // Departs need the admit reply's ticket before they can be issued, so
    // churn is inherently closed-loop per connection.
    throw InvalidConfigError("run_load: session churn is closed-loop only");
  }
  if (!(config.churn_rate >= 0.0 && config.churn_rate <= 1.0)) {
    throw InvalidConfigError("run_load: churn_rate must be in [0, 1]");
  }

  // Pre-generate the task-set pool and render every request string once;
  // the hot loop only moves bytes.
  WorkloadConfig workload;
  workload.tasks = config.tasks;
  workload.processors = config.processors;
  workload.normalized_utilization = config.normalized_utilization;
  Rng rng(config.seed);
  std::vector<TaskSet> pool;
  pool.reserve(config.task_pool);
  for (std::size_t i = 0; i < config.task_pool; ++i) {
    Rng sample = rng.fork(i);
    pool.push_back(generate(sample, workload));
  }

  // Session churn draws individual tasks, not whole sets: flatten the
  // pool into (wcet, period) pairs once.
  std::vector<std::pair<Time, Time>> churn_pool;
  if (config.session) {
    for (const TaskSet& tasks : pool) {
      for (const Task& task : tasks) {
        churn_pool.emplace_back(task.wcet, task.period);
      }
    }
  }

  std::vector<OpRequests> ops;
  const auto add_op = [&](OpClass cls, double weight, auto&& encode) {
    if (config.session) return;  // the churn loop builds its own requests
    if (weight <= 0.0) return;
    OpRequests op;
    op.cls = cls;
    op.weight = weight;
    op.lines.reserve(pool.size());
    for (const TaskSet& tasks : pool) op.lines.push_back(encode(tasks));
    ops.push_back(std::move(op));
  };
  add_op(OpClass::kAdmit, config.mix.admit, [&](const TaskSet& tasks) {
    return make_admit_request(config.processors, tasks, config.algorithm,
                              config.bound, -1, config.deadline_ms);
  });
  add_op(OpClass::kAnalyze, config.mix.analyze, [&](const TaskSet& tasks) {
    return make_analyze_request(config.processors, tasks, config.algorithm,
                                config.bound, -1, config.deadline_ms);
  });
  add_op(OpClass::kRobustness, config.mix.robustness,
         [&](const TaskSet& tasks) {
    return make_robustness_request(config.processors, tasks, config.algorithm,
                                   config.bound, 0.0, 0, -1,
                                   config.deadline_ms);
  });
  add_op(OpClass::kSimulate, config.mix.simulate, [&](const TaskSet& tasks) {
    return make_simulate_request(config.processors, tasks, config.algorithm,
                                 config.bound, -1, config.deadline_ms);
  });
  add_op(OpClass::kStats, config.mix.stats,
         [&](const TaskSet&) { return make_stats_request(); });
  if (ops.empty() && !config.session) {
    throw InvalidConfigError("run_load: the op mix is empty");
  }
  double total_weight = 0.0;
  for (const OpRequests& op : ops) total_weight += op.weight;

  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(config.seconds));
  const bool open_loop = config.offered_qps > 0.0;

  std::mutex merge_mutex;
  LoadReport merged;
  std::size_t connects_failed = 0;
  std::string connect_error;

  std::vector<std::thread> threads;
  threads.reserve(config.connections);
  for (std::size_t c = 0; c < config.connections; ++c) {
    threads.emplace_back([&, c] {
      LoadReport local;
      try {
        Client client(config.host, config.port, config.timeout_ms,
                      config.seed ^ (0xC11E57ULL + c));
        Rng pick = Rng(config.seed).fork(0x10000 + c);

        if (config.session) {
          run_session_churn(client, config, churn_pool, deadline, local,
                            pick);
        } else if (open_loop) {
          // Sender/receiver pair over one connection: sends never wait
          // for replies, so offered load is independent of service rate.
          ArrivalProcess arrivals{
              config.offered_qps / static_cast<double>(config.connections),
              config, start, Rng(config.seed).fork(0x20000 + c)};
          OpenLoopChannel ch;
          LoadReport recv_report;
          std::thread receiver([&] {
            open_loop_receiver(client, config, ops, ch, recv_report,
                               Rng(config.seed).fork(0x30000 + c));
          });
          open_loop_sender(client, arrivals, ops, total_weight, deadline, ch,
                           local, pick);
          receiver.join();
          local.merge(recv_report);
        } else {
          const RetryPolicy policy{config.max_attempts, 10, 2000, 0.3};
          while (Clock::now() < deadline) {
            const Picked p = pick_request(pick, ops, total_weight);
            const std::string& line = ops[p.op_index].lines[p.line_index];
            const OpClass cls = ops[p.op_index].cls;

            const auto sent = Clock::now();
            std::string reply;
            if (config.retry) {
              RetryResult r = client.request_with_retry(line, policy);
              // Every non-final attempt was answered with a shed.
              local.requests +=
                  static_cast<std::uint64_t>(r.attempts > 1 ? r.attempts - 1
                                                            : 0);
              local.shed += static_cast<std::uint64_t>(
                  r.attempts > 1 ? r.attempts - 1 : 0);
              local.retries += static_cast<std::uint64_t>(r.attempts - 1);
              reply = std::move(r.reply);
            } else {
              reply = client.request(line);
            }
            const auto micros = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - sent)
                    .count());

            ++local.offered;
            ++local.requests;
            classify(reply, cls, local);
            local.latency_us.record(micros);
            local.per_op_latency_us[static_cast<std::size_t>(cls)].record(
                micros);
          }
        }
      } catch (const TransportError& e) {
        ++local.transport_errors;
        const std::scoped_lock lock(merge_mutex);
        if (local.requests == 0 && local.offered == 0) {
          ++connects_failed;
          connect_error = e.what();
        }
      }
      local.elapsed_seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      const std::scoped_lock lock(merge_mutex);
      merged.merge(local);
    });
  }
  for (std::thread& t : threads) t.join();

  if (connects_failed == config.connections) {
    throw TransportError("run_load: no connection could be established (" +
                         connect_error + ")");
  }
  return merged;
}

}  // namespace rmts::server
