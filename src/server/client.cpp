#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "server/json.hpp"

namespace rmts::server {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("not a numeric IPv4 address: " + host);
  }

  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) fail("socket");

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd_);
    fd_ = -1;
    fail("connect");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

std::string Client::request(std::string_view line) {
  send_line(line);
  return read_reply();
}

void Client::send_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');

  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::read_reply() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }

    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) throw TransportError("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw TransportError("timed out waiting for reply");
    }
    fail("recv");
  }
}

void Client::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

namespace {

void write_common(JsonWriter& w, std::string_view op, std::size_t processors,
                  const TaskSet& tasks, std::string_view alg,
                  std::string_view bound, std::int64_t id) {
  w.key("op");
  w.value(op);
  if (id >= 0) {
    w.key("id");
    w.value(id);
  }
  w.key("m");
  w.value(processors);
  w.key("tasks");
  w.begin_array();
  for (const Task& task : tasks) {
    w.begin_array();
    w.value(static_cast<std::int64_t>(task.wcet));
    w.value(static_cast<std::int64_t>(task.period));
    w.end_array();
  }
  w.end_array();
  if (!alg.empty()) {
    w.key("alg");
    w.value(alg);
  }
  if (!bound.empty()) {
    w.key("bound");
    w.value(bound);
  }
}

}  // namespace

std::string make_admit_request(std::size_t processors, const TaskSet& tasks,
                               std::string_view alg, std::string_view bound,
                               std::int64_t id) {
  JsonWriter w;
  w.begin_object();
  write_common(w, "admit", processors, tasks, alg, bound, id);
  w.end_object();
  return w.str();
}

std::string make_analyze_request(std::size_t processors, const TaskSet& tasks,
                                 std::string_view alg, std::string_view bound,
                                 std::int64_t id) {
  JsonWriter w;
  w.begin_object();
  write_common(w, "analyze", processors, tasks, alg, bound, id);
  w.end_object();
  return w.str();
}

std::string make_robustness_request(std::size_t processors,
                                    const TaskSet& tasks, std::string_view alg,
                                    std::string_view bound, double max_factor,
                                    std::uint64_t fault_seed, std::int64_t id) {
  JsonWriter w;
  w.begin_object();
  write_common(w, "robustness", processors, tasks, alg, bound, id);
  if (max_factor > 0.0) {
    w.key("max_factor");
    w.value(max_factor);
  }
  if (fault_seed != 0) {
    w.key("fault_seed");
    w.value(fault_seed);
  }
  w.end_object();
  return w.str();
}

std::string make_simulate_request(std::size_t processors, const TaskSet& tasks,
                                  std::string_view alg, std::string_view bound,
                                  std::int64_t id) {
  JsonWriter w;
  w.begin_object();
  write_common(w, "simulate", processors, tasks, alg, bound, id);
  w.end_object();
  return w.str();
}

std::string make_stats_request(std::int64_t id) {
  JsonWriter w;
  w.begin_object();
  w.key("op");
  w.value("stats");
  if (id >= 0) {
    w.key("id");
    w.value(id);
  }
  w.end_object();
  return w.str();
}

std::string make_metrics_request(std::int64_t id) {
  JsonWriter w;
  w.begin_object();
  w.key("op");
  w.value("metrics");
  if (id >= 0) {
    w.key("id");
    w.value(id);
  }
  w.end_object();
  return w.str();
}

}  // namespace rmts::server
