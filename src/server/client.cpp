#include "server/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "server/json.hpp"

namespace rmts::server {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port, int timeout_ms,
               std::uint64_t seed)
    : retry_rng_(seed) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("not a numeric IPv4 address: " + host);
  }

  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd_ < 0) fail("socket");

  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Bounded connect: start it non-blocking, wait for writability with
  // poll(), then read back SO_ERROR.  A blocking connect() ignores the
  // socket send timeout on Linux, so a black-holed address would stall
  // callers for the kernel's minutes-long SYN retry schedule.
  int rc =
      ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINTR) rc = -1, errno = EINPROGRESS;
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd_);
      fd_ = -1;
      fail("connect");
    }
    pollfd pfd{fd_, POLLOUT, 0};
    int waited;
    do {
      waited = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    } while (waited < 0 && errno == EINTR);
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (waited > 0) ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (waited <= 0 || soerr != 0) {
      ::close(fd_);
      fd_ = -1;
      if (waited == 0) {
        throw TransportError("connect timed out after " +
                             std::to_string(timeout_ms) + " ms");
      }
      if (waited < 0) fail("poll (connect)");
      errno = soerr;
      fail("connect");
    }
  }

  // Back to blocking; request()/read_reply() rely on the socket timeouts.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)),
      retry_rng_(other.retry_rng_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    retry_rng_ = other.retry_rng_;
  }
  return *this;
}

std::string Client::request(std::string_view line) {
  send_line(line);
  return read_reply();
}

RetryResult Client::request_with_retry(std::string_view line,
                                       const RetryPolicy& policy) {
  const int max_attempts = std::max(policy.max_attempts, 1);
  RetryResult result;
  for (int attempt = 1;; ++attempt) {
    result.reply = request(line);
    result.attempts = attempt;
    const int hint_ms = parse_retry_after_ms(result.reply);
    if (hint_ms == 0) return result;  // not an overload shed
    if (attempt >= max_attempts) {
      result.attempts_exhausted = true;
      return result;
    }
    // Exponential backoff from the policy, capped at max_backoff_ms and
    // jittered so a fleet of clients decorrelates instead of re-bursting
    // in lockstep.  The server's hint is applied LAST, as a floor the cap
    // never truncates: max_backoff_ms bounds the client's own impatience,
    // not how long the server asked it to stay away.
    std::int64_t backoff_ms = policy.base_backoff_ms;
    for (int k = 1; k < attempt && backoff_ms < policy.max_backoff_ms; ++k) {
      backoff_ms *= 2;
    }
    backoff_ms =
        std::min<std::int64_t>(backoff_ms, std::max(policy.max_backoff_ms, 1));
    const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
    const double factor =
        1.0 + jitter * (2.0 * retry_rng_.uniform() - 1.0);
    backoff_ms = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(static_cast<double>(backoff_ms) * factor));
    backoff_ms = std::max<std::int64_t>(backoff_ms, hint_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    result.backoff_total_ms += backoff_ms;
  }
}

int Client::parse_retry_after_ms(std::string_view reply) noexcept {
  if (reply.find("\"error\":\"overloaded\"") == std::string_view::npos) {
    return 0;
  }
  static constexpr std::string_view kKey = "\"retry_after_ms\":";
  const std::size_t at = reply.find(kKey);
  if (at == std::string_view::npos) return 1;  // shed without a hint
  std::size_t i = at + kKey.size();
  long long value = 0;
  bool any = false;
  while (i < reply.size() && reply[i] >= '0' && reply[i] <= '9') {
    value = value * 10 + (reply[i] - '0');
    if (value > 1'000'000) value = 1'000'000;
    ++i;
    any = true;
  }
  if (!any || value <= 0) return 1;
  return static_cast<int>(value);
}

void Client::send_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');

  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::read_reply() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }

    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) throw TransportError("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw TransportError("timed out waiting for reply");
    }
    fail("recv");
  }
}

void Client::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

namespace {

void write_common(JsonWriter& w, std::string_view op, std::size_t processors,
                  const TaskSet& tasks, std::string_view alg,
                  std::string_view bound, std::int64_t id,
                  std::int64_t deadline_ms) {
  w.key("op");
  w.value(op);
  if (id >= 0) {
    w.key("id");
    w.value(id);
  }
  if (deadline_ms > 0) {
    w.key("deadline_ms");
    w.value(deadline_ms);
  }
  w.key("m");
  w.value(processors);
  w.key("tasks");
  w.begin_array();
  for (const Task& task : tasks) {
    w.begin_array();
    w.value(static_cast<std::int64_t>(task.wcet));
    w.value(static_cast<std::int64_t>(task.period));
    w.end_array();
  }
  w.end_array();
  if (!alg.empty()) {
    w.key("alg");
    w.value(alg);
  }
  if (!bound.empty()) {
    w.key("bound");
    w.value(bound);
  }
}

}  // namespace

std::string make_admit_request(std::size_t processors, const TaskSet& tasks,
                               std::string_view alg, std::string_view bound,
                               std::int64_t id, std::int64_t deadline_ms) {
  JsonWriter w;
  w.begin_object();
  write_common(w, "admit", processors, tasks, alg, bound, id, deadline_ms);
  w.end_object();
  return w.str();
}

std::string make_admit_batch_request(std::size_t processors,
                                     std::span<const TaskSet> batch,
                                     std::string_view alg,
                                     std::string_view bound, std::int64_t id,
                                     std::int64_t deadline_ms) {
  JsonWriter w;
  w.begin_object();
  w.key("op");
  w.value("admit_batch");
  if (id >= 0) {
    w.key("id");
    w.value(id);
  }
  if (deadline_ms > 0) {
    w.key("deadline_ms");
    w.value(deadline_ms);
  }
  w.key("m");
  w.value(processors);
  if (!alg.empty()) {
    w.key("alg");
    w.value(alg);
  }
  if (!bound.empty()) {
    w.key("bound");
    w.value(bound);
  }
  w.key("items");
  w.begin_array();
  for (const TaskSet& tasks : batch) {
    w.begin_object();
    w.key("tasks");
    w.begin_array();
    for (const Task& task : tasks) {
      w.begin_array();
      w.value(static_cast<std::int64_t>(task.wcet));
      w.value(static_cast<std::int64_t>(task.period));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string make_analyze_request(std::size_t processors, const TaskSet& tasks,
                                 std::string_view alg, std::string_view bound,
                                 std::int64_t id, std::int64_t deadline_ms) {
  JsonWriter w;
  w.begin_object();
  write_common(w, "analyze", processors, tasks, alg, bound, id, deadline_ms);
  w.end_object();
  return w.str();
}

std::string make_robustness_request(std::size_t processors,
                                    const TaskSet& tasks, std::string_view alg,
                                    std::string_view bound, double max_factor,
                                    std::uint64_t fault_seed, std::int64_t id,
                                    std::int64_t deadline_ms) {
  JsonWriter w;
  w.begin_object();
  write_common(w, "robustness", processors, tasks, alg, bound, id, deadline_ms);
  if (max_factor > 0.0) {
    w.key("max_factor");
    w.value(max_factor);
  }
  if (fault_seed != 0) {
    w.key("fault_seed");
    w.value(fault_seed);
  }
  w.end_object();
  return w.str();
}

std::string make_simulate_request(std::size_t processors, const TaskSet& tasks,
                                  std::string_view alg, std::string_view bound,
                                  std::int64_t id, std::int64_t deadline_ms) {
  JsonWriter w;
  w.begin_object();
  write_common(w, "simulate", processors, tasks, alg, bound, id, deadline_ms);
  w.end_object();
  return w.str();
}

std::string make_stats_request(std::int64_t id) {
  JsonWriter w;
  w.begin_object();
  w.key("op");
  w.value("stats");
  if (id >= 0) {
    w.key("id");
    w.value(id);
  }
  w.end_object();
  return w.str();
}

std::string make_metrics_request(std::int64_t id) {
  JsonWriter w;
  w.begin_object();
  w.key("op");
  w.value("metrics");
  if (id >= 0) {
    w.key("id");
    w.value(id);
  }
  w.end_object();
  return w.str();
}

namespace {

/// Shared prologue of every session op: op name, optional id/deadline and
/// the target session (0 = omit, for session_open).
void begin_session_request(JsonWriter& w, std::string_view op,
                           std::uint64_t session, std::int64_t id,
                           std::int64_t deadline_ms) {
  w.begin_object();
  w.key("op");
  w.value(op);
  if (id >= 0) {
    w.key("id");
    w.value(id);
  }
  if (deadline_ms > 0) {
    w.key("deadline_ms");
    w.value(deadline_ms);
  }
  if (session != 0) {
    w.key("session");
    w.value(session);
  }
}

}  // namespace

std::string make_session_open_request(std::size_t processors, bool split,
                                      std::int64_t id,
                                      std::int64_t deadline_ms) {
  JsonWriter w;
  begin_session_request(w, "session_open", 0, id, deadline_ms);
  w.key("m");
  w.value(processors);
  w.key("split");
  w.value(split);
  w.end_object();
  return w.str();
}

std::string make_session_admit_request(std::uint64_t session, Time wcet,
                                       Time period, std::int64_t id,
                                       std::int64_t deadline_ms) {
  JsonWriter w;
  begin_session_request(w, "session_admit", session, id, deadline_ms);
  w.key("wcet");
  w.value(static_cast<std::int64_t>(wcet));
  w.key("period");
  w.value(static_cast<std::int64_t>(period));
  w.end_object();
  return w.str();
}

std::string make_session_depart_request(std::uint64_t session,
                                        std::uint64_t ticket, std::int64_t id,
                                        std::int64_t deadline_ms) {
  JsonWriter w;
  begin_session_request(w, "session_depart", session, id, deadline_ms);
  w.key("ticket");
  w.value(ticket);
  w.end_object();
  return w.str();
}

std::string make_session_rebalance_request(std::uint64_t session,
                                           std::int64_t id,
                                           std::int64_t deadline_ms) {
  JsonWriter w;
  begin_session_request(w, "session_rebalance", session, id, deadline_ms);
  w.end_object();
  return w.str();
}

std::string make_session_stats_request(std::uint64_t session,
                                       std::int64_t id) {
  JsonWriter w;
  begin_session_request(w, "session_stats", session, id, 0);
  w.end_object();
  return w.str();
}

std::string make_session_close_request(std::uint64_t session,
                                       std::int64_t id) {
  JsonWriter w;
  begin_session_request(w, "session_close", session, id, 0);
  w.end_object();
  return w.str();
}

}  // namespace rmts::server
