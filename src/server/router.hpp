// Request router: one decoded protocol line in, one JSON reply out.
//
// The router is the pure, transport-free core of the service -- the epoll
// loop (server/server.hpp), the in-process protocol fuzzer and the unit
// tests all drive the same handle() entry point.  It owns no sockets and
// no mutable state: algorithm objects are cheap const instances, repeated
// simulation reuses a thread_local SimWorkspace, so handle() is safe to
// call concurrently from any number of pool workers.
//
// Request semantics follow the repo's error philosophy: "not schedulable"
// is a normal ok:true reply with accepted:false; ok:false is reserved for
// requests the service could not interpret or that violate the documented
// limits (malformed JSON, unknown op, oversized task set, invalid fault
// model).
#pragma once

#include <array>
#include <functional>
#include <string>
#include <string_view>

#include "common/time.hpp"
#include "online/registry.hpp"
#include "server/metrics.hpp"
#include "server/overload.hpp"

namespace rmts::server {

/// Hard per-request limits; requests beyond them get ok:false instead of
/// unbounded service time.
struct RouterConfig {
  std::size_t max_tasks{512};
  std::size_t max_processors{256};
  /// Cap fed to recommended_horizon() for simulate/robustness probes.
  Time sim_horizon_cap{2'000'000};
  /// Upper limit a robustness request may set as its bisection range.
  double max_overrun_factor{8.0};
  /// Most task sets one admit_batch request may carry; each item still
  /// honors max_tasks/max_processors on its own.
  std::size_t max_batch_items{64};
  /// Online sessions (the session_* ops): concurrently open sessions and
  /// per-session caps.  A session_open may ask for fewer residents but
  /// never more.
  std::size_t max_sessions{64};
  std::size_t max_session_processors{256};
  std::size_t max_session_residents{4096};
};

/// One budgeted op class's live overload-control state (stats/metrics).
struct ClassRuntimeStats {
  std::size_t budget{0};        ///< current admission budget
  std::uint64_t in_flight{0};   ///< queued-or-running right now
  std::uint64_t shed{0};        ///< total budget rejections
  std::uint64_t expired{0};     ///< total deadline-expired drops
  int retry_after_ms{0};        ///< hint currently attached to sheds
};

/// Event-loop-side counters surfaced verbatim by the stats endpoint (the
/// router itself cannot see sockets or queues).
struct RuntimeStats {
  std::uint64_t connections_accepted{0};
  std::uint64_t connections_active{0};
  std::uint64_t requests_shed{0};
  std::uint64_t requests_expired{0};
  std::uint64_t batches_dispatched{0};
  std::uint64_t in_flight{0};
  double uptime_seconds{0.0};
  std::size_t workers{0};
  /// Overload-control surface: whether budgets adapt, and per-class state.
  bool adaptive{false};
  std::uint64_t controller_ticks{0};
  std::array<ClassRuntimeStats, kBudgetClassCount> classes{};
};

/// Outcome of one handled line: the reply document (no trailing newline)
/// plus what to record in Metrics.
struct HandleOutcome {
  std::string reply;
  Endpoint endpoint{Endpoint::kMalformed};
  bool error{false};
};

class Router {
 public:
  /// `metrics` is the read side for the stats endpoint (recording is the
  /// transport's job, which also sees queue wait); `runtime`, when set,
  /// supplies the event-loop counters for stats.
  Router(RouterConfig config, const Metrics& metrics,
         std::function<RuntimeStats()> runtime = {});

  /// Handles one complete request line.  Never throws; every failure is a
  /// well-formed ok:false reply.  Thread-safe.
  [[nodiscard]] HandleOutcome handle(std::string_view line) const;

  /// Prometheus-style text exposition (text/plain; version 0.0.4) of the
  /// whole observability surface: per-endpoint request counters and HDR
  /// latency histograms (sparse `le` buckets), event-loop gauges, trace
  /// counters and per-stage latency summaries.  Served by the `metrics`
  /// op (JSON-wrapped) and by the server's `GET /metrics` scrape path
  /// (raw).  Thread-safe.
  [[nodiscard]] std::string metrics_exposition() const;

  /// Canonical outcome for a line the decoder refused (over the length
  /// cap) -- the request text itself is gone, so this cannot echo an id.
  [[nodiscard]] HandleOutcome oversized_line() const;

  [[nodiscard]] const RouterConfig& config() const noexcept { return config_; }

  /// The online-session store (tests and the fuzzer inspect it directly).
  [[nodiscard]] const online::SessionRegistry& sessions() const noexcept {
    return sessions_;
  }

 private:
  RouterConfig config_;
  const Metrics& metrics_;
  std::function<RuntimeStats()> runtime_;
  /// The one piece of mutable state the router owns: long-lived online
  /// sessions (the session_* ops are stateful by nature).  The registry
  /// is internally synchronized -- per-session mutexes plus a map lock --
  /// so handle() stays const and callable from any worker.
  mutable online::SessionRegistry sessions_;
};

}  // namespace rmts::server
