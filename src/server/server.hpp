// rmts_serve: a batched, epoll-based TCP admission-control service.
//
// Architecture (DESIGN.md "Server architecture"):
//
//   accept ─▶ per-connection LineDecoder ─▶ request batches ─▶ ThreadPool
//     ▲              (epoll loop thread)          │  post()      workers
//     │                                           ▼                │
//   clients ◀─ write buffers + EPOLLOUT ◀─ completion queue ◀──────┘
//                                           (eventfd wakeup)
//
// The event-loop thread owns every socket and all framing; it never runs
// analysis.  Decoded request lines are grouped into batches (at most
// ServerConfig::batch_size requests each) and posted onto the persistent
// worker pool (common/thread_pool.hpp), which runs the transport-free
// Router.  Three protections keep the loop responsive under abuse:
//
//  * load shedding -- per-op-class admission budgets (server/overload.hpp)
//    plus a global max_in_flight backstop; a request over its class budget
//    is answered immediately with {"ok":false,"error":"overloaded",
//    "retry_after_ms":N} instead of queueing without bound.  A timerfd
//    monitoring tick feeds the OverloadController, which adapts the
//    budgets (AIMD) to hold each class's p99 latency SLO under overload;
//  * deadline-aware shedding -- a request carrying "deadline_ms" whose
//    deadline passed while it sat in the queue is dropped with
//    {"ok":false,"error":"deadline_expired"} instead of wasting a worker
//    on a reply nobody will read;
//  * write backpressure -- a connection whose unsent replies exceed
//    max_write_buffer stops being read until the peer drains it;
//  * graceful drain -- request_stop() (thread- and signal-safe) stops
//    accepting and reading, lets every in-flight request finish and its
//    reply flush, then returns from run(); a drain deadline bounds how
//    long a stuck peer can hold the process up.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "server/metrics.hpp"
#include "server/overload.hpp"
#include "server/router.hpp"

namespace rmts::server {

struct ServerConfig {
  /// Numeric listen address; the service speaks an unauthenticated
  /// analysis protocol, so it defaults to loopback.
  std::string host{"127.0.0.1"};
  /// 0 = ephemeral; Server::port() reports the bound port.
  std::uint16_t port{0};
  /// Worker threads running the Router (>= 1; 0 = hardware concurrency
  /// minus the event-loop thread, at least 1).
  std::size_t workers{0};
  /// Dispatched-but-unfinished request cap across ALL classes; the
  /// backstop behind the per-class budgets in `overload`.
  std::size_t max_in_flight{256};
  /// Per-op-class admission budgets and the feedback controller adapting
  /// them (adaptive=false freezes budgets at initial_budget -- the
  /// static-cap baseline).
  OverloadConfig overload;
  /// Max requests per posted pool task.  Batching amortizes the queue
  /// mutex + wakeup per request; chunking one epoll wave into several
  /// batches keeps every worker busy.
  std::size_t batch_size{8};
  std::size_t max_line{1 << 20};
  /// Per-connection unsent-reply cap before reads pause (backpressure).
  std::size_t max_write_buffer{4u << 20};
  std::size_t max_connections{1024};
  /// Hard bound on the graceful-drain phase of run().
  int drain_timeout_ms{5000};
  RouterConfig router;
};

/// The service.  Construction binds and listens (throwing
/// InvalidConfigError on failure), so port() is valid -- and a client may
/// connect -- before run() is entered.  run() blocks on the event loop
/// until request_stop(); everything else is safe to call from any thread.
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually-bound TCP port.
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Runs the event loop on the calling thread; returns after a graceful
  /// drain completes (or its deadline expires).
  void run();

  /// Initiates shutdown; safe from any thread and from signal handlers
  /// (a single eventfd write).  Idempotent.
  void request_stop() noexcept;

  [[nodiscard]] const Metrics& metrics() const noexcept;

  /// Event-loop counters (the same snapshot the stats endpoint reports).
  [[nodiscard]] RuntimeStats runtime_stats() const noexcept;

  [[nodiscard]] const ServerConfig& config() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rmts::server
