// Blocking TCP client for the admission-control protocol.
//
// One Client is one connection.  It is deliberately simple -- blocking
// socket with bounded connect/send/receive timeouts, one buffered reader
// -- because its users (rmts_loadgen, bench_e18/e20, the server smoke
// tests) each drive many independent connections from their own threads;
// the concurrency lives there, not here.  The request-builder helpers
// render the exact wire documents described in server/protocol.hpp so
// every caller speaks the same dialect.
//
// Overload cooperation: request_with_retry() resends a request the server
// shed ({"ok":false,"error":"overloaded"}), sleeping the larger of the
// server's retry_after_ms hint and a jittered exponential backoff between
// attempts.  The jitter is drawn from the client's own deterministic Rng
// (seeded at construction), so a fleet of retrying clients decorrelates
// instead of re-bursting in lockstep -- while every test run stays
// reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tasks/task_set.hpp"

namespace rmts::server {

/// Socket-level failure talking to the service: connect refused, peer
/// closed mid-reply, receive timeout.  Protocol-level failures (ok:false
/// replies) are ordinary return values, matching the repo's error
/// philosophy.
class TransportError : public Error {
 public:
  using Error::Error;
};

/// How request_with_retry() behaves between attempts.
struct RetryPolicy {
  /// Total tries including the first; <= 1 disables retrying.
  int max_attempts{4};
  /// Backoff before retry k (1-based) is
  ///   max(server retry_after_ms hint,
  ///       jittered min(base_backoff_ms * 2^(k-1), max_backoff_ms)),
  /// where the jitter scales the client's own exponential term by a
  /// uniform factor in [1 - jitter, 1 + jitter].  max_backoff_ms caps
  /// only that term: the server's hint is always honored in full, so the
  /// client never retries sooner than the server asked.
  int base_backoff_ms{10};
  int max_backoff_ms{2000};
  double jitter{0.3};
};

/// Outcome of request_with_retry(): the final reply (possibly still an
/// `overloaded` error when attempts ran out) plus what it took.
struct RetryResult {
  std::string reply;
  int attempts{1};
  std::int64_t backoff_total_ms{0};
  [[nodiscard]] bool exhausted() const noexcept { return attempts_exhausted; }
  bool attempts_exhausted{false};
};

class Client {
 public:
  /// Connects to host:port (numeric IPv4 address) with a bound on how
  /// long the connect itself and any later request() may block (a
  /// non-blocking connect + poll, so a black-holed server fails in
  /// timeout_ms instead of the kernel's minutes-long default).  Throws
  /// TransportError.  `seed` feeds the retry jitter Rng.
  Client(const std::string& host, std::uint16_t port, int timeout_ms = 5000,
         std::uint64_t seed = 1);
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line and blocks for its reply line (both without
  /// the trailing '\n').  The protocol answers in order, so pipelining
  /// callers may also interleave send_line()/read_reply() directly.
  std::string request(std::string_view line);

  /// request(), but when the server replies `overloaded`, sleeps (honoring
  /// the reply's retry_after_ms hint, with jittered exponential backoff)
  /// and resends, up to policy.max_attempts total tries.  Transport errors
  /// still throw; every protocol-level reply is returned.
  RetryResult request_with_retry(std::string_view line,
                                 const RetryPolicy& policy = {});

  /// Extracts the retry_after_ms hint from an `overloaded` reply line;
  /// 0 when the reply is not an overload shed (exposed for the load
  /// driver, which manages its own send/receive interleaving).
  [[nodiscard]] static int parse_retry_after_ms(std::string_view reply) noexcept;

  /// Writes `line` plus the terminating newline.
  void send_line(std::string_view line);

  /// Blocks for the next complete reply line.
  std::string read_reply();

  /// Half-closes the write side so the server sees EOF and, once every
  /// pending reply is flushed, closes the connection.
  void shutdown_write() noexcept;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  int fd_{-1};
  std::string buffer_;  ///< Bytes received beyond the last returned line.
  Rng retry_rng_{1};    ///< Deterministic jitter stream for retries.
};

/// Request builders (the "tasks" field is [[wcet, period], ...] in RM
/// order; the server re-validates and re-sorts anyway).  Empty alg/bound
/// omit the field, selecting the server defaults (rmts / hc).
/// `deadline_ms` > 0 adds the request's client deadline: the server drops
/// the request with `deadline_expired` if it is still queued that many
/// milliseconds after arrival.
[[nodiscard]] std::string make_admit_request(
    std::size_t processors, const TaskSet& tasks, std::string_view alg = {},
    std::string_view bound = {}, std::int64_t id = -1,
    std::int64_t deadline_ms = 0);
/// Batched admission: every task set in `batch` probed in one request
/// (op admit_batch), sharing the top-level m/alg/bound defaults.  The
/// reply carries one entry per item plus accepted_count.
[[nodiscard]] std::string make_admit_batch_request(
    std::size_t processors, std::span<const TaskSet> batch,
    std::string_view alg = {}, std::string_view bound = {},
    std::int64_t id = -1, std::int64_t deadline_ms = 0);
[[nodiscard]] std::string make_analyze_request(
    std::size_t processors, const TaskSet& tasks, std::string_view alg = {},
    std::string_view bound = {}, std::int64_t id = -1,
    std::int64_t deadline_ms = 0);
[[nodiscard]] std::string make_robustness_request(
    std::size_t processors, const TaskSet& tasks, std::string_view alg = {},
    std::string_view bound = {}, double max_factor = 0.0,
    std::uint64_t fault_seed = 0, std::int64_t id = -1,
    std::int64_t deadline_ms = 0);
[[nodiscard]] std::string make_simulate_request(
    std::size_t processors, const TaskSet& tasks, std::string_view alg = {},
    std::string_view bound = {}, std::int64_t id = -1,
    std::int64_t deadline_ms = 0);
[[nodiscard]] std::string make_stats_request(std::int64_t id = -1);
[[nodiscard]] std::string make_metrics_request(std::int64_t id = -1);

/// Online-session ops (op session_*): a session_open creates a long-lived
/// mutable partition on the server; admit/depart mutate it by ticket.
[[nodiscard]] std::string make_session_open_request(
    std::size_t processors, bool split = true, std::int64_t id = -1,
    std::int64_t deadline_ms = 0);
[[nodiscard]] std::string make_session_admit_request(
    std::uint64_t session, Time wcet, Time period, std::int64_t id = -1,
    std::int64_t deadline_ms = 0);
[[nodiscard]] std::string make_session_depart_request(
    std::uint64_t session, std::uint64_t ticket, std::int64_t id = -1,
    std::int64_t deadline_ms = 0);
[[nodiscard]] std::string make_session_rebalance_request(
    std::uint64_t session, std::int64_t id = -1, std::int64_t deadline_ms = 0);
[[nodiscard]] std::string make_session_stats_request(std::uint64_t session,
                                                     std::int64_t id = -1);
[[nodiscard]] std::string make_session_close_request(std::uint64_t session,
                                                     std::int64_t id = -1);

}  // namespace rmts::server
