// Blocking TCP client for the admission-control protocol.
//
// One Client is one connection.  It is deliberately simple -- blocking
// socket with a receive timeout, one buffered reader -- because its users
// (rmts_loadgen, bench_e18, the server smoke tests) each drive many
// independent connections from their own threads; the concurrency lives
// there, not here.  The request-builder helpers render the exact wire
// documents described in server/protocol.hpp so every caller speaks the
// same dialect.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "tasks/task_set.hpp"

namespace rmts::server {

/// Socket-level failure talking to the service: connect refused, peer
/// closed mid-reply, receive timeout.  Protocol-level failures (ok:false
/// replies) are ordinary return values, matching the repo's error
/// philosophy.
class TransportError : public Error {
 public:
  using Error::Error;
};

class Client {
 public:
  /// Connects to host:port (numeric IPv4 address) with a bound on how
  /// long any later request() may block.  Throws TransportError.
  Client(const std::string& host, std::uint16_t port, int timeout_ms = 5000);
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line and blocks for its reply line (both without
  /// the trailing '\n').  The protocol answers in order, so pipelining
  /// callers may also interleave send_line()/read_reply() directly.
  std::string request(std::string_view line);

  /// Writes `line` plus the terminating newline.
  void send_line(std::string_view line);

  /// Blocks for the next complete reply line.
  std::string read_reply();

  /// Half-closes the write side so the server sees EOF and, once every
  /// pending reply is flushed, closes the connection.
  void shutdown_write() noexcept;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  int fd_{-1};
  std::string buffer_;  ///< Bytes received beyond the last returned line.
};

/// Request builders (the "tasks" field is [[wcet, period], ...] in RM
/// order; the server re-validates and re-sorts anyway).  Empty alg/bound
/// omit the field, selecting the server defaults (rmts / hc).
[[nodiscard]] std::string make_admit_request(
    std::size_t processors, const TaskSet& tasks, std::string_view alg = {},
    std::string_view bound = {}, std::int64_t id = -1);
[[nodiscard]] std::string make_analyze_request(
    std::size_t processors, const TaskSet& tasks, std::string_view alg = {},
    std::string_view bound = {}, std::int64_t id = -1);
[[nodiscard]] std::string make_robustness_request(
    std::size_t processors, const TaskSet& tasks, std::string_view alg = {},
    std::string_view bound = {}, double max_factor = 0.0,
    std::uint64_t fault_seed = 0, std::int64_t id = -1);
[[nodiscard]] std::string make_simulate_request(
    std::size_t processors, const TaskSet& tasks, std::string_view alg = {},
    std::string_view bound = {}, std::int64_t id = -1);
[[nodiscard]] std::string make_stats_request(std::int64_t id = -1);
[[nodiscard]] std::string make_metrics_request(std::int64_t id = -1);

}  // namespace rmts::server
