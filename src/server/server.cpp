#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "server/overload.hpp"
#include "server/protocol.hpp"

namespace rmts::server {

namespace {

using Clock = std::chrono::steady_clock;

/// epoll user-data tokens for the four non-connection fds; connection
/// tokens start above so they can never collide.
constexpr std::uint64_t kListenToken = 1;
constexpr std::uint64_t kStopToken = 2;
constexpr std::uint64_t kCompletionToken = 3;
constexpr std::uint64_t kTimerToken = 4;
constexpr std::uint64_t kFirstConnectionToken = 16;

[[noreturn]] void throw_errno(const std::string& what) {
  throw InvalidConfigError(what + ": " + std::strerror(errno));
}

/// One request handed to the worker pool.
struct PendingRequest {
  std::uint64_t token{0};
  std::uint64_t seq{0};  ///< per-connection dispatch order
  std::string line;
  Clock::time_point enqueued;
  /// Event-loop peek results: which class budget this request holds (if
  /// any) and the client deadline in ms from arrival (0 = none).
  BudgetClass cls{BudgetClass::kAdmit};
  bool budgeted{false};
  std::int64_t deadline_ms{0};
};

/// One computed reply travelling back to the loop.
struct Completion {
  std::uint64_t token{0};
  std::uint64_t seq{0};
  std::string reply;
};

struct Connection {
  int fd{-1};
  std::uint64_t token{0};
  LineDecoder decoder;
  /// Unsent reply bytes; write_offset avoids O(n) front erases.
  std::string write_buffer;
  std::size_t write_offset{0};
  /// Requests of this connection currently dispatched or queued.
  std::size_t pending{0};
  /// Pipelined replies must leave in request order, but one connection's
  /// wave can span several pool batches that complete on different
  /// workers in either order -- and decode-time replies (sheds, oversized
  /// lines) are produced before earlier pooled requests finish.  Every
  /// reply therefore claims the next seq at decode time; completions
  /// ahead of deliver_next wait in held until the gap fills (empty
  /// whenever pending == 0).  held is NOT bounded by max_in_flight: a
  /// client pinning one slow admitted request while streaming sheddable
  /// lines grows it at network ingest rate, so held_bytes counts into the
  /// write-backpressure gate (update_interest) exactly like unsent().
  std::uint64_t seq_next{0};
  std::uint64_t deliver_next{0};
  std::map<std::uint64_t, std::string> held;
  std::size_t held_bytes{0};
  bool read_closed{false};
  /// Interest currently registered with epoll.
  bool want_read{true};
  bool want_write{false};

  explicit Connection(int fd_in, std::uint64_t token_in, std::size_t max_line)
      : fd(fd_in), token(token_in), decoder(max_line) {}

  [[nodiscard]] std::size_t unsent() const noexcept {
    return write_buffer.size() - write_offset;
  }
};

}  // namespace

struct Server::Impl {
  explicit Impl(ServerConfig config_in)
      : config(normalize(std::move(config_in))),
        controller(config.overload),
        router(config.router, metrics, [this] { return runtime_snapshot(); }),
        pool(std::make_unique<ThreadPool>(config.workers)) {
    start_time = Clock::now();
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
      close_all();
      throw InvalidConfigError("invalid listen address: " + config.host);
    }
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      close_all();
      throw_errno("bind " + config.host + ":" + std::to_string(config.port));
    }
    if (::listen(listen_fd, 512) != 0) {
      close_all();
      throw_errno("listen");
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof bound;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
    bound_port = ntohs(bound.sin_port);

    stop_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    completion_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    timer_fd = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (stop_fd < 0 || completion_fd < 0 || timer_fd < 0 || epoll_fd < 0) {
      close_all();
      throw_errno("eventfd/timerfd/epoll_create1");
    }
    // Arm the monitoring tick (the controller clamped interval_ms >= 1).
    const int interval_ms = controller.config().interval_ms;
    itimerspec tick{};
    tick.it_interval.tv_sec = interval_ms / 1000;
    tick.it_interval.tv_nsec = (interval_ms % 1000) * 1'000'000L;
    tick.it_value = tick.it_interval;
    ::timerfd_settime(timer_fd, 0, &tick, nullptr);
    // Publish the initial budgets/hints before any request arrives.
    for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
      class_budget[c].store(
          controller.budget(static_cast<BudgetClass>(c)),
          std::memory_order_relaxed);
      class_retry_ms[c].store(
          controller.retry_after_ms(static_cast<BudgetClass>(c)),
          std::memory_order_relaxed);
    }
    try {
      add_fd(listen_fd, kListenToken, EPOLLIN);
      add_fd(stop_fd, kStopToken, EPOLLIN);
      add_fd(completion_fd, kCompletionToken, EPOLLIN);
      add_fd(timer_fd, kTimerToken, EPOLLIN);
    } catch (...) {
      close_all();  // ~Impl will not run if the constructor throws
      throw;
    }
  }

  ~Impl() {
    // Join the workers FIRST: a batch abandoned at the drain deadline may
    // still be touching the completion queue and eventfd.  Only then is it
    // safe to close the remaining fds.
    pool.reset();
    close_all();
  }

  static ServerConfig normalize(ServerConfig config) {
    if (config.workers == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      config.workers = hw > 1 ? hw - 1 : 1;
    }
    if (config.batch_size == 0) config.batch_size = 1;
    if (config.max_in_flight == 0) config.max_in_flight = 1;
    return config;
  }

  void add_fd(int fd, std::uint64_t token, std::uint32_t events) const {
    epoll_event event{};
    event.events = events;
    event.data.u64 = token;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
      throw_errno("epoll_ctl(ADD)");
    }
  }

  /// Closes the client-visible sockets (run()'s teardown).  The eventfds
  /// and the epoll fd stay open until ~Impl so a straggling worker can
  /// still signal a dead-but-valid fd rather than a recycled number.
  void close_sockets() noexcept {
    for (auto& [token, conn] : connections) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    connections.clear();
    connections_active.store(0, std::memory_order_relaxed);
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
  }

  void close_all() noexcept {
    close_sockets();
    for (int* fd : {&stop_fd, &completion_fd, &timer_fd, &epoll_fd}) {
      if (*fd >= 0) {
        ::close(*fd);
        *fd = -1;
      }
    }
  }

  RuntimeStats runtime_snapshot() const noexcept {
    RuntimeStats out;
    out.connections_accepted =
        connections_accepted.load(std::memory_order_relaxed);
    out.connections_active = connections_active.load(std::memory_order_relaxed);
    out.requests_shed = requests_shed.load(std::memory_order_relaxed);
    out.requests_expired = requests_expired.load(std::memory_order_relaxed);
    out.batches_dispatched =
        batches_dispatched.load(std::memory_order_relaxed);
    out.in_flight = in_flight.load(std::memory_order_relaxed);
    out.uptime_seconds =
        std::chrono::duration<double>(Clock::now() - start_time).count();
    out.workers = config.workers;
    out.adaptive = controller.config().adaptive;
    out.controller_ticks = controller_ticks.load(std::memory_order_relaxed);
    for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
      ClassRuntimeStats& cls = out.classes[c];
      cls.budget = class_budget[c].load(std::memory_order_relaxed);
      cls.in_flight = class_in_flight[c].load(std::memory_order_relaxed);
      cls.shed = class_shed[c].load(std::memory_order_relaxed);
      cls.expired = class_expired[c].load(std::memory_order_relaxed);
      cls.retry_after_ms = class_retry_ms[c].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// One monitoring tick (timerfd): read each class's interval metrics
  /// from the cumulative HDR histograms, step the controller, publish the
  /// new budgets and retry hints.  Runs on the event-loop thread only.
  void controller_tick() {
    std::uint64_t expirations = 0;
    (void)::read(timer_fd, &expirations, sizeof expirations);

    std::array<ClassSample, kBudgetClassCount> samples{};
    std::array<Histogram, kBudgetClassCount> latency{};
    for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
      const auto cls = static_cast<BudgetClass>(c);
      const Endpoint endpoint = endpoint_of(cls);
      Metrics::EndpointSnapshot snap = metrics.snapshot(endpoint);
      latency[c] = std::move(snap.latency_us);
      ClassSample& sample = samples[c];
      sample.completed = snap.requests - tick_prev_requests[c];
      const std::uint64_t shed_now =
          class_shed[c].load(std::memory_order_relaxed);
      sample.shed = shed_now - tick_prev_shed[c];
      sample.in_flight = class_in_flight[c].load(std::memory_order_relaxed);
      if (sample.completed > 0) {
        sample.p99_us =
            latency[c].delta_since(tick_prev_latency[c]).quantile(0.99);
      }
      tick_prev_requests[c] = snap.requests;
      tick_prev_shed[c] = shed_now;
    }
    for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
      tick_prev_latency[c] = std::move(latency[c]);
    }

    controller.tick(samples);
    controller_ticks.store(controller.ticks(), std::memory_order_relaxed);
    for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
      const auto cls = static_cast<BudgetClass>(c);
      class_budget[c].store(controller.budget(cls),
                            std::memory_order_relaxed);
      class_retry_ms[c].store(controller.retry_after_ms(cls),
                              std::memory_order_relaxed);
    }
  }

  static Endpoint endpoint_of(BudgetClass cls) noexcept {
    switch (cls) {
      case BudgetClass::kAdmit: return Endpoint::kAdmit;
      case BudgetClass::kAnalyze: return Endpoint::kAnalyze;
      case BudgetClass::kRobustness: return Endpoint::kRobustness;
      case BudgetClass::kSimulate: return Endpoint::kSimulate;
      case BudgetClass::kSession: return Endpoint::kSession;
    }
    return Endpoint::kAdmit;
  }

  // ---- event loop -------------------------------------------------------

  void run() {
    std::vector<epoll_event> events(128);
    while (true) {
      int timeout_ms = -1;
      if (draining) {
        if (drain_complete()) break;
        const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            drain_deadline - Clock::now());
        if (remaining.count() <= 0) break;  // deadline: abandon stragglers
        timeout_ms = static_cast<int>(remaining.count()) + 1;
      }
      const int ready =
          ::epoll_wait(epoll_fd, events.data(),
                       static_cast<int>(events.size()), timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw_errno("epoll_wait");
      }
      for (int i = 0; i < ready; ++i) {
        const std::uint64_t token = events[static_cast<std::size_t>(i)].data.u64;
        const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
        if (token == kListenToken) {
          accept_ready();
        } else if (token == kStopToken) {
          begin_drain();
        } else if (token == kCompletionToken) {
          deliver_completions();
        } else if (token == kTimerToken) {
          controller_tick();
        } else {
          connection_ready(token, mask);
        }
      }
      dispatch_batches();
    }
    close_sockets();
  }

  void begin_drain() {
    // Clear the eventfd either way so a level-triggered epoll does not
    // keep reporting the stop token while the drain runs.
    std::uint64_t counter = 0;
    (void)::read(stop_fd, &counter, sizeof counter);
    if (draining) return;
    draining = true;
    drain_deadline = Clock::now() + std::chrono::milliseconds(
                                        config.drain_timeout_ms > 0
                                            ? config.drain_timeout_ms
                                            : 0);
    if (listen_fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
    }
    // Stop reading everywhere: no new requests, existing ones drain.
    for (auto& [token, conn] : connections) update_interest(*conn);
  }

  [[nodiscard]] bool drain_complete() {
    if (in_flight.load(std::memory_order_acquire) != 0) return false;
    {
      const std::scoped_lock lock(completion_mutex);
      if (!completion_queue.empty()) return false;
    }
    if (!pending_batch.empty()) return false;
    for (const auto& [token, conn] : connections) {
      if (conn->unsent() != 0 || conn->pending != 0) return false;
    }
    return true;
  }

  void accept_ready() {
    while (true) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;  // transient accept failure; the loop must not die
      }
      if (connections.size() >= config.max_connections) {
        // Best-effort refusal; the connection never enters the loop.
        const std::string reply = error_reply("too many connections") + "\n";
        (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const std::uint64_t token = next_token++;
      auto conn = std::make_unique<Connection>(fd, token, config.max_line);
      add_fd(fd, token, EPOLLIN);
      connections.emplace(token, std::move(conn));
      connections_accepted.fetch_add(1, std::memory_order_relaxed);
      connections_active.store(connections.size(), std::memory_order_relaxed);
    }
  }

  void connection_ready(std::uint64_t token, std::uint32_t mask) {
    const auto it = connections.find(token);
    if (it == connections.end()) return;  // closed earlier in this wave
    Connection& conn = *it->second;
    if ((mask & (EPOLLERR | EPOLLHUP)) != 0) {
      close_connection(token);
      return;
    }
    if ((mask & EPOLLOUT) != 0 && !flush(conn)) {
      close_connection(token);
      return;
    }
    if ((mask & EPOLLIN) != 0 && conn.want_read && !read_ready(conn)) {
      close_connection(token);
      return;
    }
    finish_or_rearm(token);
  }

  /// Reads until EAGAIN/EOF, decoding and queueing requests.  Returns
  /// false when the connection is dead (reset).
  bool read_ready(Connection& conn) {
    char buffer[64 * 1024];
    while (true) {
      const ssize_t got = ::recv(conn.fd, buffer, sizeof buffer, 0);
      if (got > 0) {
        conn.decoder.feed({buffer, static_cast<std::size_t>(got)});
        drain_decoded_lines(conn);
        if (static_cast<std::size_t>(got) < sizeof buffer) return true;
        // Backpressure can flip want_read mid-read; honor it immediately.
        if (!conn.want_read) return true;
        continue;
      }
      if (got == 0) {
        conn.read_closed = true;
        return true;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  void drain_decoded_lines(Connection& conn) {
    const trace::Span span(trace::Stage::kServerDecode);
    LineDecoder::Line line;
    while (conn.decoder.next(line)) {
      if (line.oversized) {
        const HandleOutcome out = router.oversized_line();
        metrics.record(out.endpoint, out.error, 0);
        enqueue_ordered(conn, conn.seq_next++, out.reply);
        continue;
      }
      if (line.text.empty()) continue;
      // A line-protocol peer never opens with "GET ": this is a plain
      // HTTP client (curl, a Prometheus scraper).  Serve it raw and
      // close; any trailing header lines still in the decoder are
      // irrelevant once the connection is marked read-closed.
      if (line.text.rfind("GET ", 0) == 0) {
        serve_http_get(conn, line.text);
        break;
      }
      // Load shedding: answer immediately instead of queueing without
      // bound -- the event loop must stay responsive when the pool is
      // saturated.  Two gates: the per-op-class admission budget (adapted
      // by the controller to hold each class's p99 SLO) and the global
      // max_in_flight backstop behind it.  Sheds carry the controller's
      // retry_after_ms hint so well-behaved clients back off for about as
      // long as the congestion will last.
      const RequestPeek peek = peek_request(line.text);
      const auto cls_index = static_cast<std::size_t>(peek.cls);
      const bool over_budget =
          peek.budgeted &&
          class_in_flight[cls_index].load(std::memory_order_relaxed) >=
              controller.budget(peek.cls);
      const bool over_backstop =
          in_flight.load(std::memory_order_relaxed) + pending_batch.size() >=
          config.max_in_flight;
      if (over_budget || over_backstop) {
        requests_shed.fetch_add(1, std::memory_order_relaxed);
        // class_shed (and the class drain-time hint) belong to budget
        // sheds only: the controller reads sample.shed as "this class's
        // budget was binding", so a shed caused purely by the global
        // backstop must not ratchet that class's budget upward.
        int hint = controller.config().interval_ms;
        if (over_budget) {
          class_shed[cls_index].fetch_add(1, std::memory_order_relaxed);
          hint = controller.retry_after_ms(peek.cls);
        }
        enqueue_ordered(conn, conn.seq_next++, overloaded_reply(hint));
        continue;
      }
      if (peek.budgeted) {
        class_in_flight[cls_index].fetch_add(1, std::memory_order_relaxed);
      }
      conn.pending += 1;
      pending_batch.push_back(PendingRequest{conn.token, conn.seq_next++,
                                             std::move(line.text),
                                             Clock::now(), peek.cls,
                                             peek.budgeted, peek.deadline_ms});
    }
    update_interest(conn);
  }

  /// Minimal HTTP scrape path so `curl http://host:port/metrics` works
  /// against the line-protocol port.  Replies HTTP/1.0-style with a
  /// Content-Length and Connection: close, then lets finish_or_rearm tear
  /// the connection down once the response is flushed.
  void serve_http_get(Connection& conn, const std::string& request_line) {
    const auto started = Clock::now();
    // Path = second whitespace-separated token of the request line.
    const std::size_t path_begin = request_line.find_first_not_of(' ', 3);
    const std::size_t path_end = path_begin == std::string::npos
                                     ? std::string::npos
                                     : request_line.find(' ', path_begin);
    const std::string path =
        path_begin == std::string::npos
            ? std::string{}
            : request_line.substr(path_begin, path_end == std::string::npos
                                                  ? std::string::npos
                                                  : path_end - path_begin);
    std::string status;
    std::string content_type;
    std::string body;
    if (path == "/metrics") {
      const trace::Span span(trace::Stage::kRouterMetrics);
      status = "200 OK";
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      body = router.metrics_exposition();
    } else {
      status = "404 Not Found";
      content_type = "text/plain; charset=utf-8";
      body = "only /metrics is served here\n";
    }
    std::string response;
    response.reserve(body.size() + 128);
    response += "HTTP/1.0 ";
    response += status;
    response += "\r\nContent-Type: ";
    response += content_type;
    response += "\r\nContent-Length: ";
    response += std::to_string(body.size());
    response += "\r\nConnection: close\r\n\r\n";
    response += body;
    conn.write_buffer += response;  // raw bytes, no line framing
    conn.read_closed = true;
    const auto micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              started)
            .count());
    metrics.record(path == "/metrics" ? Endpoint::kMetrics
                                      : Endpoint::kMalformed,
                   path != "/metrics", micros);
  }

  /// Posts this wave's decoded requests to the pool in batch_size chunks,
  /// so a burst across many connections fans out over every worker.
  void dispatch_batches() {
    std::size_t begin = 0;
    while (begin < pending_batch.size()) {
      const std::size_t end =
          std::min(pending_batch.size(), begin + config.batch_size);
      std::vector<PendingRequest> chunk(
          std::make_move_iterator(pending_batch.begin() +
                                  static_cast<std::ptrdiff_t>(begin)),
          std::make_move_iterator(pending_batch.begin() +
                                  static_cast<std::ptrdiff_t>(end)));
      begin = end;
      in_flight.fetch_add(chunk.size(), std::memory_order_release);
      batches_dispatched.fetch_add(1, std::memory_order_relaxed);
      pool->post([this, work = std::move(chunk)]() mutable { run_batch(work); });
    }
    pending_batch.clear();
  }

  /// Pool-worker side: handle every request of one batch, then wake the
  /// loop once.  Completions are pushed BEFORE in_flight is decremented so
  /// drain_complete() can never observe 0 with replies still unqueued.
  void run_batch(std::vector<PendingRequest>& work) {
    std::vector<Completion> done;
    done.reserve(work.size());
    for (PendingRequest& request : work) {
      // Deadline-aware shedding: if the client's deadline passed while the
      // request sat in the queue, nobody is waiting for the answer --
      // drop it with a distinct error instead of computing it.  The
      // (queue-wait) latency is still recorded so the controller sees the
      // congestion that caused the expiry.
      if (request.deadline_ms > 0) {
        const auto waited_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - request.enqueued)
                .count();
        if (waited_ms > request.deadline_ms) {
          requests_expired.fetch_add(1, std::memory_order_relaxed);
          const Endpoint endpoint = request.budgeted
                                        ? endpoint_of(request.cls)
                                        : Endpoint::kMalformed;
          metrics.record(endpoint, true,
                         static_cast<std::uint64_t>(waited_ms) * 1000);
          if (request.budgeted) {
            const auto c = static_cast<std::size_t>(request.cls);
            class_expired[c].fetch_add(1, std::memory_order_relaxed);
            class_in_flight[c].fetch_sub(1, std::memory_order_relaxed);
          }
          done.push_back(Completion{request.token, request.seq,
                                    deadline_expired_reply(waited_ms)});
          continue;
        }
      }
      // When tracing, the same two clock reads yield queue wait, compute
      // time and the end-to-end metrics latency -- no extra reads beyond
      // the one Metrics already needs.
      HandleOutcome out;
      Clock::time_point after;
      if (trace::enabled()) {
        const Clock::time_point before = Clock::now();
        trace::record_ns(
            trace::Stage::kServerQueueWait,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    before - request.enqueued)
                    .count()));
        out = router.handle(request.line);
        after = Clock::now();
        trace::record_ns(
            trace::Stage::kServerCompute,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    after - before)
                    .count()));
      } else {
        out = router.handle(request.line);
        after = Clock::now();
      }
      const auto micros = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              after - request.enqueued)
              .count());
      metrics.record(out.endpoint, out.error, micros);
      if (request.budgeted) {
        class_in_flight[static_cast<std::size_t>(request.cls)].fetch_sub(
            1, std::memory_order_relaxed);
      }
      done.push_back(
          Completion{request.token, request.seq, std::move(out.reply)});
    }
    {
      const std::scoped_lock lock(completion_mutex);
      for (Completion& completion : done) {
        completion_queue.push_back(std::move(completion));
      }
    }
    in_flight.fetch_sub(work.size(), std::memory_order_release);
    std::uint64_t one = 1;
    (void)::write(completion_fd, &one, sizeof one);
  }

  void deliver_completions() {
    std::uint64_t counter = 0;
    (void)::read(completion_fd, &counter, sizeof counter);
    std::vector<Completion> ready;
    {
      const std::scoped_lock lock(completion_mutex);
      ready.swap(completion_queue);
    }
    for (Completion& completion : ready) {
      const auto it = connections.find(completion.token);
      if (it == connections.end()) continue;  // connection died meanwhile
      Connection& conn = *it->second;
      if (conn.pending > 0) conn.pending -= 1;
      enqueue_ordered(conn, completion.seq, std::move(completion.reply));
    }
    // Flush + interest updates (and possibly closes) per touched conn.
    for (const Completion& completion : ready) finish_or_rearm(completion.token);
  }

  void enqueue_reply(Connection& conn, const std::string& reply) {
    conn.write_buffer += reply;
    conn.write_buffer.push_back('\n');
  }

  /// Releases `reply` (claiming slot `seq`) strictly in request order: the
  /// reply for the next expected seq goes to the write buffer along with
  /// any consecutive successors parked in held; a reply ahead of a gap
  /// (an earlier request still in the pool) waits in held until the gap
  /// fills.  Both pooled completions and decode-time replies (sheds,
  /// oversized lines) come through here, so a pipelining client can match
  /// replies to requests positionally.
  void enqueue_ordered(Connection& conn, std::uint64_t seq,
                       const std::string& reply) {
    if (seq != conn.deliver_next) {
      conn.held_bytes += reply.size();
      conn.held.emplace(seq, reply);
      return;
    }
    enqueue_reply(conn, reply);
    conn.deliver_next += 1;
    auto next = conn.held.begin();
    while (next != conn.held.end() && next->first == conn.deliver_next) {
      enqueue_reply(conn, next->second);
      conn.held_bytes -= next->second.size();
      conn.deliver_next += 1;
      next = conn.held.erase(next);
    }
  }

  /// Writes as much buffered reply data as the socket takes.  Returns
  /// false when the connection is dead.
  bool flush(Connection& conn) {
    if (conn.unsent() != 0) {
      const trace::Span span(trace::Stage::kServerWrite);
      while (conn.unsent() != 0) {
        const ssize_t sent =
            ::send(conn.fd, conn.write_buffer.data() + conn.write_offset,
                   conn.unsent(), MSG_NOSIGNAL);
        if (sent > 0) {
          conn.write_offset += static_cast<std::size_t>(sent);
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        return false;  // EPIPE / ECONNRESET
      }
    }
    if (conn.write_offset == conn.write_buffer.size()) {
      conn.write_buffer.clear();
      conn.write_offset = 0;
    } else if (conn.write_offset > (1u << 16) &&
               conn.write_offset * 2 > conn.write_buffer.size()) {
      conn.write_buffer.erase(0, conn.write_offset);
      conn.write_offset = 0;
    }
    return true;
  }

  /// Flushes, re-registers interest, and closes once a half-closed
  /// connection has nothing left to say.
  void finish_or_rearm(std::uint64_t token) {
    const auto it = connections.find(token);
    if (it == connections.end()) return;
    Connection& conn = *it->second;
    if (!flush(conn)) {
      close_connection(token);
      return;
    }
    if (conn.read_closed && conn.unsent() == 0 && conn.pending == 0) {
      close_connection(token);
      return;
    }
    update_interest(conn);
  }

  void update_interest(Connection& conn) {
    // Backpressure counts parked ordered replies (held_bytes) along with
    // the flushable tail: both are memory the peer forces us to retain.
    const bool want_read = !draining && !conn.read_closed &&
                           conn.unsent() + conn.held_bytes <
                               config.max_write_buffer;
    const bool want_write = conn.unsent() != 0;
    if (want_read == conn.want_read && want_write == conn.want_write) return;
    conn.want_read = want_read;
    conn.want_write = want_write;
    epoll_event event{};
    event.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    event.data.u64 = conn.token;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &event);
  }

  void close_connection(std::uint64_t token) {
    const auto it = connections.find(token);
    if (it == connections.end()) return;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second->fd, nullptr);
    ::close(it->second->fd);
    connections.erase(it);
    connections_active.store(connections.size(), std::memory_order_relaxed);
  }

  // ---- state ------------------------------------------------------------

  ServerConfig config;
  int listen_fd{-1};
  int stop_fd{-1};
  int completion_fd{-1};
  int timer_fd{-1};
  int epoll_fd{-1};
  std::uint16_t bound_port{0};
  Clock::time_point start_time;

  /// Overload control.  The controller itself is event-loop-thread-only;
  /// the atomic mirrors below are the cross-thread read surface (stats,
  /// metrics exposition) and the worker-side in-flight accounting.
  OverloadController controller;
  std::array<std::atomic<std::size_t>, kBudgetClassCount> class_budget{};
  std::array<std::atomic<std::uint64_t>, kBudgetClassCount> class_in_flight{};
  std::array<std::atomic<std::uint64_t>, kBudgetClassCount> class_shed{};
  std::array<std::atomic<std::uint64_t>, kBudgetClassCount> class_expired{};
  std::array<std::atomic<int>, kBudgetClassCount> class_retry_ms{};
  std::atomic<std::uint64_t> requests_expired{0};
  std::atomic<std::uint64_t> controller_ticks{0};
  /// Previous-tick snapshots (event-loop thread only).
  std::array<Histogram, kBudgetClassCount> tick_prev_latency{};
  std::array<std::uint64_t, kBudgetClassCount> tick_prev_requests{};
  std::array<std::uint64_t, kBudgetClassCount> tick_prev_shed{};

  Metrics metrics;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections;
  std::uint64_t next_token{kFirstConnectionToken};
  std::vector<PendingRequest> pending_batch;

  std::mutex completion_mutex;
  std::vector<Completion> completion_queue;

  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> requests_shed{0};
  std::atomic<std::uint64_t> batches_dispatched{0};
  std::atomic<std::uint64_t> in_flight{0};

  bool draining{false};
  Clock::time_point drain_deadline;

  Router router;
  // Reset FIRST in ~Impl, joining every worker while the router, metrics
  // and completion queue the in-flight batches touch are still alive.
  // (Batches still queued at that point are dropped by the pool.)
  std::unique_ptr<ThreadPool> pool;
};

Server::Server(ServerConfig config) : impl_(std::make_unique<Impl>(std::move(config))) {}

Server::~Server() = default;

std::uint16_t Server::port() const noexcept { return impl_->bound_port; }

void Server::run() { impl_->run(); }

void Server::request_stop() noexcept {
  const int fd = impl_->stop_fd;
  if (fd < 0) return;
  std::uint64_t one = 1;
  (void)::write(fd, &one, sizeof one);
}

const Metrics& Server::metrics() const noexcept { return impl_->metrics; }

RuntimeStats Server::runtime_stats() const noexcept {
  return impl_->runtime_snapshot();
}

const ServerConfig& Server::config() const noexcept { return impl_->config; }

}  // namespace rmts::server
