#include "server/metrics.hpp"

#include <bit>

namespace rmts::server {

std::string_view endpoint_name(Endpoint endpoint) noexcept {
  switch (endpoint) {
    case Endpoint::kAdmit: return "admit";
    case Endpoint::kAnalyze: return "analyze";
    case Endpoint::kRobustness: return "robustness";
    case Endpoint::kSimulate: return "simulate";
    case Endpoint::kStats: return "stats";
    case Endpoint::kMalformed: return "malformed";
  }
  return "unknown";
}

namespace {

/// Bucket b holds latencies in [2^b, 2^(b+1)) us; bucket 0 holds [0, 2).
std::size_t bucket_of(std::uint64_t micros) noexcept {
  if (micros < 2) return 0;
  const auto log2 = static_cast<std::size_t>(std::bit_width(micros) - 1);
  return log2 < Metrics::kBuckets ? log2 : Metrics::kBuckets - 1;
}

}  // namespace

void Metrics::record(Endpoint endpoint, bool error,
                     std::uint64_t micros) noexcept {
  PerEndpoint& e = endpoints_[static_cast<std::size_t>(endpoint)];
  e.requests.fetch_add(1, std::memory_order_relaxed);
  if (error) e.errors.fetch_add(1, std::memory_order_relaxed);
  e.histogram[bucket_of(micros)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = e.max_micros.load(std::memory_order_relaxed);
  while (micros > seen &&
         !e.max_micros.compare_exchange_weak(seen, micros,
                                             std::memory_order_relaxed)) {
  }
}

Metrics::EndpointSnapshot Metrics::snapshot(Endpoint endpoint) const noexcept {
  const PerEndpoint& e = endpoints_[static_cast<std::size_t>(endpoint)];
  EndpointSnapshot out;
  out.requests = e.requests.load(std::memory_order_relaxed);
  out.errors = e.errors.load(std::memory_order_relaxed);
  out.max_micros = e.max_micros.load(std::memory_order_relaxed);

  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    counts[b] = e.histogram[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return out;

  const auto percentile = [&](double p) -> std::uint64_t {
    const auto rank =
        static_cast<std::uint64_t>(p * static_cast<double>(total - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank) return (std::uint64_t{1} << (b + 1)) - 1;
    }
    return out.max_micros;
  };
  out.p50_micros = percentile(0.50);
  out.p90_micros = percentile(0.90);
  out.p99_micros = percentile(0.99);
  return out;
}

std::uint64_t Metrics::total_requests() const noexcept {
  std::uint64_t total = 0;
  for (const PerEndpoint& e : endpoints_) {
    total += e.requests.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace rmts::server
