#include "server/metrics.hpp"

namespace rmts::server {

std::string_view endpoint_name(Endpoint endpoint) noexcept {
  switch (endpoint) {
    case Endpoint::kAdmit: return "admit";
    case Endpoint::kAdmitBatch: return "admit_batch";
    case Endpoint::kAnalyze: return "analyze";
    case Endpoint::kRobustness: return "robustness";
    case Endpoint::kSimulate: return "simulate";
    case Endpoint::kSession: return "session";
    case Endpoint::kStats: return "stats";
    case Endpoint::kMetrics: return "metrics";
    case Endpoint::kMalformed: return "malformed";
  }
  return "unknown";
}

void Metrics::record(Endpoint endpoint, bool error,
                     std::uint64_t micros) noexcept {
  PerEndpoint& e = endpoints_[static_cast<std::size_t>(endpoint)];
  e.requests.fetch_add(1, std::memory_order_relaxed);
  if (error) e.errors.fetch_add(1, std::memory_order_relaxed);
  e.latency_us.record(micros);
}

Metrics::EndpointSnapshot Metrics::snapshot(Endpoint endpoint) const {
  const PerEndpoint& e = endpoints_[static_cast<std::size_t>(endpoint)];
  EndpointSnapshot out;
  out.requests = e.requests.load(std::memory_order_relaxed);
  out.errors = e.errors.load(std::memory_order_relaxed);
  out.latency_us = e.latency_us.snapshot();
  if (out.latency_us.count() == 0) return out;
  out.max_micros = out.latency_us.max();
  out.p50_micros = out.latency_us.quantile(0.50);
  out.p90_micros = out.latency_us.quantile(0.90);
  out.p99_micros = out.latency_us.quantile(0.99);
  out.mean_micros = out.latency_us.mean();
  return out;
}

std::uint64_t Metrics::total_requests() const noexcept {
  std::uint64_t total = 0;
  for (const PerEndpoint& e : endpoints_) {
    total += e.requests.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace rmts::server
