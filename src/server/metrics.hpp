// Per-endpoint service metrics: request/error counters and a concurrent
// log-linear HDR latency histogram (common/histogram.hpp), surfaced by
// the `stats` endpoint (interpolated quantiles) and the `metrics`
// endpoint (Prometheus-style exposition).
//
// record() is called from pool workers on every handled request; all
// counters are relaxed atomics (stats is an observability endpoint, not a
// synchronization point -- a snapshot may be mid-update by a few counts).
// The histogram's relative bucket width is 2^-5 ~ 3.1%, so reported
// percentiles are true interpolated quantiles rather than the old
// power-of-two bucket edges, and max_micros is exact (CAS max loop inside
// AtomicHistogram -- a relaxed store could lose the true max under
// contention).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

#include "common/histogram.hpp"

namespace rmts::server {

/// The service's endpoints plus a bucket for lines that never parsed far
/// enough to name one.
enum class Endpoint : std::uint8_t {
  kAdmit,
  kAdmitBatch,
  kAnalyze,
  kRobustness,
  kSimulate,
  kSession,  ///< all session_* ops (open/admit/depart/rebalance/stats/close)
  kStats,
  kMetrics,
  kMalformed,
};
inline constexpr std::size_t kEndpointCount = 9;

[[nodiscard]] std::string_view endpoint_name(Endpoint endpoint) noexcept;

class Metrics {
 public:
  /// Records one handled request: outcome and end-to-end latency (queue
  /// wait + compute) in microseconds.  Thread-safe, O(1).
  void record(Endpoint endpoint, bool error, std::uint64_t micros) noexcept;

  struct EndpointSnapshot {
    std::uint64_t requests{0};
    std::uint64_t errors{0};
    std::uint64_t max_micros{0};
    /// Interpolated HDR quantiles (error <= latency_us.precision());
    /// 0 when no request was recorded.
    double p50_micros{0.0};
    double p90_micros{0.0};
    double p99_micros{0.0};
    double mean_micros{0.0};
    /// The full merged histogram, for exposition and custom quantiles.
    Histogram latency_us{AtomicHistogram::kSubBits};
  };

  [[nodiscard]] EndpointSnapshot snapshot(Endpoint endpoint) const;

  /// Total requests over all endpoints.
  [[nodiscard]] std::uint64_t total_requests() const noexcept;

 private:
  struct PerEndpoint {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
    AtomicHistogram latency_us;
  };

  std::array<PerEndpoint, kEndpointCount> endpoints_{};
};

}  // namespace rmts::server
