// Per-endpoint service metrics: request/error counters and a lock-free
// log2 latency histogram, surfaced by the `stats` endpoint.
//
// record() is called from pool workers on every handled request; all
// counters are relaxed atomics (stats is an observability endpoint, not a
// synchronization point -- a snapshot may be mid-update by a few counts).
// Latency buckets are powers of two in microseconds, so percentiles are
// exact to within 2x, which is plenty to distinguish a 50 us admit cache
// hit from a 50 ms robustness bisection.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

namespace rmts::server {

/// The service's endpoints plus a bucket for lines that never parsed far
/// enough to name one.
enum class Endpoint : std::uint8_t {
  kAdmit,
  kAnalyze,
  kRobustness,
  kSimulate,
  kStats,
  kMalformed,
};
inline constexpr std::size_t kEndpointCount = 6;

[[nodiscard]] std::string_view endpoint_name(Endpoint endpoint) noexcept;

class Metrics {
 public:
  static constexpr std::size_t kBuckets = 32;

  /// Records one handled request: outcome and end-to-end latency (queue
  /// wait + compute) in microseconds.  Thread-safe.
  void record(Endpoint endpoint, bool error, std::uint64_t micros) noexcept;

  struct EndpointSnapshot {
    std::uint64_t requests{0};
    std::uint64_t errors{0};
    std::uint64_t max_micros{0};
    /// Approximate percentiles from the log2 histogram (upper bucket
    /// bounds); 0 when no request was recorded.
    std::uint64_t p50_micros{0};
    std::uint64_t p90_micros{0};
    std::uint64_t p99_micros{0};
  };

  [[nodiscard]] EndpointSnapshot snapshot(Endpoint endpoint) const noexcept;

  /// Total requests over all endpoints.
  [[nodiscard]] std::uint64_t total_requests() const noexcept;

 private:
  struct PerEndpoint {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> max_micros{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> histogram{};
  };

  std::array<PerEndpoint, kEndpointCount> endpoints_{};
};

}  // namespace rmts::server
