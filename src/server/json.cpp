#include "server/json.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/json.hpp"

namespace rmts::server {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

/// Recursive-descent parser over a string_view.  Depth is capped so a
/// hostile "[[[[..." line cannot blow the stack; every error names the
/// byte offset for the protocol's error replies.
class JsonParser {
 public:
  JsonParser(std::string_view text, std::string& error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_whitespace();
    if (!parse_value(out, 0)) return false;
    skip_whitespace();
    if (pos_ != text_.size()) return fail("trailing garbage");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* what) {
    error_ = std::string(what) + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.string_);
      case 't':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return consume_literal("true");
      case 'f':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return consume_literal("false");
      case 'n':
        out.kind_ = JsonValue::Kind::kNull;
        return consume_literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') return fail("expected member key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (at_end() || peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members_.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items_.push_back(std::move(value));
      skip_whitespace();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          // Surrogate pair: a high surrogate must be followed by \u + low.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return fail("invalid surrogate pair");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: --pos_; return fail("invalid escape");
      }
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        return fail("invalid hex digit");
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    // Integer part: 0 | [1-9][0-9]*
    if (at_end() || peek() < '0' || peek() > '9') return fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (!at_end() && peek() == '.') {
      integral = false;
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') return fail("invalid fraction");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') return fail("invalid exponent");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.kind_ = JsonValue::Kind::kNumber;
    errno = 0;
    out.number_ = std::strtod(token.c_str(), nullptr);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end == token.c_str() + token.size()) {
        out.has_int_ = true;
        out.int_ = parsed;
      }
    }
    return true;
  }

  std::string_view text_;
  std::string& error_;
  std::size_t pos_{0};
};

bool json_parse(std::string_view text, JsonValue& out, std::string& error) {
  out = JsonValue();
  return JsonParser(text, error).parse(out);
}

std::string json_number(double value) {
  if (!(value == value) || value > 1.7976931348623157e308 ||
      value < -1.7976931348623157e308) {
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // Shorten when a 9-digit rendering round-trips visually; %.17g is always
  // correct, just noisy.  Keep it simple: prefer %g when it re-parses.
  char short_buf[32];
  std::snprintf(short_buf, sizeof short_buf, "%g", value);
  if (std::strtod(short_buf, nullptr) == value) return short_buf;
  return buf;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!wrote_value_.empty()) {
    if (wrote_value_.back()) out_.push_back(',');
    wrote_value_.back() = true;
  }
}

void JsonWriter::open(char bracket) {
  separate();
  out_.push_back(bracket);
  wrote_value_.push_back(false);
}

void JsonWriter::close(char bracket) {
  wrote_value_.pop_back();
  out_.push_back(bracket);
}

void JsonWriter::key(std::string_view name) {
  if (wrote_value_.back()) out_.push_back(',');
  wrote_value_.back() = true;
  out_ += json_quote(std::string(name));
  out_.push_back(':');
  after_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  separate();
  out_ += json_quote(std::string(text));
}

void JsonWriter::value(bool flag) {
  separate();
  out_ += flag ? "true" : "false";
}

void JsonWriter::value(double number) {
  separate();
  out_ += json_number(number);
}

void JsonWriter::value(std::int64_t number) {
  separate();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::uint64_t number) {
  separate();
  out_ += std::to_string(number);
}

void JsonWriter::null() {
  separate();
  out_ += "null";
}

void JsonWriter::value(const JsonValue& scalar) {
  switch (scalar.kind()) {
    case JsonValue::Kind::kBool: value(scalar.as_bool()); return;
    case JsonValue::Kind::kNumber:
      if (scalar.is_int()) {
        value(scalar.as_int());
      } else {
        value(scalar.as_double());
      }
      return;
    case JsonValue::Kind::kString: value(scalar.as_string()); return;
    default: null(); return;
  }
}

}  // namespace rmts::server
