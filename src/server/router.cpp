#include "server/router.hpp"

#include <limits>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/robustness.hpp"
#include "bounds/burchard.hpp"
#include "bounds/harmonic.hpp"
#include "bounds/ll_bound.hpp"
#include "bounds/scaled_periods.hpp"
#include "common/error.hpp"
#include "common/trace.hpp"
#include "partition/baselines.hpp"
#include "partition/edf_split.hpp"
#include "partition/rmts.hpp"
#include "partition/rmts_light.hpp"
#include "partition/spa.hpp"
#include "rta/rta.hpp"
#include "server/json.hpp"
#include "server/protocol.hpp"
#include "sim/simulator.hpp"

namespace rmts::server {

namespace {

/// Internal signal for "this request is malformed"; converted into an
/// ok:false reply by handle().  Distinct from rmts::Error so library
/// contract violations (which we also map to ok:false) keep their own
/// messages.
struct ProtocolError {
  std::string message;
};

[[noreturn]] void reject(std::string message) {
  throw ProtocolError{std::move(message)};
}

const JsonValue& require(const JsonValue& request, std::string_view key) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) reject("missing field '" + std::string(key) + "'");
  return *value;
}

std::int64_t require_int(const JsonValue& request, std::string_view key,
                         std::int64_t lo, std::int64_t hi) {
  const JsonValue& value = require(request, key);
  if (!value.is_int()) reject("field '" + std::string(key) + "' must be an integer");
  const std::int64_t parsed = value.as_int();
  if (parsed < lo || parsed > hi) {
    reject("field '" + std::string(key) + "' out of range [" +
           std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return parsed;
}

std::int64_t optional_int(const JsonValue& request, std::string_view key,
                          std::int64_t fallback, std::int64_t lo,
                          std::int64_t hi) {
  if (request.find(key) == nullptr) return fallback;
  return require_int(request, key, lo, hi);
}

double optional_double(const JsonValue& request, std::string_view key,
                       double fallback, double lo, double hi) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_number()) {
    reject("field '" + std::string(key) + "' must be a number");
  }
  const double parsed = value->as_double();
  if (!(parsed >= lo && parsed <= hi)) {
    reject("field '" + std::string(key) + "' out of range");
  }
  return parsed;
}

std::string optional_string(const JsonValue& request, std::string_view key,
                            std::string fallback) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_string()) {
    reject("field '" + std::string(key) + "' must be a string");
  }
  return value->as_string();
}

TaskSet parse_tasks(const JsonValue& request, std::size_t max_tasks) {
  const JsonValue& tasks = require(request, "tasks");
  if (!tasks.is_array()) reject("field 'tasks' must be an array");
  if (tasks.items().empty()) reject("field 'tasks' must not be empty");
  if (tasks.items().size() > max_tasks) {
    reject("too many tasks (limit " + std::to_string(max_tasks) + ")");
  }
  std::vector<std::pair<Time, Time>> pairs;
  pairs.reserve(tasks.items().size());
  for (const JsonValue& entry : tasks.items()) {
    if (!entry.is_array() || entry.items().size() != 2 ||
        !entry.items()[0].is_int() || !entry.items()[1].is_int()) {
      reject("each task must be a [wcet, period] pair of integers");
    }
    pairs.emplace_back(entry.items()[0].as_int(), entry.items()[1].as_int());
  }
  // TaskSet validates 0 < C <= T and throws InvalidTaskError with the
  // offending values; handle() maps that to ok:false.
  return TaskSet::from_pairs(pairs);
}

BoundPtr make_bound(const std::string& name) {
  if (name == "ll") return std::make_shared<LiuLaylandBound>();
  if (name == "hc") return std::make_shared<HarmonicChainBound>();
  if (name == "tbound") return std::make_shared<TBound>();
  if (name == "rbound") return std::make_shared<RBound>();
  if (name == "burchard") return std::make_shared<BurchardBound>();
  reject("unknown bound '" + name + "'");
}

std::shared_ptr<const Partitioner> make_algorithm(const std::string& name,
                                                  const BoundPtr& bound) {
  if (name == "rmts") return std::make_shared<Rmts>(bound);
  if (name == "rmts-light") return std::make_shared<RmtsLight>();
  if (name == "spa1") return std::make_shared<Spa1>();
  if (name == "spa2") return std::make_shared<Spa2>();
  if (name == "prm-ff") {
    return std::make_shared<PartitionedRm>(FitPolicy::kFirstFit,
                                           TaskOrder::kDecreasingUtilization,
                                           Admission::kExactRta);
  }
  if (name == "edf-ts") return std::make_shared<EdfSplit>();
  reject("unknown algorithm '" + name + "'");
}

/// Everything the partition-based endpoints share: task set, M, algorithm
/// and its dispatch policy.
struct PartitionRequest {
  TaskSet tasks;
  std::size_t processors{0};
  std::string algorithm_key;
  std::shared_ptr<const Partitioner> algorithm;
  DispatchPolicy policy{DispatchPolicy::kFixedPriority};
};

PartitionRequest parse_partition_request(const JsonValue& request,
                                         const RouterConfig& config) {
  PartitionRequest out;
  out.tasks = parse_tasks(request, config.max_tasks);
  out.processors = static_cast<std::size_t>(require_int(
      request, "m", 1, static_cast<std::int64_t>(config.max_processors)));
  out.algorithm_key = optional_string(request, "alg", "rmts");
  const std::string bound = optional_string(request, "bound", "hc");
  out.algorithm = make_algorithm(out.algorithm_key, make_bound(bound));
  out.policy = out.algorithm_key == "edf-ts"
                   ? DispatchPolicy::kEarliestDeadlineFirst
                   : DispatchPolicy::kFixedPriority;
  return out;
}

/// Opens the uniform reply prologue {"ok":true,"op":...,"id":...} and
/// leaves the object open for endpoint-specific fields.
void begin_reply(JsonWriter& w, std::string_view op, const JsonValue* id) {
  w.begin_object();
  w.key("ok");
  w.value(true);
  w.key("op");
  w.value(op);
  if (id != nullptr) {
    w.key("id");
    w.value(*id);
  }
}

void write_task_set_summary(JsonWriter& w, const TaskSet& tasks,
                            std::size_t processors) {
  w.key("n");
  w.value(tasks.size());
  w.key("utilization");
  w.value(tasks.total_utilization());
  w.key("normalized_utilization");
  w.value(tasks.normalized_utilization(processors));
}

void write_assignment_summary(JsonWriter& w, const Assignment& assignment) {
  w.key("accepted");
  w.value(assignment.success);
  w.key("splits");
  w.value(assignment.split_task_count());
  w.key("subtasks");
  w.value(assignment.subtask_count());
  w.key("assigned_utilization");
  w.value(assignment.assigned_utilization());
  if (!assignment.unassigned.empty()) {
    w.key("unassigned");
    w.begin_array();
    for (const TaskId id : assignment.unassigned) {
      w.value(static_cast<std::uint64_t>(id));
    }
    w.end_array();
  }
}

void handle_admit(JsonWriter& w, const JsonValue& request,
                  const RouterConfig& config) {
  const PartitionRequest p = parse_partition_request(request, config);
  const Assignment assignment = p.algorithm->partition(p.tasks, p.processors);
  w.key("algorithm");
  w.value(p.algorithm->name());
  write_task_set_summary(w, p.tasks, p.processors);
  if (const auto* rmts = dynamic_cast<const Rmts*>(p.algorithm.get())) {
    w.key("guaranteed_bound");
    w.value(rmts->guaranteed_bound(p.tasks));
  }
  write_assignment_summary(w, assignment);
}

/// Batched admission: one request carrying many task sets, amortizing
/// parse/dispatch/reply framing over the whole probe group (the client
///-side analogue of the SoA kernel's rta_batch_fits, which the admission
/// path under each item's partition() runs on).  Top-level m/alg/bound
/// are defaults each item may override; a bad item yields a per-item
/// ok:false entry without failing its siblings.
void handle_admit_batch(JsonWriter& w, const JsonValue& request,
                        const RouterConfig& config) {
  const JsonValue& items = require(request, "items");
  if (!items.is_array()) reject("field 'items' must be an array");
  if (items.items().empty()) reject("field 'items' must not be empty");
  if (items.items().size() > config.max_batch_items) {
    reject("too many items (limit " + std::to_string(config.max_batch_items) +
           ")");
  }
  const std::int64_t default_m =
      optional_int(request, "m", 0, 1,
                   static_cast<std::int64_t>(config.max_processors));
  const std::string default_alg = optional_string(request, "alg", "rmts");
  const std::string default_bound = optional_string(request, "bound", "hc");

  std::size_t accepted = 0;
  w.key("items");
  w.begin_array();
  for (const JsonValue& item : items.items()) {
    w.begin_object();
    try {
      if (!item.is_object()) reject("each item must be an object");
      const std::int64_t m =
          optional_int(item, "m", default_m, 1,
                       static_cast<std::int64_t>(config.max_processors));
      if (m == 0) reject("missing field 'm' (item or request level)");
      const TaskSet tasks = parse_tasks(item, config.max_tasks);
      const std::string alg = optional_string(item, "alg", default_alg);
      const std::string bound = optional_string(item, "bound", default_bound);
      const std::shared_ptr<const Partitioner> algorithm =
          make_algorithm(alg, make_bound(bound));
      const auto processors = static_cast<std::size_t>(m);
      const Assignment assignment = algorithm->partition(tasks, processors);
      w.key("ok");
      w.value(true);
      w.key("algorithm");
      w.value(algorithm->name());
      write_task_set_summary(w, tasks, processors);
      write_assignment_summary(w, assignment);
      if (assignment.success) ++accepted;
    } catch (const ProtocolError& error) {
      w.key("ok");
      w.value(false);
      w.key("error");
      w.value(error.message);
    } catch (const Error& error) {
      w.key("ok");
      w.value(false);
      w.key("error");
      w.value(std::string_view(error.what()));
    }
    w.end_object();
  }
  w.end_array();
  w.key("accepted_count");
  w.value(accepted);
}

void handle_analyze(JsonWriter& w, const JsonValue& request,
                    const RouterConfig& config) {
  const PartitionRequest p = parse_partition_request(request, config);
  write_task_set_summary(w, p.tasks, p.processors);
  w.key("harmonic");
  w.value(p.tasks.is_harmonic());
  w.key("max_task_utilization");
  w.value(p.tasks.max_utilization());

  // Per-bound utilization thresholds, all evaluated on the ORIGINAL set
  // (re-evaluating on partitions would be unsound -- bounds/bound.hpp).
  w.key("bounds");
  w.begin_object();
  for (const char* name : {"ll", "hc", "tbound", "rbound", "burchard"}) {
    const BoundPtr bound = make_bound(name);
    w.key(bound->name());
    w.value(bound->evaluate(p.tasks));
  }
  w.end_object();
  w.key("light_threshold");
  w.value(light_task_threshold(p.tasks.size()));
  w.key("rmts_cap");
  w.value(rmts_bound_cap(p.tasks.size()));
  w.key("light");
  w.value(p.tasks.all_lighter_than(light_task_threshold(p.tasks.size())));

  // RTA detail of the requested algorithm's partition: every subtask's
  // measured response time against its synthetic deadline.
  const Assignment assignment = p.algorithm->partition(p.tasks, p.processors);
  w.key("rta");
  w.begin_object();
  w.key("algorithm");
  w.value(p.algorithm->name());
  write_assignment_summary(w, assignment);
  if (assignment.success && p.policy == DispatchPolicy::kFixedPriority) {
    w.key("processors");
    w.begin_array();
    for (const ProcessorAssignment& proc : assignment.processors) {
      w.begin_object();
      w.key("utilization");
      w.value(proc.utilization());
      const ProcessorRta rta = analyze_processor(proc.subtasks);
      w.key("subtasks");
      w.begin_array();
      for (std::size_t s = 0; s < proc.subtasks.size(); ++s) {
        const Subtask& subtask = proc.subtasks[s];
        w.begin_object();
        w.key("task");
        w.value(static_cast<std::uint64_t>(subtask.task_id));
        w.key("part");
        w.value(static_cast<std::int64_t>(subtask.part));
        w.key("wcet");
        w.value(subtask.wcet);
        w.key("period");
        w.value(subtask.period);
        w.key("deadline");
        w.value(subtask.deadline);
        w.key("response");
        w.value(s < rta.response.size() ? rta.response[s] : Time{0});
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

void handle_robustness(JsonWriter& w, const JsonValue& request,
                       const RouterConfig& config) {
  const PartitionRequest p = parse_partition_request(request, config);
  RobustnessConfig robustness;
  robustness.horizon_cap = config.sim_horizon_cap;
  robustness.policy = p.policy;
  robustness.fault_seed = static_cast<std::uint64_t>(optional_int(
      request, "fault_seed", 1, 1, std::numeric_limits<std::int64_t>::max()));
  robustness.max_overrun_factor = optional_double(
      request, "max_factor", 4.0, 1.0, config.max_overrun_factor);
  robustness.max_release_jitter = optional_int(
      request, "max_jitter", 0, 0, std::numeric_limits<std::int64_t>::max() / 2);

  const Assignment assignment = p.algorithm->partition(p.tasks, p.processors);
  w.key("algorithm");
  w.value(p.algorithm->name());
  write_task_set_summary(w, p.tasks, p.processors);
  w.key("accepted");
  w.value(assignment.success);
  if (!assignment.success) return;

  const RobustnessReport report =
      analyze_robustness(p.tasks, assignment, robustness);
  w.key("simulated_overrun_margin");
  w.value(report.simulated_overrun_margin);
  w.key("simulated_jitter_margin");
  w.value(report.simulated_jitter_margin);
  w.key("analytic_supported");
  w.value(report.analytic_supported);
  if (report.analytic_supported) {
    w.key("analytic_overrun_margin");
    w.value(report.analytic_overrun_margin);
    w.key("analytic_jitter_margin");
    w.value(report.analytic_jitter_margin);
  }
}

ContainmentPolicy parse_containment(const std::string& name) {
  if (name == "none") return ContainmentPolicy::kNone;
  if (name == "budget") return ContainmentPolicy::kBudgetEnforcement;
  if (name == "demote") return ContainmentPolicy::kPriorityDemotion;
  reject("unknown containment policy '" + name + "'");
}

FaultModel parse_faults(const JsonValue& request) {
  FaultModel faults;
  const JsonValue* spec = request.find("faults");
  if (spec == nullptr) return faults;
  if (!spec->is_object()) reject("field 'faults' must be an object");
  faults.overrun_factor = optional_double(*spec, "factor", 1.0, 0.0, 1e6);
  faults.overrun_ticks = optional_int(*spec, "ticks", 0, 0, 1'000'000'000);
  faults.overrun_probability = optional_double(*spec, "prob", 1.0, 0.0, 1.0);
  faults.release_jitter =
      optional_int(*spec, "jitter", 0, 0, 1'000'000'000'000);
  faults.seed = static_cast<std::uint64_t>(optional_int(
      *spec, "seed", 0, 0, std::numeric_limits<std::int64_t>::max()));
  faults.containment =
      parse_containment(optional_string(*spec, "containment", "none"));
  const std::int64_t fail_proc = optional_int(*spec, "fail_proc", -1, -1,
                                              1'000'000);
  if (fail_proc >= 0) {
    faults.failed_processor = static_cast<std::size_t>(fail_proc);
    faults.failure_time =
        optional_int(*spec, "fail_at", 0, 0, kTimeInfinity / 2);
  }
  return faults;
}

void handle_simulate(JsonWriter& w, const JsonValue& request,
                     const RouterConfig& config) {
  const PartitionRequest p = parse_partition_request(request, config);
  SimConfig sim;
  sim.policy = p.policy;
  sim.faults = parse_faults(request);
  sim.stop_at_first_miss = false;
  const Time cap = optional_int(request, "horizon_cap", config.sim_horizon_cap,
                                1, config.sim_horizon_cap);
  sim.horizon = recommended_horizon(p.tasks, cap);

  const Assignment assignment = p.algorithm->partition(p.tasks, p.processors);
  w.key("algorithm");
  w.value(p.algorithm->name());
  write_task_set_summary(w, p.tasks, p.processors);
  w.key("accepted");
  w.value(assignment.success);
  if (!assignment.success) return;

  // One workspace per worker thread: repeated simulate requests on a
  // connection reuse it allocation-free (the PR 3 hot path).
  thread_local SimWorkspace workspace;
  const SimResult& run = simulate(p.tasks, assignment, sim, workspace);
  w.key("schedulable");
  w.value(run.schedulable);
  w.key("simulated_until");
  w.value(run.simulated_until);
  w.key("events");
  w.value(run.events);
  w.key("jobs_released");
  w.value(run.jobs_released);
  w.key("jobs_completed");
  w.value(run.jobs_completed);
  w.key("preemptions");
  w.value(run.preemptions);
  w.key("migrations");
  w.value(run.migrations);
  w.key("misses");
  w.value(run.misses.size());
  if (!run.misses.empty()) {
    constexpr std::size_t kMaxEchoedMisses = 8;
    w.key("first_misses");
    w.begin_array();
    for (std::size_t i = 0; i < run.misses.size() && i < kMaxEchoedMisses; ++i) {
      w.begin_object();
      w.key("task");
      w.value(static_cast<std::uint64_t>(run.misses[i].task));
      w.key("release");
      w.value(run.misses[i].release);
      w.key("deadline");
      w.value(run.misses[i].deadline);
      w.end_object();
    }
    w.end_array();
  }
  if (sim.faults.active()) {
    w.key("degraded");
    w.value(run.jobs_degraded);
    w.key("aborted");
    w.value(run.jobs_aborted);
    w.key("demoted");
    w.value(run.jobs_demoted);
    w.key("orphaned");
    w.value(run.subtasks_orphaned);
  }
}

// ------------------------------------------------- online sessions ------
//
// The session_* ops expose src/online/ over the wire: a session_open
// creates a long-lived PartitionSession in the router's registry; admit /
// depart / rebalance mutate it under its per-session mutex.  Rejections
// ("no placement passes exact RTA", unknown ticket) are normal ok:true
// replies, mirroring the batch admit's accepted:false philosophy; only
// unparseable requests and unknown session ids are errors.

online::SessionConfig parse_session_config(const JsonValue& request,
                                           const RouterConfig& config) {
  online::SessionConfig session;
  session.processors = static_cast<std::size_t>(
      require_int(request, "m", 1,
                  static_cast<std::int64_t>(config.max_session_processors)));
  const JsonValue* split = request.find("split");
  if (split != nullptr) {
    if (!split->is_bool()) reject("field 'split' must be a boolean");
    session.allow_splitting = split->as_bool();
  }
  session.split_granularity =
      optional_int(request, "granularity", 1, 1, 1'000'000'000);
  session.rebalance_every = static_cast<std::size_t>(
      optional_int(request, "rebalance_every", 16, 0, 1'000'000));
  session.max_migrations_per_round = static_cast<std::size_t>(
      optional_int(request, "max_migrations", 4, 0, 1'000'000));
  session.hysteresis = optional_double(request, "hysteresis", 0.10, 0.0, 1.0);
  session.max_resident = static_cast<std::size_t>(optional_int(
      request, "max_resident",
      static_cast<std::int64_t>(config.max_session_residents), 1,
      static_cast<std::int64_t>(config.max_session_residents)));
  return session;
}

void handle_session_open(JsonWriter& w, const JsonValue& request,
                         const RouterConfig& config,
                         online::SessionRegistry& sessions) {
  const online::SessionConfig session = parse_session_config(request, config);
  const online::SessionId id = sessions.open(session);
  if (id == 0) {
    reject("too many open sessions (limit " +
           std::to_string(config.max_sessions) + ")");
  }
  w.key("session");
  w.value(id);
  w.key("processors");
  w.value(session.processors);
  w.key("max_resident");
  w.value(session.max_resident);
}

/// Locks the session named by the request's required `session` field;
/// rejects when the id is unknown (or already closed).
online::SessionRegistry::Handle lock_session(
    const JsonValue& request, const online::SessionRegistry& sessions) {
  const std::int64_t id = require_int(
      request, "session", 1, std::numeric_limits<std::int64_t>::max());
  online::SessionRegistry::Handle handle =
      sessions.lock(static_cast<online::SessionId>(id));
  if (!handle) reject("unknown session " + std::to_string(id));
  return handle;
}

void handle_session_admit(JsonWriter& w, const JsonValue& request,
                          const online::SessionRegistry& sessions) {
  const std::int64_t wcet =
      require_int(request, "wcet", 1, online::PartitionSession::kMaxPeriod);
  const std::int64_t period =
      require_int(request, "period", 1, online::PartitionSession::kMaxPeriod);
  const online::SessionRegistry::Handle handle =
      lock_session(request, sessions);
  const online::AdmitResult result = handle.session().admit(wcet, period);
  w.key("accepted");
  w.value(result.admitted);
  if (result.admitted) {
    w.key("ticket");
    w.value(result.ticket);
    w.key("parts");
    w.value(result.parts);
  } else {
    w.key("reason");
    w.value(result.reason);
  }
}

void handle_session_depart(JsonWriter& w, const JsonValue& request,
                           const online::SessionRegistry& sessions) {
  const std::int64_t ticket = require_int(
      request, "ticket", 1, std::numeric_limits<std::int64_t>::max());
  const online::SessionRegistry::Handle handle =
      lock_session(request, sessions);
  const bool departed =
      handle.session().depart(static_cast<online::Ticket>(ticket));
  w.key("departed");
  w.value(departed);
}

void handle_session_rebalance(JsonWriter& w, const JsonValue& request,
                              const online::SessionRegistry& sessions) {
  const online::SessionRegistry::Handle handle =
      lock_session(request, sessions);
  w.key("migrations");
  w.value(handle.session().rebalance());
}

void write_session_stats(JsonWriter& w, const online::SessionStats& stats) {
  w.key("processors");
  w.value(stats.processors);
  w.key("resident_tasks");
  w.value(stats.resident_tasks);
  w.key("resident_subtasks");
  w.value(stats.resident_subtasks);
  w.key("split_residents");
  w.value(stats.split_residents);
  w.key("admits");
  w.value(stats.admits_total);
  w.key("rejects");
  w.value(stats.rejects_total);
  w.key("departs");
  w.value(stats.departs_total);
  w.key("migrations");
  w.value(stats.migrations_total);
  w.key("rebalance_rounds");
  w.value(stats.rebalance_rounds_total);
  w.key("utilization");
  w.value(stats.utilization);
  w.key("normalized_utilization");
  w.value(stats.normalized_utilization);
  w.key("min_processor_utilization");
  w.value(stats.min_processor_utilization);
  w.key("max_processor_utilization");
  w.value(stats.max_processor_utilization);
}

void handle_session_stats(JsonWriter& w, const JsonValue& request,
                          const online::SessionRegistry& sessions) {
  const online::SessionRegistry::Handle handle =
      lock_session(request, sessions);
  write_session_stats(w, handle.session().stats());
}

void handle_session_close(JsonWriter& w, const JsonValue& request,
                          online::SessionRegistry& sessions) {
  const std::int64_t id = require_int(
      request, "session", 1, std::numeric_limits<std::int64_t>::max());
  w.key("closed");
  w.value(sessions.close(static_cast<online::SessionId>(id)));
}

void write_endpoint_stats(JsonWriter& w, const Metrics& metrics,
                          Endpoint endpoint) {
  const Metrics::EndpointSnapshot snap = metrics.snapshot(endpoint);
  w.key(endpoint_name(endpoint));
  w.begin_object();
  w.key("requests");
  w.value(snap.requests);
  w.key("errors");
  w.value(snap.errors);
  w.key("p50_us");
  w.value(snap.p50_micros);
  w.key("p90_us");
  w.value(snap.p90_micros);
  w.key("p99_us");
  w.value(snap.p99_micros);
  w.key("mean_us");
  w.value(snap.mean_micros);
  w.key("max_us");
  w.value(snap.max_micros);
  w.end_object();
}

/// Live overload-control state: the adaptive flag, tick count and every
/// budgeted class's budget / in-flight / shed / expired / retry hint.
void write_overload_stats(JsonWriter& w, const RuntimeStats& runtime) {
  w.key("overload");
  w.begin_object();
  w.key("adaptive");
  w.value(runtime.adaptive);
  w.key("controller_ticks");
  w.value(runtime.controller_ticks);
  w.key("requests_expired");
  w.value(runtime.requests_expired);
  w.key("classes");
  w.begin_object();
  for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
    const ClassRuntimeStats& cls = runtime.classes[c];
    w.key(budget_class_name(static_cast<BudgetClass>(c)));
    w.begin_object();
    w.key("budget");
    w.value(static_cast<std::uint64_t>(cls.budget));
    w.key("in_flight");
    w.value(cls.in_flight);
    w.key("shed");
    w.value(cls.shed);
    w.key("expired");
    w.value(cls.expired);
    w.key("retry_after_ms");
    w.value(cls.retry_after_ms);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

/// Cross-layer stage timers and counters, appended to the stats reply
/// when the tracing layer is compiled in (common/trace.hpp).
void write_trace_stats(JsonWriter& w) {
  w.key("tracing");
  w.value(trace::compiled_in() && trace::enabled());
  if (!trace::compiled_in()) return;
  const trace::Snapshot snap = trace::snapshot();
  w.key("stages");
  w.begin_object();
  for (std::size_t s = 0; s < trace::kStageCount; ++s) {
    const trace::StageSnapshot& stage = snap.stages[s];
    if (stage.count == 0) continue;
    w.key(trace::stage_name(static_cast<trace::Stage>(s)));
    w.begin_object();
    w.key("count");
    w.value(stage.count);
    w.key("total_us");
    w.value(static_cast<double>(stage.total_ns) / 1000.0);
    w.key("mean_us");
    w.value(stage.mean_ns() / 1000.0);
    w.key("p50_us");
    w.value(stage.latency_ns.quantile(0.50) / 1000.0);
    w.key("p99_us");
    w.value(stage.latency_ns.quantile(0.99) / 1000.0);
    w.key("max_us");
    w.value(static_cast<double>(stage.max_ns) / 1000.0);
    w.end_object();
  }
  w.end_object();
  w.key("counters");
  w.begin_object();
  for (std::size_t c = 0; c < trace::kCounterCount; ++c) {
    w.key(trace::counter_name(static_cast<trace::Counter>(c)));
    w.value(snap.counters[c]);
  }
  w.end_object();
}

/// The trace stage timing each op's compute; kMalformed never reaches the
/// handler switch.
trace::Stage stage_of(Endpoint endpoint) noexcept {
  switch (endpoint) {
    case Endpoint::kAdmit: return trace::Stage::kRouterAdmit;
    case Endpoint::kAdmitBatch: return trace::Stage::kRouterAdmit;
    case Endpoint::kAnalyze: return trace::Stage::kRouterAnalyze;
    case Endpoint::kRobustness: return trace::Stage::kRouterRobustness;
    case Endpoint::kSimulate: return trace::Stage::kRouterSimulate;
    case Endpoint::kSession: return trace::Stage::kRouterSession;
    case Endpoint::kStats: return trace::Stage::kRouterStats;
    case Endpoint::kMetrics: return trace::Stage::kRouterMetrics;
    case Endpoint::kMalformed: break;
  }
  return trace::Stage::kRouterStats;
}

// ------------------------------------------------- text exposition ------

/// Prometheus floats: integral values print bare, others via json_number
/// (shortest round-trip decimal; never inf/nan here).
std::string prom_number(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  return json_number(value);
}

void expose_endpoints(std::ostringstream& out, const Metrics& metrics) {
  out << "# TYPE rmts_requests_total counter\n";
  for (std::size_t e = 0; e < kEndpointCount; ++e) {
    const auto endpoint = static_cast<Endpoint>(e);
    const Metrics::EndpointSnapshot snap = metrics.snapshot(endpoint);
    out << "rmts_requests_total{endpoint=\"" << endpoint_name(endpoint)
        << "\"} " << snap.requests << '\n';
  }
  out << "# TYPE rmts_request_errors_total counter\n";
  for (std::size_t e = 0; e < kEndpointCount; ++e) {
    const auto endpoint = static_cast<Endpoint>(e);
    const Metrics::EndpointSnapshot snap = metrics.snapshot(endpoint);
    out << "rmts_request_errors_total{endpoint=\"" << endpoint_name(endpoint)
        << "\"} " << snap.errors << '\n';
  }
  // Sparse HDR histogram: only non-empty buckets are emitted (cumulative,
  // as Prometheus `le` semantics require), plus the mandatory +Inf.
  out << "# TYPE rmts_request_latency_us histogram\n";
  for (std::size_t e = 0; e < kEndpointCount; ++e) {
    const auto endpoint = static_cast<Endpoint>(e);
    const Metrics::EndpointSnapshot snap = metrics.snapshot(endpoint);
    if (snap.requests == 0) continue;
    const std::string label{endpoint_name(endpoint)};
    for (const Histogram::Bucket& bucket : snap.latency_us.nonzero_buckets()) {
      out << "rmts_request_latency_us_bucket{endpoint=\"" << label
          << "\",le=\"" << bucket.upper << "\"} " << bucket.cumulative << '\n';
    }
    out << "rmts_request_latency_us_bucket{endpoint=\"" << label
        << "\",le=\"+Inf\"} " << snap.latency_us.count() << '\n';
    out << "rmts_request_latency_us_sum{endpoint=\"" << label << "\"} "
        << snap.latency_us.sum() << '\n';
    out << "rmts_request_latency_us_count{endpoint=\"" << label << "\"} "
        << snap.latency_us.count() << '\n';
  }
}

void expose_runtime(std::ostringstream& out, const RuntimeStats& runtime) {
  out << "# TYPE rmts_uptime_seconds gauge\n"
      << "rmts_uptime_seconds " << prom_number(runtime.uptime_seconds) << '\n'
      << "# TYPE rmts_workers gauge\n"
      << "rmts_workers " << runtime.workers << '\n'
      << "# TYPE rmts_connections_accepted_total counter\n"
      << "rmts_connections_accepted_total " << runtime.connections_accepted
      << '\n'
      << "# TYPE rmts_connections_active gauge\n"
      << "rmts_connections_active " << runtime.connections_active << '\n'
      << "# TYPE rmts_requests_shed_total counter\n"
      << "rmts_requests_shed_total " << runtime.requests_shed << '\n'
      << "# TYPE rmts_requests_expired_total counter\n"
      << "rmts_requests_expired_total " << runtime.requests_expired << '\n'
      << "# TYPE rmts_batches_dispatched_total counter\n"
      << "rmts_batches_dispatched_total " << runtime.batches_dispatched << '\n'
      << "# TYPE rmts_requests_in_flight gauge\n"
      << "rmts_requests_in_flight " << runtime.in_flight << '\n';

  // Overload-control surface: live budgets and per-class counters, so a
  // dashboard can watch the controller breathe in production.
  out << "# TYPE rmts_overload_adaptive gauge\n"
      << "rmts_overload_adaptive " << (runtime.adaptive ? 1 : 0) << '\n'
      << "# TYPE rmts_overload_controller_ticks_total counter\n"
      << "rmts_overload_controller_ticks_total " << runtime.controller_ticks
      << '\n';
  out << "# TYPE rmts_class_budget gauge\n";
  for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
    out << "rmts_class_budget{class=\""
        << budget_class_name(static_cast<BudgetClass>(c)) << "\"} "
        << runtime.classes[c].budget << '\n';
  }
  out << "# TYPE rmts_class_in_flight gauge\n";
  for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
    out << "rmts_class_in_flight{class=\""
        << budget_class_name(static_cast<BudgetClass>(c)) << "\"} "
        << runtime.classes[c].in_flight << '\n';
  }
  out << "# TYPE rmts_class_shed_total counter\n";
  for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
    out << "rmts_class_shed_total{class=\""
        << budget_class_name(static_cast<BudgetClass>(c)) << "\"} "
        << runtime.classes[c].shed << '\n';
  }
  out << "# TYPE rmts_class_expired_total counter\n";
  for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
    out << "rmts_class_expired_total{class=\""
        << budget_class_name(static_cast<BudgetClass>(c)) << "\"} "
        << runtime.classes[c].expired << '\n';
  }
  out << "# TYPE rmts_class_retry_after_ms gauge\n";
  for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
    out << "rmts_class_retry_after_ms{class=\""
        << budget_class_name(static_cast<BudgetClass>(c)) << "\"} "
        << runtime.classes[c].retry_after_ms << '\n';
  }
}

/// Online-session gauges: per-session resident tasks / utilization /
/// migrations (labelled by session id) plus aggregate op totals.  The
/// aggregates come from the registry's RegistryTotals, which fold in
/// closed sessions, so the `_total` series are monotone; the per-session
/// labelled series simply disappear when their session closes.
void expose_sessions(
    std::ostringstream& out,
    const std::vector<std::pair<online::SessionId, online::SessionStats>>&
        rows,
    const online::RegistryTotals& totals) {
  out << "# TYPE rmts_sessions_open gauge\n"
      << "rmts_sessions_open " << rows.size() << '\n';
  out << "# TYPE rmts_session_resident_tasks gauge\n";
  for (const auto& [sid, stats] : rows) {
    out << "rmts_session_resident_tasks{session=\"" << sid << "\"} "
        << stats.resident_tasks << '\n';
  }
  out << "# TYPE rmts_session_utilization gauge\n";
  for (const auto& [sid, stats] : rows) {
    out << "rmts_session_utilization{session=\"" << sid << "\"} "
        << prom_number(stats.utilization) << '\n';
  }
  out << "# TYPE rmts_session_migrations_total counter\n";
  for (const auto& [sid, stats] : rows) {
    out << "rmts_session_migrations_total{session=\"" << sid << "\"} "
        << stats.migrations_total << '\n';
  }
  out << "# TYPE rmts_session_admits_total counter\n"
      << "rmts_session_admits_total " << totals.admits_total << '\n'
      << "# TYPE rmts_session_rejects_total counter\n"
      << "rmts_session_rejects_total " << totals.rejects_total << '\n'
      << "# TYPE rmts_session_departs_total counter\n"
      << "rmts_session_departs_total " << totals.departs_total << '\n';
}

void expose_trace(std::ostringstream& out) {
  if (!trace::compiled_in()) return;
  const trace::Snapshot snap = trace::snapshot();
  out << "# TYPE rmts_trace_events_total counter\n";
  for (std::size_t c = 0; c < trace::kCounterCount; ++c) {
    out << "rmts_trace_events_total{counter=\""
        << trace::counter_name(static_cast<trace::Counter>(c)) << "\"} "
        << snap.counters[c] << '\n';
  }
  const std::uint64_t posted =
      snap.counter(trace::Counter::kPoolTasksPosted);
  const std::uint64_t started =
      snap.counter(trace::Counter::kPoolTasksStarted);
  out << "# TYPE rmts_pool_queue_depth gauge\n"
      << "rmts_pool_queue_depth " << (posted > started ? posted - started : 0)
      << '\n';
  // Per-stage latency as a summary (count/sum plus key quantiles); the
  // full per-stage HDR buckets would multiply the payload ~16x for little
  // scrape value.
  out << "# TYPE rmts_stage_latency_ns summary\n";
  for (std::size_t s = 0; s < trace::kStageCount; ++s) {
    const trace::StageSnapshot& stage = snap.stages[s];
    if (stage.count == 0) continue;
    const std::string_view name =
        trace::stage_name(static_cast<trace::Stage>(s));
    for (const double q : {0.5, 0.9, 0.99}) {
      out << "rmts_stage_latency_ns{stage=\"" << name << "\",quantile=\""
          << prom_number(q) << "\"} "
          << prom_number(stage.latency_ns.quantile(q)) << '\n';
    }
    out << "rmts_stage_latency_ns_sum{stage=\"" << name << "\"} "
        << stage.total_ns << '\n';
    out << "rmts_stage_latency_ns_count{stage=\"" << name << "\"} "
        << stage.count << '\n';
  }
}

}  // namespace

Router::Router(RouterConfig config, const Metrics& metrics,
               std::function<RuntimeStats()> runtime)
    : config_(config),
      metrics_(metrics),
      runtime_(std::move(runtime)),
      sessions_(online::RegistryConfig{config.max_sessions}) {}

HandleOutcome Router::handle(std::string_view line) const {
  JsonValue request;
  std::string parse_error;
  if (!json_parse(line, request, parse_error)) {
    return {error_reply("parse: " + parse_error), Endpoint::kMalformed, true};
  }
  if (!request.is_object()) {
    return {error_reply("request must be a JSON object"), Endpoint::kMalformed,
            true};
  }
  const JsonValue* op_field = request.find("op");
  if (op_field == nullptr || !op_field->is_string()) {
    return {error_reply("missing string field 'op'"), Endpoint::kMalformed,
            true};
  }
  const std::string& op = op_field->as_string();
  const JsonValue* id = request.find("id");

  Endpoint endpoint;
  if (op == "admit") {
    endpoint = Endpoint::kAdmit;
  } else if (op == "admit_batch") {
    endpoint = Endpoint::kAdmitBatch;
  } else if (op == "analyze") {
    endpoint = Endpoint::kAnalyze;
  } else if (op == "robustness") {
    endpoint = Endpoint::kRobustness;
  } else if (op == "simulate") {
    endpoint = Endpoint::kSimulate;
  } else if (op == "session_open" || op == "session_admit" ||
             op == "session_depart" || op == "session_rebalance" ||
             op == "session_stats" || op == "session_close") {
    endpoint = Endpoint::kSession;
  } else if (op == "stats") {
    endpoint = Endpoint::kStats;
  } else if (op == "metrics") {
    endpoint = Endpoint::kMetrics;
  } else {
    return {error_reply("unknown op '" + op + "'"), Endpoint::kMalformed, true};
  }

  const auto fail = [&](const std::string& message) {
    JsonWriter w;
    w.begin_object();
    w.key("ok");
    w.value(false);
    w.key("op");
    w.value(op);
    if (id != nullptr) {
      w.key("id");
      w.value(*id);
    }
    w.key("error");
    w.value(message);
    w.end_object();
    return HandleOutcome{w.str(), endpoint, true};
  };

  try {
    const trace::Span span(stage_of(endpoint));
    JsonWriter w;
    begin_reply(w, op, id);
    switch (endpoint) {
      case Endpoint::kAdmit: handle_admit(w, request, config_); break;
      case Endpoint::kAdmitBatch:
        handle_admit_batch(w, request, config_);
        break;
      case Endpoint::kAnalyze: handle_analyze(w, request, config_); break;
      case Endpoint::kRobustness: handle_robustness(w, request, config_); break;
      case Endpoint::kSimulate: handle_simulate(w, request, config_); break;
      case Endpoint::kSession: {
        if (op == "session_open") {
          handle_session_open(w, request, config_, sessions_);
        } else if (op == "session_admit") {
          handle_session_admit(w, request, sessions_);
        } else if (op == "session_depart") {
          handle_session_depart(w, request, sessions_);
        } else if (op == "session_rebalance") {
          handle_session_rebalance(w, request, sessions_);
        } else if (op == "session_stats") {
          handle_session_stats(w, request, sessions_);
        } else {
          handle_session_close(w, request, sessions_);
        }
        break;
      }
      case Endpoint::kStats: {
        if (runtime_) {
          const RuntimeStats runtime = runtime_();
          w.key("uptime_seconds");
          w.value(runtime.uptime_seconds);
          w.key("workers");
          w.value(runtime.workers);
          w.key("connections_accepted");
          w.value(runtime.connections_accepted);
          w.key("connections_active");
          w.value(runtime.connections_active);
          w.key("requests_shed");
          w.value(runtime.requests_shed);
          w.key("batches_dispatched");
          w.value(runtime.batches_dispatched);
          w.key("in_flight");
          w.value(runtime.in_flight);
          write_overload_stats(w, runtime);
        }
        // Online sessions: one aggregate block (lifetime counters fold
        // in closed sessions; resident_tasks is a live gauge) plus a
        // per-session table of each live session's full stats.
        {
          const auto rows = sessions_.all_stats();
          const online::RegistryTotals totals = sessions_.totals();
          w.key("sessions");
          w.begin_object();
          w.key("open");
          w.value(rows.size());
          w.key("resident_tasks");
          w.value(totals.resident_tasks);
          w.key("admits");
          w.value(totals.admits_total);
          w.key("rejects");
          w.value(totals.rejects_total);
          w.key("departs");
          w.value(totals.departs_total);
          w.key("migrations");
          w.value(totals.migrations_total);
          w.key("per_session");
          w.begin_array();
          for (const auto& [sid, stats] : rows) {
            w.begin_object();
            w.key("session");
            w.value(sid);
            write_session_stats(w, stats);
            w.end_object();
          }
          w.end_array();
          w.end_object();
        }
        w.key("requests_total");
        w.value(metrics_.total_requests());
        w.key("endpoints");
        w.begin_object();
        for (std::size_t e = 0; e < kEndpointCount; ++e) {
          write_endpoint_stats(w, metrics_, static_cast<Endpoint>(e));
        }
        w.end_object();
        write_trace_stats(w);
        break;
      }
      case Endpoint::kMetrics: {
        w.key("content_type");
        w.value("text/plain; version=0.0.4");
        w.key("text");
        w.value(metrics_exposition());
        break;
      }
      case Endpoint::kMalformed: break;  // unreachable
    }
    w.end_object();
    return {w.str(), endpoint, false};
  } catch (const ProtocolError& error) {
    return fail(error.message);
  } catch (const Error& error) {
    // Library contract violations (invalid task parameters, malformed
    // fault models) -- expected for hostile inputs, reported verbatim.
    return fail(error.what());
  }
}

std::string Router::metrics_exposition() const {
  std::ostringstream out;
  expose_endpoints(out, metrics_);
  if (runtime_) expose_runtime(out, runtime_());
  expose_sessions(out, sessions_.all_stats(), sessions_.totals());
  expose_trace(out);
  return out.str();
}

HandleOutcome Router::oversized_line() const {
  return {error_reply("line too long"), Endpoint::kMalformed, true};
}

}  // namespace rmts::server
