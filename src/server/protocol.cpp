#include "server/protocol.hpp"

#include <cstdint>
#include <utility>

#include "server/json.hpp"

namespace rmts::server {

void LineDecoder::feed(std::string_view data) {
  for (const char c : data) {
    if (c == '\n') {
      if (discarding_) {
        // Tail of an oversized line: the error was already reported when
        // the cap was hit; just resynchronize.
        discarding_ = false;
      } else {
        if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
        ++decoded_;
        ready_.push_back(Line{std::move(partial_), false});
        partial_.clear();
      }
      continue;
    }
    if (discarding_) continue;
    if (partial_.size() >= max_line_) {
      partial_.clear();
      discarding_ = true;
      ++decoded_;
      ready_.push_back(Line{{}, true});
      continue;
    }
    partial_.push_back(c);
  }
}

bool LineDecoder::next(Line& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

std::string error_reply(std::string_view message) {
  JsonWriter w;
  w.begin_object();
  w.key("ok");
  w.value(false);
  w.key("error");
  w.value(message);
  w.end_object();
  return w.str();
}

}  // namespace rmts::server
