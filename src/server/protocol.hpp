// Wire protocol of the admission-control service: newline-delimited JSON.
//
// Every request is one JSON object on one line; every reply is one JSON
// object on one line.  Replies always carry "ok" (bool); failures add
// "error" (string).  Successful replies echo the request's "op" and, when
// present, its scalar "id" (so clients can pipeline).
//
// Requests (fields beyond "op" and "id"):
//   admit      m, tasks, [alg], [bound], [deadline_ms]
//   analyze    m, tasks, [alg], [bound], [deadline_ms]
//   robustness m, tasks, [alg], [bound], [max_factor], [fault_seed],
//              [deadline_ms]
//   simulate   m, tasks, [alg], [bound], [horizon_cap], [faults{...}],
//              [deadline_ms]
//   stats      (none)
// where
//   m      processors (int >= 1),
//   tasks  [[wcet, period], ...] in ticks (ints; RM order is derived),
//   alg    "rmts" | "rmts-light" | "spa1" | "spa2" | "prm-ff" | "edf-ts",
//   bound  "ll" | "hc" | "tbound" | "rbound" | "burchard",
//   faults {factor, ticks, prob, jitter, seed, containment
//           ("none"|"budget"|"demote"), fail_proc, fail_at},
//   deadline_ms  the client's patience budget, measured from arrival: a
//           request still queued past it is dropped with
//           {"ok":false,"error":"deadline_expired","waited_ms":...}
//           instead of computed (0 / absent = wait forever).
//
// Overload: when an op class is over its admission budget (DESIGN.md §8)
// the server replies {"ok":false,"error":"overloaded","retry_after_ms":N}
// without queueing the request; N estimates the backlog drain time, and
// Client::request_with_retry honours it.  Pipelined replies leave each
// connection strictly in request order -- sheds and expiries included --
// so clients may match replies to requests positionally.
//
// This header owns the framing layer: LineDecoder turns a TCP byte stream
// into complete lines under a hard length cap, so a peer that never sends
// a newline (or sends a gigabyte-long one) costs bounded memory and gets
// an explicit "line too long" error instead of stalling the server.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>

namespace rmts::server {

/// Default per-line cap: generous for real task sets (a 1024-task request
/// is ~20 KB) while bounding per-connection memory.
inline constexpr std::size_t kDefaultMaxLine = 1 << 20;

/// Incremental newline framing with a length cap.
///
/// feed() appends raw bytes; next() yields complete lines in arrival
/// order, with the trailing '\n' (and an optional '\r' before it)
/// stripped.  A line whose length exceeds `max_line` is reported ONCE as
/// an oversized Line the moment the cap is hit -- not when (if ever) its
/// newline arrives -- and the remainder of that line is discarded as it
/// streams in, so buffered() never exceeds max_line.
class LineDecoder {
 public:
  explicit LineDecoder(std::size_t max_line = kDefaultMaxLine)
      : max_line_(max_line) {}

  struct Line {
    std::string text;
    bool oversized{false};
  };

  /// Appends bytes read from the wire.
  void feed(std::string_view data);

  /// Pops the next complete line; false when none is buffered.
  bool next(Line& out);

  /// Bytes held for the current (incomplete) line.
  [[nodiscard]] std::size_t buffered() const noexcept { return partial_.size(); }

  /// Complete lines decoded so far (oversized markers included).
  [[nodiscard]] std::uint64_t lines_decoded() const noexcept { return decoded_; }

 private:
  std::size_t max_line_;
  std::string partial_;
  bool discarding_{false};
  std::deque<Line> ready_;
  std::uint64_t decoded_{0};
};

/// Renders the uniform error reply {"ok":false,"error":...} (no trailing
/// newline; the transport appends it).
[[nodiscard]] std::string error_reply(std::string_view message);

}  // namespace rmts::server
