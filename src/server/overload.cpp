#include "server/overload.hpp"

#include <algorithm>
#include <cmath>

#include "server/json.hpp"

namespace rmts::server {

namespace {

/// Skips JSON whitespace from `pos`; returns the first non-ws index (or
/// text.size()).
std::size_t skip_ws(std::string_view text, std::size_t pos) noexcept {
  while (pos < text.size() &&
         (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r' ||
          text[pos] == '\n')) {
    ++pos;
  }
  return pos;
}

/// After a key, expects `:` then the start of the value; npos on mismatch.
std::size_t skip_colon(std::string_view text, std::size_t pos) noexcept {
  pos = skip_ws(text, pos);
  if (pos >= text.size() || text[pos] != ':') return std::string_view::npos;
  return skip_ws(text, pos + 1);
}

/// Scans a JSON string whose opening quote sits at `pos`; sets `body` to
/// the raw (still-escaped) contents and returns the index just past the
/// closing quote, or npos when the string never terminates.
std::size_t scan_string(std::string_view text, std::size_t pos,
                        std::string_view& body) noexcept {
  const std::size_t begin = pos + 1;
  std::size_t i = begin;
  while (i < text.size()) {
    if (text[i] == '\\') {
      i += 2;
      continue;
    }
    if (text[i] == '"') {
      body = text.substr(begin, i - begin);
      return i + 1;
    }
    ++i;
  }
  return std::string_view::npos;
}

}  // namespace

std::string_view budget_class_name(BudgetClass cls) noexcept {
  switch (cls) {
    case BudgetClass::kAdmit: return "admit";
    case BudgetClass::kAnalyze: return "analyze";
    case BudgetClass::kRobustness: return "robustness";
    case BudgetClass::kSimulate: return "simulate";
    case BudgetClass::kSession: return "session";
  }
  return "unknown";
}

bool budget_class_of(Endpoint endpoint, BudgetClass& out) noexcept {
  switch (endpoint) {
    case Endpoint::kAdmit: out = BudgetClass::kAdmit; return true;
    // A batch is admission work: it shares the admit budget so a flood of
    // batches cannot starve single-probe clients of their own class.
    case Endpoint::kAdmitBatch: out = BudgetClass::kAdmit; return true;
    case Endpoint::kAnalyze: out = BudgetClass::kAnalyze; return true;
    case Endpoint::kRobustness: out = BudgetClass::kRobustness; return true;
    case Endpoint::kSimulate: out = BudgetClass::kSimulate; return true;
    case Endpoint::kSession: out = BudgetClass::kSession; return true;
    case Endpoint::kStats:
    case Endpoint::kMetrics:
    case Endpoint::kMalformed: return false;
  }
  return false;
}

OverloadController::OverloadController(OverloadConfig config)
    : config_(config) {
  if (config_.interval_ms < 1) config_.interval_ms = 1;
  if (config_.min_budget < 1) config_.min_budget = 1;
  if (config_.max_budget < config_.min_budget) {
    config_.max_budget = config_.min_budget;
  }
  if (!(config_.decrease > 0.0 && config_.decrease < 1.0)) {
    config_.decrease = 0.7;
  }
  if (config_.increase == 0) config_.increase = 1;
  if (config_.max_retry_after_ms < config_.interval_ms) {
    config_.max_retry_after_ms = config_.interval_ms;
  }
  config_.initial_budget = std::clamp(config_.initial_budget,
                                      config_.min_budget, config_.max_budget);
  budgets_.fill(config_.initial_budget);
  retry_after_ms_.fill(config_.interval_ms);
}

const std::array<std::size_t, kBudgetClassCount>& OverloadController::tick(
    const std::array<ClassSample, kBudgetClassCount>& samples) {
  ++ticks_;
  for (std::size_t c = 0; c < kBudgetClassCount; ++c) {
    const ClassSample& sample = samples[c];
    const std::uint64_t slo = config_.slo_p99_us[c];

    // Retry hint first (valid in static mode too): Little's-law drain
    // time of the current backlog at the interval's service rate.
    if (sample.completed > 0) {
      const double intervals =
          static_cast<double>(sample.in_flight + 1) /
          static_cast<double>(sample.completed);
      const double hint =
          std::ceil(intervals) * static_cast<double>(config_.interval_ms);
      retry_after_ms_[c] = static_cast<int>(
          std::clamp(hint, static_cast<double>(config_.interval_ms),
                     static_cast<double>(config_.max_retry_after_ms)));
    } else if (sample.in_flight > 0 || sample.shed > 0) {
      // Saturated and nothing finished: tell clients to stay away for the
      // full ceiling.
      retry_after_ms_[c] = config_.max_retry_after_ms;
    } else {
      retry_after_ms_[c] = config_.interval_ms;
    }

    if (!config_.adaptive) continue;

    const bool violated =
        (sample.completed > 0 && sample.p99_us > static_cast<double>(slo)) ||
        // Stuck: admitted work spans whole intervals without finishing.
        (sample.completed == 0 && sample.in_flight > 0);
    if (violated) {
      const auto shrunk = static_cast<std::size_t>(
          std::floor(static_cast<double>(budgets_[c]) * config_.decrease));
      budgets_[c] = std::max(config_.min_budget, shrunk);
    } else if (sample.completed > 0 &&
               (sample.shed > 0 ||
                sample.in_flight + sample.completed >= budgets_[c])) {
      // Compliant AND the budget was actually the binding constraint --
      // probing upward on an idle class would just store up a burst.
      budgets_[c] =
          std::min(config_.max_budget, budgets_[c] + config_.increase);
    }
  }
  return budgets_;
}

RequestPeek peek_request(std::string_view line) noexcept {
  RequestPeek peek;
  // One pass over the top level of the JSON object, tracking nesting
  // depth and tokenizing strings (with escape handling) so "op" or
  // "deadline_ms" occurring inside a string VALUE or a nested container
  // can never match: only a depth-1 string followed by ':' is a key.
  // That anchoring matters for deadline_ms -- a spurious match would make
  // a worker drop a valid request as deadline_expired, a semantic change
  // the strict worker-side parse never gets to correct.
  std::size_t pos = skip_ws(line, 0);
  if (pos >= line.size() || line[pos] != '{') return peek;
  ++pos;
  int depth = 1;
  while (pos < line.size() && depth > 0) {
    const char c = line[pos];
    if (c == '{' || c == '[') {
      ++depth;
      ++pos;
      continue;
    }
    if (c == '}' || c == ']') {
      --depth;
      ++pos;
      continue;
    }
    if (c != '"') {
      ++pos;
      continue;
    }
    std::string_view body;
    pos = scan_string(line, pos, body);
    if (pos == std::string_view::npos) return peek;  // unterminated string
    if (depth != 1) continue;  // nested strings are never top-level keys
    const std::size_t value = skip_colon(line, pos);
    if (value == std::string_view::npos) continue;  // a value, not a key
    pos = value;
    if (body == "op") {
      if (pos < line.size() && line[pos] == '"') {
        std::string_view op;
        const std::size_t end = scan_string(line, pos, op);
        if (end == std::string_view::npos) return peek;
        pos = end;
        if (op == "admit" || op == "admit_batch") {
          peek.cls = BudgetClass::kAdmit;
          peek.budgeted = true;
        } else if (op == "analyze") {
          peek.cls = BudgetClass::kAnalyze;
          peek.budgeted = true;
        } else if (op == "robustness") {
          peek.cls = BudgetClass::kRobustness;
          peek.budgeted = true;
        } else if (op == "simulate") {
          peek.cls = BudgetClass::kSimulate;
          peek.budgeted = true;
        } else if (op.starts_with("session_")) {
          // All session ops share one budget; even session_stats takes the
          // per-session mutex, so it queues behind mutations anyway.
          peek.cls = BudgetClass::kSession;
          peek.budgeted = true;
        }
        // stats / metrics / anything else: un-budgeted.
      }
    } else if (body == "deadline_ms") {
      std::int64_t value_ms = 0;
      bool any = false;
      while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9' &&
             value_ms < (std::int64_t{1} << 40)) {
        value_ms = value_ms * 10 + (line[pos] - '0');
        any = true;
        ++pos;
      }
      // Saturate absurd values (a ~35-year deadline is "no deadline").
      if (any) peek.deadline_ms = std::min(value_ms, std::int64_t{1} << 40);
    }
    // Any other key: pos sits at its value, which the depth/string
    // tracking above walks over like any other token.
  }
  return peek;
}

std::string overloaded_reply(int retry_after_ms) {
  JsonWriter w;
  w.begin_object();
  w.key("ok");
  w.value(false);
  w.key("error");
  w.value("overloaded");
  w.key("retry_after_ms");
  w.value(static_cast<std::int64_t>(retry_after_ms));
  w.end_object();
  return w.str();
}

std::string deadline_expired_reply(std::int64_t waited_ms) {
  JsonWriter w;
  w.begin_object();
  w.key("ok");
  w.value(false);
  w.key("error");
  w.value("deadline_expired");
  w.key("waited_ms");
  w.value(waited_ms);
  w.end_object();
  return w.str();
}

}  // namespace rmts::server
