// Minimal JSON document model for the admission-control protocol.
//
// The wire format (server/protocol.hpp) is one JSON object per line, so
// the parser only has to handle small, bounded documents; it is strict
// (RFC 8259 grammar, no comments, no trailing commas) and defensive:
// nesting depth is capped, and every failure returns an error message
// naming the offset instead of throwing -- malformed requests are an
// expected input, not a caller contract violation.  The writer half
// (JsonWriter) renders replies with the shared escaper of
// common/json.hpp, the same one the bench reports use.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rmts::server {

/// One parsed JSON value.  Objects keep their members in document order;
/// find() returns the first member with a given key.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  /// True for numbers written without fraction/exponent that fit int64.
  [[nodiscard]] bool is_int() const noexcept { return is_number() && has_int_; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Accessors assume the matching kind (callers check first; the router
  /// validates every field before reading it).
  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_double() const noexcept { return number_; }
  [[nodiscard]] std::int64_t as_int() const noexcept { return int_; }
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }

  /// First member named `key`, or nullptr.  Valid for objects only.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

 private:
  friend class JsonParser;

  Kind kind_{Kind::kNull};
  bool bool_{false};
  bool has_int_{false};
  double number_{0.0};
  std::int64_t int_{0};
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses `text` as one complete JSON document (trailing whitespace
/// allowed, trailing garbage rejected).  Returns true on success; on
/// failure `error` describes the problem and the byte offset.
bool json_parse(std::string_view text, JsonValue& out, std::string& error);

/// Locale-independent shortest-roundtrip rendering of a double; non-finite
/// values render as null (JSON has no inf/nan).
[[nodiscard]] std::string json_number(double value);

/// Streaming writer for protocol replies.  Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("ok"); w.value(true);
///   w.key("margin"); w.value(1.25);
///   w.end_object();
///   w.str();  // the document
/// Commas are inserted automatically; keys use the shared escaper.
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Starts an object member; must be followed by exactly one value (or
  /// container).
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(bool flag);
  void value(double number);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void null();
  /// Re-emits a parsed scalar (used to echo request ids verbatim);
  /// arrays/objects echo as null.
  void value(const JsonValue& scalar);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void open(char bracket);
  void close(char bracket);
  void separate();

  std::string out_;
  /// One entry per open container: whether a value has been written at
  /// this level (=> next value needs a leading comma).
  std::vector<bool> wrote_value_;
  bool after_key_{false};
};

}  // namespace rmts::server
