// Adaptive overload control: SLO-driven per-op-class admission budgets.
//
// The server's op classes differ by ~1000x in cost (an `admit` is a few
// hundred microseconds of partitioning; a `robustness` request bisects
// over whole simulations), so one static in-flight cap is simultaneously
// too loose (a burst of heavy ops collapses everyone's p99) and too tight
// (goodput is wasted when the mix is light).  This layer replaces the
// single bound with one admission budget per op class, adapted by a
// monitoring loop in the style of PCC's monitoring intervals: every
// `interval_ms` the event loop feeds the controller one ClassSample per
// class -- interval completions, sheds, live in-flight and the
// interpolated interval p99 read from the existing HDR histograms
// (Histogram::delta_since) -- and the controller moves each budget by
// AIMD toward the largest value that still holds the class's p99 SLO:
//
//   p99 > SLO (or work is stuck: in-flight but zero completions)
//        -> budget *= decrease            (multiplicative back-off)
//   p99 <= SLO and the class actually used its budget
//        -> budget += increase            (additive probing)
//
// Budgets never leave [min_budget, max_budget], so no class starves and
// none monopolizes the pool.  The controller is pure and deterministic --
// no clocks, no sockets -- which is what makes its convergence and
// invariants unit-testable (tests/overload_test.cpp); the server glue
// (server.cpp) owns the timerfd and the histogram snapshots.
//
// Two helpers complete the control loop:
//
//  * retry_after_ms(cls) -- a backlog-drain estimate (Little's law:
//    in-flight / interval service rate) carried by `overloaded` replies so
//    clients back off for roughly as long as the congestion will last
//    instead of hammering a saturated server (client.hpp honors it);
//  * peek_request(line) -- a cheap single-pass scan of a decoded line for
//    its op class and optional "deadline_ms" field.  The event loop must
//    classify BEFORE dispatch (the real JSON parse happens on a worker),
//    so the peek does not validate -- but it IS anchored to top-level
//    keys (it tracks nesting depth and tokenizes strings), because a
//    "deadline_ms" matched inside a string value or nested object would
//    not merely misroute a budget: it would make a worker drop a valid
//    request as deadline_expired.  On garbage that never parses anyway,
//    the worker's strict parse still decides semantics.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "server/metrics.hpp"

namespace rmts::server {

/// Op classes that consume worker budget.  stats/metrics/malformed stay
/// un-budgeted: they are control-plane traffic an operator needs MOST
/// while the server is overloaded, and they cost microseconds.
enum class BudgetClass : std::uint8_t {
  kAdmit,
  kAnalyze,
  kRobustness,
  kSimulate,
  kSession,  ///< online-session mutations (admit/depart/rebalance/open)
};
inline constexpr std::size_t kBudgetClassCount = 5;

[[nodiscard]] std::string_view budget_class_name(BudgetClass cls) noexcept;

/// Endpoint -> budget class; false for un-budgeted endpoints.
[[nodiscard]] bool budget_class_of(Endpoint endpoint,
                                   BudgetClass& out) noexcept;

struct OverloadConfig {
  /// false = budgets stay at their initial values (the static-cap
  /// baseline); the monitoring tick still runs so sheds carry hints and
  /// the stats surface stays live.
  bool adaptive{true};
  /// Monitoring interval; every tick reads one interval's metrics and
  /// moves the budgets at most one AIMD step.
  int interval_ms{100};
  /// Per-class p99 latency SLO (end-to-end: queue wait + compute) in
  /// microseconds.  Defaults reflect the ~1000x cost spread.
  std::array<std::uint64_t, kBudgetClassCount> slo_p99_us{
      20'000,     // admit: sub-ms compute, budget for queueing
      200'000,    // analyze: full RTA detail
      2'000'000,  // robustness: bisection over simulations
      500'000,    // simulate
      20'000,     // session: incremental-RTA churn, admit-like cost
  };
  /// Starvation floor and cap for every budget.
  std::size_t min_budget{1};
  std::size_t max_budget{256};
  /// Initial budget per class (also the static baseline).
  std::size_t initial_budget{64};
  /// Multiplicative decrease factor in (0, 1).
  double decrease{0.7};
  /// Additive increase per compliant interval.
  std::size_t increase{1};
  /// Ceiling for the retry_after_ms hint.
  int max_retry_after_ms{5'000};
};

/// One class's measurements over one monitoring interval.
struct ClassSample {
  std::uint64_t completed{0};  ///< requests finished this interval
  std::uint64_t shed{0};       ///< budget rejections this interval
  std::uint64_t in_flight{0};  ///< live queued-or-running at tick time
  double p99_us{0.0};          ///< interval p99 latency; 0 if none finished
};

/// The pure feedback controller.  Single-threaded by design: the event
/// loop owns it and publishes budgets/hints through atomics (server.cpp).
class OverloadController {
 public:
  /// Clamps the config into validity (interval >= 1 ms, floor <= cap,
  /// decrease in (0,1), initial within [floor, cap]) rather than throwing:
  /// an operator typo should degrade to a sane controller, not kill the
  /// server.
  explicit OverloadController(OverloadConfig config);

  /// One monitoring tick.  Returns the updated budgets (stable reference).
  const std::array<std::size_t, kBudgetClassCount>& tick(
      const std::array<ClassSample, kBudgetClassCount>& samples);

  [[nodiscard]] std::size_t budget(BudgetClass cls) const noexcept {
    return budgets_[static_cast<std::size_t>(cls)];
  }

  /// Backlog-drain estimate from the last tick's sample, for `overloaded`
  /// replies: interval_ms * (in_flight + 1) / completed, clamped to
  /// [interval_ms, max_retry_after_ms].  Monotone in the backlog; the
  /// ceiling applies when nothing completed at all.
  [[nodiscard]] int retry_after_ms(BudgetClass cls) const noexcept {
    return retry_after_ms_[static_cast<std::size_t>(cls)];
  }

  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }

  [[nodiscard]] const OverloadConfig& config() const noexcept {
    return config_;
  }

 private:
  OverloadConfig config_;
  std::array<std::size_t, kBudgetClassCount> budgets_{};
  std::array<int, kBudgetClassCount> retry_after_ms_{};
  std::uint64_t ticks_{0};
};

/// What the event loop can learn about a request without parsing it.
struct RequestPeek {
  /// Budgeted class when `budgeted`; otherwise the line is control-plane
  /// (stats/metrics) or unclassifiable and bypasses class budgets.
  BudgetClass cls{BudgetClass::kAdmit};
  bool budgeted{false};
  /// Client deadline in milliseconds from arrival; 0 = none.
  std::int64_t deadline_ms{0};
};

/// Single-pass scan for the top-level `"op"` and `"deadline_ms"` keys
/// (depth-anchored: occurrences inside string values or nested containers
/// never match).  Never throws; a line it cannot read returns an
/// un-budgeted peek.
[[nodiscard]] RequestPeek peek_request(std::string_view line) noexcept;

/// Renders {"ok":false,"error":"overloaded","retry_after_ms":N} (no
/// trailing newline).
[[nodiscard]] std::string overloaded_reply(int retry_after_ms);

/// Renders {"ok":false,"error":"deadline_expired","waited_ms":N}: the
/// request's client deadline passed while it sat in the queue, so the
/// server dropped it instead of spending a worker on a reply nobody will
/// read.
[[nodiscard]] std::string deadline_expired_reply(std::int64_t waited_ms);

}  // namespace rmts::server
