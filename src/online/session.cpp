#include "online/session.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "partition/splitting.hpp"
#include "rta/rta.hpp"

namespace rmts::online {

namespace {

/// Session priority key: RM order by period, arrival order (ticket) as
/// the tiebreak.  Encoding both into the Subtask's single priority rank
/// keeps every existing comparison (insert_position, fits, the kernel)
/// working unchanged on a population that was never numbered 0..N-1 up
/// front the way batch partitioning numbers it.  period <= kMaxPeriod
/// (< 2^31) fits the high half exactly; the low 32 ticket bits alias only
/// between residents more than 2^32 admissions apart, far beyond any
/// session this serves.
std::uint64_t priority_key(Time period, Ticket ticket) noexcept {
  return (static_cast<std::uint64_t>(period) << 32) |
         (ticket & 0xFFFFFFFFULL);
}

}  // namespace

PartitionSession::PartitionSession(const SessionConfig& config)
    : config_(config) {
  if (config_.processors == 0) config_.processors = 1;
  if (config_.split_granularity < 1) config_.split_granularity = 1;
  if (!(config_.hysteresis >= 0.0) || !std::isfinite(config_.hysteresis)) {
    config_.hysteresis = 0.10;
  }
  processors_.resize(config_.processors);
}

bool PartitionSession::body_safe(std::size_t q,
                                 const Subtask& candidate) const {
  for (const Subtask& s : processors_[q].subtasks()) {
    if (s.kind == SubtaskKind::kBody && candidate.priority < s.priority) {
      return false;
    }
  }
  return true;
}

std::vector<std::size_t> PartitionSession::by_ascending_utilization() const {
  std::vector<std::size_t> order(processors_.size());
  for (std::size_t q = 0; q < order.size(); ++q) order[q] = q;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return processors_[a].utilization() <
                            processors_[b].utilization();
                   });
  return order;
}

std::optional<std::size_t> PartitionSession::find_subtask(std::size_t q,
                                                          TaskId id,
                                                          int part) const {
  const std::span<const Subtask> hosted = processors_[q].subtasks();
  for (std::size_t i = 0; i < hosted.size(); ++i) {
    if (hosted[i].task_id == id && hosted[i].part == part) return i;
  }
  return std::nullopt;
}

void PartitionSession::rollback(TaskId id,
                                const std::vector<std::size_t>& parts) {
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const auto pos = find_subtask(parts[k], id, static_cast<int>(k));
    assert(pos.has_value());
    if (pos) processors_[parts[k]].remove(*pos);
  }
}

AdmitResult PartitionSession::admit(Time wcet, Time period) {
  AdmitResult out;
  if (wcet < 1 || period < 1 || wcet > period) {
    ++rejects_total_;
    out.reason = "task parameters must satisfy 1 <= wcet <= period";
    return out;
  }
  if (period > kMaxPeriod) {
    ++rejects_total_;
    out.reason = "period exceeds the session limit (2^31 - 1)";
    return out;
  }
  if (config_.max_resident != 0 &&
      residents_.size() >= config_.max_resident) {
    ++rejects_total_;
    out.reason = "resident-task limit reached";
    return out;
  }

  const Ticket ticket = next_ticket_;
  const auto id = static_cast<TaskId>(ticket);
  const std::uint64_t priority = priority_key(period, ticket);
  const Task task{wcet, period, id};
  const std::vector<std::size_t> order = by_ascending_utilization();

  // Whole placement, worst fit: the least-utilized processor that both
  // preserves hosted bodies' top-priority invariant and passes exact RTA.
  const Subtask whole = whole_subtask(task, priority);
  for (const std::size_t q : order) {
    if (!body_safe(q, whole)) continue;
    if (!processors_[q].fits(whole)) continue;
    processors_[q].add(whole);
    residents_.emplace_back(ticket,
                            Resident{wcet, period, priority, {q}});
    ++next_ticket_;
    ++admits_total_;
    out.admitted = true;
    out.ticket = ticket;
    out.parts = 1;
    return out;
  }

  if (!config_.allow_splitting) {
    ++rejects_total_;
    out.reason = "no processor admits the task whole";
    return out;
  }

  // Split placement (paper Algorithm 2, online variant): walk the same
  // ascending-utilization order, placing the largest admissible body
  // prefix wherever the piece gets top local priority, until the tail
  // fits somewhere whole.  The whole-fit scan above already probed
  // part 0 everywhere, so the first round skips straight to splitting.
  ChainCursor cursor(task, priority);
  std::vector<std::size_t> parts;
  for (const std::size_t q : order) {
    if (cursor.exhausted()) break;
    const Subtask candidate = cursor.candidate();
    if (candidate.deadline <= 0) break;  // Eq. 1 left nothing to run in
    if (!body_safe(q, candidate)) continue;

    // The remaining piece in full (a tail once something was split off;
    // redundant for part 0, probed above).
    if (cursor.parts_placed() > 0 && processors_[q].fits(candidate)) {
      processors_[q].add(candidate);
      parts.push_back(q);
      cursor.consume_all();
      break;
    }

    // A body may only be created where it gets the highest local
    // priority (Lemma 2): bodies run unpreempted, so downstream pieces
    // have zero release jitter and plain sporadic RTA stays exact.
    // Unlike batch RM-TS this processor is NOT sealed afterwards --
    // body_safe() keeps the premise standing against later arrivals.
    const std::span<const Subtask> hosted = processors_[q].subtasks();
    if (!hosted.empty() && hosted.front().priority < candidate.priority) {
      continue;
    }
    Time prefix =
        max_admissible_wcet(processors_[q], candidate, config_.split_method);
    assert(prefix < candidate.wcet);  // full fit was rejected above
    prefix -= prefix % config_.split_granularity;
    if (prefix <= 0) continue;
    Subtask body = candidate;
    body.wcet = prefix;
    body.kind = SubtaskKind::kBody;
    processors_[q].add(body);
    // Measured response of the body just placed; the top-priority guard
    // makes this equal its wcet (asserted, not assumed), which is what
    // keeps the next piece's synthetic deadline exact.
    const Time response = processors_[q].response_time_of(0);
    assert(response == prefix);
    cursor.consume_body(prefix, response);
    parts.push_back(q);
  }

  if (!cursor.exhausted()) {
    // The partial chain must not linger: a half-admitted task is neither
    // schedulable as requested nor departable by any ticket.
    rollback(id, parts);
    ++rejects_total_;
    out.reason = "no split placement passes exact RTA";
    return out;
  }

  residents_.emplace_back(
      ticket, Resident{wcet, period, priority, std::move(parts)});
  ++next_ticket_;
  ++admits_total_;
  out.admitted = true;
  out.ticket = ticket;
  out.parts = residents_.back().second.parts.size();
  return out;
}

bool PartitionSession::depart(Ticket ticket) {
  const auto it = std::lower_bound(
      residents_.begin(), residents_.end(), ticket,
      [](const auto& entry, Ticket t) { return entry.first < t; });
  if (it == residents_.end() || it->first != ticket) return false;
  const auto id = static_cast<TaskId>(ticket);
  const Resident resident = std::move(it->second);
  residents_.erase(it);
  for (std::size_t k = 0; k < resident.parts.size(); ++k) {
    const auto pos =
        find_subtask(resident.parts[k], id, static_cast<int>(k));
    assert(pos.has_value());
    if (pos) processors_[resident.parts[k]].remove(*pos);
  }
  ++departs_total_;
  if (config_.rebalance_every != 0 &&
      ++departs_since_rebalance_ >= config_.rebalance_every) {
    departs_since_rebalance_ = 0;
    rebalance();
  }
  return true;
}

std::size_t PartitionSession::rebalance() {
  ++rebalance_rounds_total_;
  std::size_t moved = 0;
  if (processors_.size() < 2) return moved;
  while (moved < config_.max_migrations_per_round) {
    std::size_t src = 0;
    std::size_t dst = 0;
    for (std::size_t q = 1; q < processors_.size(); ++q) {
      if (processors_[q].utilization() > processors_[src].utilization()) {
        src = q;
      }
      if (processors_[q].utilization() < processors_[dst].utilization()) {
        dst = q;
      }
    }
    const double spread =
        processors_[src].utilization() - processors_[dst].utilization();
    if (src == dst || spread <= config_.hysteresis) break;

    // Movable migrants: whole residents only (chain pieces stay put --
    // their synthetic deadlines are anchored to measured body responses
    // on specific processors) whose utilization keeps the move monotone
    // (<= spread/2: the spread strictly shrinks and the pair never swaps
    // roles, so passes cannot ping-pong), and whose arrival on dst
    // cannot demote a hosted body.
    probe_candidates_.clear();
    probe_sources_.clear();
    const std::span<const Subtask> hosted = processors_[src].subtasks();
    for (std::size_t i = 0; i < hosted.size(); ++i) {
      const Subtask& s = hosted[i];
      if (s.kind != SubtaskKind::kWhole) continue;
      if (s.utilization() > spread / 2.0) continue;
      if (!body_safe(dst, s)) continue;
      probe_candidates_.push_back(s);
      probe_sources_.push_back(i);
    }
    if (probe_candidates_.empty()) break;

    // One batched exact-RTA probe of every candidate move against the
    // target (the rta_batch_fits multi-probe shape): dst's hosted set,
    // memoized seeds and SoA mirror are set up once for the whole scan.
    probe_verdicts_.resize(probe_candidates_.size());
    processors_[dst].fits_batch(probe_candidates_, probe_verdicts_);

    std::size_t best = probe_candidates_.size();
    for (std::size_t i = 0; i < probe_candidates_.size(); ++i) {
      if (!probe_verdicts_[i].fits) continue;
      if (best == probe_candidates_.size() ||
          probe_candidates_[i].utilization() >
              probe_candidates_[best].utilization()) {
        best = i;
      }
    }
    if (best == probe_candidates_.size()) break;

    // Commit order is what makes "never un-admit" structural: the target
    // admitted the migrant under exact RTA with all its residents
    // (fits_batch above), and only then does the source shed it --
    // removal can only SHRINK interference there, so source residents'
    // response times cannot grow past deadlines they already met.
    const Subtask mover = probe_candidates_[best];
    processors_[dst].add(mover);
    processors_[src].remove(probe_sources_[best]);

    // Update the resident's placement record.  Tickets below 2^32 equal
    // their task_id; past that (4 billion admissions) fall back to a
    // scan keyed on the full priority.
    bool recorded = false;
    const auto it = std::lower_bound(
        residents_.begin(), residents_.end(),
        static_cast<Ticket>(mover.task_id),
        [](const auto& entry, Ticket t) { return entry.first < t; });
    if (it != residents_.end() &&
        static_cast<TaskId>(it->first) == mover.task_id &&
        it->second.priority == mover.priority) {
      it->second.parts[static_cast<std::size_t>(mover.part)] = dst;
      recorded = true;
    } else {
      for (auto& [ticket, resident] : residents_) {
        if (static_cast<TaskId>(ticket) == mover.task_id &&
            resident.priority == mover.priority) {
          resident.parts[static_cast<std::size_t>(mover.part)] = dst;
          recorded = true;
          break;
        }
      }
    }
    assert(recorded);
    (void)recorded;
    ++moved;
    ++migrations_total_;
  }
  return moved;
}

SessionStats PartitionSession::stats() const {
  SessionStats out;
  out.processors = processors_.size();
  out.resident_tasks = residents_.size();
  for (const auto& [ticket, resident] : residents_) {
    (void)ticket;
    out.resident_subtasks += resident.parts.size();
    if (resident.parts.size() > 1) ++out.split_residents;
  }
  out.admits_total = admits_total_;
  out.rejects_total = rejects_total_;
  out.departs_total = departs_total_;
  out.migrations_total = migrations_total_;
  out.rebalance_rounds_total = rebalance_rounds_total_;
  bool first = true;
  for (const ProcessorState& proc : processors_) {
    const double u = proc.utilization();
    out.utilization += u;
    out.min_processor_utilization =
        first ? u : std::min(out.min_processor_utilization, u);
    out.max_processor_utilization =
        first ? u : std::max(out.max_processor_utilization, u);
    first = false;
  }
  out.normalized_utilization =
      out.utilization / static_cast<double>(processors_.size());
  return out;
}

std::vector<PartitionSession::ResidentTask> PartitionSession::residents()
    const {
  std::vector<ResidentTask> out;
  out.reserve(residents_.size());
  for (const auto& [ticket, resident] : residents_) {
    out.push_back({ticket, resident.wcet, resident.period});
  }
  return out;
}

std::vector<std::size_t> PartitionSession::placements(Ticket ticket) const {
  const auto it = std::lower_bound(
      residents_.begin(), residents_.end(), ticket,
      [](const auto& entry, Ticket t) { return entry.first < t; });
  if (it == residents_.end() || it->first != ticket) return {};
  return it->second.parts;
}

std::string PartitionSession::check_invariants() const {
  std::size_t hosted_total = 0;
  for (std::size_t q = 0; q < processors_.size(); ++q) {
    const std::span<const Subtask> hosted = processors_[q].subtasks();
    hosted_total += hosted.size();
    double sum = 0.0;
    std::size_t bodies = 0;
    for (std::size_t i = 0; i < hosted.size(); ++i) {
      sum += hosted[i].utilization();
      if (i > 0 && hosted[i - 1].priority >= hosted[i].priority) {
        return "processor " + std::to_string(q) +
               ": hosted priorities not strictly increasing at position " +
               std::to_string(i);
      }
      if (hosted[i].kind == SubtaskKind::kBody) {
        ++bodies;
        if (i != 0) {
          return "processor " + std::to_string(q) +
                 ": body subtask demoted from top local priority";
        }
      }
    }
    if (bodies > 1) {
      return "processor " + std::to_string(q) + ": hosts " +
             std::to_string(bodies) + " bodies";
    }
    if (std::abs(sum - processors_[q].utilization()) >
        1e-9 * std::max(1.0, sum)) {
      return "processor " + std::to_string(q) +
             ": cached utilization drifted from the hosted sum";
    }
    const ProcessorRta rta = analyze_processor(hosted);
    if (!rta.schedulable) {
      return "processor " + std::to_string(q) +
             ": resident set fails exact RTA (first miss at position " +
             std::to_string(rta.first_miss) + ")";
    }
  }

  std::size_t chain_total = 0;
  for (const auto& [ticket, resident] : residents_) {
    const auto id = static_cast<TaskId>(ticket);
    chain_total += resident.parts.size();
    if (resident.parts.empty()) {
      return "ticket " + std::to_string(ticket) + ": no placements";
    }
    Time placed = 0;
    Time expected_deadline = resident.period;
    for (std::size_t k = 0; k < resident.parts.size(); ++k) {
      const std::size_t q = resident.parts[k];
      if (q >= processors_.size()) {
        return "ticket " + std::to_string(ticket) +
               ": placement on unknown processor";
      }
      const auto pos = find_subtask(q, id, static_cast<int>(k));
      if (!pos) {
        return "ticket " + std::to_string(ticket) + ": chain part " +
               std::to_string(k) + " missing on processor " +
               std::to_string(q);
      }
      const Subtask& s = processors_[q].subtasks()[*pos];
      const SubtaskKind want =
          resident.parts.size() == 1
              ? SubtaskKind::kWhole
              : (k + 1 == resident.parts.size() ? SubtaskKind::kTail
                                                : SubtaskKind::kBody);
      if (s.kind != want) {
        return "ticket " + std::to_string(ticket) + ": chain part " +
               std::to_string(k) + " has the wrong kind";
      }
      if (s.priority != resident.priority || s.period != resident.period) {
        return "ticket " + std::to_string(ticket) + ": chain part " +
               std::to_string(k) + " lost its priority or period";
      }
      if (s.deadline != expected_deadline) {
        return "ticket " + std::to_string(ticket) + ": chain part " +
               std::to_string(k) + " synthetic deadline drifted (Eq. 1)";
      }
      placed += s.wcet;
      // Bodies run at top local priority, so the measured response the
      // deadline chain consumed equals the body's wcet.
      expected_deadline -= s.wcet;
    }
    if (placed != resident.wcet) {
      return "ticket " + std::to_string(ticket) +
             ": chain wcets do not sum to the task wcet";
    }
  }
  if (chain_total != hosted_total) {
    return "resident chains cover " + std::to_string(chain_total) +
           " subtasks but processors host " + std::to_string(hosted_total);
  }
  return {};
}

}  // namespace rmts::online
