// Online admission with departures: a long-lived, mutable partition.
//
// Everything else in the repo is batch -- partition a fixed task set,
// answer, forget.  A PartitionSession instead OWNS a live multiprocessor
// assignment and services a stream of admit(task) -> ticket /
// depart(ticket) requests, the shape the ROADMAP's admission-control
// north star actually serves: users join and leave; the partition
// persists.
//
// Design:
//
//  * Admission is exact-RTA worst-fit: processors are probed in
//    ascending-utilization order and the task is placed whole on the
//    first processor whose full hosted set (plus the candidate) passes
//    exact response-time analysis.  Every probe rides the ProcessorState
//    admission cache (PR 1) and the SoA RTA kernel (PR 9): candidate-free
//    responses stay memoized across the whole session, so a probe costs
//    one seeded suffix re-analysis instead of a from-scratch processor
//    RTA.
//
//  * Split-task semantics are preserved online.  When no processor fits
//    the task whole, the session walks the same MaxSplit chain as batch
//    RM-TS (paper Algorithm 2): place the largest admissible body prefix,
//    shrink the synthetic deadline by the body's measured response
//    (Eq. 1), continue with the tail.  Lemma 2's premise -- a body runs
//    at the highest local priority, so its response equals its wcet and
//    downstream pieces see zero release jitter -- is a STANDING invariant
//    here, not a construction-order accident: a processor hosting a body
//    never admits anything that would outrank that body (body_safe()
//    gates every probe), so the invariant survives arbitrary later
//    arrivals.  A consequence worth noting: each processor hosts at most
//    one body, necessarily at top local priority (placing a second body
//    would need to outrank the first, which body_safe forbids).
//
//  * depart(ticket) removes every subtask of the chain via
//    ProcessorState::remove, whose cache invalidation re-seeds shifted
//    entries from their wcets (a removal flips stale cached responses
//    from lower to upper bounds -- see processor_state.hpp).  Compaction
//    of the vacated capacity is LAZY: depart touches only the processors
//    that hosted the chain, and global re-packing is deferred to the
//    bounded rebalance pass instead of eagerly reshuffling on every
//    leave.
//
//  * rebalance() is a worst-fit re-pack with hysteresis: while the
//    utilization spread between the most- and least-loaded processor
//    exceeds `hysteresis`, migrate one whole (never split) resident task
//    from the former to the latter, at most `max_migrations_per_round`
//    per call.  Candidate moves are probed with one batched
//    rta_batch_fits call per round (the multi-probe shape the kernel was
//    built for).  The pass NEVER un-admits a resident task, by
//    construction: a move is committed only after the target processor
//    admits the migrant under exact RTA with all its current residents
//    (fits_batch), and removing the migrant from the source only shrinks
//    interference there, so source residents' response times cannot grow.
//    Choosing a migrant with utilization <= spread/2 keeps the pass
//    monotone (the spread strictly shrinks, source and target never swap
//    roles), so rounds cannot ping-pong a task between two processors.
//
// Thread safety: none.  A session is confined to one thread; the server
// wraps each session in its own mutex (online/registry.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "partition/max_split.hpp"
#include "partition/processor_state.hpp"
#include "tasks/subtask.hpp"

namespace rmts::online {

/// Opaque handle for one admitted task, unique over the session lifetime.
using Ticket = std::uint64_t;

struct SessionConfig {
  std::size_t processors{4};
  /// Exact MaxSplit implementation used for split placement.
  MaxSplitMethod split_method{MaxSplitMethod::kSchedulingPoints};
  /// Try split placement when no processor admits the task whole.
  bool allow_splitting{true};
  /// Body prefixes are rounded down to a multiple of this (>= 1 tick).
  Time split_granularity{1};
  /// Run one rebalance pass automatically after this many departures
  /// (0 disables; rebalance() can always be called explicitly).
  std::size_t rebalance_every{16};
  /// Migration budget per rebalance pass.
  std::size_t max_migrations_per_round{4};
  /// Utilization spread (max - min over processors) below which rebalance
  /// leaves the assignment alone.
  double hysteresis{0.10};
  /// Hard cap on resident tasks; 0 = unbounded.
  std::size_t max_resident{0};
};

/// Outcome of one admit(): on success a ticket and the chain length
/// (1 = placed whole); on rejection a reason.  Rejection is a normal
/// outcome (the set is full), not an error.
struct AdmitResult {
  bool admitted{false};
  Ticket ticket{0};
  std::size_t parts{0};
  std::string reason;
};

struct SessionStats {
  std::size_t processors{0};
  std::size_t resident_tasks{0};
  std::size_t resident_subtasks{0};
  std::size_t split_residents{0};  ///< residents currently split
  std::uint64_t admits_total{0};   ///< successful admissions
  std::uint64_t rejects_total{0};
  std::uint64_t departs_total{0};
  std::uint64_t migrations_total{0};
  std::uint64_t rebalance_rounds_total{0};
  double utilization{0.0};             ///< sum over processors
  double normalized_utilization{0.0};  ///< utilization / processors
  double min_processor_utilization{0.0};
  double max_processor_utilization{0.0};
};

class PartitionSession {
 public:
  /// Periods a session accepts are bounded by the kernel's fast regime
  /// (< 2^31); see admit().
  static constexpr Time kMaxPeriod = (Time{1} << 31) - 1;

  explicit PartitionSession(const SessionConfig& config);

  /// Admits a sporadic task (implicit deadline = period) if some
  /// placement -- whole or split -- passes exact RTA; otherwise leaves
  /// the assignment untouched (a partially placed chain is rolled back)
  /// and reports the rejection reason.  Requires 1 <= wcet <= period <=
  /// kMaxPeriod; out-of-range parameters reject rather than throw, so a
  /// serving layer can forward client input directly.
  AdmitResult admit(Time wcet, Time period);

  /// Removes the ticket's task (all chain pieces).  False for a ticket
  /// that is unknown or already departed.  May trigger an automatic
  /// rebalance pass (SessionConfig::rebalance_every).
  bool depart(Ticket ticket);

  /// One bounded re-pack pass; returns the number of migrations
  /// performed.  Never un-admits a resident task (see file comment).
  std::size_t rebalance();

  [[nodiscard]] SessionStats stats() const;

  [[nodiscard]] const SessionConfig& config() const noexcept {
    return config_;
  }

  // ---- introspection for tests, the fuzzer and the CLI replay ----

  [[nodiscard]] std::span<const ProcessorState> processors() const noexcept {
    return processors_;
  }

  /// The live resident set as (ticket, wcet, period) rows.
  struct ResidentTask {
    Ticket ticket{0};
    Time wcet{0};
    Time period{0};
  };
  [[nodiscard]] std::vector<ResidentTask> residents() const;

  /// Where each piece of `ticket` currently lives; empty for unknown
  /// tickets.  placements()[k] hosts chain part k.
  [[nodiscard]] std::vector<std::size_t> placements(Ticket ticket) const;

  /// Full structural + analytical self-check: per-processor priority
  /// order and exact-RTA schedulability, utilization accounting, chain
  /// consistency (wcets sum to the task's, at most one body per
  /// processor and only at top local priority, tail deadline == period -
  /// sum of body responses).  Returns an empty string when every
  /// invariant holds, else a description of the first violation.  O(sum
  /// of processor RTA) -- meant for tests and the fuzzer, not the admit
  /// hot path.
  [[nodiscard]] std::string check_invariants() const;

 private:
  struct Resident {
    Time wcet{0};
    Time period{0};
    std::uint64_t priority{0};
    /// Processor hosting chain part k, in chain order.
    std::vector<std::size_t> parts;
  };

  /// True iff admitting `candidate` on processor `q` cannot demote a
  /// hosted body from its top local priority (Lemma 2's premise).
  [[nodiscard]] bool body_safe(std::size_t q,
                               const Subtask& candidate) const;

  /// Processor indices sorted by ascending utilization (worst fit),
  /// ties by index for determinism.
  [[nodiscard]] std::vector<std::size_t> by_ascending_utilization() const;

  /// Finds the hosted position of (task_id, part) on processor q.
  [[nodiscard]] std::optional<std::size_t> find_subtask(
      std::size_t q, TaskId id, int part) const;

  /// Removes every placed piece of a partially admitted chain.
  void rollback(TaskId id, const std::vector<std::size_t>& parts);

  SessionConfig config_;
  std::vector<ProcessorState> processors_;
  /// Resident bookkeeping keyed by ticket.  Tickets are handed out in
  /// increasing order, so push_back keeps this sorted for free; lookup is
  /// a binary search and erase is one contiguous move.
  std::vector<std::pair<Ticket, Resident>> residents_;
  Ticket next_ticket_{1};
  std::size_t departs_since_rebalance_{0};
  std::uint64_t admits_total_{0};
  std::uint64_t rejects_total_{0};
  std::uint64_t departs_total_{0};
  std::uint64_t migrations_total_{0};
  std::uint64_t rebalance_rounds_total_{0};
  /// Scratch for the rebalance batch probe (allocation-free steady state).
  mutable std::vector<Subtask> probe_candidates_;
  mutable std::vector<KernelFit> probe_verdicts_;
  mutable std::vector<std::size_t> probe_sources_;
};

}  // namespace rmts::online
