#include "online/registry.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace rmts::online {

SessionId SessionRegistry::open(const SessionConfig& config) {
  std::unique_lock lock(map_mutex_);
  if (sessions_.size() >= config_.max_sessions) return 0;
  const SessionId id = next_id_++;
  sessions_.emplace(id, std::make_shared<Entry>(config));
  return id;
}

bool SessionRegistry::close(SessionId id) {
  std::shared_ptr<Entry> entry;
  {
    std::unique_lock lock(map_mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  // Fold the departing session's lifetime counters into the closed-
  // session accumulator so the registry's `_total` counters stay
  // monotone.  The session mutex is taken OUTSIDE the map lock (same
  // ordering as lock()/totals()); any in-flight handle finishes first,
  // so the fold sees its effects.
  SessionStats stats;
  {
    std::lock_guard session_lock(entry->mutex);
    stats = entry->session.stats();
  }
  std::unique_lock lock(map_mutex_);
  closed_.admits_total += stats.admits_total;
  closed_.rejects_total += stats.rejects_total;
  closed_.departs_total += stats.departs_total;
  closed_.migrations_total += stats.migrations_total;
  return true;
}

SessionRegistry::Handle SessionRegistry::lock(SessionId id) const {
  std::shared_ptr<Entry> entry;
  {
    std::shared_lock lock(map_mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return Handle{};
    entry = it->second;
  }
  // The per-session mutex is taken OUTSIDE the map lock: a long admit on
  // one session must not block opens, closes or lookups of others.
  return Handle{std::move(entry)};
}

RegistryTotals SessionRegistry::totals() const {
  // Snapshot the entries first so per-session stats() calls (which take
  // each session mutex) never nest inside the map lock.
  std::vector<std::shared_ptr<Entry>> entries;
  RegistryTotals totals;
  {
    std::shared_lock lock(map_mutex_);
    entries.reserve(sessions_.size());
    for (const auto& [id, entry] : sessions_) entries.push_back(entry);
    totals = closed_;  // lifetime counters of already-closed sessions
  }
  totals.sessions_open = entries.size();
  for (const auto& entry : entries) {
    std::lock_guard session_lock(entry->mutex);
    const SessionStats stats = entry->session.stats();
    totals.resident_tasks += stats.resident_tasks;
    totals.resident_subtasks += stats.resident_subtasks;
    totals.admits_total += stats.admits_total;
    totals.rejects_total += stats.rejects_total;
    totals.departs_total += stats.departs_total;
    totals.migrations_total += stats.migrations_total;
  }
  return totals;
}

std::vector<std::pair<SessionId, SessionStats>> SessionRegistry::all_stats()
    const {
  std::vector<std::pair<SessionId, std::shared_ptr<Entry>>> entries;
  {
    std::shared_lock lock(map_mutex_);
    entries.reserve(sessions_.size());
    for (const auto& [id, entry] : sessions_) entries.emplace_back(id, entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<SessionId, SessionStats>> rows;
  rows.reserve(entries.size());
  for (const auto& [id, entry] : entries) {
    std::lock_guard session_lock(entry->mutex);
    rows.emplace_back(id, entry->session.stats());
  }
  return rows;
}

std::size_t SessionRegistry::size() const {
  std::shared_lock lock(map_mutex_);
  return sessions_.size();
}

}  // namespace rmts::online
