// Thread-safe ownership of PartitionSessions for the server.
//
// A PartitionSession is single-threaded by design (its admission caches
// make even const queries non-reentrant).  The server, however, handles
// connections on an event loop and may interleave ops on the same
// session id.  SessionRegistry provides the bridge: a concurrent id ->
// session map where every session carries its own mutex, so ops on
// DIFFERENT sessions proceed in parallel while ops on the SAME session
// serialize.  Lookup returns a Handle that holds both the per-session
// lock and a shared_ptr keeping the session alive, which makes close()
// safe against in-flight ops: the entry leaves the map immediately (new
// lookups miss) and is destroyed when the last handle drains.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "online/session.hpp"

namespace rmts::online {

using SessionId = std::uint64_t;

struct RegistryConfig {
  /// Hard cap on concurrently open sessions; open() past it fails.
  std::size_t max_sessions{64};
};

/// Aggregate counters for /metrics exposition.  The `_total` lifetime
/// counters cover CLOSED sessions too (close() folds the departing
/// session's counters into the registry), so they are monotone as
/// Prometheus counter semantics require; the resident/open fields are
/// gauges over live sessions only.
struct RegistryTotals {
  std::size_t sessions_open{0};
  std::size_t resident_tasks{0};
  std::size_t resident_subtasks{0};
  std::uint64_t admits_total{0};
  std::uint64_t rejects_total{0};
  std::uint64_t departs_total{0};
  std::uint64_t migrations_total{0};
};

class SessionRegistry {
 private:
  struct Entry {
    explicit Entry(const SessionConfig& config) : session(config) {}
    std::mutex mutex;
    PartitionSession session;
  };

 public:
  explicit SessionRegistry(const RegistryConfig& config = {})
      : config_(config) {}

  /// Exclusive access to one session.  Evaluates false when the id is
  /// unknown (or was closed).  Holds the session's mutex for its
  /// lifetime -- keep the scope tight.
  class Handle {
   public:
    Handle() = default;
    explicit operator bool() const noexcept { return entry_ != nullptr; }
    [[nodiscard]] PartitionSession& session() const noexcept {
      return entry_->session;
    }

   private:
    friend class SessionRegistry;
    explicit Handle(std::shared_ptr<Entry> entry)
        : entry_(std::move(entry)), lock_(entry_->mutex) {}
    std::shared_ptr<Entry> entry_;
    std::unique_lock<std::mutex> lock_;
  };

  /// Creates a session; returns 0 when the registry is at capacity
  /// (valid ids start at 1).
  SessionId open(const SessionConfig& config);

  /// Removes the session from the map and folds its lifetime counters
  /// into the registry's closed-session accumulator.  In-flight handles
  /// finish their op on the (now unreachable) session before it is
  /// destroyed.
  bool close(SessionId id);

  [[nodiscard]] Handle lock(SessionId id) const;

  /// Aggregates stats over every live session.  Takes each session's
  /// mutex in turn, so totals are per-session consistent (not a global
  /// snapshot -- fine for monitoring).
  [[nodiscard]] RegistryTotals totals() const;

  /// One stats row per live session, id-ascending -- the stats endpoint's
  /// per-session table and the Prometheus per-session gauges.
  [[nodiscard]] std::vector<std::pair<SessionId, SessionStats>> all_stats()
      const;

  [[nodiscard]] std::size_t size() const;

 private:
  RegistryConfig config_;
  mutable std::shared_mutex map_mutex_;
  std::unordered_map<SessionId, std::shared_ptr<Entry>> sessions_;
  SessionId next_id_{1};
  /// Lifetime counters of closed sessions (guarded by map_mutex_).
  RegistryTotals closed_;
};

}  // namespace rmts::online
