// Plain-text task-set persistence for tooling interchange.
//
// Format: one task per line, "<wcet> <period>" in ticks; blank lines and
// '#' comments are ignored.  Task ids are assigned in file order (so RM
// ties resolve by file position), matching TaskSet::from_pairs.
//
//   # flight control workload (ticks = microseconds)
//   875 2500
//   750 2500
//   1500 5000
#pragma once

#include <iosfwd>
#include <string>

#include "tasks/task_set.hpp"

namespace rmts {

/// Parses the text format from a stream.  CRLF line endings are tolerated.
/// Throws InvalidTaskError -- naming the offending line -- on malformed or
/// trailing-garbage fields, values that do not fit a Time, and parameter
/// violations (wcet/period must be positive, wcet <= period).
[[nodiscard]] TaskSet read_task_set(std::istream& input);

/// Loads a task set from a file path; throws InvalidConfigError if the
/// file cannot be opened.
[[nodiscard]] TaskSet load_task_set(const std::string& path);

/// Writes the text format (one "<wcet> <period>" line per task, RM order,
/// with a utilization comment header).
void write_task_set(std::ostream& output, const TaskSet& tasks);

}  // namespace rmts
