// The rmts command-line front end, packaged as a library function so tests
// can drive it directly (tools/rmts_cli.cpp is a thin main()).
//
// Usage:
//   rmts_cli <taskset-file> -m <processors>
//            [-a rmts|rmts-light|spa1|spa2|prm-ff|edf-ts]
//            [-b ll|hc|tbound|rbound|burchard]
//            [--simulate] [--bounds]
//
//  * default algorithm: rmts; default bound (for rmts): hc
//  * --bounds prints every implemented parametric bound for the set
//  * --simulate validates an accepted partition for two hyperperiods
//  * --online replays the set through a long-lived PartitionSession
//    (src/online) instead of batch-partitioning it: every task is admitted
//    as an arrival, --churn-ops adds a random admit/depart phase
//    (--churn-rate departures, --online-seed), and the final resident set,
//    lifetime counters and invariant check are printed
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rmts {

/// Runs the CLI.  Returns the process exit code: 0 on success (including
/// "schedulable"), 1 for "not schedulable" outcomes, 2 for usage or input
/// errors (message on `err`).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace rmts
