#include "io/cli_app.hpp"

#include <memory>
#include <ostream>
#include <random>
#include <string>

#include "analysis/robustness.hpp"
#include "bounds/burchard.hpp"
#include "bounds/harmonic.hpp"
#include "bounds/ll_bound.hpp"
#include "bounds/scaled_periods.hpp"
#include "common/error.hpp"
#include "io/taskset_io.hpp"
#include "online/session.hpp"
#include "partition/baselines.hpp"
#include "partition/edf_split.hpp"
#include "partition/rmts.hpp"
#include "partition/rmts_light.hpp"
#include "partition/spa.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace rmts {

namespace {

constexpr const char* kUsage =
    "usage: rmts_cli <taskset-file> -m <processors>\n"
    "                [-a rmts|rmts-light|spa1|spa2|prm-ff|edf-ts]\n"
    "                [-b ll|hc|tbound|rbound|burchard]\n"
    "                [--simulate] [--bounds] [--gantt] [--robustness]\n"
    "fault injection (with --simulate):\n"
    "                [--fault-factor <f>] [--fault-ticks <t>]\n"
    "                [--fault-prob <p>] [--fault-jitter <j>]\n"
    "                [--fault-seed <s>] [--containment none|budget|demote]\n"
    "                [--fail-proc <q>] [--fail-at <t>]\n"
    "online replay (ignores -a/-b/--simulate):\n"
    "                [--online] [--churn-ops <n>] [--churn-rate <r>]\n"
    "                [--online-seed <s>] [--no-split]\n";

BoundPtr make_bound(const std::string& name) {
  if (name == "ll") return std::make_shared<LiuLaylandBound>();
  if (name == "hc") return std::make_shared<HarmonicChainBound>();
  if (name == "tbound") return std::make_shared<TBound>();
  if (name == "rbound") return std::make_shared<RBound>();
  if (name == "burchard") return std::make_shared<BurchardBound>();
  throw InvalidConfigError("unknown bound: " + name);
}

std::shared_ptr<const Partitioner> make_algorithm(const std::string& name,
                                                  const BoundPtr& bound) {
  if (name == "rmts") return std::make_shared<Rmts>(bound);
  if (name == "rmts-light") return std::make_shared<RmtsLight>();
  if (name == "spa1") return std::make_shared<Spa1>();
  if (name == "spa2") return std::make_shared<Spa2>();
  if (name == "prm-ff") {
    return std::make_shared<PartitionedRm>(FitPolicy::kFirstFit,
                                           TaskOrder::kDecreasingUtilization,
                                           Admission::kExactRta);
  }
  if (name == "edf-ts") return std::make_shared<EdfSplit>();
  throw InvalidConfigError("unknown algorithm: " + name);
}

struct Options {
  std::string taskset_path;
  std::size_t processors = 0;
  std::string algorithm = "rmts";
  std::string bound = "hc";
  bool simulate = false;
  bool print_bounds = false;
  bool gantt = false;
  bool robustness = false;
  FaultModel faults;
  /// Online replay (--online): feed the set through a PartitionSession as
  /// an arrival sequence instead of batch-partitioning it.
  bool online = false;
  bool online_split = true;
  std::size_t churn_ops = 0;
  double churn_rate = 0.5;
  std::uint64_t online_seed = 42;
};

ContainmentPolicy parse_containment(const std::string& name) {
  if (name == "none") return ContainmentPolicy::kNone;
  if (name == "budget") return ContainmentPolicy::kBudgetEnforcement;
  if (name == "demote") return ContainmentPolicy::kPriorityDemotion;
  throw InvalidConfigError("unknown containment policy: " + name);
}

Options parse(const std::vector<std::string>& args) {
  Options options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* what) -> const std::string& {
      if (i + 1 >= args.size()) {
        throw InvalidConfigError(std::string("missing value for ") + what);
      }
      return args[++i];
    };
    if (arg == "-m" || arg == "--processors") {
      options.processors = static_cast<std::size_t>(std::stoul(next("-m")));
    } else if (arg == "-a" || arg == "--algorithm") {
      options.algorithm = next("-a");
    } else if (arg == "-b" || arg == "--bound") {
      options.bound = next("-b");
    } else if (arg == "--simulate") {
      options.simulate = true;
    } else if (arg == "--gantt") {
      options.simulate = true;  // a chart needs a run
      options.gantt = true;
    } else if (arg == "--bounds") {
      options.print_bounds = true;
    } else if (arg == "--robustness") {
      options.robustness = true;
    } else if (arg == "--fault-factor") {
      options.simulate = true;
      options.faults.overrun_factor = std::stod(next("--fault-factor"));
    } else if (arg == "--fault-ticks") {
      options.simulate = true;
      options.faults.overrun_ticks = std::stoll(next("--fault-ticks"));
    } else if (arg == "--fault-prob") {
      options.faults.overrun_probability = std::stod(next("--fault-prob"));
    } else if (arg == "--fault-jitter") {
      options.simulate = true;
      options.faults.release_jitter = std::stoll(next("--fault-jitter"));
    } else if (arg == "--fault-seed") {
      options.faults.seed = std::stoull(next("--fault-seed"));
    } else if (arg == "--containment") {
      options.faults.containment = parse_containment(next("--containment"));
    } else if (arg == "--fail-proc") {
      options.simulate = true;
      options.faults.failed_processor =
          static_cast<std::size_t>(std::stoul(next("--fail-proc")));
    } else if (arg == "--fail-at") {
      options.faults.failure_time = std::stoll(next("--fail-at"));
    } else if (arg == "--online") {
      options.online = true;
    } else if (arg == "--no-split") {
      options.online_split = false;
    } else if (arg == "--churn-ops") {
      options.online = true;
      options.churn_ops =
          static_cast<std::size_t>(std::stoul(next("--churn-ops")));
    } else if (arg == "--churn-rate") {
      options.online = true;
      options.churn_rate = std::stod(next("--churn-rate"));
    } else if (arg == "--online-seed") {
      options.online_seed = std::stoull(next("--online-seed"));
    } else if (!arg.empty() && arg.front() == '-') {
      throw InvalidConfigError("unknown option: " + arg);
    } else if (options.taskset_path.empty()) {
      options.taskset_path = arg;
    } else {
      throw InvalidConfigError("unexpected argument: " + arg);
    }
  }
  if (options.taskset_path.empty()) {
    throw InvalidConfigError("no task set file given");
  }
  if (options.processors == 0) {
    throw InvalidConfigError("need -m <processors> (>= 1)");
  }
  if (options.churn_rate < 0.0 || options.churn_rate > 1.0) {
    throw InvalidConfigError("--churn-rate must be in [0, 1]");
  }
  return options;
}

/// --online: replays the set through a long-lived PartitionSession --
/// admit every task in RM order, then (optionally) run a random
/// admit/depart churn phase -- and reports the final resident set,
/// lifetime counters and a full invariant check.  Exit code 1 when any
/// initial arrival is rejected or an invariant is violated.
int run_online(const Options& options, const TaskSet& tasks,
               std::ostream& out) {
  online::SessionConfig config;
  config.processors = options.processors;
  config.allow_splitting = options.online_split;
  online::PartitionSession session(config);

  out << "online replay: " << tasks.size() << " arrivals on M = "
      << options.processors << (options.online_split ? "" : ", splitting off")
      << '\n';
  std::size_t rejected = 0;
  for (const Task& task : tasks) {
    const online::AdmitResult result = session.admit(task.wcet, task.period);
    out << "  admit C=" << task.wcet << " T=" << task.period << " -> ";
    if (result.admitted) {
      out << "ticket " << result.ticket;
      if (result.parts > 1) out << " (split into " << result.parts << " parts)";
      out << '\n';
    } else {
      ++rejected;
      out << "rejected (" << result.reason << ")\n";
    }
  }

  if (options.churn_ops > 0) {
    std::mt19937_64 rng(options.online_seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<std::size_t> pick_task(0, tasks.size() - 1);
    std::vector<online::Ticket> live;
    for (const auto& resident : session.residents()) {
      live.push_back(resident.ticket);
    }
    std::size_t admits = 0;
    std::size_t churn_rejects = 0;
    std::size_t departs = 0;
    for (std::size_t op = 0; op < options.churn_ops; ++op) {
      if (!live.empty() && coin(rng) < options.churn_rate) {
        std::uniform_int_distribution<std::size_t> slot(0, live.size() - 1);
        const std::size_t victim = slot(rng);
        session.depart(live[victim]);
        live[victim] = live.back();
        live.pop_back();
        ++departs;
      } else {
        const Task& task = tasks[pick_task(rng)];
        const online::AdmitResult result =
            session.admit(task.wcet, task.period);
        if (result.admitted) {
          live.push_back(result.ticket);
          ++admits;
        } else {
          ++churn_rejects;
        }
      }
    }
    out << "churn: " << options.churn_ops << " ops (seed "
        << options.online_seed << ", depart rate " << options.churn_rate
        << "): " << admits << " admitted, " << churn_rejects << " rejected, "
        << departs << " departed\n";
  }

  const std::size_t migrations = session.rebalance();
  if (migrations > 0) {
    out << "final rebalance: " << migrations << " migrations\n";
  }

  const online::SessionStats stats = session.stats();
  out << "resident: " << stats.resident_tasks << " tasks ("
      << stats.split_residents << " split, " << stats.resident_subtasks
      << " subtasks), U = " << stats.utilization
      << ", U_M = " << stats.normalized_utilization << '\n'
      << "per-processor utilization: min " << stats.min_processor_utilization
      << ", max " << stats.max_processor_utilization << '\n'
      << "lifetime: " << stats.admits_total << " admits, "
      << stats.rejects_total << " rejects, " << stats.departs_total
      << " departs, " << stats.migrations_total << " migrations over "
      << stats.rebalance_rounds_total << " rebalance rounds\n";

  const std::string violation = session.check_invariants();
  if (!violation.empty()) {
    out << "INVARIANT VIOLATION: " << violation << '\n';
    return 1;
  }
  out << "invariants: ok\n";
  return rejected == 0 ? 0 : 1;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  Options options;
  TaskSet tasks;
  try {
    options = parse(args);
    tasks = load_task_set(options.taskset_path);
  } catch (const Error& error) {
    err << "rmts_cli: " << error.what() << '\n' << kUsage;
    return 2;
  }

  out << "task set: N = " << tasks.size() << ", U = " << tasks.total_utilization()
      << ", U_M = " << tasks.normalized_utilization(options.processors)
      << " on M = " << options.processors << '\n';

  if (options.print_bounds) {
    const std::vector<BoundPtr> all{make_bound("ll"), make_bound("hc"),
                                    make_bound("tbound"), make_bound("rbound"),
                                    make_bound("burchard")};
    out << "parametric bounds (evaluated on the original set):\n";
    for (const BoundPtr& bound : all) {
      out << "  " << bound->name() << " = " << bound->evaluate(tasks) << '\n';
    }
    out << "  light threshold = " << light_task_threshold(tasks.size())
        << ", RM-TS cap = " << rmts_bound_cap(tasks.size()) << '\n';
  }

  if (options.online) return run_online(options, tasks, out);

  std::shared_ptr<const Partitioner> algorithm;
  try {
    algorithm = make_algorithm(options.algorithm, make_bound(options.bound));
  } catch (const Error& error) {
    err << "rmts_cli: " << error.what() << '\n' << kUsage;
    return 2;
  }

  const Assignment assignment = algorithm->partition(tasks, options.processors);
  out << algorithm->name() << ":\n" << assignment.describe();
  if (!assignment.success) return 1;

  const DispatchPolicy policy = options.algorithm == "edf-ts"
                                    ? DispatchPolicy::kEarliestDeadlineFirst
                                    : DispatchPolicy::kFixedPriority;

  if (options.robustness) {
    RobustnessConfig config;
    config.fault_seed = options.faults.seed;
    config.policy = policy;
    try {
      const RobustnessReport r = analyze_robustness(tasks, assignment, config);
      out << "robustness margins (largest fault with a miss-free run):\n"
          << "  overrun factor: simulated " << r.simulated_overrun_margin
          << ", analytic "
          << (r.analytic_supported ? std::to_string(r.analytic_overrun_margin)
                                   : std::string("n/a"))
          << '\n'
          << "  release jitter: simulated " << r.simulated_jitter_margin
          << " ticks, analytic "
          << (r.analytic_supported ? std::to_string(r.analytic_jitter_margin)
                                   : std::string("n/a"))
          << " ticks\n";
    } catch (const Error& error) {
      err << "rmts_cli: " << error.what() << '\n';
      return 2;
    }
  }

  if (options.simulate) {
    SimConfig sim;
    sim.horizon = recommended_horizon(tasks, 100'000'000);
    sim.policy = policy;
    sim.record_trace = options.gantt;
    sim.faults = options.faults;
    SimWorkspace workspace;
    const SimResult* run_ptr = nullptr;
    try {
      run_ptr = &simulate(tasks, assignment, sim, workspace);
    } catch (const Error& error) {
      err << "rmts_cli: " << error.what() << '\n';
      return 2;
    }
    const SimResult& run = *run_ptr;
    if (options.gantt) {
      out << render_gantt(run.trace, assignment.processors.size(),
                          run.simulated_until, 100);
    }
    out << "simulation over " << run.simulated_until << " ticks: "
        << (run.schedulable ? "no deadline misses" : "DEADLINE MISS") << " ("
        << run.jobs_completed << " jobs, " << run.migrations
        << " migrations, " << run.preemptions << " preemptions)\n";
    if (sim.faults.active()) {
      out << "fault injection: " << run.jobs_degraded << " degraded, "
          << run.jobs_aborted << " aborted, " << run.jobs_demoted
          << " demoted, " << run.subtasks_orphaned << " orphaned\n";
    }
    if (!run.schedulable) return 1;
  }
  return 0;
}

}  // namespace rmts
