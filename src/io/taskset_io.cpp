#include "io/taskset_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace rmts {

TaskSet read_task_set(std::istream& input) {
  std::vector<std::pair<Time, Time>> pairs;
  std::string line;
  int line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream fields(line);
    Time wcet = 0;
    Time period = 0;
    std::string trailing;
    if (!(fields >> wcet >> period) || (fields >> trailing)) {
      throw InvalidTaskError("task set line " + std::to_string(line_number) +
                             ": expected '<wcet> <period>'");
    }
    pairs.emplace_back(wcet, period);
  }
  return TaskSet::from_pairs(pairs);
}

TaskSet load_task_set(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw InvalidConfigError("cannot open task set file: " + path);
  }
  return read_task_set(file);
}

void write_task_set(std::ostream& output, const TaskSet& tasks) {
  output << "# " << tasks.size() << " tasks, U = " << tasks.total_utilization()
         << "\n# wcet period (ticks)\n";
  for (const Task& task : tasks) {
    output << task.wcet << ' ' << task.period << '\n';
  }
}

}  // namespace rmts
