#include "io/taskset_io.hpp"

#include <charconv>
#include <fstream>
#include <string_view>
#include <system_error>
#include <vector>

#include "common/error.hpp"

namespace rmts {

namespace {

std::string position(int line_number) {
  return "task set line " + std::to_string(line_number);
}

/// Parses one strictly-numeric field; rejects partial parses ("2500x") and
/// values that do not fit a Time, naming the line and field.
Time parse_time(std::string_view token, int line_number, const char* field) {
  Time value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw InvalidTaskError(position(line_number) + ": " + field + " '" +
                           std::string(token) + "' does not fit a Time");
  }
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    throw InvalidTaskError(position(line_number) + ": malformed " + field +
                           " '" + std::string(token) + "'");
  }
  return value;
}

}  // namespace

TaskSet read_task_set(std::istream& input) {
  constexpr std::string_view kSpace = " \t";
  std::vector<std::pair<Time, Time>> pairs;
  std::string line;
  int line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Tolerate CRLF files: a trailing '\r' is line ending, not content.
    if (!line.empty() && line.back() == '\r') line.pop_back();

    std::vector<std::string_view> tokens;
    std::string_view rest = line;
    while (true) {
      const std::size_t start = rest.find_first_not_of(kSpace);
      if (start == std::string_view::npos) break;
      rest.remove_prefix(start);
      const std::size_t end = rest.find_first_of(kSpace);
      tokens.push_back(rest.substr(0, end));
      if (end == std::string_view::npos) break;
      rest.remove_prefix(end);
    }
    if (tokens.empty()) continue;  // blank / comment-only line
    if (tokens.size() != 2) {
      throw InvalidTaskError(position(line_number) +
                             ": expected '<wcet> <period>', got " +
                             std::to_string(tokens.size()) + " fields");
    }
    const Time wcet = parse_time(tokens[0], line_number, "wcet");
    const Time period = parse_time(tokens[1], line_number, "period");
    // Validate the model invariants here so the diagnostic carries the
    // line number (TaskSet would reject them too, but namelessly).
    if (wcet <= 0) {
      throw InvalidTaskError(position(line_number) + ": wcet must be positive");
    }
    if (period <= 0) {
      throw InvalidTaskError(position(line_number) +
                             ": period must be positive");
    }
    if (wcet > period) {
      throw InvalidTaskError(position(line_number) +
                             ": wcet exceeds period (constrained deadlines)");
    }
    pairs.emplace_back(wcet, period);
  }
  return TaskSet::from_pairs(pairs);
}

TaskSet load_task_set(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw InvalidConfigError("cannot open task set file: " + path);
  }
  return read_task_set(file);
}

void write_task_set(std::ostream& output, const TaskSet& tasks) {
  output << "# " << tasks.size() << " tasks, U = " << tasks.total_utilization()
         << "\n# wcet period (ticks)\n";
  for (const Task& task : tasks) {
    output << task.wcet << ' ' << task.period << '\n';
  }
}

}  // namespace rmts
