// Execution traces and ASCII Gantt rendering.
//
// With SimConfig::record_trace the simulator emits a chronological event
// stream (dispatch changes, releases, completions, misses) that tooling
// can post-process; render_gantt() turns it into a terminal Gantt chart --
// one row per processor, one column per time slot -- which is how the
// examples and the CLI (--gantt) visualize split-task schedules.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "tasks/task.hpp"

namespace rmts {

/// One trace entry.  kRun marks a dispatch change on `processor`: from
/// `time` on it executes `task` (part `part`), or idles if `idle` is set.
struct TraceEvent {
  /// kAbort: a job was killed at its WCET budget (budget enforcement);
  /// kDemote: an overrunning job dropped to background priority.
  enum class Kind : std::uint8_t { kRun, kRelease, kComplete, kMiss, kAbort, kDemote };
  Kind kind{Kind::kRun};
  Time time{0};
  std::size_t processor{0};  ///< kRun only; 0 otherwise
  TaskId task{0};
  int part{0};               ///< kRun: chain part being executed
  bool idle{false};          ///< kRun: processor went idle

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Renders the kRun events of `trace` as an ASCII Gantt chart over
/// [0, horizon) with `width` columns; each task prints as a letter
/// ('A' + id mod 26, lowercase for non-zero chain parts), idle as '.'.
/// Sampling is at slot start instants.
[[nodiscard]] std::string render_gantt(const std::vector<TraceEvent>& trace,
                                       std::size_t processors, Time horizon,
                                       std::size_t width = 80);

}  // namespace rmts
