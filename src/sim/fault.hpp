// Fault-injection model for the discrete-event simulator.
//
// The paper's guarantees (Lemma 4, the parametric bounds) hold only under
// the nominal model: exact WCETs, releases no closer than T, no processor
// loss.  Real workloads overrun and jitter, so the simulator can inject
// three fault classes -- all seeded and bit-reproducible -- and contain
// overruns with a runtime policy:
//
//  * execution-time overruns: each job's actual execution is
//    round(overrun_factor * C^k) per chain piece (clamped to >= 1), plus
//    `overrun_ticks` on the final piece; a job overruns with
//    `overrun_probability` (1.0 = every job, deterministically);
//  * release jitter: each release is delayed by a uniform draw in
//    [0, release_jitter] ticks.  The absolute deadline stays anchored at
//    the *nominal* release + T (a late input still owes its output on
//    time), so jitter strictly shrinks the job's window -- the harsh,
//    deadline-preserving semantics.  Nominal release points stay on the
//    periodic grid, so consecutive releases are >= T - release_jitter
//    apart;
//  * processor failure: processor `failed_processor` stops executing at
//    `failure_time`; pieces that would run there are orphaned and the
//    affected jobs miss their deadlines.
//
// With the default-constructed FaultModel (factor 1.0, no ticks, no
// jitter, no failure) the simulation is bit-identical to the nominal
// path: no RNG is consulted and every counter matches the fault-free run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/time.hpp"

namespace rmts {

/// What the runtime does when a job exceeds its WCET budget.
enum class ContainmentPolicy : std::uint8_t {
  /// Nothing: the overrun propagates interference; misses are detected as
  /// usual.  This is the "how bad does it get" baseline.
  kNone,
  /// Abort the job the instant the current piece reaches its nominal piece
  /// WCET.  Overruns never inject extra interference, so an accepted
  /// partition stays miss-free (jobs degrade to aborted instead).
  kBudgetEnforcement,
  /// Drop the overrunning job to background priority once its current
  /// piece exhausts its nominal WCET: it only runs when the processor
  /// would otherwise idle, so victims are shielded; only the overrunning
  /// task itself can miss.
  kPriorityDemotion,
};

/// Sentinel for FaultModel::failed_processor: no processor fails.
inline constexpr std::size_t kNoProcessor = std::numeric_limits<std::size_t>::max();

/// Seeded fault-injection parameters; see the file comment for semantics.
/// Defaults are the nominal (fault-free) model.
struct FaultModel {
  /// Seed of the per-task fault streams (common/rng.hpp); the same model
  /// on the same task set replays the exact same fault pattern.
  std::uint64_t seed{0};
  /// Multiplicative execution-time factor applied per chain piece (> 0;
  /// values < 1.0 model early completion).
  double overrun_factor{1.0};
  /// Additive ticks appended to the final piece of an overrunning job.
  Time overrun_ticks{0};
  /// Fraction of jobs that overrun; 1.0 overruns every job without
  /// consulting the RNG (deterministic sweeps), 0.0 disables overruns.
  double overrun_probability{1.0};
  /// Maximum release delay in ticks (uniform per-job draw; 0 = none).
  Time release_jitter{0};
  /// Processor that fails, or kNoProcessor.
  std::size_t failed_processor{kNoProcessor};
  /// Instant the failed processor stops executing.
  Time failure_time{0};
  ContainmentPolicy containment{ContainmentPolicy::kNone};

  /// True iff overruns can change any job's execution time.
  [[nodiscard]] bool injects_overruns() const noexcept {
    return (overrun_factor != 1.0 || overrun_ticks != 0) && overrun_probability > 0.0;
  }

  /// True iff this model can perturb the nominal schedule at all.
  [[nodiscard]] bool active() const noexcept {
    return injects_overruns() || release_jitter > 0 || failed_processor != kNoProcessor;
  }
};

}  // namespace rmts
