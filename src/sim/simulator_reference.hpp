// Naive reference simulator core, retained as the differential-testing
// oracle for the indexed core in sim/simulator.hpp.
//
// This is the original straight-line implementation: at every event point
// it rescans all n tasks and m processors for the next event, keeps the
// per-processor ready queues in std::set, and allocates all per-run state
// on entry.  It is deliberately simple -- every semantic rule appears
// exactly once, in the order the documentation states it -- which makes it
// slow (O(n + m) per event) but easy to audit.
//
// Contract: for every (tasks, assignment, config), simulate_reference()
// and simulate() return bit-identical SimResults -- every counter, every
// miss, the full trace.  tests/sim_differential_test.cpp and rmts_fuzz
// assert this across policies and fault configurations; bench_e17 measures
// the speedup of the indexed core against this baseline.  Any semantic
// change must be made to BOTH cores.
#pragma once

#include "sim/simulator.hpp"

namespace rmts {

/// Reference implementation of simulate(): identical semantics and
/// validation, O(n + m) per event, fresh allocations per call.
[[nodiscard]] SimResult simulate_reference(const TaskSet& tasks,
                                           const Assignment& assignment,
                                           const SimConfig& config);

}  // namespace rmts
