// Indexed simulator core.  See simulator.hpp for the architecture summary
// and simulator_reference.{hpp,cpp} for the naive oracle this core must
// match bit-for-bit.
//
// The bit-identity argument, phase by phase: the reference core finds the
// next event by scanning every task and processor, then processes the due
// events in a fixed phase order (failure, demotions, completions,
// activations, releases, dispatch), each phase in ascending index order.
// This core obtains the same next-event time from an indexed min-heap
// whose slots are (activation, release, completion, budget, failure)
// events, pops all events due at that instant -- the heap tie-breaks on
// slot id, so each category pops in ascending index -- and runs the exact
// same phase bodies over the popped lists.  Running-job state (remaining
// execution, containment budget, per-processor busy time), which the
// reference decrements on every event, is kept implicit here as absolute
// event times and synchronized lazily (sync_run) whenever a phase touches
// the job; the arithmetic telescopes to the reference's per-event
// decrements exactly, in integers.  Dispatch only re-picks processors
// whose ready queue or running job changed ("touched"); untouched
// processors cannot change their pick, so the emitted trace is identical.
#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/checked_math.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"

namespace rmts {

namespace detail {

namespace {

/// Sentinel rank / processor index ("none").
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Saturating addition of non-negative Times (fault-scaled execution times
/// can reach overflow scale; event times must stay comparable, not UB).
Time add_sat(Time a, Time b) noexcept {
  const auto sum = checked_add(a, b);
  return sum ? *sum : kTimeInfinity;
}

void validate_faults(const FaultModel& faults, std::size_t processors) {
  if (!(faults.overrun_factor > 0.0) || !std::isfinite(faults.overrun_factor)) {
    throw InvalidConfigError("simulate: overrun_factor must be positive and finite");
  }
  if (faults.overrun_ticks < 0) {
    throw InvalidConfigError("simulate: overrun_ticks must be non-negative");
  }
  if (faults.overrun_probability < 0.0 || faults.overrun_probability > 1.0) {
    throw InvalidConfigError("simulate: overrun_probability must be in [0, 1]");
  }
  if (faults.release_jitter < 0) {
    throw InvalidConfigError("simulate: release_jitter must be non-negative");
  }
  if (faults.failed_processor != kNoProcessor) {
    if (faults.failed_processor >= processors) {
      throw InvalidConfigError("simulate: failed_processor out of range");
    }
    if (faults.failure_time < 0) {
      throw InvalidConfigError("simulate: failure_time must be non-negative");
    }
  }
}

}  // namespace

/// One piece of a task's split chain, in execution order.
struct Piece {
  std::size_t processor;
  Time wcet;
  /// EDF mode: activation offset from the job release (window start) and
  /// the piece's relative deadline end.  Unused under fixed priority.
  Time window_start;
  Time window_end;
};

struct Job {
  bool active{false};
  Time release{0};
  Time deadline{0};
  std::size_t pos{0};  // current chain piece
  Time remaining{0};   // remaining injected execution of the current piece
  // Fault state.
  double factor{1.0};       // injected multiplicative overrun for this job
  Time extra{0};            // injected additive ticks on the final piece
  Time budget_left{0};      // nominal wcet of the current piece not yet consumed
  bool abort_at_budget{false};  // current piece is capped (budget enforcement)
  bool demoted{false};      // running at background priority
  bool degraded{false};     // injected execution exceeds the nominal WCET
};

/// Indexed min-heap over a fixed universe of event slots.  Every slot is
/// always present (absent events park at kTimeInfinity), so updates are
/// pure decrease/increase-key sifts and the structure never allocates
/// after reset().  Ties break on slot id, which the engine exploits to pop
/// same-instant events in phase order (activations, releases, completions,
/// budgets, failure -- each ascending).
class EventHeap {
 public:
  void reset(std::size_t slots) {
    keys_.assign(slots, kTimeInfinity);
    heap_.resize(slots);
    pos_.resize(slots);
    // Identity layout is a valid heap: all keys equal, ids ascending.
    for (std::size_t i = 0; i < slots; ++i) {
      heap_[i] = i;
      pos_[i] = i;
    }
  }

  [[nodiscard]] Time min_key() const noexcept {
    return heap_.empty() ? kTimeInfinity : keys_[heap_[0]];
  }
  [[nodiscard]] std::size_t min_id() const noexcept { return heap_[0]; }

  void set(std::size_t id, Time key) noexcept {
    const Time old = keys_[id];
    if (old == key) return;
    keys_[id] = key;
    if (key < old) {
      sift_up(pos_[id]);
    } else {
      sift_down(pos_[id]);
    }
  }

 private:
  [[nodiscard]] bool before(std::size_t a, std::size_t b) const noexcept {
    return keys_[a] < keys_[b] || (keys_[a] == keys_[b] && a < b);
  }

  void sift_up(std::size_t i) noexcept {
    const std::size_t id = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(id, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i]] = i;
      i = parent;
    }
    heap_[i] = id;
    pos_[id] = i;
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t id = heap_[i];
    const std::size_t size = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= size) break;
      if (child + 1 < size && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], id)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = id;
    pos_[id] = i;
  }

  std::vector<Time> keys_;         // slot id -> event time
  std::vector<std::size_t> heap_;  // heap order -> slot id
  std::vector<std::size_t> pos_;   // slot id -> heap order
};

/// Fixed-priority ready queue: two rank bitmaps (nominal and demoted
/// priority bands).  pick() is a find-first-set over the nominal band,
/// falling back to the demoted band -- exactly the reference pick(): the
/// lowest-rank non-demoted candidate, else the lowest-rank demoted one.
class FpReadyQueue {
 public:
  void reset(std::size_t ranks) {
    const std::size_t words = (ranks + 63) / 64;
    normal_.assign(words, 0);
    demoted_.assign(words, 0);
    count_ = 0;
  }

  void insert(std::size_t rank, bool demoted, Time /*edf_key*/) noexcept {
    auto& bits = demoted ? demoted_ : normal_;
    bits[rank >> 6] |= std::uint64_t{1} << (rank & 63);
    ++count_;
  }

  bool erase(std::size_t rank) noexcept {
    const std::size_t w = rank >> 6;
    const std::uint64_t mask = std::uint64_t{1} << (rank & 63);
    if (((normal_[w] | demoted_[w]) & mask) == 0) return false;
    normal_[w] &= ~mask;
    demoted_[w] &= ~mask;
    --count_;
    return true;
  }

  [[nodiscard]] bool contains(std::size_t rank) const noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (rank & 63);
    return ((normal_[rank >> 6] | demoted_[rank >> 6]) & mask) != 0;
  }

  /// Moves a ready rank from the nominal to the background band.
  void demote(std::size_t rank) noexcept {
    const std::size_t w = rank >> 6;
    const std::uint64_t mask = std::uint64_t{1} << (rank & 63);
    if ((normal_[w] & mask) != 0) {
      normal_[w] &= ~mask;
      demoted_[w] |= mask;
    }
  }

  void clear() noexcept {
    std::fill(normal_.begin(), normal_.end(), 0);
    std::fill(demoted_.begin(), demoted_.end(), 0);
    count_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  [[nodiscard]] std::size_t pick() const noexcept {
    const std::size_t first_normal = first_set(normal_);
    return first_normal != kNone ? first_normal : first_set(demoted_);
  }

 private:
  [[nodiscard]] static std::size_t first_set(
      const std::vector<std::uint64_t>& bits) noexcept {
    for (std::size_t w = 0; w < bits.size(); ++w) {
      if (bits[w] != 0) {
        return w * 64 + static_cast<std::size_t>(std::countr_zero(bits[w]));
      }
    }
    return kNone;
  }

  std::vector<std::uint64_t> normal_;
  std::vector<std::uint64_t> demoted_;
  std::size_t count_{0};
};

/// EDF ready queue: an indexed min-heap keyed by (demoted, absolute piece
/// deadline, rank).  The lexicographic order reproduces the reference
/// pick() exactly: earliest-deadline non-demoted candidate with rank as
/// the deterministic tie-break, demoted candidates only when no nominal
/// work is ready.
class EdfReadyQueue {
 public:
  void reset(std::size_t ranks) {
    pos_.assign(ranks, kNone);
    heap_.clear();
  }

  void insert(std::size_t rank, bool demoted, Time key) {
    heap_.push_back(Entry{key, rank, demoted});
    pos_[rank] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
  }

  bool erase(std::size_t rank) noexcept {
    const std::size_t i = pos_[rank];
    if (i == kNone) return false;
    pos_[rank] = kNone;
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
      heap_[i] = heap_[last];
      pos_[heap_[i].rank] = i;
      heap_.pop_back();
      sift_down(i);
      sift_up(i);
    } else {
      heap_.pop_back();
    }
    return true;
  }

  [[nodiscard]] bool contains(std::size_t rank) const noexcept {
    return pos_[rank] != kNone;
  }

  /// Drops a ready rank to the background band (key grows; sift down).
  void demote(std::size_t rank) noexcept {
    const std::size_t i = pos_[rank];
    if (i == kNone) return;
    heap_[i].demoted = true;
    sift_down(i);
  }

  void clear() noexcept {
    for (const Entry& entry : heap_) pos_[entry.rank] = kNone;
    heap_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  [[nodiscard]] std::size_t pick() const noexcept {
    return heap_.empty() ? kNone : heap_[0].rank;
  }

 private:
  struct Entry {
    Time key;
    std::size_t rank;
    bool demoted;
  };

  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.demoted != b.demoted) return !a.demoted;
    if (a.key != b.key) return a.key < b.key;
    return a.rank < b.rank;
  }

  void sift_up(std::size_t i) noexcept {
    const Entry entry = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(entry, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].rank] = i;
      i = parent;
    }
    heap_[i] = entry;
    pos_[entry.rank] = i;
  }

  void sift_down(std::size_t i) noexcept {
    const Entry entry = heap_[i];
    const std::size_t size = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= size) break;
      if (child + 1 < size && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], entry)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i].rank] = i;
      i = child;
    }
    heap_[i] = entry;
    pos_[entry.rank] = i;
  }

  std::vector<Entry> heap_;
  std::vector<std::size_t> pos_;  // rank -> heap index, kNone if absent
};

/// Everything a run needs, owned by SimWorkspace and recycled across
/// simulate() calls; no member allocates once its high-water capacity is
/// reached.
struct SimState {
  // Split chains, flattened: pieces of rank r live at
  // [chain_off[r], chain_off[r+1]).
  std::vector<std::size_t> rank_of_id;
  std::vector<std::size_t> chain_off;
  std::vector<Piece> pieces;
  std::vector<char> piece_filled;  // chain-build duplicate detection
  // Per-run dynamic state.
  std::vector<Job> job;
  std::vector<Time> next_nominal;
  std::vector<Rng> stream;
  EventHeap heap;
  std::vector<FpReadyQueue> fp_ready;
  std::vector<EdfReadyQueue> edf_ready;
  std::vector<std::size_t> running;  // per processor; kNone = idle
  std::vector<Time> run_since;       // dispatch instant of the running job
  std::vector<char> dead;
  std::vector<char> touched;  // ready/running changed this event point
  struct Traced {
    std::size_t rank;  // kNone = traced as idle
    int part;
  };
  std::vector<Traced> traced;
  // Same-instant event lists, popped from the heap each event point.
  std::vector<std::size_t> due_activation;
  std::vector<std::size_t> due_release;
  std::vector<std::size_t> due_completion;
  std::vector<std::size_t> due_budget;
  SimResult result;
};

namespace {

/// Validates the assignment against the task set and (re)builds the
/// flattened chains in `s`, allocation-free at steady state.  Matches the
/// reference build_chains() checks and messages.
void build_chains(SimState& s, const TaskSet& tasks, const Assignment& assignment,
                  DispatchPolicy policy) {
  const std::size_t n = tasks.size();
  TaskId max_id = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    max_id = std::max(max_id, tasks[rank].id);
  }
  s.rank_of_id.assign(static_cast<std::size_t>(max_id) + 1, n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    s.rank_of_id[tasks[rank].id] = rank;
  }

  // Pass 1: count pieces per rank (and validate ids/wcets).
  s.chain_off.assign(n + 1, 0);
  for (const ProcessorAssignment& proc : assignment.processors) {
    for (const Subtask& sub : proc.subtasks) {
      if (sub.task_id >= s.rank_of_id.size() || s.rank_of_id[sub.task_id] == n) {
        throw InvalidConfigError("simulate: subtask of unknown task");
      }
      if (sub.wcet <= 0) throw InvalidConfigError("simulate: non-positive piece wcet");
      ++s.chain_off[s.rank_of_id[sub.task_id] + 1];
    }
  }
  for (std::size_t rank = 0; rank < n; ++rank) {
    s.chain_off[rank + 1] += s.chain_off[rank];
  }

  // Pass 2: place each piece at its part slot; a part outside [0, count)
  // implies some part is missing, a filled slot is a duplicate.
  const std::size_t total = s.chain_off[n];
  s.pieces.assign(total, Piece{});
  s.piece_filled.assign(total, 0);
  for (std::size_t q = 0; q < assignment.processors.size(); ++q) {
    for (const Subtask& sub : assignment.processors[q].subtasks) {
      const std::size_t rank = s.rank_of_id[sub.task_id];
      const std::size_t count = s.chain_off[rank + 1] - s.chain_off[rank];
      if (sub.part < 0 || static_cast<std::size_t>(sub.part) >= count) {
        throw InvalidConfigError("simulate: chain with missing part");
      }
      const std::size_t idx = s.chain_off[rank] + static_cast<std::size_t>(sub.part);
      if (s.piece_filled[idx]) {
        throw InvalidConfigError("simulate: duplicate chain part");
      }
      s.piece_filled[idx] = 1;
      // window_end temporarily holds the piece's relative deadline; the
      // window walk below turns it into the absolute-in-job offset.
      s.pieces[idx] = Piece{q, sub.wcet, 0, sub.deadline};
    }
  }

  // Pass 3: chain-order walk per rank -- window offsets + coverage.
  for (std::size_t rank = 0; rank < n; ++rank) {
    Time covered = 0;
    Time window = 0;
    for (std::size_t idx = s.chain_off[rank]; idx < s.chain_off[rank + 1]; ++idx) {
      Piece& piece = s.pieces[idx];
      covered += piece.wcet;
      const Time delta = piece.window_end;
      piece.window_start = window;
      piece.window_end = window + delta;
      window += delta;
    }
    if (covered != tasks[rank].wcet) {
      throw InvalidConfigError("simulate: chain does not cover task wcet");
    }
    if (policy == DispatchPolicy::kEarliestDeadlineFirst &&
        window > tasks[rank].period) {
      throw InvalidConfigError("simulate: EDF windows exceed the period");
    }
  }
}

/// The event loop, templated over the ready-queue type (compile-time
/// dispatch-policy specialization; no per-event branching or virtual
/// calls).  Mirrors the reference core phase for phase -- see the file
/// comment for why the results are bit-identical.
template <class Queue>
void run_engine(SimState& s, std::vector<Queue>& ready, const TaskSet& tasks,
                const Assignment& assignment, const SimConfig& config) {
  const bool edf = config.policy == DispatchPolicy::kEarliestDeadlineFirst;
  const std::size_t n = tasks.size();
  const std::size_t m = assignment.processors.size();
  const FaultModel& faults = config.faults;
  const bool overruns = faults.injects_overruns();
  const bool budget_enforced =
      faults.containment == ContainmentPolicy::kBudgetEnforcement;
  const bool demotion =
      faults.containment == ContainmentPolicy::kPriorityDemotion;

  SimResult& result = s.result;
  result.schedulable = false;
  result.misses.clear();
  result.simulated_until = 0;
  result.events = 0;
  result.jobs_released = 0;
  result.jobs_completed = 0;
  result.preemptions = 0;
  result.migrations = 0;
  result.busy_time.assign(m, 0);
  result.max_response.assign(n, 0);
  result.jobs_degraded = 0;
  result.degraded_per_task.assign(n, 0);
  result.jobs_aborted = 0;
  result.jobs_demoted = 0;
  result.subtasks_orphaned = 0;
  result.trace.clear();

  // Per-task fault streams: draws happen in rank order at each release
  // event, so the pattern is a pure function of (seed, task, job index).
  s.stream.clear();
  if (overruns || faults.release_jitter > 0) {
    const Rng base(faults.seed);
    s.stream.reserve(n);
    for (std::size_t rank = 0; rank < n; ++rank) s.stream.push_back(base.fork(rank));
  }

  // Event-slot layout (ids double as same-instant pop order).
  const std::size_t slot_release = n;       // activations occupy [0, n)
  const std::size_t slot_completion = 2 * n;
  const std::size_t slot_budget = 2 * n + m;
  const std::size_t slot_failure = 2 * n + 2 * m;
  s.heap.reset(slot_failure + 1);
  if (faults.failed_processor != kNoProcessor) {
    s.heap.set(slot_failure, faults.failure_time);
  }

  s.job.assign(n, Job{});
  s.next_nominal.resize(n);
  // Nominal (periodic-grid) release instants anchor deadlines; the actual
  // release may lag by the drawn jitter.
  const auto schedule_release = [&](std::size_t rank) {
    Time actual = s.next_nominal[rank];
    if (faults.release_jitter > 0) {
      actual = add_sat(actual, s.stream[rank].uniform_int(0, faults.release_jitter));
    }
    s.heap.set(slot_release + rank, actual);
  };
  for (std::size_t rank = 0; rank < n; ++rank) {
    s.next_nominal[rank] = config.offsets.empty() ? 0 : config.offsets[rank];
    schedule_release(rank);
  }

  ready.resize(m);
  for (Queue& queue : ready) queue.reset(n);
  s.running.assign(m, kNone);
  s.run_since.assign(m, 0);
  s.dead.assign(m, 0);
  s.touched.assign(m, 0);
  s.traced.assign(m, SimState::Traced{kNone, 0});

  const auto chain_len = [&](std::size_t rank) {
    return s.chain_off[rank + 1] - s.chain_off[rank];
  };
  const auto piece_of = [&](std::size_t rank, std::size_t pos) -> const Piece& {
    return s.pieces[s.chain_off[rank] + pos];
  };
  // Piece absolute-deadline key for EDF dispatch.
  const auto edf_key = [&](std::size_t rank) {
    return s.job[rank].release + piece_of(rank, s.job[rank].pos).window_end;
  };
  /// Injected execution time of chain piece `pos` for the job of `rank`.
  const auto injected_exec = [&](std::size_t rank, std::size_t pos) {
    const Job& j = s.job[rank];
    Time exec = piece_of(rank, pos).wcet;
    if (j.factor != 1.0) {
      const double scaled = j.factor * static_cast<double>(exec);
      exec = scaled >= static_cast<double>(kTimeInfinity)
                 ? kTimeInfinity
                 : std::max<Time>(1, static_cast<Time>(std::llround(scaled)));
    }
    if (pos + 1 == chain_len(rank)) exec = add_sat(exec, j.extra);
    return exec;
  };
  /// Loads piece `job[rank].pos` into the job's execution state.
  const auto enter_piece = [&](std::size_t rank) {
    Job& j = s.job[rank];
    const Time nominal = piece_of(rank, j.pos).wcet;
    const Time exec = injected_exec(rank, j.pos);
    j.budget_left = nominal;
    j.abort_at_budget = budget_enforced && exec > nominal;
    j.remaining = j.abort_at_budget ? nominal : exec;
  };
  // Queue a piece: immediately ready, or parked until its window opens.
  // Pieces bound for a failed processor are orphaned and never queued.
  const auto enqueue = [&](std::size_t rank, Time now) {
    const Piece& piece = piece_of(rank, s.job[rank].pos);
    if (s.dead[piece.processor]) {
      ++result.subtasks_orphaned;
      return;
    }
    const Time start =
        edf ? std::max(now, s.job[rank].release + piece.window_start) : now;
    if (start <= now) {
      ready[piece.processor].insert(rank, s.job[rank].demoted, edf_key(rank));
      s.touched[piece.processor] = 1;
    } else {
      s.heap.set(rank, start);  // activation slot
    }
  };
  // Brings the running job on `q` (and the processor's busy time) up to
  // `to`.  Telescopes to the reference core's per-event decrements.
  const auto sync_run = [&](std::size_t q, Time to) {
    const Time elapsed = to - s.run_since[q];
    if (elapsed == 0) return;
    Job& j = s.job[s.running[q]];
    j.remaining -= elapsed;
    j.budget_left = std::max<Time>(0, j.budget_left - elapsed);
    result.busy_time[q] += elapsed;
    s.run_since[q] = to;
  };

  Time now = 0;
  bool aborted = false;
  for (;;) {
    // Next event: release, running-piece completion or budget exhaustion,
    // window activation, or processor failure -- the heap minimum.
    const Time t_next = s.heap.min_key();
    ++result.events;

    // Events at exactly the horizon are still processed so deadlines on
    // the boundary are checked; only later events are cut off.
    if (t_next > config.horizon) {
      now = config.horizon;
      break;
    }
    now = t_next;

    // Pop everything due at this instant.  Ids tie-break the heap, so each
    // category list comes out in ascending index -- the reference's scan
    // order.
    s.due_activation.clear();
    s.due_release.clear();
    s.due_completion.clear();
    s.due_budget.clear();
    bool failure_due = false;
    while (s.heap.min_key() == now) {
      const std::size_t id = s.heap.min_id();
      s.heap.set(id, kTimeInfinity);
      if (id < slot_release) {
        s.due_activation.push_back(id);
      } else if (id < slot_completion) {
        s.due_release.push_back(id - slot_release);
      } else if (id < slot_budget) {
        s.due_completion.push_back(id - slot_completion);
      } else if (id < slot_failure) {
        s.due_budget.push_back(id - slot_budget);
      } else {
        failure_due = true;
      }
    }

    // Processor failure: strand whatever is queued there.  Affected jobs
    // stay active but can never progress, so they surface as deadline
    // misses at their next release.
    if (failure_due) {
      const std::size_t q = faults.failed_processor;
      s.dead[q] = 1;
      result.subtasks_orphaned += ready[q].size();
      ready[q].clear();
      if (s.running[q] != kNone) {
        sync_run(q, now);
        s.running[q] = kNone;
        s.heap.set(slot_completion + q, kTimeInfinity);
        s.heap.set(slot_budget + q, kTimeInfinity);
      }
      s.touched[q] = 1;
    }

    // Priority demotions: a running piece that exhausted its nominal WCET
    // budget while work remains drops to background priority.
    for (const std::size_t q : s.due_budget) {
      if (s.running[q] == kNone) continue;  // stranded by a same-instant failure
      const std::size_t rank = s.running[q];
      sync_run(q, now);
      Job& j = s.job[rank];
      if (j.demoted || j.budget_left != 0 || j.remaining <= 0) continue;
      j.demoted = true;
      ++result.jobs_demoted;
      if (config.record_trace) {
        result.trace.push_back(TraceEvent{TraceEvent::Kind::kDemote, now, q,
                                          tasks[rank].id,
                                          static_cast<int>(j.pos), false});
      }
      ready[q].demote(rank);
      s.touched[q] = 1;
    }

    // Piece completions and budget-enforcement aborts.
    for (const std::size_t q : s.due_completion) {
      if (s.running[q] == kNone) continue;  // stranded by a same-instant failure
      const std::size_t rank = s.running[q];
      sync_run(q, now);
      if (s.job[rank].remaining != 0) continue;
      ready[q].erase(rank);
      s.running[q] = kNone;
      s.heap.set(slot_budget + q, kTimeInfinity);
      s.touched[q] = 1;
      Job& j = s.job[rank];
      if (j.abort_at_budget) {
        // The piece hit its WCET budget with injected work left: kill the
        // job so the overrun cannot propagate interference.
        j.active = false;
        ++result.jobs_aborted;
        if (config.record_trace) {
          result.trace.push_back(TraceEvent{TraceEvent::Kind::kAbort, now, q,
                                            tasks[rank].id,
                                            static_cast<int>(j.pos), false});
        }
        continue;
      }
      ++j.pos;
      if (j.pos == chain_len(rank)) {
        j.active = false;
        ++result.jobs_completed;
        result.max_response[rank] =
            std::max(result.max_response[rank], now - j.release);
        if (config.record_trace) {
          result.trace.push_back(TraceEvent{TraceEvent::Kind::kComplete, now, 0,
                                            tasks[rank].id, 0, false});
        }
        if (now > j.deadline) {
          result.misses.push_back(DeadlineMiss{tasks[rank].id, j.release, j.deadline});
          if (config.record_trace) {
            result.trace.push_back(TraceEvent{TraceEvent::Kind::kMiss, now, 0,
                                              tasks[rank].id, 0, false});
          }
          if (config.stop_at_first_miss) {
            aborted = true;
            break;
          }
        }
      } else {
        enter_piece(rank);
        enqueue(rank, now);
        ++result.migrations;
      }
    }
    if (aborted) break;

    // Window activations falling due.
    for (const std::size_t rank : s.due_activation) {
      const std::size_t q = piece_of(rank, s.job[rank].pos).processor;
      if (s.dead[q]) {
        ++result.subtasks_orphaned;
      } else {
        ready[q].insert(rank, s.job[rank].demoted, edf_key(rank));
        s.touched[q] = 1;
      }
    }

    // Releases.  The absolute deadline is anchored at the NOMINAL release
    // (nominal + T), which under jitter-free operation equals the next
    // release instant, so an active job at its task's release instant is
    // exactly a deadline miss.
    for (const std::size_t rank : s.due_release) {
      Job& j = s.job[rank];
      if (j.active) {
        result.misses.push_back(DeadlineMiss{tasks[rank].id, j.release, j.deadline});
        if (config.record_trace) {
          result.trace.push_back(TraceEvent{TraceEvent::Kind::kMiss, now, 0,
                                            tasks[rank].id, 0, false});
        }
        if (config.stop_at_first_miss) {
          aborted = true;
          break;
        }
        // Continue mode: abandon the late job so the new one can run.
        const std::size_t q = piece_of(rank, j.pos).processor;
        if (ready[q].erase(rank)) s.touched[q] = 1;
        s.heap.set(rank, kTimeInfinity);  // cancel a pending activation
        if (s.running[q] == rank) {
          sync_run(q, now);
          s.running[q] = kNone;
          s.heap.set(slot_completion + q, kTimeInfinity);
          s.heap.set(slot_budget + q, kTimeInfinity);
          s.touched[q] = 1;
        }
      }
      j = Job{};
      j.active = true;
      j.release = now;
      j.deadline = add_sat(s.next_nominal[rank], tasks[rank].period);
      if (overruns) {
        const bool hit = faults.overrun_probability >= 1.0 ||
                         s.stream[rank].uniform() < faults.overrun_probability;
        if (hit) {
          j.factor = faults.overrun_factor;
          j.extra = faults.overrun_ticks;
          for (std::size_t pos = 0; pos < chain_len(rank); ++pos) {
            if (injected_exec(rank, pos) > piece_of(rank, pos).wcet) {
              j.degraded = true;
              break;
            }
          }
        }
      }
      if (j.degraded) {
        ++result.jobs_degraded;
        ++result.degraded_per_task[rank];
      }
      enter_piece(rank);
      enqueue(rank, now);
      ++result.jobs_released;
      s.next_nominal[rank] = add_sat(s.next_nominal[rank], tasks[rank].period);
      schedule_release(rank);
      if (config.record_trace) {
        result.trace.push_back(TraceEvent{TraceEvent::Kind::kRelease, now, 0,
                                          tasks[rank].id, 0, false});
      }
    }
    if (aborted) break;

    // Dispatch: re-pick every processor whose ready queue or running job
    // changed.  Untouched processors cannot change their pick, so skipping
    // them is trace-invisible.
    for (std::size_t q = 0; q < m; ++q) {
      if (!s.touched[q]) continue;
      s.touched[q] = 0;
      const std::size_t previous = s.running[q];
      const std::size_t top = ready[q].pick();
      if (top != kNone && previous != kNone && previous != top &&
          ready[q].contains(previous)) {
        ++result.preemptions;  // displaced before completing its piece
      }
      if (top != previous) {
        if (previous != kNone) {
          sync_run(q, now);
          s.heap.set(slot_completion + q, kTimeInfinity);
          s.heap.set(slot_budget + q, kTimeInfinity);
        }
        s.running[q] = top;
        if (top != kNone) {
          s.run_since[q] = now;
          const Job& j = s.job[top];
          s.heap.set(slot_completion + q, add_sat(now, j.remaining));
          if (demotion && !j.demoted && j.budget_left < j.remaining) {
            s.heap.set(slot_budget + q, add_sat(now, j.budget_left));
          }
        }
      }
      if (config.record_trace) {
        const SimState::Traced current =
            top != kNone ? SimState::Traced{top, static_cast<int>(s.job[top].pos)}
                         : SimState::Traced{kNone, 0};
        if (current.rank != s.traced[q].rank || current.part != s.traced[q].part) {
          s.traced[q] = current;
          if (top != kNone) {
            result.trace.push_back(TraceEvent{TraceEvent::Kind::kRun, now, q,
                                              tasks[top].id, current.part,
                                              false});
          } else {
            result.trace.push_back(
                TraceEvent{TraceEvent::Kind::kRun, now, q, 0, 0, true});
          }
        }
      }
    }
  }

  // Bring every still-running processor's busy time up to the stop
  // instant (the reference advances all processors at every event).
  for (std::size_t q = 0; q < m; ++q) {
    if (s.running[q] != kNone) sync_run(q, now);
  }
  result.simulated_until = now;
  result.schedulable = result.misses.empty();
}

}  // namespace

}  // namespace detail

const SimResult& simulate(const TaskSet& tasks, const Assignment& assignment,
                          const SimConfig& config, SimWorkspace& workspace) {
  if (config.horizon <= 0) throw InvalidConfigError("simulate: horizon must be positive");
  if (!config.offsets.empty() && config.offsets.size() != tasks.size()) {
    throw InvalidConfigError("simulate: offsets size mismatch");
  }
  detail::SimState& s = *workspace.state_;
  {
    const trace::Span span(trace::Stage::kSimRun);
    detail::build_chains(s, tasks, assignment, config.policy);
    detail::validate_faults(config.faults, assignment.processors.size());
    if (config.policy == DispatchPolicy::kEarliestDeadlineFirst) {
      detail::run_engine(s, s.edf_ready, tasks, assignment, config);
    } else {
      detail::run_engine(s, s.fp_ready, tasks, assignment, config);
    }
  }
  trace::count(trace::Counter::kSimRuns);
  trace::count(trace::Counter::kSimEvents, s.result.events);
  return s.result;
}

SimResult simulate(const TaskSet& tasks, const Assignment& assignment,
                   const SimConfig& config) {
  SimWorkspace workspace;
  (void)simulate(tasks, assignment, config, workspace);
  return std::move(workspace.state_->result);
}

std::vector<SimResult> simulate_batch(std::span<const SimJob> jobs,
                                      std::size_t threads) {
  for (const SimJob& item : jobs) {
    if (item.tasks == nullptr || item.assignment == nullptr) {
      throw InvalidConfigError("simulate_batch: null tasks or assignment");
    }
  }
  std::vector<SimResult> results(jobs.size());
  parallel_for(jobs.size(), threads, [&](std::size_t i) {
    // One reusable workspace per pool thread; the pool is persistent, so
    // the workspaces amortize across batches.
    thread_local SimWorkspace workspace;
    results[i] = simulate(*jobs[i].tasks, *jobs[i].assignment, jobs[i].config,
                          workspace);
  });
  return results;
}

SimWorkspace::SimWorkspace() : state_(std::make_unique<detail::SimState>()) {}
SimWorkspace::~SimWorkspace() = default;
SimWorkspace::SimWorkspace(SimWorkspace&&) noexcept = default;
SimWorkspace& SimWorkspace::operator=(SimWorkspace&&) noexcept = default;

Time recommended_horizon(const TaskSet& tasks, Time cap) {
  const std::vector<Time> periods = tasks.periods();
  const auto h = hyperperiod(periods);
  if (!h) return cap;
  const auto twice = checked_mul(*h, 2);
  if (!twice || *twice > cap) return cap;
  return *twice;
}

}  // namespace rmts
