#include "sim/simulator.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "common/checked_math.hpp"
#include "common/error.hpp"

namespace rmts {

namespace {

/// One piece of a task's split chain, in execution order.
struct Piece {
  std::size_t processor;
  Time wcet;
  /// EDF mode: activation offset from the job release (window start) and
  /// the piece's relative deadline end.  Unused under fixed priority.
  Time window_start;
  Time window_end;
};

/// Execution chains per RM rank, validated against the task set.
std::vector<std::vector<Piece>> build_chains(const TaskSet& tasks,
                                             const Assignment& assignment,
                                             DispatchPolicy policy) {
  // part -> (processor, subtask), per rank; std::map keeps chain order.
  struct Raw {
    std::size_t processor;
    Time wcet;
    Time deadline;
  };
  std::vector<std::map<int, Raw>> parts(tasks.size());
  std::vector<std::size_t> rank_of_id;
  for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
    const TaskId id = tasks[rank].id;
    if (id >= rank_of_id.size()) rank_of_id.resize(id + 1, tasks.size());
    rank_of_id[id] = rank;
  }

  for (std::size_t q = 0; q < assignment.processors.size(); ++q) {
    for (const Subtask& s : assignment.processors[q].subtasks) {
      if (s.task_id >= rank_of_id.size() || rank_of_id[s.task_id] == tasks.size()) {
        throw InvalidConfigError("simulate: subtask of unknown task");
      }
      if (s.wcet <= 0) throw InvalidConfigError("simulate: non-positive piece wcet");
      const std::size_t rank = rank_of_id[s.task_id];
      if (!parts[rank].emplace(s.part, Raw{q, s.wcet, s.deadline}).second) {
        throw InvalidConfigError("simulate: duplicate chain part");
      }
    }
  }

  std::vector<std::vector<Piece>> chains(tasks.size());
  for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
    Time total = 0;
    Time window = 0;
    int expected_part = 0;
    for (const auto& [part, raw] : parts[rank]) {
      if (part != expected_part++) {
        throw InvalidConfigError("simulate: chain with missing part");
      }
      total += raw.wcet;
      chains[rank].push_back(
          Piece{raw.processor, raw.wcet, window, window + raw.deadline});
      window += raw.deadline;
    }
    if (total != tasks[rank].wcet) {
      throw InvalidConfigError("simulate: chain does not cover task wcet");
    }
    if (policy == DispatchPolicy::kEarliestDeadlineFirst &&
        window > tasks[rank].period) {
      throw InvalidConfigError("simulate: EDF windows exceed the period");
    }
  }
  return chains;
}

struct Job {
  bool active{false};
  Time release{0};
  Time deadline{0};
  std::size_t pos{0};  // current chain piece
  Time remaining{0};   // remaining wcet of the current piece
};

}  // namespace

SimResult simulate(const TaskSet& tasks, const Assignment& assignment,
                   const SimConfig& config) {
  if (config.horizon <= 0) throw InvalidConfigError("simulate: horizon must be positive");
  if (!config.offsets.empty() && config.offsets.size() != tasks.size()) {
    throw InvalidConfigError("simulate: offsets size mismatch");
  }
  const bool edf = config.policy == DispatchPolicy::kEarliestDeadlineFirst;
  const std::size_t n = tasks.size();
  const std::size_t m = assignment.processors.size();
  const auto chains = build_chains(tasks, assignment, config.policy);

  SimResult result;
  result.busy_time.assign(m, 0);
  result.max_response.assign(n, 0);

  std::vector<Job> job(n);
  std::vector<Time> next_release(n, 0);
  for (std::size_t rank = 0; rank < n; ++rank) {
    next_release[rank] = config.offsets.empty() ? 0 : config.offsets[rank];
  }

  // Ready ranks per processor (rank-ordered for deterministic ties);
  // dispatch key depends on the policy.
  std::vector<std::set<std::size_t>> ready(m);
  std::vector<std::optional<std::size_t>> running(m);
  // Last (rank, part) each processor was traced as executing; nullopt =
  // idle.  Tracked separately from `running` because completions reset
  // `running` before the dispatch step runs.
  std::vector<std::optional<std::pair<std::size_t, std::size_t>>> traced(m);
  // EDF window activations that are still in the future: rank -> time.
  std::vector<Time> activation(n, kTimeInfinity);

  // Piece absolute-deadline key for EDF dispatch.
  const auto edf_key = [&](std::size_t rank) {
    return job[rank].release + chains[rank][job[rank].pos].window_end;
  };
  const auto pick = [&](const std::set<std::size_t>& candidates)
      -> std::optional<std::size_t> {
    if (candidates.empty()) return std::nullopt;
    if (!edf) return *candidates.begin();
    std::size_t best = *candidates.begin();
    for (const std::size_t rank : candidates) {
      if (edf_key(rank) < edf_key(best)) best = rank;
    }
    return best;
  };
  // Queue a piece: immediately ready, or parked until its window opens.
  const auto enqueue = [&](std::size_t rank, Time now) {
    const Piece& piece = chains[rank][job[rank].pos];
    const Time start =
        edf ? std::max(now, job[rank].release + piece.window_start) : now;
    if (start <= now) {
      ready[piece.processor].insert(rank);
    } else {
      activation[rank] = start;
    }
  };

  Time now = 0;
  bool aborted = false;
  while (!aborted) {
    // Next event: release, running-piece completion, or window activation.
    Time t_next = kTimeInfinity;
    for (std::size_t rank = 0; rank < n; ++rank) {
      t_next = std::min({t_next, next_release[rank], activation[rank]});
    }
    for (std::size_t q = 0; q < m; ++q) {
      if (running[q]) t_next = std::min(t_next, now + job[*running[q]].remaining);
    }

    // Events at exactly the horizon are still processed so deadlines on
    // the boundary are checked; only later events are cut off.
    const bool past_end = t_next > config.horizon;
    const Time target = past_end ? config.horizon : t_next;

    // Advance every processor to the target instant.
    const Time elapsed = target - now;
    for (std::size_t q = 0; q < m; ++q) {
      if (!running[q]) continue;
      job[*running[q]].remaining -= elapsed;
      result.busy_time[q] += elapsed;
    }
    now = target;
    if (past_end) break;

    // Piece completions.
    for (std::size_t q = 0; q < m; ++q) {
      if (!running[q]) continue;
      const std::size_t rank = *running[q];
      if (job[rank].remaining != 0) continue;
      ready[q].erase(rank);
      running[q].reset();
      Job& j = job[rank];
      ++j.pos;
      if (j.pos == chains[rank].size()) {
        j.active = false;
        ++result.jobs_completed;
        result.max_response[rank] =
            std::max(result.max_response[rank], now - j.release);
        if (config.record_trace) {
          result.trace.push_back(TraceEvent{TraceEvent::Kind::kComplete, now, 0,
                                            tasks[rank].id, 0, false});
        }
        if (now > j.deadline) {
          result.misses.push_back(DeadlineMiss{tasks[rank].id, j.release, j.deadline});
          if (config.record_trace) {
            result.trace.push_back(TraceEvent{TraceEvent::Kind::kMiss, now, 0,
                                              tasks[rank].id, 0, false});
          }
          if (config.stop_at_first_miss) {
            aborted = true;
            break;
          }
        }
      } else {
        j.remaining = chains[rank][j.pos].wcet;
        enqueue(rank, now);
        ++result.migrations;
      }
    }
    if (aborted) break;

    // Window activations falling due.
    for (std::size_t rank = 0; rank < n; ++rank) {
      if (activation[rank] != now) continue;
      activation[rank] = kTimeInfinity;
      ready[chains[rank][job[rank].pos].processor].insert(rank);
    }

    // Releases.  deadline == next release (implicit deadlines), so an
    // active job at its task's release instant is exactly a deadline miss.
    for (std::size_t rank = 0; rank < n && !aborted; ++rank) {
      if (next_release[rank] != now) continue;
      Job& j = job[rank];
      if (j.active) {
        result.misses.push_back(DeadlineMiss{tasks[rank].id, j.release, j.deadline});
        if (config.record_trace) {
          result.trace.push_back(TraceEvent{TraceEvent::Kind::kMiss, now, 0,
                                            tasks[rank].id, 0, false});
        }
        if (config.stop_at_first_miss) {
          aborted = true;
          break;
        }
        // Continue mode: abandon the late job so the new one can run.
        ready[chains[rank][j.pos].processor].erase(rank);
        activation[rank] = kTimeInfinity;
        for (std::size_t q = 0; q < m; ++q) {
          if (running[q] == rank) running[q].reset();
        }
      }
      j = Job{true, now, now + tasks[rank].period, 0, chains[rank][0].wcet};
      enqueue(rank, now);
      ++result.jobs_released;
      next_release[rank] += tasks[rank].period;
      if (config.record_trace) {
        result.trace.push_back(TraceEvent{TraceEvent::Kind::kRelease, now, 0,
                                          tasks[rank].id, 0, false});
      }
    }
    if (aborted) break;

    // Dispatch: best ready rank per processor under the active policy.
    for (std::size_t q = 0; q < m; ++q) {
      const std::optional<std::size_t> previous = running[q];
      const std::optional<std::size_t> top = pick(ready[q]);
      if (top && previous && *previous != *top && ready[q].count(*previous) != 0) {
        ++result.preemptions;  // displaced before completing its piece
      }
      running[q] = top;
      if (config.record_trace) {
        std::optional<std::pair<std::size_t, std::size_t>> current;
        if (top) current = std::make_pair(*top, job[*top].pos);
        if (current != traced[q]) {
          traced[q] = current;
          if (top) {
            result.trace.push_back(TraceEvent{TraceEvent::Kind::kRun, now, q,
                                              tasks[*top].id,
                                              static_cast<int>(job[*top].pos),
                                              false});
          } else {
            result.trace.push_back(
                TraceEvent{TraceEvent::Kind::kRun, now, q, 0, 0, true});
          }
        }
      }
    }
  }

  result.simulated_until = now;
  result.schedulable = result.misses.empty();
  return result;
}

Time recommended_horizon(const TaskSet& tasks, Time cap) {
  const std::vector<Time> periods = tasks.periods();
  const auto h = hyperperiod(periods);
  if (!h) return cap;
  const auto twice = checked_mul(*h, 2);
  if (!twice || *twice > cap) return cap;
  return *twice;
}

}  // namespace rmts
