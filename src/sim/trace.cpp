#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace rmts {

std::string render_gantt(const std::vector<TraceEvent>& trace,
                         std::size_t processors, Time horizon,
                         std::size_t width) {
  if (width == 0 || horizon <= 0 || processors == 0) return {};

  // Per-processor run segments, chronological (the trace is emitted in
  // time order; dispatch changes fully describe who runs when).
  struct Segment {
    Time start;
    char symbol;
  };
  std::vector<std::vector<Segment>> rows(processors);
  for (auto& row : rows) row.push_back(Segment{0, '.'});
  for (const TraceEvent& event : trace) {
    if (event.kind != TraceEvent::Kind::kRun) continue;
    char symbol = '.';
    if (!event.idle) {
      symbol = static_cast<char>('A' + static_cast<char>(event.task % 26));
      if (event.part > 0) {
        symbol = static_cast<char>(symbol - 'A' + 'a');  // split piece
      }
    }
    rows[event.processor].push_back(Segment{event.time, symbol});
  }

  const Time slot = std::max<Time>(1, ceil_div(horizon, static_cast<Time>(width)));
  std::ostringstream os;
  os << "time 0.." << horizon << ", one column = " << slot << " ticks\n";
  for (std::size_t q = 0; q < processors; ++q) {
    os << 'P' << q + 1 << ' ';
    std::size_t cursor = 0;
    for (Time t = 0; t < horizon; t += slot) {
      // Last segment starting at or before t.
      while (cursor + 1 < rows[q].size() && rows[q][cursor + 1].start <= t) {
        ++cursor;
      }
      os << rows[q][cursor].symbol;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace rmts
