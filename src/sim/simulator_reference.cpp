#include "sim/simulator_reference.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "common/checked_math.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace rmts {

namespace {

/// One piece of a task's split chain, in execution order.
struct Piece {
  std::size_t processor;
  Time wcet;
  /// EDF mode: activation offset from the job release (window start) and
  /// the piece's relative deadline end.  Unused under fixed priority.
  Time window_start;
  Time window_end;
};

/// Execution chains per RM rank, validated against the task set.
std::vector<std::vector<Piece>> build_chains(const TaskSet& tasks,
                                             const Assignment& assignment,
                                             DispatchPolicy policy) {
  // part -> (processor, subtask), per rank; std::map keeps chain order.
  struct Raw {
    std::size_t processor;
    Time wcet;
    Time deadline;
  };
  std::vector<std::map<int, Raw>> parts(tasks.size());
  std::vector<std::size_t> rank_of_id;
  for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
    const TaskId id = tasks[rank].id;
    if (id >= rank_of_id.size()) rank_of_id.resize(id + 1, tasks.size());
    rank_of_id[id] = rank;
  }

  for (std::size_t q = 0; q < assignment.processors.size(); ++q) {
    for (const Subtask& s : assignment.processors[q].subtasks) {
      if (s.task_id >= rank_of_id.size() || rank_of_id[s.task_id] == tasks.size()) {
        throw InvalidConfigError("simulate: subtask of unknown task");
      }
      if (s.wcet <= 0) throw InvalidConfigError("simulate: non-positive piece wcet");
      const std::size_t rank = rank_of_id[s.task_id];
      if (!parts[rank].emplace(s.part, Raw{q, s.wcet, s.deadline}).second) {
        throw InvalidConfigError("simulate: duplicate chain part");
      }
    }
  }

  std::vector<std::vector<Piece>> chains(tasks.size());
  for (std::size_t rank = 0; rank < tasks.size(); ++rank) {
    Time total = 0;
    Time window = 0;
    int expected_part = 0;
    for (const auto& [part, raw] : parts[rank]) {
      if (part != expected_part++) {
        throw InvalidConfigError("simulate: chain with missing part");
      }
      total += raw.wcet;
      chains[rank].push_back(
          Piece{raw.processor, raw.wcet, window, window + raw.deadline});
      window += raw.deadline;
    }
    if (total != tasks[rank].wcet) {
      throw InvalidConfigError("simulate: chain does not cover task wcet");
    }
    if (policy == DispatchPolicy::kEarliestDeadlineFirst &&
        window > tasks[rank].period) {
      throw InvalidConfigError("simulate: EDF windows exceed the period");
    }
  }
  return chains;
}

void validate_faults(const FaultModel& faults, std::size_t processors) {
  if (!(faults.overrun_factor > 0.0) || !std::isfinite(faults.overrun_factor)) {
    throw InvalidConfigError("simulate: overrun_factor must be positive and finite");
  }
  if (faults.overrun_ticks < 0) {
    throw InvalidConfigError("simulate: overrun_ticks must be non-negative");
  }
  if (faults.overrun_probability < 0.0 || faults.overrun_probability > 1.0) {
    throw InvalidConfigError("simulate: overrun_probability must be in [0, 1]");
  }
  if (faults.release_jitter < 0) {
    throw InvalidConfigError("simulate: release_jitter must be non-negative");
  }
  if (faults.failed_processor != kNoProcessor) {
    if (faults.failed_processor >= processors) {
      throw InvalidConfigError("simulate: failed_processor out of range");
    }
    if (faults.failure_time < 0) {
      throw InvalidConfigError("simulate: failure_time must be non-negative");
    }
  }
}

/// Saturating addition of non-negative Times (fault-scaled execution times
/// can reach overflow scale; event times must stay comparable, not UB).
Time add_sat(Time a, Time b) noexcept {
  const auto sum = checked_add(a, b);
  return sum ? *sum : kTimeInfinity;
}

struct Job {
  bool active{false};
  Time release{0};
  Time deadline{0};
  std::size_t pos{0};  // current chain piece
  Time remaining{0};   // remaining injected execution of the current piece
  // Fault state.
  double factor{1.0};       // injected multiplicative overrun for this job
  Time extra{0};            // injected additive ticks on the final piece
  Time budget_left{0};      // nominal wcet of the current piece not yet consumed
  bool abort_at_budget{false};  // current piece is capped (budget enforcement)
  bool demoted{false};      // running at background priority
  bool degraded{false};     // injected execution exceeds the nominal WCET
};

}  // namespace

SimResult simulate_reference(const TaskSet& tasks,
                             const Assignment& assignment,
                             const SimConfig& config) {
  if (config.horizon <= 0) throw InvalidConfigError("simulate: horizon must be positive");
  if (!config.offsets.empty() && config.offsets.size() != tasks.size()) {
    throw InvalidConfigError("simulate: offsets size mismatch");
  }
  const bool edf = config.policy == DispatchPolicy::kEarliestDeadlineFirst;
  const std::size_t n = tasks.size();
  const std::size_t m = assignment.processors.size();
  const auto chains = build_chains(tasks, assignment, config.policy);
  const FaultModel& faults = config.faults;
  validate_faults(faults, m);
  const bool overruns = faults.injects_overruns();
  const bool budget_enforced =
      faults.containment == ContainmentPolicy::kBudgetEnforcement;
  const bool demotion =
      faults.containment == ContainmentPolicy::kPriorityDemotion;

  SimResult result;
  result.busy_time.assign(m, 0);
  result.max_response.assign(n, 0);
  result.degraded_per_task.assign(n, 0);

  // Per-task fault streams: draws happen in rank order at each release
  // event, so the pattern is a pure function of (seed, task, job index).
  std::vector<Rng> stream;
  if (overruns || faults.release_jitter > 0) {
    const Rng base(faults.seed);
    stream.reserve(n);
    for (std::size_t rank = 0; rank < n; ++rank) stream.push_back(base.fork(rank));
  }

  std::vector<Job> job(n);
  // Nominal (periodic-grid) release instants anchor deadlines; the actual
  // release may lag by the drawn jitter.
  std::vector<Time> next_nominal(n, 0);
  std::vector<Time> next_release(n, 0);
  const auto schedule_release = [&](std::size_t rank) {
    Time actual = next_nominal[rank];
    if (faults.release_jitter > 0) {
      actual = add_sat(actual, stream[rank].uniform_int(0, faults.release_jitter));
    }
    next_release[rank] = actual;
  };
  for (std::size_t rank = 0; rank < n; ++rank) {
    next_nominal[rank] = config.offsets.empty() ? 0 : config.offsets[rank];
    schedule_release(rank);
  }

  // Ready ranks per processor (rank-ordered for deterministic ties);
  // dispatch key depends on the policy.
  std::vector<std::set<std::size_t>> ready(m);
  std::vector<std::optional<std::size_t>> running(m);
  std::vector<char> dead(m, 0);
  bool failure_pending = faults.failed_processor != kNoProcessor;
  // Last (rank, part) each processor was traced as executing; nullopt =
  // idle.  Tracked separately from `running` because completions reset
  // `running` before the dispatch step runs.
  std::vector<std::optional<std::pair<std::size_t, std::size_t>>> traced(m);
  // EDF window activations that are still in the future: rank -> time.
  std::vector<Time> activation(n, kTimeInfinity);

  // Piece absolute-deadline key for EDF dispatch.
  const auto edf_key = [&](std::size_t rank) {
    return job[rank].release + chains[rank][job[rank].pos].window_end;
  };
  // Best ready rank under the active policy; demoted jobs only run when no
  // nominal-priority work is ready (background priority).
  const auto pick = [&](const std::set<std::size_t>& candidates)
      -> std::optional<std::size_t> {
    if (candidates.empty()) return std::nullopt;
    std::optional<std::size_t> best;
    std::optional<std::size_t> best_demoted;
    for (const std::size_t rank : candidates) {
      auto& slot = job[rank].demoted ? best_demoted : best;
      if (!slot) {
        slot = rank;
      } else if (edf && edf_key(rank) < edf_key(*slot)) {
        slot = rank;  // FP keeps the first (lowest) rank: sets are ordered
      }
      if (!edf && best) break;  // lowest non-demoted rank found
    }
    return best ? best : best_demoted;
  };
  /// Injected execution time of chain piece `pos` for the job of `rank`.
  const auto injected_exec = [&](std::size_t rank, std::size_t pos) {
    const Job& j = job[rank];
    Time exec = chains[rank][pos].wcet;
    if (j.factor != 1.0) {
      const double scaled = j.factor * static_cast<double>(exec);
      exec = scaled >= static_cast<double>(kTimeInfinity)
                 ? kTimeInfinity
                 : std::max<Time>(1, static_cast<Time>(std::llround(scaled)));
    }
    if (pos + 1 == chains[rank].size()) exec = add_sat(exec, j.extra);
    return exec;
  };
  /// Loads piece `job[rank].pos` into the job's execution state.
  const auto enter_piece = [&](std::size_t rank) {
    Job& j = job[rank];
    const Time nominal = chains[rank][j.pos].wcet;
    const Time exec = injected_exec(rank, j.pos);
    j.budget_left = nominal;
    j.abort_at_budget = budget_enforced && exec > nominal;
    j.remaining = j.abort_at_budget ? nominal : exec;
  };
  // Queue a piece: immediately ready, or parked until its window opens.
  // Pieces bound for a failed processor are orphaned and never queued.
  const auto enqueue = [&](std::size_t rank, Time now) {
    const Piece& piece = chains[rank][job[rank].pos];
    if (dead[piece.processor]) {
      ++result.subtasks_orphaned;
      return;
    }
    const Time start =
        edf ? std::max(now, job[rank].release + piece.window_start) : now;
    if (start <= now) {
      ready[piece.processor].insert(rank);
    } else {
      activation[rank] = start;
    }
  };

  Time now = 0;
  bool aborted = false;
  while (!aborted) {
    // Next event: release, running-piece completion or budget exhaustion,
    // window activation, or processor failure.
    Time t_next = kTimeInfinity;
    for (std::size_t rank = 0; rank < n; ++rank) {
      t_next = std::min({t_next, next_release[rank], activation[rank]});
    }
    for (std::size_t q = 0; q < m; ++q) {
      if (!running[q]) continue;
      const Job& j = job[*running[q]];
      t_next = std::min(t_next, add_sat(now, j.remaining));
      if (demotion && !j.demoted && j.budget_left < j.remaining) {
        t_next = std::min(t_next, add_sat(now, j.budget_left));
      }
    }
    if (failure_pending) t_next = std::min(t_next, faults.failure_time);
    ++result.events;

    // Events at exactly the horizon are still processed so deadlines on
    // the boundary are checked; only later events are cut off.
    const bool past_end = t_next > config.horizon;
    const Time target = past_end ? config.horizon : t_next;

    // Advance every processor to the target instant.
    const Time elapsed = target - now;
    for (std::size_t q = 0; q < m; ++q) {
      if (!running[q]) continue;
      Job& j = job[*running[q]];
      j.remaining -= elapsed;
      j.budget_left = std::max<Time>(0, j.budget_left - elapsed);
      result.busy_time[q] += elapsed;
    }
    now = target;
    if (past_end) break;

    // Processor failure: strand whatever is queued there.  Affected jobs
    // stay active but can never progress, so they surface as deadline
    // misses at their next release.
    if (failure_pending && faults.failure_time == now) {
      failure_pending = false;
      const std::size_t q = faults.failed_processor;
      dead[q] = 1;
      result.subtasks_orphaned += ready[q].size();
      ready[q].clear();
      running[q].reset();
    }

    // Priority demotions: a running piece that exhausted its nominal WCET
    // budget while work remains drops to background priority.
    if (demotion) {
      for (std::size_t q = 0; q < m; ++q) {
        if (!running[q]) continue;
        const std::size_t rank = *running[q];
        Job& j = job[rank];
        if (!j.demoted && j.budget_left == 0 && j.remaining > 0) {
          j.demoted = true;
          ++result.jobs_demoted;
          if (config.record_trace) {
            result.trace.push_back(TraceEvent{TraceEvent::Kind::kDemote, now, q,
                                              tasks[rank].id,
                                              static_cast<int>(j.pos), false});
          }
        }
      }
    }

    // Piece completions and budget-enforcement aborts.
    for (std::size_t q = 0; q < m; ++q) {
      if (!running[q]) continue;
      const std::size_t rank = *running[q];
      if (job[rank].remaining != 0) continue;
      ready[q].erase(rank);
      running[q].reset();
      Job& j = job[rank];
      if (j.abort_at_budget) {
        // The piece hit its WCET budget with injected work left: kill the
        // job so the overrun cannot propagate interference.
        j.active = false;
        ++result.jobs_aborted;
        if (config.record_trace) {
          result.trace.push_back(TraceEvent{TraceEvent::Kind::kAbort, now, q,
                                            tasks[rank].id,
                                            static_cast<int>(j.pos), false});
        }
        continue;
      }
      ++j.pos;
      if (j.pos == chains[rank].size()) {
        j.active = false;
        ++result.jobs_completed;
        result.max_response[rank] =
            std::max(result.max_response[rank], now - j.release);
        if (config.record_trace) {
          result.trace.push_back(TraceEvent{TraceEvent::Kind::kComplete, now, 0,
                                            tasks[rank].id, 0, false});
        }
        if (now > j.deadline) {
          result.misses.push_back(DeadlineMiss{tasks[rank].id, j.release, j.deadline});
          if (config.record_trace) {
            result.trace.push_back(TraceEvent{TraceEvent::Kind::kMiss, now, 0,
                                              tasks[rank].id, 0, false});
          }
          if (config.stop_at_first_miss) {
            aborted = true;
            break;
          }
        }
      } else {
        enter_piece(rank);
        enqueue(rank, now);
        ++result.migrations;
      }
    }
    if (aborted) break;

    // Window activations falling due.
    for (std::size_t rank = 0; rank < n; ++rank) {
      if (activation[rank] != now) continue;
      activation[rank] = kTimeInfinity;
      const std::size_t q = chains[rank][job[rank].pos].processor;
      if (dead[q]) {
        ++result.subtasks_orphaned;
      } else {
        ready[q].insert(rank);
      }
    }

    // Releases.  The absolute deadline is anchored at the NOMINAL release
    // (nominal + T), which under jitter-free operation equals the next
    // release instant, so an active job at its task's release instant is
    // exactly a deadline miss.
    for (std::size_t rank = 0; rank < n && !aborted; ++rank) {
      if (next_release[rank] != now) continue;
      Job& j = job[rank];
      if (j.active) {
        result.misses.push_back(DeadlineMiss{tasks[rank].id, j.release, j.deadline});
        if (config.record_trace) {
          result.trace.push_back(TraceEvent{TraceEvent::Kind::kMiss, now, 0,
                                            tasks[rank].id, 0, false});
        }
        if (config.stop_at_first_miss) {
          aborted = true;
          break;
        }
        // Continue mode: abandon the late job so the new one can run.
        ready[chains[rank][j.pos].processor].erase(rank);
        activation[rank] = kTimeInfinity;
        for (std::size_t q = 0; q < m; ++q) {
          if (running[q] == rank) running[q].reset();
        }
      }
      j = Job{};
      j.active = true;
      j.release = now;
      j.deadline = add_sat(next_nominal[rank], tasks[rank].period);
      if (overruns) {
        const bool hit = faults.overrun_probability >= 1.0 ||
                         stream[rank].uniform() < faults.overrun_probability;
        if (hit) {
          j.factor = faults.overrun_factor;
          j.extra = faults.overrun_ticks;
          for (std::size_t pos = 0; pos < chains[rank].size(); ++pos) {
            if (injected_exec(rank, pos) > chains[rank][pos].wcet) {
              j.degraded = true;
              break;
            }
          }
        }
      }
      if (j.degraded) {
        ++result.jobs_degraded;
        ++result.degraded_per_task[rank];
      }
      enter_piece(rank);
      enqueue(rank, now);
      ++result.jobs_released;
      next_nominal[rank] = add_sat(next_nominal[rank], tasks[rank].period);
      schedule_release(rank);
      if (config.record_trace) {
        result.trace.push_back(TraceEvent{TraceEvent::Kind::kRelease, now, 0,
                                          tasks[rank].id, 0, false});
      }
    }
    if (aborted) break;

    // Dispatch: best ready rank per processor under the active policy.
    for (std::size_t q = 0; q < m; ++q) {
      const std::optional<std::size_t> previous = running[q];
      const std::optional<std::size_t> top = pick(ready[q]);
      if (top && previous && *previous != *top && ready[q].count(*previous) != 0) {
        ++result.preemptions;  // displaced before completing its piece
      }
      running[q] = top;
      if (config.record_trace) {
        std::optional<std::pair<std::size_t, std::size_t>> current;
        if (top) current = std::make_pair(*top, job[*top].pos);
        if (current != traced[q]) {
          traced[q] = current;
          if (top) {
            result.trace.push_back(TraceEvent{TraceEvent::Kind::kRun, now, q,
                                              tasks[*top].id,
                                              static_cast<int>(job[*top].pos),
                                              false});
          } else {
            result.trace.push_back(
                TraceEvent{TraceEvent::Kind::kRun, now, q, 0, 0, true});
          }
        }
      }
    }
  }

  result.simulated_until = now;
  result.schedulable = result.misses.empty();
  return result;
}

}  // namespace rmts
