// Discrete-event simulator for partitioned preemptive scheduling with task
// splitting (the run-time model of paper Section II, plus an EDF mode for
// the window-based EDF-TS baseline).
//
// Semantics simulated:
//  * every processor runs its hosted subtasks preemptively;
//  * dispatch policy:
//     - kFixedPriority: the tasks' ORIGINAL RM priorities (the paper's
//       scheduler); the pieces of a split job execute in chain order --
//       piece k+1 becomes ready the instant piece k completes (the
//       cross-processor synchronization the synthetic deadlines model);
//     - kEarliestDeadlineFirst: per-processor EDF over piece absolute
//       deadlines; each piece k runs inside its window
//       [release + sum_{l<k} delta_l, release + sum_{l<=k} delta_l), where
//       delta_l is the piece's deadline field (EDF-TS windows) -- piece
//       k+1 activates at its window start or its predecessor's
//       completion, whichever is later;
//  * jobs are released strictly periodically from per-task offsets
//    (synchronous, offset 0, by default);
//  * a deadline miss is a job that has not finished its final piece by
//    release + T.
//
// This is the ground truth against which every accepted partition is
// validated (paper Lemma 4): integration tests and
// bench_e9_simulation_audit run each accepted Assignment here and require
// zero misses.  The simulator also records the maximum observed
// end-to-end response time per task, which tests compare against the
// analytical bounds (analysis must dominate observation).
// Fault injection (sim/fault.hpp): a seeded FaultModel in SimConfig adds
// execution-time overruns, deadline-preserving release jitter and processor
// failure, with overrun-containment policies (budget enforcement, priority
// demotion) that respect split-chain semantics.  The default model is
// inert and bit-identical to the nominal run.
//
// Implementation (the "indexed core"): instead of rescanning every task
// and processor at each event point, the core keeps an indexed
// (decrease-key) min-heap over all timed events -- releases, EDF window
// activations, running-piece completions, containment-budget exhaustions
// and the processor failure -- and per-processor ready queues that
// dispatch in O(1): a find-first-set priority bitmap under fixed priority,
// a small indexed heap keyed by absolute piece deadline under EDF.  All
// per-run state lives in a SimWorkspace, so repeated simulation (the
// robustness bisection, the fuzzer, parameter sweeps) is allocation-free
// after the first run.  Results are bit-identical -- every counter, miss,
// and trace event -- to the retained naive reference core
// (sim/simulator_reference.hpp), which the differential tests assert.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "partition/assignment.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"
#include "tasks/task_set.hpp"

namespace rmts {

/// Per-processor dispatching discipline.
enum class DispatchPolicy : std::uint8_t {
  kFixedPriority,
  kEarliestDeadlineFirst,
};

/// Simulation parameters.
struct SimConfig {
  /// Simulate [0, horizon).  See recommended_horizon().
  Time horizon{0};
  /// Release offset per RM rank; empty = synchronous (all zero).
  std::vector<Time> offsets;
  /// Stop at the first deadline miss (default) or keep counting misses.
  bool stop_at_first_miss{true};
  DispatchPolicy policy{DispatchPolicy::kFixedPriority};
  /// Record a TraceEvent stream (see sim/trace.hpp) in SimResult::trace.
  bool record_trace{false};
  /// Fault injection + overrun containment; default-constructed = nominal
  /// run (validated, throws InvalidConfigError on malformed models).
  FaultModel faults;
};

/// One observed deadline miss.
struct DeadlineMiss {
  TaskId task{0};
  Time release{0};
  Time deadline{0};

  friend bool operator==(const DeadlineMiss&, const DeadlineMiss&) = default;
};

/// Aggregate outcome of one simulation run.
struct SimResult {
  bool schedulable{false};  ///< no miss observed within the horizon
  std::vector<DeadlineMiss> misses;
  Time simulated_until{0};
  /// Event points processed (iterations of the event loop); the unit the
  /// throughput benches report as events/sec.
  std::uint64_t events{0};
  std::uint64_t jobs_released{0};
  std::uint64_t jobs_completed{0};
  std::uint64_t preemptions{0};
  /// Cross-processor hops taken by split jobs (chain-length-1 per job).
  std::uint64_t migrations{0};
  /// Busy ticks per processor; busy/horizon is the observed utilization.
  std::vector<Time> busy_time;
  /// Max observed end-to-end response (tail completion - release) per RM
  /// rank, over completed jobs; 0 for tasks with no completed job.
  std::vector<Time> max_response;
  /// Jobs whose injected execution exceeded the nominal WCET (overruns
  /// actually drawn, whether or not they were contained or missed).
  std::uint64_t jobs_degraded{0};
  /// Degraded jobs per RM rank; used to attribute misses to overruns.
  std::vector<std::uint64_t> degraded_per_task;
  /// Jobs killed at their WCET budget (ContainmentPolicy::kBudgetEnforcement).
  /// Aborted jobs are not completions and not misses.
  std::uint64_t jobs_aborted{0};
  /// Jobs dropped to background priority (ContainmentPolicy::kPriorityDemotion).
  std::uint64_t jobs_demoted{0};
  /// Chain pieces that could not run because their processor had failed.
  std::uint64_t subtasks_orphaned{0};
  /// Event stream, populated iff SimConfig::record_trace.
  std::vector<TraceEvent> trace;

  /// Full bitwise comparison, trace included (the differential-test
  /// contract between the indexed core and the reference core).
  friend bool operator==(const SimResult&, const SimResult&) = default;
};

namespace detail {
struct SimState;
}  // namespace detail

/// Reusable per-run simulator state: split chains, the job array, the
/// event heap, ready queues, fault streams, and the result buffers
/// (including the trace).  Construct once and pass to simulate() for every
/// run of a repeated-simulation loop (robustness bisection, fuzzing,
/// sweeps); after the first call on a given problem size subsequent runs
/// perform no heap allocation.  A workspace is NOT thread-safe: use one
/// per thread (simulate_batch does this automatically).
class SimWorkspace {
 public:
  SimWorkspace();
  ~SimWorkspace();
  SimWorkspace(SimWorkspace&&) noexcept;
  SimWorkspace& operator=(SimWorkspace&&) noexcept;
  SimWorkspace(const SimWorkspace&) = delete;
  SimWorkspace& operator=(const SimWorkspace&) = delete;

 private:
  friend const SimResult& simulate(const TaskSet&, const Assignment&,
                                   const SimConfig&, SimWorkspace&);
  friend SimResult simulate(const TaskSet&, const Assignment&,
                            const SimConfig&);
  std::unique_ptr<detail::SimState> state_;
};

/// Runs the assignment produced by a partitioner for `tasks`.  Requires
/// assignment.success; every task must be fully covered by its subtasks
/// (checked, throws InvalidConfigError on malformed input).  In EDF mode
/// the piece windows of each task must fit within its period (checked).
[[nodiscard]] SimResult simulate(const TaskSet& tasks, const Assignment& assignment,
                                 const SimConfig& config);

/// Workspace-reusing variant for hot loops: identical semantics and
/// bit-identical results, but all per-run state (and the returned result,
/// which lives inside `workspace`) is recycled across calls.  The returned
/// reference is invalidated by the next simulate() call on the same
/// workspace; copy it out to keep it.
const SimResult& simulate(const TaskSet& tasks, const Assignment& assignment,
                          const SimConfig& config, SimWorkspace& workspace);

/// One item of a simulation batch.  `tasks` and `assignment` are borrowed
/// and must outlive the simulate_batch() call; the config (with its
/// per-item fault seed) is owned by the item.
struct SimJob {
  const TaskSet* tasks{nullptr};
  const Assignment* assignment{nullptr};
  SimConfig config;
};

/// Batched parallel simulation driver: runs every job across the
/// persistent thread pool (common/parallel.hpp), one reusable SimWorkspace
/// per pool thread.  Results land in job order, and because each item's
/// fault streams derive only from its own config (never from shared RNG
/// state), the output is bit-identical for ANY thread count -- the same
/// determinism contract as the experiment sweeps.  `threads` = 0 uses the
/// hardware concurrency.
[[nodiscard]] std::vector<SimResult> simulate_batch(std::span<const SimJob> jobs,
                                                    std::size_t threads = 0);

/// Validation horizon: 2 * hyperperiod when that fits under `cap`
/// (periodic schedules repeat, so this covers the steady state), else
/// `cap` (bounded validation -- still a sound necessary check).
[[nodiscard]] Time recommended_horizon(const TaskSet& tasks, Time cap);

}  // namespace rmts
