#include "partition/baselines.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <vector>

#include "bounds/bound.hpp"
#include "partition/policies.hpp"
#include "partition/processor_state.hpp"

namespace rmts {

namespace {

std::string fit_name(FitPolicy fit) {
  switch (fit) {
    case FitPolicy::kFirstFit: return "FF";
    case FitPolicy::kBestFit: return "BF";
    case FitPolicy::kWorstFit: return "WF";
  }
  return "?";
}

std::string order_name(TaskOrder order) {
  switch (order) {
    case TaskOrder::kDecreasingUtilization: return "D";
    case TaskOrder::kRateMonotonic: return "rm";
  }
  return "?";
}

std::string admission_name(Admission admission) {
  switch (admission) {
    case Admission::kExactRta: return "rta";
    case Admission::kLiuLayland: return "ll";
    case Admission::kHyperbolic: return "hb";
  }
  return "?";
}

bool admits(Admission admission, const ProcessorState& processor,
            const Subtask& candidate) {
  switch (admission) {
    case Admission::kExactRta:
      return processor.fits(candidate);
    case Admission::kLiuLayland: {
      const std::size_t n = processor.subtasks().size() + 1;
      return processor.utilization() + candidate.utilization() <=
             liu_layland_theta(n);
    }
    case Admission::kHyperbolic: {
      double product = candidate.utilization() + 1.0;
      for (const Subtask& s : processor.subtasks()) {
        product *= s.utilization() + 1.0;
      }
      return product <= 2.0;
    }
  }
  return false;
}

/// Indices of `tasks` in the requested offering order.
std::vector<std::size_t> offering_order(const TaskSet& tasks, TaskOrder order) {
  std::vector<std::size_t> ranks(tasks.size());
  std::iota(ranks.begin(), ranks.end(), 0);
  if (order == TaskOrder::kDecreasingUtilization) {
    std::stable_sort(ranks.begin(), ranks.end(),
                     [&](std::size_t a, std::size_t b) {
                       return tasks[a].utilization() > tasks[b].utilization();
                     });
  }
  return ranks;  // RM order == rank order
}

std::optional<std::size_t> pick_bin(const std::vector<ProcessorState>& processors,
                                    FitPolicy fit, Admission admission,
                                    const Subtask& candidate) {
  if (fit == FitPolicy::kFirstFit) {
    for (std::size_t q = 0; q < processors.size(); ++q) {
      if (admits(admission, processors[q], candidate)) return q;
    }
    return std::nullopt;
  }
  // Best/WorstFit pick the admitting processor with the extreme
  // utilization, earliest index on ties.  Probing in preference order --
  // utilization descending (BF) / ascending (WF), stable on index --
  // returns that identical pick but stops at the first admit, skipping
  // the (RTA-backed, hence expensive) probes of every less-preferred
  // processor that the plain left-to-right scan would have paid for.
  thread_local std::vector<std::size_t> order;
  order.resize(processors.size());
  std::iota(order.begin(), order.end(), 0);
  const bool best_fit = fit == FitPolicy::kBestFit;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return best_fit ? processors[a].utilization() >
                                           processors[b].utilization()
                                     : processors[a].utilization() <
                                           processors[b].utilization();
                   });
  for (const std::size_t q : order) {
    if (admits(admission, processors[q], candidate)) return q;
  }
  return std::nullopt;
}

}  // namespace

PartitionedRm::PartitionedRm(FitPolicy fit, TaskOrder order, Admission admission)
    : fit_(fit),
      order_(order),
      admission_(admission),
      name_("P-RM-" + fit_name(fit) + order_name(order) + "/" +
            admission_name(admission)) {}

Assignment PartitionedRm::partition(const TaskSet& tasks, std::size_t m) const {
  std::vector<ProcessorState> processors(m);
  std::vector<TaskId> unassigned;
  for (const std::size_t rank : offering_order(tasks, order_)) {
    const Subtask candidate = whole_subtask(tasks[rank], rank);
    const auto q = pick_bin(processors, fit_, admission_, candidate);
    if (q) {
      processors[*q].add(candidate);
    } else {
      unassigned.push_back(tasks[rank].id);
    }
  }
  return finalize_assignment(processors, std::move(unassigned));
}

Assignment PartitionedEdf::partition(const TaskSet& tasks, std::size_t m) const {
  std::vector<ProcessorState> processors(m);
  std::vector<TaskId> unassigned;
  constexpr double kEps = 1e-9;
  for (const std::size_t rank :
       offering_order(tasks, TaskOrder::kDecreasingUtilization)) {
    const Subtask candidate = whole_subtask(tasks[rank], rank);
    bool placed = false;
    for (ProcessorState& processor : processors) {
      if (processor.utilization() + candidate.utilization() <= 1.0 + kEps) {
        processor.add(candidate);
        placed = true;
        break;
      }
    }
    if (!placed) unassigned.push_back(tasks[rank].id);
  }
  return finalize_assignment(processors, std::move(unassigned));
}

bool GlobalRmUs::accepts(const TaskSet& tasks, std::size_t processors) const {
  const double m = static_cast<double>(processors);
  return tasks.total_utilization() <= m * m / (3.0 * m - 2.0);
}

bool GlobalEdfGfb::accepts(const TaskSet& tasks, std::size_t processors) const {
  const double m = static_cast<double>(processors);
  return tasks.total_utilization() <= m - (m - 1.0) * tasks.max_utilization();
}

}  // namespace rmts
