#include "partition/optimal_strict.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "partition/policies.hpp"
#include "partition/processor_state.hpp"

namespace rmts {

namespace {

struct Search {
  const TaskSet& tasks;
  std::vector<std::size_t> order;  // ranks, decreasing utilization
  std::vector<ProcessorState> processors;

  bool place(std::size_t depth) {
    if (depth == order.size()) return true;
    const std::size_t rank = order[depth];
    const Subtask candidate = whole_subtask(tasks[rank], rank);
    bool tried_empty = false;
    for (ProcessorState& processor : processors) {
      // Symmetry break: empty processors are interchangeable; try one.
      if (processor.empty()) {
        if (tried_empty) continue;
        tried_empty = true;
      }
      if (!processor.fits(candidate)) continue;
      // ProcessorState has no removal; branch on a copy.
      const ProcessorState saved = processor;
      processor.add(candidate);
      if (place(depth + 1)) return true;
      processor = saved;
    }
    return false;
  }
};

}  // namespace

Assignment OptimalStrictRm::partition(const TaskSet& tasks, std::size_t m) const {
  Search search{tasks, {}, std::vector<ProcessorState>(m)};
  search.order.resize(tasks.size());
  std::iota(search.order.begin(), search.order.end(), 0);
  // Decreasing utilization: heavy tasks first fail fast, pruning hard.
  std::stable_sort(search.order.begin(), search.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tasks[a].utilization() > tasks[b].utilization();
                   });

  if (search.place(0)) {
    return finalize_assignment(search.processors, {});
  }
  // No feasible strict partition exists (for this exact admission test).
  std::vector<TaskId> unassigned;
  for (const Task& task : tasks) unassigned.push_back(task.id);
  return finalize_assignment(std::vector<ProcessorState>(m), std::move(unassigned));
}

}  // namespace rmts
