#include "partition/max_split.hpp"

#include <algorithm>
#include <vector>

#include "rta/rta.hpp"

namespace rmts {

namespace {

Time max_wcet_binary(const ProcessorState& processor, const Subtask& prototype) {
  // fits() is monotone in the candidate's wcet, so binary search for the
  // largest feasible value.  c = 0 ("assign nothing") is feasible by the
  // caller's invariant that the processor is schedulable as-is.
  Time lo = 0;               // highest known-feasible value
  Time hi = prototype.wcet;  // upper bound; may itself be feasible
  Subtask candidate = prototype;
  while (lo < hi) {
    const Time mid = lo + (hi - lo + 1) / 2;  // round up so lo advances
    candidate.wcet = mid;
    if (processor.fits(candidate)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

/// Largest own execution budget of the candidate: max over its testing set
/// of (t - higher-priority interference).
Time max_self_budget(std::span<const Subtask> higher, Time deadline) {
  Time best = 0;
  for (const Time t : scheduling_points(deadline, higher)) {
    best = std::max(best, t - interference_at(t, higher));
  }
  return std::max<Time>(best, 0);
}

/// Largest candidate wcet that keeps the hosted subtask (wcet, deadline,
/// interfered by `hosted_higher`) schedulable when the candidate interferes
/// with period `candidate_period`:
///   max over testing points t of floor((t - W(t)) / ceil(t / T_c)),
/// where W(t) is the demand without the candidate.  The testing set must
/// include the candidate's own arrival multiples, since the optimum of the
/// piecewise expression can sit there.
Time max_extra_interference(Time wcet, Time deadline,
                            std::span<const Subtask> hosted_higher,
                            Time candidate_period) {
  // Build the testing set: multiples of every hosted higher-priority period
  // and of the candidate's period in (0, deadline], plus the deadline.
  std::vector<Time> points = scheduling_points(deadline, hosted_higher);
  for (Time t = candidate_period; t < deadline; t += candidate_period) {
    points.push_back(t);
  }
  Time best = 0;
  for (const Time t : points) {
    const Time slack = t - wcet - interference_at(t, hosted_higher);
    if (slack <= 0) continue;
    const Time jobs = ceil_div(t, candidate_period);
    best = std::max(best, slack / jobs);
  }
  return best;
}

Time max_wcet_points(const ProcessorState& processor, const Subtask& prototype) {
  const std::span<const Subtask> hosted = processor.subtasks();
  const auto pos_it = std::lower_bound(
      hosted.begin(), hosted.end(), prototype,
      [](const Subtask& a, const Subtask& b) { return a.priority < b.priority; });
  const auto pos = static_cast<std::size_t>(pos_it - hosted.begin());

  Time budget = max_self_budget(hosted.first(pos), prototype.deadline);
  for (std::size_t i = pos; i < hosted.size() && budget > 0; ++i) {
    budget = std::min(budget, max_extra_interference(hosted[i].wcet,
                                                     hosted[i].deadline,
                                                     hosted.first(i),
                                                     prototype.period));
  }
  return std::min(budget, prototype.wcet);
}

}  // namespace

Time max_admissible_wcet(const ProcessorState& processor,
                         const Subtask& prototype, MaxSplitMethod method) {
  if (prototype.deadline <= 0 || prototype.wcet <= 0) return 0;
  switch (method) {
    case MaxSplitMethod::kBinarySearch:
      return max_wcet_binary(processor, prototype);
    case MaxSplitMethod::kSchedulingPoints:
      return max_wcet_points(processor, prototype);
  }
  return 0;  // unreachable
}

}  // namespace rmts
