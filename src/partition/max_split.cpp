#include "partition/max_split.hpp"

#include <algorithm>
#include <vector>

#include "rta/rta.hpp"

namespace rmts {

namespace {

Time max_wcet_binary(const ProcessorState& processor, const Subtask& prototype) {
  // fits() is monotone in the candidate's wcet, so binary search for the
  // largest feasible value.  c = 0 ("assign nothing") is feasible by the
  // caller's invariant that the processor is schedulable as-is.  Each
  // probe reuses the processor's memoized responses (see ProcessorState),
  // so the O(log C) admission checks no longer redo full RTA from zero.
  Time lo = 0;               // highest known-feasible value
  Time hi = prototype.wcet;  // upper bound; may itself be feasible
  Subtask candidate = prototype;
  while (lo < hi) {
    const Time mid = lo + (hi - lo + 1) / 2;  // round up so lo advances
    candidate.wcet = mid;
    if (processor.fits(candidate)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

/// Largest own execution budget of the candidate: max over its testing set
/// of (t - higher-priority interference).  Candidate-deadline dependent,
/// so not served from the hosted cache; the scratch point buffer persists
/// across MaxSplit's per-processor search calls instead (one thread's
/// partitioning run reuses its capacity allocation-free).
Time max_self_budget(std::span<const Subtask> higher, Time deadline) {
  thread_local std::vector<Time> points;
  scheduling_points(deadline, higher, points);
  Time best = 0;
  for (const Time t : points) {
    const auto demand = interference_at(t, higher);
    if (!demand || *demand >= t) continue;  // overflowed demand never fits
    best = std::max(best, t - *demand);
  }
  return best;
}

/// Largest candidate wcet that keeps the hosted subtask at `index` (wcet,
/// deadline, interfered by the hosted prefix) schedulable when the
/// candidate interferes with period `candidate_period`:
///   max over testing points t of floor((t - W(t)) / ceil(t / T_c)),
/// where W(t) is the demand without the candidate.  The hosted part of the
/// testing set and its W(t) come memoized from the processor; only the
/// candidate's own arrival multiples (where the optimum of the piecewise
/// expression can also sit) are evaluated fresh.
Time max_extra_interference(const ProcessorState& processor, std::size_t index,
                            Time candidate_period) {
  const Subtask& hosted = processor.subtasks()[index];
  const ProcessorState::TestingSet& set = processor.testing_set(index);
  Time best = 0;
  for (std::size_t k = 0; k < set.points.size(); ++k) {
    const Time t = set.points[k];
    const Time avail = t - hosted.wcet;
    if (set.interference[k] >= avail) continue;  // saturated W lands here too
    const Time slack = avail - set.interference[k];
    best = std::max(best, slack / ceil_div(t, candidate_period));
  }
  const auto higher = processor.subtasks().first(index);
  for (Time t = candidate_period; t < hosted.deadline;) {
    const Time avail = t - hosted.wcet;
    const auto demand = interference_at(t, higher);
    if (demand && *demand < avail) {
      best = std::max(best, (avail - *demand) / ceil_div(t, candidate_period));
    }
    if (t > kTimeInfinity - candidate_period) break;
    t += candidate_period;
  }
  return best;
}

Time max_wcet_points(const ProcessorState& processor, const Subtask& prototype) {
  const std::span<const Subtask> hosted = processor.subtasks();
  const auto pos_it = std::lower_bound(
      hosted.begin(), hosted.end(), prototype,
      [](const Subtask& a, const Subtask& b) { return a.priority < b.priority; });
  const auto pos = static_cast<std::size_t>(pos_it - hosted.begin());

  Time budget = max_self_budget(hosted.first(pos), prototype.deadline);
  for (std::size_t i = pos; i < hosted.size() && budget > 0; ++i) {
    budget = std::min(budget,
                      max_extra_interference(processor, i, prototype.period));
  }
  return std::min(budget, prototype.wcet);
}

}  // namespace

Time max_admissible_wcet(const ProcessorState& processor,
                         const Subtask& prototype, MaxSplitMethod method) {
  if (prototype.deadline <= 0 || prototype.wcet <= 0) return 0;
  switch (method) {
    case MaxSplitMethod::kBinarySearch:
      return max_wcet_binary(processor, prototype);
    case MaxSplitMethod::kSchedulingPoints:
      return max_wcet_points(processor, prototype);
  }
  return 0;  // unreachable
}

}  // namespace rmts
