#include "partition/policies.hpp"

#include <numeric>

namespace rmts {

std::optional<std::size_t> least_utilized_non_full(
    const std::vector<ProcessorState>& processors,
    const std::vector<std::size_t>& candidates) {
  std::optional<std::size_t> best;
  for (const std::size_t q : candidates) {
    if (processors[q].full()) continue;
    if (!best || processors[q].utilization() < processors[*best].utilization()) {
      best = q;
    }
  }
  return best;
}

std::optional<std::size_t> least_utilized_non_full(
    const std::vector<ProcessorState>& processors) {
  std::vector<std::size_t> all(processors.size());
  std::iota(all.begin(), all.end(), 0);
  return least_utilized_non_full(processors, all);
}

Assignment finalize_assignment(const std::vector<ProcessorState>& processors,
                               std::vector<TaskId> unassigned) {
  Assignment result;
  result.success = unassigned.empty();
  result.unassigned = std::move(unassigned);
  result.processors.reserve(processors.size());
  for (const ProcessorState& state : processors) {
    ProcessorAssignment proc;
    proc.subtasks.assign(state.subtasks().begin(), state.subtasks().end());
    result.processors.push_back(std::move(proc));
  }
  return result;
}

}  // namespace rmts
