#include "partition/policies.hpp"

namespace rmts {

// Both overloads sit in the innermost loop of every worst-fit partitioner
// (one scan per placement attempt), so they carry the best utilization in a
// register instead of re-reading processors[best] each comparison, and the
// all-processors overload iterates directly rather than materializing an
// index vector per call.

std::optional<std::size_t> least_utilized_non_full(
    const std::vector<ProcessorState>& processors,
    const std::vector<std::size_t>& candidates) {
  std::optional<std::size_t> best;
  double best_util = 0.0;
  for (const std::size_t q : candidates) {
    if (processors[q].full()) continue;
    const double util = processors[q].utilization();
    if (!best || util < best_util) {
      best = q;
      best_util = util;
    }
  }
  return best;
}

std::optional<std::size_t> least_utilized_non_full(
    const std::vector<ProcessorState>& processors) {
  std::optional<std::size_t> best;
  double best_util = 0.0;
  for (std::size_t q = 0; q < processors.size(); ++q) {
    if (processors[q].full()) continue;
    const double util = processors[q].utilization();
    if (!best || util < best_util) {
      best = q;
      best_util = util;
    }
  }
  return best;
}

Assignment finalize_assignment(const std::vector<ProcessorState>& processors,
                               std::vector<TaskId> unassigned) {
  Assignment result;
  result.success = unassigned.empty();
  result.unassigned = std::move(unassigned);
  result.processors.reserve(processors.size());
  for (const ProcessorState& state : processors) {
    ProcessorAssignment proc;
    proc.subtasks.assign(state.subtasks().begin(), state.subtasks().end());
    result.processors.push_back(std::move(proc));
  }
  return result;
}

}  // namespace rmts
