// RM-TS (paper Section V, Algorithms 3-4): the general algorithm.
//
// Four phases:
//  0. *Dedicated processors* (paper footnote 5).  A task with
//     U_i > Lambda(tau) gets a processor of its own (sealed); each such
//     processor carries more than Lambda utilization, so the overall
//     normalized bound is preserved and the remaining phases only ever see
//     tasks with U_i <= Lambda -- the paper's standing assumption, made
//     true by construction.
//  1. *Pre-assignment.*  Visiting tasks in decreasing priority order, every
//     heavy task (U_i > Theta/(1+Theta)) whose lower-priority utilization
//     is small --  sum_{j>i} U_j <= (|P(tau_i)| - 1) * Lambda(tau)  -- is
//     pre-assigned alone to the lowest-index still-normal processor.  Such
//     a task's tail would otherwise end up with low local priority, which
//     is the case the light-set proof cannot handle.
//  2. *Normal phase.*  Remaining tasks go to the normal processors exactly
//     as in RM-TS/light (worst-fit, increasing priority order, exact-RTA
//     admission, MaxSplit on overflow).
//  3. *Fill phase.*  Still in increasing priority order, leftovers fill the
//     pre-assigned processors first-fit, starting from the processor
//     hosting the lowest-priority pre-assigned task (largest index).
//
// Guarantee: for ANY task set, the clamped bound
// min(Lambda(tau), 2*Theta/(1+Theta))  is a valid normalized utilization
// bound (phase 0 discharges the paper's per-task utilization assumption).
// The clamp (~81.8% as N grows) is also what the pre-assign condition
// uses, matching the Section V proof hypotheses.
#pragma once

#include "bounds/bound.hpp"
#include "partition/assignment.hpp"
#include "partition/max_split.hpp"

namespace rmts {

class Rmts final : public Partitioner {
 public:
  /// `bound` is the D-PUB Lambda used by the pre-assign condition (and the
  /// bound the caller wants guaranteed); RM-TS clamps it to the Section V
  /// cap internally.
  explicit Rmts(BoundPtr bound,
                MaxSplitMethod method = MaxSplitMethod::kSchedulingPoints,
                std::string label = "RM-TS");

  [[nodiscard]] Assignment partition(const TaskSet& tasks,
                                     std::size_t processors) const override;

  [[nodiscard]] std::string name() const override { return label_; }

  /// The clamped bound min(Lambda(tau), 2 Theta/(1+Theta)) this instance
  /// guarantees for `tasks`.
  [[nodiscard]] double guaranteed_bound(const TaskSet& tasks) const;

 private:
  BoundPtr bound_;
  MaxSplitMethod method_;
  std::string label_;
};

}  // namespace rmts
