#include "partition/rmts.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/trace.hpp"
#include "partition/policies.hpp"
#include "partition/splitting.hpp"

namespace rmts {

namespace {

/// Largest-index non-full processor among `candidates` (paper Algorithm 3,
/// line 19: first-fit starting at the processor hosting the lowest-priority
/// pre-assigned task).
std::optional<std::size_t> largest_index_non_full(
    const std::vector<ProcessorState>& processors,
    const std::vector<std::size_t>& candidates) {
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    if (!processors[*it].full()) return *it;
  }
  return std::nullopt;
}

}  // namespace

Rmts::Rmts(BoundPtr bound, MaxSplitMethod method, std::string label)
    : bound_(std::move(bound)), method_(method), label_(std::move(label)) {}

double Rmts::guaranteed_bound(const TaskSet& tasks) const {
  return std::min(bound_->evaluate(tasks), rmts_bound_cap(tasks.size()));
}

Assignment Rmts::partition(const TaskSet& tasks, std::size_t m) const {
  trace::count(trace::Counter::kPartitionRuns);
  const std::size_t n = tasks.size();
  const double lambda = guaranteed_bound(tasks);
  const double light_threshold = light_task_threshold(n);

  std::vector<ProcessorState> processors(m);
  std::deque<std::size_t> unmarked;  // processors not dedicated/pre-assigned
  for (std::size_t q = 0; q < m; ++q) unmarked.push_back(q);
  std::vector<char> task_placed(n, 0);
  std::vector<TaskId> unassigned;

  // ---- Phase 0: dedicated processors (paper footnote 5) ------------------
  // A task whose utilization exceeds Lambda(tau) cannot be covered by the
  // per-processor bound argument; it executes exclusively on its own
  // processor.  Each dedicated processor carries > lambda utilization, so
  // the overall normalized bound is preserved.
  {
    const trace::Span span(trace::Stage::kPartitionDedicate);
    for (std::size_t rank = 0; rank < n; ++rank) {
      if (tasks[rank].utilization() <= lambda) continue;
      if (unmarked.empty()) {
        unassigned.push_back(tasks[rank].id);
        task_placed[rank] = 1;  // handled (as a failure); skip later phases
        continue;
      }
      const std::size_t q = unmarked.front();
      unmarked.pop_front();
      processors[q].add(whole_subtask(tasks[rank], rank));
      processors[q].mark_full();  // exclusive: nothing else lands here
      task_placed[rank] = 1;
    }
  }

  // ---- Phase 1: pre-assignment (decreasing priority order) ---------------
  // suffix_util[rank] = sum of utilizations of all lower-priority tasks.
  std::vector<std::size_t> pre_assigned;  // indices, in pre-assignment order
  {
    const trace::Span span(trace::Stage::kPartitionPreassign);
    std::vector<double> suffix_util(n + 1, 0.0);
    for (std::size_t rank = n; rank-- > 0;) {
      suffix_util[rank] = suffix_util[rank + 1] + tasks[rank].utilization();
    }

    for (std::size_t rank = 0; rank < n && !unmarked.empty(); ++rank) {
      if (task_placed[rank]) continue;
      const double u = tasks[rank].utilization();
      if (u <= light_threshold) continue;  // light task: never pre-assigned
      const double normal_count = static_cast<double>(unmarked.size());
      if (suffix_util[rank + 1] <= (normal_count - 1.0) * lambda) {
        const std::size_t q = unmarked.front();  // minimal-index normal
        unmarked.pop_front();
        processors[q].add(whole_subtask(tasks[rank], rank));
        pre_assigned.push_back(q);
        task_placed[rank] = 1;
      }
    }
  }
  const std::vector<std::size_t> normal(unmarked.begin(), unmarked.end());

  // ---- Phases 2 and 3 (increasing priority order) ------------------------
  // Phase 2 fills the normal processors worst-fit; when they are all full,
  // the current chain and all later tasks continue first-fit onto the
  // pre-assigned processors, largest index (lowest-priority pre-assigned
  // task) first.
  {
    const trace::Span span(trace::Stage::kPartitionPlace);
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t rank = n - 1 - step;
      if (task_placed[rank]) continue;
      ChainCursor cursor(tasks[rank], rank);
      bool placed = false;
      while (!placed) {
        auto q = least_utilized_non_full(processors, normal);
        if (!q) q = largest_index_non_full(processors, pre_assigned);
        if (!q) break;  // every processor full
        placed = assign_or_split(processors[*q], cursor, method_);
      }
      if (!placed) {
        unassigned.push_back(cursor.task_id());
        for (std::size_t r = rank; r-- > 0;) {
          if (!task_placed[r]) unassigned.push_back(tasks[r].id);
        }
        break;
      }
    }
  }
  return finalize_assignment(processors, std::move(unassigned));
}

}  // namespace rmts
