#include "partition/spa.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "bounds/bound.hpp"
#include "partition/policies.hpp"
#include "partition/splitting.hpp"

namespace rmts {

namespace {

/// Tolerance for threshold comparisons: utilizations are exact rationals
/// evaluated in double, so a few ulps of slack avoids spurious splits when
/// a processor lands exactly on Theta.
constexpr double kEps = 1e-9;

/// SPA's Assign: threshold admission, threshold splitting.  Mirrors
/// assign_or_split() but fills the processor to Theta instead of to its
/// RTA bottleneck.  Body response time is taken as its wcet (Lemma 2
/// applies to SPA for the same structural reason: the processor is full
/// once a body lands on it, so the body keeps the highest local priority).
bool spa_assign(ProcessorState& processor, ChainCursor& cursor, double theta) {
  const Subtask candidate = cursor.candidate();
  if (processor.utilization() + candidate.utilization() <= theta + kEps) {
    processor.add(candidate);
    cursor.consume_all();
    return true;
  }
  const double slack = theta - processor.utilization();
  Time body_wcet = static_cast<Time>(
      std::floor(slack * static_cast<double>(candidate.period) + kEps));
  body_wcet = std::clamp<Time>(body_wcet, 0, candidate.wcet - 1);
  if (body_wcet > 0) {
    Subtask body = candidate;
    body.wcet = body_wcet;
    body.kind = SubtaskKind::kBody;
    processor.add(body);
    cursor.consume_body(body_wcet, body_wcet);
  }
  processor.mark_full();
  return false;
}

/// The shared increasing-priority assignment loop over a processor-
/// selection policy; returns the unassigned ids (empty on success).
template <typename PickProcessor>
std::vector<TaskId> spa_fill(const TaskSet& tasks,
                             std::vector<ProcessorState>& processors,
                             const std::vector<char>& skip, double theta,
                             PickProcessor pick) {
  std::vector<TaskId> unassigned;
  const std::size_t n = tasks.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t rank = n - 1 - step;
    if (skip[rank]) continue;
    ChainCursor cursor(tasks[rank], rank);
    bool placed = false;
    while (!placed) {
      const auto q = pick(processors);
      if (!q) break;
      placed = spa_assign(processors[*q], cursor, theta);
    }
    if (!placed) {
      unassigned.push_back(cursor.task_id());
      for (std::size_t r = rank; r-- > 0;) {
        if (!skip[r]) unassigned.push_back(tasks[r].id);
      }
      break;
    }
  }
  return unassigned;
}

}  // namespace

Assignment Spa1::partition(const TaskSet& tasks, std::size_t m) const {
  const double theta = liu_layland_theta(tasks.size());
  std::vector<ProcessorState> processors(m);
  const std::vector<char> skip(tasks.size(), 0);
  auto unassigned =
      spa_fill(tasks, processors, skip, theta,
               [](const std::vector<ProcessorState>& ps) {
                 return least_utilized_non_full(ps);
               });
  return finalize_assignment(processors, std::move(unassigned));
}

Assignment Spa2::partition(const TaskSet& tasks, std::size_t m) const {
  const std::size_t n = tasks.size();
  const double theta = liu_layland_theta(n);
  const double light_threshold = light_task_threshold(n);

  std::vector<ProcessorState> processors(m);
  std::vector<std::size_t> normal;
  std::vector<std::size_t> pre_assigned;
  std::vector<char> task_pre_assigned(n, 0);

  std::vector<double> suffix_util(n + 1, 0.0);
  for (std::size_t rank = n; rank-- > 0;) {
    suffix_util[rank] = suffix_util[rank + 1] + tasks[rank].utilization();
  }

  std::size_t next_processor = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    if (next_processor >= m) break;
    if (tasks[rank].utilization() <= light_threshold) continue;
    const double normal_count = static_cast<double>(m - next_processor);
    if (suffix_util[rank + 1] <= (normal_count - 1.0) * theta) {
      processors[next_processor].add(whole_subtask(tasks[rank], rank));
      pre_assigned.push_back(next_processor);
      task_pre_assigned[rank] = 1;
      ++next_processor;
    }
  }
  for (std::size_t q = next_processor; q < m; ++q) normal.push_back(q);

  auto unassigned = spa_fill(
      tasks, processors, task_pre_assigned, theta,
      [&](const std::vector<ProcessorState>& ps) -> std::optional<std::size_t> {
        if (auto q = least_utilized_non_full(ps, normal)) return q;
        // Fill phase: largest-index pre-assigned processor first.
        for (auto it = pre_assigned.rbegin(); it != pre_assigned.rend(); ++it) {
          if (!ps[*it].full()) return *it;
        }
        return std::nullopt;
      });
  return finalize_assignment(processors, std::move(unassigned));
}

}  // namespace rmts
