// MaxSplit (paper Definition 3): the largest prefix of a (sub)task that a
// processor can still accommodate without any hosted (sub)task missing its
// synthetic deadline.  After assigning that prefix the processor has a
// *bottleneck* (Definition 2): one more tick of top-priority execution time
// would make some hosted subtask unschedulable.  This is the splitting
// primitive of RM-TS and RM-TS/light.
//
// Two exact implementations are provided:
//  * kBinarySearch -- O(log C) full admission checks; the reference
//    implementation (paper Section IV-A suggests it directly).
//  * kSchedulingPoints -- the efficient method of [22]: for every hosted
//    lower-priority subtask, maximize the admissible extra interference
//    over its time-demand testing set in closed form; still
//    pseudo-polynomial but much faster (measured in bench_e8_runtime).
// Both compute the same value on every input (property-tested).
#pragma once

#include "partition/processor_state.hpp"
#include "tasks/subtask.hpp"

namespace rmts {

enum class MaxSplitMethod : std::uint8_t {
  kBinarySearch,
  kSchedulingPoints,
};

/// Maximum wcet c* in [0, prototype.wcet] such that `processor` with
/// {prototype, wcet = c*} added stays fully schedulable under exact RTA.
/// All prototype fields except wcet (priority, period, synthetic deadline)
/// are taken as given.  Requires the processor to be schedulable as-is;
/// returns 0 when nothing fits.
[[nodiscard]] Time max_admissible_wcet(const ProcessorState& processor,
                                       const Subtask& prototype,
                                       MaxSplitMethod method);

}  // namespace rmts
