// SPA1 / SPA2: the semi-partitioned predecessors of RM-TS
// (Guan, Stigge, Yi, Yu, "Fixed-Priority Multiprocessor Scheduling with
// Liu & Layland's Utilization Bound", RTAS 2010 -- reference [16] of the
// reproduced paper).
//
// Structurally identical to RM-TS/light and RM-TS, but the admission test
// is the *utilization threshold* Theta(N) = N(2^{1/N}-1) instead of exact
// RTA, and splitting fills a processor to exactly the threshold instead of
// to its RTA bottleneck:
//  * SPA1: increasing priority order, worst-fit, split when
//    U(P) + U_i would exceed Theta(N).  Utilization bound Theta(N) for
//    light task sets.
//  * SPA2: pre-assigns heavy tasks satisfying
//    sum_{j>i} U_j <= (|P(tau_i)| - 1) * Theta(N) one-per-processor, then
//    runs the SPA1 phase on normal processors and finally fills
//    pre-assigned processors first-fit.  Utilization bound Theta(N) for
//    any task set.
//
// These are the baselines whose average-case acceptance never exceeds the
// worst-case bound -- the gap the reproduced paper's exact-RTA admission
// closes (its Section I claim, validated by bench_e2/e3).
//
// Reproduction note: RTAS'10 is reproduced here to the fidelity needed as
// a baseline; both algorithms keep the synthetic-deadline bookkeeping
// (body response time = body wcet, valid by the same Lemma 2 argument) so
// their accepted partitions can be validated in the simulator too.
#pragma once

#include "partition/assignment.hpp"

namespace rmts {

class Spa1 final : public Partitioner {
 public:
  [[nodiscard]] Assignment partition(const TaskSet& tasks,
                                     std::size_t processors) const override;
  [[nodiscard]] std::string name() const override { return "SPA1"; }
};

class Spa2 final : public Partitioner {
 public:
  [[nodiscard]] Assignment partition(const TaskSet& tasks,
                                     std::size_t processors) const override;
  [[nodiscard]] std::string name() const override { return "SPA2"; }
};

}  // namespace rmts
