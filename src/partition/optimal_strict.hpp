// Exhaustive OPTIMAL strict partitioning (no splitting) with exact-RTA
// admission -- the ground-truth reference for small instances.
//
// Two questions it answers exactly (experiment E15):
//  * how close the first-fit-decreasing heuristic gets to the best any
//    bin-packer could do, and
//  * how much capacity task *splitting* wins on top of even the optimal
//    strict partition -- the actual argument for semi-partitioned
//    scheduling, stronger than comparing against heuristics.
//
// Branch-and-bound over assignments in decreasing-utilization order with
// empty-processor symmetry breaking; exponential in the worst case, meant
// for N <= ~14.
#pragma once

#include "partition/assignment.hpp"

namespace rmts {

class OptimalStrictRm final : public Partitioner {
 public:
  [[nodiscard]] Assignment partition(const TaskSet& tasks,
                                     std::size_t processors) const override;
  [[nodiscard]] std::string name() const override { return "OPT-strict"; }
};

}  // namespace rmts
