#include "partition/rmts_light.hpp"

#include <vector>

#include "common/error.hpp"
#include "partition/policies.hpp"
#include "partition/splitting.hpp"

namespace rmts {

namespace {

std::optional<std::size_t> lowest_index_non_full(
    const std::vector<ProcessorState>& processors) {
  for (std::size_t q = 0; q < processors.size(); ++q) {
    if (!processors[q].full()) return q;
  }
  return std::nullopt;
}

}  // namespace

RmtsLight::RmtsLight(MaxSplitMethod method, SelectionPolicy selection,
                     Time split_granularity)
    : method_(method), selection_(selection), split_granularity_(split_granularity) {
  if (split_granularity_ < 1) {
    throw InvalidConfigError("RmtsLight: split granularity must be >= 1 tick");
  }
  name_ = "RM-TS/light";
  if (selection_ == SelectionPolicy::kFirstFit) name_ += "[ff]";
  if (split_granularity_ > 1) {
    name_ += "[g=" + std::to_string(split_granularity_) + "]";
  }
}

Assignment RmtsLight::partition(const TaskSet& tasks, std::size_t m) const {
  std::vector<ProcessorState> processors(m);
  std::vector<TaskId> unassigned;

  // Increasing priority order: lowest priority (largest RM rank) first.
  for (std::size_t step = 0; step < tasks.size(); ++step) {
    const std::size_t rank = tasks.size() - 1 - step;
    ChainCursor cursor(tasks[rank], rank);
    bool placed = false;
    while (!placed) {
      const auto q = selection_ == SelectionPolicy::kWorstFit
                         ? least_utilized_non_full(processors)
                         : lowest_index_non_full(processors);
      if (!q) break;  // all processors full
      placed = assign_or_split(processors[*q], cursor, method_, split_granularity_);
    }
    if (!placed) {
      // This task (possibly mid-split) and every higher-priority task that
      // was never attempted remain unassigned.
      unassigned.push_back(cursor.task_id());
      for (std::size_t r = rank; r-- > 0;) unassigned.push_back(tasks[r].id);
      break;
    }
  }
  return finalize_assignment(processors, std::move(unassigned));
}

}  // namespace rmts
