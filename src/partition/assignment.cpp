#include "partition/assignment.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace rmts {

std::size_t Assignment::split_task_count() const {
  std::map<TaskId, std::size_t> parts;
  for (const ProcessorAssignment& proc : processors) {
    for (const Subtask& s : proc.subtasks) ++parts[s.task_id];
  }
  return static_cast<std::size_t>(
      std::count_if(parts.begin(), parts.end(),
                    [](const auto& kv) { return kv.second >= 2; }));
}

std::size_t Assignment::subtask_count() const {
  std::size_t count = 0;
  for (const ProcessorAssignment& proc : processors) count += proc.subtasks.size();
  return count;
}

double Assignment::assigned_utilization() const {
  double sum = 0.0;
  for (const ProcessorAssignment& proc : processors) sum += proc.utilization();
  return sum;
}

double Assignment::min_processor_utilization() const {
  double min_u = processors.empty() ? 0.0 : processors.front().utilization();
  for (const ProcessorAssignment& proc : processors) {
    min_u = std::min(min_u, proc.utilization());
  }
  return min_u;
}

std::string Assignment::describe() const {
  std::ostringstream os;
  os << (success ? "SUCCESS" : "FAILURE") << '\n';
  for (std::size_t q = 0; q < processors.size(); ++q) {
    os << "P" << q + 1 << " (U=" << processors[q].utilization() << "):";
    for (const Subtask& s : processors[q].subtasks) {
      os << " tau_" << s.task_id;
      if (s.kind == SubtaskKind::kBody) os << "^b" << s.part;
      if (s.kind == SubtaskKind::kTail) os << "^t";
      os << "<C=" << s.wcet << ",T=" << s.period << ",D=" << s.deadline << ">";
    }
    os << '\n';
  }
  if (!unassigned.empty()) {
    os << "unassigned:";
    for (const TaskId id : unassigned) os << " tau_" << id;
    os << '\n';
  }
  return os.str();
}

}  // namespace rmts
